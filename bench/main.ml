(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (per DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the underlying kernels — one Test.make per
   experiment id. Alongside the printed tables it writes a stable
   machine-readable BENCH_results.json (schema in EXPERIMENTS.md) with
   one record per experiment id, numbers identical to the tables.

   Environment:
     QUICK=1   reduce simulation scales (CI-friendly)
     ONLY=E1   run a single experiment id, case-insensitive
               (E1 E2 E3 E4 E5 E6 E7 E8 E9 E10 A1 A2 A3 A4 A5 ATTRIB MICRO)
     OUT=path  where to write the JSON results (default BENCH_results.json)
*)

let quick = Sys.getenv_opt "QUICK" <> None
let only = Sys.getenv_opt "ONLY"
let out_path =
  match Sys.getenv_opt "OUT" with Some p -> p | None -> "BENCH_results.json"

let want id =
  match only with
  | None -> true
  | Some o -> String.uppercase_ascii o = String.uppercase_ascii id

let fmt = Format.std_formatter

let section title =
  Format.fprintf fmt "@.==============================================================================@.";
  Format.fprintf fmt "%s@." title;
  Format.fprintf fmt "==============================================================================@."

(* JSON records accumulate in run order; flushed to [out_path] at exit. *)
let records : (string * string * Obs.Json.t) list ref = ref []
let record id title json = records := (id, title, json) :: !records

(* ---------- the tables ---------- *)

let fig5_params () =
  if quick then
    (* Keep the paper's full five-point size sweep so the table shape
       matches the non-quick run; shrink the per-point work instead. *)
    Batcher_core.Experiments.fig5 ~n_records:4_000 ~records_per_node:100 ()
  else Batcher_core.Experiments.fig5 ()

let run_tables () =
  let module E = Batcher_core.Experiments in
  let module R = Batcher_core.Report in
  let module J = Batcher_core.Report_json in
  if want "E1" then begin
    let title = "E1 — Figure 5: BATCHER vs sequential skip list" in
    section title;
    let rows = fig5_params () in
    R.fig5 fmt rows;
    record "E1" title (J.fig5 rows)
  end;
  if want "E2" then begin
    let title = "E2 — Flat combining comparison (Section 7 discussion)" in
    section title;
    let rows = if quick then E.flatcomb ~n_records:10_000 () else E.flatcomb () in
    R.flatcomb fmt rows;
    record "E2" title (J.flatcomb rows)
  end;
  if want "E3" then begin
    let title = "E3 — Batched counter vs lock-serialized counter (Section 3)" in
    section title;
    let rows = if quick then E.counter_example ~n:4_000 () else E.counter_example () in
    R.example ~name:"E3 counter" fmt rows;
    record "E3" title (J.example rows)
  end;
  if want "E4" then begin
    let title = "E4 — Batched 2-3 tree (Section 3 search-tree example)" in
    section title;
    let rows = if quick then E.tree_example ~n:1_000 () else E.tree_example () in
    R.example ~name:"E4 search tree" fmt rows;
    record "E4" title (J.example rows)
  end;
  if want "E5" then begin
    let title = "E5 — Amortized LIFO stack (Section 3 table-doubling example)" in
    section title;
    let rows = if quick then E.stack_example ~n:4_000 () else E.stack_example () in
    R.example ~name:"E5 stack" fmt rows;
    record "E5" title (J.example rows)
  end;
  if want "E6" then begin
    let title = "E6 — Theorem 1 validation sweep" in
    section title;
    let rows = E.theory_table () in
    R.theory fmt rows;
    record "E6" title (J.theory rows)
  end;
  if want "E8" then begin
    let title = "E8 — Theorem 3 validation (τ-trimmed span)" in
    section title;
    let rows = E.theorem3 () in
    R.theorem3 fmt rows;
    record "E8" title (J.theorem3 rows)
  end;
  if want "E7" then begin
    let title = "E7 — Lemma 2: batches executing while an op is pending" in
    section title;
    let rows = E.lemma2 () in
    R.lemma2 fmt rows;
    record "E7" title (J.lemma2 rows)
  end;
  if want "A1" then begin
    let title = "A1 — Ablation: steal policy" in
    section title;
    let rows = E.ablate_steal () in
    R.ablation ~name:"A1 steal policy" fmt rows;
    record "A1" title (J.ablation rows)
  end;
  if want "A2" then begin
    let title = "A2 — Ablation: launch threshold (immediate vs accumulate-k)" in
    section title;
    let rows = E.ablate_launch () in
    R.ablation ~name:"A2 launch threshold" fmt rows;
    record "A2" title (J.ablation rows)
  end;
  if want "A4" then begin
    let title = "A4 — Ablation: LAUNCHBATCH overhead model (paper's open question)" in
    section title;
    let rows = E.ablate_overhead () in
    R.ablation ~name:"A4 overhead model" fmt rows;
    record "A4" title (J.ablation rows)
  end;
  if want "E9" then begin
    let title = "E9 — Pthreaded programs (paper's conclusion)" in
    section title;
    let rows = E.pthreaded () in
    R.pthreaded fmt rows;
    record "E9" title (J.pthreaded rows)
  end;
  if want "E10" then begin
    let title = "E10 — Multiple implicitly batched structures in one program" in
    section title;
    let rows = E.multi_structure () in
    R.multi fmt rows;
    record "E10" title (J.multi rows)
  end;
  if want "A5" then begin
    let title = "A5 — Ablation: batching granularity (records per BATCHIFY)" in
    section title;
    let rows = E.ablate_granularity () in
    R.granularity fmt rows;
    record "A5" title (J.granularity rows)
  end;
  if want "A3" then begin
    let title = "A3 — Ablation: batch-size cap" in
    section title;
    let rows = E.ablate_cap () in
    R.ablation ~name:"A3 batch cap" fmt rows;
    record "A3" title (J.ablation rows)
  end

(* ---------- ATTRIB: Theorem-1 bucket decomposition ---------- *)

(* Recorded simulator runs folded through Obs.Attrib: one row per
   (workload, P) with every bound bucket as its own JSON field, so
   bench_diff can flag a regression in a single bucket (say, wait time
   growing while the makespan hides it behind shrinking idle). The
   conservation invariant (buckets sum to P x makespan) is asserted
   here too — a violation means the recorder or the attribution folder
   miscounted, and the numbers below it would be garbage. *)

let attrib_workloads () =
  let n = if quick then 60 else 200 in
  let initial = if quick then 10_000 else 100_000 in
  [
    ( "fig5",
      n,
      fun () ->
        Sim.Workload.parallel_ops
          ~model:
            (Batched.Skiplist.sim_model ~initial_size:initial
               ~records_per_node:100 ())
          ~records_per_node:100 ~n_nodes:n () );
    ( "counter",
      n,
      fun () ->
        Sim.Workload.parallel_ops
          ~model:(Batched.Counter.sim_model ())
          ~records_per_node:1 ~n_nodes:n () );
    ( "multi",
      n,
      fun () ->
        Sim.Workload.interleaved_ops
          ~models:
            [
              Batched.Counter.sim_model ();
              Batched.Skiplist.sim_model ~initial_size:initial
                ~records_per_node:10 ();
            ]
          ~records_per_node:10 ~n_nodes:n () );
  ]

let attrib_row ~name ~p ~n workload =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:p () in
  let m = Sim.Batcher.run ~recorder:rc (Sim.Batcher.default ~p) workload in
  let a = Obs.Attrib.of_recorder rc in
  (match Obs.Attrib.check ~expected:(p * m.Sim.Metrics.makespan) a with
  | Ok () -> ()
  | Error e ->
      failwith (Printf.sprintf "ATTRIB conservation (%s p=%d): %s" name p e));
  let b = a.Obs.Attrib.total in
  (name, p, n, m, b)

let run_attrib () =
  let title = "ATTRIB — Theorem-1 bucket decomposition (sim, per workload x P)"
  in
  section title;
  let ps = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let rows =
    List.concat_map
      (fun (name, n, mk) ->
        List.map (fun p -> attrib_row ~name ~p ~n (mk ())) ps)
      (attrib_workloads ())
  in
  Format.fprintf fmt "%-8s %3s %6s %9s %9s %9s %9s %9s %9s %9s %6s@."
    "workload" "P" "n" "makespan" "core" "batch" "setup" "sched" "idle" "wait"
    "span";
  List.iter
    (fun (name, p, n, (m : Sim.Metrics.t), (b : Obs.Attrib.buckets)) ->
      Format.fprintf fmt "%-8s %3d %6d %9d %9d %9d %9d %9d %9d %9d %6d@." name
        p n m.Sim.Metrics.makespan b.Obs.Attrib.core b.Obs.Attrib.batch
        b.Obs.Attrib.setup b.Obs.Attrib.sched b.Obs.Attrib.idle
        b.Obs.Attrib.wait m.Sim.Metrics.span_realized)
    rows;
  record "ATTRIB" title
    (Obs.Json.List
       (List.map
          (fun (name, p, n, (m : Sim.Metrics.t), (b : Obs.Attrib.buckets)) ->
            Obs.Json.Obj
              [
                ("workload", Obs.Json.Str name);
                ("p", Obs.Json.Int p);
                ("n", Obs.Json.Int n);
                ("makespan", Obs.Json.Int m.Sim.Metrics.makespan);
                ("span_realized", Obs.Json.Int m.Sim.Metrics.span_realized);
                ("attrib_core", Obs.Json.Int b.Obs.Attrib.core);
                ("attrib_batch", Obs.Json.Int b.Obs.Attrib.batch);
                ("attrib_setup", Obs.Json.Int b.Obs.Attrib.setup);
                ("attrib_sched", Obs.Json.Int b.Obs.Attrib.sched);
                ("attrib_idle", Obs.Json.Int b.Obs.Attrib.idle);
                ("attrib_wait", Obs.Json.Int b.Obs.Attrib.wait);
              ])
          rows))

(* ---------- Bechamel micro-benchmarks ---------- *)

(* One Test.make per experiment id: the kernel whose wall-clock cost
   dominates regenerating that table. *)

let sim_kernel ~initial ~p () =
  let w =
    Sim.Workload.parallel_ops
      ~model:(Batched.Skiplist.sim_model ~initial_size:initial ~records_per_node:10 ())
      ~records_per_node:10 ~n_nodes:100 ()
  in
  ignore (Sim.Batcher.run (Sim.Batcher.default ~p) w)

let bechamel_tests () =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "E1:sim-batcher-skiplist-p8" (sim_kernel ~initial:1_000_000 ~p:8);
    t "E2:sim-flatcomb-skiplist-p8" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Skiplist.sim_model ~initial_size:1_000_000 ~records_per_node:10 ())
            ~records_per_node:10 ~n_nodes:100 ()
        in
        ignore (Sim.Flatcomb.run ~p:8 w));
    t "E3:sim-counter-p8" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:1000 ()
        in
        ignore (Sim.Batcher.run (Sim.Batcher.default ~p:8) w));
    t "E4:two-three-batch-insert-1k" (fun () ->
        let ops = Array.init 1000 (fun i -> Batched.Two_three.insert_op ((i * 37) mod 4096)) in
        ignore (Batched.Two_three.run_batch Batched.Two_three.empty ops));
    t "E5:stack-batch-64k-pushes" (fun () ->
        let s = Batched.Stack.create () in
        Batched.Stack.run_batch s (Array.init 65_536 (fun i -> Batched.Stack.push i)));
    t "E6:dag-lower-balanced-4096" (fun () ->
        let b = Dag.Build.create () in
        let f = Dag.Build.of_par b (Par.balanced ~leaf_cost:(fun _ -> 1) 4096) in
        ignore (Dag.Build.finish b f));
    t "E7:skiplist-seq-insert-1k" (fun () ->
        let s = Batched.Skiplist.create () in
        for i = 0 to 999 do
          ignore (Batched.Skiplist.insert_seq s i)
        done);
    t "A1:sim-batcher-core-only-steals" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:500 ()
        in
        ignore
          (Sim.Batcher.run
             { (Sim.Batcher.default ~p:8) with Sim.Batcher.steal_policy = Sim.Batcher.Core_only }
             w));
    t "A2:sim-batcher-threshold-p" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:500 ()
        in
        ignore
          (Sim.Batcher.run
             { (Sim.Batcher.default ~p:8) with Sim.Batcher.launch_threshold = 8 }
             w));
    t "A3:sim-batcher-cap-1" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:500 ()
        in
        ignore
          (Sim.Batcher.run { (Sim.Batcher.default ~p:8) with Sim.Batcher.batch_cap = 1 } w));
  ]

(* Real-runtime wall-clock micro-benchmarks (R1). The pool is reused
   across iterations; worker count stays small for few-core machines. *)
let real_runtime_tests pool =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "R1:real-batcher-counter-1k-increments" (fun () ->
        let counter = Batched.Counter.create () in
        let b =
          Runtime.Batcher_rt.create ~pool ~state:counter
            ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
            ()
        in
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:1000 (fun _ ->
                Runtime.Batcher_rt.batchify b (Batched.Counter.op 1))));
    t "R1:real-pool-parallel-for-100k" (fun () ->
        let acc = Array.make 256 0 in
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~lo:0 ~hi:100_000 (fun i ->
                let s = i land 255 in
                acc.(s) <- acc.(s) + 1)));
    t "R1:real-prefix-sums-100k" (fun () ->
        let a = Array.init 100_000 (fun i -> i land 7) in
        Runtime.Pool.run pool (fun () ->
            ignore (Runtime.Pool.parallel_prefix_sums pool a)));
  ]

(* Runs the tests and returns sorted (name, ns/run) estimate rows. *)
let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"bench" ~fmt:"%s %s" tests)
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> []
  | Some tbl ->
      Hashtbl.fold
        (fun name ols acc ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | _ -> nan
          in
          (name, est) :: acc)
        tbl []
      |> List.sort compare

let print_bechamel rows =
  Format.fprintf fmt "@.%-45s %16s@." "benchmark" "ns/run";
  Format.fprintf fmt "%s@." (String.make 62 '-');
  if rows = [] then Format.fprintf fmt "(no results)@."
  else
    List.iter
      (fun (name, est) -> Format.fprintf fmt "%-45s %16.1f@." name est)
      rows

let () =
  run_tables ();
  if want "ATTRIB" then run_attrib ();
  if want "MICRO" then begin
    let title =
      "MICRO — Bechamel kernels (one per experiment id) + real runtime (R1)"
    in
    section title;
    let workers = if quick then 2 else 4 in
    let pool = Runtime.Pool.create ~num_workers:workers () in
    let rows = run_bechamel (bechamel_tests () @ real_runtime_tests pool) in
    Runtime.Pool.teardown pool;
    print_bechamel rows;
    record "MICRO" title (Batcher_core.Report_json.micro rows)
  end;
  let json =
    Batcher_core.Report_json.results_file ~quick ~only
      (List.rev !records)
  in
  Batcher_core.Report_json.write_file ~path:out_path json;
  Format.fprintf fmt "@.[bench] wrote %s (%d experiment record%s)@." out_path
    (List.length !records)
    (if List.length !records = 1 then "" else "s");
  Format.pp_print_flush fmt ()
