(* Runtime hot-path microbenchmarks (the PR-by-PR before/after evidence):

     M1  contended submit — ops/s of [Batcher_rt.batchify] from a
         grain-1 parallel loop across the four batch-path modes
         (pending_array = FAA slots, worker_id = paper-verbatim
         per-worker slots, par_combine = parallel combining,
         atomic_list = legacy CAS stack) and across worker counts.
         Every row reports minor words per op: exact single-domain
         arithmetic at workers=1, and a per-worker barrier-sampled sum
         at workers>1 (Gc.minor_words is domain-local).
     M2  Chase-Lev deque — owner push/pop throughput and a cross-domain
         steal drain, for both the current single-atomic packed-word
         deque and the retired two-atomic variant (bench/deque_legacy).
     M3  sharded contended submit — the M1 workload against K
         [Shard_rt] shards of a linear-service structure (batch cost
         s(n/K), modeled by a calibrated sleep), K in {1,2,4,8}.
         speedup_vs_k1 is the headline: per-shard Invariant 1 overlaps
         batches across workers while each batch gets K times cheaper.

   Results are MERGED into BENCH_results.json (default; OUT= overrides):
   existing experiment records are preserved, regenerated records are
   replaced, so the perf trajectory accumulates across PRs next to the
   main bench tables. QUICK=1 shrinks op counts for CI; ONLY=M1[,M2...]
   restricts which experiments run (the @mode-smoke alias uses ONLY=M1
   to sweep the modes in seconds).

   Timing is wall-clock best-of-N via Obs.Clock.now_ns — bechamel's OLS
   is overkill here because one "run" is a whole pool run with domain
   wakeups, so per-run variance dwarfs per-op cost; best-of filters the
   scheduler noise all machines with fewer cores than workers exhibit. *)

let quick = Sys.getenv_opt "QUICK" <> None

let out_path =
  match Sys.getenv_opt "OUT" with Some p -> p | None -> "BENCH_results.json"

let only =
  match Sys.getenv_opt "ONLY" with
  | None -> None
  | Some s -> Some (String.split_on_char ',' (String.uppercase_ascii s))

let want id = match only with None -> true | Some l -> List.mem id l

(* Best-of-N repetitions. Scheduler noise is one-sided (preemption only
   ever adds time), so on oversubscribed machines the best-of over more
   reps converges to the true mechanism cost; REPS= overrides. Rows
   whose measured section runs more than one domain (M1 workers>1, the
   M2 steal drain) default to 8 reps — on the 1-CPU container the extra
   domains guarantee preemption mid-measurement, and fewer reps make
   best-of itself a noise source (ROADMAP PR-4 note). *)
let reps ~multi =
  match Sys.getenv_opt "REPS" with
  | Some s -> int_of_string s
  | None -> if quick then 2 else if multi then 8 else 5

let time_ns f =
  let t0 = Obs.Clock.now_ns () in
  f ();
  Obs.Clock.now_ns () - t0

(* Best over [n] runs, warning on [label] when the run-to-run spread
   (stddev/mean) exceeds 5% — the threshold beyond which a best-of
   estimate on this container should be read as a bound, not a value. *)
let best_of ~label n f =
  let samples = Array.init n (fun _ -> float_of_int (time_ns f)) in
  let s = Util.Stats.summarize samples in
  if s.Util.Stats.n > 1 && s.Util.Stats.mean > 0.0 then begin
    let cv = s.Util.Stats.stddev /. s.Util.Stats.mean in
    if cv > 0.05 then
      Printf.printf
        "[micro] noise warning: %s stddev/mean = %.1f%% over %d reps (best-of \
         is a lower bound)\n"
        label (100.0 *. cv) n
  end;
  int_of_float s.Util.Stats.min

let ops_per_sec ~ops ~ns =
  if ns <= 0 then 0.0 else float_of_int ops *. 1e9 /. float_of_int ns

(* ---------- M1: contended submit ---------- *)

let mode_name = Runtime.Batcher_rt.mode_name

(* BACKOFF=flat | spin selects an ablation of the pool's backoff policy
   (flat 0.2ms sleeps, or pure spinning); default is the tuned ramp.
   Used to attribute M1 movement to the submit path vs. idle policy. *)
let bench_backoff =
  match Sys.getenv_opt "BACKOFF" with
  | Some "flat" ->
      Some
        {
          Runtime.Pool.default_backoff with
          sleep_min = 0.000_2;
          sleep_max = 0.000_2;
        }
  | Some "spin" ->
      Some
        {
          Runtime.Pool.default_backoff with
          spin_limit = max_int;
          burst_limit = max_int;
        }
  | _ -> None

(* Sum of minor words allocated across all worker domains while [f]
   runs. [Gc.minor_words] is domain-local, so each worker samples its
   own counter from inside a barrier task: [workers] tasks each spin
   until all have started, which pins them to distinct workers (a
   worker cannot start a second task while its first is spinning), and
   each then reads its domain's counter into its worker's slot. The two
   barrier passes themselves allocate a few hundred words — noise at
   thousands of ops. *)
let minor_words_all ~pool ~workers f =
  let sample out =
    let arrived = Atomic.make 0 in
    Runtime.Pool.run pool (fun () ->
        Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:workers (fun _ ->
            let w =
              match Runtime.Pool.worker_index () with Some w -> w | None -> 0
            in
            Atomic.incr arrived;
            while Atomic.get arrived < workers do
              Domain.cpu_relax ()
            done;
            out.(w) <- Gc.minor_words ()))
  in
  let before = Array.make workers 0.0 and after = Array.make workers 0.0 in
  sample before;
  f ();
  sample after;
  let sum = ref 0.0 in
  for w = 0 to workers - 1 do
    sum := !sum +. after.(w) -. before.(w)
  done;
  !sum

let contended_submit ~mode ~workers ~n_ops =
  let pool =
    Runtime.Pool.create ?backoff:bench_backoff ~num_workers:workers ()
  in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~mode ~pool ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      let submit_all n =
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun _ ->
                Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)))
      in
      submit_all (min 256 n_ops);  (* warmup: faults pages, wakes domains *)
      (* Scheduler-independent cost proxy: minor words allocated per op.
         Exact single-domain arithmetic at workers=1; a barrier-sampled
         per-worker sum otherwise. *)
      let words_per_op =
        if workers = 1 then begin
          let w0 = Gc.minor_words () in
          submit_all n_ops;
          (Gc.minor_words () -. w0) /. float_of_int n_ops
        end
        else
          minor_words_all ~pool ~workers (fun () -> submit_all n_ops)
          /. float_of_int n_ops
      in
      let label = Printf.sprintf "M1 %s workers=%d" (mode_name mode) workers in
      ( best_of ~label (reps ~multi:(workers > 1)) (fun () -> submit_all n_ops),
        words_per_op ))

let m1_rows () =
  let n_ops =
    match Sys.getenv_opt "N_OPS" with
    | Some s -> int_of_string s
    | None -> if quick then 2_000 else 8_000
  in
  let worker_counts = [ 1; 2; 4 ] in
  List.concat_map
    (fun mode ->
      List.map
        (fun workers ->
          let ns, words = contended_submit ~mode ~workers ~n_ops in
          ( mode_name mode,
            workers,
            n_ops,
            ns,
            ops_per_sec ~ops:n_ops ~ns,
            words ))
        worker_counts)
    Runtime.Batcher_rt.all_modes

(* ---------- M2: Chase-Lev deque ---------- *)

(* Two implementations behind one signature: the live single-atomic
   packed-word deque, and the retired two-atomic one it replaced
   (variant column in the rows). *)
module type DEQUE = sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
end

(* Owner-only throughput: fill/drain bursts through a warm deque. *)
let deque_push_pop (module D : DEQUE) ~variant ~n =
  let q : int D.t = D.create () in
  best_of
    ~label:(Printf.sprintf "M2 push_pop %s" variant)
    (reps ~multi:false)
    (fun () ->
      let burst = 512 in
      let rounds = n / burst in
      for _ = 1 to rounds do
        for i = 1 to burst do
          D.push q i
        done;
        for _ = 1 to burst do
          ignore (D.pop q)
        done
      done)

(* One thief domain drains everything the owner pushed. *)
let deque_steal_drain (module D : DEQUE) ~variant ~n =
  best_of
    ~label:(Printf.sprintf "M2 steal_drain %s" variant)
    (reps ~multi:true)
    (fun () ->
      let q : int D.t = D.create () in
      for i = 1 to n do
        D.push q i
      done;
      let thief =
        Domain.spawn (fun () ->
            let got = ref 0 in
            while !got < n do
              match D.steal q with
              | Some _ -> incr got
              | None -> Domain.cpu_relax ()
            done)
      in
      Domain.join thief)

let m2_rows () =
  let n = if quick then 50_000 else 500_000 in
  let n_steal = if quick then 20_000 else 100_000 in
  List.concat_map
    (fun (variant, d) ->
      let pp = deque_push_pop d ~variant ~n in
      let sd = deque_steal_drain d ~variant ~n:n_steal in
      [
        (variant, "push_pop", 2 * n, pp, ops_per_sec ~ops:(2 * n) ~ns:pp);
        (variant, "steal_drain", n_steal, sd, ops_per_sec ~ops:n_steal ~ns:sd);
      ])
    [
      ("single_atomic", (module Runtime.Wsdeque : DEQUE));
      ("two_atomic", (module Deque_legacy : DEQUE));
    ]

(* ---------- M3: sharded contended submit (K-sweep) ---------- *)

(* The sharding tradeoff made literal: a linear-service structure's BOP
   at 1/K of the keyspace costs s(n/K) = delta/K, modeled as a
   calibrated sleep ahead of a real Counter BOP (so the sweep stays
   result-checked). K = 1 serializes those services through the single
   batch flag (Invariant 1); at K > 1 the invariant is per shard, so up
   to [workers] services overlap while each is K times cheaper —
   exactly the O((T1 + K n s(n/K))/P + m s(n/K) + T_inf) composed
   bound's mechanism. Keys route through [Batched.Shard.route], the
   production path. *)
let m3_service_s = 0.001

let sharded_submit ~shards ~workers ~n_ops =
  let pool =
    Runtime.Pool.create ?backoff:bench_backoff ~num_workers:workers ()
  in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let service = m3_service_s /. float_of_int shards in
      let rt =
        Runtime.Shard_rt.create ~pool ~shards
          ~state:(fun _ -> Batched.Counter.create ())
          ~run_batch:(fun _pool st ops ->
            Unix.sleepf service;
            Batched.Counter.run_batch st ops)
          ()
      in
      let submitted = ref 0 in
      let submit_all n =
        submitted := !submitted + n;
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
                Runtime.Shard_rt.batchify rt
                  ~shard:(Batched.Shard.route ~shards i)
                  (Batched.Counter.op 1)))
      in
      submit_all (min 64 n_ops);
      let label = Printf.sprintf "M3 K=%d workers=%d" shards workers in
      let ns = best_of ~label (reps ~multi:true) (fun () -> submit_all n_ops) in
      (* Result check: every +1 landed in exactly one shard's counter. *)
      let total = ref 0 in
      for i = 0 to shards - 1 do
        total := !total + Batched.Counter.value (Runtime.Shard_rt.state rt i)
      done;
      let total = !total in
      if total <> !submitted then
        failwith
          (Printf.sprintf "M3 K=%d: counters sum %d <> %d ops submitted"
             shards total !submitted);
      (ns, Runtime.Shard_rt.total_stats rt))

let m3_rows () =
  let workers = 2 in
  let n_ops =
    match Sys.getenv_opt "M3_OPS" with
    | Some s -> int_of_string s
    | None -> if quick then 96 else 384
  in
  let measured =
    List.map
      (fun k ->
        let ns, st = sharded_submit ~shards:k ~workers ~n_ops in
        (k, ns, st))
      [ 1; 2; 4; 8 ]
  in
  let base_ns =
    match measured with (1, ns, _) :: _ -> ns | _ -> assert false
  in
  List.map
    (fun (k, ns, (st : Runtime.Batcher_rt.stats)) ->
      let speedup =
        if ns <= 0 then 0.0 else float_of_int base_ns /. float_of_int ns
      in
      ( k,
        workers,
        n_ops,
        ns,
        ops_per_sec ~ops:n_ops ~ns,
        speedup,
        st.Runtime.Batcher_rt.batches,
        st.Runtime.Batcher_rt.max_batch ))
    measured

(* ---------- JSON merge + report ---------- *)

let experiment ~id ~title rows =
  Obs.Json.Obj
    [ ("id", Obs.Json.Str id); ("title", Obs.Json.Str title);
      ("rows", Obs.Json.List rows) ]

let read_existing path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.Json.parse s with
    | Ok (Obs.Json.Obj fields) -> Some fields
    | Ok _ | Error _ -> None
  end

(* Keep every field and experiment record of an existing results file;
   replace only the records whose ids we regenerate. *)
let merge_out new_exps =
  let new_ids =
    List.filter_map
      (fun e ->
        match Obs.Json.member "id" e with
        | Some (Obs.Json.Str s) -> Some s
        | _ -> None)
      new_exps
  in
  let fields =
    match read_existing out_path with
    | Some fields -> fields
    | None ->
        [
          ("schema_version", Obs.Json.Int 1);
          ("generated_by", Obs.Json.Str "bench/micro.exe");
          ("quick", Obs.Json.Bool quick);
          ("only", Obs.Json.Null);
          ("experiments", Obs.Json.List []);
        ]
  in
  let old_exps =
    match List.assoc_opt "experiments" fields with
    | Some (Obs.Json.List l) ->
        List.filter
          (fun e ->
            match Obs.Json.member "id" e with
            | Some (Obs.Json.Str s) -> not (List.mem s new_ids)
            | _ -> true)
          l
    | _ -> []
  in
  let fields =
    List.map
      (fun (k, v) ->
        if k = "experiments" then (k, Obs.Json.List (old_exps @ new_exps))
        else (k, v))
      fields
  in
  let fields =
    if List.mem_assoc "experiments" fields then fields
    else fields @ [ ("experiments", Obs.Json.List new_exps) ]
  in
  Batcher_core.Report_json.write_file ~path:out_path (Obs.Json.Obj fields)

let () =
  let exps = ref [] in
  if want "M1" then begin
    Printf.printf "== M1: contended submit (batchify ops/s) ==\n";
    Printf.printf "%-14s %8s %8s %12s %14s %10s\n" "impl" "workers" "ops" "ns"
      "ops/s" "words/op";
    let m1 = m1_rows () in
    List.iter
      (fun (impl, workers, ops, ns, rate, words) ->
        Printf.printf "%-14s %8d %8d %12d %14.0f %10.1f\n" impl workers ops ns
          rate words)
      m1;
    let m1_json =
      List.map
        (fun (impl, workers, ops, ns, rate, words) ->
          Obs.Json.Obj
            [
              ("impl", Obs.Json.Str impl);
              ("workers", Obs.Json.Int workers);
              ("ops", Obs.Json.Int ops);
              ("ns", Obs.Json.Int ns);
              ("ops_per_sec", Obs.Json.Float rate);
              ("minor_words_per_op", Obs.Json.Float words);
            ])
        m1
    in
    exps :=
      !exps
      @ [
          experiment ~id:"M1"
            ~title:
              "M1 — contended batchify submit across batch-path modes \
               (pending array / worker-id / parallel combining / legacy \
               atomic list)"
            m1_json;
        ]
  end;
  if want "M2" then begin
    Printf.printf "\n== M2: Chase-Lev deque ==\n";
    Printf.printf "%-14s %-14s %10s %12s %14s\n" "variant" "case" "items" "ns"
      "ops/s";
    let m2 = m2_rows () in
    List.iter
      (fun (variant, case, items, ns, rate) ->
        Printf.printf "%-14s %-14s %10d %12d %14.0f\n" variant case items ns
          rate)
      m2;
    let m2_json =
      List.map
        (fun (variant, case, items, ns, rate) ->
          Obs.Json.Obj
            [
              ("variant", Obs.Json.Str variant);
              ("case", Obs.Json.Str case);
              ("items", Obs.Json.Int items);
              ("ns", Obs.Json.Int ns);
              ("ops_per_sec", Obs.Json.Float rate);
            ])
        m2
    in
    exps :=
      !exps
      @ [
          experiment ~id:"M2"
            ~title:
              "M2 — Chase-Lev deque data path: single-atomic packed word vs \
               retired two-atomic"
            m2_json;
        ]
  end;
  if want "M3" then begin
    Printf.printf
      "\n== M3: sharded contended submit (K-sweep, s(n/K) service) ==\n";
    Printf.printf "%6s %8s %8s %12s %14s %12s %9s %10s\n" "K" "workers" "ops"
      "ns" "ops/s" "vs K=1" "batches" "max_batch";
    let m3 = m3_rows () in
    List.iter
      (fun (k, workers, ops, ns, rate, speedup, batches, max_batch) ->
        Printf.printf "%6d %8d %8d %12d %14.0f %11.2fx %9d %10d\n" k workers
          ops ns rate speedup batches max_batch)
      m3;
    let m3_json =
      List.map
        (fun (k, workers, ops, ns, rate, speedup, batches, max_batch) ->
          Obs.Json.Obj
            [
              ("shards", Obs.Json.Int k);
              ("workers", Obs.Json.Int workers);
              ("ops", Obs.Json.Int ops);
              ("ns", Obs.Json.Int ns);
              ("ops_per_sec", Obs.Json.Float rate);
              ("speedup_vs_k1", Obs.Json.Float speedup);
              ("total_batches", Obs.Json.Int batches);
              ("max_batch", Obs.Json.Int max_batch);
            ])
        m3
    in
    exps :=
      !exps
      @ [
          experiment ~id:"M3"
            ~title:
              "M3 — sharded contended submit: K-sweep over Shard_rt, linear \
               s(n/K) service"
            m3_json;
        ]
  end;
  merge_out !exps;
  Printf.printf "\n[micro] merged %s into %s\n%!"
    (String.concat ", "
       (List.filter (want) [ "M1"; "M2"; "M3" ]))
    out_path
