(* Bench-only baseline: the two-atomic Chase-Lev deque that
   [Runtime.Wsdeque] used before the single-atomic packed-word rewrite.
   Kept verbatim so M2 can report both variants head-to-head
   ([variant = two_atomic] rows); not part of the runtime library.

   Chase & Lev, "Dynamic circular work-stealing deque" (SPAA 2005), in
   the C11 formulation of Lê, Pop, Cohen & Zappa Nardelli ("Correct and
   efficient work-stealing for weak memory models", PPoPP 2013), adapted
   to OCaml 5 Atomics.

   Memory-ordering argument (DESIGN.md §8): OCaml 5's [Atomic] operations
   are all sequentially consistent, which is strictly stronger than every
   ordering the C11 protocol requires, so each annotated access maps to a
   plain [Atomic] op and the standalone fences disappear:

   - [push]'s release store of [bottom] (publishes the element written
     just before it) is the SC [Atomic.set t.bottom].
   - [pop]'s seq_cst fence between the [bottom] decrement and the [top]
     load is subsumed by those two accesses themselves being SC.
   - [steal] loads [top] BEFORE [bottom] (both SC) and then races on a
     CAS of [top]; the load order is what makes the owner's
     no-CAS fast path for [bottom - 1 > top] sound, so keep it.

   What this rewrite changes versus the all-[Atomic.set] original is the
   *data path*, not the protocol:

   - Elements are stored directly in an [Obj.t array] instead of an
     ['a option array], so [push] no longer boxes a [Some] per element
     and [grow] no longer copies options.
   - The owner keeps a monotone cache of [top] ([top_cache <= top],
     owner-written only) and consults the real [top] only when the
     cached window says the buffer might be full, so the common [push]
     is one SC load + one array store + one SC store.
   - The owner clears a slot it successfully popped (the protocol above
     guarantees no thief can still be reading it), so popped elements
     are not retained by the buffer. Thieves never write — a stolen
     slot is reclaimed when the owner next wraps over it, so at most
     [capacity] stale references persist, never unboundedly many. *)

type buffer = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  data : Obj.t array;
}

let slot_empty : Obj.t = Obj.repr ()

let make_buffer log_size =
  { mask = (1 lsl log_size) - 1; data = Array.make (1 lsl log_size) slot_empty }

let buf_get b i = Array.unsafe_get b.data (i land b.mask)
let buf_put b i x = Array.unsafe_set b.data (i land b.mask) x

type 'a t = {
  top : int Atomic.t;  (* only increases; thieves CAS it *)
  bottom : int Atomic.t;  (* owner-written; thieves only read *)
  buf : buffer Atomic.t;  (* owner-written; thieves only read *)
  mutable top_cache : int;  (* owner-only lower bound on [top] *)
}

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buffer 8);
    top_cache = 0;
  }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

(* Owner only, from [push]. The old buffer is retired, never reused or
   overwritten, so a thief holding it still reads a valid element for
   any [top] position its CAS can win (see .mli). *)
let grow t b top_ =
  let old = Atomic.get t.buf in
  let nb = { mask = (old.mask * 2) + 1; data = Array.make ((old.mask + 1) * 2) slot_empty } in
  for i = top_ to b - 1 do
    buf_put nb i (buf_get old i)
  done;
  Atomic.set t.buf nb

let push t x =
  let b = Atomic.get t.bottom in
  let buf = Atomic.get t.buf in
  let buf =
    if b - t.top_cache > buf.mask then begin
      (* Full for all the owner knows: refresh the cache and re-check. *)
      t.top_cache <- Atomic.get t.top;
      if b - t.top_cache > buf.mask then begin
        grow t b t.top_cache;
        Atomic.get t.buf
      end
      else buf
    end
    else buf
  in
  buf_put buf b (Obj.repr x);
  (* SC store: publishes the element to thieves (C11 release). *)
  Atomic.set t.bottom (b + 1)

let pop (type a) (t : a t) : a option =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  (* Both accesses SC: subsumes the C11 seq_cst fence here. *)
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Empty: restore. *)
    Atomic.set t.bottom (b + 1);
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let v = buf_get buf b in
    if b > tp then begin
      (* More than one element: no thief can take index [b] (a thief
         must read [top] before [bottom], and any thief that could see
         [top = b] reads [bottom] afterwards and finds [<= b]), so no
         CAS — and clearing the slot cannot race a thief's read. *)
      buf_put buf b slot_empty;
      t.top_cache <- tp;
      Some (Obj.obj v : a)
    end
    else begin
      (* Last element: race with thieves via CAS on top. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (b + 1);
      if won then begin
        buf_put buf b slot_empty;
        t.top_cache <- tp + 1;
        Some (Obj.obj v : a)
      end
      else None
    end
  end

let steal (type a) (t : a t) : a option =
  (* [top] first, then [bottom] — the order the owner's fast path in
     [pop] relies on. *)
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    (* Read the element before the CAS: after a successful CAS the
       owner may reuse the slot. A stale [buf] read is safe because
       retired buffers keep their elements (see [grow]). The raw slot
       is only viewed at type [a] once the CAS has won. *)
    let v = buf_get (Atomic.get t.buf) tp in
    if Atomic.compare_and_set t.top tp (tp + 1) then Some (Obj.obj v : a)
    else None
  end
