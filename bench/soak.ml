(* Soak harness: run a mixed batched workload for a fixed wall-clock
   duration with the health-monitoring stack OFF / SAMPLED / EXACT, and
   record the throughput of each leg so the cost of always-on
   monitoring is a number in BENCH_results.json, not a claim.

   The EXACT leg runs the full production monitoring story: recorder +
   online invariant checkers + heartbeats/watchdog/SLO histograms + a
   snapshot sampler streaming health JSONL (the input of
   bin/monitor.exe) + an armed flight recorder, explicitly dumped at
   the end. Any checker violation or stall fails the process — the soak
   doubles as an end-to-end test that a healthy run stays quiet.

   Knobs (environment):
     SOAK_S      seconds per leg              (default 4; QUICK=1 -> 1)
     WORKERS     pool size                    (default 4)
     OUT         results JSON                 (default BENCH_results.json)
     HEALTH_OUT  health JSONL stream          (default soak_health.jsonl)
     FLIGHT_OUT  flight-recorder dump         (default soak_flight.json)

   Results are MERGED into OUT under experiment id "SOAK" (micro.ml's
   scheme: other experiments preserved, SOAK replaced). The ≤5%
   monitoring-overhead target is printed as a measurement, not asserted:
   on the oversubscribed CI container wall-clock deltas of that size are
   routinely noise (see EXPERIMENTS.md for the methodology). *)

let quick = Sys.getenv_opt "QUICK" <> None

let getenv_f name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

let getenv_i name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let duration_s = getenv_f "SOAK_S" (if quick then 1.0 else 4.0)
let workers = getenv_i "WORKERS" 4

let out_path =
  match Sys.getenv_opt "OUT" with Some p -> p | None -> "BENCH_results.json"

let health_out =
  match Sys.getenv_opt "HEALTH_OUT" with
  | Some p -> p
  | None -> "soak_health.jsonl"

let flight_out =
  match Sys.getenv_opt "FLIGHT_OUT" with
  | Some p -> p
  | None -> "soak_flight.json"

(* ---- workload ----

   Three structures over one pool — the paper's counter, a FIFO, and a
   skip list — hammered from a grain-1 parallel loop so every index is
   a separate task and the pending array sees real contention. The mix
   is index-driven (deterministic): half counter bumps, a quarter FIFO
   enqueue/dequeue pairs, a quarter skip-list inserts/membership. *)

type structures = {
  counter : (Batched.Counter.t, Batched.Counter.op) Runtime.Batcher_rt.t;
  fifo : (Batched.Fifo.t, Batched.Fifo.op) Runtime.Batcher_rt.t;
  skiplist : (Batched.Skiplist.t, Batched.Skiplist.op) Runtime.Batcher_rt.t;
}

let n_structures = 3

let make_structures ?(batch_mode = Runtime.Batcher_rt.Faa_array) pool =
  {
    counter =
      Runtime.Batcher_rt.create ~mode:batch_mode ~sid:0 ~pool
        ~state:(Batched.Counter.create ())
        ~run_batch:(fun _ st ops -> Batched.Counter.run_batch st ops)
        ();
    fifo =
      Runtime.Batcher_rt.create ~mode:batch_mode ~sid:1 ~pool
        ~state:(Batched.Fifo.create ())
        ~run_batch:(fun _ st ops -> Batched.Fifo.run_batch st ops)
        ();
    skiplist =
      Runtime.Batcher_rt.create ~mode:batch_mode ~sid:2 ~pool
        ~state:(Batched.Skiplist.create ())
        ~run_batch:(fun p st ops ->
          Batched.Skiplist.run_batch_with
            ~pfor:(fun n body ->
              Runtime.Pool.parallel_for p ~lo:0 ~hi:n body)
            st ops)
        ();
  }

let round_ops = if quick then 512 else 2_048

let one_round pool s base =
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:round_ops (fun i ->
          match i land 3 with
          | 0 | 1 -> Runtime.Batcher_rt.batchify s.counter (Batched.Counter.op 1)
          | 2 ->
              if i land 4 = 0 then
                Runtime.Batcher_rt.batchify s.fifo (Batched.Fifo.enqueue i)
              else Runtime.Batcher_rt.batchify s.fifo (Batched.Fifo.dequeue ())
          | _ ->
              let key = (base + i) land 0xFFFF in
              if i land 4 = 0 then
                Runtime.Batcher_rt.batchify s.skiplist
                  (Batched.Skiplist.insert key)
              else
                Runtime.Batcher_rt.batchify s.skiplist
                  (Batched.Skiplist.mem key)))

(* Run rounds until the deadline; returns (ops, elapsed_ns). *)
let soak_loop ?(dur = duration_s) pool s =
  let t0 = Obs.Clock.now_ns () in
  let deadline = t0 + int_of_float (dur *. 1e9) in
  let ops = ref 0 in
  while Obs.Clock.now_ns () < deadline do
    one_round pool s !ops;
    ops := !ops + round_ops
  done;
  (!ops, Obs.Clock.now_ns () - t0)

(* ---- legs ---- *)

type leg = {
  mode : string;
  batch_mode : string;  (* Batcher_rt mode the structures ran under *)
  ops : int;
  elapsed_ns : int;
  rate : float;  (* ops/s *)
  violations : int;
  by_check : (string * int) list;  (* nonzero per-check counters *)
  stalls : int;
  checks_run : int;
  health_lines : int;  (* JSONL lines streamed; 0 when not streaming *)
}

let nonzero_checks inv =
  let v = Obs.Invariants.violations inv in
  List.filter
    (fun (_, n) -> n > 0)
    (List.init (Array.length v) (fun i ->
         (Obs.Recorder.check_name (Obs.Recorder.check_of_code i), v.(i))))

let rate ~ops ~ns =
  if ns <= 0 then 0.0 else float_of_int ops *. 1e9 /. float_of_int ns

let run_off ?dur () =
  let pool = Runtime.Pool.create ~num_workers:workers () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let s = make_structures pool in
      one_round pool s 0 (* warmup: wake domains, fault pages *);
      let ops, elapsed_ns = soak_loop ?dur pool s in
      {
        mode = "off";
        batch_mode = Runtime.Batcher_rt.(mode_name Faa_array);
        ops;
        elapsed_ns;
        rate = rate ~ops ~ns:elapsed_ns;
        violations = 0;
        by_check = [];
        stalls = 0;
        checks_run = 0;
        health_lines = 0;
      })

let count_lines path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        !n)
  end

(* [record]: also attach the event recorder — the deep-dive layer the
   flight recorder rings live in. [stream] (implies [record]): snapshot
   sampler thread + armed flight recorder, the full CI configuration.
   The "sampled, no recorder" leg is the always-on production story
   whose overhead the ≤5% target is about; the event stream costs an
   order of magnitude more per op (every status/steal/issue/done event
   is a ring write plus a clock read) and is priced separately.

   Lemma-2 bound: the paper's 2 assumes at most P concurrent ops (one
   per worker on the dual-deque scheduler). This soak deliberately
   parks up to [round_ops] suspended tasks at once on a cap-P array,
   so an op at the back of the FIFO overflow queue legitimately waits
   through ~round_ops/P launches. Bound 4·round_ops therefore never
   fires on correct behavior but still catches runaway starvation
   (an op stuck across relaunch cycles without being collected). *)
let run_monitored ?(batch_mode = Runtime.Batcher_rt.Faa_array) ~mode_name
    ~mode ~record ~stream () =
  let record = record || stream in
  let rc =
    if record then Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers ()
    else Obs.Recorder.null
  in
  let inv =
    Obs.Invariants.create ~mode ~lemma2_bound:(4 * round_ops) ~recorder:rc
      ~structures:n_structures ()
  in
  let hl =
    Obs.Health.create ~invariants:inv ~stall_ns:2_000_000_000 ~workers
      ~structures:n_structures ()
  in
  let flight =
    if stream then
      Some
        (Obs.Flight.create ~path:flight_out
           ~extra:(fun () -> Obs.Health.to_json hl)
           rc)
    else None
  in
  Option.iter Obs.Flight.arm flight;
  let pool = Runtime.Pool.create ~recorder:rc ~health:hl ~num_workers:workers () in
  let stop = Atomic.make false in
  let sampler =
    if not stream then None
    else begin
      let snap = Obs.Snapshot.to_file ~health:hl rc ~path:health_out in
      Some
        ( snap,
          Domain.spawn (fun () ->
              Obs.Snapshot.every snap ~interval_s:0.1 ~stop:(fun () ->
                  Atomic.get stop)) )
    end
  in
  let finish () =
    Atomic.set stop true;
    Option.iter
      (fun (snap, d) ->
        Domain.join d;
        Obs.Snapshot.close snap)
      sampler;
    Runtime.Pool.teardown pool
  in
  Fun.protect ~finally:finish (fun () ->
      let s = make_structures ~batch_mode pool in
      one_round pool s 0;
      let ops, elapsed_ns = soak_loop pool s in
      Option.iter
        (fun f ->
          ignore (Obs.Flight.dump ~reason:"soak-complete" f);
          Obs.Flight.disarm f)
        flight;
      {
        mode = mode_name;
        batch_mode = Runtime.Batcher_rt.mode_name batch_mode;
        ops;
        elapsed_ns;
        rate = rate ~ops ~ns:elapsed_ns;
        violations = Obs.Invariants.total_violations inv;
        by_check = nonzero_checks inv;
        stalls = Obs.Health.stall_count hl;
        checks_run = Obs.Invariants.checks_run inv;
        health_lines = (if stream then count_lines health_out else 0);
      })

(* ---- report ---- *)

let read_existing path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.Json.parse s with
    | Ok (Obs.Json.Obj fields) -> Some fields
    | Ok _ | Error _ -> None
  end

let merge_out new_exps =
  let new_ids =
    List.filter_map
      (fun e ->
        match Obs.Json.member "id" e with
        | Some (Obs.Json.Str s) -> Some s
        | _ -> None)
      new_exps
  in
  let fields =
    match read_existing out_path with
    | Some fields -> fields
    | None ->
        [
          ("schema_version", Obs.Json.Int 1);
          ("generated_by", Obs.Json.Str "bench/soak.exe");
          ("quick", Obs.Json.Bool quick);
          ("only", Obs.Json.Null);
          ("experiments", Obs.Json.List []);
        ]
  in
  let old_exps =
    match List.assoc_opt "experiments" fields with
    | Some (Obs.Json.List l) ->
        List.filter
          (fun e ->
            match Obs.Json.member "id" e with
            | Some (Obs.Json.Str s) -> not (List.mem s new_ids)
            | _ -> true)
          l
    | _ -> []
  in
  let fields =
    List.map
      (fun (k, v) ->
        if k = "experiments" then (k, Obs.Json.List (old_exps @ new_exps))
        else (k, v))
      fields
  in
  let fields =
    if List.mem_assoc "experiments" fields then fields
    else fields @ [ ("experiments", Obs.Json.List new_exps) ]
  in
  Batcher_core.Report_json.write_file ~path:out_path (Obs.Json.Obj fields)

let () =
  Printf.printf
    "== SOAK: %g s/leg, %d workers, %d structures, round=%d ops ==\n%!"
    duration_s workers n_structures round_ops;
  (* Unmeasured warmup: the first half-second of a fresh process runs
     visibly slower (code paging, allocator growth, domain spin-up), and
     it would all land on whichever leg runs first. *)
  ignore (run_off ~dur:(Float.min 0.5 duration_s) ());
  let legs =
    [
      run_off ();
      run_monitored ~mode_name:"sampled" ~mode:(Obs.Invariants.Sampled 16)
        ~record:false ~stream:false ();
      run_monitored ~mode_name:"exact" ~mode:Obs.Invariants.Exact ~record:true
        ~stream:true ();
    ]
    (* One sustained leg per alternative batch-path mode, under the
       always-on (sampled) monitoring config: the online checkers audit
       each mode for the whole leg, and the rate is the head-to-head
       against the faa-array "sampled" leg above. *)
    @ List.map
        (fun batch_mode ->
          run_monitored ~batch_mode ~mode_name:"sampled"
            ~mode:(Obs.Invariants.Sampled 16) ~record:false ~stream:false ())
        Runtime.Batcher_rt.[ Worker_id; Par_combine; Atomic_list ]
  in
  let off_rate =
    match legs with l :: _ -> l.rate | [] -> assert false
  in
  let delta_pct l =
    if l.mode = "off" || off_rate <= 0.0 then 0.0
    else (off_rate -. l.rate) /. off_rate *. 100.0
  in
  (* Absolute per-op cost of the monitoring layer — the robust number:
     the percentage depends on how much work an op does (this soak's
     counter ops are nearly free, an adversarial denominator), the
     ns/op difference does not. *)
  let delta_ns l =
    if l.mode = "off" || off_rate <= 0.0 || l.rate <= 0.0 then 0.0
    else ((1.0 /. l.rate) -. (1.0 /. off_rate)) *. 1e9
  in
  Printf.printf "%-8s %-14s %10s %10s %12s %8s %8s %6s %6s %8s %8s\n" "mode"
    "batch_mode" "ops" "ms" "ops/s" "delta%" "ns/op" "viol" "stall" "checks"
    "lines";
  List.iter
    (fun l ->
      Printf.printf
        "%-8s %-14s %10d %10.0f %12.0f %8.1f %8.0f %6d %6d %8d %8d\n" l.mode
        l.batch_mode l.ops
        (float_of_int l.elapsed_ns /. 1e6)
        l.rate (delta_pct l) (delta_ns l) l.violations l.stalls l.checks_run
        l.health_lines)
    legs;
  Printf.printf
    "(target: always-on leg <= 5%% on ops with real work — judge by ns/op \
     here: this soak's ops are nearly free and the container is shared; \
     see EXPERIMENTS.md)\n";
  (* The soak is also a test: a healthy run must be quiet. *)
  let bad =
    List.concat_map
      (fun l ->
        (if l.violations > 0 then
           [
             Printf.sprintf "%s/%s: %d checker violations (%s)" l.mode
               l.batch_mode l.violations
               (String.concat ", "
                  (List.map
                     (fun (name, n) -> Printf.sprintf "%s=%d" name n)
                     l.by_check));
           ]
         else [])
        @
        if l.stalls > 0 then
          [ Printf.sprintf "%s/%s: %d stall episodes" l.mode l.batch_mode
              l.stalls ]
        else [])
      legs
  in
  let rows =
    List.map
      (fun l ->
        Obs.Json.Obj
          [
            ("mode", Obs.Json.Str l.mode);
            ("batch_mode", Obs.Json.Str l.batch_mode);
            ("workers", Obs.Json.Int workers);
            ("duration_s", Obs.Json.Float duration_s);
            ("ops", Obs.Json.Int l.ops);
            ("elapsed_ns", Obs.Json.Int l.elapsed_ns);
            ("ops_per_sec", Obs.Json.Float l.rate);
            ("overhead_pct_vs_off", Obs.Json.Float (delta_pct l));
            ("overhead_ns_per_op", Obs.Json.Float (delta_ns l));
            ("violations", Obs.Json.Int l.violations);
            ( "violations_by_check",
              Obs.Json.Obj
                (List.map (fun (k, n) -> (k, Obs.Json.Int n)) l.by_check) );
            ("stalls", Obs.Json.Int l.stalls);
            ("checks_run", Obs.Json.Int l.checks_run);
            ("health_lines", Obs.Json.Int l.health_lines);
          ])
      legs
  in
  merge_out
    [
      Obs.Json.Obj
        [
          ("id", Obs.Json.Str "SOAK");
          ( "title",
            Obs.Json.Str
              "SOAK — monitoring overhead (off vs sampled vs exact online \
               checkers) and per-batch-mode sustained legs" );
          ("rows", Obs.Json.List rows);
        ];
    ];
  Printf.printf "[soak] merged SOAK into %s; health stream %s; flight %s\n%!"
    out_path health_out flight_out;
  match bad with
  | [] -> ()
  | msgs ->
      List.iter (fun m -> Printf.printf "[soak] FAIL %s\n" m) msgs;
      exit 1
