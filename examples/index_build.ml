(* Bulk index construction with an implicitly batched 2-3 tree — the
   search-tree scenario of the paper's Section 3 (Paul-Vishkin-Wagener
   batched dictionary).

   A parallel loop inserts n keys; a second parallel phase issues mixed
   membership queries against the finished index. All accesses go through
   BATCHIFY; the tree code itself contains no concurrency control. The
   index is verified against Stdlib.Set, and the Theorem-1 prediction
   O((T1 + n lg n)/P + m lg n + T_inf) is printed alongside.

   Run with: dune exec examples/index_build.exe [workers] [keys] *)

module T23 = Batched.Two_three

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let n = try int_of_string Sys.argv.(2) with _ -> 5_000 in
  let rng = Util.Rng.create ~seed:99 in
  let keys = Array.init n (fun _ -> Util.Rng.int rng (4 * n)) in

  let pool = Runtime.Pool.create ~num_workers:workers () in
  (* The 2-3 tree is functional; the batcher's state is a mutable root. *)
  let root = ref T23.empty in
  let batcher =
    Runtime.Batcher_rt.create ~pool ~state:root
      ~run_batch:(fun _pool root ops -> root := T23.run_batch !root ops)
      ()
  in

  (* Phase 1: parallel bulk insert. *)
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
          Runtime.Batcher_rt.batchify batcher (T23.insert_op keys.(i))));
  T23.check_invariants !root;

  (* Phase 2: parallel queries (present and absent keys). *)
  let hits = Atomic.make 0 in
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
          let probe = if i mod 2 = 0 then keys.(i) else (4 * n) + i in
          let op = T23.mem_op probe in
          Runtime.Batcher_rt.batchify batcher op;
          match op with
          | T23.Mem r -> if r.T23.found then ignore (Atomic.fetch_and_add hits 1)
          | T23.Insert _ | T23.Delete _ -> assert false));

  (* Oracle. *)
  let module IS = Set.Make (Int) in
  let expected = Array.fold_left (fun s k -> IS.add k s) IS.empty keys in
  let agree = T23.to_sorted_list !root = IS.elements expected in
  let stats = Runtime.Batcher_rt.stats batcher in

  Printf.printf "workers          : %d\n" workers;
  Printf.printf "keys inserted    : %d (%d distinct)\n" n (T23.size !root);
  Printf.printf "tree height      : %d (lg n = %d)\n" (T23.height !root)
    (Batcher_core.Theory.log2i (T23.size !root));
  Printf.printf "queries hit      : %d / %d\n" (Atomic.get hits) n;
  Printf.printf "matches Set      : %b\n" agree;
  Printf.printf "batches          : %d (largest %d, %d ops total)\n"
    stats.Runtime.Batcher_rt.batches stats.Runtime.Batcher_rt.max_batch
    stats.Runtime.Batcher_rt.ops;
  let bound =
    Batcher_core.Theory.predict
      (Batcher_core.Theory.search_tree_example ~initial:1 ~records_per_node:1)
      ~p:workers ~t1:(2 * n) ~t_inf:(Batcher_core.Theory.log2i n) ~n_ops:(2 * n) ~m:2
      ~n_records:(2 * n)
  in
  Printf.printf "Theorem 1 bound  : O(%d) model steps on %d workers\n" bound workers;
  Runtime.Pool.teardown pool;
  if not agree then exit 1
