(* Word-frequency histogram with a batched hash table plus a batched
   counter — two implicitly batched structures used side by side from
   one parallel program, which the modular performance theorem prices
   independently.

   A parallel loop classifies synthetic "words" (Zipf-ish distributed
   keys); each iteration bumps the word's bucket in a hash table via
   read-modify-write through BATCHIFY and counts processed items in a
   batched counter. Verified against a sequential histogram.

   Note the read-modify-write idiom: a lookup and an insert of the same
   key in one batch would see the phase ordering of the BOP, so the
   program instead keeps per-word partial counts locally and merges once
   per word occurrence — the merge op is a single Insert whose value
   accumulates via the fetched old value. To stay simple (and because
   BATCHER linearizes batches), we express the bump as Lookup-then-Insert
   in two separate batchify calls; Invariant 1 makes each call atomic
   with respect to whole batches, and a lost update between the two
   calls is prevented by giving every word a dedicated owner stripe.

   Run with: dune exec examples/histogram.exe [workers] [items] [vocab] *)

module H = Batched.Hashtable

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let items = try int_of_string Sys.argv.(2) with _ -> 20_000 in
  let vocab = try int_of_string Sys.argv.(3) with _ -> 128 in
  let rng = Util.Rng.create ~seed:123 in
  (* Zipf-flavoured draw: word w with weight ~ 1/(w+1). *)
  let draw () =
    let r = Util.Rng.float rng 1.0 in
    let x = int_of_float (float_of_int vocab ** r) - 1 in
    min (vocab - 1) (max 0 x)
  in
  let words = Array.init items (fun _ -> draw ()) in

  (* Sequential reference histogram. *)
  let reference = Array.make vocab 0 in
  Array.iter (fun w -> reference.(w) <- reference.(w) + 1) words;

  let pool = Runtime.Pool.create ~num_workers:workers () in
  let table = H.create () in
  let table_b =
    Runtime.Batcher_rt.create ~pool ~state:table
      ~run_batch:(fun _pool t ops -> H.run_batch t ops)
      ()
  in
  let counter = Batched.Counter.create () in
  let counter_b =
    Runtime.Batcher_rt.create ~pool ~state:counter
      ~run_batch:(fun _pool c ops -> Batched.Counter.run_batch c ops)
      ()
  in

  (* Stripe the items so each word is counted by one owning task: the
     parallel loop is over the vocabulary, each owner scanning its
     occurrences — disjoint keys, no lost updates. *)
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:vocab (fun w ->
          let mine = ref 0 in
          Array.iter (fun x -> if x = w then incr mine) words;
          if !mine > 0 then begin
            Runtime.Batcher_rt.batchify table_b (H.insert ~key:w ~value:!mine);
            Runtime.Batcher_rt.batchify counter_b (Batched.Counter.op !mine)
          end));

  H.check_invariants table;
  let ok = ref true in
  for w = 0 to vocab - 1 do
    let got = H.lookup_seq table w in
    let expect = if reference.(w) = 0 then None else Some reference.(w) in
    if got <> expect then ok := false
  done;
  let tstats = Runtime.Batcher_rt.stats table_b in
  Printf.printf "workers         : %d\n" workers;
  Printf.printf "items           : %d over %d words\n" items vocab;
  Printf.printf "distinct words  : %d\n" (H.length table);
  Printf.printf "counter total   : %d (expected %d)\n" (Batched.Counter.value counter) items;
  Printf.printf "table batches   : %d (largest %d)\n" tstats.Runtime.Batcher_rt.batches
    tstats.Runtime.Batcher_rt.max_batch;
  Printf.printf "histogram agrees: %b\n" !ok;
  Runtime.Pool.teardown pool;
  if (not !ok) || Batched.Counter.value counter <> items then exit 1
