(* Quickstart: the paper's Figure 1/2 example — n parallel increments to a
   shared counter, made safe and scalable by implicit batching.

   The program side (below) looks like ordinary fork-join code calling a
   blocking INCREMENT; the data-structure side is the four-line batched
   counter of Figure 2 (prefix sums over the batch). No locks, no atomics
   in user code.

   Run with: dune exec examples/quickstart.exe [workers] [n] *)

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let n = try int_of_string Sys.argv.(2) with _ -> 10_000 in
  let pool = Runtime.Pool.create ~num_workers:workers () in
  let counter = Batched.Counter.create () in

  (* The batched implementation (BOP): prefix sums over the operation
     records — executed by the scheduler, one batch at a time. *)
  let run_batch pool state (ops : Batched.Counter.op array) =
    let amounts = Array.map (fun (o : Batched.Counter.op) -> o.Batched.Counter.amount) ops in
    let sums = Runtime.Pool.parallel_prefix_sums pool amounts in
    let base = Batched.Counter.value state in
    Runtime.Pool.parallel_for pool ~lo:0 ~hi:(Array.length ops) (fun i ->
        ops.(i).Batched.Counter.result <- base + sums.(i));
    let total = if Array.length sums = 0 then 0 else sums.(Array.length sums - 1) in
    ignore (Batched.Counter.increment_seq state total)
  in
  let batcher = Runtime.Batcher_rt.create ~pool ~state:counter ~run_batch () in

  (* The core program: a parallel loop of blocking INCREMENT calls. *)
  let results = Array.make n 0 in
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
          let op = Batched.Counter.op 1 in
          Runtime.Batcher_rt.batchify batcher op;
          results.(i) <- op.Batched.Counter.result));

  let stats = Runtime.Batcher_rt.stats batcher in
  Printf.printf "workers            : %d\n" workers;
  Printf.printf "increments         : %d\n" n;
  Printf.printf "final counter value: %d\n" (Batched.Counter.value counter);
  Printf.printf "batches launched   : %d (largest %d)\n"
    stats.Runtime.Batcher_rt.batches stats.Runtime.Batcher_rt.max_batch;

  (* Linearizability check: every value 1..n returned exactly once. *)
  let sorted = Array.copy results in
  Array.sort compare sorted;
  let linearizable = sorted = Array.init n (fun i -> i + 1) in
  Printf.printf "linearizable       : %b\n" linearizable;

  (* What Theorem 1 predicts for this program, in model timesteps. *)
  let t1 = n and t_inf = Batcher_core.Theory.log2i n in
  let bound =
    Batcher_core.Theory.predict
      (Batcher_core.Theory.counter_example ~records_per_node:1)
      ~p:workers ~t1 ~t_inf ~n_ops:n ~m:1 ~n_records:n
  in
  Printf.printf "Theorem 1 bound    : O(%d) model steps on %d workers\n" bound workers;
  Runtime.Pool.teardown pool;
  if not linearizable then exit 1
