(* Level-synchronized parallel BFS with an implicitly batched FIFO
   frontier queue.

   Each level expands in a parallel loop over the current frontier;
   newly discovered vertices are ENQUEUEd through BATCHIFY (so
   concurrent discoveries coalesce into queue batches), and the next
   frontier is drained with batched DEQUEUEs. Distances are claimed with
   a CAS so each vertex is enqueued exactly once. Verified against a
   sequential BFS.

   Run with: dune exec examples/bfs.exe [workers] [vertices] [degree] *)

module Q = Batched.Fifo

let build_graph ~rng ~vertices ~degree =
  Array.init vertices (fun u ->
      let backbone = if u + 1 < vertices then [ u + 1 ] else [] in
      let extra = List.init degree (fun _ -> Util.Rng.int rng vertices) in
      Array.of_list (backbone @ extra))

let sequential_bfs graph src =
  let n = Array.length graph in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      graph.(u)
  done;
  dist

let batched_bfs pool graph src =
  let n = Array.length graph in
  let dist = Array.init n (fun _ -> Atomic.make (-1)) in
  Atomic.set dist.(src) 0;
  let frontier_q = Q.create () in
  let batcher =
    Runtime.Batcher_rt.create ~pool ~state:frontier_q
      ~run_batch:(fun _pool q ops -> Q.run_batch q ops)
      ()
  in
  Runtime.Pool.run pool (fun () ->
      let rec levels frontier depth =
        if Array.length frontier > 0 then begin
          (* Expand the level in parallel; discoveries enqueue through
             the batcher. *)
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:(Array.length frontier)
            (fun i ->
              let u = frontier.(i) in
              Array.iter
                (fun v ->
                  if Atomic.compare_and_set dist.(v) (-1) (depth + 1) then
                    Runtime.Batcher_rt.batchify batcher (Q.enqueue v))
                graph.(u));
          (* Drain the queue into the next frontier with batched
             dequeues (size is known: everything enqueued this level). *)
          let next_size = Q.size frontier_q in
          let next = Array.make next_size (-1) in
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:next_size (fun i ->
              let op = Q.dequeue () in
              Runtime.Batcher_rt.batchify batcher op;
              match op with
              | Q.Dequeue { dequeued = Some v } -> next.(i) <- v
              | Q.Dequeue { dequeued = None } | Q.Enqueue _ -> assert false);
          levels next (depth + 1)
        end
      in
      levels [| src |] 0);
  (Array.map Atomic.get dist, Runtime.Batcher_rt.stats batcher)

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let vertices = try int_of_string Sys.argv.(2) with _ -> 5_000 in
  let degree = try int_of_string Sys.argv.(3) with _ -> 3 in
  let rng = Util.Rng.create ~seed:77 in
  let graph = build_graph ~rng ~vertices ~degree in
  let pool = Runtime.Pool.create ~num_workers:workers () in
  let reference = sequential_bfs graph 0 in
  let parallel, stats = batched_bfs pool graph 0 in
  let agree = reference = parallel in
  let max_depth = Array.fold_left max 0 reference in
  Printf.printf "vertices        : %d (degree ~%d)\n" vertices (degree + 1);
  Printf.printf "max BFS depth   : %d\n" max_depth;
  Printf.printf "queue ops       : %d in %d batches (largest %d)\n"
    stats.Runtime.Batcher_rt.ops stats.Runtime.Batcher_rt.batches
    stats.Runtime.Batcher_rt.max_batch;
  Printf.printf "distances agree : %b\n" agree;
  Runtime.Pool.teardown pool;
  if not agree then exit 1
