(* Streaming percentile analytics with a batched order-statistic tree.

   A parallel loop ingests latency samples into a weight-balanced tree
   through BATCHIFY; a second parallel phase asks rank and select
   queries (p50/p90/p99, and "how many samples exceed the SLO?") against
   the finished index. Results are verified against a sorted array.

   This is the augmented-dictionary scenario of the bulk-update search
   trees the paper's related work cites: each operation costs O(lg n),
   so W(n) = O(n lg n) and s(n) = O(lg n + lg P) — the same regime as
   E4, with strictly richer queries.

   Run with: dune exec examples/percentiles.exe [workers] [samples] *)

module Os = Batched.Ostree

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let n = try int_of_string Sys.argv.(2) with _ -> 10_000 in
  let rng = Util.Rng.create ~seed:5150 in
  (* Synthetic latency distribution: lognormal-ish via summed uniforms,
     de-duplicated by a distinct low-order tag so the set tree keeps
     every sample. *)
  let samples =
    Array.init n (fun i ->
        let base =
          100 + Util.Rng.int rng 200 + Util.Rng.int rng 200 + Util.Rng.int rng 1600
        in
        (base * n) + i)
  in
  let latency_of s = s / n in

  let pool = Runtime.Pool.create ~num_workers:workers () in
  let root = ref Os.empty in
  let batcher =
    Runtime.Batcher_rt.create ~pool ~state:root
      ~run_batch:(fun _pool root ops -> root := Os.run_batch !root ops)
      ()
  in

  (* Phase 1: parallel ingest. *)
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
          Runtime.Batcher_rt.batchify batcher (Os.insert_op samples.(i))));
  Os.check_invariants !root;

  (* Phase 2: parallel queries. *)
  let percentiles = [| 50; 90; 95; 99 |] in
  let answers = Array.make (Array.length percentiles) None in
  let slo = 1500 * n in
  let over_slo = ref 0 in
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0
        ~hi:(Array.length percentiles + 1)
        (fun qi ->
          if qi < Array.length percentiles then begin
            let idx = (percentiles.(qi) * (n - 1)) / 100 in
            let op = Os.select_op idx in
            Runtime.Batcher_rt.batchify batcher op;
            match op with
            | Os.Select s -> answers.(qi) <- s.Os.selected
            | _ -> assert false
          end
          else begin
            let op = Os.rank_op slo in
            Runtime.Batcher_rt.batchify batcher op;
            match op with
            | Os.Rank r -> over_slo := n - r.Os.rank_result
            | _ -> assert false
          end));

  (* Oracle. *)
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let ok = ref true in
  Printf.printf "workers  : %d\nsamples  : %d (%d distinct stored)\n" workers n
    (Os.size !root);
  Array.iteri
    (fun qi p ->
      let idx = (p * (n - 1)) / 100 in
      let expect = sorted.(idx) in
      (match answers.(qi) with
      | Some got when got = expect -> ()
      | _ -> ok := false);
      Printf.printf "p%-2d      : %d ms\n" p (latency_of sorted.(idx)))
    percentiles;
  let expect_over =
    Array.fold_left (fun acc s -> if s >= slo then acc + 1 else acc) 0 sorted
  in
  if !over_slo <> expect_over then ok := false;
  Printf.printf "over SLO : %d samples (>= %d ms)\n" !over_slo (latency_of slo);
  let stats = Runtime.Batcher_rt.stats batcher in
  Printf.printf "batches  : %d (largest %d)\n" stats.Runtime.Batcher_rt.batches
    stats.Runtime.Batcher_rt.max_batch;
  Printf.printf "verified : %b\n" !ok;
  Runtime.Pool.teardown pool;
  if not !ok then exit 1
