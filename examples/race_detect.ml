(* On-the-fly determinacy-race detection through an implicitly batched
   SP-order structure — the paper's own motivating example of a data
   structure whose accesses cannot be grouped into batches by program
   restructuring: the SP maintenance must be updated at every fork
   before control flow continues.

   A fork-join program runs on the real runtime; every fork performs a
   blocking SP-order update through BATCHIFY, and every shared-memory
   write checks (again through BATCHIFY) whether it races with the
   previous writer of that cell. The program writes disjoint cells
   except for a deliberately seeded pair of parallel writes to one cell,
   which the detector must flag — and a pair of serially ordered writes,
   which it must not.

   Run with: dune exec examples/race_detect.exe [workers] [depth] *)

module Sp = Batched.Sp_order

type detector = {
  batcher : (Sp.t, Sp.op) Runtime.Batcher_rt.t;
  pool : Runtime.Pool.t;
  last_writer : Sp.strand option Atomic.t array;
  races : (int * int) list Atomic.t;  (* cell, strand id of second writer *)
}

(* Record a write by [strand] to [cell]; flags a race iff the previous
   writer is not serially before us. *)
let write d ~strand ~cell =
  let prev = Atomic.exchange d.last_writer.(cell) (Some strand) in
  match prev with
  | None -> ()
  | Some p ->
      let q = Sp.precedes_op p strand in
      Runtime.Batcher_rt.batchify d.batcher q;
      (match q with
      | Sp.Precedes r ->
          if not r.Sp.q_precedes then begin
            let rec add () =
              let old = Atomic.get d.races in
              if not (Atomic.compare_and_set d.races old ((cell, 0) :: old)) then add ()
            in
            add ()
          end
      | Sp.Fork _ -> assert false)

(* Fork the current strand through the batcher; returns (left, right,
   continuation). *)
let sp_fork d strand =
  let op = Sp.fork_op strand in
  Runtime.Batcher_rt.batchify d.batcher op;
  match op with
  | Sp.Fork r -> begin
      match r.Sp.left, r.Sp.right, r.Sp.continuation with
      | Some l, Some rr, Some c -> (l, rr, c)
      | _ -> failwith "fork record not filled"
    end
  | Sp.Precedes _ -> assert false

(* A divide-and-conquer computation over cells [lo, hi): leaves write
   their own cell; every internal node forks. Returns the strand that
   continues after the subtree. *)
let rec compute d strand lo hi =
  if hi - lo <= 1 then begin
    if hi > lo then write d ~strand ~cell:lo;
    strand
  end
  else begin
    let mid = (lo + hi) / 2 in
    let left, right, continuation = sp_fork d strand in
    let _ =
      Runtime.Pool.fork_join d.pool
        (fun () -> compute d left lo mid)
        (fun () -> compute d right mid hi)
    in
    continuation
  end

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let depth = try int_of_string Sys.argv.(2) with _ -> 8 in
  let cells = 1 lsl depth in
  let pool = Runtime.Pool.create ~num_workers:workers () in
  let sp, root = Sp.create () in
  let d =
    {
      batcher =
        Runtime.Batcher_rt.create ~pool ~state:sp
          ~run_batch:(fun _pool sp ops -> Sp.run_batch sp ops)
          ();
      pool;
      last_writer = Array.init (cells + 2) (fun _ -> Atomic.make None);
      races = Atomic.make [];
    }
  in

  Runtime.Pool.run pool (fun () ->
      (* Phase 1: race-free computation over disjoint cells. *)
      let after = compute d root 0 cells in
      (* Phase 2a: two parallel strands writing the SAME cell — a race. *)
      let racy_cell = cells in
      let l, r, after2 = sp_fork d after in
      let _ =
        Runtime.Pool.fork_join d.pool
          (fun () -> write d ~strand:l ~cell:racy_cell)
          (fun () -> write d ~strand:r ~cell:racy_cell)
      in
      (* Phase 2b: two serially ordered writes to one cell — no race. *)
      let serial_cell = cells + 1 in
      write d ~strand:after2 ~cell:serial_cell;
      let _, _, after3 = sp_fork d after2 in
      write d ~strand:after3 ~cell:serial_cell);

  let races = Atomic.get d.races in
  let stats = Runtime.Batcher_rt.stats d.batcher in
  Printf.printf "workers            : %d\n" workers;
  Printf.printf "cells written      : %d (+2 probe cells)\n" cells;
  Printf.printf "strands created    : %d\n" (Sp.strands sp);
  Printf.printf "SP ops batched     : %d in %d batches (largest %d)\n"
    stats.Runtime.Batcher_rt.ops stats.Runtime.Batcher_rt.batches
    stats.Runtime.Batcher_rt.max_batch;
  Printf.printf "races detected     : %d (expected exactly 1, on cell %d)\n"
    (List.length races) cells;
  Sp.check_invariants sp;
  let ok = List.length races = 1 && List.for_all (fun (c, _) -> c = cells) races in
  Printf.printf "detector correct   : %b\n" ok;
  Runtime.Pool.teardown pool;
  if not ok then exit 1
