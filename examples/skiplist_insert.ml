(* The paper's Section 7 experiment, end to end.

   Part 1 runs the real runtime: a parallel loop inserting keys into a
   batched skip list through BATCHIFY, against a plain sequential skip
   list — validating results and reporting wall-clock times and batch
   statistics. (On a machine with few cores, wall-clock speedup is not
   expected; the scheduler-model speedups are Part 2's job.)

   Part 2 reproduces Figure 5's *shape* in the discrete-event scheduler
   simulator at a reduced scale, printing throughput per worker count for
   several initial list sizes.

   Run with: dune exec examples/skiplist_insert.exe [workers] [inserts] *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let n = try int_of_string Sys.argv.(2) with _ -> 20_000 in
  let initial = 50_000 in

  (* Shuffled key sets: [0, initial) preloaded, [initial, initial+n) inserted. *)
  let rng = Util.Rng.create ~seed:7 in
  let fresh = Array.init n (fun i -> initial + i) in
  Util.Rng.shuffle rng fresh;

  Printf.printf "== Part 1: real runtime (%d workers, %d inserts, initial size %d)\n%!"
    workers n initial;

  (* Sequential baseline. *)
  let seq_list = Batched.Skiplist.create ~seed:1 () in
  for i = 0 to initial - 1 do
    ignore (Batched.Skiplist.insert_seq seq_list i)
  done;
  let (), seq_time =
    wall (fun () -> Array.iter (fun k -> ignore (Batched.Skiplist.insert_seq seq_list k)) fresh)
  in

  (* BATCHER. *)
  let bat_list = Batched.Skiplist.create ~seed:1 () in
  for i = 0 to initial - 1 do
    ignore (Batched.Skiplist.insert_seq bat_list i)
  done;
  let pool = Runtime.Pool.create ~num_workers:workers () in
  let batcher =
    (* The paper's BOP: the search phase of each batch runs in parallel
       on the pool; build and splice are sequential. *)
    Runtime.Batcher_rt.create ~pool ~state:bat_list
      ~run_batch:(fun pool sl ops ->
        Batched.Skiplist.run_batch_with
          ~pfor:(fun n body -> Runtime.Pool.parallel_for pool ~grain:8 ~lo:0 ~hi:n body)
          sl ops)
      ()
  in
  let (), bat_time =
    wall (fun () ->
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
                Runtime.Batcher_rt.batchify batcher (Batched.Skiplist.insert fresh.(i)))))
  in
  let stats = Runtime.Batcher_rt.stats batcher in
  Batched.Skiplist.check_invariants bat_list;
  Printf.printf "  SEQ     : %8.1f inserts/ms (length %d)\n"
    (float_of_int n /. (seq_time *. 1000.)) (Batched.Skiplist.length seq_list);
  Printf.printf "  BATCHER : %8.1f inserts/ms (length %d, %d batches, largest %d)\n"
    (float_of_int n /. (bat_time *. 1000.)) (Batched.Skiplist.length bat_list)
    stats.Runtime.Batcher_rt.batches stats.Runtime.Batcher_rt.max_batch;
  Printf.printf "  contents agree: %b\n%!"
    (Batched.Skiplist.to_list seq_list = Batched.Skiplist.to_list bat_list);
  Runtime.Pool.teardown pool;

  Printf.printf "\n== Part 2: scheduler-model reproduction of Figure 5 (reduced scale)\n%!";
  let rows =
    Batcher_core.Experiments.fig5 ~n_records:20_000 ~records_per_node:100
      ~ps:[ 1; 2; 4; 8 ]
      ~sizes:[ 20_000; 1_000_000; 100_000_000 ]
      ()
  in
  Batcher_core.Report.fig5 Format.std_formatter rows
