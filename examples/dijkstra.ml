(* Single-source shortest paths with an implicitly batched priority
   queue — the workload family (parallel SSSP via batched priority
   queues) that the paper's introduction cites as the classic use of
   batched data structures.

   The queue holds (tentative distance, vertex) pairs with lazy deletion.
   Settling a vertex relaxes its out-edges in a parallel loop whose body
   performs a blocking batched INSERT — so queue inserts from many edges
   are implicitly batched by the runtime, while the program reads like
   textbook Dijkstra. The result is checked against a sequential oracle.

   Run with: dune exec examples/dijkstra.exe [workers] [vertices] [degree] *)

let build_graph ~rng ~vertices ~degree =
  (* Random connected-ish digraph: a Hamiltonian backbone plus random
     extra edges, weights in 1..20. *)
  Array.init vertices (fun u ->
      let backbone = if u + 1 < vertices then [ (u + 1, 1 + Util.Rng.int rng 20) ] else [] in
      let extra =
        List.init degree (fun _ ->
            (Util.Rng.int rng vertices, 1 + Util.Rng.int rng 20))
      in
      Array.of_list (backbone @ extra))

let sequential_dijkstra graph src =
  let n = Array.length graph in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let q = ref (Batched.Pqueue.insert Batched.Pqueue.empty ~prio:0 ~value:src) in
  let rec loop () =
    match Batched.Pqueue.delete_min !q with
    | None -> ()
    | Some ((d, u), q') ->
        q := q';
        if d = dist.(u) then
          Array.iter
            (fun (v, w) ->
              if d + w < dist.(v) then begin
                dist.(v) <- d + w;
                q := Batched.Pqueue.insert !q ~prio:(d + w) ~value:v
              end)
            graph.(u);
        loop ()
  in
  loop ();
  dist

let batched_dijkstra pool graph src =
  let n = Array.length graph in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let dist_lock = Mutex.create () in
  let q = ref (Batched.Pqueue.insert Batched.Pqueue.empty ~prio:0 ~value:src) in
  let batcher =
    Runtime.Batcher_rt.create ~pool ~state:q
      ~run_batch:(fun _pool q ops -> q := Batched.Pqueue.run_batch !q ops)
      ()
  in
  Runtime.Pool.run pool (fun () ->
      let rec settle () =
        let e = Batched.Pqueue.extract_op () in
        Runtime.Batcher_rt.batchify batcher e;
        match e with
        | Batched.Pqueue.Extract_min { extracted = None } -> ()
        | Batched.Pqueue.Extract_min { extracted = Some (d, u) } ->
            if d = dist.(u) then
              (* Relax out-edges in parallel; inserts are implicitly
                 batched with whatever else is pending. *)
              Runtime.Pool.parallel_for pool ~grain:1 ~lo:0
                ~hi:(Array.length graph.(u))
                (fun i ->
                  let v, w = graph.(u).(i) in
                  let improved =
                    Mutex.lock dist_lock;
                    let better = d + w < dist.(v) in
                    if better then dist.(v) <- d + w;
                    Mutex.unlock dist_lock;
                    better
                  in
                  if improved then
                    Runtime.Batcher_rt.batchify batcher
                      (Batched.Pqueue.insert_op ~prio:(d + w) ~value:v));
            settle ()
        | Batched.Pqueue.Insert _ -> assert false
      in
      settle ());
  dist

let () =
  let workers = try int_of_string Sys.argv.(1) with _ -> 4 in
  let vertices = try int_of_string Sys.argv.(2) with _ -> 2_000 in
  let degree = try int_of_string Sys.argv.(3) with _ -> 4 in
  let rng = Util.Rng.create ~seed:2014 in
  let graph = build_graph ~rng ~vertices ~degree in
  let pool = Runtime.Pool.create ~num_workers:workers () in
  let reference = sequential_dijkstra graph 0 in
  let parallel = batched_dijkstra pool graph 0 in
  let stats =
    (* Re-derive how much batching happened by rerunning through a fresh
       instrumented structure is unnecessary; the batcher above was local
       to batched_dijkstra, so just report agreement. *)
    Array.for_all2 (fun a b -> a = b) reference parallel
  in
  let reachable = Array.fold_left (fun acc d -> if d < max_int then acc + 1 else acc) 0 reference in
  Printf.printf "vertices             : %d (degree ~%d)\n" vertices (degree + 1);
  Printf.printf "reachable from src   : %d\n" reachable;
  Printf.printf "distances agree      : %b\n" stats;
  Printf.printf "max finite distance  : %d\n"
    (Array.fold_left (fun acc d -> if d < max_int && d > acc then d else acc) 0 reference);
  Runtime.Pool.teardown pool;
  if not stats then exit 1
