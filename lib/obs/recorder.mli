(** Low-overhead per-worker event recorder.

    One preallocated ring buffer of flat integer slots per worker; a
    single writer per ring (each worker emits only its own events), so
    the hot path is five [int array] stores and an index bump — no
    allocation, no synchronization. When the ring fills, the oldest
    events are overwritten and counted in {!dropped}. The {!null}
    recorder is disabled: every [emit_*] returns after one field load,
    allocating nothing, so instrumented code can keep its hooks
    unconditionally.

    The same event vocabulary describes both substrates. The simulator
    stamps events with its discrete timestep counter
    ([clock = Timesteps]); the real runtime stamps them with monotonic
    nanoseconds relative to the recorder's creation
    ([clock = Nanoseconds], see {!now}). Sinks ({!Chrome}, {!Summary})
    read the clock kind from the recording. *)

type clock = Timesteps | Nanoseconds

(** The paper's worker-status machine (Section 4 / Figure 3). *)
type status = Free | Pending | Executing | Done

(** What a worker's time was spent {e doing}, bucketed by the terms of
    the paper's Theorem-1 bound: core-program work (the [T1] term),
    batch operation work (the [W(n)] term), LAUNCHBATCH setup/cleanup
    (the [n·s(n)] term), and scheduler bookkeeping that executes no DAG
    unit (resume handoffs in the simulator; steal/backoff/idle time in
    the real runtime). See {!Attrib}. *)
type work_class = Wcore | Wbatch | Wsetup | Wsched

(** Which online safety property a {!kind.Violation} event reports
    broken (see {!Invariants} and {!Health}): Invariant 1 (at most one
    batch of a structure in flight), Invariant 2 (batch size ≤ its
    cap), Invariant 3 (every collected op was pending exactly once —
    dual-deque discipline), the Lemma-2 batches-while-pending bound,
    and the {!Health} stall watchdog (ops pending but no launch within
    the threshold). *)
type check = Inv1 | Inv2 | Inv3 | Lemma2 | Stall

type kind =
  | Status of status  (** worker status transition *)
  | Steal of { victim : int; success : bool; batch_deque : bool }
      (** one steal attempt; [victim = -1] when no victim was available *)
  | Batch_start of { sid : int; size : int; setup : int; mode : int }
      (** LAUNCHBATCH by this worker: structure, working-set size,
          modeled setup/cleanup work ([0] when unknown, as in the real
          runtime), and the batch-path mode that launched it
          (0 faa-array/sim, 1 worker_id, 2 par_combine, 3 atomic_list;
          see {!Runtime.Batcher_rt.mode}) *)
  | Batch_end of { sid : int; size : int }
  | Op_issue of { sid : int }  (** a data-structure op parked (BATCHIFY) *)
  | Op_done of { sid : int; batches_seen : int; latency : int }
      (** the op's batch completed: latency in clock units since issue,
          and how many batches of its structure were launched while it
          was pending (Lemma 2 bounds this by 2 under the paper's
          scheduler) *)
  | Steals_suppressed of { count : int }
      (** [count] failed steal attempts made by this worker while it was
          in backoff, not individually recorded; flushed on its next
          successful steal so attempt totals stay truthful without idle
          workers flooding their rings *)
  | Work of { cls : work_class; units : int }
      (** a contiguous run of [units] clock units this worker spent in
          one work class, ending at the event's time. Emitters flush a
          run when the class changes (and at shutdown), so per-worker
          [Work] segments tile the worker's busy timeline without
          overlap — the invariant {!Attrib}'s conservation check rests
          on *)
  | Violation of { check : check; sid : int; arg : int }
      (** an online checker caught [check] broken for structure [sid];
          [arg] is the offending magnitude (concurrent batch count,
          oversized batch size, collection deficit, batches seen, or
          stall age) — see {!Invariants} for exact meanings *)

type event = { worker : int; time : int; kind : kind }

type t

val null : t
(** The disabled recorder: [enabled null = false], all emitters no-ops. *)

val create : ?capacity:int -> clock:clock -> workers:int -> unit -> t
(** [capacity] is per worker, rounded up to a power of two (default
    [65536] events ≈ 2.5 MB per worker). For [Nanoseconds] the epoch is
    the creation instant. *)

val enabled : t -> bool
val clock : t -> clock
val workers : t -> int

val now : t -> int
(** Nanoseconds since the recorder was created ([Nanoseconds] clock
    only; raises [Invalid_argument] on a [Timesteps] recorder — the
    simulator supplies its own times). *)

(* ---- hot-path emitters (scalar arguments only; no allocation) ---- *)

val emit_status : t -> worker:int -> time:int -> status -> unit
val emit_steal :
  t -> worker:int -> time:int -> victim:int -> success:bool -> batch_deque:bool -> unit
val emit_batch_start :
  t -> worker:int -> time:int -> sid:int -> size:int -> setup:int ->
  mode:int -> unit
(** [setup] and [mode] share a payload slot ([(setup lsl 2) lor mode]);
    [mode] must be in [0..3], [setup] below 2^60. *)

val emit_batch_end : t -> worker:int -> time:int -> sid:int -> size:int -> unit
val emit_op_issue : t -> worker:int -> time:int -> sid:int -> unit
val emit_op_done :
  t -> worker:int -> time:int -> sid:int -> batches_seen:int -> latency:int -> unit
val emit_steals_suppressed : t -> worker:int -> time:int -> count:int -> unit
val emit_work :
  t -> worker:int -> time:int -> cls:work_class -> units:int -> unit
val emit_violation :
  t -> worker:int -> time:int -> check:check -> sid:int -> arg:int -> unit

(* ---- live counters (safe to sample while a run is in flight) ---- *)

val n_tags : int
(** Number of event tags; the length of {!tag_totals}'s result. *)

val n_checks : int
(** Number of {!check} variants; {!check_code} maps onto [0..n_checks-1]. *)

val check_code : check -> int
val check_of_code : int -> check
val check_name : check -> string
(** Stable lowercase names ("inv1" … "stall") used by JSON sinks and
    [bin/monitor.exe]. *)

val tag_totals : t -> int array
(** Events emitted so far per tag (order: status, steal, batch_start,
    batch_end, op_issue, op_done, steals_suppressed, work, violation),
    summed over
    workers and {e including} events already overwritten by ring
    wraparound. Reading while workers are emitting is deliberately
    unsynchronized — each counter is a single plain-int load, so a
    sample may be a few events stale but never torn; this is what the
    {!Snapshot} streamer polls. *)

(* ---- read-out (after the run; not concurrency-safe during one) ---- *)

val length : t -> worker:int -> int
(** Events currently held for the worker (≤ capacity). *)

val dropped : t -> worker:int -> int
(** Events overwritten by ring wraparound for the worker. *)

val total_dropped : t -> int

val events_of_worker : t -> int -> event list
(** Chronological (oldest surviving first). *)

val all_events : t -> event list
(** All workers merged, sorted by time (stable within a worker). *)
