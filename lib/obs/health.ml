type slo = { wait_ns : int; exec_ns : int; ovf_ns : int }

let default_slo =
  { wait_ns = 100_000_000; exec_ns = 100_000_000; ovf_ns = 100_000_000 }

type phase = Wait | Exec | Ovf

let phase_idx = function Wait -> 0 | Exec -> 1 | Ovf -> 2
let phase_name = function Wait -> "wait" | Exec -> "exec" | Ovf -> "ovf"
let phases = [ Wait; Exec; Ovf ]

type t = {
  on : bool;
  inv : Invariants.t;
  workers : int;
  structures : int;
  slo : slo;
  stall_ns : int;
  hb : int array;  (* last beat (Clock ns) per worker; 0 = never *)
  hb_skip : int array;  (* beats until the next clock read, per worker *)
  pend : int Atomic.t array;  (* pending-op gauge per structure *)
  pending_since : int array;  (* ns; meaningful while pend > 0 *)
  last_launch : int array;  (* ns of the last collection per structure *)
  launches : int Atomic.t array;
  ops : int Atomic.t array;  (* ops with recorded phases per structure *)
  stalled : bool array;  (* an open watchdog episode per structure *)
  stalls : int Atomic.t;
  (* Histograms indexed ((worker * structures) + sid) * 3 + phase: one
     writer each (the launching worker), merged by readers. *)
  phase : Summary.Histo.t array;
  burn : int Atomic.t array;  (* sid * 3 + phase *)
}

let null =
  {
    on = false;
    inv = Invariants.null;
    workers = 0;
    structures = 0;
    slo = default_slo;
    stall_ns = 0;
    hb = [||];
    hb_skip = [||];
    pend = [||];
    pending_since = [||];
    last_launch = [||];
    launches = [||];
    ops = [||];
    stalled = [||];
    stalls = Atomic.make 0;
    phase = [||];
    burn = [||];
  }

let create ?(slo = default_slo) ?(stall_ns = 1_000_000_000)
    ?(invariants = Invariants.null) ~workers ~structures () =
  if workers < 1 then invalid_arg "Health.create: workers >= 1";
  if structures < 1 then invalid_arg "Health.create: structures >= 1";
  {
    on = true;
    inv = invariants;
    workers;
    structures;
    slo;
    stall_ns;
    hb = Array.make workers 0;
    hb_skip = Array.make workers 0;
    pend = Array.init structures (fun _ -> Atomic.make 0);
    pending_since = Array.make structures 0;
    last_launch = Array.make structures 0;
    launches = Array.init structures (fun _ -> Atomic.make 0);
    ops = Array.init structures (fun _ -> Atomic.make 0);
    stalled = Array.make structures false;
    stalls = Atomic.make 0;
    phase = Array.init (workers * structures * 3) (fun _ -> Summary.Histo.create ());
    burn = Array.init (structures * 3) (fun _ -> Atomic.make 0);
  }

let enabled t = t.on
let invariants t = t.inv
let workers t = t.workers
let structures t = t.structures

let[@inline] sid_ok t sid = sid >= 0 && sid < t.structures

(* The clock read (~30 ns) dominates a beat, and beats come once per
   scheduler-loop iteration, so only every 8th beat reads it: beat ages
   are at most 8 iterations stale — noise against the second-scale
   thresholds they feed, for 1/8th of the hot-path cost. *)
let[@inline] beat t ~worker =
  if t.on && worker >= 0 && worker < t.workers then begin
    let c = t.hb_skip.(worker) in
    if c = 0 then begin
      t.hb_skip.(worker) <- 7;
      t.hb.(worker) <- Clock.now_ns ()
    end
    else t.hb_skip.(worker) <- c - 1
  end

let op_issued t ~sid =
  if t.on && sid_ok t sid then begin
    let old = Atomic.fetch_and_add t.pend.(sid) 1 in
    (* Plain store; racing first-issuers write near-identical stamps. *)
    if old = 0 then t.pending_since.(sid) <- Clock.now_ns ()
  end

let batch_collected t ~sid ~size =
  if t.on && sid_ok t sid then begin
    ignore (Atomic.fetch_and_add t.pend.(sid) (-size));
    t.last_launch.(sid) <- Clock.now_ns ();
    Atomic.incr t.launches.(sid);
    t.stalled.(sid) <- false
  end

let op_phases t ~worker ~sid ~wait ~exec ~ovf =
  if t.on && sid_ok t sid && worker >= 0 && worker < t.workers then begin
    let base = (((worker * t.structures) + sid) * 3) in
    Summary.Histo.add t.phase.(base) wait;
    Summary.Histo.add t.phase.(base + 1) exec;
    Summary.Histo.add t.phase.(base + 2) ovf;
    Atomic.incr t.ops.(sid);
    let bb = sid * 3 in
    if wait > t.slo.wait_ns then Atomic.incr t.burn.(bb);
    if exec > t.slo.exec_ns then Atomic.incr t.burn.(bb + 1);
    if ovf > t.slo.ovf_ns then Atomic.incr t.burn.(bb + 2)
  end

let check_stalls ?now t =
  if t.on then begin
    let now = match now with Some v -> v | None -> Clock.now_ns () in
    for sid = 0 to t.structures - 1 do
      if Atomic.get t.pend.(sid) > 0 && not t.stalled.(sid) then begin
        (* The episode clock starts at the later of "structure became
           pending" and "last launch" — a structure being steadily
           drained never stalls however long its backlog lives. *)
        let since = max t.pending_since.(sid) t.last_launch.(sid) in
        if since > 0 && now - since > t.stall_ns then begin
          t.stalled.(sid) <- true;
          Atomic.incr t.stalls;
          Invariants.note_stall t.inv ~sid
        end
      end
    done
  end

let stall_count t = Atomic.get t.stalls

type watchdog = { wd_stop : bool Atomic.t; wd_dom : unit Domain.t option }

let watchdog_start ?(tick_s = 0.01) t =
  if (not t.on) || tick_s <= 0.0 then
    { wd_stop = Atomic.make true; wd_dom = None }
  else begin
    let stop = Atomic.make false in
    let dom =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            check_stalls t;
            Unix.sleepf tick_s
          done)
    in
    { wd_stop = stop; wd_dom = Some dom }
  end

let watchdog_stop w =
  Atomic.set w.wd_stop true;
  match w.wd_dom with None -> () | Some d -> Domain.join d

let heartbeat_age_ns t ~worker ~now =
  if (not t.on) || worker < 0 || worker >= t.workers || t.hb.(worker) = 0 then -1
  else now - t.hb.(worker)

let phase_histo t ~sid ph =
  let acc = ref (Summary.Histo.create ()) in
  if t.on && sid_ok t sid then
    for w = 0 to t.workers - 1 do
      acc :=
        Summary.Histo.merge !acc
          t.phase.((((w * t.structures) + sid) * 3) + phase_idx ph)
    done;
  !acc

let burn_count t ~sid ph =
  if t.on && sid_ok t sid then Atomic.get t.burn.((sid * 3) + phase_idx ph)
  else 0

let phase_json t ~sid ph =
  let h = phase_histo t ~sid ph in
  Json.Obj
    [
      ("count", Json.Int (Summary.Histo.count h));
      ("mean_ns", Json.Float (Summary.Histo.mean h));
      ("p50_ns", Json.Float (Summary.Histo.percentile h 0.5));
      ("p99_ns", Json.Float (Summary.Histo.percentile h 0.99));
      ("max_ns", Json.Int (Summary.Histo.max_v h));
      ("burn", Json.Int (burn_count t ~sid ph));
    ]

let to_json ?now t =
  if not t.on then Json.Null
  else begin
    let now = match now with Some v -> v | None -> Clock.now_ns () in
    Json.Obj
      [
        ("stall_ns", Json.Int t.stall_ns);
        ("stalls", Json.Int (stall_count t));
        ( "workers",
          Json.List
            (List.init t.workers (fun w ->
                 Json.Obj
                   [
                     ("w", Json.Int w);
                     ("beat_age_ns", Json.Int (heartbeat_age_ns t ~worker:w ~now));
                   ])) );
        ( "structures",
          Json.List
            (List.init t.structures (fun sid ->
                 Json.Obj
                   ([
                      ("sid", Json.Int sid);
                      ("pending", Json.Int (Atomic.get t.pend.(sid)));
                      ("launches", Json.Int (Atomic.get t.launches.(sid)));
                      ("ops", Json.Int (Atomic.get t.ops.(sid)));
                      ("stalled", Json.Bool t.stalled.(sid));
                    ]
                   @ List.map
                       (fun ph -> (phase_name ph, phase_json t ~sid ph))
                       phases))) );
        ("invariants", Invariants.to_json t.inv);
      ]
  end
