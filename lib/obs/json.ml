type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parser ---- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* Keep it simple: encode the code point as UTF-8 (no
                 surrogate-pair recombination — trace output never emits
                 astral characters). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
          | _ -> fail "bad escape");
          advance ();
          go ()
        end
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        (* A literal can overflow to ±infinity ("1e999"); the writer
           never emits non-finite values, so reading one back would
           smuggle in a float no JSON document can represent. *)
        | Some f when Float.is_finite f -> Float f
        | Some _ -> fail "non-finite number"
        | None -> fail "bad number")
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
