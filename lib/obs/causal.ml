(* The generic half of the causal what-if profiler: pure delta /
   ranking / divergence / reporting logic over abstract per-run
   measures. The concrete legs live in Svc.Causal (lib/obs cannot see
   sim or the service drivers): the sim leg re-runs Sim.Openloop under
   scaled Sim.Costs, the runtime leg re-runs Rt_driver under
   Batcher_rt delay injection; both reduce each run to a [measure] and
   hand the grid here. *)

type measure = {
  goodput : float;
  mean_ns : float;
  p99_ns : float;
  max_ns : float;
  bound_ns : float;
  per_class : (string * float) list;
}

type cell = {
  phase : string;
  family : string;
  speedup : float;
  m : measure;
  d_mean : float;
  d_p99 : float;
  d_goodput : float;
  d_bound : float;
  share_predicted : float;
  divergence : float;
  d_class : (string * float) list;
}

type profile = {
  exec : string;
  label : string;
  baseline : measure;
  shares : (string * float) list;
  cells : cell list;
  winner_measured : string option;
  winner_bound : string option;
  agree : bool option;
  divergent : (string * float) list;
}

let divergence_threshold = 0.05

(* Fractional improvement of a lower-is-better metric: +0.5 = the
   metric halved. NaN when the baseline carries no signal. *)
let improve ~baseline v =
  if Float.is_nan baseline || Float.is_nan v || baseline <= 0.0 then nan
  else (baseline -. v) /. baseline

let improve_up ~baseline v =
  if Float.is_nan baseline || Float.is_nan v || baseline <= 0.0 then nan
  else (v -. baseline) /. baseline

let cell ~baseline ~shares ~phase ~family ~share_of ~speedup m =
  if speedup < 1.0 then invalid_arg "Causal.cell: speedup >= 1";
  let share_predicted =
    match share_of with
    | None -> nan
    | Some name -> (
        match List.assoc_opt name shares with
        | None -> nan
        | Some s -> s *. (1.0 -. (1.0 /. speedup)))
  in
  let d_mean = improve ~baseline:baseline.mean_ns m.mean_ns in
  {
    phase;
    family;
    speedup;
    m;
    d_mean;
    d_p99 = improve ~baseline:baseline.p99_ns m.p99_ns;
    d_goodput = improve_up ~baseline:baseline.goodput m.goodput;
    d_bound = improve ~baseline:baseline.bound_ns m.bound_ns;
    share_predicted;
    divergence =
      (if Float.is_nan share_predicted then nan
       else d_mean -. share_predicted);
    d_class =
      List.filter_map
        (fun (cls, b) ->
          match List.assoc_opt cls m.per_class with
          | Some v -> Some (cls, improve ~baseline:b v)
          | None -> None)
        baseline.per_class;
  }

(* The headline comparison runs at each phase's deepest swept speedup:
   that is where a phase's causal effect (and any divergence from its
   share) is largest and least noise-prone. *)
let at_max_speedup cells =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt tbl c.phase with
      | Some best when best.speedup >= c.speedup -> ()
      | _ -> Hashtbl.replace tbl c.phase c)
    cells;
  List.filter_map
    (fun ph -> Hashtbl.find_opt tbl ph)
    (List.sort_uniq compare (List.map (fun c -> c.phase) cells))

let winner_by f cells =
  List.fold_left
    (fun acc c ->
      let v = f c in
      if Float.is_nan v then acc
      else
        match acc with
        | Some (_, best) when best >= v -> acc
        | _ -> Some (c.phase, v))
    None cells
  |> Option.map fst

let profile ~exec ~label ~baseline ~shares cells =
  let head = at_max_speedup cells in
  let winner_measured = winner_by (fun c -> c.d_mean) head in
  let winner_bound = winner_by (fun c -> c.d_bound) head in
  let agree =
    match (winner_measured, winner_bound) with
    | Some a, Some b -> Some (a = b)
    | _ -> None
  in
  let divergent =
    List.filter_map
      (fun c ->
        if
          (not (Float.is_nan c.divergence))
          && Float.abs c.divergence > divergence_threshold
        then Some (c.phase, c.divergence)
        else None)
      head
  in
  {
    exec;
    label;
    baseline;
    shares;
    cells;
    winner_measured;
    winner_bound;
    agree;
    divergent;
  }

(* ---- BENCH_results.json rows (experiment id CAUSAL) ----

   Identity fields: whatever the caller passes in [ident] (scenario,
   store, p, shards, mode...) plus exec/phase/speedup/cls; metrics:
   the measured figures, their deltas vs baseline, the share
   prediction and the divergence. The baseline is the phase="baseline"
   speedup=1 row. Speedup is rendered through the same float printer
   as every metric so identical grids produce byte-identical rows. *)

let num f = if Float.is_nan f then Json.Null else Json.Float f

let measure_fields m =
  [
    ("goodput", Json.Float m.goodput);
    ("mean_ns", Json.Float m.mean_ns);
    ("p99_ns", Json.Float m.p99_ns);
    ("max_ns", Json.Float m.max_ns);
    ("bound_ns", num m.bound_ns);
  ]

let rows ~ident t =
  let base ~phase ~speedup ~cls rest =
    Json.Obj
      ([ ("exec", Json.Str t.exec) ]
      @ ident
      @ [
          ("phase", Json.Str phase);
          ("speedup", Json.Str (Printf.sprintf "%g" speedup));
          ("cls", Json.Str cls);
        ]
      @ rest)
  in
  let baseline_row =
    base ~phase:"baseline" ~speedup:1.0 ~cls:"all"
      (measure_fields t.baseline
      @ List.map
          (fun (name, v) -> ("share_" ^ name, Json.Float v))
          t.shares)
  in
  let cell_rows =
    List.concat_map
      (fun c ->
        base ~phase:c.phase ~speedup:c.speedup ~cls:"all"
          (measure_fields c.m
          @ [
              ("d_mean", num c.d_mean);
              ("d_p99", num c.d_p99);
              ("d_goodput", num c.d_goodput);
              ("d_bound", num c.d_bound);
              ("share_predicted", num c.share_predicted);
              ("divergence", num c.divergence);
            ])
        :: List.map
             (fun (cls, d) ->
               base ~phase:c.phase ~speedup:c.speedup ~cls
                 [ ("d_mean", num d) ])
             c.d_class)
      t.cells
  in
  baseline_row :: cell_rows

(* ---- human-readable table ---- *)

let pct f = if Float.is_nan f then "    -  " else Printf.sprintf "%+6.1f%%" (100.0 *. f)

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "[causal] %s leg: %s" t.exec t.label;
  line
    "  baseline: goodput %.0f req/s  mean %.1fus  p99 %.1fus  max %.1fus%s"
    t.baseline.goodput (t.baseline.mean_ns /. 1e3)
    (t.baseline.p99_ns /. 1e3) (t.baseline.max_ns /. 1e3)
    (if Float.is_nan t.baseline.bound_ns then ""
     else Printf.sprintf "  thm1-budget %.1fus" (t.baseline.bound_ns /. 1e3));
  line "  shares: %s"
    (String.concat "  "
       (List.map
          (fun (n, v) -> Printf.sprintf "%s %.1f%%" n (100.0 *. v))
          t.shares));
  line "  %-12s %5s %8s %8s %8s %8s %9s %9s" "phase" "f" "dMean"
    "dP99" "dGoodpt" "dBound" "sharePred" "diverge";
  List.iter
    (fun c ->
      line "  %-12s %4gx %s  %s  %s  %s   %s   %s%s" c.phase c.speedup
        (pct c.d_mean) (pct c.d_p99) (pct c.d_goodput) (pct c.d_bound)
        (pct c.share_predicted) (pct c.divergence)
        (if
           (not (Float.is_nan c.divergence))
           && Float.abs c.divergence > divergence_threshold
         then "  DIVERGES"
         else ""))
    t.cells;
  (* Ranked causal profile per op class, at each phase's deepest
     speedup: the order optimization effort should follow. *)
  let head = at_max_speedup t.cells in
  let classes = List.map fst t.baseline.per_class in
  List.iter
    (fun cls ->
      let ranked =
        List.filter_map
          (fun c ->
            match List.assoc_opt cls c.d_class with
            | Some d when not (Float.is_nan d) -> Some (c.phase, d)
            | _ -> None)
          head
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      if ranked <> [] then
        line "  rank %-7s %s" cls
          (String.concat " > "
             (List.map
                (fun (ph, d) -> Printf.sprintf "%s(%+.0f%%)" ph (100.0 *. d))
                ranked)))
    classes;
  (match (t.winner_measured, t.winner_bound) with
  | Some m, Some bd ->
      line "  causal winner: %s; Theorem-1 bound winner: %s -- %s" m bd
        (if m = bd then "AGREE" else "DISAGREE")
  | Some m, None -> line "  causal winner: %s (bound not evaluated)" m
  | None, _ -> line "  causal winner: none (no cell improved the mean)");
  (match t.divergent with
  | [] -> line "  shares-vs-sensitivity: no phase diverges beyond %.0f%%"
            (100.0 *. divergence_threshold)
  | l ->
      line "  shares != sensitivity for: %s"
        (String.concat ", "
           (List.map
              (fun (ph, d) -> Printf.sprintf "%s (%+.0f%%)" ph (100.0 *. d))
              l)));
  Buffer.contents b
