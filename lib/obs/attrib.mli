(** Exact time attribution: fold a recording into the cost buckets of
    the paper's Theorem-1 bound
    [O((T1 + W(n) + n·s(n))/P + m·s(n) + T∞)].

    Every clock unit a worker was observed for lands in exactly one
    bucket, so on a lossless recording the buckets are a partition of
    worker time: on the simulator's [Timesteps] clock the grand total is
    {e exactly} [P × makespan] (each of the P workers performs exactly
    one classifiable action per timestep); on the runtime's
    [Nanoseconds] clock each worker's buckets tile its observed span
    (loop entry to exit) with no gap, up to clock resolution. {!check}
    enforces both, and is wired into the schedule fuzzer and CI.

    Bucket meaning, by bound term:
    - [core] — core-program work, the T1 term;
    - [batch] — BOP execution, the W(n) term;
    - [setup] — LAUNCHBATCH setup/cleanup, the n·s(n) term;
    - [wait] — timesteps trapped workers spent failing to steal while a
      batch they depend on runs (or waits to launch): the realized
      surface of the serialized m·s(n) term. Simulator clock only;
      runtime workers never block on batches (tasks suspend instead),
      so the term shows up in {!Critpath}'s serialization chains;
    - [idle] — timesteps free workers spent failing to steal: the
      span-limited T∞ term's surface;
    - [sched] — scheduler bookkeeping that executes no DAG unit: resume
      handoffs in the simulator; all between-task time (deque polls,
      steals, backoff) in the runtime. *)

type buckets = {
  core : int;
  batch : int;
  setup : int;
  sched : int;
  idle : int;
  wait : int;
}

val zero_buckets : buckets
val bucket_total : buckets -> int
val add_buckets : buckets -> buckets -> buckets

type worker_account = {
  wa_worker : int;
  wa_buckets : buckets;
  wa_covered : int;  (** clock units attributed (= bucket sum) *)
  wa_first : int;  (** start of the worker's observed span *)
  wa_last : int;  (** end of the worker's observed span *)
}

(** Per-structure (per-shard, under {!Batched.Shard}-style sharding)
    batch accounting, derived from the [Batch_start]/[Batch_end]
    events of the same recording the worker buckets come from. *)
type structure_account = {
  sa_sid : int;
  sa_batches : int;  (** completed batches ([Batch_end] count) *)
  sa_ops : int;  (** ops collected into launches (Σ [Batch_start] size) *)
  sa_setup : int;  (** Σ modeled setup/cleanup units (0 on the runtime) *)
  sa_busy : int;
      (** Σ (end − launch) clock units the structure had a batch in
          flight — its serialized occupancy, the per-shard surface of
          the m·s(n/K) term. Invariant 1 makes the in-order pairing of
          each sid's starts and ends exact. *)
}

type t = {
  clock : Recorder.clock;
  p : int;
  per_worker : worker_account array;
  per_structure : structure_account array;
      (** sorted by [sa_sid]; only sids that launched appear *)
  total : buckets;
  dropped : int;  (** ring-wraparound losses; nonzero voids {!check} *)
}

val of_recorder : Recorder.t -> t
(** Read out after the run. A disabled recorder yields the empty
    account ([p = 0]). *)

val total_covered : t -> int

val per_structure : Recorder.t -> structure_account array
(** The [per_structure] field computed directly from a recorder,
    without the worker-bucket fold. Sorted by [sa_sid]; only sids that
    launched at least once appear. Batches whose launch event was lost
    to ring wraparound count in [sa_batches] but contribute no
    [sa_busy]. Empty when disabled. *)

val check : ?expected:int -> ?slack:int -> t -> (unit, string) result
(** Conservation: fails on dropped events, on any worker whose bucket
    sum differs from its covered units, on any worker whose covered
    units differ from its observed span by more than [slack] (default
    0), and — when [expected] is given (pass [P × makespan] on
    simulator recordings) — on a grand total off by more than
    [slack]. *)

val pp : Format.formatter -> t -> unit

val buckets_json : buckets -> Json.t
val to_json : t -> Json.t
