type t = {
  rc : Recorder.t;
  path : string;
  limit : int;
  extra : (unit -> Json.t) option;
  mutable armed : bool;
  mutable auto_done : bool;  (* an automatic (hook) dump already ran *)
  mutable last : string option;
}

let create ?(path = "flight.json") ?(limit_per_worker = 2048) ?extra rc =
  if limit_per_worker < 1 then invalid_arg "Flight.create: limit_per_worker >= 1";
  {
    rc;
    path;
    limit = limit_per_worker;
    extra;
    armed = false;
    auto_done = false;
    last = None;
  }

let status_name = function
  | Recorder.Free -> "free"
  | Recorder.Pending -> "pending"
  | Recorder.Executing -> "executing"
  | Recorder.Done -> "done"

let class_name = function
  | Recorder.Wcore -> "core"
  | Recorder.Wbatch -> "batch"
  | Recorder.Wsetup -> "setup"
  | Recorder.Wsched -> "sched"

let event_json (e : Recorder.event) =
  let base k fields =
    Json.Obj
      (("w", Json.Int e.worker) :: ("t", Json.Int e.time) :: ("k", Json.Str k)
      :: fields)
  in
  match e.kind with
  | Recorder.Status s -> base "status" [ ("status", Json.Str (status_name s)) ]
  | Recorder.Steal { victim; success; batch_deque } ->
      base "steal"
        [
          ("victim", Json.Int victim);
          ("success", Json.Bool success);
          ("batch_deque", Json.Bool batch_deque);
        ]
  | Recorder.Batch_start { sid; size; setup; _ } ->
      base "batch_start"
        [ ("sid", Json.Int sid); ("size", Json.Int size); ("setup", Json.Int setup) ]
  | Recorder.Batch_end { sid; size } ->
      base "batch_end" [ ("sid", Json.Int sid); ("size", Json.Int size) ]
  | Recorder.Op_issue { sid } -> base "op_issue" [ ("sid", Json.Int sid) ]
  | Recorder.Op_done { sid; batches_seen; latency } ->
      base "op_done"
        [
          ("sid", Json.Int sid);
          ("batches_seen", Json.Int batches_seen);
          ("latency", Json.Int latency);
        ]
  | Recorder.Steals_suppressed { count } ->
      base "steals_suppressed" [ ("count", Json.Int count) ]
  | Recorder.Work { cls; units } ->
      base "work" [ ("cls", Json.Str (class_name cls)); ("units", Json.Int units) ]
  | Recorder.Violation { check; sid; arg } ->
      base "violation"
        [
          ("check", Json.Str (Recorder.check_name check));
          ("sid", Json.Int sid);
          ("arg", Json.Int arg);
        ]

let tag_names =
  [|
    "status";
    "steal";
    "batch_start";
    "batch_end";
    "op_issue";
    "op_done";
    "steals_suppressed";
    "work";
    "violation";
  |]

let last_events t w =
  let l = Recorder.events_of_worker t.rc w in
  let n = List.length l in
  if n <= t.limit then l else List.filteri (fun i _ -> i >= n - t.limit) l

let dump_json ~reason t =
  let rc = t.rc in
  let workers = if Recorder.enabled rc then Recorder.workers rc else 0 in
  let events =
    List.stable_sort
      (fun (a : Recorder.event) b -> compare a.time b.time)
      (List.concat (List.init workers (fun w -> last_events t w)))
  in
  let totals = Recorder.tag_totals rc in
  let extra =
    match t.extra with
    | None -> Json.Null
    | Some f -> ( try f () with _ -> Json.Str "extra-raised")
  in
  Json.Obj
    [
      ("reason", Json.Str reason);
      ( "clock",
        Json.Str
          (match Recorder.clock rc with
          | Recorder.Timesteps -> "steps"
          | Recorder.Nanoseconds -> "ns") );
      ("workers", Json.Int workers);
      ( "tag_totals",
        Json.Obj
          (Array.to_list
             (Array.mapi (fun k name -> (name, Json.Int totals.(k))) tag_names)) );
      ( "dropped",
        Json.List
          (List.init workers (fun w -> Json.Int (Recorder.dropped rc ~worker:w))) );
      ("events", Json.List (List.map event_json events));
      ("extra", extra);
    ]

let dump ?(reason = "explicit") t =
  t.auto_done <- true;
  let oc = open_out t.path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (dump_json ~reason t));
      output_char oc '\n');
  t.last <- Some t.path;
  t.path

let last_dump t = t.last

(* ---- process hooks ---- *)

let registry : t list ref = ref []
let hooks_installed = ref false

let auto_dump ~reason t =
  if t.armed && not t.auto_done then begin
    t.auto_done <- true;
    try ignore (dump ~reason t) with _ -> ()
  end

let install_hooks () =
  if not !hooks_installed then begin
    hooks_installed := true;
    at_exit (fun () -> List.iter (auto_dump ~reason:"at_exit") !registry);
    Printexc.set_uncaught_exception_handler (fun exn bt ->
        List.iter
          (auto_dump ~reason:("uncaught: " ^ Printexc.to_string exn))
          !registry;
        Printexc.default_uncaught_exception_handler exn bt)
  end

let arm t =
  install_hooks ();
  if not (List.memq t !registry) then registry := t :: !registry;
  t.armed <- true

let disarm t = t.armed <- false
