(** Minimal JSON tree, writer, and parser.

    Dependency-free on purpose (the container has no yojson): enough of
    RFC 8259 for the Chrome [trace_event] sink, the [BENCH_results.json]
    schema, and the tests that validate both. Numbers are floats on
    parse; the writer prints integers without a fractional part so
    round-trips of counters stay readable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val write : Buffer.t -> t -> unit
(** Compact (no whitespace) serialization; strings are escaped per RFC
    8259, non-finite floats become [null]. *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Strict parser: one value, trailing whitespace only. Integral numbers
    without exponent/fraction parse as [Int], others as [Float]. *)

(* Accessors used by consumers and tests; all total. *)

val member : string -> t -> t option
(** First binding of the key in an [Obj]; [None] otherwise. *)

val to_list_opt : t -> t list option
val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)
