(* Request-scoped span capture. See reqtrace.mli for the model.

   Layout: one flat int array per milestone/attribute, indexed by the
   request token. Each slot has exactly one writer (the dispatcher for
   arrive, the serve task's worker for start/submit, the batch-stamping
   worker for the deltas, the resuming worker for fin), so plain
   unsynchronized int stores suffice — same discipline as the
   Recorder rings. Raw-ns milestones use 0 as the unset sentinel (the
   monotonic clock never reads 0 in practice); deltas default to 0,
   which is also the correct value for a phase that never happened.

   The reservoir is workers x classes single-writer top-K segments:
   res_lat/res_tok strips of length k each, kept descending-sorted by
   insertion. Only the owning worker writes its segments, so inserts
   are lock-free without CAS; readout merges segments after the run.
   Per-worker completion counters live at stride 8 to keep writers off
   each other's cache lines. *)

(* flag bits *)
let f_published = 1
let f_ovf = 2
let f_displaced = 4
let f_batch = 8
let f_done = 16

(* counter stride: one slot per worker, 8 words apart (64B lines). *)
let c_stride = 8

type t = {
  on : bool;
  cap : int;
  k : int;
  workers : int;
  classes : int;
  sample_every : int;
  (* raw-ns milestones, self-stamped (0 = unset) *)
  arrive : int array;
  start : int array;
  submit : int array;
  fin : int array;
  (* batcher-basis deltas + metadata *)
  d_wait : int array;
  d_exec : int array;
  d_ovf : int array;
  seen : int array;
  cls : int array;
  sid : int array;
  mode : int array;
  flags : int array;
  w_start : int array;
  w_batch : int array;
  w_done : int array;
  (* slowest-K reservoir: workers x classes segments of length k *)
  res_lat : int array;
  res_tok : int array;
  n_done : int array; (* per-worker completion counters, stride 8 *)
}

let empty = [||]

let null =
  {
    on = false;
    cap = 0;
    k = 0;
    workers = 0;
    classes = 0;
    sample_every = 1;
    arrive = empty;
    start = empty;
    submit = empty;
    fin = empty;
    d_wait = empty;
    d_exec = empty;
    d_ovf = empty;
    seen = empty;
    cls = empty;
    sid = empty;
    mode = empty;
    flags = empty;
    w_start = empty;
    w_batch = empty;
    w_done = empty;
    res_lat = empty;
    res_tok = empty;
    n_done = empty;
  }

let create ?(sample_every = 32) ?(k = 16) ~workers ~classes ~capacity () =
  if workers < 1 then invalid_arg "Reqtrace.create: workers < 1";
  if classes < 1 then invalid_arg "Reqtrace.create: classes < 1";
  if capacity < 0 then invalid_arg "Reqtrace.create: capacity < 0";
  if k < 1 then invalid_arg "Reqtrace.create: k < 1";
  if sample_every < 1 then invalid_arg "Reqtrace.create: sample_every < 1";
  let a () = Array.make (max 1 capacity) 0 in
  let res = workers * classes * k in
  {
    on = true;
    cap = capacity;
    k;
    workers;
    classes;
    sample_every;
    arrive = a ();
    start = a ();
    submit = a ();
    fin = a ();
    d_wait = a ();
    d_exec = a ();
    d_ovf = a ();
    seen = a ();
    cls = a ();
    sid = a ();
    mode = a ();
    flags = a ();
    w_start = a ();
    w_batch = a ();
    w_done = a ();
    res_lat = Array.make (max 1 res) (-1);
    res_tok = Array.make (max 1 res) (-1);
    n_done = Array.make (workers * c_stride) 0;
  }

let enabled t = t.on
let capacity t = t.cap
let k t = t.k
let classes t = t.classes

let[@inline] tracked t token = t.on && token >= 0 && token < t.cap

(* ---- hooks ---- *)

let[@inline] on_release t ~token ~arrive_ns =
  if tracked t token then Array.unsafe_set t.arrive token arrive_ns

let[@inline] on_start t ~token ~cls ~worker =
  if tracked t token then begin
    Array.unsafe_set t.start token (Clock.now_ns ());
    Array.unsafe_set t.cls token cls;
    Array.unsafe_set t.w_start token worker
  end

let[@inline] on_submit t ~token ~sid =
  if tracked t token then begin
    Array.unsafe_set t.submit token (Clock.now_ns ());
    Array.unsafe_set t.sid token sid
  end

let[@inline] on_publish t ~token =
  if tracked t token then
    Array.unsafe_set t.flags token
      (Array.unsafe_get t.flags token lor f_published)

let[@inline] on_overflow t ~token ~displaced =
  if tracked t token then
    Array.unsafe_set t.flags token
      (Array.unsafe_get t.flags token lor f_ovf
      lor if displaced then f_displaced else 0)

let[@inline] on_batch t ~token ~wait ~exec ~ovf ~seen ~worker ~mode =
  if tracked t token then begin
    Array.unsafe_set t.d_wait token wait;
    Array.unsafe_set t.d_exec token exec;
    Array.unsafe_set t.d_ovf token ovf;
    Array.unsafe_set t.seen token seen;
    Array.unsafe_set t.w_batch token worker;
    Array.unsafe_set t.mode token mode;
    Array.unsafe_set t.flags token (Array.unsafe_get t.flags token lor f_batch)
  end

(* Single-writer descending insertion into the (worker, cls) segment.
   The common case — lat no better than the segment's current floor —
   is one compare against the last slot. *)
let offer t ~worker ~cls ~token ~lat =
  if t.on && worker >= 0 && worker < t.workers && cls >= 0 && cls < t.classes
  then begin
    let base = ((worker * t.classes) + cls) * t.k in
    let last = base + t.k - 1 in
    if lat > Array.unsafe_get t.res_lat last then begin
      (* shift everything smaller than lat down one slot, drop the tail *)
      let i = ref last in
      while
        !i > base && Array.unsafe_get t.res_lat (!i - 1) < lat
      do
        Array.unsafe_set t.res_lat !i (Array.unsafe_get t.res_lat (!i - 1));
        Array.unsafe_set t.res_tok !i (Array.unsafe_get t.res_tok (!i - 1));
        decr i
      done;
      Array.unsafe_set t.res_lat !i lat;
      Array.unsafe_set t.res_tok !i token
    end
  end

let[@inline] on_done t ~token ~worker =
  if tracked t token then begin
    let fin = Clock.now_ns () in
    Array.unsafe_set t.fin token fin;
    Array.unsafe_set t.w_done token worker;
    Array.unsafe_set t.flags token (Array.unsafe_get t.flags token lor f_done);
    let w = if worker >= 0 && worker < t.workers then worker else 0 in
    offer t ~worker:w
      ~cls:(Array.unsafe_get t.cls token)
      ~token
      ~lat:(fin - Array.unsafe_get t.arrive token);
    let c = w * c_stride in
    Array.unsafe_set t.n_done c (Array.unsafe_get t.n_done c + 1)
  end

let record_sim t ~token ~cls ~sid ~arrive_ns ~pending_ns ~exec_ns ~seen =
  if tracked t token then begin
    t.arrive.(token) <- arrive_ns;
    t.start.(token) <- arrive_ns;
    t.submit.(token) <- arrive_ns;
    t.fin.(token) <- arrive_ns + pending_ns + exec_ns;
    t.d_wait.(token) <- pending_ns;
    t.d_exec.(token) <- exec_ns;
    t.seen.(token) <- seen;
    t.cls.(token) <- cls;
    t.sid.(token) <- sid;
    t.flags.(token) <- f_published lor f_batch lor f_done;
    offer t ~worker:0 ~cls ~token ~lat:(pending_ns + exec_ns);
    t.n_done.(0) <- t.n_done.(0) + 1
  end

(* ---- read-out ---- *)

type span = {
  token : int;
  cls : int;
  sid : int;
  mode : int;
  sampled : bool;
  ovf : bool;
  displaced : bool;
  arrive_ns : int;
  latency_ns : int;
  queue_ns : int;
  sched_pre_ns : int;
  pending_ns : int;
  exec_ns : int;
  sched_post_ns : int;
  ovf_ns : int;
  batches_seen : int;
  w_start : int;
  w_batch : int;
  w_done : int;
}

let phase_names = [ "queue"; "sched"; "pending"; "exec" ]

let span t token =
  if
    (not t.on) || token < 0 || token >= t.cap
    || t.flags.(token) land f_done = 0
  then None
  else
    let fl = t.flags.(token) in
    let arrive = t.arrive.(token)
    and start = t.start.(token)
    and submit = t.submit.(token)
    and fin = t.fin.(token) in
    let pending = t.d_wait.(token) and exec = t.d_exec.(token) in
    let latency = fin - arrive in
    (* The residual decomposition: latency = queue + sched_pre +
       pending + exec + sched_post by construction (sched_post is
       defined as whatever is left after the directly-measured
       phases). check() asserts each term is nonnegative. *)
    let queue = start - arrive in
    let sched_pre = submit - start in
    let sched_post = fin - submit - pending - exec in
    Some
      {
        token;
        cls = t.cls.(token);
        sid = t.sid.(token);
        mode = t.mode.(token);
        sampled = token mod t.sample_every = 0;
        ovf = fl land f_ovf <> 0;
        displaced = fl land f_displaced <> 0;
        arrive_ns = arrive;
        latency_ns = latency;
        queue_ns = queue;
        sched_pre_ns = sched_pre;
        pending_ns = pending;
        exec_ns = exec;
        sched_post_ns = sched_post;
        ovf_ns = t.d_ovf.(token);
        batches_seen = t.seen.(token);
        w_start = t.w_start.(token);
        w_batch = t.w_batch.(token);
        w_done = t.w_done.(token);
      }

let completed t =
  if not t.on then 0
  else begin
    let s = ref 0 in
    for w = 0 to t.workers - 1 do
      s := !s + t.n_done.(w * c_stride)
    done;
    !s
  end

let reservoir ?cls t =
  if not t.on then []
  else begin
    let acc = ref [] in
    for w = 0 to t.workers - 1 do
      for c = 0 to t.classes - 1 do
        if match cls with None -> true | Some c' -> c = c' then begin
          let base = ((w * t.classes) + c) * t.k in
          for i = 0 to t.k - 1 do
            let lat = t.res_lat.(base + i) in
            if lat >= 0 then acc := (lat, t.res_tok.(base + i)) :: !acc
          done
        end
      done
    done;
    let all =
      List.sort (fun (a, _) (b, _) -> compare (b : int) a) !acc
    in
    List.filteri (fun i _ -> i < t.k) all
  end

let slowest ?cls t =
  List.filter_map (fun (_, tok) -> span t tok) (reservoir ?cls t)

type totals = {
  n : int;
  t_latency : int;
  t_queue : int;
  t_sched : int;
  t_pending : int;
  t_exec : int;
  t_ovf : int;
}

let totals ?cls t =
  let n = ref 0
  and lat = ref 0
  and q = ref 0
  and sc = ref 0
  and p = ref 0
  and e = ref 0
  and o = ref 0 in
  for tok = 0 to t.cap - 1 do
    match span t tok with
    | Some s when (match cls with None -> true | Some c -> s.cls = c) ->
        incr n;
        lat := !lat + s.latency_ns;
        q := !q + s.queue_ns;
        sc := !sc + s.sched_pre_ns + s.sched_post_ns;
        p := !p + s.pending_ns;
        e := !e + s.exec_ns;
        o := !o + s.ovf_ns
    | _ -> ()
  done;
  {
    n = !n;
    t_latency = !lat;
    t_queue = !q;
    t_sched = !sc;
    t_pending = !p;
    t_exec = !e;
    t_ovf = !o;
  }

let shares tt =
  let d = float_of_int tt.t_latency in
  let f x = if tt.t_latency = 0 then 0.0 else float_of_int x /. d in
  [
    ("queue", f tt.t_queue);
    ("sched", f tt.t_sched);
    ("pending", f tt.t_pending);
    ("exec", f tt.t_exec);
    ("ovf", f tt.t_ovf);
  ]

let check t =
  let err = ref None in
  let tok = ref 0 in
  while !err = None && !tok < t.cap do
    (match span t !tok with
    | None -> ()
    | Some s ->
        let sum =
          s.queue_ns + s.sched_pre_ns + s.pending_ns + s.exec_ns
          + s.sched_post_ns
        in
        if sum <> s.latency_ns then
          err :=
            Some
              (Printf.sprintf
                 "token %d: phase sum %d <> latency %d (q=%d sp=%d p=%d e=%d \
                  ss=%d)"
                 s.token sum s.latency_ns s.queue_ns s.sched_pre_ns
                 s.pending_ns s.exec_ns s.sched_post_ns)
        else if s.queue_ns < 0 then
          err := Some (Printf.sprintf "token %d: queue %d < 0" s.token s.queue_ns)
        else if s.sched_pre_ns < 0 then
          err :=
            Some
              (Printf.sprintf "token %d: sched_pre %d < 0" s.token
                 s.sched_pre_ns)
        else if s.pending_ns < 0 then
          err :=
            Some
              (Printf.sprintf "token %d: pending %d < 0" s.token s.pending_ns)
        else if s.exec_ns < 0 then
          err := Some (Printf.sprintf "token %d: exec %d < 0" s.token s.exec_ns)
        else if s.sched_post_ns < 0 then
          err :=
            Some
              (Printf.sprintf "token %d: sched_post %d < 0 (fin-submit=%d \
                               wait=%d exec=%d)"
                 s.token s.sched_post_ns
                 (t.fin.(s.token) - t.submit.(s.token))
                 s.pending_ns s.exec_ns)
        else if s.ovf_ns < 0 || s.ovf_ns > s.pending_ns then
          err :=
            Some
              (Printf.sprintf "token %d: ovf %d outside [0, pending=%d]"
                 s.token s.ovf_ns s.pending_ns));
    incr tok
  done;
  match !err with None -> Ok () | Some e -> Error e
