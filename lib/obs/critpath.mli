(** Realized critical-path analysis from a recording.

    The simulator computes the exact realized span by depth recurrence
    over the executed DAG ([Sim.Metrics.span_realized]); this module
    recovers what can be certified from {e events alone} — so it works
    on runtime (nanosecond) recordings too:

    - per-structure {e serialization chains}: a structure runs at most
      one batch at a time (Invariant 1 in the simulator, the launch
      flag in the runtime), so the sum of its batch durations is a
      realized dependency chain — the m·s(n) term made visible;
    - per-operation issue→completion latencies (each a realized path
      segment: the op depends on its batch's completion).

    {!t.t_inf_witness} is the max over all chains and latencies: a
    certified lower bound on the critical path, and therefore always
    ≤ makespan. The top-[k] longest segments tell you {e which}
    structure or operation to attack first when the span term
    dominates the bound. *)

type segment = {
  sg_kind : string;  (** ["batch"] or ["op"] *)
  sg_sid : int;
  sg_start : int;
  sg_len : int;
  sg_worker : int;  (** launcher (batch) / resumer (op) *)
}

type chain = {
  ch_sid : int;
  ch_batches : int;
  ch_serial : int;  (** Σ batch durations of this structure *)
  ch_longest : int;  (** longest single batch *)
}

type t = {
  clock : Recorder.clock;
  chains : chain array;  (** dense by sid up to the largest sid seen *)
  max_op_latency : int;
  t_inf_witness : int;
  top : segment list;  (** longest segments, descending *)
}

val of_recorder : ?k:int -> Recorder.t -> t
(** [k] caps {!t.top} (default 10). Batches missing either endpoint
    event (ring wraparound, still in flight) are skipped. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
