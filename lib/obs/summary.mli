(** Aggregated view of a recording: histograms and rates.

    Everything is computed from the surviving ring contents, so on a
    wrapped recording the totals undercount by exactly {!Recorder.dropped}
    events (reported in the summary). The interesting distributions:

    - batch size — how full LAUNCHBATCH's working set runs (cap is P);
    - op latency — BATCHIFY issue → batch completion, in clock units;
    - batches seen while pending — the empirical Lemma-2 distribution,
      at most 2 under the simulated scheduler, merely {e reported} for
      the helper-lock real runtime whose proof preconditions differ;
    - steal success rate and per-status time. *)

module Histo : sig
  (** Power-of-two-bucket histogram over non-negative ints. *)
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int
  val total : t -> int
  val mean : t -> float
  val min_v : t -> int
  (** 0 when empty *)

  val max_v : t -> int

  val buckets : t -> (int * int * int) list
  (** Nonempty buckets as [(lo, hi, count)], [lo]..[hi] inclusive. *)

  val percentile : t -> float -> float
  (** [percentile t q] for [q] in [0,1] (clamped), by linear
      interpolation over the bucket holding the requested rank, the
      bucket's range clamped to the observed min/max — so
      [percentile t 0. = min_v t] and [percentile t 1. = max_v t]
      exactly. [0.] when empty. The histogram stores only
      power-of-two bucket counts, so interior percentiles are
      approximations with relative error bounded by the bucket width. *)

  val merge : t -> t -> t
  (** [merge x y] is a fresh histogram equal to one fed the union of
      both inputs' samples: bucket counts, [count] and [total] add;
      [min_v]/[max_v] are the extremes over both. Neither input is
      mutated. Exact because buckets are fixed ranges — this is how
      {!Health} aggregates its per-worker phase histograms at sample
      time without sharing writers. *)
end

type t = {
  clock : Recorder.clock;
  workers : int;
  events : int;  (** surviving events *)
  dropped : int;  (** lost to ring wraparound *)
  batches : int;
  batch_size : Histo.t;
  setup_total : int;
  ops : int;  (** completed operations *)
  op_latency : Histo.t;
  batches_seen : int array;  (** index k < 8 exact; index 8 = "8 or more" *)
  max_batches_seen : int;
  steal_attempts : int;
  steal_successes : int;
  status_time : int array;  (** clock units per status, indexed free..done *)
  work_units : int array;
      (** clock units spent per work class, indexed
          core, batch, setup, sched (from [Work] events) *)
  violations : int array;
      (** surviving [Violation] events per check, indexed by
          {!Recorder.check_code} (inv1, inv2, inv3, lemma2, stall);
          all zeros on a healthy recording *)
}

val of_recorder : Recorder.t -> t

val steal_rate : t -> float
(** Successes / attempts; [0.] with no attempts. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Machine-readable form of the same aggregates (used by the bench
    sink and [bin/trace.exe --summary]). *)
