(** Online checkers for the paper's safety properties.

    The post-mortem sinks ({!Summary}, {!Chrome}, [Sim.Trace]) can only
    audit a bounded recording after the fact; a production soak needs
    the invariants watched {e while} millions of ops flow. This module
    keeps O(#structures) atomic counters and checks, at the moments the
    scheduler acts:

    - {b Invariant 1} — at most one batch of a structure in flight: a
      per-structure in-flight counter must step 0 → 1 at every
      {!batch_started} and 1 → 0 at every {!batch_ended}.
    - {b Invariant 2} — a batch's working set never exceeds its cap
      (P in the paper; the configured cap of the running substrate):
      checked against [size] at {!batch_started}.
    - {b Invariant 3} — dual-deque discipline: every op a batch collects
      was submitted exactly once and is still pending. Checked as a
      per-structure pending balance: {!op_submitted} adds one,
      {!batch_started} subtracts [size]; a negative balance means an op
      was collected twice or fabricated.
    - {b Lemma 2} — at most [lemma2_bound] batches of the structure
      launch while one op is pending (2 under the paper's scheduler;
      callers on the helper-lock runtime, whose proof preconditions
      differ, pass a looser bound). Checked at {!op_completed}.

    A violation bumps a monotonic per-check counter (readable at any
    time from any thread) and, when a recorder is attached, emits a
    {!Recorder.kind.Violation} event on the calling worker's ring.

    Modes: [Exact] runs every check on every event (tests, fuzzing);
    [Sampled k] still maintains the per-structure balances (they are
    one atomic RMW each) but runs the per-op Lemma-2 check only once
    every [k] completions; [Off] is free — {!create} returns {!null}
    and every hook returns after one field load. Hooks are
    allocation-free in all modes (pinned by a [Gc.minor_words] test). *)

type mode = Off | Sampled of int | Exact

type t

val null : t
(** Disabled: [active null = false]; all hooks are no-ops. *)

val create :
  ?mode:mode ->
  ?lemma2_bound:int ->
  ?recorder:Recorder.t ->
  structures:int ->
  unit ->
  t
(** [mode] defaults to [Exact]; [lemma2_bound] to the paper's 2.
    [structures] sizes the per-structure counter tables — hooks for a
    [sid] outside [0..structures-1] are ignored (checked, not trusted).
    [Off] returns {!null}. *)

val active : t -> bool
val mode : t -> mode

(* ---- hot-path hooks (allocation-free; called by workers) ---- *)

val op_submitted : t -> sid:int -> unit
(** An op parked on structure [sid] (BATCHIFY). *)

val batch_started : t -> worker:int -> time:int -> sid:int -> size:int -> cap:int -> unit
(** A batch of [size] ops launched on [sid] by [worker]; runs the
    Invariant 1/2/3 checks. [time] is only used to stamp violation
    events (pass the recorder-consistent clock, or 0 with no recorder). *)

val batch_ended : t -> worker:int -> time:int -> sid:int -> unit
(** The in-flight batch on [sid] finished. An end with no matching
    start also fires Invariant 1. *)

val op_completed :
  t -> worker:int -> time:int -> sid:int -> batches_seen:int -> unit
(** An op resumed after its batch; checks [batches_seen ≤ lemma2_bound]
    (subject to sampling in [Sampled] mode). *)

val note_stall : t -> sid:int -> unit
(** Fold one {!Health} stall-watchdog episode into the violation
    counters (no event is emitted — the watchdog runs on the sampler
    thread, which owns no ring). *)

(* ---- read-out (any thread, any time) ---- *)

val violations : t -> int array
(** Violations so far per check, indexed by {!Recorder.check_code};
    all zeros from {!null}. *)

val total_violations : t -> int

val checks_run : t -> int
(** Check {e sites} executed (batch starts plus sampled op
    completions) — evidence the checkers actually ran. *)

val pending : t -> sid:int -> int
(** Current pending balance for [sid] (submitted − collected); for
    tests. [0] when disabled or out of range. *)

val to_json : t -> Json.t
(** [{"mode":"exact","sample_every":1,"checks":N,
     "violations":{"inv1":0,...,"stall":0}}], or [Json.Null] when
    disabled. *)
