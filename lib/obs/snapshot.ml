type t = {
  rc : Recorder.t;
  health : Health.t;
  extra : unit -> (string * Json.t) list;
  oc : out_channel;
  owns_oc : bool;
  mutable prev : int array;
  mutable seq : int;
  mutable closed : bool;
}

let tag_names =
  [|
    "status";
    "steal";
    "batch_start";
    "batch_end";
    "op_issue";
    "op_done";
    "steals_suppressed";
    "work";
    "violation";
  |]

let () = assert (Array.length tag_names = Recorder.n_tags)

let no_extra () = []

let to_channel ?(health = Health.null) ?(extra = no_extra) rc oc =
  {
    rc;
    health;
    extra;
    oc;
    owns_oc = false;
    prev = Array.make Recorder.n_tags 0;
    seq = 0;
    closed = false;
  }

let to_file ?(health = Health.null) ?(extra = no_extra) rc ~path =
  let oc = open_out path in
  {
    rc;
    health;
    extra;
    oc;
    owns_oc = true;
    prev = Array.make Recorder.n_tags 0;
    seq = 0;
    closed = false;
  }

let counters_json totals =
  Json.Obj
    (Array.to_list
       (Array.mapi (fun k name -> (name, Json.Int totals.(k))) tag_names))

let sample ?time t =
  if not t.closed then begin
    let totals = Recorder.tag_totals t.rc in
    let time =
      match time with
      | Some v -> v
      | None -> (
          match Recorder.clock t.rc with
          | Recorder.Nanoseconds when Recorder.enabled t.rc -> Recorder.now t.rc
          | _ -> t.seq)
    in
    let deltas =
      Array.init Recorder.n_tags (fun k -> totals.(k) - t.prev.(k))
    in
    let health_fields =
      if not (Health.enabled t.health) then []
      else begin
        (* The sampler thread doubles as the watchdog: every snapshot
           scans for stalled structures before reporting. *)
        Health.check_stalls t.health;
        [ ("health", Health.to_json t.health) ]
      end
    in
    let line =
      Json.Obj
        ([
           ("seq", Json.Int t.seq);
           ("t", Json.Int time);
           ("dropped", Json.Int (Recorder.total_dropped t.rc));
           ("totals", counters_json totals);
           ("deltas", counters_json deltas);
         ]
        @ health_fields @ t.extra ())
    in
    output_string t.oc (Json.to_string line);
    output_char t.oc '\n';
    flush t.oc;
    t.prev <- totals;
    t.seq <- t.seq + 1
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.owns_oc then close_out t.oc else flush t.oc
  end

let every t ~interval_s ~stop =
  sample t;
  while not (stop ()) do
    Unix.sleepf interval_s;
    sample t
  done;
  sample t
