(** Flight recorder: dump the recent past when something goes wrong.

    A {!Recorder} already keeps a bounded ring of the last events per
    worker; this module adds the "black box" part — on an uncaught
    exception, at process exit, or on an explicit trigger, the last-N
    events per worker (plus live tag totals, drop counts, and an
    optional caller-supplied context object such as
    {!Health.to_json}) are decoded and written to one JSON file, so a
    crash three hours into a soak is diagnosable after the fact.

    While nothing goes wrong this layer does {e nothing}: arming only
    registers the instance; all cost (decoding, allocation, I/O) is
    paid at dump time. Combined with the recorder's allocation-free
    emit path, an armed flight recorder on a quiet run allocates
    nothing after creation.

    Process hooks are installed once, on the first {!arm}: an [at_exit]
    action and a [Printexc] uncaught-exception handler (chaining to the
    default printer). Each armed instance auto-dumps at most once;
    {!disarm} or a prior {!dump} makes the hooks skip it. Arming is
    meant for setup code on one thread; dumps are idempotent per
    instance but not concurrency-safe against a still-running workload
    mutating the rings — expect a best-effort snapshot in that case. *)

type t

val create :
  ?path:string -> ?limit_per_worker:int -> ?extra:(unit -> Json.t) -> Recorder.t -> t
(** [path] defaults to ["flight.json"]; [limit_per_worker] (default
    [2048]) caps how many of each worker's surviving events a dump
    decodes; [extra ()] is evaluated at dump time and embedded as the
    dump's ["extra"] field (exceptions from it are swallowed — the
    dump must survive a sick process). *)

val arm : t -> unit
(** Register for automatic dumping; installs the process hooks on
    first use. *)

val disarm : t -> unit

val dump : ?reason:string -> t -> string
(** Write the dump file now and return its path. Also marks the
    instance as dumped, so the exit hooks will not write again.
    Format (one JSON object):
    {v
    { "reason": "...", "clock": "ns"|"steps", "workers": P,
      "tag_totals": {"status":…, …, "violation":…},
      "dropped": [per-worker wraparound loss],
      "events": [ {"w":0,"t":123,"k":"op_done","sid":1,…}, … ],
      "extra": … }
    v}
    Events are each worker's most recent [limit_per_worker], merged
    and sorted by time. *)

val last_dump : t -> string option
(** Path of the most recent dump of this instance, if any. *)
