type mode = Off | Sampled of int | Exact

type t = {
  on : bool;
  md : mode;
  sample_every : int;  (* 1 in Exact mode *)
  rc : Recorder.t;
  lemma2_bound : int;
  pend : int Atomic.t array;  (* submitted − collected, per structure *)
  inflight : int Atomic.t array;  (* launched − ended, per structure *)
  ops_done : int Atomic.t;
  checks : int Atomic.t;
  viol : int Atomic.t array;  (* length Recorder.n_checks *)
}

let null =
  {
    on = false;
    md = Off;
    sample_every = 1;
    rc = Recorder.null;
    lemma2_bound = 0;
    pend = [||];
    inflight = [||];
    ops_done = Atomic.make 0;
    checks = Atomic.make 0;
    viol = [||];
  }

let create ?(mode = Exact) ?(lemma2_bound = 2) ?(recorder = Recorder.null)
    ~structures () =
  if structures < 0 then invalid_arg "Invariants.create: structures >= 0";
  match mode with
  | Off -> null
  | Sampled _ | Exact ->
      {
        on = true;
        md = mode;
        sample_every = (match mode with Sampled k -> max 1 k | _ -> 1);
        rc = recorder;
        lemma2_bound;
        pend = Array.init structures (fun _ -> Atomic.make 0);
        inflight = Array.init structures (fun _ -> Atomic.make 0);
        ops_done = Atomic.make 0;
        checks = Atomic.make 0;
        viol = Array.init Recorder.n_checks (fun _ -> Atomic.make 0);
      }

let active t = t.on
let mode t = t.md

let[@inline] in_range t sid = sid >= 0 && sid < Array.length t.pend

let fire t ~worker ~time check ~sid ~arg =
  Atomic.incr t.viol.(Recorder.check_code check);
  Recorder.emit_violation t.rc ~worker ~time ~check ~sid ~arg

let[@inline] op_submitted t ~sid =
  if t.on && in_range t sid then Atomic.incr t.pend.(sid)

let batch_started t ~worker ~time ~sid ~size ~cap =
  if t.on && in_range t sid then begin
    Atomic.incr t.checks;
    (* Invariant 1: this launch must be the only one in flight. *)
    let f = Atomic.fetch_and_add t.inflight.(sid) 1 in
    if f <> 0 then fire t ~worker ~time Recorder.Inv1 ~sid ~arg:(f + 1);
    (* Invariant 2: working set within the substrate's cap. *)
    if size > cap then fire t ~worker ~time Recorder.Inv2 ~sid ~arg:size;
    (* Invariant 3: the batch only collects ops that are pending —
       the balance may never go negative. [p] is the pre-subtraction
       balance, so the deficit is [size - p]. *)
    let p = Atomic.fetch_and_add t.pend.(sid) (-size) in
    if p < size then fire t ~worker ~time Recorder.Inv3 ~sid ~arg:(size - p)
  end

let batch_ended t ~worker ~time ~sid =
  if t.on && in_range t sid then begin
    let f = Atomic.fetch_and_add t.inflight.(sid) (-1) in
    (* An end without a matching start is an Invariant-1 breach too. *)
    if f <> 1 then fire t ~worker ~time Recorder.Inv1 ~sid ~arg:f
  end

let op_completed t ~worker ~time ~sid ~batches_seen =
  if t.on then begin
    let n = Atomic.fetch_and_add t.ops_done 1 in
    if n mod t.sample_every = 0 then begin
      Atomic.incr t.checks;
      if batches_seen > t.lemma2_bound then
        fire t ~worker ~time Recorder.Lemma2 ~sid ~arg:batches_seen
    end
  end

let note_stall t ~sid:_ =
  if t.on then Atomic.incr t.viol.(Recorder.check_code Recorder.Stall)

let violations t =
  if not t.on then Array.make Recorder.n_checks 0
  else Array.map Atomic.get t.viol

let total_violations t = Array.fold_left ( + ) 0 (violations t)
let checks_run t = Atomic.get t.checks

let pending t ~sid = if t.on && in_range t sid then Atomic.get t.pend.(sid) else 0

let mode_name = function Off -> "off" | Sampled _ -> "sampled" | Exact -> "exact"

let to_json t =
  if not t.on then Json.Null
  else
    Json.Obj
      [
        ("mode", Json.Str (mode_name t.md));
        ("sample_every", Json.Int t.sample_every);
        ("checks", Json.Int (checks_run t));
        ( "violations",
          Json.Obj
            (Array.to_list
               (Array.mapi
                  (fun k c ->
                    (Recorder.check_name (Recorder.check_of_code k), Json.Int c))
                  (violations t))) );
      ]
