type buckets = {
  core : int;
  batch : int;
  setup : int;
  sched : int;
  idle : int;
  wait : int;
}

let zero_buckets = { core = 0; batch = 0; setup = 0; sched = 0; idle = 0; wait = 0 }

let bucket_total b = b.core + b.batch + b.setup + b.sched + b.idle + b.wait

let add_buckets a b =
  {
    core = a.core + b.core;
    batch = a.batch + b.batch;
    setup = a.setup + b.setup;
    sched = a.sched + b.sched;
    idle = a.idle + b.idle;
    wait = a.wait + b.wait;
  }

type worker_account = {
  wa_worker : int;
  wa_buckets : buckets;
  wa_covered : int;
  wa_first : int;
  wa_last : int;
}

type structure_account = {
  sa_sid : int;
  sa_batches : int;
  sa_ops : int;
  sa_setup : int;
  sa_busy : int;
}

type t = {
  clock : Recorder.clock;
  p : int;
  per_worker : worker_account array;
  per_structure : structure_account array;
  total : buckets;
  dropped : int;
}

(* Fold one worker's chronological event stream into its account.

   Time costs come from two event families:
   - [Work] runs carry [units] clock units of classified execution
     ending at the event time;
   - in the simulator ([Timesteps] clock) a failed [Steal] is a whole
     timestep spent probing, classified by the worker's status at that
     point in the stream: Free means span-limited idleness (there was
     nothing to steal), any trapped status means the worker is waiting
     out a batch — the realized surface of the bound's m·s(n) term.
   On the [Nanoseconds] clock steal events are instants inside the
   worker's [Wsched] segments, so only [Work] carries time there.
   Successful steals cost nothing in either clock: the stolen unit's
   execution is already inside a [Work] run. *)
let account_worker clk r w =
  let core = ref 0
  and batch = ref 0
  and setup = ref 0
  and sched = ref 0
  and idle = ref 0
  and wait = ref 0 in
  let covered = ref 0 in
  let first = ref max_int in
  let last = ref min_int in
  let free = ref true in
  let cover lo hi =
    if lo < !first then first := lo;
    if hi > !last then last := hi
  in
  List.iter
    (fun (e : Recorder.event) ->
      match e.kind with
      | Recorder.Status s -> free := s = Recorder.Free
      | Recorder.Work { cls; units } ->
          (match cls with
          | Recorder.Wcore -> core := !core + units
          | Recorder.Wbatch -> batch := !batch + units
          | Recorder.Wsetup -> setup := !setup + units
          | Recorder.Wsched -> sched := !sched + units);
          covered := !covered + units;
          cover (e.time - units) e.time
      | Recorder.Steal { success = false; _ } when clk = Recorder.Timesteps ->
          if !free then incr idle else incr wait;
          incr covered;
          cover (e.time - 1) e.time
      | Recorder.Steal _ | Recorder.Steals_suppressed _
      | Recorder.Batch_start _ | Recorder.Batch_end _
      | Recorder.Op_issue _ | Recorder.Op_done _ | Recorder.Violation _ ->
          ())
    (Recorder.events_of_worker r w);
  let first = if !first = max_int then 0 else !first in
  let last = if !last = min_int then 0 else !last in
  {
    wa_worker = w;
    wa_buckets =
      {
        core = !core;
        batch = !batch;
        setup = !setup;
        sched = !sched;
        idle = !idle;
        wait = !wait;
      };
    wa_covered = !covered;
    wa_first = first;
    wa_last = last;
  }

(* Batch_start and Batch_end for one batch are usually emitted by
   different workers (launcher vs finisher), so pairing happens on the
   time-merged stream. Invariant 1 — at most one batch in flight per
   structure — makes in-order pairing per sid exact: a structure's next
   Batch_end always closes its one open Batch_start. *)
let per_structure r =
  if not (Recorder.enabled r) then [||]
  else begin
    let tbl : (int, int ref * int ref * int ref * int ref * int option ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let get sid =
      match Hashtbl.find_opt tbl sid with
      | Some acc -> acc
      | None ->
          let acc = (ref 0, ref 0, ref 0, ref 0, ref None) in
          Hashtbl.add tbl sid acc;
          acc
    in
    List.iter
      (fun (e : Recorder.event) ->
        match e.kind with
        | Recorder.Batch_start { sid; size; setup; _ } ->
            let _, ops, st, _, open_ = get sid in
            ops := !ops + size;
            st := !st + setup;
            open_ := Some e.time
        | Recorder.Batch_end { sid; _ } ->
            let batches, _, _, busy, open_ = get sid in
            incr batches;
            (match !open_ with
            | Some t0 -> busy := !busy + (e.time - t0)
            | None -> (* launch lost to ring wraparound *) ());
            open_ := None
        | _ -> ())
      (Recorder.all_events r);
    Hashtbl.fold (fun sid acc l -> (sid, acc) :: l) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (sid, (b, o, s, bu, _)) ->
           {
             sa_sid = sid;
             sa_batches = !b;
             sa_ops = !o;
             sa_setup = !s;
             sa_busy = !bu;
           })
    |> Array.of_list
  end

let of_recorder r =
  if not (Recorder.enabled r) then
    {
      clock = Recorder.clock r;
      p = 0;
      per_worker = [||];
      per_structure = [||];
      total = zero_buckets;
      dropped = 0;
    }
  else begin
    let clk = Recorder.clock r in
    let per_worker =
      Array.init (Recorder.workers r) (fun w -> account_worker clk r w)
    in
    {
      clock = clk;
      p = Recorder.workers r;
      per_worker;
      per_structure = per_structure r;
      total =
        Array.fold_left
          (fun acc wa -> add_buckets acc wa.wa_buckets)
          zero_buckets per_worker;
      dropped = Recorder.total_dropped r;
    }
  end

let total_covered t =
  Array.fold_left (fun acc wa -> acc + wa.wa_covered) 0 t.per_worker

let check ?expected ?(slack = 0) t =
  if t.dropped > 0 then
    Error
      (Printf.sprintf
         "attribution unreliable: %d events dropped by ring wraparound"
         t.dropped)
  else begin
    let bad = ref None in
    Array.iter
      (fun wa ->
        if !bad = None then begin
          let span = wa.wa_last - wa.wa_first in
          if bucket_total wa.wa_buckets <> wa.wa_covered then
            bad :=
              Some
                (Printf.sprintf "worker %d: buckets sum %d <> covered %d"
                   wa.wa_worker
                   (bucket_total wa.wa_buckets)
                   wa.wa_covered)
          else if abs (wa.wa_covered - span) > slack then
            bad :=
              Some
                (Printf.sprintf
                   "worker %d: covered %d but observed span %d (gap %d > slack %d)"
                   wa.wa_worker wa.wa_covered span
                   (abs (wa.wa_covered - span))
                   slack)
        end)
      t.per_worker;
    match !bad with
    | Some msg -> Error msg
    | None -> begin
        match expected with
        | Some e when abs (total_covered t - e) > slack ->
            Error
              (Printf.sprintf
                 "bucket conservation violated: sum %d <> expected %d (P x makespan)"
                 (total_covered t) e)
        | _ -> Ok ()
      end
  end

let unit_name = function Recorder.Timesteps -> "steps" | Recorder.Nanoseconds -> "ns"

let pp_buckets fmt b =
  Format.fprintf fmt "core=%d batch=%d setup=%d sched=%d idle=%d wait=%d"
    b.core b.batch b.setup b.sched b.idle b.wait

let pp fmt t =
  Format.fprintf fmt "attribution (%s, %d workers, %d dropped):@."
    (unit_name t.clock) t.p t.dropped;
  Format.fprintf fmt "  total: %a  sum=%d@." pp_buckets t.total
    (bucket_total t.total);
  Array.iter
    (fun wa ->
      Format.fprintf fmt "  w%d: %a  covered=%d span=[%d,%d]@." wa.wa_worker
        pp_buckets wa.wa_buckets wa.wa_covered wa.wa_first wa.wa_last)
    t.per_worker;
  Array.iter
    (fun sa ->
      Format.fprintf fmt "  sid%d: batches=%d ops=%d setup=%d busy=%d@."
        sa.sa_sid sa.sa_batches sa.sa_ops sa.sa_setup sa.sa_busy)
    t.per_structure

let buckets_json b =
  Json.Obj
    [
      ("core", Json.Int b.core);
      ("batch", Json.Int b.batch);
      ("setup", Json.Int b.setup);
      ("sched", Json.Int b.sched);
      ("idle", Json.Int b.idle);
      ("wait", Json.Int b.wait);
    ]

let structure_json sa =
  Json.Obj
    [
      ("sid", Json.Int sa.sa_sid);
      ("batches", Json.Int sa.sa_batches);
      ("ops", Json.Int sa.sa_ops);
      ("setup", Json.Int sa.sa_setup);
      ("busy", Json.Int sa.sa_busy);
    ]

let to_json t =
  Json.Obj
    [
      ("clock", Json.Str (unit_name t.clock));
      ("workers", Json.Int t.p);
      ("dropped", Json.Int t.dropped);
      ("total", buckets_json t.total);
      ("sum", Json.Int (bucket_total t.total));
      ( "per_worker",
        Json.List
          (Array.to_list
             (Array.map
                (fun wa ->
                  Json.Obj
                    [
                      ("worker", Json.Int wa.wa_worker);
                      ("buckets", buckets_json wa.wa_buckets);
                      ("covered", Json.Int wa.wa_covered);
                      ("first", Json.Int wa.wa_first);
                      ("last", Json.Int wa.wa_last);
                    ])
                t.per_worker)) );
      ( "per_structure",
        Json.List (Array.to_list (Array.map structure_json t.per_structure)) );
    ]
