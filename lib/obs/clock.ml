(* Bind bechamel's clock_gettime(CLOCK_MONOTONIC) stub directly rather
   than going through [Monotonic_clock.now]: the stub is [@@noalloc]
   with an unboxed int64 result, but the library's [now] wrapper is a
   plain function returning a boxed [Int64.t], costing one minor
   allocation per call. Binding the external here lets cmmgen fuse the
   unboxed result straight into [Int64.to_int], so the enabled-recorder
   timestamp path allocates nothing (asserted in test/test_obs.ml). *)
external clock_monotonic_ns : unit -> (int64[@unboxed])
  = "clock_linux_get_time_bytecode" "clock_linux_get_time_native"
[@@noalloc]

let[@inline] now_ns () = Int64.to_int (clock_monotonic_ns ())
