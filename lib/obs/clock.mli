(** Monotonic time source for real-runtime recordings.

    Binds [clock_gettime(CLOCK_MONOTONIC)] (bechamel's C stub) as a
    [[@@noalloc]] external with an unboxed [int64] result and converts
    to an OCaml [int] — nanoseconds since an arbitrary epoch, which
    fits 63 bits for ~292 years of uptime. In native code the whole
    call is allocation-free (no [Int64] boxing), so it is safe on the
    recorder's hot path. The simulator never calls this; its clock is
    the discrete timestep counter. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock. Does not allocate (native). *)
