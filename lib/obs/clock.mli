(** Monotonic time source for real-runtime recordings.

    Wraps [clock_gettime(CLOCK_MONOTONIC)] (via bechamel's noalloc stub)
    and converts to an OCaml [int] — nanoseconds since an arbitrary
    epoch, which fits 63 bits for ~292 years of uptime. The simulator
    never calls this; its clock is the discrete timestep counter. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic clock. *)
