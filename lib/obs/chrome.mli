(** Chrome [trace_event] sink: render recordings as JSON loadable in
    Perfetto (https://ui.perfetto.dev) or [chrome://tracing].

    Each recording becomes one process ([pid]): worker [w] is thread
    [tid = w] and carries that worker's status spans ([ph = "X"]
    complete events named after the paper's worker statuses) plus
    instant events for steal attempts and operation issue/completion;
    each batched structure [s] gets a synthetic thread
    [tid = 1000 + s] holding one span per batch (start → completion,
    Invariant 1 guarantees they never overlap). Timestamps are
    microseconds as the format requires: one simulator timestep maps to
    1 µs, real-runtime nanoseconds are divided by 1000. Within every
    [(pid, tid)] track, events are sorted so [ts] is monotone.

    A simulator recording and a real-runtime recording of the same
    workload can be written side by side as two processes of one trace
    file — that is exactly what [bin/trace.exe] does. *)

type track = {
  pid : int;
  name : string;  (** process label, e.g. ["sim (1 step = 1us)"] *)
  recording : Recorder.t;
}

val to_json : track list -> Json.t
(** The standard [{"traceEvents": [...], "displayTimeUnit": "ms"}]
    envelope. Disabled recordings contribute only their process
    metadata. *)

val to_string : track list -> string

val write_file : path:string -> track list -> unit

val batch_tid_base : int
(** [tid] of structure 0's batch track ([1000]); structure [s] is
    [batch_tid_base + s]. *)
