(** Live counter-delta snapshots as JSONL, for watching a long run
    with [tail -f] instead of waiting for the final trace.

    Each {!sample} polls {!Recorder.tag_totals} — per-tag emission
    counters bumped on the recorder hot path, safe to read while
    workers are emitting (plain single-word loads; a sample may be a
    few events stale, never torn) — and appends one JSON line:

    {v
    {"seq":3,"t":120034875,"dropped":0,
     "totals":{"status":412,"steal":9023,...,"work":511},
     "deltas":{"status":12,"steal":411,...,"work":37}}
    v}

    ["t"] is nanoseconds since recorder creation on runtime
    recordings; pass [?time] (the current timestep) when sampling a
    simulator recorder. The line is flushed after each sample, so the
    file is always watchable mid-run. *)

(** When a {!Health} instance is attached, each sample first runs its
    stall watchdog ({!Health.check_stalls}) and then carries the full
    health object — heartbeat ages, per-structure phase-latency stats,
    burn counters, stall and invariant-violation totals — as a
    ["health"] field on the line. This is the stream
    [bin/monitor.exe] consumes. *)

type t

val to_channel :
  ?health:Health.t ->
  ?extra:(unit -> (string * Json.t) list) ->
  Recorder.t ->
  out_channel ->
  t

val to_file :
  ?health:Health.t ->
  ?extra:(unit -> (string * Json.t) list) ->
  Recorder.t ->
  path:string ->
  t
(** [extra] (default none) is polled at each {!sample}; its fields are
    appended to the line after ["health"] — how a driver puts its own
    gauges (e.g. the service harness's goodput and queue-depth series)
    on the same stream the monitor tails. It runs on the sampler
    thread, so it must only read state that is safe to read live. *)

val sample : ?time:int -> t -> unit
(** Append one snapshot line. No-op after {!close}. *)

val close : t -> unit
(** Flush; close the channel if this streamer opened it. *)

val every : t -> interval_s:float -> stop:(unit -> bool) -> unit
(** Sampling loop for a dedicated domain or thread: one immediate
    sample, then one per [interval_s] until [stop ()] holds, then a
    final sample. The caller owns the thread:
    [Domain.spawn (fun () -> Snapshot.every snap ~interval_s:0.05 ~stop)]. *)
