module Histo = struct
  type t = {
    counts : int array;  (* bucket k: 0, then [2^(k-1), 2^k) *)
    mutable n : int;
    mutable sum : int;
    mutable mn : int;
    mutable mx : int;
  }

  let buckets_len = 63

  let create () =
    { counts = Array.make buckets_len 0; n = 0; sum = 0; mn = max_int; mx = 0 }

  (* Bit count (floor(log2 v) + 1) by branch-free binary reduction
     rather than a shift-per-bit loop: [add] sits on the health layer's
     per-op hot path (three calls per completed op), where the loop's
     ~60 ns dominated the whole hook. *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let n = ref 1 and v = ref v in
      if !v lsr 32 <> 0 then begin n := !n + 32; v := !v lsr 32 end;
      if !v lsr 16 <> 0 then begin n := !n + 16; v := !v lsr 16 end;
      if !v lsr 8 <> 0 then begin n := !n + 8; v := !v lsr 8 end;
      if !v lsr 4 <> 0 then begin n := !n + 4; v := !v lsr 4 end;
      if !v lsr 2 <> 0 then begin n := !n + 2; v := !v lsr 2 end;
      if !v lsr 1 <> 0 then n := !n + 1;
      min (buckets_len - 1) !n
    end

  let add t v =
    let v = max 0 v in
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum + v;
    if v < t.mn then t.mn <- v;
    if v > t.mx then t.mx <- v

  (* Union of two histograms. Buckets are fixed power-of-two ranges, so
     merging is an elementwise sum; n/sum add, min/max take the extremes
     (the empty histogram's mn = max_int / mx = 0 are the identities for
     min/max over non-negative samples, so merging with an empty side is
     exact). Inputs are not mutated. *)
  let merge x y =
    let t = create () in
    for k = 0 to buckets_len - 1 do
      t.counts.(k) <- x.counts.(k) + y.counts.(k)
    done;
    t.n <- x.n + y.n;
    t.sum <- x.sum + y.sum;
    t.mn <- min x.mn y.mn;
    t.mx <- max x.mx y.mx;
    t

  let count t = t.n
  let total t = t.sum
  let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n
  let min_v t = if t.n = 0 then 0 else t.mn
  let max_v t = t.mx

  let buckets t =
    let out = ref [] in
    for k = buckets_len - 1 downto 0 do
      if t.counts.(k) > 0 then begin
        let lo = if k = 0 then 0 else 1 lsl (k - 1) in
        let hi = if k = 0 then 0 else (1 lsl k) - 1 in
        out := (lo, hi, t.counts.(k)) :: !out
      end
    done;
    !out

  (* Percentile by linear interpolation. The histogram only keeps
     power-of-two bucket counts, so within the bucket holding the
     requested rank the [c] samples are assumed evenly spread over the
     bucket's range clamped to the observed [min_v, max_v]; p0 is thus
     exactly [min_v] and p100 exactly [max_v]. [q] is clamped to [0,1]. *)
  let percentile t q =
    if t.n = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      (* The extremes are tracked exactly; interpolation would instead
         land mid-bucket when the extreme is alone in a wide bucket. *)
      if q = 0.0 then float_of_int t.mn
      else if q = 1.0 then float_of_int t.mx
      else begin
      let rank = q *. float_of_int (t.n - 1) in
      let exception Found of float in
      try
        let cum = ref 0 in
        for k = 0 to buckets_len - 1 do
          let c = t.counts.(k) in
          if c > 0 then begin
            if rank <= float_of_int (!cum + c - 1) then begin
              let lo = if k = 0 then 0 else 1 lsl (k - 1) in
              let hi = if k = 0 then 0 else (1 lsl k) - 1 in
              let lo' = float_of_int (max lo t.mn) in
              let hi' = float_of_int (min hi t.mx) in
              let frac =
                if c <= 1 then 0.5
                else (rank -. float_of_int !cum) /. float_of_int (c - 1)
              in
              raise (Found (lo' +. (frac *. (hi' -. lo'))))
            end;
            cum := !cum + c
          end
        done;
        float_of_int t.mx
      with Found v -> v
      end
    end
end

type t = {
  clock : Recorder.clock;
  workers : int;
  events : int;
  dropped : int;
  batches : int;
  batch_size : Histo.t;
  setup_total : int;
  ops : int;
  op_latency : Histo.t;
  batches_seen : int array;
  max_batches_seen : int;
  steal_attempts : int;
  steal_successes : int;
  status_time : int array;
  work_units : int array;  (* clock units per work class, index = Wcore.. *)
  violations : int array;  (* per check, index = Recorder.check_code *)
}

let of_recorder r =
  let t =
    {
      clock = Recorder.clock r;
      workers = (if Recorder.enabled r then Recorder.workers r else 0);
      events = 0;
      dropped = Recorder.total_dropped r;
      batches = 0;
      batch_size = Histo.create ();
      setup_total = 0;
      ops = 0;
      op_latency = Histo.create ();
      batches_seen = Array.make 9 0;
      max_batches_seen = 0;
      steal_attempts = 0;
      steal_successes = 0;
      status_time = Array.make 4 0;
      work_units = Array.make 4 0;
      violations = Array.make Recorder.n_checks 0;
    }
  in
  if not (Recorder.enabled r) then t
  else begin
    let events = ref 0 in
    let batches = ref 0 in
    let setup_total = ref 0 in
    let ops = ref 0 in
    let max_seen = ref 0 in
    let attempts = ref 0 in
    let hits = ref 0 in
    let status_idx = function
      | Recorder.Free -> 0
      | Recorder.Pending -> 1
      | Recorder.Executing -> 2
      | Recorder.Done -> 3
    in
    let class_idx = function
      | Recorder.Wcore -> 0
      | Recorder.Wbatch -> 1
      | Recorder.Wsetup -> 2
      | Recorder.Wsched -> 3
    in
    for w = 0 to Recorder.workers r - 1 do
      let cur = ref Recorder.Free in
      let since = ref 0 in
      let last = ref 0 in
      List.iter
        (fun (e : Recorder.event) ->
          incr events;
          last := e.time;
          match e.kind with
          | Recorder.Status s ->
              t.status_time.(status_idx !cur) <-
                t.status_time.(status_idx !cur) + (e.time - !since);
              cur := s;
              since := e.time
          | Recorder.Steal { success; _ } ->
              incr attempts;
              if success then incr hits
          | Recorder.Steals_suppressed { count } ->
              (* Failed attempts batched while the worker was in backoff:
                 fold them back in so the attempt total stays truthful. *)
              attempts := !attempts + count
          | Recorder.Batch_start { size; setup; _ } ->
              incr batches;
              Histo.add t.batch_size size;
              setup_total := !setup_total + setup
          | Recorder.Work { cls; units } ->
              t.work_units.(class_idx cls) <- t.work_units.(class_idx cls) + units
          | Recorder.Batch_end _ -> ()
          | Recorder.Op_issue _ -> ()
          | Recorder.Violation { check; _ } ->
              let k = Recorder.check_code check in
              t.violations.(k) <- t.violations.(k) + 1
          | Recorder.Op_done { batches_seen; latency; _ } ->
              incr ops;
              Histo.add t.op_latency latency;
              let k = min 8 (max 0 batches_seen) in
              t.batches_seen.(k) <- t.batches_seen.(k) + 1;
              if batches_seen > !max_seen then max_seen := batches_seen)
        (Recorder.events_of_worker r w);
      t.status_time.(status_idx !cur) <-
        t.status_time.(status_idx !cur) + (!last - !since)
    done;
    {
      t with
      events = !events;
      batches = !batches;
      setup_total = !setup_total;
      ops = !ops;
      max_batches_seen = !max_seen;
      steal_attempts = !attempts;
      steal_successes = !hits;
    }
  end

let steal_rate t =
  if t.steal_attempts = 0 then 0.0
  else float_of_int t.steal_successes /. float_of_int t.steal_attempts

let unit_name = function Recorder.Timesteps -> "steps" | Recorder.Nanoseconds -> "ns"

let pp_histo fmt ~unit h =
  if Histo.count h = 0 then Format.fprintf fmt "  (empty)@."
  else begin
    Format.fprintf fmt "  n=%d mean=%.1f min=%d max=%d %s@." (Histo.count h)
      (Histo.mean h) (Histo.min_v h) (Histo.max_v h) unit;
    List.iter
      (fun (lo, hi, c) ->
        Format.fprintf fmt "  [%10d, %10d] %8d %s@." lo hi c
          (String.make (min 40 c) '#'))
      (Histo.buckets h)
  end

let pp fmt t =
  let u = unit_name t.clock in
  Format.fprintf fmt "recording: %d workers, %d events (%d dropped), clock=%s@."
    t.workers t.events t.dropped u;
  Format.fprintf fmt "status time (%s): free=%d pending=%d executing=%d done=%d@." u
    t.status_time.(0) t.status_time.(1) t.status_time.(2) t.status_time.(3);
  Format.fprintf fmt "steals: %d attempts, %d successes (%.1f%%)@." t.steal_attempts
    t.steal_successes (100.0 *. steal_rate t);
  Format.fprintf fmt "work units (%s): core=%d batch=%d setup=%d sched=%d@." u
    t.work_units.(0) t.work_units.(1) t.work_units.(2) t.work_units.(3);
  Format.fprintf fmt "batches: %d (total setup work %d)@." t.batches t.setup_total;
  Format.fprintf fmt "batch size:@.";
  pp_histo fmt ~unit:"ops" t.batch_size;
  Format.fprintf fmt "op latency (issue -> batch completion):@.";
  pp_histo fmt ~unit:u t.op_latency;
  Format.fprintf fmt
    "batches launched while pending (Lemma 2 bound: 2; max seen %d):@."
    t.max_batches_seen;
  Array.iteri
    (fun k c ->
      if c > 0 then
        Format.fprintf fmt "  %s: %8d %s@."
          (if k = 8 then "8+" else string_of_int k)
          c
          (String.make (min 40 c) '#'))
    t.batches_seen;
  let nviol = Array.fold_left ( + ) 0 t.violations in
  if nviol > 0 then begin
    Format.fprintf fmt "VIOLATIONS: %d@." nviol;
    Array.iteri
      (fun k c ->
        if c > 0 then
          Format.fprintf fmt "  %s: %d@."
            (Recorder.check_name (Recorder.check_of_code k))
            c)
      t.violations
  end

let histo_json h =
  Json.Obj
    [
      ("count", Json.Int (Histo.count h));
      ("total", Json.Int (Histo.total h));
      ("mean", Json.Float (Histo.mean h));
      ("min", Json.Int (Histo.min_v h));
      ("max", Json.Int (Histo.max_v h));
      ( "buckets",
        Json.List
          (List.map
             (fun (lo, hi, c) ->
               Json.Obj
                 [ ("lo", Json.Int lo); ("hi", Json.Int hi); ("count", Json.Int c) ])
             (Histo.buckets h)) );
    ]

let to_json t =
  Json.Obj
    [
      ("clock", Json.Str (unit_name t.clock));
      ("workers", Json.Int t.workers);
      ("events", Json.Int t.events);
      ("dropped", Json.Int t.dropped);
      ( "status_time",
        Json.Obj
          [
            ("free", Json.Int t.status_time.(0));
            ("pending", Json.Int t.status_time.(1));
            ("executing", Json.Int t.status_time.(2));
            ("done", Json.Int t.status_time.(3));
          ] );
      ("steal_attempts", Json.Int t.steal_attempts);
      ("steal_successes", Json.Int t.steal_successes);
      ( "work_units",
        Json.Obj
          [
            ("core", Json.Int t.work_units.(0));
            ("batch", Json.Int t.work_units.(1));
            ("setup", Json.Int t.work_units.(2));
            ("sched", Json.Int t.work_units.(3));
          ] );
      ("batches", Json.Int t.batches);
      ("setup_work", Json.Int t.setup_total);
      ("batch_size", histo_json t.batch_size);
      ("ops", Json.Int t.ops);
      ("op_latency", histo_json t.op_latency);
      ( "batches_while_pending",
        Json.List (Array.to_list (Array.map (fun c -> Json.Int c) t.batches_seen)) );
      ("max_batches_while_pending", Json.Int t.max_batches_seen);
      ( "violations",
        Json.Obj
          (Array.to_list
             (Array.mapi
                (fun k c ->
                  (Recorder.check_name (Recorder.check_of_code k), Json.Int c))
                t.violations)) );
    ]
