type track = {
  pid : int;
  name : string;
  recording : Recorder.t;
}

let batch_tid_base = 1000
let work_tid_base = 2000

let ts_of recorder time =
  match Recorder.clock recorder with
  | Recorder.Timesteps -> float_of_int time  (* 1 timestep = 1 us *)
  | Recorder.Nanoseconds -> float_of_int time /. 1000.0

let status_name = function
  | Recorder.Free -> "free"
  | Recorder.Pending -> "pending"
  | Recorder.Executing -> "executing"
  | Recorder.Done -> "done"

let class_name = function
  | Recorder.Wcore -> "core"
  | Recorder.Wbatch -> "batch"
  | Recorder.Wsetup -> "setup"
  | Recorder.Wsched -> "sched"

(* One rendered trace event, before sorting. *)
type ev = { e_tid : int; e_ts : float; e_json : float -> Json.t }

let obj ~name ~cat ~ph ~ts ~pid ~tid extra =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("ts", Json.Float ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ extra)

let instant ~name ~cat ~pid ~tid args =
  fun ts ->
    obj ~name ~cat ~ph:"i" ~ts ~pid ~tid
      [ ("s", Json.Str "t"); ("args", Json.Obj args) ]

let span ~name ~cat ~pid ~tid ~dur args =
  fun ts -> obj ~name ~cat ~ph:"X" ~ts ~pid ~tid
      [ ("dur", Json.Float dur); ("args", Json.Obj args) ]

(* Worker-track events: status spans + instants, in event order. *)
let worker_events t w acc =
  let r = t.recording in
  let pid = t.pid in
  let acc = ref acc in
  let push tid time mk = acc := { e_tid = tid; e_ts = ts_of r time; e_json = mk } :: !acc in
  let cur_status = ref Recorder.Free in
  let since = ref 0 in
  let last = ref 0 in
  let close_span time =
    if !cur_status <> Recorder.Free && time > !since then
      push w !since
        (span
           ~name:(status_name !cur_status)
           ~cat:"status" ~pid ~tid:w
           ~dur:(ts_of r time -. ts_of r !since)
           [])
  in
  List.iter
    (fun (e : Recorder.event) ->
      last := e.time;
      match e.kind with
      | Recorder.Status s ->
          close_span e.time;
          cur_status := s;
          since := e.time
      | Recorder.Steal { victim; success; batch_deque } ->
          push w e.time
            (instant
               ~name:(if success then "steal hit" else "steal miss")
               ~cat:"steal" ~pid ~tid:w
               [
                 ("victim", Json.Int victim);
                 ("deque", Json.Str (if batch_deque then "batch" else "core"));
               ])
      | Recorder.Steals_suppressed { count } ->
          push w e.time
            (instant ~name:"steals suppressed" ~cat:"steal" ~pid ~tid:w
               [ ("count", Json.Int count) ])
      | Recorder.Op_issue { sid } ->
          push w e.time
            (instant ~name:"op issue" ~cat:"op" ~pid ~tid:w [ ("sid", Json.Int sid) ])
      | Recorder.Op_done { sid; batches_seen; latency } ->
          push w e.time
            (instant ~name:"op done" ~cat:"op" ~pid ~tid:w
               [
                 ("sid", Json.Int sid);
                 ("batches_seen", Json.Int batches_seen);
                 ("latency", Json.Int latency);
               ])
      | Recorder.Work { cls; units } ->
          (* The event marks the run's end; the span starts [units] clock
             units earlier, on the worker's companion work track. *)
          push (work_tid_base + w) (e.time - units)
            (span ~name:(class_name cls) ~cat:"work" ~pid
               ~tid:(work_tid_base + w)
               ~dur:(ts_of r e.time -. ts_of r (e.time - units))
               [ ("units", Json.Int units) ])
      | Recorder.Violation { check; sid; arg } ->
          push w e.time
            (instant
               ~name:("VIOLATION " ^ Recorder.check_name check)
               ~cat:"violation" ~pid ~tid:w
               [ ("sid", Json.Int sid); ("arg", Json.Int arg) ])
      | Recorder.Batch_start _ | Recorder.Batch_end _ -> ())
    (Recorder.events_of_worker r w);
  close_span !last;
  !acc

(* Batch-track events from the merged stream: one span per batch, on
   the synthetic per-structure thread. At most one batch per structure
   is in flight (Invariant 1), so a simple open-slot table suffices. *)
let batch_events t acc =
  let r = t.recording in
  let pid = t.pid in
  let open_batches = Hashtbl.create 8 in
  let acc = ref acc in
  let last = ref 0 in
  List.iter
    (fun (e : Recorder.event) ->
      last := e.time;
      match e.kind with
      | Recorder.Batch_start { sid; size; setup; _ } ->
          Hashtbl.replace open_batches sid (e.time, size, setup, e.worker)
      | Recorder.Batch_end { sid; size = _ } -> begin
          match Hashtbl.find_opt open_batches sid with
          | None -> ()
          | Some (t0, size, setup, launcher) ->
              Hashtbl.remove open_batches sid;
              acc :=
                {
                  e_tid = batch_tid_base + sid;
                  e_ts = ts_of r t0;
                  e_json =
                    span
                      ~name:(Printf.sprintf "batch n=%d" size)
                      ~cat:"batch" ~pid ~tid:(batch_tid_base + sid)
                      ~dur:(ts_of r e.time -. ts_of r t0)
                      [
                        ("sid", Json.Int sid);
                        ("size", Json.Int size);
                        ("setup_work", Json.Int setup);
                        ("launched_by", Json.Int launcher);
                      ];
                }
                :: !acc
        end
      | _ -> ())
    (Recorder.all_events r);
  (* Close any batch left open at the end of the recording. *)
  Hashtbl.iter
    (fun sid (t0, size, setup, launcher) ->
      acc :=
        {
          e_tid = batch_tid_base + sid;
          e_ts = ts_of r t0;
          e_json =
            span
              ~name:(Printf.sprintf "batch n=%d (unfinished)" size)
              ~cat:"batch" ~pid ~tid:(batch_tid_base + sid)
              ~dur:(ts_of r !last -. ts_of r t0)
              [
                ("sid", Json.Int sid);
                ("size", Json.Int size);
                ("setup_work", Json.Int setup);
                ("launched_by", Json.Int launcher);
              ];
        }
        :: !acc)
    open_batches;
  !acc

let metadata t =
  let meta ~name ~tid args =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("ph", Json.Str "M");
         ("ts", Json.Float 0.0);
         ("pid", Json.Int t.pid);
       ]
      @ (match tid with None -> [] | Some tid -> [ ("tid", Json.Int tid) ])
      @ [ ("args", Json.Obj args) ])
  in
  let procs = [ meta ~name:"process_name" ~tid:(Some 0) [ ("name", Json.Str t.name) ] ] in
  if not (Recorder.enabled t.recording) then procs
  else begin
    let sids = Hashtbl.create 8 in
    List.iter
      (fun (e : Recorder.event) ->
        match e.kind with
        | Recorder.Batch_start { sid; _ } | Recorder.Batch_end { sid; _ } ->
            Hashtbl.replace sids sid ()
        | _ -> ())
      (Recorder.all_events t.recording);
    let workers =
      List.init (Recorder.workers t.recording) (fun w ->
          meta ~name:"thread_name" ~tid:(Some w)
            [ ("name", Json.Str (Printf.sprintf "worker %d" w)) ])
    in
    let work_tracks =
      if (Recorder.tag_totals t.recording).(7) = 0 then []
      else
        List.init (Recorder.workers t.recording) (fun w ->
            meta ~name:"thread_name"
              ~tid:(Some (work_tid_base + w))
              [ ("name", Json.Str (Printf.sprintf "worker %d work" w)) ])
    in
    let batches =
      Hashtbl.fold
        (fun sid () acc ->
          meta ~name:"thread_name"
            ~tid:(Some (batch_tid_base + sid))
            [ ("name", Json.Str (Printf.sprintf "structure %d batches" sid)) ]
          :: acc)
        sids []
    in
    procs @ workers @ work_tracks @ batches
  end

let track_events t =
  if not (Recorder.enabled t.recording) then []
  else begin
    let acc =
      List.fold_left
        (fun acc w -> worker_events t w acc)
        []
        (List.init (Recorder.workers t.recording) Fun.id)
    in
    let acc = batch_events t acc in
    (* Sort so ts is monotone within each (pid, tid) track; stable to
       keep emission order for equal timestamps. *)
    List.stable_sort
      (fun a b ->
        match compare a.e_tid b.e_tid with 0 -> compare a.e_ts b.e_ts | c -> c)
      (List.rev acc)
    |> List.map (fun e -> e.e_json e.e_ts)
  end

let to_json tracks =
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.concat_map (fun t -> metadata t @ track_events t) tracks) );
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string tracks = Json.to_string (to_json tracks)

let write_file ~path tracks =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Json.write buf (to_json tracks);
      Buffer.output_buffer oc buf)
