type segment = {
  sg_kind : string;  (* "batch" | "op" *)
  sg_sid : int;
  sg_start : int;
  sg_len : int;
  sg_worker : int;
}

type chain = {
  ch_sid : int;
  ch_batches : int;
  ch_serial : int;  (* Σ batch durations; batches of one sid never overlap *)
  ch_longest : int;  (* longest single batch *)
}

type t = {
  clock : Recorder.clock;
  chains : chain array;  (* indexed by sid, dense up to max sid seen *)
  max_op_latency : int;
  t_inf_witness : int;
  top : segment list;  (* longest segments, descending *)
}

(* Every quantity here is a certified lower bound on the realized
   critical path: a structure's batches are serialized (Invariant 1 /
   the runtime's launch flag), so the sum of one structure's batch
   durations is a dependency chain through wall-clock time; an
   operation's issue→completion latency is likewise a realized
   dependency (the op cannot complete before its batch does). The
   witness is the max over all of them — always ≤ makespan, and tight
   exactly when one serialization chain dominates the run. *)
let of_recorder ?(k = 10) r =
  if not (Recorder.enabled r) then
    {
      clock = Recorder.clock r;
      chains = [||];
      max_op_latency = 0;
      t_inf_witness = 0;
      top = [];
    }
  else begin
    let open_batches = Hashtbl.create 8 in
    let chains = Hashtbl.create 8 in
    let segs = ref [] in
    let max_lat = ref 0 in
    List.iter
      (fun (e : Recorder.event) ->
        match e.kind with
        | Recorder.Batch_start { sid; _ } ->
            Hashtbl.replace open_batches sid (e.time, e.worker)
        | Recorder.Batch_end { sid; _ } -> begin
            match Hashtbl.find_opt open_batches sid with
            | None -> ()
            | Some (t0, w0) ->
                Hashtbl.remove open_batches sid;
                let len = e.time - t0 in
                let b, s, l =
                  match Hashtbl.find_opt chains sid with
                  | Some (b, s, l) -> (b, s, l)
                  | None -> (0, 0, 0)
                in
                Hashtbl.replace chains sid (b + 1, s + len, max l len);
                segs :=
                  {
                    sg_kind = "batch";
                    sg_sid = sid;
                    sg_start = t0;
                    sg_len = len;
                    sg_worker = w0;
                  }
                  :: !segs
          end
        | Recorder.Op_done { sid; latency; _ } ->
            if latency > !max_lat then max_lat := latency;
            segs :=
              {
                sg_kind = "op";
                sg_sid = sid;
                sg_start = e.time - latency;
                sg_len = latency;
                sg_worker = e.worker;
              }
              :: !segs
        | _ -> ())
      (Recorder.all_events r);
    let max_sid = Hashtbl.fold (fun sid _ acc -> max acc sid) chains (-1) in
    let chain_arr =
      Array.init (max_sid + 1) (fun sid ->
          let b, s, l =
            match Hashtbl.find_opt chains sid with
            | Some v -> v
            | None -> (0, 0, 0)
          in
          { ch_sid = sid; ch_batches = b; ch_serial = s; ch_longest = l })
    in
    let witness =
      Array.fold_left
        (fun acc c -> max acc c.ch_serial)
        !max_lat chain_arr
    in
    let top =
      let sorted =
        List.stable_sort (fun a b -> compare b.sg_len a.sg_len) !segs
      in
      List.filteri (fun i _ -> i < k) sorted
    in
    {
      clock = Recorder.clock r;
      chains = chain_arr;
      max_op_latency = !max_lat;
      t_inf_witness = witness;
      top;
    }
  end

let unit_name = function Recorder.Timesteps -> "steps" | Recorder.Nanoseconds -> "ns"

let pp fmt t =
  let u = unit_name t.clock in
  Format.fprintf fmt "critical-path witness: %d %s (max op latency %d)@."
    t.t_inf_witness u t.max_op_latency;
  Array.iter
    (fun c ->
      if c.ch_batches > 0 then
        Format.fprintf fmt
          "  structure %d: %d serialized batches, %d %s total (longest %d, mean s(n) %.1f)@."
          c.ch_sid c.ch_batches c.ch_serial u c.ch_longest
          (float_of_int c.ch_serial /. float_of_int c.ch_batches))
    t.chains;
  if t.top <> [] then begin
    Format.fprintf fmt "  top path segments:@.";
    List.iter
      (fun s ->
        Format.fprintf fmt "    %-5s sid=%d worker=%d [%d, %d] len=%d %s@."
          s.sg_kind s.sg_sid s.sg_worker s.sg_start (s.sg_start + s.sg_len)
          s.sg_len u)
      t.top
  end

let to_json t =
  Json.Obj
    [
      ("clock", Json.Str (unit_name t.clock));
      ("t_inf_witness", Json.Int t.t_inf_witness);
      ("max_op_latency", Json.Int t.max_op_latency);
      ( "chains",
        Json.List
          (Array.to_list
             (Array.map
                (fun c ->
                  Json.Obj
                    [
                      ("sid", Json.Int c.ch_sid);
                      ("batches", Json.Int c.ch_batches);
                      ("serial", Json.Int c.ch_serial);
                      ("longest", Json.Int c.ch_longest);
                    ])
                t.chains)) );
      ( "top_segments",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("kind", Json.Str s.sg_kind);
                   ("sid", Json.Int s.sg_sid);
                   ("worker", Json.Int s.sg_worker);
                   ("start", Json.Int s.sg_start);
                   ("len", Json.Int s.sg_len);
                 ])
             t.top) );
    ]
