(** Causal what-if profiling: the generic experiment engine.

    A Coz-style causal profile answers "if phase X were f× faster,
    what happens to throughput and the tail?" — a question phase
    {e shares} ({!Reqtrace.shares}) cannot answer: under queueing,
    shrinking the phase that holds the batch flag collapses everyone's
    pending-wait (sensitivity ≫ share), while shrinking an
    off-critical phase buys nothing (sensitivity ≪ share).

    This module is the pure half: given a baseline {!measure}, the
    baseline's phase shares, and one re-measured {!measure} per
    (phase × speedup) grid cell, it computes deltas, the share-based
    prediction each cell should match if shares {e were} sensitivities,
    the divergence between the two, the measured-vs-bound winner
    comparison, and renders the ranked table / CAUSAL report rows.
    How a cell is produced is the caller's business ([Svc.Causal]):
    exact cost scaling on the virtual clock ({!Sim.Costs}), or
    calibrated delay injection on the runtime (virtual speedup of X =
    slowing every other phase; [Runtime.Batcher_rt]'s [inject]). *)

type measure = {
  goodput : float;  (** requests per second *)
  mean_ns : float;
  p99_ns : float;
  max_ns : float;
  bound_ns : float;
      (** the Theorem-1 service budget ({!Check.Bound.service_budget})
          evaluated on this run's own measured terms; NaN when the leg
          cannot evaluate it (the runtime leg has no virtual-clock
          work/span accounting) *)
  per_class : (string * float) list;  (** op class -> mean_ns *)
}

type cell = {
  phase : string;  (** the virtually sped-up phase *)
  family : string;  (** "work" | "span" | "sched" | "share" *)
  speedup : float;  (** f >= 1 *)
  m : measure;
  d_mean : float;
      (** fractional mean-latency improvement vs baseline: +0.5 = the
          mean halved, negative = the "speedup" hurt; NaN = no signal *)
  d_p99 : float;
  d_goodput : float;  (** sign flipped: + = more goodput *)
  d_bound : float;  (** improvement of the Theorem-1 budget; NaN if unevaluated *)
  share_predicted : float;
      (** what [d_mean] would be if the phase's latency share were its
          sensitivity: share × (1 − 1/f); NaN when the phase maps to
          no Reqtrace share (e.g. the worker-share knob) *)
  divergence : float;  (** [d_mean − share_predicted]; NaN as above *)
  d_class : (string * float) list;  (** per-op-class d_mean *)
}

type profile = {
  exec : string;  (** "sim" | "runtime" *)
  label : string;  (** human description of the grid (scenario, P, K...) *)
  baseline : measure;
  shares : (string * float) list;  (** baseline {!Reqtrace.shares} *)
  cells : cell list;
  winner_measured : string option;
      (** phase with the largest d_mean at its deepest swept speedup *)
  winner_bound : string option;  (** same by d_bound; None when NaN *)
  agree : bool option;
      (** measured winner = bound winner; None when the bound side is
          not evaluable — a [Some false] flags where the bound's
          dominant term disagrees with the measured causal winner *)
  divergent : (string * float) list;
      (** phases whose |divergence| at deepest speedup exceeds
          {!divergence_threshold} — the "shares ≠ sensitivity" list *)
}

val divergence_threshold : float
(** 0.05: a phase whose measured sensitivity is more than five
    latency-percentage-points away from its share-based prediction is
    flagged. *)

val cell :
  baseline:measure ->
  shares:(string * float) list ->
  phase:string ->
  family:string ->
  share_of:string option ->
  speedup:float ->
  measure ->
  cell
(** Compute one grid cell's deltas. [share_of] names the
    {!Reqtrace} phase whose share predicts this knob (None when no
    share maps). Raises [Invalid_argument] if [speedup < 1]. *)

val profile :
  exec:string ->
  label:string ->
  baseline:measure ->
  shares:(string * float) list ->
  cell list ->
  profile
(** Assemble the profile: winners and divergences are computed from
    each phase's deepest-speedup cell. *)

val rows : ident:(string * Json.t) list -> profile -> Json.t list
(** CAUSAL rows for BENCH_results.json: one [phase="baseline"] row
    (measures + share_* fields) plus, per cell, one [cls="all"] row
    (measures, d_*, share_predicted, divergence) and one row per op
    class (d_mean). [ident] fields (scenario, store, p, shards,
    mode...) are spliced into every row; phase/speedup/cls complete
    the signature. NaN metrics render as JSON null. *)

val render : profile -> string
(** The ranked causal-profile table: baseline, per-cell deltas with
    DIVERGES markers, a per-op-class phase ranking, the
    measured-vs-Theorem-1 winner verdict, and the shares≠sensitivity
    list. *)
