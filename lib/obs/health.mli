(** Always-on runtime health: heartbeats, a stall watchdog, and
    per-structure phase-latency SLOs.

    Built for the real runtime ({!Clock} nanoseconds; the simulator has
    no need — its schedules are already fully auditable). Three signals:

    - {b Heartbeats} — each worker calls {!beat} once per scheduler-loop
      iteration (one clock read and one array store); the sampler
      reports every worker's beat age, so a wedged domain is visible.
    - {b Stall watchdog} — ops pending on a structure but no batch
      launched within [stall_ns]: {!check_stalls} (run from a dedicated
      {!watchdog_start} tick domain, or piggybacked on the {!Snapshot}
      sampler thread) opens one stall {e episode} per
      offence, counted monotonically and folded into the attached
      {!Invariants} counters; the episode closes when a batch launches
      or the structure drains.
    - {b Phase latency} — each completed op's time is decomposed into
      pending-wait (issue → its batch's launch), batch-exec (launch →
      batch completion), and overflow-queue time (overflow enqueue →
      launch; 0 for ops that got a pending-array slot). Per
      worker × structure × phase power-of-two histograms, written only
      by the launching worker (single-writer, allocation-free) and
      merged with {!Summary.Histo.merge} at sample time; each phase has
      an SLO threshold whose breaches bump a burn counter.

    The quiet path — monitoring enabled, nothing wrong — allocates
    nothing (pinned by a [Gc.minor_words] test) and is a handful of
    atomic adds per op. Everything is readable while the run is live;
    readers may see a sample a few events stale, never torn. *)

(** Per-phase SLO thresholds in nanoseconds. *)
type slo = { wait_ns : int; exec_ns : int; ovf_ns : int }

val default_slo : slo
(** 100 ms per phase — loose enough not to burn on a loaded CI box;
    production callers pass their own. *)

type phase = Wait | Exec | Ovf

type t

val null : t
(** Disabled: [enabled null = false]; every hook is a no-op. *)

val create :
  ?slo:slo ->
  ?stall_ns:int ->
  ?invariants:Invariants.t ->
  workers:int ->
  structures:int ->
  unit ->
  t
(** [stall_ns] defaults to 1 s. [invariants] (default {!Invariants.null})
    receives {!Invariants.note_stall} for each watchdog episode and is
    what {!invariants} hands to the runtime for op/batch checks. Hooks
    with out-of-range [worker]/[sid] are ignored. *)

val enabled : t -> bool
val invariants : t -> Invariants.t
val workers : t -> int
val structures : t -> int

(* ---- hot-path hooks (allocation-free) ---- *)

val beat : t -> worker:int -> unit
(** One heartbeat; the stored stamp is refreshed every 8th call (the
    clock read dominates the hook), so reported beat ages can lag by up
    to 8 scheduler-loop iterations. *)

val op_issued : t -> sid:int -> unit
(** An op parked on [sid]; starts the structure's pending window when
    it was empty. *)

val batch_collected : t -> sid:int -> size:int -> unit
(** A launch collected [size] ops from [sid]; feeds the watchdog
    (closes any stall episode) and the pending gauge. *)

val op_phases :
  t -> worker:int -> sid:int -> wait:int -> exec:int -> ovf:int -> unit
(** Phase decomposition of one completed op, in ns, recorded by the
    worker that ran the batch. *)

(* ---- sampler side ---- *)

val check_stalls : ?now:int -> t -> unit
(** Scan structures for pending-but-unlaunched past [stall_ns]; called
    by {!Snapshot.sample} when a health instance is attached. [now]
    defaults to {!Clock.now_ns}. *)

val stall_count : t -> int

type watchdog

val watchdog_start : ?tick_s:float -> t -> watchdog
(** Spawn a dedicated domain that runs {!check_stalls} every [tick_s]
    seconds (default 10 ms). Without it, stall detection latency is
    [stall_ns] + the {!Snapshot} sampler interval (often 100 ms–1 s);
    with it the bound tightens to [stall_ns + tick_s] + scheduling
    noise. The domain sleeps between ticks, so a fine tick costs
    wakeups, not CPU. Inert (no domain) when [t] is disabled or
    [tick_s <= 0]. *)

val watchdog_stop : watchdog -> unit
(** Signal the tick domain to exit and join it. Idempotent. *)

val heartbeat_age_ns : t -> worker:int -> now:int -> int
(** [-1] before the worker's first beat. *)

val phase_histo : t -> sid:int -> phase -> Summary.Histo.t
(** Fresh merge of every worker's histogram for [sid]×[phase]. *)

val burn_count : t -> sid:int -> phase -> int

val to_json : ?now:int -> t -> Json.t
(** The ["health"] object carried on snapshot lines: per-worker beat
    ages, per-structure gauges + merged phase stats + burn counters,
    the stall total, and the attached invariants' counters. [Json.Null]
    when disabled. *)
