(** Request-scoped span tracing: the per-request anatomy behind the
    aggregate latency digests.

    One instance covers one open-loop run. Every request carries a
    compact token (its index in the run's schedule, [0 .. capacity)),
    and each lifecycle hook writes one or two plain-int slots of
    preallocated flat arrays indexed by that token — no allocation, no
    synchronization (each milestone has exactly one writer per
    request). A request's whole life is captured:

    release → serve-task start → submit (BATCHIFY) → pending-array
    publication (or overflow / displacement) → batch launch → BOP
    execution → completion

    and decomposes into an {e exact} phase sum (see {!span}):

    [latency = queue + sched_pre + pending + exec + sched_post]

    where [pending]/[exec] are deltas measured inside the batcher (so
    they are correct on whatever clock basis the batcher stamps with),
    the milestone stamps are raw monotonic ns taken by this module, and
    [sched_post] is the residual (batch completion → continuation
    resumed). Stamp ordering makes every term nonnegative; {!check}
    enforces both properties over a completed run.

    The slowest-K reservoir keeps the K worst requests {e per class}
    exactly, not probabilistically: every completion offers its
    latency to a single-writer per-(worker, class) top-K segment
    (lock-free — segments are disjoint), and {!slowest} merges the
    segments at read time. Since the flat arrays hold every request's
    stamps, a reservoir winner's anatomy is materialized whole.

    [sample_every] does not gate capture (capture is free); it marks
    every Nth token {!span.sampled} so exporters
    (bin/anatomy.exe's Perfetto sink) can thin the timeline without
    losing the tail — slowest-K spans are always exported. *)

type t

val null : t
(** Disabled: every hook returns after one field load. *)

val create :
  ?sample_every:int ->
  ?k:int ->
  workers:int ->
  classes:int ->
  capacity:int ->
  unit ->
  t
(** [capacity] tokens ([0 .. capacity)); hooks on tokens outside the
    range (including the untraced sentinel [-1]) are no-ops. Defaults:
    [sample_every = 32], [k = 16] (the reservoir depth per class).
    [workers >= 1], [classes >= 1]. *)

val enabled : t -> bool
val capacity : t -> int
val k : t -> int
val classes : t -> int

(* ---- lifecycle hooks (allocation-free; scalar arguments only) ---- *)

val on_release : t -> token:int -> arrive_ns:int -> unit
(** The dispatcher released the request. [arrive_ns] is the {e
    scheduled} arrival on the raw monotonic-ns basis ([t0 +
    Gen.arrive_ns]); latency and queue-wait are measured from it. *)

val on_start : t -> token:int -> cls:int -> worker:int -> unit
(** The serve task began running on [worker]. *)

val on_submit : t -> token:int -> sid:int -> unit
(** BATCHIFY entered for the request's (representative) operation on
    structure [sid]. Called by [Runtime.Batcher_rt] before the op
    record is stamped, so [submit <= issue_time]. *)

val on_publish : t -> token:int -> unit
(** The op record became reachable in a pending-array slot. *)

val on_overflow : t -> token:int -> displaced:bool -> unit
(** The op record went to the overflow queue — directly (missed slot)
    or displaced by a newer epoch's claimant ([displaced = true],
    Faa_array only). *)

val on_batch :
  t ->
  token:int ->
  wait:int ->
  exec:int ->
  ovf:int ->
  seen:int ->
  worker:int ->
  mode:int ->
  unit
(** The batch containing the op completed. [wait]/[exec]/[ovf] are
    durations on the batcher's own stamp basis (issue → launch, launch
    → done, overflow-enqueue → launch); [seen] is the op's
    batches-while-pending (the Lemma-2 figure); [worker] executed the
    stamping loop; [mode] is {!Runtime.Batcher_rt.mode_code}. For
    fan-out requests only the representative sub-op carries the token,
    so one consistent chain is recorded and the cross-shard join lands
    in [sched_post]. *)

val on_done : t -> token:int -> worker:int -> unit
(** The request's continuation resumed and its latency is final: stamp
    completion and offer the request to [worker]'s reservoir segment. *)

val offer : t -> worker:int -> cls:int -> token:int -> lat:int -> unit
(** The raw reservoir primitive ({!on_done} calls it): insert into the
    single-writer top-K segment of ([worker], [cls]). Exposed for the
    simulator path and the concurrency tests; calls with the same
    [worker] must not race each other. *)

val record_sim : t ->
  token:int -> cls:int -> sid:int -> arrive_ns:int ->
  pending_ns:int -> exec_ns:int -> seen:int -> unit
(** Bulk entry for the virtual-clock driver: one call captures a whole
    sim request (queue/sched phases are zero on the virtual clock —
    the engine admits at arrival and resumes at batch completion).
    Deterministic: touches no wall clock. *)

(* ---- read-out (after the run) ---- *)

type span = {
  token : int;
  cls : int;
  sid : int;
  mode : int;  (** {!Runtime.Batcher_rt.mode_code}; 0 for sim *)
  sampled : bool;
  ovf : bool;  (** waited in the overflow queue *)
  displaced : bool;  (** sent to overflow by a newer epoch's claimant *)
  arrive_ns : int;  (** scheduled arrival, raw basis *)
  latency_ns : int;  (** completion − scheduled arrival *)
  queue_ns : int;  (** arrival → serve-task start *)
  sched_pre_ns : int;  (** serve-task start → BATCHIFY *)
  pending_ns : int;  (** BATCHIFY → batch launch (Lemma-2 wait) *)
  exec_ns : int;  (** batch launch → batch completion *)
  sched_post_ns : int;  (** batch completion → continuation resumed;
                            includes the cross-shard join of fan-outs *)
  ovf_ns : int;  (** part of [pending_ns] spent in the overflow queue *)
  batches_seen : int;  (** batches launched while pending (Lemma 2) *)
  w_start : int;  (** worker that ran the serve task *)
  w_batch : int;  (** worker that stamped the batch *)
  w_done : int;  (** worker that resumed the continuation *)
}

val phase_names : string list
(** ["queue"; "sched"; "pending"; "exec"] — the disjoint phases whose
    shares sum to 1 ([sched] = pre + post; [ovf] is a sub-component of
    [pending], reported separately). *)

val span : t -> int -> span option
(** The materialized span of a completed token; [None] for tokens
    never completed (or out of range). *)

val completed : t -> int
(** Requests completed so far (sum of per-worker counters; safe to
    sample during a run, may be a few behind). *)

val reservoir : ?cls:int -> t -> (int * int) list
(** Merged slowest-K as [(latency_ns, token)] pairs, worst first, at
    most [k]; [cls] restricts to one class (default: all classes
    merged). *)

val slowest : ?cls:int -> t -> span list
(** {!reservoir} materialized whole, worst first. *)

type totals = {
  n : int;  (** completed requests in the aggregate *)
  t_latency : int;
  t_queue : int;
  t_sched : int;
  t_pending : int;
  t_exec : int;
  t_ovf : int;
}

val totals : ?cls:int -> t -> totals
(** Phase sums over every completed request (of one class when [cls]
    is given): the load-sweep attribution input.
    [t_queue + t_sched + t_pending + t_exec = t_latency] exactly. *)

val shares : totals -> (string * float) list
(** [(phase, share-of-total-latency)] in {!phase_names} order plus
    ["ovf"]; all zeros when [t_latency = 0]. The four disjoint shares
    sum to 1. *)

val check : t -> (unit, string) result
(** Conservation over every completed span: the four phases (plus
    residual) sum exactly to the measured latency and every phase is
    nonnegative; [ovf_ns <= pending_ns]. [Error] pinpoints the first
    offending token. *)
