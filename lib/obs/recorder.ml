type clock = Timesteps | Nanoseconds

type status = Free | Pending | Executing | Done

type work_class = Wcore | Wbatch | Wsetup | Wsched

type check = Inv1 | Inv2 | Inv3 | Lemma2 | Stall

type kind =
  | Status of status
  | Steal of { victim : int; success : bool; batch_deque : bool }
  | Batch_start of { sid : int; size : int; setup : int; mode : int }
  | Batch_end of { sid : int; size : int }
  | Op_issue of { sid : int }
  | Op_done of { sid : int; batches_seen : int; latency : int }
  | Steals_suppressed of { count : int }
  | Work of { cls : work_class; units : int }
  | Violation of { check : check; sid : int; arg : int }

type event = { worker : int; time : int; kind : kind }

let n_tags = 9

(* Flat storage: one slot = (tag, time, a, b, c), all ints, in five
   parallel arrays. Tags: 0 status, 1 steal, 2 batch_start, 3 batch_end,
   4 op_issue, 5 op_done, 6 steals_suppressed, 7 work, 8 violation.
   [cnt.(tag)] counts every emission of that tag, wraparound included —
   the snapshot streamer reads these without scanning the ring. *)
type ring = {
  tag : int array;
  tm : int array;
  a : int array;
  b : int array;
  c : int array;
  cnt : int array;  (* length [n_tags] *)
  mutable next : int;  (* total events ever emitted on this ring *)
}

type t = {
  enabled : bool;
  clk : clock;
  mask : int;  (* capacity - 1; capacity is a power of two *)
  cap : int;
  rings : ring array;
  epoch : int;
}

let null =
  { enabled = false; clk = Timesteps; mask = 0; cap = 0; rings = [||]; epoch = 0 }

let round_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 1

let create ?(capacity = 65536) ~clock ~workers () =
  if workers < 1 then invalid_arg "Recorder.create: workers >= 1";
  if capacity < 1 then invalid_arg "Recorder.create: capacity >= 1";
  let cap = round_pow2 capacity in
  {
    enabled = true;
    clk = clock;
    mask = cap - 1;
    cap;
    rings =
      Array.init workers (fun _ ->
          {
            tag = Array.make cap 0;
            tm = Array.make cap 0;
            a = Array.make cap 0;
            b = Array.make cap 0;
            c = Array.make cap 0;
            cnt = Array.make n_tags 0;
            next = 0;
          });
    epoch = (match clock with Nanoseconds -> Clock.now_ns () | Timesteps -> 0);
  }

let enabled t = t.enabled
let clock t = t.clk
let workers t = Array.length t.rings

let now t =
  match t.clk with
  | Nanoseconds -> Clock.now_ns () - t.epoch
  | Timesteps -> invalid_arg "Recorder.now: timestep recorder has no clock"

let[@inline] emit t ~worker ~time tag a b c =
  if t.enabled then begin
    let r = t.rings.(worker) in
    let i = r.next land t.mask in
    r.tag.(i) <- tag;
    r.tm.(i) <- time;
    r.a.(i) <- a;
    r.b.(i) <- b;
    r.c.(i) <- c;
    r.cnt.(tag) <- r.cnt.(tag) + 1;
    r.next <- r.next + 1
  end

let status_code = function Free -> 0 | Pending -> 1 | Executing -> 2 | Done -> 3

let status_of_code = function
  | 0 -> Free
  | 1 -> Pending
  | 2 -> Executing
  | _ -> Done

let class_code = function Wcore -> 0 | Wbatch -> 1 | Wsetup -> 2 | Wsched -> 3

let class_of_code = function
  | 0 -> Wcore
  | 1 -> Wbatch
  | 2 -> Wsetup
  | _ -> Wsched

let check_code = function Inv1 -> 0 | Inv2 -> 1 | Inv3 -> 2 | Lemma2 -> 3 | Stall -> 4

let check_of_code = function
  | 0 -> Inv1
  | 1 -> Inv2
  | 2 -> Inv3
  | 3 -> Lemma2
  | _ -> Stall

let n_checks = 5

let check_name = function
  | Inv1 -> "inv1"
  | Inv2 -> "inv2"
  | Inv3 -> "inv3"
  | Lemma2 -> "lemma2"
  | Stall -> "stall"

let emit_status t ~worker ~time s = emit t ~worker ~time 0 (status_code s) 0 0

let emit_steal t ~worker ~time ~victim ~success ~batch_deque =
  emit t ~worker ~time 1 victim (if success then 1 else 0) (if batch_deque then 1 else 0)

(* [setup] and the batch-path [mode] share the third payload slot:
   [c = (setup lsl 2) lor mode]. Two bits suffice for the four
   Batcher_rt modes (0 faa/sim, 1 worker_id, 2 par_combine,
   3 atomic_list); setups keep ~60 bits. *)
let emit_batch_start t ~worker ~time ~sid ~size ~setup ~mode =
  emit t ~worker ~time 2 sid size ((setup lsl 2) lor (mode land 3))

let emit_batch_end t ~worker ~time ~sid ~size = emit t ~worker ~time 3 sid size 0

let emit_op_issue t ~worker ~time ~sid = emit t ~worker ~time 4 sid 0 0

let emit_op_done t ~worker ~time ~sid ~batches_seen ~latency =
  emit t ~worker ~time 5 sid batches_seen latency

let emit_steals_suppressed t ~worker ~time ~count =
  emit t ~worker ~time 6 count 0 0

let emit_work t ~worker ~time ~cls ~units =
  emit t ~worker ~time 7 (class_code cls) units 0

let emit_violation t ~worker ~time ~check ~sid ~arg =
  emit t ~worker ~time 8 (check_code check) sid arg

let length t ~worker =
  if not t.enabled then 0 else min t.rings.(worker).next t.cap

let tag_totals t =
  let out = Array.make n_tags 0 in
  if t.enabled then
    Array.iter
      (fun r ->
        for k = 0 to n_tags - 1 do
          out.(k) <- out.(k) + r.cnt.(k)
        done)
      t.rings;
  out

let dropped t ~worker =
  if not t.enabled then 0 else max 0 (t.rings.(worker).next - t.cap)

let total_dropped t =
  if not t.enabled then 0
  else Array.fold_left (fun acc r -> acc + max 0 (r.next - t.cap)) 0 t.rings

let kind_of_slot r i =
  match r.tag.(i) with
  | 0 -> Status (status_of_code r.a.(i))
  | 1 -> Steal { victim = r.a.(i); success = r.b.(i) = 1; batch_deque = r.c.(i) = 1 }
  | 2 ->
      Batch_start
        { sid = r.a.(i); size = r.b.(i); setup = r.c.(i) asr 2;
          mode = r.c.(i) land 3 }
  | 3 -> Batch_end { sid = r.a.(i); size = r.b.(i) }
  | 4 -> Op_issue { sid = r.a.(i) }
  | 6 -> Steals_suppressed { count = r.a.(i) }
  | 7 -> Work { cls = class_of_code r.a.(i); units = r.b.(i) }
  | 8 -> Violation { check = check_of_code r.a.(i); sid = r.b.(i); arg = r.c.(i) }
  | _ -> Op_done { sid = r.a.(i); batches_seen = r.b.(i); latency = r.c.(i) }

let events_of_worker t worker =
  if not t.enabled then []
  else begin
    let r = t.rings.(worker) in
    let first = max 0 (r.next - t.cap) in
    List.init (r.next - first) (fun k ->
        let i = (first + k) land t.mask in
        { worker; time = r.tm.(i); kind = kind_of_slot r i })
  end

let all_events t =
  if not t.enabled then []
  else begin
    let per = List.init (workers t) (fun w -> events_of_worker t w) in
    (* Stable merge by time: List.stable_sort keeps each worker's
       (already chronological) order for equal times. *)
    List.stable_sort (fun e1 e2 -> compare e1.time e2.time) (List.concat per)
  end
