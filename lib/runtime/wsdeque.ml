(* Work-stealing deque with the whole synchronization state packed into
   ONE atomic word — the par-ml variant of Chase-Lev (SNIPPETS.md calls
   it "a single atomic variable for the state of the deque"), replacing
   the classic two-atomic (top, bottom) formulation we used before (that
   version survives as [bench/deque_legacy.ml] for M2 head-to-heads).

   Encoding:  word = (top lsl size_bits) lor size,   both non-negative.
   [top] is the steal index; [size] the element count; the owner's write
   index ("bottom") is always [top + size].

   Protocol (all accesses SC):

   - push (owner): read word; write the element at [top + size]; then
     FAA(+1) — the increment lands entirely in the size field and
     publishes the element. Concurrent steals change [top] and [size]
     by (+1, -1), so the write index [top + size] is unaffected: the
     owner's slot computation is always valid even when its read of the
     word is stale.
   - pop (owner): CAS loop. With size > 1, CAS (top, size) ->
     (top, size-1) and take index [top + size - 1]. With size = 1 the
     pop races thieves for the last element: CAS (top, 1) -> (top+1, 0)
     — bumping [top] even though nothing was stolen. That bump is the
     ABA armour (below).
   - steal (thief): read word; if size = 0 fail; read the element at
     [top]; CAS (top, size) -> (top+1, size-1). Single CAS, no second
     load, no fence: the one-word CAS subsumes the C11 seq_cst fence of
     the two-atomic protocol.

   Why reading the element BEFORE the CAS is safe (no ABA): [top] is
   strictly monotone — every transition that logically removes the
   element at index T (a steal, or a pop of the last element) moves top
   to T+1. The slot at index T is only ever (re)written by a push with
   [top + size = T], and once the word has been observed at (T, s >= 1)
   the only way size can return to a state where [top + size = T] is
   through (T, 0) — which arises exclusively by *incrementing* top to T.
   Top being monotone, that cannot happen after (T, s >= 1) was real, so
   a successful CAS against an observed (T, s) guarantees the slot value
   read for index T is the live element. (The two-atomic version needs
   the load-order discipline between [top] and [bottom] for the same
   guarantee; here it falls out of the single word.)

   Why pop uses CAS and not FAA(-1): a blind decrement on an empty deque
   would borrow out of the size field into the top bits, corrupting the
   steal index for every concurrent thief.

   Data path notes carried over from the previous implementation:
   elements live directly in an [Obj.t array] (no option boxing); [grow]
   retires buffers without mutating them, so a thief holding a stale
   buffer still reads the correct element for any CAS it can win; the
   owner clears slots it pops, thieves never write.

   The word itself is cache-line padded ([Pad.atomic]): each worker's
   deque word is the single most contended location in the pool, and
   adjacent deques sharing a line is exactly the false sharing par-ml
   flags as the dominant stability factor. *)

type buffer = {
  mask : int;  (* capacity - 1; capacity is a power of two *)
  data : Obj.t array;
}

let slot_empty : Obj.t = Obj.repr ()

let make_buffer log_size =
  { mask = (1 lsl log_size) - 1; data = Array.make (1 lsl log_size) slot_empty }

let buf_get b i = Array.unsafe_get b.data (i land b.mask)
let buf_put b i x = Array.unsafe_set b.data (i land b.mask) x

(* 2^21 - 1 = ~2M parked tasks per worker; top gets the remaining ~42
   bits, which at one steal per nanosecond lasts ~1.2 hours of
   continuous stealing per element — and top only advances per element
   removed, so in practice it is bounded by total tasks executed. *)
let size_bits = 21
let size_mask = (1 lsl size_bits) - 1

type 'a t = {
  tb : int Atomic.t;  (* packed (top, size); padded *)
  buf : buffer Atomic.t;  (* owner-written; thieves only read *)
}

let create () =
  Pad.copy_as_padded
    { tb = Pad.atomic 0; buf = Pad.atomic (make_buffer 8) }

let size t = Atomic.get t.tb land size_mask

(* Owner only, from [push]. The old buffer is retired, never reused or
   overwritten. Concurrent steals during the copy only shrink the live
   window from the front; copying a stale superset is harmless. *)
let grow t ~top ~sz =
  let old = Atomic.get t.buf in
  let cap2 = (old.mask + 1) * 2 in
  if cap2 > size_mask + 1 then failwith "Wsdeque: capacity limit exceeded";
  let nb = { mask = cap2 - 1; data = Array.make cap2 slot_empty } in
  for i = top to top + sz - 1 do
    buf_put nb i (buf_get old i)
  done;
  Atomic.set t.buf nb

let push t x =
  let w = Atomic.get t.tb in
  let top = w lsr size_bits and sz = w land size_mask in
  let buf = Atomic.get t.buf in
  let buf =
    if sz > buf.mask then begin
      grow t ~top ~sz;
      Atomic.get t.buf
    end
    else buf
  in
  buf_put buf (top + sz) (Obj.repr x);
  (* FAA in the size field: publishes the element (SC). *)
  ignore (Atomic.fetch_and_add t.tb 1)

let rec pop : 'a. 'a t -> 'a option =
 fun t ->
  let w = Atomic.get t.tb in
  let sz = w land size_mask in
  if sz = 0 then None
  else begin
    let top = w lsr size_bits in
    let buf = Atomic.get t.buf in
    let i = top + sz - 1 in
    let v = buf_get buf i in
    let w' =
      if sz = 1 then (top + 1) lsl size_bits (* last: bump top (ABA) *)
      else (top lsl size_bits) lor (sz - 1)
    in
    if Atomic.compare_and_set t.tb w w' then begin
      buf_put buf i slot_empty;
      Some (Obj.obj v)
    end
    else (* thieves moved top under us: recompute the index *)
      pop t
  end

let steal (type a) (t : a t) : a option =
  let w = Atomic.get t.tb in
  let sz = w land size_mask in
  if sz = 0 then None
  else begin
    let top = w lsr size_bits in
    (* Element read before the CAS; sound per the ABA argument above. *)
    let v = buf_get (Atomic.get t.buf) top in
    if
      Atomic.compare_and_set t.tb w
        (((top + 1) lsl size_bits) lor (sz - 1))
    then Some (Obj.obj v : a)
    else None
  end
