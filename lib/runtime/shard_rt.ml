(* K independent batcher instances over one pool — the runtime half of
   keyspace sharding. Each shard is a full [Batcher_rt] with its own
   pending array, overflow queue and batch flag, registered under
   structure id [sid_base + shard], so the recorder's batch tracks, the
   health instance's phase histograms and the online invariant checkers
   all separate per shard with no further wiring. Routing (which shard
   owns a key, how fan-out results merge) is the caller's business —
   [Batched.Shard] computes plans; this module only executes
   submissions. *)

type ('s, 'op) t = {
  pool : Pool.t;
  batchers : ('s, 'op) Batcher_rt.t array;
}

let create ?batch_cap ?mode ?(sid_base = 0) ?invariants ?reqtrace ?inject
    ~pool ~shards ~state ~run_batch () =
  if shards < 1 then invalid_arg "Shard_rt.create: shards >= 1";
  {
    pool;
    batchers =
      Array.init shards (fun i ->
          Batcher_rt.create ?batch_cap ?mode ~sid:(sid_base + i) ?invariants
            ?reqtrace ?inject ~pool ~state:(state i) ~run_batch ());
  }

let shards t = Array.length t.batchers
let pool t = t.pool
let batcher t i = t.batchers.(i)
let state t i = Batcher_rt.state t.batchers.(i)

let batchify ?token t ~shard op =
  Batcher_rt.batchify ?token t.batchers.(shard) op

let scatter ?(token = -1) ?(token_shard = 0) t subs =
  let k = Array.length subs in
  if k <> Array.length t.batchers then
    invalid_arg "Shard_rt.scatter: need exactly one sub-operation per shard";
  (* Fork-join: every sub-operation parks on its own shard concurrently,
     so a cross-shard query pays one batch latency, not K. Returns when
     all K sub-batches have completed — the caller may then merge.

     Request tracing records one consistent chain per request, so only
     the [token_shard] sub-operation carries the token; the other
     shards' waits and the fork-join barrier land in the traced
     request's sched_post residual. *)
  Pool.parallel_for t.pool ~grain:1 ~lo:0 ~hi:k (fun i ->
      Batcher_rt.batchify
        ~token:(if i = token_shard then token else -1)
        t.batchers.(i) subs.(i))

let stats t = Array.map Batcher_rt.stats t.batchers

let total_stats t =
  Array.fold_left
    (fun (acc : Batcher_rt.stats) (s : Batcher_rt.stats) ->
      {
        Batcher_rt.batches = acc.Batcher_rt.batches + s.Batcher_rt.batches;
        ops = acc.Batcher_rt.ops + s.Batcher_rt.ops;
        max_batch = max acc.Batcher_rt.max_batch s.Batcher_rt.max_batch;
        ovf = acc.Batcher_rt.ovf + s.Batcher_rt.ovf;
      })
    { Batcher_rt.batches = 0; ops = 0; max_batch = 0; ovf = 0 }
    (stats t)
