(* A parked operation record: the op, its task's continuation, and the
   observability stamps — issue/completion on the recorder clock and the
   structure's launch counter at issue/completion, whose difference is
   the op's "batches launched while pending" count (the empirical
   Lemma-2 figure; reported, not asserted, because this helper-lock
   runtime does not satisfy the proof's dual-deque preconditions). *)
type 'op record = {
  op : 'op;
  mutable resume : unit -> unit;
  token : int;  (* request-trace token ([Obs.Reqtrace]); -1 = untraced *)
  issue_time : int;
  issue_launches : int;
  mutable done_time : int;
  mutable done_launches : int;
  mutable ovf_since : int;  (* first overflow-enqueue stamp; 0 = never *)
}

(* The sweepable batch-path axis (DESIGN.md §13). All four modes share
   Invariant 1 (the batch flag), the FIFO overflow machinery, and
   LAUNCHBATCH bookkeeping; they differ in how an op is *published* and
   in who *executes* the launched batch:

   [Faa_array]   publish: FAA ticket into a [batch_cap] slot array.
                 execute: the whole batch is handed to the pool
                 ([Pool.async]). PR 4's scheme; the default.
   [Worker_id]   publish: the paper-verbatim worker-id-indexed pending
                 array — slot index = the submitting worker's id, no
                 FAA at all. execute: as Faa_array.
   [Par_combine] publish: as Worker_id. execute: parallel combining
                 (Aksenov-Kuznetsov) — the flag-winning submitter is
                 itself a blocked client and runs the batch inline,
                 then recruits further blocked clients by publishing
                 defunctionalized sub-range work items that stamp and
                 resume slices of the batch in parallel.
   [Atomic_list] the seed's CAS-consed list; kept as the ablation
                 floor.

   Worker_id / Par_combine publication protocol: the slot index is the
   *current* worker's id, read inside the suspension callback at each
   publication.

     Suspended-task-migration invariant: a task that suspended in
     [batchify] and was resumed on a different worker re-reads its
     worker index at its next publication, so every record is reachable
     from the slot of the worker that *published* it (or from the
     overflow queues); a record never moves between slots after
     publication, and slot index < num_workers always holds (asserted
     in [submit_worker]). Migration therefore cannot lose a record —
     at worst two tasks that started on one worker publish from two
     different slots, which only changes which slot the launcher finds
     them in.

   A worker with a record already parked in its slot (several suspended
   tasks of one worker mid-drain) does not displace it: publication is
   a CAS [None -> Some r], and on failure the *newer* record goes to
   the overflow queue directly. That keeps per-worker issue order equal
   to admission order (slots drain before the overflow back stack), so
   the FIFO fairness property of the overflow path holds per worker.
   Contrast Faa_array, where displacement pushes the *older* straggler
   of a previous drain epoch to overflow — there the slot owner is a
   ticket, not a worker, and the older record is the one out of epoch.

   Parallel combining details: recruitment is allocation-free — the
   sub-range items ([sub] below) and the task closures that run them
   are preallocated per batcher (the par-ml defunctionalized-work-item
   trick: publishing a work item means writing two int fields of a
   preallocated record and pushing a preallocated closure, not
   allocating a fresh closure). The join is a preallocated padded
   [remaining] counter; the last finisher (often a recruited helper,
   not the launcher) runs the epilogue: batch-end bookkeeping, flag
   release, and — instead of an unbounded inline relaunch recursion —
   pushing the preallocated [relaunch_task] trampoline when work is
   still pending. The launcher never blocks waiting for helpers, so an
   unstolen item is simply popped later by its own worker: no joint
   spin, no deadlock at P = 1. *)
type mode = Faa_array | Worker_id | Par_combine | Atomic_list

(* [Faa_array] keeps the name "pending_array" externally: M1 baseline
   rows in BENCH_results.json predate the mode axis and bench_diff
   matches rows by field values. *)
let mode_name = function
  | Faa_array -> "pending_array"
  | Worker_id -> "worker_id"
  | Par_combine -> "par_combine"
  | Atomic_list -> "atomic_list"

let mode_of_string = function
  | "pending_array" | "faa_array" | "faa" -> Some Faa_array
  | "worker_id" -> Some Worker_id
  | "par_combine" -> Some Par_combine
  | "atomic_list" -> Some Atomic_list
  | _ -> None

(* Two-bit tag carried in Batch_start events ([Obs.Recorder]); 0 is
   shared with the simulator's batches. *)
let mode_code = function
  | Faa_array -> 0
  | Worker_id -> 1
  | Par_combine -> 2
  | Atomic_list -> 3

let all_modes = [ Faa_array; Worker_id; Par_combine; Atomic_list ]

(* Calibrated delay injection for causal profiling (DESIGN.md §15).
   A virtual speedup of phase X by factor f is produced by slowing
   every *other* phase by f and renormalizing (the Coz construction);
   these are therefore slow-down factors, each >= 1. Injection is
   self-calibrating: at each site the segment's own duration dt is
   measured on the monotonic clock and the site then busy-waits
   (f - 1)·dt, so no per-machine pre-calibration pass is needed and
   the delay automatically tracks batch size, store, and mode.

   Sites: [slow_submit] stretches the publication path inside
   [batchify]'s suspension callback (record reachable -> launch
   attempt); [slow_setup] stretches LAUNCHBATCH overhead — working-set
   assembly before the launch stamp and the stamp/resume epilogue
   before the flag release (the paper's setup + cleanup stages);
   [slow_bop] stretches the BOP body itself, inside the exec phase.
   All stamps the Reqtrace/health layers take are real clock readings
   around the injected spins, so span conservation
   ([Obs.Reqtrace.check]) holds on injected runs by construction. *)
type inject = {
  slow_submit : float;
  slow_setup : float;
  slow_bop : float;
}

let no_inject = { slow_submit = 1.0; slow_setup = 1.0; slow_bop = 1.0 }

let spin_until_ns deadline =
  while Obs.Clock.now_ns () < deadline do
    Domain.cpu_relax ()
  done

(* Busy-wait (factor - 1) times the elapsed ns since [t0]. *)
let[@inline never] inject_tail factor t0 =
  if factor > 1.0 then begin
    let now = Obs.Clock.now_ns () in
    let extra = int_of_float ((factor -. 1.0) *. float_of_int (now - t0)) in
    if extra > 0 then spin_until_ns (now + extra)
  end

(* Submission state (DESIGN.md §8 for the FAA array, §13 for the rest).

   The array modes share a slot array — [batch_cap] slots claimed by
   FAA ticket for [Faa_array], [num_workers] slots indexed by worker id
   for [Worker_id]/[Par_combine] — plus a FIFO overflow queue for ops
   that miss a slot ([ovf_back] is a CAS-consed LIFO stack; the
   launcher reverses it onto the launcher-private [ovf_front] queue, so
   admission across batches is oldest-first). [n_pending] counts
   published-but-uncollected records and is the launch guard.

   Faa_array publication: claim index [i] by FAA; if [i < batch_cap],
   [Atomic.exchange slots.(i) (Some r)] — if the exchange displaces an
   older record (a straggler from a previous drain epoch that published
   after the launcher reset [claims]), the *displacing* submitter moves
   it to the overflow queue, so no record is ever lost; if
   [i >= batch_cap], go to overflow directly. Only after the record is
   reachable (slot or overflow) is [n_pending] incremented, and every
   submitter calls [try_launch] after its increment, so there are no
   lost wakeups and the launcher never has to spin on a slot: it pops
   up to [batch_cap] records from the front queue and, only when the
   batch still has room, drains the slots and the reversed back stack
   (leftovers append to the front queue) — Θ(slots) work per launch,
   the paper's LAUNCHBATCH setup bound, independent of the backlog.

   [Atomic_list] is the seed's implementation — a single CAS-retry
   ['op record list Atomic.t] cons stack (allocating, contended, and
   LIFO: under sustained over-cap load its newest-first admission
   starved parked ops to 41 batches-while-pending where FIFO gives
   ≈ 2). Kept verbatim behind the flag for before/after benchmarking
   (bench/micro.ml).

   Padding: [flag], [claims], [n_pending], [ovf_back], [pending] and
   the counters are written by every submitting worker; each lives in
   its own padded block ([Pad.atomic]), and the slot array's atomics
   are padded individually so two workers publishing to adjacent slots
   do not share a line — par-ml flags exactly this false sharing as the
   dominant stability factor. *)
type ('s, 'op) t = {
  pool : Pool.t;
  st : 's;
  run_batch : Pool.t -> 's -> 'op array -> unit;
  batch_cap : int;
  mode : mode;
  sid : int;
  rc : Obs.Recorder.t;
  hl : Obs.Health.t;  (* the pool's health instance (null when off) *)
  inv : Obs.Invariants.t;  (* online invariant checkers (null when off) *)
  rt : Obs.Reqtrace.t;  (* request-scoped span capture (null when off) *)
  inj : inject;  (* causal-profiling delay factors ([no_inject] = off) *)
  (* One predictable branch on the hot paths: false compiles the
     injection sites down to the pre-causal zero-cost path. *)
  injecting : bool;
  (* Whether op/batch records carry time stamps: true when any of the
     recorder, health, or invariant layers consume them. Stamps use the
     recorder's relative clock when it is enabled, raw monotonic ns
     otherwise — consumers only take differences, so either basis
     works, but all stamps of one structure share one basis. *)
  timed : bool;
  (* -- slot-array state (Faa_array / Worker_id / Par_combine) -- *)
  slots : 'op record option Atomic.t array;
  claims : int Atomic.t;  (* FAA ticket; Faa_array only *)
  ovf_front : 'op record Queue.t;  (* oldest first; flag-holder-only *)
  ovf_back : 'op record list Atomic.t;  (* newest first; CAS-consed *)
  ovf_n : int Atomic.t;  (* records ever pushed to overflow *)
  n_pending : int Atomic.t;  (* published and not yet collected *)
  mutable batch_buf : 'op record array;  (* reused by every launch *)
  (* -- Par_combine state (lazily built; flag-holder-only) -- *)
  mutable comb : 'op comb option;
  (* -- Atomic_list (legacy) state -- *)
  pending : 'op record list Atomic.t;
  (* -- shared -- *)
  flag : bool Atomic.t;
  launches : int Atomic.t;
  n_batches : int Atomic.t;
  n_ops : int Atomic.t;
  max_batch : int Atomic.t;
}

(* Parallel-combining scratch state: everything a launch needs beyond
   [batch_buf], preallocated so recruitment allocates nothing. The
   launcher (flag holder) writes the mutable fields before publishing
   the sub tasks through the deque (an SC atomic), which orders the
   writes for the helpers that pop them. *)
and 'op comb = {
  subs : sub array;  (* one per worker; [lo, hi) into batch_buf *)
  mutable sub_tasks : (unit -> unit) array;  (* sub_tasks.(i) runs subs.(i) *)
  remaining : int Atomic.t;  (* padded join counter *)
  launch_task : unit -> unit;  (* runs [run_combined t] inline *)
  relaunch_task : unit -> unit;  (* trampoline: [try_launch t] *)
  mutable c_len : int;  (* this launch's batch size *)
  mutable c_start : int;  (* launch stamp *)
  mutable c_done : int;  (* completion stamp *)
  mutable c_launches : int;  (* launch counter at completion *)
}

and sub = { mutable lo : int; mutable hi : int }

(* Below this many records per helper, recruiting is not worth the
   deque traffic and the launcher resumes the whole batch itself. *)
let combine_grain = 8

type stats = {
  batches : int;
  ops : int;
  max_batch : int;
  ovf : int;
}

let create ?batch_cap ?(mode = Faa_array) ?(sid = 0) ?invariants
    ?(reqtrace = Obs.Reqtrace.null) ?(inject = no_inject) ~pool ~state
    ~run_batch () =
  let cap =
    match batch_cap with
    | Some c ->
        if c < 1 then invalid_arg "Batcher_rt.create: batch_cap >= 1";
        c
    | None -> Pool.num_workers pool
  in
  List.iter
    (fun (name, f) ->
      if Float.is_nan f || f < 1.0 then
        invalid_arg
          (Printf.sprintf "Batcher_rt.create: inject %s must be >= 1, got %g"
             name f))
    [
      ("slow_submit", inject.slow_submit);
      ("slow_setup", inject.slow_setup);
      ("slow_bop", inject.slow_bop);
    ];
  let rc = Pool.recorder pool in
  let hl = Pool.health pool in
  let inv =
    match invariants with
    | Some i -> i
    | None -> Obs.Health.invariants hl
  in
  let n_slots =
    match mode with
    | Faa_array -> cap
    | Worker_id | Par_combine -> Pool.num_workers pool
    | Atomic_list -> 0
  in
  {
    pool;
    st = state;
    run_batch;
    batch_cap = cap;
    mode;
    sid;
    rc;
    hl;
    inv;
    rt = reqtrace;
    inj = inject;
    injecting = inject <> no_inject;
    timed =
      Obs.Recorder.enabled rc || Obs.Health.enabled hl
      || Obs.Invariants.active inv
      || Obs.Reqtrace.enabled reqtrace;
    slots = Array.init n_slots (fun _ -> Pad.atomic None);
    claims = Pad.atomic 0;
    ovf_front = Queue.create ();
    ovf_back = Pad.atomic [];
    ovf_n = Pad.atomic 0;
    n_pending = Pad.atomic 0;
    batch_buf = [||];
    comb = None;
    pending = Pad.atomic [];
    flag = Pad.atomic false;
    launches = Pad.atomic 0;
    n_batches = Pad.atomic 0;
    n_ops = Pad.atomic 0;
    max_batch = Pad.atomic 0;
  }

let state t = t.st

let mode t = t.mode

let stats t =
  {
    batches = Atomic.get t.n_batches;
    ops = Atomic.get t.n_ops;
    max_batch = Atomic.get t.max_batch;
    ovf = Atomic.get t.ovf_n;
  }

let rec atomic_max a v =
  let old = Atomic.get a in
  if v > old && not (Atomic.compare_and_set a old v) then atomic_max a v

(* Clock for op/batch stamps, on the recorder's basis when there is
   one (so violation events line up with the trace), raw monotonic ns
   otherwise. Allocation-free either way. *)
let[@inline] stamp t =
  if Obs.Recorder.enabled t.rc then Obs.Recorder.now t.rc
  else Obs.Clock.now_ns ()

(* LAUNCHBATCH bookkeeping shared by the pool-executed paths (all modes
   but Par_combine): count the launch, run the BOP with batch spans
   recorded, stamp the records, resume their tasks, then release the
   flag and run [relaunch] to pick up operations that accrued
   meanwhile. [get] indexes the [len] batch records (an array for the
   slot-array paths, a list for legacy). *)
let run_launched t ~len ~get ~relaunch () =
  let observed = Obs.Recorder.enabled t.rc in
  (* Attribute this task's time to the bound's terms: working-set
     assembly and record resumption are LAUNCHBATCH overhead (n·s(n)),
     the BOP body itself is batch work (W(n)). *)
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wsetup;
  let t0_setup = if t.injecting then Obs.Clock.now_ns () else 0 in
  let arr = Array.init len (fun i -> (get i).op) in
  if t.injecting then inject_tail t.inj.slow_setup t0_setup;
  Atomic.incr t.launches;
  let me = match Pool.worker_index () with Some w -> w | None -> 0 in
  let t_start = if t.timed then stamp t else 0 in
  if observed then
    Obs.Recorder.emit_batch_start t.rc ~worker:me ~time:t_start ~sid:t.sid
      ~size:len ~setup:0 ~mode:(mode_code t.mode);
  Obs.Invariants.batch_started t.inv ~worker:me ~time:t_start ~sid:t.sid
    ~size:len ~cap:t.batch_cap;
  Obs.Health.batch_collected t.hl ~sid:t.sid ~size:len;
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wbatch;
  let t0_bop = if t.injecting then Obs.Clock.now_ns () else 0 in
  t.run_batch t.pool t.st arr;
  if t.injecting then inject_tail t.inj.slow_bop t0_bop;
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wsetup;
  let t0_cleanup = if t.injecting then Obs.Clock.now_ns () else 0 in
  let done_time = if t.timed then stamp t else 0 in
  if t.timed then begin
    let done_launches = Atomic.get t.launches in
    let health_on = Obs.Health.enabled t.hl in
    for i = 0 to len - 1 do
      let r = get i in
      r.done_time <- done_time;
      r.done_launches <- done_launches;
      (* Phase decomposition for the SLOs: pending-wait (issue to this
         batch's launch), batch-exec, and overflow-queue time for ops
         that missed a pending-array slot. *)
      if health_on then
        Obs.Health.op_phases t.hl ~worker:me ~sid:t.sid
          ~wait:(t_start - r.issue_time) ~exec:(done_time - t_start)
          ~ovf:(if r.ovf_since > 0 then t_start - r.ovf_since else 0);
      (* Request-trace anatomy: the same deltas, keyed by the op's
         request token (no-op for the untraced sentinel -1). *)
      Obs.Reqtrace.on_batch t.rt ~token:r.token
        ~wait:(t_start - r.issue_time) ~exec:(done_time - t_start)
        ~ovf:(if r.ovf_since > 0 then t_start - r.ovf_since else 0)
        ~seen:(done_launches - r.issue_launches)
        ~worker:me ~mode:(mode_code t.mode)
    done;
    if observed then
      Obs.Recorder.emit_batch_end t.rc ~worker:me ~time:done_time ~sid:t.sid
        ~size:len
  end;
  Obs.Invariants.batch_ended t.inv ~worker:me ~time:done_time ~sid:t.sid;
  Atomic.incr t.n_batches;
  ignore (Atomic.fetch_and_add t.n_ops len);
  atomic_max t.max_batch len;
  for i = 0 to len - 1 do
    (get i).resume ()
  done;
  (* Cleanup half of the setup injection: stretching the stamp/resume
     epilogue extends flag occupancy, which is exactly what a slower
     LAUNCHBATCH cleanup stage would cost the next batch. *)
  if t.injecting then inject_tail t.inj.slow_setup t0_cleanup;
  Atomic.set t.flag false;
  relaunch t

(* ---- slot-array submission paths ---- *)

let rec overflow_push t r =
  if t.timed && r.ovf_since = 0 then r.ovf_since <- stamp t;
  let old = Atomic.get t.ovf_back in
  if not (Atomic.compare_and_set t.ovf_back old (r :: old)) then
    overflow_push t r
  else Atomic.incr t.ovf_n

(* One FAA, one exchange, one increment — no retry loop unless the op
   overflows the array. Order matters: the record must be reachable
   (slot or overflow) before [n_pending] goes up, because the launcher
   treats [n_pending > 0] as "a drain of the queues will find work". *)
let submit_array t r =
  let i = Atomic.fetch_and_add t.claims 1 in
  (if i < t.batch_cap then begin
     Obs.Reqtrace.on_publish t.rt ~token:r.token;
     match Atomic.exchange t.slots.(i) (Some r) with
     | None -> ()
     | Some stale ->
         (* A previous epoch's claimant published after the launcher
            reset [claims]; keep its (older) record pending. *)
         Obs.Reqtrace.on_overflow t.rt ~token:stale.token ~displaced:true;
         overflow_push t stale
   end
   else begin
     Obs.Reqtrace.on_overflow t.rt ~token:r.token ~displaced:false;
     overflow_push t r
   end);
  Atomic.incr t.n_pending

(* Worker_id / Par_combine publication: no ticket — the slot is the
   submitting worker's own. Re-reading the worker index here (inside
   the suspension callback) is the suspended-task-migration story: see
   the [mode] comment. A CAS that finds the slot occupied (another
   suspended task of this worker already published) sends the newer
   record straight to overflow, preserving per-worker FIFO order. *)
let submit_worker t r =
  let w = match Pool.worker_index () with Some w -> w | None -> 0 in
  assert (w < Array.length t.slots);
  if Atomic.compare_and_set t.slots.(w) None (Some r) then
    Obs.Reqtrace.on_publish t.rt ~token:r.token
  else begin
    Obs.Reqtrace.on_overflow t.rt ~token:r.token ~displaced:false;
    overflow_push t r
  end;
  Atomic.incr t.n_pending

(* Flag-holder-only batch assembly, shared by all slot-array modes.
   Admission order: overflow front (oldest), then the slot array, then
   the reversed back stack — FIFO across batches. The front queue
   supplies at most [batch_cap] records; only a batch with room left
   drains the slots and the back stack (whose leftovers land back on
   the — then empty — front queue in admission order), so a launch is
   Θ(slots) no matter how deep the overload backlog is. *)
let collect t =
  let len = ref 0 in
  let add r =
    if !len < t.batch_cap then begin
      if Array.length t.batch_buf = 0 then
        t.batch_buf <- Array.make t.batch_cap r;
      t.batch_buf.(!len) <- r;
      incr len
    end
    else Queue.push r t.ovf_front
  in
  while !len < t.batch_cap && not (Queue.is_empty t.ovf_front) do
    add (Queue.pop t.ovf_front)
  done;
  if !len < t.batch_cap then begin
    (* Drain epoch. For Faa_array, reset the ticket counter so
       concurrent submitters start filling slots for the *next* batch
       while we collect this one; Worker_id slots need no epoch — the
       CAS publication refills a drained slot directly. While the
       batch fills from the front queue alone, submitters keep
       overflowing to the back stack — everything serializes through
       the FIFO. *)
    if t.mode = Faa_array then ignore (Atomic.exchange t.claims 0);
    for i = 0 to Array.length t.slots - 1 do
      match Atomic.exchange t.slots.(i) None with
      | None -> ()
      | Some r -> add r
    done;
    List.iter add (List.rev (Atomic.exchange t.ovf_back []))
  end;
  !len

let rec try_launch_array t =
  if Atomic.get t.n_pending > 0 && Atomic.compare_and_set t.flag false true
  then begin
    let len = collect t in
    if len = 0 then begin
      (* [n_pending > 0] raced a record that is transiently in a
         displacing submitter's hands; back off and retry. *)
      Atomic.set t.flag false;
      if Atomic.get t.n_pending > 0 then begin
        Domain.cpu_relax ();
        try_launch_array t
      end
    end
    else begin
      ignore (Atomic.fetch_and_add t.n_pending (-len));
      (* The batch buffer is safely reused: the flag stays held until
         the launched task finishes reading it, and the next launcher
         can only assemble after winning the flag. *)
      let buf = t.batch_buf in
      Pool.async t.pool
        (run_launched t ~len
           ~get:(fun i -> buf.(i))
           ~relaunch:try_launch_array)
      |> ignore
    end
  end

(* ---- Atomic_list (legacy) submission path, as in the seed ---- *)

let rec atomic_push t record =
  let old = Atomic.get t.pending in
  if not (Atomic.compare_and_set t.pending old (record :: old)) then
    atomic_push t record

let rec atomic_take_all t =
  let old = Atomic.get t.pending in
  if old = [] then []
  else if Atomic.compare_and_set t.pending old [] then old
  else atomic_take_all t

let rec atomic_put_back t records =
  match records with
  | [] -> ()
  | _ ->
      let old = Atomic.get t.pending in
      if not (Atomic.compare_and_set t.pending old (records @ old)) then
        atomic_put_back t records

let rec try_launch_list t =
  if Atomic.get t.pending <> [] && Atomic.compare_and_set t.flag false true
  then begin
    let all = atomic_take_all t in
    if all = [] then begin
      (* Lost a race with a concurrent launch drain; retry. *)
      Atomic.set t.flag false;
      try_launch_list t
    end
    else begin
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | r :: rest -> split (k - 1) (r :: acc) rest
      in
      let batch, overflow = split t.batch_cap [] all in
      atomic_put_back t overflow;
      let batch = Array.of_list batch in
      Pool.async t.pool
        (run_launched t ~len:(Array.length batch)
           ~get:(fun i -> batch.(i))
           ~relaunch:try_launch_list)
      |> ignore
    end
  end

(* ---- Par_combine launch path ----

   The flag winner is by construction a blocked submitter (it sits in
   [batchify]'s suspension callback); parallel combining has it run the
   batch right there instead of paying an async promise + a deque hop,
   then fan the stamp/resume epilogue out to recruited helpers. The
   whole cluster is mutually recursive only through the preallocated
   [relaunch_task] trampoline. *)

let rec get_comb t =
  match t.comb with
  | Some c -> c
  | None ->
      (* Flag-holder-only, so this lazy init cannot race. *)
      let p = Pool.num_workers t.pool in
      let c =
        {
          subs = Array.init p (fun _ -> { lo = 0; hi = 0 });
          sub_tasks = [||];
          remaining = Pad.atomic 0;
          launch_task = (fun () -> run_combined t);
          relaunch_task = (fun () -> try_launch t);
          c_len = 0;
          c_start = 0;
          c_done = 0;
          c_launches = 0;
        }
      in
      c.sub_tasks <- Array.init p (fun i () -> run_sub t c i);
      t.comb <- Some c;
      c

(* Stamp and resume batch_buf[lo, hi), then join. Runs on the launcher
   (range 0) and on any worker that popped or stole a recruited item.
   Performs no effects, so it is safe both as a plain call from
   [run_combined] and as a pool task. *)
and run_sub t c i =
  let s = c.subs.(i) in
  if Obs.Recorder.enabled t.rc then
    Pool.set_work_class t.pool Obs.Recorder.Wsetup;
  let buf = t.batch_buf in
  if t.timed then begin
    let me = match Pool.worker_index () with Some w -> w | None -> 0 in
    let health_on = Obs.Health.enabled t.hl in
    for j = s.lo to s.hi - 1 do
      let r = buf.(j) in
      r.done_time <- c.c_done;
      r.done_launches <- c.c_launches;
      if health_on then
        Obs.Health.op_phases t.hl ~worker:me ~sid:t.sid
          ~wait:(c.c_start - r.issue_time) ~exec:(c.c_done - c.c_start)
          ~ovf:(if r.ovf_since > 0 then c.c_start - r.ovf_since else 0);
      Obs.Reqtrace.on_batch t.rt ~token:r.token
        ~wait:(c.c_start - r.issue_time) ~exec:(c.c_done - c.c_start)
        ~ovf:(if r.ovf_since > 0 then c.c_start - r.ovf_since else 0)
        ~seen:(c.c_launches - r.issue_launches)
        ~worker:me ~mode:(mode_code t.mode)
    done
  end;
  for j = s.lo to s.hi - 1 do
    buf.(j).resume ()
  done;
  if Atomic.fetch_and_add c.remaining (-1) = 1 then combine_epilogue t c

(* Last finisher: close the batch, release the flag, trampoline the
   relaunch. Pushing [relaunch_task] instead of calling [try_launch]
   caps the stack at one batch deep no matter how long the backlog
   chain is (an inline relaunch would recurse through every batch whose
   epilogue lands on the launcher). *)
and combine_epilogue t c =
  let me = match Pool.worker_index () with Some w -> w | None -> 0 in
  if Obs.Recorder.enabled t.rc then
    Obs.Recorder.emit_batch_end t.rc ~worker:me ~time:c.c_done ~sid:t.sid
      ~size:c.c_len;
  Obs.Invariants.batch_ended t.inv ~worker:me ~time:c.c_done ~sid:t.sid;
  Atomic.incr t.n_batches;
  ignore (Atomic.fetch_and_add t.n_ops c.c_len);
  atomic_max t.max_batch c.c_len;
  Atomic.set t.flag false;
  if Atomic.get t.n_pending > 0 then Pool.push_task t.pool c.relaunch_task

and run_combined t =
  let c = get_comb t in
  let len = c.c_len in
  let observed = Obs.Recorder.enabled t.rc in
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wsetup;
  let buf = t.batch_buf in
  let t0_setup = if t.injecting then Obs.Clock.now_ns () else 0 in
  let arr = Array.init len (fun i -> buf.(i).op) in
  if t.injecting then inject_tail t.inj.slow_setup t0_setup;
  Atomic.incr t.launches;
  let me = match Pool.worker_index () with Some w -> w | None -> 0 in
  let t_start = if t.timed then stamp t else 0 in
  if observed then
    Obs.Recorder.emit_batch_start t.rc ~worker:me ~time:t_start ~sid:t.sid
      ~size:len ~setup:0 ~mode:(mode_code t.mode);
  Obs.Invariants.batch_started t.inv ~worker:me ~time:t_start ~sid:t.sid
    ~size:len ~cap:t.batch_cap;
  Obs.Health.batch_collected t.hl ~sid:t.sid ~size:len;
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wbatch;
  (* Inline BOP execution in the submitter's context. If the BOP
     suspends (e.g. an inner parallel_for), [Pool.exec_inline]'s
     handler parks the rest of this function as a continuation and the
     submitter's callback returns — the flag stays held until the
     continuation finishes, exactly as with an async batch task. *)
  let t0_bop = if t.injecting then Obs.Clock.now_ns () else 0 in
  t.run_batch t.pool t.st arr;
  (* Par_combine injects assembly + BOP; the epilogue is fanned out
     across recruited helpers, so its cleanup half is not stretched
     here (run_sub stays injection-free). *)
  if t.injecting then inject_tail t.inj.slow_bop t0_bop;
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wsetup;
  c.c_start <- t_start;
  c.c_done <- (if t.timed then stamp t else 0);
  c.c_launches <- Atomic.get t.launches;
  (* Recruit: carve [0, len) into up to one sub-range per worker and
     publish all but the first as preallocated tasks; blocked
     submitters' workers pick them up (or this worker pops them after
     its own range). All [sub]/[c_*] writes precede the deque pushes,
     which publish them. *)
  let p = Array.length c.subs in
  let nsub =
    if p = 1 || len <= combine_grain then 1
    else min p ((len + combine_grain - 1) / combine_grain)
  in
  Atomic.set c.remaining nsub;
  let chunk = (len + nsub - 1) / nsub in
  for i = nsub - 1 downto 1 do
    let s = c.subs.(i) in
    s.lo <- i * chunk;
    s.hi <- min len (s.lo + chunk);
    Pool.push_task t.pool c.sub_tasks.(i)
  done;
  c.subs.(0).lo <- 0;
  c.subs.(0).hi <- min len chunk;
  run_sub t c 0

and try_launch_combine t =
  if Atomic.get t.n_pending > 0 && Atomic.compare_and_set t.flag false true
  then begin
    let len = collect t in
    if len = 0 then begin
      Atomic.set t.flag false;
      if Atomic.get t.n_pending > 0 then begin
        Domain.cpu_relax ();
        try_launch_combine t
      end
    end
    else begin
      ignore (Atomic.fetch_and_add t.n_pending (-len));
      c_launch t len
    end
  end

and c_launch t len =
  let c = get_comb t in
  c.c_len <- len;
  Pool.exec_inline t.pool c.launch_task

and try_launch t =
  match t.mode with
  | Faa_array | Worker_id -> try_launch_array t
  | Par_combine -> try_launch_combine t
  | Atomic_list -> try_launch_list t

let batchify ?(token = -1) t op =
  let observed = Obs.Recorder.enabled t.rc in
  (* Milestone order matters for the residual decomposition: the raw
     submit stamp is taken before [issue_time], so the batcher's
     wait+exec delta always fits inside the submit→completion raw
     interval and the request's sched_post residual is nonnegative. *)
  Obs.Reqtrace.on_submit t.rt ~token ~sid:t.sid;
  let r =
    {
      op;
      resume = ignore;
      token;
      issue_time = (if t.timed then stamp t else 0);
      issue_launches = Atomic.get t.launches;
      done_time = 0;
      done_launches = 0;
      ovf_since = 0;
    }
  in
  (if observed then
     match Pool.worker_index () with
     | Some w -> Obs.Recorder.emit_op_issue t.rc ~worker:w ~time:r.issue_time ~sid:t.sid
     | None -> ());
  Obs.Invariants.op_submitted t.inv ~sid:t.sid;
  Obs.Health.op_issued t.hl ~sid:t.sid;
  Pool.suspend t.pool (fun resume ->
      r.resume <- resume;
      let t0_submit = if t.injecting then Obs.Clock.now_ns () else 0 in
      (match t.mode with
      | Faa_array -> submit_array t r
      | Worker_id | Par_combine -> submit_worker t r
      | Atomic_list ->
          atomic_push t r;
          (* the cons stack is the pending set: publication is the push *)
          Obs.Reqtrace.on_publish t.rt ~token:r.token);
      (* Submit-path injection: stretch the publication segment before
         the launch attempt — the record is already reachable, so the
         delay models a slower submission protocol, not a lost op. *)
      if t.injecting then inject_tail t.inj.slow_submit t0_submit;
      try_launch t);
  (* Control is back: the batch containing the op has completed. The
     continuation may run on a different worker than the issuer — emit
     on the current worker's ring to keep the single-writer rule. *)
  if observed then begin
    match Pool.worker_index () with
    | Some w ->
        Obs.Recorder.emit_op_done t.rc ~worker:w ~time:(Obs.Recorder.now t.rc)
          ~sid:t.sid
          ~batches_seen:(r.done_launches - r.issue_launches)
          ~latency:(r.done_time - r.issue_time)
    | None -> ()
  end;
  if Obs.Invariants.active t.inv then begin
    let w = match Pool.worker_index () with Some w -> w | None -> 0 in
    Obs.Invariants.op_completed t.inv ~worker:w ~time:r.done_time ~sid:t.sid
      ~batches_seen:(r.done_launches - r.issue_launches)
  end
