(* A parked operation record: the op, its task's continuation, and the
   observability stamps — issue/completion on the recorder clock and the
   structure's launch counter at issue/completion, whose difference is
   the op's "batches launched while pending" count (the empirical
   Lemma-2 figure; reported, not asserted, because this helper-lock
   runtime does not satisfy the proof's dual-deque preconditions). *)
type 'op record = {
  op : 'op;
  mutable resume : unit -> unit;
  issue_time : int;
  issue_launches : int;
  mutable done_time : int;
  mutable done_launches : int;
}

type ('s, 'op) t = {
  pool : Pool.t;
  st : 's;
  run_batch : Pool.t -> 's -> 'op array -> unit;
  batch_cap : int;
  sid : int;
  rc : Obs.Recorder.t;
  pending : 'op record list Atomic.t;
  flag : bool Atomic.t;
  launches : int Atomic.t;
  n_batches : int Atomic.t;
  n_ops : int Atomic.t;
  max_batch : int Atomic.t;
}

type stats = {
  batches : int;
  ops : int;
  max_batch : int;
}

let create ?batch_cap ?(sid = 0) ~pool ~state ~run_batch () =
  let cap =
    match batch_cap with
    | Some c ->
        if c < 1 then invalid_arg "Batcher_rt.create: batch_cap >= 1";
        c
    | None -> Pool.num_workers pool
  in
  {
    pool;
    st = state;
    run_batch;
    batch_cap = cap;
    sid;
    rc = Pool.recorder pool;
    pending = Atomic.make [];
    flag = Atomic.make false;
    launches = Atomic.make 0;
    n_batches = Atomic.make 0;
    n_ops = Atomic.make 0;
    max_batch = Atomic.make 0;
  }

let state t = t.st

let stats t =
  {
    batches = Atomic.get t.n_batches;
    ops = Atomic.get t.n_ops;
    max_batch = Atomic.get t.max_batch;
  }

let rec atomic_push t record =
  let old = Atomic.get t.pending in
  if not (Atomic.compare_and_set t.pending old (record :: old)) then
    atomic_push t record

let rec atomic_take_all t =
  let old = Atomic.get t.pending in
  if old = [] then []
  else if Atomic.compare_and_set t.pending old [] then old
  else atomic_take_all t

let rec atomic_put_back t records =
  match records with
  | [] -> ()
  | _ ->
      let old = Atomic.get t.pending in
      if not (Atomic.compare_and_set t.pending old (records @ old)) then
        atomic_put_back t records

let rec atomic_max a v =
  let old = Atomic.get a in
  if v > old && not (Atomic.compare_and_set a old v) then atomic_max a v

let rec try_launch t =
  if Atomic.get t.pending <> [] && Atomic.compare_and_set t.flag false true
  then begin
    let all = atomic_take_all t in
    if all = [] then begin
      (* Lost a race with a concurrent launch drain; retry. *)
      Atomic.set t.flag false;
      try_launch t
    end
    else begin
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | r :: rest -> split (k - 1) (r :: acc) rest
      in
      let batch, overflow = split t.batch_cap [] all in
      atomic_put_back t overflow;
      (* LAUNCHBATCH, as a pool task: compact records into the working
         set, run the BOP, mark records done (resume their tasks), clear
         the flag, and relaunch if operations accrued meanwhile. *)
      Pool.async t.pool (fun () ->
          let arr = Array.of_list (List.map (fun r -> r.op) batch) in
          let observed = Obs.Recorder.enabled t.rc in
          Atomic.incr t.launches;
          let me = match Pool.worker_index () with Some w -> w | None -> 0 in
          if observed then
            Obs.Recorder.emit_batch_start t.rc ~worker:me
              ~time:(Obs.Recorder.now t.rc) ~sid:t.sid ~size:(Array.length arr)
              ~setup:0;
          t.run_batch t.pool t.st arr;
          if observed then begin
            let done_time = Obs.Recorder.now t.rc in
            let done_launches = Atomic.get t.launches in
            List.iter
              (fun r ->
                r.done_time <- done_time;
                r.done_launches <- done_launches)
              batch;
            Obs.Recorder.emit_batch_end t.rc ~worker:me ~time:done_time ~sid:t.sid
              ~size:(Array.length arr)
          end;
          Atomic.incr t.n_batches;
          ignore (Atomic.fetch_and_add t.n_ops (Array.length arr));
          atomic_max t.max_batch (Array.length arr);
          List.iter (fun r -> r.resume ()) batch;
          Atomic.set t.flag false;
          try_launch t)
      |> ignore
    end
  end

let batchify t op =
  let observed = Obs.Recorder.enabled t.rc in
  let r =
    {
      op;
      resume = ignore;
      issue_time = (if observed then Obs.Recorder.now t.rc else 0);
      issue_launches = Atomic.get t.launches;
      done_time = 0;
      done_launches = 0;
    }
  in
  (if observed then
     match Pool.worker_index () with
     | Some w -> Obs.Recorder.emit_op_issue t.rc ~worker:w ~time:r.issue_time ~sid:t.sid
     | None -> ());
  Pool.suspend t.pool (fun resume ->
      r.resume <- resume;
      atomic_push t r;
      try_launch t);
  (* Control is back: the batch containing the op has completed. The
     continuation may run on a different worker than the issuer — emit
     on the current worker's ring to keep the single-writer rule. *)
  if observed then
    match Pool.worker_index () with
    | Some w ->
        Obs.Recorder.emit_op_done t.rc ~worker:w ~time:(Obs.Recorder.now t.rc)
          ~sid:t.sid
          ~batches_seen:(r.done_launches - r.issue_launches)
          ~latency:(r.done_time - r.issue_time)
    | None -> ()
