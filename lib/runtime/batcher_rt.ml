(* A parked operation record: the op, its task's continuation, and the
   observability stamps — issue/completion on the recorder clock and the
   structure's launch counter at issue/completion, whose difference is
   the op's "batches launched while pending" count (the empirical
   Lemma-2 figure; reported, not asserted, because this helper-lock
   runtime does not satisfy the proof's dual-deque preconditions). *)
type 'op record = {
  op : 'op;
  mutable resume : unit -> unit;
  issue_time : int;
  issue_launches : int;
  mutable done_time : int;
  mutable done_launches : int;
  mutable ovf_since : int;  (* first overflow-enqueue stamp; 0 = never *)
}

type impl = Pending_array | Atomic_list

(* Submission state for the two implementations (DESIGN.md §8).

   [Pending_array] is the paper's BATCHER scheme: a preallocated array
   of [batch_cap] slots (size P by default) that submitters claim with
   one fetch-and-add on [claims] — O(1) non-retrying work per op on the
   common path — plus a FIFO overflow queue for ops that claim an
   index past the array ([ovf_back] is a CAS-consed LIFO stack; the
   launcher reverses it onto the launcher-private [ovf_front] queue,
   so admission across batches is oldest-first). [n_pending] counts
   published-but-uncollected records and is the launch guard.

   Publication protocol: claim index [i] by FAA; if [i < batch_cap],
   [Atomic.exchange slots.(i) (Some r)] — if the exchange displaces an
   older record (a straggler from a previous drain epoch that published
   after the launcher reset [claims]), the *displacing* submitter moves
   it to the overflow queue, so no record is ever lost; if
   [i >= batch_cap], go to overflow directly. Only after the record is
   reachable (slot or overflow) is [n_pending] incremented, and every
   submitter calls [try_launch] after its increment, so there are no
   lost wakeups and the launcher never has to spin on a slot: it pops
   up to [batch_cap] records from the front queue and, only when the
   batch still has room, drains the slots and the reversed back stack
   (leftovers append to the front queue) — Θ(P) work per launch, the
   paper's LAUNCHBATCH setup bound, {e independent of the backlog}. An
   open-loop burst past capacity parks thousands of records here; a
   launch that touched them all (the front queue was once rebuilt in
   full per launch) turns the drain quadratic in the backlog and a
   transient overload into a collapse.

   [Atomic_list] is the seed's implementation — a single CAS-retry
   ['op record list Atomic.t] cons stack (allocating, contended, and
   LIFO: under sustained over-cap load its newest-first admission
   starved parked ops to 41 batches-while-pending where FIFO gives
   ≈ 2). Kept verbatim behind the flag for before/after benchmarking
   (bench/micro.ml). *)
type ('s, 'op) t = {
  pool : Pool.t;
  st : 's;
  run_batch : Pool.t -> 's -> 'op array -> unit;
  batch_cap : int;
  impl : impl;
  sid : int;
  rc : Obs.Recorder.t;
  hl : Obs.Health.t;  (* the pool's health instance (null when off) *)
  inv : Obs.Invariants.t;  (* online invariant checkers (null when off) *)
  (* Whether op/batch records carry time stamps: true when any of the
     recorder, health, or invariant layers consume them. Stamps use the
     recorder's relative clock when it is enabled, raw monotonic ns
     otherwise — consumers only take differences, so either basis
     works, but all stamps of one structure share one basis. *)
  timed : bool;
  (* -- Pending_array state -- *)
  slots : 'op record option Atomic.t array;  (* size [batch_cap] *)
  claims : int Atomic.t;  (* FAA ticket; reset to 0 by each launcher *)
  ovf_front : 'op record Queue.t;  (* oldest first; flag-holder-only *)
  ovf_back : 'op record list Atomic.t;  (* newest first; CAS-consed *)
  n_pending : int Atomic.t;  (* published and not yet collected *)
  mutable batch_buf : 'op record array;  (* reused by every launch *)
  (* -- Atomic_list (legacy) state -- *)
  pending : 'op record list Atomic.t;
  (* -- shared -- *)
  flag : bool Atomic.t;
  launches : int Atomic.t;
  n_batches : int Atomic.t;
  n_ops : int Atomic.t;
  max_batch : int Atomic.t;
}

type stats = {
  batches : int;
  ops : int;
  max_batch : int;
}

let create ?batch_cap ?(impl = Pending_array) ?(sid = 0) ?invariants ~pool
    ~state ~run_batch () =
  let cap =
    match batch_cap with
    | Some c ->
        if c < 1 then invalid_arg "Batcher_rt.create: batch_cap >= 1";
        c
    | None -> Pool.num_workers pool
  in
  let rc = Pool.recorder pool in
  let hl = Pool.health pool in
  let inv =
    match invariants with
    | Some i -> i
    | None -> Obs.Health.invariants hl
  in
  {
    pool;
    st = state;
    run_batch;
    batch_cap = cap;
    impl;
    sid;
    rc;
    hl;
    inv;
    timed =
      Obs.Recorder.enabled rc || Obs.Health.enabled hl
      || Obs.Invariants.active inv;
    slots = Array.init cap (fun _ -> Atomic.make None);
    claims = Atomic.make 0;
    ovf_front = Queue.create ();
    ovf_back = Atomic.make [];
    n_pending = Atomic.make 0;
    batch_buf = [||];
    pending = Atomic.make [];
    flag = Atomic.make false;
    launches = Atomic.make 0;
    n_batches = Atomic.make 0;
    n_ops = Atomic.make 0;
    max_batch = Atomic.make 0;
  }

let state t = t.st

let stats t =
  {
    batches = Atomic.get t.n_batches;
    ops = Atomic.get t.n_ops;
    max_batch = Atomic.get t.max_batch;
  }

let rec atomic_max a v =
  let old = Atomic.get a in
  if v > old && not (Atomic.compare_and_set a old v) then atomic_max a v

(* Clock for op/batch stamps, on the recorder's basis when there is
   one (so violation events line up with the trace), raw monotonic ns
   otherwise. Allocation-free either way. *)
let[@inline] stamp t =
  if Obs.Recorder.enabled t.rc then Obs.Recorder.now t.rc
  else Obs.Clock.now_ns ()

(* LAUNCHBATCH bookkeeping shared by both submission paths: count the
   launch, run the BOP with batch spans recorded, stamp the records,
   resume their tasks, then release the flag and run [relaunch] to pick
   up operations that accrued meanwhile. [get] indexes the [len] batch
   records (an array for the pending-array path, a list for legacy). *)
let run_launched t ~len ~get ~relaunch () =
  let observed = Obs.Recorder.enabled t.rc in
  (* Attribute this task's time to the bound's terms: working-set
     assembly and record resumption are LAUNCHBATCH overhead (n·s(n)),
     the BOP body itself is batch work (W(n)). *)
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wsetup;
  let arr = Array.init len (fun i -> (get i).op) in
  Atomic.incr t.launches;
  let me = match Pool.worker_index () with Some w -> w | None -> 0 in
  let t_start = if t.timed then stamp t else 0 in
  if observed then
    Obs.Recorder.emit_batch_start t.rc ~worker:me ~time:t_start ~sid:t.sid
      ~size:len ~setup:0;
  Obs.Invariants.batch_started t.inv ~worker:me ~time:t_start ~sid:t.sid
    ~size:len ~cap:t.batch_cap;
  Obs.Health.batch_collected t.hl ~sid:t.sid ~size:len;
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wbatch;
  t.run_batch t.pool t.st arr;
  if observed then Pool.set_work_class t.pool Obs.Recorder.Wsetup;
  let done_time = if t.timed then stamp t else 0 in
  if t.timed then begin
    let done_launches = Atomic.get t.launches in
    let health_on = Obs.Health.enabled t.hl in
    for i = 0 to len - 1 do
      let r = get i in
      r.done_time <- done_time;
      r.done_launches <- done_launches;
      (* Phase decomposition for the SLOs: pending-wait (issue to this
         batch's launch), batch-exec, and overflow-queue time for ops
         that missed a pending-array slot. *)
      if health_on then
        Obs.Health.op_phases t.hl ~worker:me ~sid:t.sid
          ~wait:(t_start - r.issue_time) ~exec:(done_time - t_start)
          ~ovf:(if r.ovf_since > 0 then t_start - r.ovf_since else 0)
    done;
    if observed then
      Obs.Recorder.emit_batch_end t.rc ~worker:me ~time:done_time ~sid:t.sid
        ~size:len
  end;
  Obs.Invariants.batch_ended t.inv ~worker:me ~time:done_time ~sid:t.sid;
  Atomic.incr t.n_batches;
  ignore (Atomic.fetch_and_add t.n_ops len);
  atomic_max t.max_batch len;
  for i = 0 to len - 1 do
    (get i).resume ()
  done;
  Atomic.set t.flag false;
  relaunch t

(* ---- Pending_array submission path ---- *)

let rec overflow_push t r =
  if t.timed && r.ovf_since = 0 then r.ovf_since <- stamp t;
  let old = Atomic.get t.ovf_back in
  if not (Atomic.compare_and_set t.ovf_back old (r :: old)) then
    overflow_push t r

(* One FAA, one exchange, one increment — no retry loop unless the op
   overflows the array. Order matters: the record must be reachable
   (slot or overflow) before [n_pending] goes up, because the launcher
   treats [n_pending > 0] as "a drain of the queues will find work". *)
let submit_array t r =
  let i = Atomic.fetch_and_add t.claims 1 in
  (if i < t.batch_cap then begin
     match Atomic.exchange t.slots.(i) (Some r) with
     | None -> ()
     | Some stale ->
         (* A previous epoch's claimant published after the launcher
            reset [claims]; keep its (older) record pending. *)
         overflow_push t stale
   end
   else overflow_push t r);
  Atomic.incr t.n_pending

let rec try_launch_array t =
  if Atomic.get t.n_pending > 0 && Atomic.compare_and_set t.flag false true
  then begin
    let len = ref 0 in
    let add r =
      if !len < t.batch_cap then begin
        if Array.length t.batch_buf = 0 then
          t.batch_buf <- Array.make t.batch_cap r;
        t.batch_buf.(!len) <- r;
        incr len
      end
      else Queue.push r t.ovf_front
    in
    (* Admission order: overflow front (oldest), then the slot array,
       then the reversed back stack — FIFO across batches. The front
       queue supplies at most [batch_cap] records; only a batch with
       room left drains the slots and the back stack (whose leftovers
       land back on the — then empty — front queue in admission
       order), so a launch is Θ(batch_cap) no matter how deep the
       overload backlog is. *)
    while !len < t.batch_cap && not (Queue.is_empty t.ovf_front) do
      add (Queue.pop t.ovf_front)
    done;
    if !len < t.batch_cap then begin
      (* Drain epoch: reset the ticket counter so concurrent
         submitters start filling slots for the *next* batch while we
         collect this one. While the batch fills from the front queue
         alone, [claims] stays put and submitters keep overflowing to
         the back stack — everything serializes through the FIFO. *)
      ignore (Atomic.exchange t.claims 0);
      for i = 0 to t.batch_cap - 1 do
        match Atomic.exchange t.slots.(i) None with
        | None -> ()
        | Some r -> add r
      done;
      List.iter add (List.rev (Atomic.exchange t.ovf_back []))
    end;
    let len = !len in
    if len = 0 then begin
      (* [n_pending > 0] raced a record that is transiently in a
         displacing submitter's hands; back off and retry. *)
      Atomic.set t.flag false;
      if Atomic.get t.n_pending > 0 then begin
        Domain.cpu_relax ();
        try_launch_array t
      end
    end
    else begin
      ignore (Atomic.fetch_and_add t.n_pending (-len));
      (* The batch buffer is safely reused: the flag stays held until
         the launched task finishes reading it, and the next launcher
         can only assemble after winning the flag. *)
      let buf = t.batch_buf in
      Pool.async t.pool
        (run_launched t ~len
           ~get:(fun i -> buf.(i))
           ~relaunch:try_launch_array)
      |> ignore
    end
  end

(* ---- Atomic_list (legacy) submission path, as in the seed ---- *)

let rec atomic_push t record =
  let old = Atomic.get t.pending in
  if not (Atomic.compare_and_set t.pending old (record :: old)) then
    atomic_push t record

let rec atomic_take_all t =
  let old = Atomic.get t.pending in
  if old = [] then []
  else if Atomic.compare_and_set t.pending old [] then old
  else atomic_take_all t

let rec atomic_put_back t records =
  match records with
  | [] -> ()
  | _ ->
      let old = Atomic.get t.pending in
      if not (Atomic.compare_and_set t.pending old (records @ old)) then
        atomic_put_back t records

let rec try_launch_list t =
  if Atomic.get t.pending <> [] && Atomic.compare_and_set t.flag false true
  then begin
    let all = atomic_take_all t in
    if all = [] then begin
      (* Lost a race with a concurrent launch drain; retry. *)
      Atomic.set t.flag false;
      try_launch_list t
    end
    else begin
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | r :: rest -> split (k - 1) (r :: acc) rest
      in
      let batch, overflow = split t.batch_cap [] all in
      atomic_put_back t overflow;
      let batch = Array.of_list batch in
      Pool.async t.pool
        (run_launched t ~len:(Array.length batch)
           ~get:(fun i -> batch.(i))
           ~relaunch:try_launch_list)
      |> ignore
    end
  end

let try_launch t =
  match t.impl with
  | Pending_array -> try_launch_array t
  | Atomic_list -> try_launch_list t

let batchify t op =
  let observed = Obs.Recorder.enabled t.rc in
  let r =
    {
      op;
      resume = ignore;
      issue_time = (if t.timed then stamp t else 0);
      issue_launches = Atomic.get t.launches;
      done_time = 0;
      done_launches = 0;
      ovf_since = 0;
    }
  in
  (if observed then
     match Pool.worker_index () with
     | Some w -> Obs.Recorder.emit_op_issue t.rc ~worker:w ~time:r.issue_time ~sid:t.sid
     | None -> ());
  Obs.Invariants.op_submitted t.inv ~sid:t.sid;
  Obs.Health.op_issued t.hl ~sid:t.sid;
  Pool.suspend t.pool (fun resume ->
      r.resume <- resume;
      (match t.impl with
      | Pending_array -> submit_array t r
      | Atomic_list -> atomic_push t r);
      try_launch t);
  (* Control is back: the batch containing the op has completed. The
     continuation may run on a different worker than the issuer — emit
     on the current worker's ring to keep the single-writer rule. *)
  if observed then begin
    match Pool.worker_index () with
    | Some w ->
        Obs.Recorder.emit_op_done t.rc ~worker:w ~time:(Obs.Recorder.now t.rc)
          ~sid:t.sid
          ~batches_seen:(r.done_launches - r.issue_launches)
          ~latency:(r.done_time - r.issue_time)
    | None -> ()
  end;
  if Obs.Invariants.active t.inv then begin
    let w = match Pool.worker_index () with Some w -> w | None -> 0 in
    Obs.Invariants.op_completed t.inv ~worker:w ~time:r.done_time ~sid:t.sid
      ~batches_seen:(r.done_launches - r.issue_launches)
  end
