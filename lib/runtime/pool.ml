type task = unit -> unit

type 'a outcome = ('a, exn) result

type 'a promise_state =
  | Done of 'a outcome
  | Waiting of ('a outcome -> unit) list

type 'a promise = 'a promise_state Atomic.t

(* Idle-worker policy, sweepable by lib/check's config ablations. All
   thresholds are in consecutive failed scheduling rounds ("misses"). *)
type backoff = {
  spin_limit : int;  (* misses served by a single [cpu_relax] *)
  spin_burst : int;  (* relax iterations per miss while bursting *)
  burst_limit : int;  (* misses before the worker starts sleeping *)
  sleep_min : float;  (* first sleep, seconds *)
  sleep_max : float;  (* cap of the exponential sleep ramp, seconds *)
  steal_tries : int;  (* steal attempts per round; 0 = 2 x workers *)
}

let default_backoff =
  {
    spin_limit = 16;
    spin_burst = 32;
    burst_limit = 64;
    sleep_min = 0.000_05;
    sleep_max = 0.002;
    steal_tries = 0;
  }

type t = {
  deques : task Wsdeque.t array;
  mutable domains : unit Domain.t array;
  stop : bool Atomic.t;
  n : int;
  seed : int;
  bo : backoff;
  rc : Obs.Recorder.t;  (* per-worker rings; each domain writes only its own *)
  hl : Obs.Health.t;  (* heartbeats + watchdog; shared with Batcher_rt *)
  (* Work-class attribution (observed pools only). Slot [w] is worker
     [w]'s ambient class / the ns timestamp its current segment opened.
     Each worker touches only its own slots, so no sync — but the
     arrays are cache-line striped ([Pad.make_striped]) so one worker's
     per-task class flips don't evict its neighbours' slots. *)
  cls : Obs.Recorder.work_class array;  (* striped *)
  seg : int array;  (* striped *)
}

(* Which worker (index) the current domain is acting as. *)
let worker_key : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let worker_index () = !(Domain.DLS.get worker_key)

let num_workers t = t.n

let recorder t = t.rc

let health t = t.hl

(* ---- work-class segments (observed pools only) ----

   A worker's wall-clock between segment boundaries is attributed to its
   ambient class: task bodies carry the class captured where they were
   created (async) or suspended (await/suspend), and the find-task /
   backoff time between tasks is [Wsched]. Emitted [Work] segments tile
   each worker's timeline from its loop entry to its exit. *)

let set_cls t w c =
  if Obs.Recorder.enabled t.rc && Pad.striped_get t.cls w <> c then begin
    let now = Obs.Recorder.now t.rc in
    let dur = now - Pad.striped_get t.seg w in
    if dur > 0 then
      Obs.Recorder.emit_work t.rc ~worker:w ~time:now
        ~cls:(Pad.striped_get t.cls w) ~units:dur;
    Pad.striped_set t.cls w c;
    Pad.striped_set t.seg w now
  end

(* Close the open segment without changing class (worker exit). *)
let flush_cls t w =
  if Obs.Recorder.enabled t.rc then begin
    let now = Obs.Recorder.now t.rc in
    let dur = now - Pad.striped_get t.seg w in
    if dur > 0 then
      Obs.Recorder.emit_work t.rc ~worker:w ~time:now
        ~cls:(Pad.striped_get t.cls w) ~units:dur;
    Pad.striped_set t.seg w now
  end

let work_class t =
  match worker_index () with
  | Some w when Obs.Recorder.enabled t.rc -> Pad.striped_get t.cls w
  | _ -> Obs.Recorder.Wcore

let set_work_class t c =
  match worker_index () with
  | Some w -> set_cls t w c
  | None -> ()

type _ Effect.t +=
  | Suspend : (('a, unit) Effect.Deep.continuation -> unit) -> 'a Effect.t

let push_on t id task = Wsdeque.push t.deques.(id) task

(* Push on the deque of whichever worker is running us; fall back to
   worker 0 for external callers. *)
let push_current t task =
  let id = match worker_index () with Some id -> id | None -> 0 in
  push_on t id task

let handler : (unit, unit) Effect.Deep.handler =
  {
    retc = Fun.id;
    exnc = raise;
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Suspend f ->
            Some (fun (k : (c, unit) Effect.Deep.continuation) -> f k)
        | _ -> None);
  }

let exec (task : task) = Effect.Deep.match_with task () handler

(* Raw task injection and in-place execution, for Batcher_rt's
   parallel-combining launcher: [push_task] enqueues a preallocated
   closure without a promise (allocation-free recruitment), and
   [exec_inline] runs a task body under the pool's effect handler from a
   context that is otherwise outside one (a [suspend] callback runs in
   the handler itself, so a batch executed there must open a fresh
   handler or any [await] inside the BOP would go unhandled). If the
   inline task suspends, [exec_inline] returns with the rest parked as a
   continuation — exactly like a queued task that suspends. *)
let push_task = push_current
let exec_inline _t task = exec task

(* [misses] is the caller's consecutive-failure count: once the worker is
   past the first spin phase it is "in backoff", and failed steal probes
   are no longer emitted one-by-one — they are counted in [suppressed]
   and flushed as a single Steals_suppressed event on the next successful
   steal (so the steal-attempt histogram stays truthful without an idle
   pool flooding its ring at ~2n events per backoff round). *)
let find_task t my_id rng ~misses ~suppressed =
  match Wsdeque.pop t.deques.(my_id) with
  | Some task -> Some task
  | None ->
      if t.n <= 1 then None
      else begin
        let observed = Obs.Recorder.enabled t.rc in
        let in_backoff = misses >= t.bo.spin_limit in
        (* A bounded sample of random steal attempts per call. *)
        let tries0 = if t.bo.steal_tries > 0 then t.bo.steal_tries else 2 * t.n in
        let rec attempt tries =
          if tries = 0 then None
          else begin
            let victim = (my_id + 1 + Util.Rng.int rng (t.n - 1)) mod t.n in
            match Wsdeque.steal t.deques.(victim) with
            | Some task ->
                if observed then begin
                  (if !suppressed > 0 then begin
                     Obs.Recorder.emit_steals_suppressed t.rc ~worker:my_id
                       ~time:(Obs.Recorder.now t.rc) ~count:!suppressed;
                     suppressed := 0
                   end);
                  Obs.Recorder.emit_steal t.rc ~worker:my_id
                    ~time:(Obs.Recorder.now t.rc) ~victim ~success:true
                    ~batch_deque:false
                end;
                Some task
            | None ->
                if observed then begin
                  if in_backoff then incr suppressed
                  else
                    Obs.Recorder.emit_steal t.rc ~worker:my_id
                      ~time:(Obs.Recorder.now t.rc) ~victim ~success:false
                      ~batch_deque:false
                end;
                attempt (tries - 1)
          end
        in
        attempt tries0
      end

(* Failed-steal backoff: spin briefly, then burst-spin, then sleep on an
   exponential ramp — essential on machines with fewer cores than
   workers, and the reason an idle pool costs ~0 CPU after a few ms. *)
let backoff bo misses =
  if misses < bo.spin_limit then Domain.cpu_relax ()
  else if misses < bo.burst_limit then
    for _ = 1 to bo.spin_burst do
      Domain.cpu_relax ()
    done
  else begin
    (* sleep_min * 2^k, capped; [ldexp] keeps this allocation-free. *)
    let k = min 16 (misses - bo.burst_limit) in
    Unix.sleepf (Float.min bo.sleep_max (ldexp bo.sleep_min k))
  end

let worker_loop t my_id =
  let r = Domain.DLS.get worker_key in
  r := Some my_id;
  let observed = Obs.Recorder.enabled t.rc in
  if observed then begin
    Pad.striped_set t.cls my_id Obs.Recorder.Wsched;
    Pad.striped_set t.seg my_id (Obs.Recorder.now t.rc)
  end;
  let rng = Util.Rng.stream ~seed:t.seed ~index:my_id in
  let misses = ref 0 in
  let suppressed = ref 0 in
  while not (Atomic.get t.stop) do
    Obs.Health.beat t.hl ~worker:my_id;
    match find_task t my_id rng ~misses:!misses ~suppressed with
    | Some task ->
        misses := 0;
        exec task;
        if observed then set_cls t my_id Obs.Recorder.Wsched
    | None ->
        incr misses;
        backoff t.bo !misses
  done;
  if observed then flush_cls t my_id;
  r := None

let create ?(recorder = Obs.Recorder.null) ?(health = Obs.Health.null)
    ?(backoff = default_backoff) ~num_workers () =
  if num_workers < 1 then invalid_arg "Pool.create: num_workers >= 1";
  if
    Obs.Recorder.enabled recorder
    && (Obs.Recorder.clock recorder <> Obs.Recorder.Nanoseconds
       || Obs.Recorder.workers recorder < num_workers)
  then
    invalid_arg
      "Pool.create: recorder must use the Nanoseconds clock and cover all workers";
  if Obs.Health.enabled health && Obs.Health.workers health < num_workers then
    invalid_arg "Pool.create: health must cover all workers";
  let t =
    {
      deques = Array.init num_workers (fun _ -> Wsdeque.create ());
      domains = [||];
      (* Padded: [stop] is polled by every worker each loop iteration
         and must not share a line with whatever is allocated next. *)
      stop = Pad.atomic false;
      n = num_workers;
      seed = 0x600D5EED;
      bo = backoff;
      rc = recorder;
      hl = health;
      cls = Pad.make_striped num_workers Obs.Recorder.Wsched;
      seg = Pad.make_striped num_workers 0;
    }
  in
  t.domains <-
    Array.init (num_workers - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let teardown t =
  Atomic.set t.stop true;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* ---- promises ---- *)

let rec add_waiter (p : 'a promise) w =
  match Atomic.get p with
  | Done r -> w r
  | Waiting ws as old ->
      if not (Atomic.compare_and_set p old (Waiting (w :: ws))) then add_waiter p w

let rec complete (p : 'a promise) r =
  match Atomic.get p with
  | Done _ -> invalid_arg "Pool: promise completed twice"
  | Waiting ws as old ->
      if Atomic.compare_and_set p old (Done r) then List.iter (fun w -> w r) ws
      else complete p r

let async t f =
  let p : 'a promise = Atomic.make (Waiting []) in
  let task =
    if Obs.Recorder.enabled t.rc then begin
      (* The task inherits the submitter's ambient class, whatever
         worker ends up executing it. *)
      let c = work_class t in
      fun () ->
        set_work_class t c;
        let r = try Ok (f ()) with e -> Error e in
        complete p r
    end
    else
      fun () ->
        let r = try Ok (f ()) with e -> Error e in
        complete p r
  in
  push_current t task;
  p

let await t (p : 'a promise) =
  match Atomic.get p with
  | Done (Ok v) -> v
  | Done (Error e) -> raise e
  | Waiting _ ->
      let observed = Obs.Recorder.enabled t.rc in
      (* Capture the suspending task's class so the continuation resumes
         in it wherever it is rescheduled. *)
      let c = if observed then work_class t else Obs.Recorder.Wcore in
      Effect.perform
        (Suspend
           (fun k ->
             add_waiter p (fun r ->
                 push_current t (fun () ->
                     if observed then set_work_class t c;
                     match r with
                     | Ok v -> Effect.Deep.continue k v
                     | Error e -> Effect.Deep.discontinue k e))))

let suspend t f =
  let observed = Obs.Recorder.enabled t.rc in
  let c = if observed then work_class t else Obs.Recorder.Wcore in
  Effect.perform
    (Suspend
       (fun (k : (unit, unit) Effect.Deep.continuation) ->
         f (fun () ->
             push_current t (fun () ->
                 if observed then set_work_class t c;
                 Effect.Deep.continue k ()))))

let run t f =
  let p : 'a promise = Atomic.make (Waiting []) in
  let observed = Obs.Recorder.enabled t.rc in
  let root () =
    if observed then set_work_class t Obs.Recorder.Wcore;
    let r = try Ok (f ()) with e -> Error e in
    complete p r
  in
  let slot = Domain.DLS.get worker_key in
  let saved = !slot in
  slot := Some 0;
  if observed then begin
    Pad.striped_set t.cls 0 Obs.Recorder.Wsched;
    Pad.striped_set t.seg 0 (Obs.Recorder.now t.rc)
  end;
  push_on t 0 root;
  let rng = Util.Rng.stream ~seed:t.seed ~index:0 in
  let misses = ref 0 in
  let suppressed = ref 0 in
  let finish () =
    if observed then flush_cls t 0;
    slot := saved
  in
  let rec drive () =
    match Atomic.get p with
    | Done (Ok v) ->
        finish ();
        v
    | Done (Error e) ->
        finish ();
        raise e
    | Waiting _ -> begin
        Obs.Health.beat t.hl ~worker:0;
        (match find_task t 0 rng ~misses:!misses ~suppressed with
        | Some task ->
            misses := 0;
            exec task;
            if observed then set_cls t 0 Obs.Recorder.Wsched
        | None ->
            incr misses;
            backoff t.bo !misses);
        drive ()
      end
  in
  drive ()

let fork_join t fa fb =
  let pb = async t fb in
  let a = fa () in
  let b = await t pb in
  (a, b)

let parallel_for t ?grain ~lo ~hi body =
  if hi > lo then begin
    let grain =
      match grain with
      | Some g -> max 1 g
      | None -> max 1 ((hi - lo) / (8 * t.n))
    in
    let rec go lo hi =
      if hi - lo <= grain then
        for i = lo to hi - 1 do
          body i
        done
      else begin
        let mid = lo + ((hi - lo) / 2) in
        let right = async t (fun () -> go mid hi) in
        go lo mid;
        await t right
      end
    in
    go lo hi
  end

let parallel_map t ?grain f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f a.(0)) in
    (* Index 0 is computed twice (once to seed the output array); the
       cost is one extra call, the benefit no Obj.magic. *)
    parallel_for t ?grain ~lo:0 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let map_reduce t ?grain ~map ~combine ~init a =
  let n = Array.length a in
  let grain =
    match grain with Some g -> max 1 g | None -> max 1 (n / (8 * t.n))
  in
  let rec go lo hi =
    if hi - lo <= grain then begin
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (map a.(i))
      done;
      !acc
    end
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let right = async t (fun () -> go mid hi) in
      let l = go lo mid in
      combine l (await t right)
    end
  in
  if n = 0 then init else go 0 n

let parallel_prefix_sums t a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let blocks = min n (4 * t.n) in
    let block_size = (n + blocks - 1) / blocks in
    let out = Array.make n 0 in
    let sums = Array.make blocks 0 in
    (* Pass 1: per-block inclusive scans. *)
    parallel_for t ~grain:1 ~lo:0 ~hi:blocks (fun bi ->
        let lo = bi * block_size in
        let hi = min n (lo + block_size) in
        let acc = ref 0 in
        for i = lo to hi - 1 do
          acc := !acc + a.(i);
          out.(i) <- !acc
        done;
        sums.(bi) <- !acc);
    (* Sequential scan of the per-block totals. *)
    let offsets = Util.Prefix_sum.exclusive sums in
    (* Pass 2: add block offsets. *)
    parallel_for t ~grain:1 ~lo:0 ~hi:blocks (fun bi ->
        let lo = bi * block_size in
        let hi = min n (lo + block_size) in
        let off = offsets.(bi) in
        for i = lo to hi - 1 do
          out.(i) <- out.(i) + off
        done);
    out
  end
