(** Cache-line padding helpers for contended atomics and per-worker
    slots (multicore-magic / par-ml style; see DESIGN.md §13).

    OCaml 5.1 lacks [Atomic.make_contended], and densely packed small
    blocks put independent atomics on one cache line; these helpers
    re-allocate blocks at a two-cache-line size so a CAS on one hot
    word stops evicting its neighbours. *)

val words : int
(** Fields in a padded block: 16 words = 128 bytes = two cache lines
    (covers adjacent-line prefetch pairing). *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded v] returns a copy of the heap block [v] widened to
    [words] fields (filler fields hold immediate [0]); immediates,
    no-scan blocks and already-large blocks are returned unchanged.
    Must be applied before [v] is shared between domains — typically at
    creation time. Safe for [Atomic.t] and mutable records: all
    operations address fields by index, never by block size. *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is [copy_as_padded (Atomic.make v)]: a padded atomic. *)

val stride : int
(** Element stride for per-worker striped arrays: one slot per cache
    line. *)

val make_striped : int -> 'a -> 'a array
(** [make_striped n v] allocates an [n]-slot striped array (physically
    [n * stride] elements). Only meaningful for immediate ['a] — boxed
    elements would still share lines via their own blocks. *)

val striped_get : 'a array -> int -> 'a
val striped_set : 'a array -> int -> 'a -> unit
