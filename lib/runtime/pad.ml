(* Cache-line padding for contended heap blocks, in the style of
   multicore-magic's [copy_as_padded] (par-ml depends on the same trick;
   its notes call false sharing "crucial for stable performance").

   OCaml 5.1 has no [Atomic.make_contended], and the runtime packs small
   blocks densely: two [Atomic.t]s allocated back to back share a cache
   line, so a CAS on one evicts the other from every other core's cache.
   [copy_as_padded] re-allocates a block at [words] fields (128 bytes on
   a 64-bit box — two lines, covering adjacent-line prefetchers), copying
   the real fields and filling the tail with immediates. Atomic
   operations only ever touch field 0, and the GC scans the filler
   immediates for free, so the oversized block behaves identically.

   Only ever pad a block BEFORE it is shared between domains (i.e. at
   structure-creation time): the copy is not atomic. *)

let words = 16 (* 128 bytes at 8 bytes/word *)

let copy_as_padded : 'a -> 'a =
 fun v ->
  let o = Obj.repr v in
  if
    (not (Obj.is_block o))
    || Obj.tag o >= Obj.no_scan_tag
    || Obj.size o >= words
  then v
  else begin
    let n = Obj.size o in
    let p = Obj.new_block (Obj.tag o) words in
    for i = 0 to n - 1 do
      Obj.set_field p i (Obj.field o i)
    done;
    for i = n to words - 1 do
      Obj.set_field p i (Obj.repr 0)
    done;
    Obj.obj p
  end

let atomic v = copy_as_padded (Atomic.make v)

(* Stride for int/immediate arrays indexed per worker: slot [i] lives at
   [i * stride], one cache line apart from its neighbours. *)
let stride = 8

let make_striped n v = Array.make (n * stride) v
let striped_get a i = Array.unsafe_get a (i * stride)
let striped_set a i v = Array.unsafe_set a (i * stride) v
