(** Fork-join work-stealing pool on OCaml 5 domains with effect-handler
    task suspension — the substrate the real BATCHER runtime extends.

    The pool owns [num_workers - 1] spawned domains; the domain calling
    {!run} becomes worker 0 for the duration of the call. Tasks are
    closures on per-worker Chase-Lev deques; blocked tasks ({!await},
    {!Batcher_rt.batchify}) suspend their continuation instead of
    blocking the worker. *)

type t

type backoff = {
  spin_limit : int;  (** misses served by a single [Domain.cpu_relax] *)
  spin_burst : int;  (** relax iterations per miss while bursting *)
  burst_limit : int;  (** misses before the worker starts sleeping *)
  sleep_min : float;  (** first sleep, seconds *)
  sleep_max : float;  (** cap of the exponential sleep ramp, seconds *)
  steal_tries : int;  (** steal attempts per round; 0 means 2 x workers *)
}
(** Idle-worker policy. A worker that finds no task counts consecutive
    "misses": below [spin_limit] it relaxes once per miss; below
    [burst_limit] it relaxes [spin_burst] times per miss; past that it
    sleeps [sleep_min * 2^k] capped at [sleep_max]. Exposed so
    [lib/check]'s config ablations can sweep the thresholds. *)

val default_backoff : backoff

val create :
  ?recorder:Obs.Recorder.t ->
  ?health:Obs.Health.t ->
  ?backoff:backoff ->
  num_workers:int ->
  unit ->
  t
(** Spawns [num_workers - 1] domains. [num_workers >= 1].

    [health] (default {!Obs.Health.null}, i.e. off) turns on always-on
    monitoring: every worker heartbeats it once per scheduling-loop
    iteration, and any {!Batcher_rt} built over this pool feeds its
    stall watchdog, phase-latency histograms, and (via
    {!Obs.Health.invariants}) online invariant checkers. It must cover
    all workers. Stream it with {!Obs.Snapshot.to_file} and watch with
    [bin/monitor.exe].

    [backoff] (default {!default_backoff}) sets the idle-worker policy.
    While a worker is past its spin phase, individual failed-steal
    events are not emitted; they are counted and flushed as one
    [Steals_suppressed] event on the next successful steal, so summary
    attempt counts stay truthful without idle pools flooding the rings.

    [recorder] (default {!Obs.Recorder.null}, i.e. off) captures
    steal-attempt events from the workers' task-finding loop, and is
    shared with any {!Batcher_rt} built over this pool (batch spans and
    per-operation latency). It must use the [Nanoseconds] clock and
    cover all workers; each domain writes only its own worker's ring,
    so recording needs no synchronization. Read it out only after
    {!run} returns (and, for spawned workers' rings, ideally after
    {!teardown}). *)

val num_workers : t -> int

val recorder : t -> Obs.Recorder.t
(** The recorder passed at creation, or {!Obs.Recorder.null}. *)

val health : t -> Obs.Health.t
(** The health instance passed at creation, or {!Obs.Health.null}. *)

val teardown : t -> unit
(** Stops and joins the spawned domains. The pool must be idle. *)

type 'a promise

val run : t -> (unit -> 'a) -> 'a
(** Execute a computation to completion, participating as worker 0.
    Must be called from outside the pool (not from a task). Exceptions
    raised by the computation are re-raised. *)

val async : t -> (unit -> 'a) -> 'a promise
(** Schedule a task. Must be called from within a task. *)

val await : t -> 'a promise -> 'a
(** Wait for a promise, suspending the current task (the worker is not
    blocked). Must be called from within a task. Re-raises the task's
    exception, if any. *)

val fork_join : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Binary fork: runs the two thunks in parallel and joins. *)

val parallel_for : t -> ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] runs [body i] for [lo <= i < hi] with
    recursive binary splitting down to [grain] (default: auto). *)

val parallel_map : t -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** Element-wise map with binary splitting; empty input yields [[||]]. *)

val map_reduce :
  t -> ?grain:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** Parallel map then tree reduction. [combine] must be associative;
    [init] is its identity. *)

val parallel_prefix_sums : t -> int array -> int array
(** Inclusive parallel prefix sums (two-pass), the primitive of the
    batched counter and of LAUNCHBATCH compaction. *)

val push_task : t -> (unit -> unit) -> unit
(** Enqueue a raw task (no promise, no class capture) on the calling
    worker's deque, stealable like any other task. Exists so
    {!Batcher_rt}'s parallel-combining launcher can recruit helpers
    with preallocated closures — zero allocation per recruitment.
    Exceptions escaping the task kill the worker; callers must not let
    them escape. *)

val exec_inline : t -> (unit -> unit) -> unit
(** Execute a task body in place under the pool's effect handler.
    Needed by code running inside a {!suspend} callback (which executes
    in the handler itself, not under it) that wants to run work which
    may legitimately [await]/[suspend] — e.g. a batch body executed
    inline by the parallel-combining launcher. If the body suspends,
    [exec_inline] returns immediately and the remainder runs later as
    a parked continuation, exactly like a queued task that suspends.
    Must be called on a pool worker. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t f] suspends the current task and calls [f resume]; the
    task continues when [resume ()] is invoked (exactly once, from any
    task context — the continuation is rescheduled on the resumer's
    worker). The suspension primitive under {!await} and under
    [Batcher_rt.batchify]. Must be called from within a task. *)

val worker_index : unit -> int option
(** Index of the worker executing the caller, if inside a pool. *)

val work_class : t -> Obs.Recorder.work_class
(** The calling worker's ambient work class ([Wcore] outside a pool or
    on an unobserved pool). On an observed pool every worker's
    wall-clock is attributed to its ambient class as tiling [Work]
    segments: tasks inherit the class of their creation site
    ({!async}) or suspension site ({!await}, {!suspend}), the root
    computation of {!run} starts in [Wcore], and time between tasks
    (deque polling, steals, backoff) is [Wsched]. *)

val set_work_class : t -> Obs.Recorder.work_class -> unit
(** Switch the calling worker's ambient class, closing the current
    [Work] segment. No-op outside a pool; a plain compare when the
    class is unchanged or the pool is unobserved. Used by
    {!Batcher_rt} to bracket LAUNCHBATCH setup ([Wsetup]) and the BOP
    body ([Wbatch]). *)
