(** Lock-free Chase-Lev work-stealing deque (Lê-Pop-Cohen-Zappa Nardelli
    C11 protocol over OCaml 5's sequentially consistent [Atomic]).

    The owner pushes and pops at the bottom without contention; thieves
    [steal] from the top with a CAS. Elements live directly in a flat
    buffer (no per-[push] option boxing), and the owner tracks a cached
    lower bound on [top] so the common [push] touches [top] not at all.
    The circular buffer grows on demand (owner-side only); elements are
    never overwritten in a retired buffer, so a thief racing a grow
    still reads a valid element iff its CAS on [top] succeeds.

    Ordering: every [Atomic] access is SC, which subsumes the release
    store of [bottom] in [push], the seq_cst fence in [pop], and the
    acquire loads in [steal] of the C11 formulation. [steal] reads [top]
    before [bottom]; that order is load-bearing — it is what lets [pop]
    take a non-last element without a CAS and immediately clear its
    slot (see the protocol comment in the implementation).

    Single-owner: [push] and [pop] must only be called from one domain at
    a time; [steal] may be called from any domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. Amortized one SC load + one SC store; no allocation
    outside buffer growth. *)

val pop : 'a t -> 'a option
(** Owner only. A popped element's slot is cleared, so the deque does
    not retain it. *)

val steal : 'a t -> 'a option
(** Any domain. Returns [None] if the deque looked empty or the race was
    lost. A stolen element's slot is reclaimed lazily by the owner (at
    most [capacity] stale references persist). *)

val size : 'a t -> int
(** Snapshot; racy, only a hint. *)
