(** Lock-free work-stealing deque with all synchronization state packed
    into a single cache-line-padded atomic word — the par-ml variant of
    Chase-Lev (DESIGN.md §13).

    The word encodes [(top lsl size_bits) lor size]; the owner's write
    index is always [top + size], an invariant steals preserve. [push]
    is one load + one array store + one fetch-and-add; [steal] is one
    load + one CAS (the single-word CAS subsumes the seq_cst fence of
    the classic two-atomic protocol); [pop] is a CAS loop that bumps
    [top] when taking the last element, which keeps [top] strictly
    monotone and rules out the ABA a pre-CAS element read would
    otherwise risk. Full protocol and ABA argument in the
    implementation; the previous two-atomic version is preserved as
    [bench/deque_legacy.ml] for M2 comparisons.

    Elements live directly in a flat [Obj.t] buffer (no per-[push]
    boxing). The buffer grows on demand (owner-side only) up to
    [2^size_bits] elements; retired buffers are never mutated, so a
    thief racing a grow still reads a valid element iff its CAS wins.

    Single-owner: [push] and [pop] must only be called from one domain
    at a time; [steal] may be called from any domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. No allocation outside buffer growth. Raises [Failure]
    if the deque would exceed [2^21 - 1] parked elements. *)

val pop : 'a t -> 'a option
(** Owner only. A popped element's slot is cleared, so the deque does
    not retain it. *)

val steal : 'a t -> 'a option
(** Any domain. Returns [None] if the deque looked empty or the race
    was lost. A stolen element's slot is reclaimed when the owner next
    wraps over it (at most [capacity] stale references persist). *)

val size : 'a t -> int
(** Snapshot; racy, only a hint. *)
