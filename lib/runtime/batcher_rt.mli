(** The real BATCHER runtime: implicit batching over a {!Pool}.

    A program task calls {!batchify} exactly like a blocking call to a
    concurrent structure; the runtime parks the operation record with the
    task's continuation, and whenever records are pending with no batch in
    flight, one worker wins a CAS on the global batch flag and launches
    the user-supplied batched operation (BOP) on a snapshot of at most
    [batch_cap] records. At most one batch runs at a time (Invariant 1),
    so [run_batch] needs no locks or atomics of its own, and it may use
    the pool's [parallel_for]/[fork_join] freely.

    Deviation from the paper's scheduler (documented in DESIGN.md): this
    runtime keeps one task deque per worker rather than separate core and
    batch deques — suspended callers' workers help with any available
    work, helper-lock style. The dual-deque discipline, which matters for
    the proof but not for the interface, is modeled exactly in [Sim].

    [run_batch] must not itself call {!batchify} on the same structure
    (the paper's model likewise forbids nested data-structure calls from
    inside a BOP). *)

type ('s, 'op) t

type mode =
  | Faa_array
      (** PR 4's submission scheme (default): a preallocated array of
          [batch_cap] slots claimed with one fetch-and-add per op —
          constant non-retrying work on the common path — plus a
          two-list FIFO overflow queue, so admission across batches is
          oldest-first and a parked op's batches-while-pending stays
          O(1) under sustained over-cap load. The launcher drains the
          queues in Θ(batch_cap), the paper's LAUNCHBATCH setup bound,
          into a batch buffer reused across launches, and hands the
          batch to the pool as a task. *)
  | Worker_id
      (** The paper-verbatim pending array: one slot per {e worker},
          indexed by the submitting worker's id — no FAA ticket at all;
          a worker whose slot is already occupied (several suspended
          tasks of one worker) overflows the newer record, preserving
          per-worker FIFO order. Suspended-task migration is handled by
          re-reading the worker index at each publication — see DESIGN.md
          §13 for the invariant. Launches execute as in [Faa_array]. *)
  | Par_combine
      (** Publication as [Worker_id]; execution by parallel combining
          (Aksenov–Kuznetsov): the flag-winning submitter — itself a
          blocked client — runs the BOP inline in its suspension
          context, then recruits blocked submitters to stamp and
          resume batch sub-ranges in parallel via preallocated
          defunctionalized work items (zero allocation per
          recruitment). The last finisher releases the flag and
          trampolines the relaunch. *)
  | Atomic_list
      (** The seed's submission path, kept for before/after
          benchmarking: a single CAS-retry cons stack — allocating,
          contended, and LIFO (newest-first admission starves parked
          ops under over-cap load). *)

val mode_name : mode -> string
(** ["pending_array"] (the pre-mode-axis external name, kept so
    benchmark baselines keep matching), ["worker_id"], ["par_combine"],
    ["atomic_list"]. *)

val mode_of_string : string -> mode option
(** Inverse of {!mode_name}; also accepts ["faa_array"]/["faa"]. *)

val mode_code : mode -> int
(** Two-bit tag carried in [Obs.Recorder.Batch_start] events: 0
    faa-array (shared with the simulator), 1 worker_id, 2 par_combine,
    3 atomic_list. *)

val all_modes : mode list
(** All four, in [mode_code] order. *)

type inject = {
  slow_submit : float;
      (** stretch the publication segment of {!batchify} (record
          reachable → launch attempt) by this factor *)
  slow_setup : float;
      (** stretch LAUNCHBATCH overhead: working-set assembly before
          the launch stamp, and (pool-executed modes) the stamp/resume
          epilogue before the flag release *)
  slow_bop : float;  (** stretch the BOP body itself *)
}
(** Calibrated delay injection for causal profiling (DESIGN.md §15):
    a virtual speedup of phase X by f = every {e other} phase slowed
    by f, then measurements renormalized by the driver. Each factor is
    a slow-down, ≥ 1. Injection is self-calibrating — each site
    measures its own segment's duration dt on the monotonic clock and
    busy-waits (f−1)·dt — so the delay tracks batch size, store, and
    mode with no pre-calibration pass. {!Obs.Reqtrace} span
    conservation holds on injected runs: every stamp is a real clock
    reading taken around the spins. *)

val no_inject : inject
(** All factors 1.0 — compiled to the zero-cost path. *)

val create :
  ?batch_cap:int ->
  ?mode:mode ->
  ?sid:int ->
  ?invariants:Obs.Invariants.t ->
  ?reqtrace:Obs.Reqtrace.t ->
  ?inject:inject ->
  pool:Pool.t ->
  state:'s ->
  run_batch:(Pool.t -> 's -> 'op array -> unit) ->
  unit ->
  ('s, 'op) t
(** [batch_cap] defaults to the pool's worker count (Invariant 2);
    [mode] defaults to {!Faa_array}.

    [inject] (default {!no_inject}) attaches causal-profiling delay
    factors; factors must be ≥ 1 ([Invalid_argument] otherwise). With
    the default the hot paths compile to the pre-causal zero-cost
    shape — one always-false branch per site.

    [invariants] attaches online checkers ({!Obs.Invariants}): every
    submit/launch/completion of this structure feeds the Invariant
    1/2/3 balances and the Lemma-2 check under [sid]. Defaults to the
    pool's health instance's checkers ({!Obs.Health.invariants}), so a
    pool created with [?health] monitors every structure built over it
    with no further wiring; pass explicitly to check an unmonitored
    pool or to use a different mode/bound per structure. Note Lemma 2's
    paper bound of 2 assumes the dual-deque scheduler — on this
    helper-lock runtime create the checkers with a looser
    [lemma2_bound] (the FIFO pending array keeps the figure small but
    not ≤ 2 under over-cap load).

    [sid] (default 0) labels this structure in observability events
    when the pool carries a recorder ({!Pool.create}); give each
    structure of a multi-structure program a distinct id so its batch
    track is separate in the Chrome trace. When recording, every
    BATCHIFY emits op-issue/op-done events with the operation's
    issue→batch-completion latency in nanoseconds and its "batches
    launched while pending" count — the empirical Lemma-2 figure, which
    is {e reported} here rather than asserted: the helper-lock runtime
    (single deque per worker) does not satisfy the dual-deque
    preconditions of the paper's proof, and an op that overflows
    [batch_cap] can legitimately wait through several launches.

    [reqtrace] attaches request-scoped span capture
    ({!Obs.Reqtrace}): operations submitted with a [?token] report
    their publication/overflow milestones and per-batch wait/exec/ovf
    deltas under that token. Defaults to {!Obs.Reqtrace.null}. *)

val batchify : ?token:int -> ('s, 'op) t -> 'op -> unit
(** Submit one operation and block (suspending the task, not the worker)
    until the batch containing it has completed. Results are communicated
    through mutable fields of ['op], as in the paper's operation records.
    Must be called from within a pool task.

    [token] (default [-1], untraced) keys this operation's milestones
    in the batcher's {!Obs.Reqtrace} instance; see {!create}. *)

val state : ('s, 'op) t -> 's

val mode : ('s, 'op) t -> mode

type stats = {
  batches : int;
  ops : int;
  max_batch : int;
  ovf : int;  (** records that went through the overflow queue *)
}

val stats : ('s, 'op) t -> stats
