(** K independent {!Batcher_rt} instances over one {!Pool} — the
    runtime half of keyspace sharding.

    Invariant 1 serializes batches {e per structure}; registering K
    instances makes it per-shard, so up to [min K P] batches run
    concurrently. Each shard carries structure id [sid_base + shard]
    in every recorder event, health histogram and online invariant
    checker, so all observability separates per shard for free.

    Routing policy lives in [Batched.Shard] (which computes per-op
    plans); this module only executes submissions. A typical caller:

    {[
      match Batched.Shard.plan sh op with
      | Batched.Shard.Point s -> Shard_rt.batchify t ~shard:s op
      | Batched.Shard.Fanout { sub; merge } ->
          Shard_rt.scatter t sub;
          merge ()
    ]} *)

type ('s, 'op) t

val create :
  ?batch_cap:int ->
  ?mode:Batcher_rt.mode ->
  ?sid_base:int ->
  ?invariants:Obs.Invariants.t ->
  ?reqtrace:Obs.Reqtrace.t ->
  ?inject:Batcher_rt.inject ->
  pool:Pool.t ->
  shards:int ->
  state:(int -> 's) ->
  run_batch:(Pool.t -> 's -> 'op array -> unit) ->
  unit ->
  ('s, 'op) t
(** [state i] builds shard [i]'s structure instance; [run_batch] is the
    shared BOP (it receives the shard's own state, and by per-shard
    Invariant 1 never runs concurrently {e with itself on the same
    shard} — different shards' batches do overlap, so [run_batch] must
    not touch state shared across shards). [batch_cap], [mode] and
    [invariants] are per-instance settings applied to every shard;
    shard [i] is registered under structure id [sid_base + i]
    (default base 0). When the pool carries a health instance or
    recorder, it must cover [sid_base + shards] structures.
    [reqtrace] (default {!Obs.Reqtrace.null}) attaches request-scoped
    span capture to every shard; see {!Batcher_rt.create}.
    [inject] (default {!Batcher_rt.no_inject}) applies causal-profiling
    delay factors to every shard's batch path. *)

val shards : ('s, 'op) t -> int
val pool : ('s, 'op) t -> Pool.t
val batcher : ('s, 'op) t -> int -> ('s, 'op) Batcher_rt.t
val state : ('s, 'op) t -> int -> 's

val batchify : ?token:int -> ('s, 'op) t -> shard:int -> 'op -> unit
(** Submit a point operation to one shard; suspends the task until the
    batch containing it completes. Must be called from within a pool
    task. [token] keys the op in the request trace (default [-1],
    untraced); see {!Batcher_rt.batchify}. *)

val scatter : ?token:int -> ?token_shard:int -> ('s, 'op) t -> 'op array -> unit
(** Submit one sub-operation per shard ([Array.length = shards]),
    fork-join style: the sub-operations park on their shards
    concurrently, so a cross-shard query pays one batch latency, not
    K. Returns when every sub-batch has completed; the caller merges
    the sub-results afterwards. Must be called from within a pool
    task.

    Request tracing keeps one consistent chain per request: only the
    [token_shard] (default 0) sub-operation carries [token] (default
    [-1], untraced); the fork-join barrier over the remaining shards
    lands in the traced request's sched_post residual. *)

val stats : ('s, 'op) t -> Batcher_rt.stats array
(** Per-shard counters, index = shard. *)

val total_stats : ('s, 'op) t -> Batcher_rt.stats
(** Sum over shards (max for [max_batch]). *)
