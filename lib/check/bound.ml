(* Per-structure composition of the bound's batching terms. Each
   structure's ops only ever wait out that structure's batches
   (Invariant 1 holds per structure), so the collection charge is
   Σ_i n_i·s_i — under K-way sharding, K·(n/K)·s(n/K) — and the
   serialization charge is m·max_i s_i. With one structure this is
   exactly the classic n·s and m·s; with several it is never looser.
   s_i is structure i's widest observed batch span plus the Θ(lg P)
   setup/cleanup stages a launch wraps around the BOP; a structure
   that was never targeted contributes nothing to either term. *)
let composed_terms ~workload ~metrics =
  let open Sim.Metrics in
  let setup_span = 2 * (2 * Batcher_core.Theory.log2i metrics.p + 1) in
  let n_per = Sim.Workload.per_structure_nodes workload in
  let k = Array.length n_per in
  let span_per = Array.make k 0 in
  List.iter
    (fun bd ->
      if bd.bd_sid >= 0 && bd.bd_sid < k then
        span_per.(bd.bd_sid) <- max span_per.(bd.bd_sid) bd.bd_span)
    metrics.batch_details;
  let ns_sum = ref 0 and s_max = ref 0 in
  Array.iteri
    (fun sid n_i ->
      if n_i > 0 || span_per.(sid) > 0 then begin
        let s_i = span_per.(sid) + setup_span in
        ns_sum := !ns_sum + (n_i * s_i);
        if s_i > !s_max then s_max := s_i
      end)
    n_per;
  (!ns_sum, !s_max)

let theorem1 ~workload ~metrics =
  let open Sim.Metrics in
  let t1, t_inf, _n, m = Sim.Workload.core_metrics workload in
  let w = metrics.batch_work + metrics.setup_work in
  let ns_sum, s_max = composed_terms ~workload ~metrics in
  max 1 (((t1 + w + ns_sum) / metrics.p) + (m * s_max) + t_inf)

let ratio ~workload ~metrics =
  float_of_int metrics.Sim.Metrics.makespan
  /. float_of_int (theorem1 ~workload ~metrics)

let check ?(factor = 16.0) ~workload ~metrics () =
  let predicted = theorem1 ~workload ~metrics in
  let r = ratio ~workload ~metrics in
  if r <= factor then Ok ()
  else
    Error
      (Printf.sprintf
         "Theorem 1 bound exceeded: makespan %d > %g x predicted %d (ratio %.2f)"
         metrics.Sim.Metrics.makespan factor predicted r)

(* Open-loop service runs: the composed Theorem-1 terms as a
   per-request wait budget. A request's arrival-to-completion wait is
   paid for by (a) its amortized share of everything the run collected
   and executed — the (W + Σᵢ nᵢ·sᵢ)/P term, with the whole run's work
   standing in for the backlog the request actually waited behind — and
   (b) the batches serialized ahead of it on its own shard, m·maxᵢ sᵢ
   with m the *measured* max batches-seen-while-waiting (the open-loop
   Lemma-2 figure: ~2 when the system keeps up, growing with backlog
   under overload, so the budget tracks the load instead of lying about
   it). An additive maxᵢ sᵢ covers a wait straddling a single batch.
   Same in-expectation caveat as [check]: the factor is a regression
   tripwire, not a theorem. *)
type service_terms = { work_term : int; serial_term : int; slack : int }

let service_terms ~p ~total_work ~per_shard_ops ~per_shard_span ~m =
  if Array.length per_shard_ops <> Array.length per_shard_span then
    invalid_arg "service_budget: per-shard arrays must align";
  let ns_sum = ref 0 and s_max = ref 0 in
  Array.iteri
    (fun i n_i ->
      let s_i = per_shard_span.(i) in
      ns_sum := !ns_sum + (n_i * s_i);
      if s_i > !s_max then s_max := s_i)
    per_shard_ops;
  {
    work_term = (total_work + !ns_sum) / p;
    serial_term = m * !s_max;
    slack = !s_max;
  }

let service_budget ~p ~total_work ~per_shard_ops ~per_shard_span ~m =
  let t = service_terms ~p ~total_work ~per_shard_ops ~per_shard_span ~m in
  max 1 (t.work_term + t.serial_term + t.slack)

let service_check ?(factor = 4.0) ~p ~wait_max ~total_work ~per_shard_ops
    ~per_shard_span ~m () =
  let budget = service_budget ~p ~total_work ~per_shard_ops ~per_shard_span ~m in
  if float_of_int wait_max <= factor *. float_of_int budget then Ok ()
  else
    Error
      (Printf.sprintf
         "service wait bound exceeded: max wait %d > %g x ((W+Σnᵢsᵢ)/P + \
          m·s_max + s_max) = %g (W=%d m=%d P=%d)"
         wait_max factor
         (factor *. float_of_int budget)
         total_work m p)

(* Cross-validate the recorder-derived attribution against the
   simulator's own counters and against the bound's structure. The two
   accountings are produced by disjoint code paths (Work/Steal events
   folded by Obs.Attrib vs. the [attribute] counters inside the
   scheduler loop), so agreement here certifies both. *)
let cross_check ?ms_factor ~workload ~metrics ~recorder () =
  let ( let* ) = Result.bind in
  let open Sim.Metrics in
  let* () =
    if Obs.Recorder.enabled recorder then Ok ()
    else Error "cross_check: recorder disabled"
  in
  let a = Obs.Attrib.of_recorder recorder in
  let* () =
    Result.map_error (fun e -> "attrib: " ^ e)
      (Obs.Attrib.check ~expected:(metrics.p * metrics.makespan) a)
  in
  let eq name got want =
    if got = want then Ok ()
    else
      Error
        (Printf.sprintf "attrib %s %d disagrees with sim counter %d" name got
           want)
  in
  let* () = eq "core" a.Obs.Attrib.total.Obs.Attrib.core metrics.core_work in
  let* () = eq "batch" a.Obs.Attrib.total.Obs.Attrib.batch metrics.batch_work in
  let* () = eq "setup" a.Obs.Attrib.total.Obs.Attrib.setup metrics.setup_work in
  (* Per-shard conservation: fold the recorder's Batch_start/Batch_end
     stream per sid and demand every structure collected exactly the
     ops the workload assigned it (each ds node is batched exactly
     once), batch/setup totals re-sum to the sim counters, and no
     structure was batch-busy longer than the whole run. *)
  let* () =
    let n_per = Sim.Workload.per_structure_nodes workload in
    let k = Array.length n_per in
    let got = Array.make k 0 in
    let batches = ref 0 and ops = ref 0 and setup = ref 0 in
    let bad = ref None in
    let fail fmt = Printf.ksprintf (fun m -> if !bad = None then bad := Some m) fmt in
    Array.iter
      (fun (sa : Obs.Attrib.structure_account) ->
        batches := !batches + sa.sa_batches;
        ops := !ops + sa.sa_ops;
        setup := !setup + sa.sa_setup;
        if sa.sa_sid < 0 || sa.sa_sid >= k then
          fail "recorder saw batches for unknown sid %d" sa.sa_sid
        else begin
          got.(sa.sa_sid) <- sa.sa_ops;
          if sa.sa_busy > metrics.makespan then
            fail "sid %d batch-busy %d units exceeds makespan %d" sa.sa_sid
              sa.sa_busy metrics.makespan
        end)
      a.Obs.Attrib.per_structure;
    Array.iteri
      (fun sid n_i ->
        if got.(sid) <> n_i then
          fail "per-shard conservation: sid %d collected %d ops, workload assigns %d"
            sid got.(sid) n_i)
      n_per;
    if !batches <> metrics.batches then
      fail "per-shard batches sum %d <> sim counter %d" !batches metrics.batches;
    if !ops <> metrics.batch_size_total then
      fail "per-shard ops sum %d <> sim batch_size_total %d" !ops
        metrics.batch_size_total;
    if !setup <> metrics.setup_work then
      fail "per-shard setup sum %d <> sim setup_work %d" !setup metrics.setup_work;
    match !bad with Some msg -> Error msg | None -> Ok ()
  in
  let* () =
    if metrics.span_realized <= metrics.makespan then Ok ()
    else
      Error
        (Printf.sprintf "span_realized %d exceeds makespan %d"
           metrics.span_realized metrics.makespan)
  in
  let cp = Obs.Critpath.of_recorder recorder in
  let* () =
    if cp.Obs.Critpath.t_inf_witness <= metrics.makespan then Ok ()
    else
      Error
        (Printf.sprintf "critical-path witness %d exceeds makespan %d"
           cp.Obs.Critpath.t_inf_witness metrics.makespan)
  in
  match ms_factor with
  | None -> Ok ()
  | Some factor ->
      (* The wait bucket is the realized serialized-batch-wait surface.
         A worker is trapped only while some batch runs or launches, so
         the bound pays for its waiting out of the two terms that
         charge for batch execution: the amortized (W(n) + n·s(n))/P
         share when throughput-bound, and m·s(n) (m = DS-depth of the
         core program) when serialization-bound. Same in-expectation
         caveat as [check], hence the caller-chosen factor, and an
         additive s(n) of slack for runs straddling a single batch. *)
      let _, _, n, m = Sim.Workload.core_metrics workload in
      let w = metrics.batch_work + metrics.setup_work in
      let ns_sum, s_max = composed_terms ~workload ~metrics in
      let per_worker_wait =
        float_of_int a.Obs.Attrib.total.Obs.Attrib.wait
        /. float_of_int metrics.p
      in
      let budget =
        factor
        *. ((float_of_int (w + ns_sum) /. float_of_int metrics.p)
           +. float_of_int (m * s_max))
        +. float_of_int s_max
      in
      if per_worker_wait <= budget then Ok ()
      else
        Error
          (Printf.sprintf
             "serialized wait %.0f per worker exceeds %g x ((W+Σnᵢsᵢ)/P + m·s_max) \
              = %.0f (n=%d m=%d s_max=%d)"
             per_worker_wait factor budget n m s_max)
