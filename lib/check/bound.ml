let theorem1 ~workload ~metrics =
  let open Sim.Metrics in
  let t1, t_inf, n, m = Sim.Workload.core_metrics workload in
  let w = metrics.batch_work + metrics.setup_work in
  (* s(n): the widest observed batch span, plus the Θ(lg P) setup and
     cleanup stages a launch wraps around the BOP. *)
  let batch_span =
    List.fold_left (fun acc bd -> max acc bd.bd_span) 0 metrics.batch_details
  in
  let setup_span = 2 * (2 * Batcher_core.Theory.log2i metrics.p + 1) in
  let s = batch_span + setup_span in
  max 1
    (Batcher_core.Theory.batcher_bound ~p:metrics.p ~t1 ~t_inf ~n ~m ~w ~s)

let ratio ~workload ~metrics =
  float_of_int metrics.Sim.Metrics.makespan
  /. float_of_int (theorem1 ~workload ~metrics)

let check ?(factor = 16.0) ~workload ~metrics () =
  let predicted = theorem1 ~workload ~metrics in
  let r = ratio ~workload ~metrics in
  if r <= factor then Ok ()
  else
    Error
      (Printf.sprintf
         "Theorem 1 bound exceeded: makespan %d > %g x predicted %d (ratio %.2f)"
         metrics.Sim.Metrics.makespan factor predicted r)

(* Cross-validate the recorder-derived attribution against the
   simulator's own counters and against the bound's structure. The two
   accountings are produced by disjoint code paths (Work/Steal events
   folded by Obs.Attrib vs. the [attribute] counters inside the
   scheduler loop), so agreement here certifies both. *)
let cross_check ?ms_factor ~workload ~metrics ~recorder () =
  let ( let* ) = Result.bind in
  let open Sim.Metrics in
  let* () =
    if Obs.Recorder.enabled recorder then Ok ()
    else Error "cross_check: recorder disabled"
  in
  let a = Obs.Attrib.of_recorder recorder in
  let* () =
    Result.map_error (fun e -> "attrib: " ^ e)
      (Obs.Attrib.check ~expected:(metrics.p * metrics.makespan) a)
  in
  let eq name got want =
    if got = want then Ok ()
    else
      Error
        (Printf.sprintf "attrib %s %d disagrees with sim counter %d" name got
           want)
  in
  let* () = eq "core" a.Obs.Attrib.total.Obs.Attrib.core metrics.core_work in
  let* () = eq "batch" a.Obs.Attrib.total.Obs.Attrib.batch metrics.batch_work in
  let* () = eq "setup" a.Obs.Attrib.total.Obs.Attrib.setup metrics.setup_work in
  let* () =
    if metrics.span_realized <= metrics.makespan then Ok ()
    else
      Error
        (Printf.sprintf "span_realized %d exceeds makespan %d"
           metrics.span_realized metrics.makespan)
  in
  let cp = Obs.Critpath.of_recorder recorder in
  let* () =
    if cp.Obs.Critpath.t_inf_witness <= metrics.makespan then Ok ()
    else
      Error
        (Printf.sprintf "critical-path witness %d exceeds makespan %d"
           cp.Obs.Critpath.t_inf_witness metrics.makespan)
  in
  match ms_factor with
  | None -> Ok ()
  | Some factor ->
      (* The wait bucket is the realized serialized-batch-wait surface.
         A worker is trapped only while some batch runs or launches, so
         the bound pays for its waiting out of the two terms that
         charge for batch execution: the amortized (W(n) + n·s(n))/P
         share when throughput-bound, and m·s(n) (m = DS-depth of the
         core program) when serialization-bound. Same in-expectation
         caveat as [check], hence the caller-chosen factor, and an
         additive s(n) of slack for runs straddling a single batch. *)
      let _, _, n, m = Sim.Workload.core_metrics workload in
      let w = metrics.batch_work + metrics.setup_work in
      let batch_span =
        List.fold_left (fun acc bd -> max acc bd.bd_span) 0 metrics.batch_details
      in
      let setup_span = 2 * (2 * Batcher_core.Theory.log2i metrics.p + 1) in
      let s = batch_span + setup_span in
      let per_worker_wait =
        float_of_int a.Obs.Attrib.total.Obs.Attrib.wait
        /. float_of_int metrics.p
      in
      let budget =
        factor
        *. ((float_of_int (w + (n * s)) /. float_of_int metrics.p)
           +. float_of_int (m * s))
        +. float_of_int s
      in
      if per_worker_wait <= budget then Ok ()
      else
        Error
          (Printf.sprintf
             "serialized wait %.0f per worker exceeds %g x ((W+n*s)/P + m*s) \
              = %.0f (n=%d m=%d s=%d)"
             per_worker_wait factor budget n m s)
