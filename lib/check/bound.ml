let theorem1 ~workload ~metrics =
  let open Sim.Metrics in
  let t1, t_inf, n, m = Sim.Workload.core_metrics workload in
  let w = metrics.batch_work + metrics.setup_work in
  (* s(n): the widest observed batch span, plus the Θ(lg P) setup and
     cleanup stages a launch wraps around the BOP. *)
  let batch_span =
    List.fold_left (fun acc bd -> max acc bd.bd_span) 0 metrics.batch_details
  in
  let setup_span = 2 * (2 * Batcher_core.Theory.log2i metrics.p + 1) in
  let s = batch_span + setup_span in
  max 1
    (Batcher_core.Theory.batcher_bound ~p:metrics.p ~t1 ~t_inf ~n ~m ~w ~s)

let ratio ~workload ~metrics =
  float_of_int metrics.Sim.Metrics.makespan
  /. float_of_int (theorem1 ~workload ~metrics)

let check ?(factor = 16.0) ~workload ~metrics () =
  let predicted = theorem1 ~workload ~metrics in
  let r = ratio ~workload ~metrics in
  if r <= factor then Ok ()
  else
    Error
      (Printf.sprintf
         "Theorem 1 bound exceeded: makespan %d > %g x predicted %d (ratio %.2f)"
         metrics.Sim.Metrics.makespan factor predicted r)
