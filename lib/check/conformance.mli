(** Conformance checking: one seeded operation script, three executions.

    For every batched structure, {!run} generates a random operation
    script and pushes it through

    + the {e real runtime} — {!Runtime.Batcher_rt.batchify} from a
      parallel loop on a real {!Runtime.Pool}, and
    + the {e simulator} — a {!Sim.Workload} whose cost model applies the
      script's actual operations to a second structure instance as each
      simulated batch launches (so per-op results are threaded through
      the cost model), with the scheduler's invariant checks on and the
      resulting trace fed to {!Sim.Trace.validate},

    and, for each execution, replays the exact batch linearization the
    scheduler chose against the structure's {!Oracle} — batches in
    execution order, the structure's documented phase order within each
    batch. Per-op results must match the oracle's op by op, and the
    final states must render identically. Invariant 1 makes the batch
    sequence a true linearization, so agreement here is agreement with a
    sequential specification under the scheduler's real, adversarially
    random interleavings.

    A {!subject} packs a structure with its script generator, oracle
    glue and simulator cost model; {!subjects} covers every structure in
    [lib/batched/] that exposes operation records. The order-maintenance
    list (the one structure with a direct, non-record interface) gets
    the dedicated {!order_list_check}. *)

type subject

val subject_name : subject -> string

val subjects : subject list
(** counter, fifo, stack, pqueue, hashtable, skiplist, two_three,
    ostree, sp_order. *)

val find : string -> subject
(** Raises [Not_found] for unknown names. *)

type report = {
  subject : string;
  rt_batches : int;  (** batches the real runtime executed *)
  rt_max_batch : int;
  sim_batches : int;  (** batches the simulator launched *)
  sim_makespan : int;
}

val run :
  ?n_ops:int ->
  ?seed:int ->
  ?workers:int ->
  ?sim_p:int ->
  ?backoff:Runtime.Pool.backoff ->
  ?mode:Runtime.Batcher_rt.mode ->
  subject ->
  (report, string) result
(** [run subject] executes both paths with a fresh structure and oracle
    each. Defaults: 96 ops, seed 1, a 3-worker pool, a 4-worker
    simulation. [Error] carries the first divergence (path, batch index,
    op) or invariant failure.

    [backoff] sets the real pool's idle-worker policy (the fuzz driver
    sweeps a small ablation list so extreme spin/sleep settings get
    conformance coverage too); [mode] selects the runtime batch-path
    mode (default {!Runtime.Batcher_rt.Faa_array}; the other modes —
    paper-verbatim [Worker_id], parallel-combining [Par_combine], and
    the legacy [Atomic_list] — stay covered through the fuzz sweep's
    ablation rotation). *)

val order_list_check : ?n:int -> ?seed:int -> unit -> (unit, string) result
(** Random [insert_after] script against the naive list oracle, then a
    full pairwise [precedes] comparison ([n] insertions, default 128). *)
