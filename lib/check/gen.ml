(* QCheck arbitraries over fuzz cases and scheduler configs. The
   seeded op-script generators live in [Opgen]; the aliases below keep
   the old [Gen.*] names working. *)

let script = Opgen.script
let counter_op = Opgen.counter_op
let fifo_op = Opgen.fifo_op
let stack_op = Opgen.stack_op
let pqueue_op = Opgen.pqueue_op
let hashtable_op = Opgen.hashtable_op
let skiplist_op = Opgen.skiplist_op
let sharded_skiplist_op = Opgen.sharded_skiplist_op
let sharded_ostree_op = Opgen.sharded_ostree_op
let two_three_op = Opgen.two_three_op
let ostree_op = Opgen.ostree_op

let config_gen ?(min_p = 1) ?(max_p = 8) () =
  let open QCheck.Gen in
  int_range min_p max_p >>= fun p ->
  int_range 0 1_000_000 >>= fun seed ->
  oneofl
    Sim.Batcher.[ Alternating; Core_only; Batch_only; Uniform_random ]
  >>= fun steal_policy ->
  int_range 1 p >>= fun launch_threshold ->
  int_range 1 p >>= fun batch_cap ->
  oneofl Sim.Batcher.[ Tree_setup; Fused_setup; No_setup ] >>= fun overhead ->
  bool >>= fun sequential_batches ->
  return
    {
      (Sim.Batcher.default ~p) with
      Sim.Batcher.seed;
      steal_policy;
      launch_threshold;
      batch_cap;
      overhead;
      sequential_batches;
    }

let print_config (c : Sim.Batcher.config) =
  Printf.sprintf
    "{ p = %d; seed = %d; policy = %s; threshold = %d; cap = %d; overhead = %s; \
     flat = %b }"
    c.Sim.Batcher.p c.seed
    (Schedule_fuzz.policy_name c.steal_policy)
    c.launch_threshold c.batch_cap
    (Schedule_fuzz.overhead_name c.overhead)
    c.sequential_batches

let arb_config ?min_p ?max_p () =
  QCheck.make ~print:print_config (config_gen ?min_p ?max_p ())

let case_gen ?max_p ?max_size () =
  QCheck.Gen.map
    (Schedule_fuzz.case_of_seed ?max_p ?max_size)
    (QCheck.Gen.int_range 0 1_000_000)

let arb_case ?max_p ?max_size () =
  QCheck.make ~print:Schedule_fuzz.show_case
    ~shrink:(fun c yield -> List.iter yield (Schedule_fuzz.shrink_steps c))
    (case_gen ?max_p ?max_size ())
