(* Seeded operation-script generators for the conformance passes: one
   op constructor per batched structure, plus the script builder that
   replays them deterministically from a seed. Kept separate from [Gen]
   (the QCheck arbitraries) so [Schedule_fuzz]'s runtime-conformance leg
   can depend on [Conformance] without a module cycle. *)

let script ~gen ~n ~seed =
  let rng = Util.Rng.create ~seed in
  let rec build i acc = if i = n then List.rev acc else build (i + 1) (gen rng i :: acc) in
  Array.of_list (build 0 [])

let counter_op rng _i = Batched.Counter.op (Util.Rng.int rng 19 - 9)

let fifo_op rng _i =
  if Util.Rng.int rng 5 < 3 then Batched.Fifo.enqueue (Util.Rng.int rng 1000)
  else Batched.Fifo.dequeue ()

let stack_op rng _i =
  if Util.Rng.int rng 5 < 3 then Batched.Stack.push (Util.Rng.int rng 1000)
  else Batched.Stack.pop ()

let pqueue_op rng i =
  if Util.Rng.int rng 5 < 3 then
    (* 4096 * draw + i keeps priorities distinct across the script as
       long as it is shorter than 4096 ops. *)
    Batched.Pqueue.insert_op
      ~prio:((Util.Rng.int rng 1000 * 4096) + (i mod 4096))
      ~value:(Util.Rng.int rng 1000)
  else Batched.Pqueue.extract_op ()

let small_key ~n rng = Util.Rng.int rng (max 8 (n / 2))

let hashtable_op ~n rng _i =
  match Util.Rng.int rng 4 with
  | 0 | 1 ->
      Batched.Hashtable.insert ~key:(small_key ~n rng) ~value:(Util.Rng.int rng 1000)
  | 2 -> Batched.Hashtable.lookup (small_key ~n rng)
  | _ -> Batched.Hashtable.remove (small_key ~n rng)

let skiplist_op ~n rng _i =
  match Util.Rng.int rng 4 with
  | 0 | 1 -> Batched.Skiplist.insert (small_key ~n rng)
  | 2 -> Batched.Skiplist.mem (small_key ~n rng)
  | _ -> Batched.Skiplist.delete (small_key ~n rng)

(* Sharded-conformance scripts: point-op mixes with an occasional
   cross-shard fan-out (range / rank), never Select — an exact
   order-statistic is not shardable (see [Batched.Shard.ostree]). *)
let sharded_skiplist_op ~n rng _i =
  match Util.Rng.int rng 8 with
  | 0 | 1 | 2 -> Batched.Skiplist.insert (small_key ~n rng)
  | 3 | 4 -> Batched.Skiplist.mem (small_key ~n rng)
  | 5 | 6 -> Batched.Skiplist.delete (small_key ~n rng)
  | _ ->
      let lo = small_key ~n rng in
      Batched.Skiplist.range ~lo ~hi:(lo + 1 + Util.Rng.int rng (max 8 (n / 2)))

let sharded_ostree_op ~n rng i =
  match Util.Rng.int rng 8 with
  | 0 | 1 | 2 -> Batched.Ostree.insert_op (2 * i)
  | 3 | 4 -> Batched.Ostree.delete_op (Util.Rng.int rng (2 * max 1 n))
  | 5 | 6 -> Batched.Ostree.rank_op (Util.Rng.int rng (2 * max 1 n))
  | _ ->
      let lo = Util.Rng.int rng (2 * max 1 n) in
      Batched.Ostree.range_op ~lo ~hi:(lo + 1 + Util.Rng.int rng (2 * max 1 n))

let two_three_op ~n rng i =
  match Util.Rng.int rng 4 with
  | 0 | 1 -> Batched.Two_three.insert_op (2 * i)
  | 2 -> Batched.Two_three.mem_op (Util.Rng.int rng (2 * max 1 n))
  | _ -> Batched.Two_three.delete_op (Util.Rng.int rng (2 * max 1 n))

let ostree_op ~n rng i =
  match Util.Rng.int rng 5 with
  | 0 | 1 -> Batched.Ostree.insert_op (2 * i)
  | 2 -> Batched.Ostree.delete_op (Util.Rng.int rng (2 * max 1 n))
  | 3 -> Batched.Ostree.rank_op (Util.Rng.int rng (2 * max 1 n))
  | _ -> Batched.Ostree.select_op (Util.Rng.int rng (max 1 n))

