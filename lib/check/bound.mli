(** Theorem-1 regression checking.

    A simulated run is compared against the paper's completion-time
    bound, composed per structure (per shard, under
    {!Batched.Shard}-style sharding into K instances):

    {v (T1 + W + Σᵢ nᵢ·sᵢ)/P + m·maxᵢ sᵢ + T∞ v}

    instantiated with the run's own measurements: T1, T∞ and m come
    from {!Sim.Workload.core_metrics}, nᵢ from
    {!Sim.Workload.per_structure_nodes}; W is the BOP plus LAUNCHBATCH
    work the simulator attributed to batches; sᵢ is structure i's
    largest observed batch span (plus the setup/cleanup span of a
    launch). With one structure this is the paper's
    (T1 + W(n) + n·s(n))/P + m·s(n) + T∞ exactly; for a structure
    sharded K ways the collection term reads K·(n/K)·s(n/K) and the
    serialization term m·s(n/K), since Invariant 1 — one batch in
    flight — holds per shard. Theorem 1
    promises the makespan is within a constant factor of this expression
    {e in expectation}, so {!check} takes the acceptable factor as a
    parameter — a run exceeding it flags a scheduler-efficiency
    regression, not merely an unlucky seed, as long as the factor is
    chosen generously (the repo's experiments observe ratios below 16;
    see E6 in DESIGN.md).

    The expression only makes sense for configurations the theorem
    speaks about: immediate launching and a full batch cap. Ablated
    configurations (launch thresholds, tiny caps, core-only stealing)
    may legitimately exceed it, so {!Schedule_fuzz} applies {!check}
    only to paper-default-shaped configurations. *)

val theorem1 : workload:Sim.Workload.t -> metrics:Sim.Metrics.t -> int
(** The bound expression, in simulated timesteps (at least 1). *)

val ratio : workload:Sim.Workload.t -> metrics:Sim.Metrics.t -> float
(** makespan / {!theorem1} — the quantity that must stay bounded. *)

val check :
  ?factor:float ->
  workload:Sim.Workload.t ->
  metrics:Sim.Metrics.t ->
  unit ->
  (unit, string) result
(** [Error] when makespan exceeds [factor] (default 16.0) times
    {!theorem1}, with a description naming both sides. *)

type service_terms = {
  work_term : int;  (** (W + Σᵢ nᵢ·sᵢ)/P — the throughput-bound term *)
  serial_term : int;  (** m·maxᵢ sᵢ — the serialization-bound term *)
  slack : int;  (** the additive maxᵢ sᵢ straddling-batch allowance *)
}

val service_terms :
  p:int ->
  total_work:int ->
  per_shard_ops:int array ->
  per_shard_span:int array ->
  m:int ->
  service_terms
(** The {!service_budget} expression split into its terms, for
    dominant-term analysis (the causal profiler compares which term
    dominates against which phase measurably matters: work-family
    phases move [work_term], span-family phases move both
    span-carrying terms). *)

val service_budget :
  p:int ->
  total_work:int ->
  per_shard_ops:int array ->
  per_shard_span:int array ->
  m:int ->
  int
(** The composed bound's batching terms as a per-request wait budget
    for {e open-loop} service runs ([Sim.Openloop]):
    (W + Σᵢ nᵢ·sᵢ)/P + m·maxᵢ sᵢ + maxᵢ sᵢ, where W is the run's
    total batch work (setup included), nᵢ/sᵢ are shard i's collected
    ops and widest batch span (setup span included), and [m] is the
    measured max batches-seen-while-waiting — the open-loop Lemma-2
    figure, which grows with backlog under overload so the budget
    follows the offered load. At least 1. *)

val service_check :
  ?factor:float ->
  p:int ->
  wait_max:int ->
  total_work:int ->
  per_shard_ops:int array ->
  per_shard_span:int array ->
  m:int ->
  unit ->
  (unit, string) result
(** [Error] when the run's max per-request wait exceeds [factor]
    (default 4.0) times {!service_budget} — the tail of an open-loop
    sim run escaping the bound terms that are supposed to pay for it
    flags a batching/scheduling regression. In-expectation caveat as
    {!check}: choose the factor generously. *)

val cross_check :
  ?ms_factor:float ->
  workload:Sim.Workload.t ->
  metrics:Sim.Metrics.t ->
  recorder:Obs.Recorder.t ->
  unit ->
  (unit, string) result
(** Cross-validate the event-derived attribution ({!Obs.Attrib}) of a
    recorded simulator run against the scheduler's own counters —
    disjoint code paths, so agreement certifies both. Checks, in order:
    bucket conservation (sum = P × makespan, per-worker tiling, no
    drops); attributed core/batch/setup equal the simulator's
    [core_work]/[batch_work]/[setup_work]; per-shard conservation —
    folding the recorder's Batch_start/Batch_end stream per sid
    ({!Obs.Attrib.per_structure}) must show each structure collecting
    exactly the ops the workload assigned it, totals re-summing to the
    sim counters, and no structure batch-busy longer than the makespan;
    [span_realized] ≤ makespan; the {!Obs.Critpath} witness ≤ makespan.
    With [ms_factor], also requires the per-worker serialized-wait
    bucket to stay within
    [ms_factor × ((W+Σᵢnᵢ·sᵢ)/P + m·maxᵢsᵢ) + maxᵢsᵢ] — workers are
    trapped only while batches run or launch, so their waiting is paid
    for by the bound's two batch-execution terms (amortized batch work
    when throughput-bound, m·s(n) when serialization-bound, [m] being
    the DS-depth of the core program); like {!check} this holds in
    expectation, so apply it only to paper-default configurations with
    a generous factor.
    The recorder must be enabled and must have recorded the run whose
    [metrics] are passed. *)
