(* Sharded conformance: drive [Batched.Shard] routing plans through K
   real [Batcher_rt] instances ([Runtime.Shard_rt]) and replay every
   shard's batch linearization — a true linearization by per-shard
   Invariant 1 — against that shard's own sequential oracle.

   Three layers of checking per run:
   - routing: every keyed operation observed in shard s's batches
     must satisfy [Batched.Shard.route key = s];
   - per-shard conformance: each shard's batches replay against a
     private [Oracle.Dict] in the structure's documented phase order,
     diffing every per-op result (cross-shard fan-out sub-operations
     land in shard batches like any other op, so their sub-results are
     checked exactly too);
   - merge: the K final states merged with [Shard.merge_sorted] must be
     byte-equal to the K oracles merged the same way, and a quiescent
     full-domain fan-out query issued after the parallel phase must
     return exactly the merged oracle contents. *)

type report = {
  sc_shards : int;
  sc_ops : int;
  sc_batches : int;
  sc_max_batch : int;
  sc_per_shard_batches : int array;
}

let ints l = "[" ^ String.concat "; " (List.map string_of_int l) ^ "]"

let pairs l =
  "["
  ^ String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l)
  ^ "]"

let int_opt = function None -> "None" | Some v -> "Some " ^ string_of_int v

(* Busy-wait inside the logged run_batch so the batch flag stays set
   long enough for other workers to park records — the same trick as
   [Conformance], so shards produce real multi-operation batches. *)
let spin iters =
  let x = ref 0 in
  for i = 1 to iters do
    x := !x lxor i
  done;
  ignore (Sys.opaque_identity !x)

(* Execute a script of routing plans over K Batcher_rt instances.
   Returns each shard's chronological batch linearization, the shard
   instances, and the summed runtime stats. [finals] are submitted
   after the parallel loop has fully drained, so fan-out queries in
   them observe a quiescent, deterministic state. *)
let drive ?(workers = 3) ~shards ~(spec : ('t, 'op) Batched.Shard.spec)
    ~(script : 'op array) ~(finals : 'op list) () =
  let insts = Array.init shards spec.Batched.Shard.make in
  let batches = Array.make shards [] in
  let pool = Runtime.Pool.create ~num_workers:workers () in
  let stats =
    Fun.protect
      ~finally:(fun () -> Runtime.Pool.teardown pool)
      (fun () ->
        let rt =
          Runtime.Shard_rt.create ~pool ~shards
            ~state:(fun i -> i)
            ~run_batch:(fun _pool shard ops ->
              batches.(shard) <- Array.copy ops :: batches.(shard);
              spin 150_000;
              spec.Batched.Shard.apply insts.(shard) ops)
            ()
        in
        let submit op =
          match spec.Batched.Shard.plan ~shards op with
          | Batched.Shard.Point s -> Runtime.Shard_rt.batchify rt ~shard:s op
          | Batched.Shard.Fanout { sub; merge } ->
              Runtime.Shard_rt.scatter rt sub;
              merge ()
        in
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0
              ~hi:(Array.length script)
              (fun i -> submit script.(i));
            List.iter submit finals);
        Runtime.Shard_rt.total_stats rt)
  in
  (Array.map List.rev batches, insts, stats)

(* Number of per-shard submissions a script op expands to. *)
let op_count ~shards ~(spec : ('t, 'op) Batched.Shard.spec) op =
  match spec.Batched.Shard.plan ~shards op with
  | Batched.Shard.Point _ -> 1
  | Batched.Shard.Fanout { sub; _ } -> Array.length sub

let replay ~name ~shard ~oracle_batch batches =
  let rec go i = function
    | [] -> None
    | b :: rest -> (
        match oracle_batch b with
        | Some e ->
            Some (Printf.sprintf "%s shard %d batch %d: %s" name shard i e)
        | None -> go (i + 1) rest)
  in
  go 0 batches

let check_stats ~name ~shards ~expected (stats : Runtime.Batcher_rt.stats)
    _per_shard =
  if stats.Runtime.Batcher_rt.ops <> expected then
    Some
      (Printf.sprintf "%s (K=%d): %d ops batched, expected %d" name shards
         stats.Runtime.Batcher_rt.ops expected)
  else None

let mk_report ~shards (stats : Runtime.Batcher_rt.stats) per_shard =
  {
    sc_shards = shards;
    sc_ops = stats.Runtime.Batcher_rt.ops;
    sc_batches = stats.Runtime.Batcher_rt.batches;
    sc_max_batch = stats.Runtime.Batcher_rt.max_batch;
    sc_per_shard_batches = Array.map List.length per_shard;
  }

(* ---------- skiplist ---------- *)

let skiplist ?(n_ops = 96) ?(seed = 1) ?(workers = 3) ~shards () =
  try
    let spec = Batched.Shard.skiplist in
    let script =
      Opgen.script ~gen:(Opgen.sharded_skiplist_op ~n:n_ops) ~n:n_ops ~seed
    in
    let final = Batched.Skiplist.range ~lo:min_int ~hi:max_int in
    let per_shard, insts, stats =
      drive ~workers ~shards ~spec ~script ~finals:[ final ] ()
    in
    let expected =
      Array.fold_left (fun acc op -> acc + op_count ~shards ~spec op) 0 script
      + shards
    in
    match check_stats ~name:"skiplist" ~shards ~expected stats per_shard with
    | Some e -> Error e
    | None -> (
        let oracles = Array.init shards (fun _ -> Oracle.Dict.create ()) in
        let err = ref None in
        let fail fmt =
          Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt
        in
        let route_check shard key =
          if Batched.Shard.route ~shards key <> shard then
            fail "key %d found in shard %d, routes to %d" key shard
              (Batched.Shard.route ~shards key)
        in
        let oracle_batch shard o (b : Batched.Skiplist.op array) =
          (* Inserts, then deletes, then queries — Skiplist.run_batch's
             documented phase order. *)
          Array.iter
            (function
              | Batched.Skiplist.Insert r ->
                  route_check shard r.Batched.Skiplist.key;
                  let expect =
                    Oracle.Dict.add_if_absent o r.Batched.Skiplist.key
                  in
                  if r.Batched.Skiplist.inserted <> expect then
                    fail "insert %d: inserted %b, oracle %b"
                      r.Batched.Skiplist.key r.Batched.Skiplist.inserted expect
              | _ -> ())
            b;
          Array.iter
            (function
              | Batched.Skiplist.Delete r ->
                  route_check shard r.Batched.Skiplist.del_key;
                  let expect = Oracle.Dict.remove o r.Batched.Skiplist.del_key in
                  if r.Batched.Skiplist.deleted <> expect then
                    fail "delete %d: deleted %b, oracle %b"
                      r.Batched.Skiplist.del_key r.Batched.Skiplist.deleted
                      expect
              | _ -> ())
            b;
          Array.iter
            (function
              | Batched.Skiplist.Mem r ->
                  route_check shard r.Batched.Skiplist.mem_key;
                  let expect = Oracle.Dict.mem o r.Batched.Skiplist.mem_key in
                  if r.Batched.Skiplist.found <> expect then
                    fail "mem %d: found %b, oracle %b"
                      r.Batched.Skiplist.mem_key r.Batched.Skiplist.found expect
              | Batched.Skiplist.Range r ->
                  let expect =
                    Oracle.Dict.range o ~lo:r.Batched.Skiplist.r_lo
                      ~hi:r.Batched.Skiplist.r_hi
                  in
                  if r.Batched.Skiplist.r_keys <> expect then
                    fail "range [%d,%d): %s, oracle %s" r.Batched.Skiplist.r_lo
                      r.Batched.Skiplist.r_hi
                      (ints r.Batched.Skiplist.r_keys)
                      (ints expect)
              | _ -> ())
            b;
          !err
        in
        let rec shard_loop s =
          if s = shards then None
          else
            match
              replay ~name:"skiplist" ~shard:s
                ~oracle_batch:(oracle_batch s oracles.(s))
                per_shard.(s)
            with
            | Some e -> Some e
            | None -> shard_loop (s + 1)
        in
        match shard_loop 0 with
        | Some e -> Error e
        | None ->
            Array.iter Batched.Skiplist.check_invariants insts;
            let merged =
              Batched.Shard.merge_sorted
                (Array.map Batched.Skiplist.to_list insts)
            in
            let oracle_merged =
              Batched.Shard.merge_sorted (Array.map Oracle.Dict.keys oracles)
            in
            if not (String.equal (ints merged) (ints oracle_merged)) then
              Error
                (Printf.sprintf
                   "skiplist: merged final state diverges\n\
                   \  structure: %s\n\
                   \  oracle:    %s"
                   (ints merged) (ints oracle_merged))
            else begin
              (* The quiescent full-domain fan-out must have gathered
                 exactly the merged contents. *)
              match final with
              | Batched.Skiplist.Range r ->
                  if
                    String.equal
                      (ints r.Batched.Skiplist.r_keys)
                      (ints oracle_merged)
                  then Ok (mk_report ~shards stats per_shard)
                  else
                    Error
                      (Printf.sprintf
                         "skiplist: cross-shard range merge diverges\n\
                         \  merged: %s\n\
                         \  oracle: %s"
                         (ints r.Batched.Skiplist.r_keys)
                         (ints oracle_merged))
              | _ -> assert false
            end)
  with
  | Failure msg -> Error ("skiplist: " ^ msg)
  | Invalid_argument msg -> Error ("skiplist: " ^ msg)

(* ---------- hashtable ---------- *)

let hashtable ?(n_ops = 96) ?(seed = 1) ?(workers = 3) ~shards () =
  try
    let spec = Batched.Shard.hashtable in
    let script = Opgen.script ~gen:(Opgen.hashtable_op ~n:n_ops) ~n:n_ops ~seed in
    let per_shard, insts, stats =
      drive ~workers ~shards ~spec ~script ~finals:[] ()
    in
    match
      check_stats ~name:"hashtable" ~shards ~expected:n_ops stats per_shard
    with
    | Some e -> Error e
    | None -> (
        let oracles = Array.init shards (fun _ -> Oracle.Dict.create ()) in
        let err = ref None in
        let fail fmt =
          Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt
        in
        let route_check shard key =
          if Batched.Shard.route ~shards key <> shard then
            fail "key %d found in shard %d, routes to %d" key shard
              (Batched.Shard.route ~shards key)
        in
        let oracle_batch shard o (b : Batched.Hashtable.op array) =
          (* Records apply in batch order per bucket, exactly as in the
             unsharded conformance replay. *)
          Array.iter
            (function
              | Batched.Hashtable.Insert r ->
                  route_check shard r.Batched.Hashtable.i_key;
                  let expect =
                    Oracle.Dict.insert o ~key:r.Batched.Hashtable.i_key
                      ~value:r.Batched.Hashtable.i_value
                  in
                  if r.Batched.Hashtable.replaced <> expect then
                    fail "insert %d: replaced %b, oracle %b"
                      r.Batched.Hashtable.i_key r.Batched.Hashtable.replaced
                      expect
              | Batched.Hashtable.Lookup r ->
                  route_check shard r.Batched.Hashtable.l_key;
                  let expect = Oracle.Dict.find o r.Batched.Hashtable.l_key in
                  if r.Batched.Hashtable.l_value <> expect then
                    fail "lookup %d: %s, oracle %s" r.Batched.Hashtable.l_key
                      (int_opt r.Batched.Hashtable.l_value)
                      (int_opt expect)
              | Batched.Hashtable.Remove r ->
                  route_check shard r.Batched.Hashtable.r_key;
                  let expect = Oracle.Dict.remove o r.Batched.Hashtable.r_key in
                  if r.Batched.Hashtable.removed <> expect then
                    fail "remove %d: removed %b, oracle %b"
                      r.Batched.Hashtable.r_key r.Batched.Hashtable.removed
                      expect)
            b;
          !err
        in
        let rec shard_loop s =
          if s = shards then None
          else
            match
              replay ~name:"hashtable" ~shard:s
                ~oracle_batch:(oracle_batch s oracles.(s))
                per_shard.(s)
            with
            | Some e -> Some e
            | None -> shard_loop (s + 1)
        in
        match shard_loop 0 with
        | Some e -> Error e
        | None ->
            Array.iter Batched.Hashtable.check_invariants insts;
            let merged =
              List.concat_map Batched.Hashtable.to_sorted_bindings
                (Array.to_list insts)
              |> List.sort compare
            in
            let oracle_merged =
              List.concat_map Oracle.Dict.bindings (Array.to_list oracles)
              |> List.sort compare
            in
            if String.equal (pairs merged) (pairs oracle_merged) then
              Ok (mk_report ~shards stats per_shard)
            else
              Error
                (Printf.sprintf
                   "hashtable: merged final state diverges\n\
                   \  structure: %s\n\
                   \  oracle:    %s"
                   (pairs merged) (pairs oracle_merged)))
  with
  | Failure msg -> Error ("hashtable: " ^ msg)
  | Invalid_argument msg -> Error ("hashtable: " ^ msg)

(* ---------- ostree ---------- *)

let ostree ?(n_ops = 96) ?(seed = 1) ?(workers = 3) ~shards () =
  try
    let spec = Batched.Shard.ostree in
    let script =
      Opgen.script ~gen:(Opgen.sharded_ostree_op ~n:n_ops) ~n:n_ops ~seed
    in
    let final_range = Batched.Ostree.range_op ~lo:min_int ~hi:max_int in
    let rank_pivot = n_ops in
    let final_rank = Batched.Ostree.rank_op rank_pivot in
    let per_shard, insts, stats =
      drive ~workers ~shards ~spec ~script ~finals:[ final_range; final_rank ]
        ()
    in
    let expected =
      Array.fold_left (fun acc op -> acc + op_count ~shards ~spec op) 0 script
      + (2 * shards)
    in
    match check_stats ~name:"ostree" ~shards ~expected stats per_shard with
    | Some e -> Error e
    | None -> (
        let oracles = Array.init shards (fun _ -> Oracle.Dict.create ()) in
        let err = ref None in
        let fail fmt =
          Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt
        in
        let route_check shard key =
          if Batched.Shard.route ~shards key <> shard then
            fail "key %d found in shard %d, routes to %d" key shard
              (Batched.Shard.route ~shards key)
        in
        let oracle_batch shard o (b : Batched.Ostree.op array) =
          (* Inserts, then deletes, then queries — Ostree.run_batch's
             phase order. Select never reaches a shard batch. *)
          Array.iter
            (function
              | Batched.Ostree.Insert r ->
                  route_check shard r.Batched.Ostree.key;
                  let expect = Oracle.Dict.add_if_absent o r.Batched.Ostree.key in
                  if r.Batched.Ostree.inserted <> expect then
                    fail "insert %d: inserted %b, oracle %b"
                      r.Batched.Ostree.key r.Batched.Ostree.inserted expect
              | _ -> ())
            b;
          Array.iter
            (function
              | Batched.Ostree.Delete r ->
                  route_check shard r.Batched.Ostree.del_key;
                  let expect = Oracle.Dict.remove o r.Batched.Ostree.del_key in
                  if r.Batched.Ostree.deleted <> expect then
                    fail "delete %d: deleted %b, oracle %b"
                      r.Batched.Ostree.del_key r.Batched.Ostree.deleted expect
              | _ -> ())
            b;
          Array.iter
            (function
              | Batched.Ostree.Rank r ->
                  let expect = Oracle.Dict.rank o r.Batched.Ostree.rank_of in
                  if r.Batched.Ostree.rank_result <> expect then
                    fail "rank %d: %d, oracle %d" r.Batched.Ostree.rank_of
                      r.Batched.Ostree.rank_result expect
              | Batched.Ostree.Range r ->
                  let expect =
                    Oracle.Dict.range o ~lo:r.Batched.Ostree.r_lo
                      ~hi:r.Batched.Ostree.r_hi
                  in
                  if r.Batched.Ostree.r_keys <> expect then
                    fail "range [%d,%d): %s, oracle %s" r.Batched.Ostree.r_lo
                      r.Batched.Ostree.r_hi
                      (ints r.Batched.Ostree.r_keys)
                      (ints expect)
              | Batched.Ostree.Select _ ->
                  fail "Select reached a shard batch"
              | _ -> ())
            b;
          !err
        in
        let rec shard_loop s =
          if s = shards then None
          else
            match
              replay ~name:"ostree" ~shard:s
                ~oracle_batch:(oracle_batch s oracles.(s))
                per_shard.(s)
            with
            | Some e -> Some e
            | None -> shard_loop (s + 1)
        in
        match shard_loop 0 with
        | Some e -> Error e
        | None -> (
            Array.iter (fun t -> Batched.Ostree.check_invariants !t) insts;
            let merged =
              Batched.Shard.merge_sorted
                (Array.map (fun t -> Batched.Ostree.to_sorted_list !t) insts)
            in
            let oracle_merged =
              Batched.Shard.merge_sorted (Array.map Oracle.Dict.keys oracles)
            in
            if not (String.equal (ints merged) (ints oracle_merged)) then
              Error
                (Printf.sprintf
                   "ostree: merged final state diverges\n\
                   \  structure: %s\n\
                   \  oracle:    %s"
                   (ints merged) (ints oracle_merged))
            else
              match (final_range, final_rank) with
              | Batched.Ostree.Range r, Batched.Ostree.Rank k ->
                  let expect_rank =
                    List.length (List.filter (fun x -> x < rank_pivot) oracle_merged)
                  in
                  if
                    not
                      (String.equal
                         (ints r.Batched.Ostree.r_keys)
                         (ints oracle_merged))
                  then
                    Error
                      (Printf.sprintf
                         "ostree: cross-shard range merge diverges\n\
                         \  merged: %s\n\
                         \  oracle: %s"
                         (ints r.Batched.Ostree.r_keys)
                         (ints oracle_merged))
                  else if k.Batched.Ostree.rank_result <> expect_rank then
                    Error
                      (Printf.sprintf
                         "ostree: cross-shard rank %d summed to %d, oracle %d"
                         rank_pivot k.Batched.Ostree.rank_result expect_rank)
                  else Ok (mk_report ~shards stats per_shard)
              | _ -> assert false))
  with
  | Failure msg -> Error ("ostree: " ^ msg)
  | Invalid_argument msg -> Error ("ostree: " ^ msg)

(* ---------- registry ---------- *)

let structures = [ "skiplist"; "hashtable"; "ostree" ]

let run ?n_ops ?seed ?workers ~name ~shards () =
  match name with
  | "skiplist" -> skiplist ?n_ops ?seed ?workers ~shards ()
  | "hashtable" -> hashtable ?n_ops ?seed ?workers ~shards ()
  | "ostree" -> ostree ?n_ops ?seed ?workers ~shards ()
  | _ -> invalid_arg ("Shard_conf.run: unknown structure " ^ name)
