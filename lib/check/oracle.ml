(* Naive reference implementations. Clarity beats efficiency throughout:
   these exist to be obviously correct, not fast. *)

module Dict = struct
  (* Ascending assoc list. *)
  type t = { mutable items : (int * int) list }

  let create () = { items = [] }
  let size t = List.length t.items

  let insert t ~key ~value =
    let rec go = function
      | [] -> ([ (key, value) ], false)
      | (k, _) :: rest when k = key -> ((key, value) :: rest, true)
      | (k, v) :: rest when k > key -> ((key, value) :: (k, v) :: rest, false)
      | kv :: rest ->
          let rest', replaced = go rest in
          (kv :: rest', replaced)
    in
    let items, replaced = go t.items in
    t.items <- items;
    replaced

  let mem t key = List.mem_assoc key t.items

  let add_if_absent t key =
    if mem t key then false
    else begin
      ignore (insert t ~key ~value:key);
      true
    end

  let remove t key =
    let present = mem t key in
    if present then t.items <- List.remove_assoc key t.items;
    present

  let find t key = List.assoc_opt key t.items

  let range t ~lo ~hi =
    List.filter_map
      (fun (k, _) -> if lo <= k && k < hi then Some k else None)
      t.items
  let rank t key = List.length (List.filter (fun (k, _) -> k < key) t.items)
  let select t i = List.nth_opt (List.map fst t.items) i
  let keys t = List.map fst t.items
  let bindings t = t.items
end

module Fifo = struct
  type t = { mutable items : int list (* front first *) }

  let create () = { items = [] }
  let enqueue t v = t.items <- t.items @ [ v ]

  let dequeue t =
    match t.items with
    | [] -> None
    | v :: rest ->
        t.items <- rest;
        Some v

  let to_list t = t.items
end

module Lifo = struct
  type t = { mutable items : int list (* top first *) }

  let create () = { items = [] }
  let push t v = t.items <- v :: t.items

  let pop t =
    match t.items with
    | [] -> None
    | v :: rest ->
        t.items <- rest;
        Some v

  let to_list t = List.rev t.items
end

module Heap = struct
  type t = { mutable items : (int * int) array; mutable len : int }

  let create () = { items = Array.make 16 (0, 0); len = 0 }
  let size t = t.len

  let swap t i j =
    let tmp = t.items.(i) in
    t.items.(i) <- t.items.(j);
    t.items.(j) <- tmp

  let prio t i = fst t.items.(i)

  let rec sift_up t i =
    let parent = (i - 1) / 2 in
    if i > 0 && prio t i < prio t parent then begin
      swap t i parent;
      sift_up t parent
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.len && prio t l < prio t !smallest then smallest := l;
    if r < t.len && prio t r < prio t !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let insert t ~prio ~value =
    if t.len = Array.length t.items then begin
      let bigger = Array.make (2 * t.len) (0, 0) in
      Array.blit t.items 0 bigger 0 t.len;
      t.items <- bigger
    end;
    t.items.(t.len) <- (prio, value);
    t.len <- t.len + 1;
    sift_up t (t.len - 1)

  let extract_min t =
    if t.len = 0 then None
    else begin
      let top = t.items.(0) in
      t.len <- t.len - 1;
      t.items.(0) <- t.items.(t.len);
      sift_down t 0;
      Some top
    end

  let to_sorted_list t =
    Array.to_list (Array.sub t.items 0 t.len)
    |> List.sort compare
end

module Counter = struct
  type t = { mutable count : int }

  let create () = { count = 0 }

  let add t amount =
    t.count <- t.count + amount;
    t.count

  let value t = t.count
end

module Order = struct
  type token = int
  type t = { mutable items : token list; mutable next : int }

  let create () =
    ({ items = [ 0 ]; next = 1 }, 0)

  let insert_after t tok =
    let fresh = t.next in
    t.next <- t.next + 1;
    let rec go = function
      | [] -> invalid_arg "Oracle.Order.insert_after: unknown token"
      | x :: rest when x = tok -> x :: fresh :: rest
      | x :: rest -> x :: go rest
    in
    t.items <- go t.items;
    fresh

  let index t tok =
    let rec go i = function
      | [] -> invalid_arg "Oracle.Order.index: unknown token"
      | x :: _ when x = tok -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 t.items

  let precedes t a b = a <> b && index t a < index t b
  let size t = List.length t.items
end

module Sp = struct
  type node = { id : int; eng : Order.token; heb : Order.token }

  type t = {
    english : Order.t;
    hebrew : Order.t;
    mutable next_id : int;
  }

  let create () =
    let english, eng0 = Order.create () in
    let hebrew, heb0 = Order.create () in
    ({ english; hebrew; next_id = 1 }, { id = 0; eng = eng0; heb = heb0 })

  let fresh t ~eng ~heb =
    let n = { id = t.next_id; eng; heb } in
    t.next_id <- t.next_id + 1;
    n

  (* English: s < l < r < c.  Hebrew: s < r < l < c. *)
  let fork t s =
    let eng_l = Order.insert_after t.english s.eng in
    let eng_r = Order.insert_after t.english eng_l in
    let eng_c = Order.insert_after t.english eng_r in
    let heb_r = Order.insert_after t.hebrew s.heb in
    let heb_l = Order.insert_after t.hebrew heb_r in
    let heb_c = Order.insert_after t.hebrew heb_l in
    let left = fresh t ~eng:eng_l ~heb:heb_l in
    let right = fresh t ~eng:eng_r ~heb:heb_r in
    let continuation = fresh t ~eng:eng_c ~heb:heb_c in
    (left, right, continuation)

  let precedes t a b =
    a.id <> b.id
    && Order.precedes t.english a.eng b.eng
    && Order.precedes t.hebrew a.heb b.heb

  let nodes t = t.next_id
  let indices t n = (Order.index t.english n.eng, Order.index t.hebrew n.heb)
end
