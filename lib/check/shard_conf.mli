(** Sharded conformance: the cross-shard analogue of {!Conformance}.

    Each run drives a seeded operation script through
    [Runtime.Shard_rt] — K real [Batcher_rt] instances over one pool,
    with ops routed by [Batched.Shard.plan] (point ops to their owning
    shard, fan-out queries scattered one sub-operation per shard and
    merged). Every shard's batch linearization is then replayed against
    that shard's own {!Oracle.Dict} in the structure's documented phase
    order, checking:

    - {b routing} — every keyed op observed in shard s's batches
      satisfies [route key = s];
    - {b per-shard results} — each per-op result (including fan-out
      sub-results: per-shard ranges, per-shard ranks) matches the
      shard's oracle exactly;
    - {b merge} — the K final states merged by [Shard.merge_sorted]
      are byte-equal to the K oracles merged the same way, and a
      quiescent full-domain fan-out query (range; for the ostree also
      a rank) issued after the parallel phase returns exactly the
      merged oracle answer.

    With [shards = 1] this degenerates to single-instance conformance,
    so K ∈ {1, 2, 4} sweeps also regression-test the combinator's
    identity case. *)

type report = {
  sc_shards : int;
  sc_ops : int;  (** ops batched, cross-shard sub-operations included *)
  sc_batches : int;
  sc_max_batch : int;
  sc_per_shard_batches : int array;  (** batches per shard, index = shard *)
}

val skiplist :
  ?n_ops:int ->
  ?seed:int ->
  ?workers:int ->
  shards:int ->
  unit ->
  (report, string) result
(** Point inserts/mems/deletes with ~1/8 cross-shard range queries. *)

val hashtable :
  ?n_ops:int ->
  ?seed:int ->
  ?workers:int ->
  shards:int ->
  unit ->
  (report, string) result
(** All-point workload (the hash table has no cross-shard queries). *)

val ostree :
  ?n_ops:int ->
  ?seed:int ->
  ?workers:int ->
  shards:int ->
  unit ->
  (report, string) result
(** Point inserts/deletes with cross-shard ranks (summed) and range
    queries (merged); Select is excluded — not shardable. *)

val structures : string list
(** Names accepted by {!run}: ["skiplist"; "hashtable"; "ostree"]. *)

val run :
  ?n_ops:int ->
  ?seed:int ->
  ?workers:int ->
  name:string ->
  shards:int ->
  unit ->
  (report, string) result
(** Dispatch by structure name; [Invalid_argument] on unknown names. *)
