(* The conformance engine. One seeded script per structure, executed
   through the real runtime and through the simulator; each execution's
   batch linearization (the order [run_batch] observed — a true
   linearization by Invariant 1) is replayed against the oracle with the
   structure's documented phase order inside each batch. *)

type 'op harness = {
  gen : Util.Rng.t -> int -> 'op;
  run_batch : 'op array -> unit;
  dump : unit -> string;
      (* renders final state; also runs the structure's own
         check_invariants where it has one *)
  oracle_batch : 'op array -> string option;
      (* applies one batch to the oracle, diffing per-op results *)
  oracle_dump : unit -> string;
}

type subject =
  | Subject : {
      name : string;
      fresh : n:int -> 'op harness;
      cost_model : unit -> Batched.Model.t;
    }
      -> subject

let subject_name (Subject s) = s.name

type report = {
  subject : string;
  rt_batches : int;
  rt_max_batch : int;
  sim_batches : int;
  sim_makespan : int;
}

(* ---------- rendering helpers ---------- *)

let ints l = "[" ^ String.concat "; " (List.map string_of_int l) ^ "]"

let pairs l =
  "["
  ^ String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l)
  ^ "]"

let int_opt = function None -> "None" | Some v -> "Some " ^ string_of_int v

let pair_opt = function
  | None -> "None"
  | Some (a, b) -> Printf.sprintf "Some (%d,%d)" a b

(* ---------- subjects ---------- *)

let counter =
  Subject
    {
      name = "counter";
      cost_model = (fun () -> Batched.Counter.sim_model ());
      fresh =
        (fun ~n:_ ->
          let t = Batched.Counter.create () in
          let o = Oracle.Counter.create () in
          {
            gen = Opgen.counter_op;
            run_batch = Batched.Counter.run_batch t;
            dump = (fun () -> string_of_int (Batched.Counter.value t));
            oracle_batch =
              (fun b ->
                let err = ref None in
                Array.iter
                  (fun (op : Batched.Counter.op) ->
                    let expect = Oracle.Counter.add o op.amount in
                    if !err = None && op.result <> expect then
                      err :=
                        Some
                          (Printf.sprintf "add %d: result %d, oracle %d"
                             op.amount op.result expect))
                  b;
                !err);
            oracle_dump = (fun () -> string_of_int (Oracle.Counter.value o));
          });
    }

let fifo =
  Subject
    {
      name = "fifo";
      cost_model = (fun () -> Batched.Fifo.sim_model ~dequeue_fraction:0.4 ());
      fresh =
        (fun ~n:_ ->
          let t = Batched.Fifo.create () in
          let o = Oracle.Fifo.create () in
          {
            gen = Opgen.fifo_op;
            run_batch = Batched.Fifo.run_batch t;
            dump =
              (fun () ->
                Batched.Fifo.check_invariants t;
                ints (Batched.Fifo.to_list t));
            oracle_batch =
              (fun b ->
                (* ENQUEUE phase then DEQUEUE phase, batch order each. *)
                Array.iter
                  (function
                    | Batched.Fifo.Enqueue v -> Oracle.Fifo.enqueue o v
                    | Batched.Fifo.Dequeue _ -> ())
                  b;
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Fifo.Enqueue _ -> ()
                    | Batched.Fifo.Dequeue r ->
                        let expect = Oracle.Fifo.dequeue o in
                        if !err = None && r.dequeued <> expect then
                          err :=
                            Some
                              (Printf.sprintf "dequeue: %s, oracle %s"
                                 (int_opt r.dequeued) (int_opt expect)))
                  b;
                !err);
            oracle_dump = (fun () -> ints (Oracle.Fifo.to_list o));
          });
    }

let stack =
  Subject
    {
      name = "stack";
      cost_model = (fun () -> Batched.Stack.sim_model ~pop_fraction:0.4 ());
      fresh =
        (fun ~n:_ ->
          let t = Batched.Stack.create () in
          let o = Oracle.Lifo.create () in
          {
            gen = Opgen.stack_op;
            run_batch = Batched.Stack.run_batch t;
            dump = (fun () -> ints (Batched.Stack.to_list t));
            oracle_batch =
              (fun b ->
                Array.iter
                  (function
                    | Batched.Stack.Push v -> Oracle.Lifo.push o v
                    | Batched.Stack.Pop _ -> ())
                  b;
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Stack.Push _ -> ()
                    | Batched.Stack.Pop r ->
                        let expect = Oracle.Lifo.pop o in
                        if !err = None && r.popped <> expect then
                          err :=
                            Some
                              (Printf.sprintf "pop: %s, oracle %s"
                                 (int_opt r.popped) (int_opt expect)))
                  b;
                !err);
            oracle_dump = (fun () -> ints (Oracle.Lifo.to_list o));
          });
    }

let pqueue =
  Subject
    {
      name = "pqueue";
      cost_model = (fun () -> Batched.Pqueue.sim_model ());
      fresh =
        (fun ~n:_ ->
          let t = ref Batched.Pqueue.empty in
          let o = Oracle.Heap.create () in
          {
            gen = Opgen.pqueue_op;
            run_batch = (fun ops -> t := Batched.Pqueue.run_batch !t ops);
            dump =
              (fun () ->
                Batched.Pqueue.check_invariants !t;
                pairs (Batched.Pqueue.to_sorted_list !t));
            oracle_batch =
              (fun b ->
                (* All inserts take effect first; extractions then serve
                   in batch order. Priorities are distinct by generator
                   construction, so the order is fully determined. *)
                Array.iter
                  (function
                    | Batched.Pqueue.Insert (prio, value) ->
                        Oracle.Heap.insert o ~prio ~value
                    | Batched.Pqueue.Extract_min _ -> ())
                  b;
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Pqueue.Insert _ -> ()
                    | Batched.Pqueue.Extract_min r ->
                        let expect = Oracle.Heap.extract_min o in
                        if !err = None && r.extracted <> expect then
                          err :=
                            Some
                              (Printf.sprintf "extract_min: %s, oracle %s"
                                 (pair_opt r.extracted) (pair_opt expect)))
                  b;
                !err);
            oracle_dump = (fun () -> pairs (Oracle.Heap.to_sorted_list o));
          });
    }

let hashtable =
  Subject
    {
      name = "hashtable";
      cost_model = (fun () -> Batched.Hashtable.sim_model ());
      fresh =
        (fun ~n ->
          let t = Batched.Hashtable.create () in
          let o = Oracle.Dict.create () in
          {
            gen = Opgen.hashtable_op ~n;
            run_batch = Batched.Hashtable.run_batch t;
            dump =
              (fun () ->
                Batched.Hashtable.check_invariants t;
                pairs (Batched.Hashtable.to_sorted_bindings t));
            oracle_batch =
              (fun b ->
                (* Records apply in batch order per bucket; replaying the
                   whole batch in batch order preserves every bucket's
                   order, so results match exactly. *)
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Hashtable.Insert r ->
                        let expect =
                          Oracle.Dict.insert o ~key:r.i_key ~value:r.i_value
                        in
                        if !err = None && r.replaced <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "insert %d: replaced %b, oracle %b" r.i_key
                                 r.replaced expect)
                    | Batched.Hashtable.Lookup r ->
                        let expect = Oracle.Dict.find o r.l_key in
                        if !err = None && r.l_value <> expect then
                          err :=
                            Some
                              (Printf.sprintf "lookup %d: %s, oracle %s"
                                 r.l_key (int_opt r.l_value) (int_opt expect))
                    | Batched.Hashtable.Remove r ->
                        let expect = Oracle.Dict.remove o r.r_key in
                        if !err = None && r.removed <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "remove %d: removed %b, oracle %b" r.r_key
                                 r.removed expect))
                  b;
                !err);
            oracle_dump = (fun () -> pairs (Oracle.Dict.bindings o));
          });
    }

let skiplist =
  Subject
    {
      name = "skiplist";
      cost_model = (fun () -> Batched.Skiplist.sim_model ~initial_size:1024 ());
      fresh =
        (fun ~n ->
          let t = Batched.Skiplist.create () in
          let o = Oracle.Dict.create () in
          {
            gen = Opgen.skiplist_op ~n;
            run_batch = Batched.Skiplist.run_batch t;
            dump =
              (fun () ->
                Batched.Skiplist.check_invariants t;
                ints (Batched.Skiplist.to_list t));
            oracle_batch =
              (fun b ->
                (* Inserts, then deletes, then membership. The insert
                   phase stable-sorts, so among equal keys batch order is
                   preserved — replaying inserts in batch order marks the
                   same record [inserted]. *)
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Skiplist.Insert r ->
                        let expect = Oracle.Dict.add_if_absent o r.key in
                        if !err = None && r.inserted <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "insert %d: inserted %b, oracle %b" r.key
                                 r.inserted expect)
                    | _ -> ())
                  b;
                Array.iter
                  (function
                    | Batched.Skiplist.Delete r ->
                        let expect = Oracle.Dict.remove o r.del_key in
                        if !err = None && r.deleted <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "delete %d: deleted %b, oracle %b" r.del_key
                                 r.deleted expect)
                    | _ -> ())
                  b;
                Array.iter
                  (function
                    | Batched.Skiplist.Mem r ->
                        let expect = Oracle.Dict.mem o r.mem_key in
                        if !err = None && r.found <> expect then
                          err :=
                            Some
                              (Printf.sprintf "mem %d: found %b, oracle %b"
                                 r.mem_key r.found expect)
                    | _ -> ())
                  b;
                !err);
            oracle_dump = (fun () -> ints (Oracle.Dict.keys o));
          });
    }

let two_three =
  Subject
    {
      name = "two_three";
      cost_model = (fun () -> Batched.Two_three.sim_model ~initial_size:512 ());
      fresh =
        (fun ~n ->
          let t = ref Batched.Two_three.empty in
          let o = Oracle.Dict.create () in
          {
            gen = Opgen.two_three_op ~n;
            run_batch = (fun ops -> t := Batched.Two_three.run_batch !t ops);
            dump =
              (fun () ->
                Batched.Two_three.check_invariants !t;
                ints (Batched.Two_three.to_sorted_list !t));
            oracle_batch =
              (fun b ->
                (* Median-first inserts (sort_uniq — generator keys are
                   injective, so no in-batch duplicates), then deletes in
                   batch order, then membership over the net result. *)
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Two_three.Insert r ->
                        let expect = Oracle.Dict.add_if_absent o r.key in
                        if !err = None && r.inserted <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "insert %d: inserted %b, oracle %b" r.key
                                 r.inserted expect)
                    | _ -> ())
                  b;
                Array.iter
                  (function
                    | Batched.Two_three.Delete r ->
                        let expect = Oracle.Dict.remove o r.del_key in
                        if !err = None && r.deleted <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "delete %d: deleted %b, oracle %b" r.del_key
                                 r.deleted expect)
                    | _ -> ())
                  b;
                Array.iter
                  (function
                    | Batched.Two_three.Mem r ->
                        let expect = Oracle.Dict.mem o r.mem_key in
                        if !err = None && r.found <> expect then
                          err :=
                            Some
                              (Printf.sprintf "mem %d: found %b, oracle %b"
                                 r.mem_key r.found expect)
                    | _ -> ())
                  b;
                !err);
            oracle_dump = (fun () -> ints (Oracle.Dict.keys o));
          });
    }

let ostree =
  Subject
    {
      name = "ostree";
      cost_model = (fun () -> Batched.Ostree.sim_model ~initial_size:512 ());
      fresh =
        (fun ~n ->
          let t = ref Batched.Ostree.empty in
          let o = Oracle.Dict.create () in
          {
            gen = Opgen.ostree_op ~n;
            run_batch = (fun ops -> t := Batched.Ostree.run_batch !t ops);
            dump =
              (fun () ->
                Batched.Ostree.check_invariants !t;
                ints (Batched.Ostree.to_sorted_list !t));
            oracle_batch =
              (fun b ->
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Ostree.Insert r ->
                        let expect = Oracle.Dict.add_if_absent o r.key in
                        if !err = None && r.inserted <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "insert %d: inserted %b, oracle %b" r.key
                                 r.inserted expect)
                    | _ -> ())
                  b;
                Array.iter
                  (function
                    | Batched.Ostree.Delete r ->
                        let expect = Oracle.Dict.remove o r.del_key in
                        if !err = None && r.deleted <> expect then
                          err :=
                            Some
                              (Printf.sprintf
                                 "delete %d: deleted %b, oracle %b" r.del_key
                                 r.deleted expect)
                    | _ -> ())
                  b;
                Array.iter
                  (function
                    | Batched.Ostree.Rank r ->
                        let expect = Oracle.Dict.rank o r.rank_of in
                        if !err = None && r.rank_result <> expect then
                          err :=
                            Some
                              (Printf.sprintf "rank %d: %d, oracle %d"
                                 r.rank_of r.rank_result expect)
                    | Batched.Ostree.Select s ->
                        let expect = Oracle.Dict.select o s.index in
                        if !err = None && s.selected <> expect then
                          err :=
                            Some
                              (Printf.sprintf "select %d: %s, oracle %s"
                                 s.index (int_opt s.selected) (int_opt expect))
                    | _ -> ())
                  b;
                !err);
            oracle_dump = (fun () -> ints (Oracle.Dict.keys o));
          });
    }

(* Render the full strict-precedence matrix over a node list; both sides
   use the same registry order, so equal strings mean equal relations. *)
let precedes_matrix nodes precedes =
  let nodes = Array.of_list nodes in
  let buf = Buffer.create (Array.length nodes * (Array.length nodes + 1)) in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          Buffer.add_char buf (if i <> j && precedes a b then '1' else '0'))
        nodes;
      Buffer.add_char buf '\n')
    nodes;
  Buffer.contents buf

let sp_order =
  Subject
    {
      name = "sp_order";
      cost_model = (fun () -> Batched.Sp_order.sim_model ());
      fresh =
        (fun ~n:_ ->
          let t, root = Batched.Sp_order.create () in
          let o, oroot = Oracle.Sp.create () in
          (* strand -> oracle node, newest first; every script op is a
             fork of the root, which NESTS (the continuation chains), so
             batching-order differences exercise real order churn. *)
          let reg = ref [ (root, oroot) ] in
          let lookup s =
            match List.assq_opt s !reg with
            | Some node -> node
            | None -> failwith "sp_order: strand not registered"
          in
          {
            gen = (fun _rng _i -> Batched.Sp_order.fork_op root);
            run_batch = Batched.Sp_order.run_batch t;
            dump =
              (fun () ->
                Batched.Sp_order.check_invariants t;
                let strands = List.rev_map fst !reg in
                precedes_matrix strands (Batched.Sp_order.precedes_seq t));
            oracle_batch =
              (fun b ->
                let err = ref None in
                Array.iter
                  (function
                    | Batched.Sp_order.Fork r -> (
                        let l, rt, c = Oracle.Sp.fork o (lookup r.fork_of) in
                        match (r.left, r.right, r.continuation) with
                        | Some left, Some right, Some cont ->
                            reg :=
                              (cont, c) :: (right, rt) :: (left, l) :: !reg
                        | _ ->
                            if !err = None then
                              err := Some "fork: result strand missing")
                    | Batched.Sp_order.Precedes q ->
                        let expect =
                          Oracle.Sp.precedes o (lookup q.q_a) (lookup q.q_b)
                        in
                        if !err = None && q.q_precedes <> expect then
                          err :=
                            Some
                              (Printf.sprintf "precedes: %b, oracle %b"
                                 q.q_precedes expect))
                  b;
                !err);
            oracle_dump =
              (fun () ->
                let nodes =
                  Array.of_list (List.rev_map (fun (_, n) -> n) !reg)
                in
                (* Snapshot both order positions once; each pair is then
                   O(1), keeping the O(n^2) matrix cheap. *)
                let idx = Array.map (Oracle.Sp.indices o) nodes in
                let n = Array.length nodes in
                let buf = Buffer.create (n * (n + 1)) in
                for i = 0 to n - 1 do
                  for j = 0 to n - 1 do
                    let (ei, hi) = idx.(i) and (ej, hj) = idx.(j) in
                    Buffer.add_char buf
                      (if i <> j && ei < ej && hi < hj then '1' else '0')
                  done;
                  Buffer.add_char buf '\n'
                done;
                Buffer.contents buf);
          });
    }

let subjects =
  [
    counter; fifo; stack; pqueue; hashtable; skiplist; two_three; ostree;
    sp_order;
  ]

let find name =
  List.find (fun (Subject s) -> String.equal s.name name) subjects

(* ---------- the engine ---------- *)

let replay ~path ~oracle_batch batches =
  let rec go i = function
    | [] -> None
    | b :: rest -> (
        match oracle_batch b with
        | Some e -> Some (Printf.sprintf "%s batch %d: %s" path i e)
        | None -> go (i + 1) rest)
  in
  go 0 batches

let diff_state ~path ~dump ~oracle_dump =
  let s = dump () and o = oracle_dump () in
  if String.equal s o then None
  else
    Some
      (Printf.sprintf "%s: final state diverges\n  structure: %s\n  oracle:    %s"
         path s o)

let check ~path ~h batches =
  match replay ~path ~oracle_batch:h.oracle_batch batches with
  | Some e -> Some e
  | None -> diff_state ~path ~dump:h.dump ~oracle_dump:h.oracle_dump

(* Busy-wait inside the logged run_batch: a batch that takes a while to
   execute leaves the batch flag set long enough for other workers (or,
   on a single core, other preempted domains) to park their records, so
   the runtime path actually produces multi-operation batches instead of
   degenerating into 96 singletons. *)
let spin iters =
  let x = ref 0 in
  for i = 1 to iters do
    x := !x lxor i
  done;
  ignore (Sys.opaque_identity !x)

let run ?(n_ops = 96) ?(seed = 1) ?(workers = 3) ?(sim_p = 4) ?backoff
    ?(mode = Runtime.Batcher_rt.Faa_array) (Subject s) =
  try
    (* Path 1: the real runtime. Ops submitted from a parallel loop at
       grain 1; run_batch logs the batches the CAS race produced. *)
    let h = s.fresh ~n:n_ops in
    let script = Opgen.script ~gen:h.gen ~n:n_ops ~seed in
    let rt_batches = ref [] in
    let pool = Runtime.Pool.create ?backoff ~num_workers:workers () in
    let stats =
      Fun.protect
        ~finally:(fun () -> Runtime.Pool.teardown pool)
        (fun () ->
          let b =
            Runtime.Batcher_rt.create ~mode ~pool ~state:()
              ~run_batch:(fun _pool () ops ->
                rt_batches := Array.copy ops :: !rt_batches;
                spin 200_000;
                h.run_batch ops)
              ()
          in
          Runtime.Pool.run pool (fun () ->
              Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n_ops (fun i ->
                  Runtime.Batcher_rt.batchify b script.(i)));
          Runtime.Batcher_rt.stats b)
    in
    if stats.ops <> n_ops then
      Error
        (Printf.sprintf "%s runtime: %d ops batched, expected %d" s.name
           stats.ops n_ops)
    else
      match check ~path:"runtime" ~h (List.rev !rt_batches) with
      | Some e -> Error (s.name ^ " " ^ e)
      | None -> (
          (* Path 2: the simulator, with a second structure instance
             driven from inside the cost model — per-op results thread
             through the simulated schedule. *)
          let h2 = s.fresh ~n:n_ops in
          let script2 = Opgen.script ~gen:h2.gen ~n:n_ops ~seed in
          let sim_batches = ref [] in
          let inner = s.cost_model () in
          let model =
            {
              Batched.Model.name = inner.Batched.Model.name;
              reset = inner.Batched.Model.reset;
              batch_cost =
                (fun idxs ->
                  let ops = Array.map (fun i -> script2.(i)) idxs in
                  sim_batches := ops :: !sim_batches;
                  h2.run_batch ops;
                  inner.Batched.Model.batch_cost idxs);
              seq_cost = inner.Batched.Model.seq_cost;
            }
          in
          let wl =
            Sim.Workload.parallel_ops ~model ~records_per_node:1
              ~n_nodes:n_ops ()
          in
          let cfg = { (Sim.Batcher.default ~p:sim_p) with Sim.Batcher.seed } in
          let metrics, events = Sim.Batcher.run_traced cfg wl in
          match Sim.Trace.validate ~p:sim_p ~batch_cap:sim_p events with
          | Error e -> Error (Printf.sprintf "%s sim trace: %s" s.name e)
          | Ok () ->
              if metrics.Sim.Metrics.batch_size_total <> n_ops then
                Error
                  (Printf.sprintf "%s sim: %d ops batched, expected %d" s.name
                     metrics.Sim.Metrics.batch_size_total n_ops)
              else (
                match check ~path:"sim" ~h:h2 (List.rev !sim_batches) with
                | Some e -> Error (s.name ^ " " ^ e)
                | None ->
                    Ok
                      {
                        subject = s.name;
                        rt_batches = stats.batches;
                        rt_max_batch = stats.max_batch;
                        sim_batches = metrics.Sim.Metrics.batches;
                        sim_makespan = metrics.Sim.Metrics.makespan;
                      }))
  with
  | Failure msg -> Error (Printf.sprintf "%s: %s" s.name msg)
  | Invalid_argument msg -> Error (Printf.sprintf "%s: %s" s.name msg)

(* ---------- order-maintenance list ---------- *)

let order_list_check ?(n = 128) ?(seed = 7) () =
  try
    let t, e0 = Batched.Order_list.create () in
    let o, t0 = Oracle.Order.create () in
    let rng = Util.Rng.create ~seed in
    let elts = ref [| (e0, t0) |] in
    for _ = 1 to n do
      let i = Util.Rng.int rng (Array.length !elts) in
      let e, tok = (!elts).(i) in
      let e' = Batched.Order_list.insert_after t e in
      let tok' = Oracle.Order.insert_after o tok in
      elts := Array.append !elts [| (e', tok') |]
    done;
    Batched.Order_list.check_invariants t;
    if Batched.Order_list.size t <> Oracle.Order.size o then
      Error
        (Printf.sprintf "order_list: size %d, oracle %d"
           (Batched.Order_list.size t) (Oracle.Order.size o))
    else begin
      let arr = !elts in
      let idx = Array.map (fun (_, tok) -> Oracle.Order.index o tok) arr in
      let err = ref None in
      Array.iteri
        (fun i (a, _) ->
          Array.iteri
            (fun j (b, _) ->
              if !err = None && i <> j then begin
                let got = Batched.Order_list.precedes a b in
                let expect = idx.(i) < idx.(j) in
                if got <> expect then
                  err :=
                    Some
                      (Printf.sprintf
                         "order_list: precedes(#%d, #%d) = %b, oracle %b" i j
                         got expect)
              end)
            arr)
        arr;
      match !err with Some e -> Error e | None -> Ok ()
    end
  with Failure msg -> Error ("order_list: " ^ msg)
