type model_kind =
  | Counter
  | Skiplist
  | Stack
  | Fifo
  | Pqueue
  | Hashtable
  | Two_three
  | Ostree
  | Sp_order

type family =
  | Parallel_ops
  | Chained
  | Pthreaded
  | Random_sp
  | Interleaved

type case = {
  family : family;
  model : model_kind;
  size : int;
  records_per_node : int;
  wl_seed : int;
  p : int;
  sim_seed : int;
  shard_k : int;
  steal_policy : Sim.Batcher.steal_policy;
  launch_threshold : int;
  batch_cap : int;
  overhead : Sim.Batcher.overhead_model;
  sequential_batches : bool;
  inv_mode : Obs.Invariants.mode;
  rt_mode : Runtime.Batcher_rt.mode;
}

let model_of kind ~records_per_node ~seed =
  match kind with
  | Counter -> Batched.Counter.sim_model ~records_per_node ()
  | Skiplist -> Batched.Skiplist.sim_model ~initial_size:1024 ~records_per_node ()
  | Stack -> Batched.Stack.sim_model ~records_per_node ~pop_fraction:0.3 ~seed ()
  | Fifo -> Batched.Fifo.sim_model ~records_per_node ~dequeue_fraction:0.3 ~seed ()
  | Pqueue -> Batched.Pqueue.sim_model ~records_per_node ()
  | Hashtable -> Batched.Hashtable.sim_model ~records_per_node ()
  | Two_three -> Batched.Two_three.sim_model ~initial_size:512 ~records_per_node ()
  | Ostree -> Batched.Ostree.sim_model ~initial_size:512 ~records_per_node ()
  | Sp_order -> Batched.Sp_order.sim_model ()

(* Shard i's cost model: the structure at ~1/K of its full size (the
   bound's s(n/K)), with per-shard seeds so mixed-op models don't run
   identical op sequences on every shard. *)
let shard_model_of kind ~records_per_node ~seed ~shards i =
  let seed = seed + (i * 7919) in
  match kind with
  | Skiplist ->
      Batched.Skiplist.sim_model
        ~initial_size:(max 2 (1024 / shards))
        ~records_per_node ()
  | Two_three ->
      Batched.Two_three.sim_model
        ~initial_size:(max 2 (512 / shards))
        ~records_per_node ()
  | Ostree ->
      Batched.Ostree.sim_model
        ~initial_size:(max 2 (512 / shards))
        ~records_per_node ()
  | kind -> model_of kind ~records_per_node ~seed

let workload_of c =
  if c.shard_k > 1 then
    (* Sharding forces the parallel-loop family: sharded_ops routes each
       node's index through the real Batched.Shard.route, giving K
       structures whose per-shard batch flags the scheduler maintains
       independently. *)
    Sim.Workload.sharded_ops
      ~model_for:
        (shard_model_of c.model ~records_per_node:c.records_per_node
           ~seed:c.wl_seed ~shards:c.shard_k)
      ~shards:c.shard_k ~records_per_node:c.records_per_node ~n_nodes:c.size ()
  else
  let model = model_of c.model ~records_per_node:c.records_per_node ~seed:c.wl_seed in
  let records_per_node = c.records_per_node in
  let rng = Util.Rng.create ~seed:c.wl_seed in
  match c.family with
  | Parallel_ops ->
      Sim.Workload.parallel_ops ~model ~records_per_node ~n_nodes:c.size ()
  | Chained ->
      let width = 1 + Util.Rng.int rng 6 in
      let chain_length = max 1 (c.size / width) in
      Sim.Workload.chained_ops ~model ~records_per_node ~chain_length ~width
        ~between:(Util.Rng.int rng 4) ()
  | Pthreaded ->
      let threads = 1 + Util.Rng.int rng 7 in
      let ops_per_thread = max 1 (c.size / threads) in
      Sim.Workload.pthreaded ~model ~records_per_node ~threads ~ops_per_thread
        ~between:(Util.Rng.int rng 4) ()
  | Random_sp ->
      Sim.Workload.random ~model ~records_per_node ~size:c.size ~seed:c.wl_seed ()
  | Interleaved ->
      let second = Batched.Counter.sim_model ~records_per_node () in
      Sim.Workload.interleaved_ops ~models:[ model; second ] ~records_per_node
        ~n_nodes:c.size ()

let config_of c =
  {
    (Sim.Batcher.default ~p:c.p) with
    Sim.Batcher.seed = c.sim_seed;
    steal_policy = c.steal_policy;
    launch_threshold = c.launch_threshold;
    batch_cap = c.batch_cap;
    overhead = c.overhead;
    sequential_batches = c.sequential_batches;
  }

let is_paper_default c =
  c.steal_policy = Sim.Batcher.Alternating
  && c.launch_threshold = 1
  && c.batch_cap = c.p
  && c.overhead = Sim.Batcher.Tree_setup
  && not c.sequential_batches

(* The fuzzed structure, as a runtime-conformance subject name. *)
let conf_subject_of = function
  | Counter -> "counter"
  | Skiplist -> "skiplist"
  | Stack -> "stack"
  | Fifo -> "fifo"
  | Pqueue -> "pqueue"
  | Hashtable -> "hashtable"
  | Two_three -> "two_three"
  | Ostree -> "ostree"
  | Sp_order -> "sp_order"

let run_case ?(bound_factor = 16.0) ?(rt_conf = false) c =
  let ( let* ) = Result.bind in
  let workload = workload_of c in
  let cfg = config_of c in
  (* Small rings: enough for every fuzz-sized schedule; if a pathological
     case wraps anyway, the exact attribution check is skipped below
     rather than reporting a spurious conservation failure. *)
  let recorder =
    Obs.Recorder.create ~capacity:8192 ~clock:Obs.Recorder.Timesteps
      ~workers:c.p ()
  in
  (* Online checkers ride along under the rotated mode; the Lemma-2
     bound is the paper's 2 only on configurations that satisfy its
     preconditions (immediate full-cap launches) — ablations can
     legitimately exceed it, so there it is effectively off. *)
  let lemma2_bound =
    if c.launch_threshold = 1 && c.batch_cap >= c.p then 2 else max_int
  in
  let inv =
    Obs.Invariants.create ~mode:c.inv_mode ~lemma2_bound
      ~structures:(Array.length workload.Sim.Workload.models) ()
  in
  let* metrics, events =
    match Sim.Batcher.run_traced ~recorder ~invariants:inv cfg workload with
    | result -> Ok result
    | exception Failure e -> Error ("sim invariant: " ^ e)
    | exception Invalid_argument e -> Error ("sim argument: " ^ e)
    | exception e ->
        (* e.g. Assert_failure or array-bounds escapes from a broken
           scheduler — the fuzzer must survive to shrink them *)
        Error ("sim exception: " ^ Printexc.to_string e)
  in
  let open Sim.Metrics in
  let* () =
    if Obs.Invariants.total_violations inv = 0 then Ok ()
    else begin
      let v = Obs.Invariants.violations inv in
      let parts = ref [] in
      Array.iteri
        (fun k n ->
          if n > 0 then
            parts :=
              Printf.sprintf "%s=%d"
                (Obs.Recorder.check_name (Obs.Recorder.check_of_code k))
                n
              :: !parts)
        v;
      Error
        ("online checkers: " ^ String.concat " " (List.rev !parts))
    end
  in
  let n = Dag.ds_count workload.Sim.Workload.core in
  let* () =
    if metrics.batch_size_total = n then Ok ()
    else
      Error
        (Printf.sprintf "conservation: %d ops batched, %d in the DAG"
           metrics.batch_size_total n)
  in
  let* () =
    if metrics.max_batch_size <= c.batch_cap then Ok ()
    else
      Error
        (Printf.sprintf "Invariant 2: batch of %d exceeds cap %d"
           metrics.max_batch_size c.batch_cap)
  in
  let executed = metrics.core_work + metrics.batch_work + metrics.setup_work in
  let* () =
    if executed <= c.p * metrics.makespan then Ok ()
    else
      Error
        (Printf.sprintf "executed %d units in %d steps on %d workers" executed
           metrics.makespan c.p)
  in
  (* The validator's Lemma-2 accounting assumes immediate launches of
     full-cap batches; ablated configurations may legitimately let an
     operation observe more than two batches. *)
  let* () =
    if c.launch_threshold = 1 && c.batch_cap >= c.p then begin
      if metrics.max_batches_while_pending > 2 then
        Error
          (Printf.sprintf "Lemma 2: operation observed %d batches"
             metrics.max_batches_while_pending)
      else
        match Sim.Trace.validate ~p:c.p ~batch_cap:c.batch_cap events with
        | Ok () -> Ok ()
        | Error e -> Error ("trace: " ^ e)
    end
    else Ok ()
  in
  (* Attribution conservation on every fuzzed schedule: buckets must
     sum to exactly P x makespan and agree with the sim's own work
     counters — catches recorder drops and miscounts under every
     ablation, not just paper-default configurations. *)
  let* () =
    if Obs.Recorder.total_dropped recorder > 0 then Ok ()
    else Bound.cross_check ~workload ~metrics ~recorder ()
  in
  let* () =
    if is_paper_default c then
      let* () = Bound.check ~factor:bound_factor ~workload ~metrics () in
      if Obs.Recorder.total_dropped recorder > 0 then Ok ()
      else
        Bound.cross_check ~ms_factor:bound_factor ~workload ~metrics ~recorder ()
    else Ok ()
  in
  (* Optional real-runtime leg: the fuzzed structure and seed through a
     real pool under the case's rotated batch-path mode, checked against
     the sequential oracle (and the simulator again) by [Conformance].
     Off by default — it spawns domains per case — and enabled by the
     fuzz driver and a dedicated test sweep. *)
  if not rt_conf then Ok ()
  else
    match
      Conformance.run
        ~n_ops:(min (max c.size 8) 48)
        ~seed:c.wl_seed
        ~workers:(min c.p 3)
        ~mode:c.rt_mode
        (Conformance.find (conf_subject_of c.model))
    with
    | Ok _ -> Ok ()
    | Error e ->
        Error
          (Printf.sprintf "runtime conformance [%s]: %s"
             (Runtime.Batcher_rt.mode_name c.rt_mode)
             e)

let case_of_seed ?(max_p = 8) ?(max_size = 60) seed =
  let rng = Util.Rng.create ~seed:(0x5EED + seed) in
  let p = 1 + Util.Rng.int rng max_p in
  let pick arr = arr.(Util.Rng.int rng (Array.length arr)) in
  {
    family = pick [| Parallel_ops; Chained; Pthreaded; Random_sp; Interleaved |];
    model =
      pick
        [|
          Counter; Skiplist; Stack; Fifo; Pqueue; Hashtable; Two_three; Ostree;
          Sp_order;
        |];
    size = 1 + Util.Rng.int rng max_size;
    records_per_node = (if Util.Rng.int rng 4 = 0 then 4 else 1);
    wl_seed = Util.Rng.int rng 1_000_000;
    p;
    sim_seed = Util.Rng.int rng 1_000_000;
    (* Mostly unsharded (family rotation intact), with K=2 and K=4 legs
       so every sweep exercises the sharded per-structure protocol. *)
    shard_k = pick [| 1; 1; 1; 2; 4 |];
    steal_policy =
      pick
        Sim.Batcher.[| Alternating; Alternating; Core_only; Batch_only; Uniform_random |];
    launch_threshold = (if Util.Rng.bool rng then 1 else 1 + Util.Rng.int rng p);
    batch_cap = (if Util.Rng.bool rng then p else 1 + Util.Rng.int rng p);
    overhead = pick Sim.Batcher.[| Tree_setup; Tree_setup; Fused_setup; No_setup |];
    sequential_batches = Util.Rng.int rng 4 = 0;
    inv_mode =
      (* Mostly Exact — the point is auditing every schedule — with
         Sampled and Off legs so those modes' code paths are fuzzed too. *)
      pick
        Obs.Invariants.
          [| Exact; Exact; Exact; Sampled 2; Sampled 7; Off |];
    rt_mode =
      (* Runtime batch-path mode for the conformance leg: the default
         FAA array most often, the alternative modes on a rotation. *)
      pick
        Runtime.Batcher_rt.
          [| Faa_array; Faa_array; Faa_array; Worker_id; Par_combine;
             Atomic_list |];
  }

(* Candidate reductions, most aggressive first. Each strictly reduces
   (size, records, p, distance-from-default), so greedy shrinking
   terminates. *)
let shrink_steps c =
  let cands = ref [] in
  let add c' = if c' <> c then cands := c' :: !cands in
  if c.size > 1 then begin
    add { c with size = c.size / 2 };
    add { c with size = c.size - 1 }
  end;
  if c.records_per_node > 1 then add { c with records_per_node = 1 };
  if c.p > 1 then begin
    let clamp p' c' = { c' with p = p'; batch_cap = min c'.batch_cap p';
                        launch_threshold = min c'.launch_threshold p' } in
    add (clamp (c.p / 2) c);
    add (clamp (c.p - 1) c)
  end;
  if c.shard_k > 1 then begin
    add { c with shard_k = 1 };
    add { c with shard_k = c.shard_k / 2 }
  end;
  if c.launch_threshold > 1 then add { c with launch_threshold = 1 };
  if c.batch_cap < c.p then add { c with batch_cap = c.p };
  if c.sequential_batches then add { c with sequential_batches = false };
  if c.overhead <> Sim.Batcher.Tree_setup then
    add { c with overhead = Sim.Batcher.Tree_setup };
  if c.steal_policy <> Sim.Batcher.Alternating then
    add { c with steal_policy = Sim.Batcher.Alternating };
  if c.family <> Parallel_ops then add { c with family = Parallel_ops };
  if c.model <> Counter then add { c with model = Counter };
  if c.inv_mode <> Obs.Invariants.Exact then
    add { c with inv_mode = Obs.Invariants.Exact };
  if c.rt_mode <> Runtime.Batcher_rt.Faa_array then
    add { c with rt_mode = Runtime.Batcher_rt.Faa_array };
  if c.wl_seed <> 0 then add { c with wl_seed = 0 };
  if c.sim_seed <> 1 then add { c with sim_seed = 1 };
  List.rev !cands

let fails ?bound_factor ?rt_conf c =
  match run_case ?bound_factor ?rt_conf c with Ok () -> false | Error _ -> true

let shrink ?bound_factor ?rt_conf c0 =
  if not (fails ?bound_factor ?rt_conf c0) then c0
  else begin
    let rec go c fuel =
      if fuel = 0 then c
      else
        match List.find_opt (fails ?bound_factor ?rt_conf) (shrink_steps c) with
        | None -> c
        | Some smaller -> go smaller (fuel - 1)
    in
    go c0 200
  end

let family_name = function
  | Parallel_ops -> "Parallel_ops"
  | Chained -> "Chained"
  | Pthreaded -> "Pthreaded"
  | Random_sp -> "Random_sp"
  | Interleaved -> "Interleaved"

let model_name = function
  | Counter -> "Counter"
  | Skiplist -> "Skiplist"
  | Stack -> "Stack"
  | Fifo -> "Fifo"
  | Pqueue -> "Pqueue"
  | Hashtable -> "Hashtable"
  | Two_three -> "Two_three"
  | Ostree -> "Ostree"
  | Sp_order -> "Sp_order"

let policy_name = function
  | Sim.Batcher.Alternating -> "Alternating"
  | Sim.Batcher.Core_only -> "Core_only"
  | Sim.Batcher.Batch_only -> "Batch_only"
  | Sim.Batcher.Uniform_random -> "Uniform_random"

let overhead_name = function
  | Sim.Batcher.Tree_setup -> "Tree_setup"
  | Sim.Batcher.Fused_setup -> "Fused_setup"
  | Sim.Batcher.No_setup -> "No_setup"

let inv_mode_name = function
  | Obs.Invariants.Off -> "Obs.Invariants.Off"
  | Obs.Invariants.Exact -> "Obs.Invariants.Exact"
  | Obs.Invariants.Sampled k -> Printf.sprintf "(Obs.Invariants.Sampled %d)" k

let rt_mode_name m = "Runtime.Batcher_rt." ^
  (match m with
  | Runtime.Batcher_rt.Faa_array -> "Faa_array"
  | Runtime.Batcher_rt.Worker_id -> "Worker_id"
  | Runtime.Batcher_rt.Par_combine -> "Par_combine"
  | Runtime.Batcher_rt.Atomic_list -> "Atomic_list")

let pp_case fmt c =
  Format.fprintf fmt
    "{ family = %s; model = %s; size = %d; records_per_node = %d;@ wl_seed = %d; p \
     = %d; sim_seed = %d; shard_k = %d;@ steal_policy = Sim.Batcher.%s; \
     launch_threshold = %d; batch_cap = %d;@ overhead = Sim.Batcher.%s; \
     sequential_batches = %b;@ inv_mode = %s;@ rt_mode = %s }"
    (family_name c.family) (model_name c.model) c.size c.records_per_node c.wl_seed
    c.p c.sim_seed c.shard_k (policy_name c.steal_policy) c.launch_threshold
    c.batch_cap (overhead_name c.overhead) c.sequential_batches
    (inv_mode_name c.inv_mode) (rt_mode_name c.rt_mode)

let show_case c = Format.asprintf "@[<hv 2>%a@]" pp_case c

let to_ocaml c =
  Format.asprintf
    "@[<v>let test_fuzz_repro () =@,\
    \  let case =@,\
    \    Check.Schedule_fuzz.@[<hv 4>%a@]@,\
    \  in@,\
    \  match Check.Schedule_fuzz.run_case case with@,\
    \  | Ok () -> ()@,\
    \  | Error e -> Alcotest.fail e@]"
    pp_case c

type failure = {
  f_case : case;
  f_error : string;
  f_shrunk : case;
  f_shrunk_error : string;
}

let sweep ?bound_factor ?rt_conf ?max_p ?max_size ?(map_case = fun c -> c)
    ?(should_stop = fun () -> false) ?(on_case = fun _ _ -> ()) ~seeds () =
  let run = ref 0 in
  let failures = ref [] in
  List.iter
    (fun seed ->
      if not (should_stop ()) then begin
        let c = map_case (case_of_seed ?max_p ?max_size seed) in
        on_case seed c;
        incr run;
        match run_case ?bound_factor ?rt_conf c with
        | Ok () -> ()
        | Error e ->
            let small = shrink ?bound_factor ?rt_conf c in
            let small_err =
              match run_case ?bound_factor ?rt_conf small with
              | Error e' -> e'
              | Ok () -> e (* unreachable: shrink preserves failure *)
            in
            failures :=
              { f_case = c; f_error = e; f_shrunk = small; f_shrunk_error = small_err }
              :: !failures
      end)
    seeds;
  (!run, List.rev !failures)
