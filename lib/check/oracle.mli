(** Naive sequential reference implementations ("oracles").

    Every batched structure in [lib/batched/] is cross-checked against
    one of these by {!Conformance}: the oracle replays the exact batch
    linearization the scheduler chose (batches in execution order, the
    structure's documented phase order within each batch) on an
    implementation so simple it is obviously correct — sorted association
    lists, plain list queues, a textbook binary heap. Mismatching per-op
    results or final states indicate a bug in the batched structure, in
    the batching runtime, or in the simulator.

    The oracles are deliberately independent of [lib/batched/]: they
    share no code with the structures under test and know nothing about
    operation records. All are single-threaded and mutable; none is
    remotely efficient, which is fine — conformance scripts are small. *)

(** Sorted association list: the dictionary oracle for the skip list,
    hash table, 2-3 tree and order-statistic tree. *)
module Dict : sig
  type t

  val create : unit -> t
  val size : t -> int

  val insert : t -> key:int -> value:int -> bool
  (** Bind [key], replacing any existing binding; [true] iff replaced. *)

  val add_if_absent : t -> int -> bool
  (** Set-style insert (value = key); [true] iff the key was new. *)

  val remove : t -> int -> bool
  (** [true] iff the key was present (and is now gone). *)

  val find : t -> int -> int option
  val mem : t -> int -> bool

  val rank : t -> int -> int
  (** Number of stored keys strictly less than the argument. *)

  val select : t -> int -> int option
  (** i-th smallest key (0-based), if in range. *)

  val range : t -> lo:int -> hi:int -> int list
  (** Stored keys in [\[lo, hi)], ascending — the reference for the
      cross-shard range query of {!Batched.Shard}: a sharded merge must
      be byte-equal to this over the union of the shards. *)

  val keys : t -> int list
  (** Ascending. *)

  val bindings : t -> (int * int) list
  (** Ascending by key. *)
end

(** Plain list FIFO queue. *)
module Fifo : sig
  type t

  val create : unit -> t
  val enqueue : t -> int -> unit
  val dequeue : t -> int option
  val to_list : t -> int list
  (** Front (oldest) first. *)
end

(** Plain list LIFO stack. *)
module Lifo : sig
  type t

  val create : unit -> t
  val push : t -> int -> unit
  val pop : t -> int option
  val to_list : t -> int list
  (** Bottom to top (matching [Batched.Stack.to_list]). *)
end

(** Textbook array-backed binary min-heap of [(prio, value)] pairs.
    Extraction order is fully determined only when priorities are
    distinct; conformance scripts generate distinct priorities. *)
module Heap : sig
  type t

  val create : unit -> t
  val size : t -> int
  val insert : t -> prio:int -> value:int -> unit
  val extract_min : t -> (int * int) option
  val to_sorted_list : t -> (int * int) list
  (** Ascending priority; does not disturb the heap. *)
end

(** Plain integer counter. *)
module Counter : sig
  type t

  val create : unit -> t
  val add : t -> int -> int
  (** Add an amount; returns the value after the addition. *)

  val value : t -> int
end

(** Order-maintenance oracle: the total order kept as an actual list,
    insertion by O(n) splice, comparison by O(n) index scan — checking
    [Batched.Order_list]'s amortized O(1) label scheme against the
    obvious spec. Elements are opaque integer tokens. *)
module Order : sig
  type t
  type token

  val create : unit -> t * token
  (** A fresh order holding exactly its base token. *)

  val insert_after : t -> token -> token
  val precedes : t -> token -> token -> bool
  (** Strictly before; false on equal tokens. *)

  val size : t -> int

  val index : t -> token -> int
  (** Position from the front, 0-based — for O(1) batched comparisons
      after a snapshot. *)
end

(** Series-parallel order oracle, mirroring the English/Hebrew
    construction of [Batched.Sp_order] on top of the naive {!Order}
    lists: fork of [s] inserts [s < l < r < c] into the English order and
    [s < r < l < c] into the Hebrew order; [a] serially precedes [b] iff
    it does in both. The risky component under test is the label-based
    [Batched.Order_list] underneath the real structure. *)
module Sp : sig
  type t
  type node

  val create : unit -> t * node
  val fork : t -> node -> node * node * node
  (** [(left, right, continuation)]. *)

  val precedes : t -> node -> node -> bool
  val nodes : t -> int

  val indices : t -> node -> int * int
  (** [(english, hebrew)] positions — lets callers snapshot both orders
      once and compare O(1) per pair when building full relation
      matrices. *)
end
