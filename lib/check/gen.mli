(** Random-input generators for the conformance and fuzzing layers.

    Two kinds live here: plain seeded generators of operation scripts
    (deterministic in an {!Util.Rng.t}, used by {!Conformance} and the
    soak CLI) and qcheck generators of scheduler configurations and fuzz
    cases (used by the property tests in [test/test_check.ml]).

    Script generators take the script length [n] where operand ranges
    depend on it. The 2-3 tree and order-statistic tree generators keep
    insert keys injective across the script: those structures dedupe
    same-key inserts {e within} a batch with [List.sort_uniq], whose
    surviving record is implementation-defined, so a conformance oracle
    could not predict which duplicate record gets the [inserted] flag.
    The skip list (stable insertion order) and hash table (batch order
    per bucket) define in-batch duplicates exactly, so their generators
    reuse keys freely. *)

val script : gen:(Util.Rng.t -> int -> 'op) -> n:int -> seed:int -> 'op array
(** [script ~gen ~n ~seed] draws ops [gen rng 0 .. gen rng (n-1)] in
    index order from a fresh stream — deterministic in [seed]. *)

val counter_op : Util.Rng.t -> int -> Batched.Counter.op
(** Increments of -9..9. *)

val fifo_op : Util.Rng.t -> int -> Batched.Fifo.op
(** ~60% enqueues. *)

val stack_op : Util.Rng.t -> int -> Batched.Stack.op
(** ~60% pushes. *)

val pqueue_op : Util.Rng.t -> int -> Batched.Pqueue.op
(** ~60% inserts; priorities are distinct across the script (extraction
    order on priority ties is implementation-defined). *)

val hashtable_op : n:int -> Util.Rng.t -> int -> Batched.Hashtable.op
(** Inserts, lookups and removes over a small key space (collisions
    intended). *)

val skiplist_op : n:int -> Util.Rng.t -> int -> Batched.Skiplist.op
(** Inserts, membership tests and deletes over a small key space. *)

val sharded_skiplist_op : n:int -> Util.Rng.t -> int -> Batched.Skiplist.op
(** Like {!skiplist_op} with ~1/8 cross-shard range queries mixed in. *)

val sharded_ostree_op : n:int -> Util.Rng.t -> int -> Batched.Ostree.op
(** Injective insert keys; deletes, ranks (cross-shard sums) and range
    queries — never Select, which is not shardable. *)

val two_three_op : n:int -> Util.Rng.t -> int -> Batched.Two_three.op
(** Injective insert keys; queries and deletes over the same range. *)

val ostree_op : n:int -> Util.Rng.t -> int -> Batched.Ostree.op
(** Injective insert keys; deletes, ranks and selects ride along. *)

val config_gen :
  ?min_p:int -> ?max_p:int -> unit -> Sim.Batcher.config QCheck.Gen.t
(** Random scheduler configurations over the full ablation surface
    (policy, threshold, cap, overhead model, flat combining), with
    invariant checks left on. *)

val arb_config :
  ?min_p:int -> ?max_p:int -> unit -> Sim.Batcher.config QCheck.arbitrary

val case_gen :
  ?max_p:int -> ?max_size:int -> unit -> Schedule_fuzz.case QCheck.Gen.t

val arb_case :
  ?max_p:int -> ?max_size:int -> unit -> Schedule_fuzz.case QCheck.arbitrary
(** Prints via {!Schedule_fuzz.show_case} and shrinks via
    {!Schedule_fuzz.shrink_steps}. *)
