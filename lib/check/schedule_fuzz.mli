(** Schedule fuzzing: sweep random scheduler configurations over random
    core DAGs and verify every run against the paper's protocol rules.

    A fuzz {!case} packs everything that determines one simulated run:
    a workload family and size, a structure cost model, worker count,
    seeds, and the full ablation surface of {!Sim.Batcher.config}
    (steal policy, launch threshold, batch cap, overhead model,
    flat-combining mode). {!run_case} executes the run with the
    simulator's own invariant assertions enabled and then re-checks it
    from the outside:

    - the event trace replays cleanly through {!Sim.Trace.validate}
      (Invariants 1-2, the suspension protocol, Lemma 2) — applied only
      to immediate-launch, full-cap configurations, the regime the
      validator's Lemma-2 accounting assumes;
    - conservation: every data-structure node lands in exactly one
      batch, no batch exceeds the cap, and total executed work fits in
      [P · makespan];
    - for paper-default-shaped configurations, the makespan respects the
      Theorem-1 expression via {!Bound.check}.

    A failing [(seed, config)] pair is {!shrink}-ed to a minimal still-
    failing case and rendered by {!to_ocaml} as a ready-to-paste test. *)

type model_kind =
  | Counter
  | Skiplist
  | Stack
  | Fifo
  | Pqueue
  | Hashtable
  | Two_three
  | Ostree
  | Sp_order

type family =
  | Parallel_ops  (** the paper's Figure-1 parallel loop *)
  | Chained  (** parallel chains exercising the m·s(n) term *)
  | Pthreaded  (** statically threaded chains (Section 8) *)
  | Random_sp  (** random series-parallel core DAGs *)
  | Interleaved  (** two structures batched side by side *)

type case = {
  family : family;
  model : model_kind;
  size : int;  (** target number of data-structure nodes *)
  records_per_node : int;
  wl_seed : int;  (** workload-shape seed (random DAGs, pop mixes) *)
  p : int;
  sim_seed : int;  (** scheduler (steal-victim) seed *)
  shard_k : int;
      (** > 1 shards the structure K ways: the workload becomes
          {!Sim.Workload.sharded_ops} (parallel loop routed through
          [Batched.Shard.route], overriding [family]), with each
          shard's cost model at ~1/K of the full structure size. The
          per-shard composed Theorem-1 bound and per-shard conservation
          are then what {!run_case} verifies. *)
  steal_policy : Sim.Batcher.steal_policy;
  launch_threshold : int;
  batch_cap : int;
  overhead : Sim.Batcher.overhead_model;
  sequential_batches : bool;
  inv_mode : Obs.Invariants.mode;
      (** {!Obs.Invariants} mode threaded into the run — mostly [Exact]
          (every schedule audited online, independently of the sim's
          asserts and the trace validator), with [Sampled]/[Off] legs in
          the rotation so those paths are fuzzed too. Any nonzero
          violation counter fails the case. *)
  rt_mode : Runtime.Batcher_rt.mode;
      (** Batch-path mode for the optional real-runtime conformance leg
          ([run_case ~rt_conf:true]) — rotated across cases, biased
          toward the default [Faa_array]; shrinking reduces toward it. *)
}

val workload_of : case -> Sim.Workload.t
val config_of : case -> Sim.Batcher.config

val is_paper_default : case -> bool
(** Alternating steals, threshold 1, cap [p], tree setup, parallel
    batches — the configuration Theorem 1 is stated for. *)

val run_case :
  ?bound_factor:float -> ?rt_conf:bool -> case -> (unit, string) result
(** Execute and cross-check one case. [bound_factor] is forwarded to
    {!Bound.check} (paper-default cases only). [rt_conf] (default
    [false]: it spawns a real pool per case) additionally pushes the
    case's structure and seed through {!Conformance.run} under the
    case's [rt_mode], so every batch-path mode meets fuzzed workload
    shapes against the sequential oracle. *)

val case_of_seed : ?max_p:int -> ?max_size:int -> int -> case
(** Deterministic case from a single fuzz seed. *)

val shrink_steps : case -> case list
(** Candidate reductions, most aggressive first. Every candidate is
    strictly smaller in the (size, p, records, ablation-distance)
    order, so greedy shrinking terminates. *)

val shrink : ?bound_factor:float -> ?rt_conf:bool -> case -> case
(** Greedily minimize a failing case: repeatedly replace it by its
    first still-failing reduction. Returns the input unchanged if it
    does not fail. *)

val to_ocaml : case -> string
(** A self-contained OCaml test snippet reproducing the case. *)

val pp_case : Format.formatter -> case -> unit
val show_case : case -> string

val policy_name : Sim.Batcher.steal_policy -> string
val overhead_name : Sim.Batcher.overhead_model -> string
(** Constructor names, for printers and CLI output. *)

type failure = {
  f_case : case;  (** as generated *)
  f_error : string;
  f_shrunk : case;  (** minimal reproducer *)
  f_shrunk_error : string;
}

val sweep :
  ?bound_factor:float ->
  ?rt_conf:bool ->
  ?max_p:int ->
  ?max_size:int ->
  ?map_case:(case -> case) ->
  ?should_stop:(unit -> bool) ->
  ?on_case:(int -> case -> unit) ->
  seeds:int list ->
  unit ->
  int * failure list
(** Run {!run_case} on {!case_of_seed} of every seed, shrinking each
    failure. Returns [(cases_run, failures)]. [map_case] rewrites each
    generated case before it runs (e.g. forcing [shard_k] for a
    sharded-only smoke sweep); [should_stop] is polled between cases
    (soak-run time budgets); [on_case] observes progress. *)
