(** Measurements produced by a simulation run. *)

type t = {
  p : int;  (** workers *)
  makespan : int;  (** timesteps until the core DAG's sink completed *)
  core_work : int;  (** core-node cost units executed *)
  batch_work : int;  (** BOP cost units executed (excludes setup) *)
  setup_work : int;  (** LAUNCHBATCH setup+cleanup units executed *)
  batches : int;  (** number of batches launched *)
  batch_size_total : int;  (** sum of data-structure nodes over batches *)
  max_batch_size : int;
  steal_attempts : int;  (** all steal attempts, successful or not *)
  steal_successes : int;
  free_steal_attempts : int;  (** attempts by workers with free status *)
  trapped_steal_attempts : int;  (** attempts by trapped workers *)
  max_batches_while_pending : int;
      (** max number of batch launches observed between an operation
          becoming pending and completing — Lemma 2 says <= 2 *)
  span_realized : int;
      (** measured T∞: the longest executed dependency chain (in work
          units, clamped by elapsed steps) through the core DAG and the
          batch dags it coupled to, so [span_realized <= makespan]. Only
          the Batcher scheduler computes it; 0 elsewhere. *)
  total_records : int;  (** data-structure records processed *)
  batch_details : batch_detail list;
      (** one entry per launched batch, most recent first — the raw
          material for the Theorem-3 (τ-trimmed span) analysis *)
}

and batch_detail = {
  bd_sid : int;  (** structure (shard) the batch belongs to *)
  bd_size : int;  (** data-structure nodes in the batch *)
  bd_work : int;  (** BOP work w_A (setup/cleanup excluded, as in §2) *)
  bd_span : int;  (** BOP span s_A *)
}

val trimmed_span : tau:int -> t -> int
(** Σ s_A over the τ-long batches (s_A > τ) — the run's contribution to
    S_τ(n) in Definition 1. *)

val count_long : tau:int -> t -> int
val count_wide : tau:int -> t -> int
(** Batches with w_A > P·τ. *)

val count_popular : t -> int
(** Batches with more than P/4 operations. *)

val zero : p:int -> t

val throughput : t -> float
(** Records completed per timestep. *)

val speedup : baseline:t -> t -> float
(** [baseline.makespan / t.makespan]. *)

val pp : Format.formatter -> t -> unit

val pp_row_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> t -> unit
(** Tabular one-line rendering used by the bench harness. *)
