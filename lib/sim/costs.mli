(** Per-phase cost multipliers for what-if (causal-profiling) runs.

    The causal engine ({!Obs.Causal} + [Svc.Causal]) asks "if phase X
    were f× faster, what would throughput and the tail do?" On the
    virtual clock that question has an exact answer: re-run the
    identical request array with the phase's cost scaled by 1/f and
    diff the results. This record carries those scale factors; both
    simulators take it as an optional argument defaulting to
    {!identity}, which reproduces the unscaled run byte-for-byte (the
    [f = 1.0] path returns costs unchanged, asserted against recorded
    pre-plumbing digests by a golden test).

    Factor semantics: each field {e multiplies} the corresponding cost,
    so a virtual 2× speedup of BOP work is [{ identity with bop_work =
    0.5 }]. Factors must be positive; scaled costs round to the nearest
    integer of the virtual clock (clamped at 0 — a cost scaled to
    nothing vanishes, it never goes negative).

    Which knobs act where:
    - {!Openloop} (the analytic service engine) honors all six:
      [bop_work]/[bop_span] scale each launch's BOP Brent terms,
      [setup_work]/[setup_span] the Θ(P)/Θ(lg P) LAUNCHBATCH stages,
      [sched] the configured dispatch delay ([Openloop.config]'s
      [sched_delay], default 0), and [p_share] the per-shard worker
      share max(1, P/K) (scaled, then clamped back to ≥ 1 — so at
      P/K ≤ 1 the knob still models granting a shard more workers).
    - {!Batcher} (the DAG-lowering scheduler sim) honors
      [bop_work] and [setup_work] by scaling the {e leaf costs} of the
      BOP and overhead [Par] trees before lowering. In a real DAG,
      work and span are coupled — scaling leaves scales both together
      — so the span-only and sched knobs have no separate meaning
      there and are ignored; the Openloop engine is where the
      span-vs-work distinction is exact. *)

type t = {
  bop_work : float;
  bop_span : float;
  setup_work : float;
  setup_span : float;
  sched : float;
  p_share : float;
}

val identity : t
(** All factors 1.0. *)

val is_identity : t -> bool

val scale : float -> int -> int
(** [scale f x] is [x] unchanged when [f = 1.0] (exact identity, not a
    float round-trip), otherwise [round (f·x)] clamped at 0. *)

val check : t -> unit
(** Raises [Invalid_argument] on a non-positive or NaN factor. *)
