type steal_policy =
  | Alternating
  | Core_only
  | Batch_only
  | Uniform_random

type overhead_model =
  | Tree_setup
  | Fused_setup
  | No_setup

type config = {
  p : int;
  seed : int;
  steal_policy : steal_policy;
  launch_threshold : int;
  batch_cap : int;
  sequential_batches : bool;
  overhead : overhead_model;
  check_invariants : bool;
  max_steps : int;
}

let default ~p =
  {
    p;
    seed = 1;
    steal_policy = Alternating;
    launch_threshold = 1;
    batch_cap = p;
    sequential_batches = false;
    overhead = Tree_setup;
    check_invariants = true;
    max_steps = 2_000_000_000;
  }

type origin = OCore | OBatch

type inst = {
  dag : Dag.t;
  origin : origin;
  preds_left : int array;
  (* Realized-critical-path depth: [depth.(v)] is the longest executed
     dependency chain (in work units) ending just before [v] starts —
     the max over enabling predecessors of their completion depth, and
     for a batch dag's source the max over the member operations' park
     depths. The core sink's completion depth is the measured T∞. *)
  depth : int array;
  (* BOP node-id range within a batch dag; nodes outside it are
     LAUNCHBATCH setup/cleanup overhead. Unused for the core dag. *)
  bop_lo : int;
  bop_hi : int;
  sid : int;  (* structure index of a batch dag; -1 for the core dag *)
}

type task = { inst : inst; node : int }

type wstatus = Free | Pending | Executing | Done

type worker = {
  id : int;
  core_dq : task Deque.t;
  batch_dq : task Deque.t;
  mutable status : wstatus;
  mutable assigned : task option;
  mutable remaining : int;
  mutable steal_count : int;
  mutable suspended : int option;  (* core-dag ds node awaiting its batch *)
  mutable seen_batches : int;  (* batches executing since becoming pending *)
  mutable suspend_time : int;  (* timestep the pending op was parked *)
  mutable park_depth : int;  (* critical-path depth of the parked ds node *)
  mutable resume_depth : int;  (* depth handed back when the batch completes *)
  (* Work-class run accumulator for the Obs recorder: consecutive
     executed units of one class coalesce into a single Work event. *)
  mutable wcls : Obs.Recorder.work_class;
  mutable wrun : int;
  rng : Util.Rng.t;
}

type batch = {
  b_sid : int;  (* which structure this batch belongs to *)
  members : int array;  (* worker ids whose ops are in the working set *)
}

type state = {
  cfg : config;
  costs : Costs.t;  (* what-if cost scaling; Costs.identity = off *)
  workload : Workload.t;
  core_inst : inst;
  workers : worker array;
  pending : int option array;  (* per worker: suspended core ds node id *)
  mutable pending_count : int;  (* parked operations, all structures *)
  pending_per : int array;  (* parked operations per structure *)
  active : batch option array;  (* in-flight batch per structure (Inv. 1) *)
  mutable active_count : int;
  mutable finished : bool;
  mutable force_launch : bool;
  mutable units_this_step : int;
  (* metrics accumulators *)
  mutable time : int;
  mutable core_work : int;
  mutable batch_work : int;
  mutable setup_work : int;
  mutable batches : int;
  mutable batch_size_total : int;
  mutable max_batch_size : int;
  mutable steal_attempts : int;
  mutable steal_successes : int;
  mutable free_steal_attempts : int;
  mutable trapped_steal_attempts : int;
  mutable max_seen_batches : int;
  mutable span_realized : int;  (* critical-path depth at the core sink *)
  mutable batch_details : Metrics.batch_detail list;
  tracing : bool;
  mutable trace : Trace.event list;  (* reverse chronological *)
  rc : Obs.Recorder.t;  (* observability recorder; Obs.Recorder.null = off *)
  inv : Obs.Invariants.t;  (* online checkers, independent of the sim's own asserts *)
}

let make_inst ?(bop_lo = 0) ?(bop_hi = 0) ?(sid = -1) ~origin dag =
  {
    dag;
    origin;
    preds_left = Array.copy dag.Dag.pred_count;
    depth = Array.make (Array.length dag.Dag.pred_count) 0;
    bop_lo;
    bop_hi;
    sid;
  }

(* Structure index of a core-dag ds node. *)
let struct_of st node =
  match st.core_inst.dag.Dag.kinds.(node) with
  | Dag.Ds idx -> st.workload.Workload.assign idx
  | Dag.Core -> assert false

let attribute st (task : task) =
  match task.inst.origin with
  | OCore -> st.core_work <- st.core_work + 1
  | OBatch ->
      if task.node >= task.inst.bop_lo && task.node < task.inst.bop_hi then
        st.batch_work <- st.batch_work + 1
      else st.setup_work <- st.setup_work + 1

let class_of_task (task : task) =
  match task.inst.origin with
  | OCore -> Obs.Recorder.Wcore
  | OBatch ->
      if task.node >= task.inst.bop_lo && task.node < task.inst.bop_hi then
        Obs.Recorder.Wbatch
      else Obs.Recorder.Wsetup

(* Work-run coalescing: a worker's consecutive same-class steps become
   one Work event stamped with the run's final step. Runs are flushed
   whenever the worker does something unclassifiable as that run (class
   change, steal step), so emitted segments tile the busy timeline. *)
let flush_run st w ~time =
  if w.wrun > 0 then begin
    Obs.Recorder.emit_work st.rc ~worker:w.id ~time ~cls:w.wcls ~units:w.wrun;
    w.wrun <- 0
  end

let note st w cls =
  if Obs.Recorder.enabled st.rc then begin
    if w.wrun > 0 && w.wcls <> cls then flush_run st w ~time:(st.time - 1);
    w.wcls <- cls;
    w.wrun <- w.wrun + 1
  end

let assign w (task : task) =
  w.assigned <- Some task;
  w.remaining <- task.inst.dag.Dag.costs.(task.node)

let deque_for w = function
  | OCore -> w.core_dq
  | OBatch -> w.batch_dq

(* Enable [task]'s successors after its completion: newly ready nodes are
   assigned to the completing worker (first) and pushed on the deque
   matching the dag's origin (rest). [d] is the completed node's
   critical-path depth, propagated along every outgoing edge. *)
let enable_successors _st w (task : task) ~d =
  let inst = task.inst in
  let newly = ref [] in
  Array.iter
    (fun s ->
      inst.preds_left.(s) <- inst.preds_left.(s) - 1;
      if d > inst.depth.(s) then inst.depth.(s) <- d;
      if inst.preds_left.(s) = 0 then newly := s :: !newly)
    inst.dag.Dag.succs.(task.node);
  (match List.rev !newly with
  | [] -> ()
  | first :: rest ->
      assign w { inst; node = first };
      List.iter (fun s -> Deque.push_bottom (deque_for w inst.origin) { inst; node = s }) rest)

let complete_batch st ~finisher ~d sid =
  match st.active.(sid) with
  | None -> assert false
  | Some b ->
      Array.iter
        (fun m ->
          let wm = st.workers.(m) in
          if st.cfg.check_invariants && wm.status <> Executing then
            failwith "Batcher sim: member not executing at batch completion";
          wm.status <- Done;
          wm.resume_depth <- max wm.park_depth d;
          Obs.Recorder.emit_status st.rc ~worker:m ~time:st.time Obs.Recorder.Done;
          if wm.seen_batches > st.max_seen_batches then
            st.max_seen_batches <- wm.seen_batches;
          st.pending.(m) <- None;
          st.pending_count <- st.pending_count - 1;
          st.pending_per.(sid) <- st.pending_per.(sid) - 1)
        b.members;
      Obs.Recorder.emit_batch_end st.rc ~worker:finisher ~time:st.time ~sid
        ~size:(Array.length b.members);
      Obs.Invariants.batch_ended st.inv ~worker:finisher ~time:st.time ~sid;
      if st.tracing then
        st.trace <-
          Trace.Batch_completed { time = st.time; sid; members = b.members } :: st.trace;
      st.active.(sid) <- None;
      st.active_count <- st.active_count - 1

let complete st w (task : task) =
  w.assigned <- None;
  let inst = task.inst in
  (* Completion depth: chain units up to and including this node, clamped
     by elapsed steps (two dependent units can execute in one sweep when
     the successor's worker steps later in worker order; the clamp keeps
     the realized span a valid lower bound on the makespan). *)
  let d = min (inst.depth.(task.node) + inst.dag.Dag.costs.(task.node)) st.time in
  match inst.dag.Dag.kinds.(task.node), inst.origin with
  | Dag.Ds _, OCore ->
      (* The operation record is parked; control does not pass the node
         until its batch completes (the worker is now trapped). *)
      if st.cfg.check_invariants && st.pending.(w.id) <> None then
        failwith "Batcher sim: worker already has a pending op";
      st.pending.(w.id) <- Some task.node;
      st.pending_count <- st.pending_count + 1;
      let sid = struct_of st task.node in
      st.pending_per.(sid) <- st.pending_per.(sid) + 1;
      w.status <- Pending;
      w.suspended <- Some task.node;
      w.suspend_time <- st.time;
      w.park_depth <- d;
      w.seen_batches <- (match st.active.(sid) with Some _ -> 1 | None -> 0);
      Obs.Recorder.emit_status st.rc ~worker:w.id ~time:st.time Obs.Recorder.Pending;
      Obs.Recorder.emit_op_issue st.rc ~worker:w.id ~time:st.time ~sid;
      Obs.Invariants.op_submitted st.inv ~sid;
      if st.tracing then
        st.trace <-
          Trace.Suspended { time = st.time; worker = w.id; node = task.node; sid }
          :: st.trace
  | _ ->
      enable_successors st w task ~d;
      if task.node = inst.dag.Dag.sink then begin
        match inst.origin with
        | OBatch -> complete_batch st ~finisher:w.id ~d inst.sid
        | OCore ->
            st.finished <- true;
            st.span_realized <- d
      end

let exec_unit st w =
  match w.assigned with
  | None -> assert false
  | Some task ->
      attribute st task;
      note st w (class_of_task task);
      st.units_this_step <- st.units_this_step + 1;
      w.remaining <- w.remaining - 1;
      if w.remaining = 0 then complete st w task

(* Build the batch dag for the snapshot [members]: setup ; BOP ; cleanup.
   Setup and cleanup model LAUNCHBATCH's parallel-for over the pending
   array and the working-set compaction: Θ(p) work, Θ(lg p) span — or a
   sequential Θ(p) scan in flat-combining mode. *)
let launch st w =
  let cfg = st.cfg in
  let sid =
    match w.suspended with
    | Some node -> struct_of st node
    | None -> assert false
  in
  let members = ref [] in
  let count = ref 0 in
  Array.iter
    (fun v ->
      if
        v.status = Pending
        && !count < cfg.batch_cap
        && (match v.suspended with
           | Some node -> struct_of st node = sid
           | None -> false)
      then begin
        members := v.id :: !members;
        incr count
      end)
    st.workers;
  let members = Array.of_list (List.rev !members) in
  let ops =
    Array.map
      (fun m ->
        match st.pending.(m) with
        | Some node -> begin
            match st.core_inst.dag.Dag.kinds.(node) with
            | Dag.Ds idx -> idx
            | Dag.Core -> assert false
          end
        | None -> assert false)
      members
  in
  let bop = st.workload.Workload.models.(sid).Batched.Model.batch_cost ops in
  let bop = if cfg.sequential_batches then Par.leaf (Par.work bop) else bop in
  (* What-if scaling (Costs): in the DAG world work and span are
     coupled, so scaling the BOP's leaf costs scales both together;
     the identity factor returns the tree unchanged. *)
  let bop = Par.scale_costs ~factor:st.costs.Costs.bop_work bop in
  st.batch_details <-
    {
      Metrics.bd_sid = sid;
      bd_size = Array.length members;
      bd_work = Par.work bop;
      bd_span = Par.span bop;
    }
    :: st.batch_details;
  let overhead () =
    Par.scale_costs ~factor:st.costs.Costs.setup_work
      (if cfg.sequential_batches then Par.leaf cfg.p
       else Par.balanced ~leaf_cost:(fun _ -> 1) cfg.p)
  in
  let b = Dag.Build.create () in
  let pre =
    match cfg.overhead with
    | Tree_setup | Fused_setup -> [ Dag.Build.of_par b (overhead ()) ]
    | No_setup -> []
  in
  let lo = Dag.Build.node_count b in
  let bop_f = Dag.Build.of_par b bop in
  let hi = Dag.Build.node_count b in
  let post =
    match cfg.overhead with
    | Tree_setup -> [ Dag.Build.of_par b (overhead ()) ]
    | Fused_setup | No_setup -> []
  in
  let whole = Dag.Build.in_series b (pre @ [ bop_f ] @ post) in
  let dag = Dag.Build.finish b whole in
  let inst = make_inst ~origin:OBatch ~bop_lo:lo ~bop_hi:hi ~sid dag in
  (* Batch-coupling edge of the realized critical path: the batch dag's
     source inherits the deepest member operation's park depth. *)
  Array.iter
    (fun m ->
      let pd = st.workers.(m).park_depth in
      if pd > inst.depth.(dag.Dag.source) then inst.depth.(dag.Dag.source) <- pd)
    members;
  if st.tracing then
    st.trace <- Trace.Launched { time = st.time; worker = w.id; sid; members } :: st.trace;
  (* Report the setup cost actually charged by the dag: the balanced
     tree's internal nodes count too, so this is Par.work, not p. *)
  let setup_work =
    match cfg.overhead with
    | Tree_setup -> 2 * Par.work (overhead ())
    | Fused_setup -> Par.work (overhead ())
    | No_setup -> 0
  in
  Obs.Recorder.emit_batch_start st.rc ~worker:w.id ~time:st.time ~sid
    ~size:(Array.length members) ~setup:setup_work ~mode:0;
  Obs.Invariants.batch_started st.inv ~worker:w.id ~time:st.time ~sid
    ~size:(Array.length members) ~cap:cfg.batch_cap;
  st.active.(sid) <- Some { b_sid = sid; members };
  st.active_count <- st.active_count + 1;
  st.batches <- st.batches + 1;
  st.batch_size_total <- st.batch_size_total + Array.length members;
  if Array.length members > st.max_batch_size then
    st.max_batch_size <- Array.length members;
  Array.iter
    (fun m ->
      st.workers.(m).status <- Executing;
      Obs.Recorder.emit_status st.rc ~worker:m ~time:st.time Obs.Recorder.Executing)
    members;
  (* Every trapped worker with an outstanding operation on THIS structure
     observes one more batch execution (per-structure Lemma 2). *)
  Array.iter
    (fun v ->
      match v.status, v.suspended with
      | (Pending | Executing), Some node when struct_of st node = sid ->
          v.seen_batches <- v.seen_batches + 1
      | _ -> ())
    st.workers;
  st.force_launch <- false;
  (* The launching worker starts on LAUNCHBATCH's root immediately. *)
  assign w { inst; node = dag.Dag.source };
  exec_unit st w

let resume st w =
  (match w.suspended with
  | None -> assert false
  | Some node ->
      if st.tracing then
        st.trace <- Trace.Resumed { time = st.time; worker = w.id; node } :: st.trace;
      if Obs.Recorder.enabled st.rc then begin
        Obs.Recorder.emit_op_done st.rc ~worker:w.id ~time:st.time
          ~sid:(struct_of st node) ~batches_seen:w.seen_batches
          ~latency:(st.time - w.suspend_time);
        Obs.Recorder.emit_status st.rc ~worker:w.id ~time:st.time Obs.Recorder.Free
      end;
      Obs.Invariants.op_completed st.inv ~worker:w.id ~time:st.time
        ~sid:(struct_of st node) ~batches_seen:w.seen_batches;
      w.status <- Free;
      w.suspended <- None;
      enable_successors st w { inst = st.core_inst; node } ~d:w.resume_depth;
      (* [enable_successors] assigned a core successor if one became
         ready; a ds node cannot be the core sink by construction. *)
      if node = st.core_inst.dag.Dag.sink then
        failwith "Batcher sim: data-structure node is the core sink");
  if w.assigned <> None then exec_unit st w
  else note st w Obs.Recorder.Wsched

let victim st w =
  let p = st.cfg.p in
  if p <= 1 then None
  else begin
    let offset = 1 + Util.Rng.int w.rng (p - 1) in
    Some st.workers.((w.id + offset) mod p)
  end

let steal_attempt st w ~target_batch =
  (* A steal step is not part of any work run; close the run at its
     true end (the previous step) so Work segments stay non-overlapping. *)
  if Obs.Recorder.enabled st.rc then flush_run st w ~time:(st.time - 1);
  st.steal_attempts <- st.steal_attempts + 1;
  if w.status = Free then
    st.free_steal_attempts <- st.free_steal_attempts + 1
  else st.trapped_steal_attempts <- st.trapped_steal_attempts + 1;
  match victim st w with
  | None ->
      Obs.Recorder.emit_steal st.rc ~worker:w.id ~time:st.time ~victim:(-1)
        ~success:false ~batch_deque:target_batch
  | Some v -> begin
      let dq = if target_batch then v.batch_dq else v.core_dq in
      match Deque.steal_top dq with
      | None ->
          Obs.Recorder.emit_steal st.rc ~worker:w.id ~time:st.time ~victim:v.id
            ~success:false ~batch_deque:target_batch
      | Some task ->
          st.steal_successes <- st.steal_successes + 1;
          Obs.Recorder.emit_steal st.rc ~worker:w.id ~time:st.time ~victim:v.id
            ~success:true ~batch_deque:target_batch;
          assign w task;
          exec_unit st w
    end

let acquire_free st w =
  let core_empty = Deque.is_empty w.core_dq in
  let batch_empty = Deque.is_empty w.batch_dq in
  if st.cfg.check_invariants && (not core_empty) && not batch_empty then
    failwith "Batcher sim: Invariant 4 violated (both deques nonempty)";
  if not core_empty then begin
    match Deque.pop_bottom w.core_dq with
    | Some task ->
        assign w task;
        exec_unit st w
    | None -> assert false
  end
  else if not batch_empty then begin
    match Deque.pop_bottom w.batch_dq with
    | Some task ->
        assign w task;
        exec_unit st w
    | None -> assert false
  end
  else begin
    let k = w.steal_count in
    w.steal_count <- w.steal_count + 1;
    let target_batch =
      match st.cfg.steal_policy with
      | Alternating -> k land 1 = 1
      | Core_only -> false
      | Batch_only -> true
      | Uniform_random -> Util.Rng.bool w.rng
    in
    steal_attempt st w ~target_batch
  end

let acquire_trapped st w =
  if not (Deque.is_empty w.batch_dq) then begin
    match Deque.pop_bottom w.batch_dq with
    | Some task ->
        assign w task;
        exec_unit st w
    | None -> assert false
  end
  else if w.status = Done then resume st w
  else if
    w.status = Pending
    && (match w.suspended with
       | Some node ->
           let sid = struct_of st node in
           st.active.(sid) = None
           && (st.pending_per.(sid) >= st.cfg.launch_threshold || st.force_launch)
       | None -> false)
  then launch st w
  else steal_attempt st w ~target_batch:true

let step_worker st w =
  match w.assigned with
  | Some _ -> exec_unit st w
  | None -> if w.status = Free then acquire_free st w else acquire_trapped st w

let run_internal ~tracing ~costs ~recorder ~invariants cfg workload =
  if cfg.p < 1 then invalid_arg "Batcher.run: p >= 1";
  if cfg.batch_cap < 1 then invalid_arg "Batcher.run: batch_cap >= 1";
  Costs.check costs;
  if
    Obs.Recorder.enabled recorder
    && (Obs.Recorder.clock recorder <> Obs.Recorder.Timesteps
       || Obs.Recorder.workers recorder < cfg.p)
  then
    invalid_arg "Batcher.run: recorder must use the Timesteps clock and cover p workers";
  Workload.reset_models workload;
  let core_inst = make_inst ~origin:OCore workload.Workload.core in
  let n_structs = Array.length workload.Workload.models in
  let workers =
    Array.init cfg.p (fun id ->
        {
          id;
          core_dq = Deque.create ();
          batch_dq = Deque.create ();
          status = Free;
          assigned = None;
          remaining = 0;
          steal_count = 0;
          suspended = None;
          seen_batches = 0;
          suspend_time = 0;
          park_depth = 0;
          resume_depth = 0;
          wcls = Obs.Recorder.Wsched;
          wrun = 0;
          rng = Util.Rng.stream ~seed:cfg.seed ~index:id;
        })
  in
  let st =
    {
      cfg;
      costs;
      workload;
      core_inst;
      workers;
      pending = Array.make cfg.p None;
      pending_count = 0;
      pending_per = Array.make n_structs 0;
      active = Array.make n_structs None;
      active_count = 0;
      finished = false;
      force_launch = false;
      units_this_step = 0;
      time = 0;
      core_work = 0;
      batch_work = 0;
      setup_work = 0;
      batches = 0;
      batch_size_total = 0;
      max_batch_size = 0;
      steal_attempts = 0;
      steal_successes = 0;
      free_steal_attempts = 0;
      trapped_steal_attempts = 0;
      max_seen_batches = 0;
      span_realized = 0;
      batch_details = [];
      tracing;
      trace = [];
      rc = recorder;
      inv = invariants;
    }
  in
  assign workers.(0) { inst = core_inst; node = core_inst.dag.Dag.source };
  let idle_sweeps = ref 0 in
  while not st.finished do
    st.time <- st.time + 1;
    if st.time > cfg.max_steps then failwith "Batcher sim: max_steps exceeded";
    st.units_this_step <- 0;
    Array.iter (fun w -> step_worker st w) workers;
    (* Livelock escape for the accumulate-k launch ablation: if nothing
       executed for two sweeps while ops are parked, force a launch even
       below the threshold. Never triggers with the default threshold 1. *)
    if st.units_this_step = 0 && st.active_count = 0 && st.pending_count > 0 then begin
      incr idle_sweeps;
      if !idle_sweeps >= 2 then st.force_launch <- true
    end
    else idle_sweeps := 0
  done;
  Array.iter (fun w -> flush_run st w ~time:st.time) workers;
  {
    Metrics.p = cfg.p;
    makespan = st.time;
    core_work = st.core_work;
    batch_work = st.batch_work;
    setup_work = st.setup_work;
    batches = st.batches;
    batch_size_total = st.batch_size_total;
    max_batch_size = st.max_batch_size;
    steal_attempts = st.steal_attempts;
    steal_successes = st.steal_successes;
    free_steal_attempts = st.free_steal_attempts;
    trapped_steal_attempts = st.trapped_steal_attempts;
    max_batches_while_pending = st.max_seen_batches;
    span_realized = st.span_realized;
    total_records = Workload.total_records workload;
    batch_details = st.batch_details;
  },
  List.rev st.trace

let run ?(costs = Costs.identity) ?(recorder = Obs.Recorder.null)
    ?(invariants = Obs.Invariants.null) cfg workload =
  fst (run_internal ~tracing:false ~costs ~recorder ~invariants cfg workload)

let run_traced ?(costs = Costs.identity) ?(recorder = Obs.Recorder.null)
    ?(invariants = Obs.Invariants.null) cfg workload =
  run_internal ~tracing:true ~costs ~recorder ~invariants cfg workload
