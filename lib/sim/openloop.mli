(** Open-loop service simulation on the virtual clock.

    The closed-loop simulator ({!Batcher}) runs a core DAG to
    completion: every operation is issued the moment a worker is free
    to issue it, so measured latency can never show queueing delay the
    load itself creates — the coordinated-omission trap. This engine is
    the open-loop complement for service workloads: requests carry
    {e arrival times} fixed before the run, the virtual clock advances
    event-by-event (arrival or batch completion, whichever is next),
    and a request's wait is measured from its scheduled arrival — never
    from when the system got around to admitting it.

    The batching protocol is the paper's, per shard: each of [shards]
    structure instances has its own batch flag (Invariant 1 per shard),
    a launch collects up to [batch_cap] queued requests FIFO (the
    pending-array + overflow-queue admission of the real runtime), and
    every launch is wrapped in the Θ(P)-work / Θ(lg P)-span
    LAUNCHBATCH setup and cleanup stages. A batch's duration is the
    Brent bound of its cost DAG — (setup + BOP work)/p' + setup span +
    BOP span — with the worker share p' = max(1, P/K) statically
    partitioned across shards, a deliberately conservative model of K
    batches contending for one pool (when only one shard is busy it
    underestimates available workers, never the other way).

    Everything is deterministic: same config, models, and request
    array give byte-identical results. P is just an integer here, so a
    sweep to hundreds of workers is honest on a 1-CPU box. *)

type req = {
  at : int;  (** scheduled arrival, in cost units from time 0 *)
  shard : int;  (** owning shard, in [0, shards) *)
  cls : int;  (** opaque op-class label, reported back per request *)
}

type config = {
  p : int;  (** workers *)
  shards : int;
  batch_cap : int;  (** records per launch; the paper's cap is [p] *)
  sched_delay : int;
      (** cost units between a launch decision and the first setup
          node — the sim-side stand-in for the runtime's sched phase.
          Default 0 (the engine's admission is immediate); nonzero
          only for ablations and what-if runs ({!Costs}). *)
}

val config :
  ?batch_cap:int -> ?sched_delay:int -> p:int -> shards:int -> unit -> config
(** [batch_cap] defaults to [p] (Invariant 2); [sched_delay] to 0. *)

type result = {
  waits : int array;
      (** per request (same index as the input array): completion time
          minus scheduled arrival — end-to-end, queueing included *)
  launch_waits : int array;
      (** per request: its batch's launch time minus scheduled arrival
          — the pending-wait component of [waits]; the remainder
          ([waits.(i) - launch_waits.(i)]) is the batch's execution
          time. Feeds per-request phase anatomy ({!Obs.Reqtrace}). *)
  batches_seen : int array;
      (** per request: launches on its shard between arrival and
          completion, own batch included — the per-request Lemma-2
          figure ([max_batches_seen] is its maximum) *)
  makespan : int;  (** last batch completion *)
  batches : int;
  max_batch : int;
  total_work : int;  (** W: BOP plus setup/cleanup units over all batches *)
  batch_details : Metrics.batch_detail list;
      (** per launch, most recent first; [bd_sid] is the shard *)
  per_shard_ops : int array;  (** nᵢ of the composed Theorem-1 bound *)
  per_shard_span_max : int array;
      (** sᵢ: widest observed BOP span plus a launch's setup/cleanup
          span, per shard; 0 for untargeted shards *)
  max_batches_seen : int;
      (** max, over requests, of launches on the request's own shard
          between its arrival and its completion (its own batch
          included) — the open-loop Lemma-2 figure; grows with backlog
          under overload, ~2 when the system keeps up *)
  max_in_system : int;  (** peak arrived-but-not-completed count *)
}

val run :
  ?costs:Costs.t -> config -> models:Batched.Model.t array -> req array ->
  result
(** Simulate to completion (the arrival process is finite; every
    request is eventually served). [models.(i)] is shard [i]'s cost
    model ([Array.length models = shards]); models are [reset] before
    the run. The request array need not be sorted; it is processed in
    arrival order. Raises [Invalid_argument] on a request with a shard
    out of range or a negative arrival time.

    [costs] (default {!Costs.identity}) applies per-phase what-if
    scale factors — BOP work/span, LAUNCHBATCH setup work/span, the
    dispatch delay, and the per-shard worker share — for causal
    profiling; under the identity record the run is byte-identical to
    one without the plumbing. Raises [Invalid_argument] on
    non-positive factors. *)
