(** Discrete-event simulation of the BATCHER scheduler (Section 4 of the
    paper).

    Each of [p] workers executes at most one cost unit per timestep; a
    steal attempt (successful or not) also consumes one timestep, matching
    the accounting of the analysis. The scheduler state machine follows
    Figure 3:

    - every worker keeps a {e core deque} and a {e batch deque}
      (Invariant 3);
    - a free worker pops its nonempty deque, or — only when both are
      empty — steals, alternating between victims' core and batch deques
      (the alternating-steal policy);
    - executing a data-structure node parks an operation record in the
      worker's [pending] slot and traps the worker;
    - a trapped worker only works from batch deques; with an empty batch
      deque it resumes (status [done]), launches (CAS on the global batch
      flag, status [pending]), or steals from a random batch deque;
    - LAUNCHBATCH snapshots the pending array (giving batches of at most
      [p] operations — Invariant 2), wraps the data structure's BOP DAG
      with Θ(p)-work / Θ(lg p)-span setup and cleanup stages, and at most
      one batch is in flight at any time (Invariant 1).

    Setting [sequential_batches] degenerates BOP DAGs into a single
    sequential chain, which models {e flat combining}. The remaining knobs
    are ablations: [steal_policy], [launch_threshold] (accumulate-k
    launching), and [batch_cap]. *)

type steal_policy =
  | Alternating  (** the paper's policy: even attempts core, odd batch *)
  | Core_only
  | Batch_only
  | Uniform_random

(** How LAUNCHBATCH's scheduler overhead is modeled — the paper's
    conclusion asks whether the Θ(lg P)-span setup can be reduced by a
    cleverer communication mechanism; these variants quantify what such
    an improvement would buy (ablation A4). *)
type overhead_model =
  | Tree_setup  (** the paper's accounting: Θ(P)/Θ(lg P) setup + cleanup *)
  | Fused_setup  (** one fused Θ(P)/Θ(lg P) stage (merged status flips) *)
  | No_setup  (** zero-overhead oracle: an upper bound on any mechanism *)

type config = {
  p : int;
  seed : int;
  steal_policy : steal_policy;
  launch_threshold : int;  (** launch only when this many ops are pending *)
  batch_cap : int;  (** max data-structure nodes per batch, <= p *)
  sequential_batches : bool;  (** flat-combining mode *)
  overhead : overhead_model;
  check_invariants : bool;  (** assert Invariants 1-4 while running *)
  max_steps : int;  (** safety bound; raise if exceeded *)
}

val default : p:int -> config
(** Paper parameters: alternating steals, threshold 1, cap [p], parallel
    batches, invariant checks on, seed 1. *)

val run :
  ?costs:Costs.t ->
  ?recorder:Obs.Recorder.t ->
  ?invariants:Obs.Invariants.t ->
  config ->
  Workload.t ->
  Metrics.t
(** Simulate the workload to completion. The workload's models are
    [reset] before the run. Raises [Failure] on invariant violation or
    if [max_steps] is exceeded.

    [costs] (default {!Costs.identity}) applies what-if cost scaling
    for causal profiling: [bop_work] scales the leaf costs of every
    BOP [Par] tree and [setup_work] those of the LAUNCHBATCH overhead
    stages (work and span scale together — they are coupled in a real
    DAG; the span-only/sched/p_share knobs act in {!Openloop}, where
    the Brent terms are separable). Identity reproduces the unscaled
    run byte-for-byte.

    [recorder] (default {!Obs.Recorder.null}, i.e. off) captures the
    observability event stream — worker status transitions, steal
    attempts, batch launch/completion with size and setup work, and
    per-operation issue/completion with latency in timesteps and the
    Lemma-2 batches-seen count — stamped with the simulator's timestep
    clock. It must be a [Timesteps] recorder covering at least [p]
    workers.

    [invariants] (default {!Obs.Invariants.null}) feeds the online
    checkers at every park/launch/completion — an audit {e independent}
    of both the sim's internal [check_invariants] asserts and the
    post-hoc {!Trace.validate}, exercising the exact hooks the real
    runtime uses. Violations never raise here; read the counters after
    the run. Note the ablation configs can legitimately break the
    paper-default bounds (cap > p via [batch_cap], Lemma 2 via
    [launch_threshold]/[sequential_batches]); size the checker's
    [lemma2_bound] accordingly. *)

val run_traced :
  ?costs:Costs.t ->
  ?recorder:Obs.Recorder.t ->
  ?invariants:Obs.Invariants.t ->
  config ->
  Workload.t ->
  Metrics.t * Trace.event list
(** Like {!run}, additionally returning the chronological scheduler
    event trace for {!Trace.validate}. (The validator assumes the
    default immediate-launch, full-cap configuration; traces from the
    launch-threshold or batch-cap ablations may legitimately violate its
    Lemma-2 bound.) *)
