type config = {
  p : int;
  seed : int;
  max_steps : int;
}

let default ~p = { p; seed = 1; max_steps = 2_000_000_000 }

type task = int

type worker = {
  id : int;
  dq : task Deque.t;
  mutable assigned : task option;
  mutable remaining : int;
  mutable wrun : int;  (* consecutive executed units pending one Work event *)
  rng : Util.Rng.t;
}

type state = {
  cfg : config;
  dag : Dag.t;
  preds_left : int array;
  workers : worker array;
  mutable finished : bool;
  mutable time : int;
  mutable work_done : int;
  mutable steal_attempts : int;
  mutable steal_successes : int;
  rc : Obs.Recorder.t;
}

let assign w node ~(dag : Dag.t) =
  w.assigned <- Some node;
  w.remaining <- dag.Dag.costs.(node)

let complete st w node =
  w.assigned <- None;
  let newly = ref [] in
  Array.iter
    (fun s ->
      st.preds_left.(s) <- st.preds_left.(s) - 1;
      if st.preds_left.(s) = 0 then newly := s :: !newly)
    st.dag.Dag.succs.(node);
  (match List.rev !newly with
  | [] -> ()
  | first :: rest ->
      assign w first ~dag:st.dag;
      List.iter (fun s -> Deque.push_bottom w.dq s) rest);
  if node = st.dag.Dag.sink then st.finished <- true

let flush_run st w ~time =
  if w.wrun > 0 then begin
    Obs.Recorder.emit_work st.rc ~worker:w.id ~time ~cls:Obs.Recorder.Wcore
      ~units:w.wrun;
    w.wrun <- 0
  end

let exec_unit st w =
  match w.assigned with
  | None -> assert false
  | Some node ->
      st.work_done <- st.work_done + 1;
      if Obs.Recorder.enabled st.rc then w.wrun <- w.wrun + 1;
      w.remaining <- w.remaining - 1;
      if w.remaining = 0 then complete st w node

let step st w =
  match w.assigned with
  | Some _ -> exec_unit st w
  | None -> begin
      match Deque.pop_bottom w.dq with
      | Some node ->
          assign w node ~dag:st.dag;
          exec_unit st w
      | None ->
          (* A steal step interrupts the work run; close it at its true
             end (the previous step). *)
          flush_run st w ~time:(st.time - 1);
          st.steal_attempts <- st.steal_attempts + 1;
          if st.cfg.p > 1 then begin
            let offset = 1 + Util.Rng.int w.rng (st.cfg.p - 1) in
            let v = st.workers.((w.id + offset) mod st.cfg.p) in
            match Deque.steal_top v.dq with
            | None ->
                Obs.Recorder.emit_steal st.rc ~worker:w.id ~time:st.time ~victim:v.id
                  ~success:false ~batch_deque:false
            | Some node ->
                st.steal_successes <- st.steal_successes + 1;
                Obs.Recorder.emit_steal st.rc ~worker:w.id ~time:st.time ~victim:v.id
                  ~success:true ~batch_deque:false;
                assign w node ~dag:st.dag;
                exec_unit st w
          end
          else
            Obs.Recorder.emit_steal st.rc ~worker:w.id ~time:st.time ~victim:(-1)
              ~success:false ~batch_deque:false
    end

let run ?(recorder = Obs.Recorder.null) cfg dag =
  if Dag.ds_count dag > 0 then
    invalid_arg "Ws.run: dag contains data-structure nodes; use Batcher";
  let workers =
    Array.init cfg.p (fun id ->
        {
          id;
          dq = Deque.create ();
          assigned = None;
          remaining = 0;
          wrun = 0;
          rng = Util.Rng.stream ~seed:cfg.seed ~index:id;
        })
  in
  let st =
    {
      cfg;
      dag;
      preds_left = Array.copy dag.Dag.pred_count;
      workers;
      finished = false;
      time = 0;
      work_done = 0;
      steal_attempts = 0;
      steal_successes = 0;
      rc = recorder;
    }
  in
  assign workers.(0) dag.Dag.source ~dag;
  while not st.finished do
    st.time <- st.time + 1;
    if st.time > cfg.max_steps then failwith "Ws sim: max_steps exceeded";
    Array.iter (fun w -> step st w) workers
  done;
  Array.iter (fun w -> flush_run st w ~time:st.time) workers;
  {
    (Metrics.zero ~p:cfg.p) with
    Metrics.makespan = st.time;
    core_work = st.work_done;
    steal_attempts = st.steal_attempts;
    steal_successes = st.steal_successes;
    free_steal_attempts = st.steal_attempts;
  }
