type req = { at : int; shard : int; cls : int }

type config = { p : int; shards : int; batch_cap : int; sched_delay : int }

let config ?batch_cap ?(sched_delay = 0) ~p ~shards () =
  let batch_cap = match batch_cap with Some c -> c | None -> p in
  { p; shards; batch_cap; sched_delay }

type result = {
  waits : int array;
  launch_waits : int array;
  batches_seen : int array;
  makespan : int;
  batches : int;
  max_batch : int;
  total_work : int;
  batch_details : Metrics.batch_detail list;
  per_shard_ops : int array;
  per_shard_span_max : int array;
  max_batches_seen : int;
  max_in_system : int;
}

type inflight = {
  launched_at : int;
  done_at : int;
  members : int array;  (* request indices *)
}

type shard_state = {
  queue : int Queue.t;  (* request indices, FIFO *)
  mutable busy : inflight option;
  mutable launches : int;
}

let run ?(costs = Costs.identity) cfg ~models reqs =
  if cfg.p < 1 then invalid_arg "Openloop.run: p >= 1";
  if cfg.shards < 1 then invalid_arg "Openloop.run: shards >= 1";
  if cfg.batch_cap < 1 then invalid_arg "Openloop.run: batch_cap >= 1";
  if cfg.sched_delay < 0 then invalid_arg "Openloop.run: sched_delay >= 0";
  Costs.check costs;
  if Array.length models <> cfg.shards then
    invalid_arg "Openloop.run: one model per shard";
  Array.iter (fun m -> m.Batched.Model.reset ()) models;
  let n = Array.length reqs in
  Array.iter
    (fun r ->
      if r.shard < 0 || r.shard >= cfg.shards then
        invalid_arg "Openloop.run: request shard out of range";
      if r.at < 0 then invalid_arg "Openloop.run: negative arrival time")
    reqs;
  (* Arrival order; stable so same-instant requests keep input order
     (determinism — FIFO admission must not depend on sort internals). *)
  let order = Array.init n (fun i -> i) in
  let by_at i j = compare (reqs.(i).at, i) (reqs.(j).at, j) in
  Array.sort by_at order;
  let shards = Array.init cfg.shards (fun _ ->
      { queue = Queue.create (); busy = None; launches = 0 })
  in
  (* LAUNCHBATCH overhead: the paper's Θ(P)-work / Θ(lg P)-span setup
     and cleanup stages, identical to [Batcher]'s Tree_setup model.
     What-if scaling ([costs], identity by default) applies per term:
     setup here, BOP work/span per launch below, the dispatch delay,
     and the per-shard worker share — scaled after the max(1, P/K)
     clamp so granting a one-worker shard more virtual workers is
     expressible, then clamped back to >= 1. *)
  let overhead = Par.balanced ~leaf_cost:(fun _ -> 1) cfg.p in
  let setup_work = Costs.scale costs.Costs.setup_work (2 * Par.work overhead) in
  let setup_span = Costs.scale costs.Costs.setup_span (2 * Par.span overhead) in
  let p_share =
    max 1 (Costs.scale costs.Costs.p_share (max 1 (cfg.p / cfg.shards)))
  in
  let sched_delay = Costs.scale costs.Costs.sched cfg.sched_delay in
  let waits = Array.make n 0 in
  let launch_waits = Array.make n 0 in
  let batches_seen = Array.make n 0 in
  let launches_at_arrival = Array.make n 0 in
  let per_shard_ops = Array.make cfg.shards 0 in
  let per_shard_span_max = Array.make cfg.shards 0 in
  let batch_details = ref [] in
  let batches = ref 0 in
  let max_batch = ref 0 in
  let total_work = ref 0 in
  let max_seen = ref 0 in
  let in_system = ref 0 in
  let max_in_system = ref 0 in
  let makespan = ref 0 in
  let completed = ref 0 in
  let try_launch sid now =
    let s = shards.(sid) in
    if s.busy = None && not (Queue.is_empty s.queue) then begin
      let size = min cfg.batch_cap (Queue.length s.queue) in
      let members = Array.init size (fun _ -> Queue.pop s.queue) in
      let bop = models.(sid).Batched.Model.batch_cost members in
      let bop_work = Costs.scale costs.Costs.bop_work (Par.work bop)
      and bop_span = Costs.scale costs.Costs.bop_span (Par.span bop) in
      (* Brent bound of the wrapped batch DAG, plus the (default-zero)
         dispatch delay between winning the flag and the first setup
         node — the sim-side stand-in for the runtime's sched phase. *)
      let duration =
        ((setup_work + bop_work + p_share - 1) / p_share)
        + setup_span + bop_span + sched_delay
      in
      s.busy <- Some { launched_at = now; done_at = now + duration; members };
      s.launches <- s.launches + 1;
      incr batches;
      if size > !max_batch then max_batch := size;
      total_work := !total_work + setup_work + bop_work;
      per_shard_ops.(sid) <- per_shard_ops.(sid) + size;
      let s_i = bop_span + setup_span in
      if s_i > per_shard_span_max.(sid) then per_shard_span_max.(sid) <- s_i;
      batch_details :=
        { Metrics.bd_sid = sid; bd_size = size; bd_work = bop_work;
          bd_span = bop_span }
        :: !batch_details
    end
  in
  let complete sid =
    let s = shards.(sid) in
    match s.busy with
    | None -> assert false
    | Some b ->
        Array.iter
          (fun i ->
            waits.(i) <- b.done_at - reqs.(i).at;
            launch_waits.(i) <- b.launched_at - reqs.(i).at;
            let seen = s.launches - launches_at_arrival.(i) in
            batches_seen.(i) <- seen;
            if seen > !max_seen then max_seen := seen;
            decr in_system;
            incr completed)
          b.members;
        if b.done_at > !makespan then makespan := b.done_at;
        s.busy <- None;
        try_launch sid b.done_at
  in
  let next_arrival = ref 0 in
  while !completed < n do
    let t_arr =
      if !next_arrival < n then reqs.(order.(!next_arrival)).at else max_int
    in
    let t_done = ref max_int and done_sid = ref (-1) in
    Array.iteri
      (fun sid s ->
        match s.busy with
        | Some b when b.done_at < !t_done ->
            t_done := b.done_at;
            done_sid := sid
        | _ -> ())
      shards;
    (* Completions first at ties: a request arriving at the very instant
       a batch finishes sees a free shard, as in the real runtime where
       the finishing worker relaunches before new submitters re-check. *)
    if !t_done <= t_arr then complete !done_sid
    else begin
      let i = order.(!next_arrival) in
      incr next_arrival;
      let r = reqs.(i) in
      let s = shards.(r.shard) in
      (* A batch already in flight at arrival counts toward the
         request's batches-seen (Lemma 2 counts it: ≤ 2 means one
         in-flight plus one's own when the system keeps up). *)
      launches_at_arrival.(i) <-
        (s.launches - if s.busy <> None then 1 else 0);
      Queue.push i s.queue;
      incr in_system;
      if !in_system > !max_in_system then max_in_system := !in_system;
      try_launch r.shard r.at
    end
  done;
  {
    waits;
    launch_waits;
    batches_seen;
    makespan = !makespan;
    batches = !batches;
    max_batch = !max_batch;
    total_work = !total_work;
    batch_details = !batch_details;
    per_shard_ops;
    per_shard_span_max;
    max_batches_seen = !max_seen;
    max_in_system = !max_in_system;
  }
