type t = {
  core : Dag.t;
  models : Batched.Model.t array;
  assign : int -> int;
  records_per_node : int;
  n_nodes : int;
}

let total_records t = t.records_per_node * t.n_nodes

let model t = t.models.(0)

let reset_models t =
  Array.iter (fun m -> m.Batched.Model.reset ()) t.models

let core_metrics t =
  (Dag.work t.core, Dag.span t.core, Dag.ds_count t.core, Dag.ds_depth t.core)

let single_structure ~core ~model ~records_per_node ~n_nodes =
  { core; models = [| model |]; assign = (fun _ -> 0); records_per_node; n_nodes }

let parallel_loop_dag ~n_nodes ~pre ~post =
  let b = Dag.Build.create () in
  let next = ref 0 in
  let body _ =
    let idx = !next in
    incr next;
    let before = Dag.Build.single b ~cost:pre Dag.Core in
    let op = Dag.Build.single b (Dag.Ds idx) in
    let after = Dag.Build.single b ~cost:post Dag.Core in
    Dag.Build.in_series b [ before; op; after ]
  in
  let loop = Dag.Build.parallel_for b n_nodes body in
  let entry = Dag.Build.single b Dag.Core in
  let exit_ = Dag.Build.single b Dag.Core in
  let whole = Dag.Build.in_series b [ entry; loop; exit_ ] in
  Dag.Build.finish b whole

let parallel_ops ~model ~records_per_node ~n_nodes ?(pre = 1) ?(post = 1) () =
  if n_nodes < 1 then invalid_arg "Workload.parallel_ops: n_nodes >= 1";
  let core = parallel_loop_dag ~n_nodes ~pre ~post in
  single_structure ~core ~model ~records_per_node ~n_nodes

let sharded_ops ~model_for ~shards ~records_per_node ~n_nodes () =
  if shards < 1 then invalid_arg "Workload.sharded_ops: shards >= 1";
  if n_nodes < 1 then invalid_arg "Workload.sharded_ops: n_nodes >= 1";
  {
    core = parallel_loop_dag ~n_nodes ~pre:1 ~post:1;
    models = Batched.Shard.models ~shards model_for;
    (* The node index doubles as the operation's key, routed exactly as
       the real combinator routes: the sim's per-shard batch flags then
       exercise the same shard mix the runtime would. *)
    assign = (fun idx -> Batched.Shard.route ~shards idx);
    records_per_node;
    n_nodes;
  }

let per_structure_nodes t =
  let counts = Array.make (Array.length t.models) 0 in
  for idx = 0 to t.n_nodes - 1 do
    let sid = t.assign idx in
    counts.(sid) <- counts.(sid) + 1
  done;
  counts

let interleaved_ops ~models ~records_per_node ~n_nodes () =
  if models = [] then invalid_arg "Workload.interleaved_ops: no models";
  if n_nodes < 1 then invalid_arg "Workload.interleaved_ops: n_nodes >= 1";
  let models = Array.of_list models in
  let k = Array.length models in
  {
    core = parallel_loop_dag ~n_nodes ~pre:1 ~post:1;
    models;
    assign = (fun idx -> idx mod k);
    records_per_node;
    n_nodes;
  }

let chained_ops ~model ~records_per_node ~chain_length ~width ?(between = 1) () =
  if chain_length < 1 || width < 1 then
    invalid_arg "Workload.chained_ops: dimensions >= 1";
  let b = Dag.Build.create () in
  let next = ref 0 in
  let chain _ =
    let frags =
      List.concat_map
        (fun _ ->
          let idx = !next in
          incr next;
          [ Dag.Build.single b (Dag.Ds idx);
            Dag.Build.single b ~cost:between Dag.Core ])
        (List.init chain_length Fun.id)
    in
    Dag.Build.in_series b frags
  in
  let body = Dag.Build.parallel_for b width chain in
  let entry = Dag.Build.single b Dag.Core in
  let exit_ = Dag.Build.single b Dag.Core in
  let whole = Dag.Build.in_series b [ entry; body; exit_ ] in
  single_structure ~core:(Dag.Build.finish b whole) ~model ~records_per_node
    ~n_nodes:(chain_length * width)

let pthreaded ~model ~records_per_node ~threads ~ops_per_thread ?(between = 1) () =
  chained_ops ~model ~records_per_node ~chain_length:ops_per_thread ~width:threads
    ~between ()

let random ~model ~records_per_node ~size ~seed () =
  let rng = Util.Rng.create ~seed in
  let b = Dag.Build.create () in
  let next = ref 0 in
  let ds_node () =
    let idx = !next in
    incr next;
    Dag.Build.single b (Dag.Ds idx)
  in
  (* Recursively produce a fragment containing ~budget ds nodes. *)
  let rec build budget =
    if budget <= 1 then begin
      match Util.Rng.int rng 3 with
      | 0 -> Dag.Build.single b ~cost:(1 + Util.Rng.int rng 5) Dag.Core
      | _ -> ds_node ()
    end
    else begin
      let k = 2 + Util.Rng.int rng 3 in
      let parts = List.init k (fun _ -> build (budget / k)) in
      if Util.Rng.bool rng then Dag.Build.in_series b parts
      else Dag.Build.in_parallel b parts
    end
  in
  let body = build (max 1 size) in
  let entry = Dag.Build.single b Dag.Core in
  let exit_ = Dag.Build.single b Dag.Core in
  let whole = Dag.Build.in_series b [ entry; body; exit_ ] in
  single_structure ~core:(Dag.Build.finish b whole) ~model ~records_per_node
    ~n_nodes:!next

let pure_core ~leaf_cost ~leaves =
  let b = Dag.Build.create () in
  let body _ = Dag.Build.single b ~cost:leaf_cost Dag.Core in
  let loop = Dag.Build.parallel_for b leaves body in
  let entry = Dag.Build.single b Dag.Core in
  let exit_ = Dag.Build.single b Dag.Core in
  let whole = Dag.Build.in_series b [ entry; loop; exit_ ] in
  single_structure ~core:(Dag.Build.finish b whole)
    ~model:(Batched.Counter.sim_model ())
    ~records_per_node:1 ~n_nodes:0
