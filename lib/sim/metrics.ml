type t = {
  p : int;
  makespan : int;
  core_work : int;
  batch_work : int;
  setup_work : int;
  batches : int;
  batch_size_total : int;
  max_batch_size : int;
  steal_attempts : int;
  steal_successes : int;
  free_steal_attempts : int;
  trapped_steal_attempts : int;
  max_batches_while_pending : int;
  span_realized : int;
  total_records : int;
  batch_details : batch_detail list;
}

and batch_detail = {
  bd_sid : int;
  bd_size : int;
  bd_work : int;
  bd_span : int;
}

let trimmed_span ~tau t =
  List.fold_left
    (fun acc d -> if d.bd_span > tau then acc + d.bd_span else acc)
    0 t.batch_details

let count_long ~tau t =
  List.length (List.filter (fun d -> d.bd_span > tau) t.batch_details)

let count_wide ~tau t =
  List.length (List.filter (fun d -> d.bd_work > t.p * tau) t.batch_details)

let count_popular t =
  List.length (List.filter (fun d -> 4 * d.bd_size > t.p) t.batch_details)

let zero ~p =
  {
    p;
    makespan = 0;
    core_work = 0;
    batch_work = 0;
    setup_work = 0;
    batches = 0;
    batch_size_total = 0;
    max_batch_size = 0;
    steal_attempts = 0;
    steal_successes = 0;
    free_steal_attempts = 0;
    trapped_steal_attempts = 0;
    max_batches_while_pending = 0;
    span_realized = 0;
    total_records = 0;
    batch_details = [];
  }

let throughput t =
  if t.makespan = 0 then 0.0
  else float_of_int t.total_records /. float_of_int t.makespan

let speedup ~baseline t = float_of_int baseline.makespan /. float_of_int t.makespan

let pp fmt t =
  Format.fprintf fmt
    "@[<v>p=%d makespan=%d@,work: core=%d batch=%d setup=%d@,\
     batches=%d (avg size %.2f, max %d)@,\
     steals: %d attempts, %d successes (free %d, trapped %d)@,\
     lemma2 max batches while pending=%d@,span_realized=%d@,\
     records=%d throughput=%.4f@]"
    t.p t.makespan t.core_work t.batch_work t.setup_work t.batches
    (if t.batches = 0 then 0.0
     else float_of_int t.batch_size_total /. float_of_int t.batches)
    t.max_batch_size t.steal_attempts t.steal_successes t.free_steal_attempts
    t.trapped_steal_attempts t.max_batches_while_pending t.span_realized
    t.total_records (throughput t)

let pp_row_header fmt () =
  Format.fprintf fmt "%4s %12s %12s %10s %8s %10s %12s" "P" "makespan"
    "throughput" "batches" "avgsz" "steals" "setup"

let pp_row fmt t =
  Format.fprintf fmt "%4d %12d %12.5f %10d %8.2f %10d %12d" t.p t.makespan
    (throughput t) t.batches
    (if t.batches = 0 then 0.0
     else float_of_int t.batch_size_total /. float_of_int t.batches)
    t.steal_attempts t.setup_work
