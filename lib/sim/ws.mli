(** Classic randomized work stealing (Blumofe-Leiserson / ABP) for core
    DAGs without data-structure nodes — the baseline scheduler that
    BATCHER extends, used to validate the simulator against the classic
    O(T1/P + T∞) bound. *)

type config = {
  p : int;
  seed : int;
  max_steps : int;
}

val default : p:int -> config

val run : ?recorder:Obs.Recorder.t -> config -> Dag.t -> Metrics.t
(** Raises [Invalid_argument] if the DAG contains [Ds] nodes.
    [recorder] (default off) captures steal-attempt events with the
    timestep clock — the classic scheduler has no batches or statuses
    to record. *)
