type t = {
  bop_work : float;
  bop_span : float;
  setup_work : float;
  setup_span : float;
  sched : float;
  p_share : float;
}

let identity =
  {
    bop_work = 1.0;
    bop_span = 1.0;
    setup_work = 1.0;
    setup_span = 1.0;
    sched = 1.0;
    p_share = 1.0;
  }

let is_identity c = c = identity

(* The identity factor must return its argument unchanged (not merely
   round-trip through float), so a run under [identity] is
   byte-identical to a run on a build without the costs plumbing — the
   golden test in test/test_service.ml holds this against recorded
   pre-plumbing digests. *)
let scale f x =
  if f = 1.0 then x
  else max 0 (int_of_float (Float.round (f *. float_of_int x)))

let check c =
  let pos name f =
    if Float.is_nan f || f <= 0.0 then
      invalid_arg (Printf.sprintf "Costs: %s factor must be > 0, got %g" name f)
  in
  pos "bop_work" c.bop_work;
  pos "bop_span" c.bop_span;
  pos "setup_work" c.setup_work;
  pos "setup_span" c.setup_span;
  pos "sched" c.sched;
  pos "p_share" c.p_share
