(** Workloads: a core DAG plus the cost models of the data structures its
    [Ds] nodes target.

    A workload may use several independent abstract data types at once
    (as real programs do — e.g. a hash table and a counter side by side);
    [assign] maps each operation index to its structure. The scheduler
    maintains the batching protocol {e per structure}: Invariants 1 and 2
    hold for each structure independently, and the performance theorem
    composes by summing each structure's W and s terms.

    [Ds] node payloads are operation indices [0 .. n_nodes-1], assigned in
    construction order; each node stands for [records_per_node] actual
    data-structure records (the paper's Section 7 experiment issues 100
    insertion records per BATCHIFY call). *)

type t = {
  core : Dag.t;
  models : Batched.Model.t array;  (** one per structure; nonempty *)
  assign : int -> int;  (** operation index -> index into [models] *)
  records_per_node : int;
  n_nodes : int;
}

val total_records : t -> int

val model : t -> Batched.Model.t
(** The first (often only) structure's model. *)

val reset_models : t -> unit

val core_metrics : t -> int * int * int * int
(** [(t1, t_inf, n, m)] of the core DAG — work, span, data-structure
    nodes, max data-structure nodes on a path. *)

val parallel_ops :
  model:Batched.Model.t ->
  records_per_node:int ->
  n_nodes:int ->
  ?pre:int ->
  ?post:int ->
  unit ->
  t
(** The paper's canonical core program (Figure 1): a parallel loop whose
    body performs one data-structure operation, preceded by [pre] and
    followed by [post] units of core work (both default 1). m = 1. *)

val interleaved_ops :
  models:Batched.Model.t list ->
  records_per_node:int ->
  n_nodes:int ->
  unit ->
  t
(** Like {!parallel_ops}, but iteration [i] targets structure
    [i mod (length models)] — a program using several implicitly batched
    structures at once. *)

val sharded_ops :
  model_for:(int -> Batched.Model.t) ->
  shards:int ->
  records_per_node:int ->
  n_nodes:int ->
  unit ->
  t
(** {!parallel_ops} over a structure sharded K ways: [model_for i] is
    shard [i]'s cost model (typically the structure at ~1/K of its full
    size), and iteration [idx] targets shard
    [Batched.Shard.route ~shards idx] — the node index doubles as the
    key, routed exactly as the real combinator routes, so the sim's
    per-shard batch flags see the same shard mix the runtime would.
    With [shards = 1] this degenerates to {!parallel_ops}. *)

val per_structure_nodes : t -> int array
(** Data-structure nodes assigned to each structure (index = sid);
    sums to [n_nodes]. The per-shard n_i of the composed Theorem-1
    bound and of per-shard conservation checks. *)

val chained_ops :
  model:Batched.Model.t ->
  records_per_node:int ->
  chain_length:int ->
  width:int ->
  ?between:int ->
  unit ->
  t
(** [width] parallel chains, each a sequence of [chain_length] operations
    separated by [between] units of core work — so n = width·chain_length
    and m = chain_length. Exercises the m·s(n) term of Theorem 1. *)

val pthreaded :
  model:Batched.Model.t ->
  records_per_node:int ->
  threads:int ->
  ops_per_thread:int ->
  ?between:int ->
  unit ->
  t
(** The paper's closing suggestion: a statically threaded program — each
    of [threads] "pthreads" is a sequential chain of operations with
    [between] units of local work between calls; only the data-structure
    batches are dynamically scheduled. Equivalent to [chained_ops] with
    [width = threads], named for the scenario it models. *)

val pure_core : leaf_cost:int -> leaves:int -> t
(** A data-structure-free balanced computation (for validating the plain
    work-stealing bound O(T1/P + T∞)); its model is a dummy counter. *)

val random :
  model:Batched.Model.t ->
  records_per_node:int ->
  size:int ->
  seed:int ->
  unit ->
  t
(** A random series-parallel core DAG with roughly [size] operation
    nodes: recursively composes series and parallel blocks of core work
    and data-structure calls. Used by the fuzzing properties to cover
    shapes beyond flat loops and chains. Deterministic in [seed]. *)
