type t =
  | Leaf of int
  | Series of t list
  | Branch of t list

let leaf c = Leaf (max 1 c)

let series = function
  | [] -> invalid_arg "Par.series: empty"
  | [ x ] -> x
  | l -> Series l

let branch = function
  | [] -> invalid_arg "Par.branch: empty"
  | [ x ] -> x
  | l -> Branch l

let balanced ~leaf_cost k =
  if k < 1 then invalid_arg "Par.balanced: k must be >= 1";
  (* Build the leaf list; the Branch lowering produces the balanced binary
     fork/join tree over them. *)
  branch (List.init k (fun i -> leaf (leaf_cost i)))

(* Work and span are defined to agree exactly with the binary lowering in
   Dag.of_par: a Branch over the sublist [lo, hi) splits at the midpoint,
   spending one unit-cost fork node and one unit-cost join node per split. *)

let rec work = function
  | Leaf c -> c
  | Series l -> List.fold_left (fun acc x -> acc + work x) 0 l
  | Branch l ->
      let arr = Array.of_list l in
      branch_work arr 0 (Array.length arr)

and branch_work arr lo hi =
  if hi - lo = 1 then work arr.(lo)
  else begin
    let mid = (lo + hi) / 2 in
    2 + branch_work arr lo mid + branch_work arr mid hi
  end

let rec span = function
  | Leaf c -> c
  | Series l -> List.fold_left (fun acc x -> acc + span x) 0 l
  | Branch l ->
      let arr = Array.of_list l in
      branch_span arr 0 (Array.length arr)

and branch_span arr lo hi =
  if hi - lo = 1 then span arr.(lo)
  else begin
    let mid = (lo + hi) / 2 in
    2 + max (branch_span arr lo mid) (branch_span arr mid hi)
  end

(* Factor 1.0 returns the tree physically unchanged so identity-cost
   what-if runs (Sim.Costs) stay byte-identical to unscaled ones. Leaf
   clamping (>= 1) means scaling cannot erase a leaf: fork/join
   structure — and therefore the span's tree-depth component — is
   preserved, only the sequential chains stretch or shrink. *)
let rec scale_costs ~factor t =
  if factor = 1.0 then t
  else
    match t with
    | Leaf c -> leaf (int_of_float (Float.round (factor *. float_of_int c)))
    | Series l -> Series (List.map (scale_costs ~factor) l)
    | Branch l -> Branch (List.map (scale_costs ~factor) l)

let rec leaves = function
  | Leaf _ -> 1
  | Series l | Branch l -> List.fold_left (fun acc x -> acc + leaves x) 0 l

let rec pp fmt = function
  | Leaf c -> Format.fprintf fmt "%d" c
  | Series l ->
      Format.fprintf fmt "(seq@ %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        l
  | Branch l ->
      Format.fprintf fmt "(par@ %a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        l
