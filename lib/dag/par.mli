(** Series-parallel cost expressions.

    A [Par.t] describes the fork-join structure and per-node costs of a
    dynamically multithreaded computation without materializing its DAG.
    Batched data structures describe each BOP invocation as a [Par.t];
    the simulator lowers it to a batch DAG ({!Dag.of_par}), and the
    analytic model reads work and span directly.

    Lowering uses binary forking, as the paper assumes: a [Branch] of k
    children becomes a balanced binary tree of unit-cost fork nodes and a
    matching tree of unit-cost join nodes, so a k-way parallel combine
    contributes Θ(k) work and Θ(lg k) span of overhead. [work] and [span]
    here agree exactly with the lowered DAG's work and span. *)

type t =
  | Leaf of int  (** a sequential chain of [c] unit-time nodes, [c >= 1] *)
  | Series of t list  (** sequential composition; list must be nonempty *)
  | Branch of t list  (** parallel composition; list must be nonempty *)

val leaf : int -> t
(** [leaf c] clamps cost to at least 1. *)

val series : t list -> t
val branch : t list -> t

val balanced : leaf_cost:(int -> int) -> int -> t
(** [balanced ~leaf_cost k] is a parallel combine over [k] leaves where
    leaf [i] costs [leaf_cost i] — e.g. parallel-for, reduction trees,
    parallel prefix sums all have this shape. [k >= 1]. *)

val work : t -> int
(** Total node cost after lowering, including fork/join overhead nodes. *)

val span : t -> int
(** Longest path cost after lowering, including fork/join overhead. *)

val scale_costs : factor:float -> t -> t
(** Multiply every [Leaf] cost by [factor], rounding to nearest and
    clamping at 1 (the fork/join structure is preserved, so span keeps
    its tree-depth component). [factor = 1.0] returns the tree
    physically unchanged — the identity guarantee what-if runs
    ([Sim.Costs]) rely on. *)

val leaves : t -> int
(** Number of [Leaf] constructors. *)

val pp : Format.formatter -> t -> unit
