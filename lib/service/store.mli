(** The batched structures behind the service, behind one first-class
    interface so scenarios pick a backing store by name and the drivers
    stay store-agnostic.

    A store adapts one [Batched] structure to the service's needs on
    both execution paths: [op_of] translates a generated request into
    the structure's operation record, [plan]/[run_batch] are what
    [Runtime.Shard_rt] needs to execute it for real, and [model] is the
    per-shard simulator cost model [Sim.Openloop] charges batches with.
    [prepopulate] loads the even keys of [0, n_keys) before measurement
    so gets/deletes hit ~50% and the structure is at its steady-state
    size. *)

module type STORE = sig
  type t
  type op

  val name : string

  val supports_range : bool
  (** When [false], scenarios fold the range share into gets
      ({!Gen.fold_range_into_get}) before generating. *)

  val create : seed:int -> shard:int -> t

  val prepopulate : t -> shards:int -> shard:int -> n_keys:int -> unit
  (** Sequentially insert the even keys of [0, n_keys) owned by
      [shard] under {!Batched.Shard.route}. *)

  val op_of : Gen.request -> op

  val plan : shards:int -> op -> op Batched.Shard.plan

  val run_batch : Runtime.Pool.t -> t -> op array -> unit
  (** The BOP, parallelized over the pool where the structure supports
      it. Per-shard Invariant 1 makes calls on the same [t] serial. *)

  val model : n_keys:int -> shards:int -> int -> Batched.Model.t
  (** [model ~n_keys ~shards i] is shard [i]'s simulator cost model,
      sized for its ~[n_keys/2/shards]-element steady state. *)
end

type t = (module STORE)

val skiplist : t
(** {!Batched.Skiplist}: ranges supported (scatter + sorted merge);
    searches of a batch run through [Pool.parallel_for]. *)

val hashtable : t
(** {!Batched.Hashtable}: point ops only. *)

val two_three : t
(** {!Batched.Two_three} (functional; state is a [t ref]): point ops
    only — cross-shard range plans are [Batched.Ostree] territory. *)

val all : (string * t) list
val find : string -> t option
