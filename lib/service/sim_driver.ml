type point = {
  p : int;
  shards : int;
  requests : int;
  makespan_ns : float;
  goodput : float;
  classes : Latency.class_stats list;
  batches : int;
  max_batch : int;
  max_batches_seen : int;
  max_in_system : int;
  bound : (unit, string) result;
  bound_budget_ns : float;
  bound_terms : Check.Bound.service_terms;
  trace : Obs.Reqtrace.t;
}

let class_of_index = [| Gen.Get; Gen.Put; Gen.Delete; Gen.Range |]

let run_point ?(trace = false) ?(costs = Sim.Costs.identity) (sc : Scenario.t)
    ~p =
  let (module S : Store.STORE) = sc.Scenario.store in
  let shards = sc.Scenario.sim_shards in
  let unit_ns = sc.Scenario.sim_ns_per_unit in
  let reqs = Gen.generate_n (Scenario.gen_sim sc) ~n:sc.Scenario.sim_requests in
  (* Range requests route by their start key as point submissions: the
     virtual-clock engine has no scatter/merge, and charging the full
     batch protocol on one shard is the load that matters here. The
     runtime leg executes the real fan-out. *)
  let olreqs =
    Array.map
      (fun (r : Gen.request) ->
        {
          Sim.Openloop.at = r.Gen.arrive_ns / unit_ns;
          shard = Batched.Shard.route ~shards r.Gen.key;
          cls = Gen.class_index r.Gen.cls;
        })
      reqs
  in
  let models =
    Array.init shards (fun i -> S.model ~n_keys:sc.Scenario.n_keys ~shards i)
  in
  let cfg = Sim.Openloop.config ~p ~shards () in
  let res = Sim.Openloop.run ~costs cfg ~models olreqs in
  let n = Array.length res.Sim.Openloop.waits in
  let per_class = Array.make Gen.n_classes [] in
  let wait_max = ref 0 in
  Array.iteri
    (fun i w ->
      if w > !wait_max then wait_max := w;
      let c = olreqs.(i).Sim.Openloop.cls in
      per_class.(c) <- float_of_int (w * unit_ns) :: per_class.(c))
    res.Sim.Openloop.waits;
  let named =
    Array.to_list
      (Array.mapi
         (fun i samples ->
           (Gen.class_name class_of_index.(i), Array.of_list samples))
         per_class)
  in
  (* The virtual-clock anatomy is two phases — pending-wait (arrival to
     batch launch) and batch-exec (launch to completion); the engine
     admits at arrival and resumes at completion, so queue/sched are
     structurally zero. One bulk record per request, deterministic. *)
  let rtr =
    if trace then
      Obs.Reqtrace.create ~workers:1 ~classes:Gen.n_classes ~capacity:n ()
    else Obs.Reqtrace.null
  in
  if trace then
    for i = 0 to n - 1 do
      let w = res.Sim.Openloop.waits.(i)
      and lw = res.Sim.Openloop.launch_waits.(i) in
      Obs.Reqtrace.record_sim rtr ~token:i
        ~cls:olreqs.(i).Sim.Openloop.cls
        ~sid:olreqs.(i).Sim.Openloop.shard
        ~arrive_ns:(olreqs.(i).Sim.Openloop.at * unit_ns)
        ~pending_ns:(lw * unit_ns)
        ~exec_ns:((w - lw) * unit_ns)
        ~seen:res.Sim.Openloop.batches_seen.(i)
    done;
  let makespan_ns = float_of_int (res.Sim.Openloop.makespan * unit_ns) in
  let bound =
    Check.Bound.service_check ~factor:sc.Scenario.bound_factor ~p
      ~wait_max:!wait_max ~total_work:res.Sim.Openloop.total_work
      ~per_shard_ops:res.Sim.Openloop.per_shard_ops
      ~per_shard_span:res.Sim.Openloop.per_shard_span_max
      ~m:res.Sim.Openloop.max_batches_seen ()
  in
  (* The same bound terms the check uses, exposed for the causal
     profiler: each what-if cell re-evaluates the budget on its own
     measured quantities, so measured-vs-bound sensitivity can be
     compared cell by cell. *)
  let bound_terms =
    Check.Bound.service_terms ~p ~total_work:res.Sim.Openloop.total_work
      ~per_shard_ops:res.Sim.Openloop.per_shard_ops
      ~per_shard_span:res.Sim.Openloop.per_shard_span_max
      ~m:res.Sim.Openloop.max_batches_seen
  in
  let bound_budget_ns =
    float_of_int
      (Check.Bound.service_budget ~p ~total_work:res.Sim.Openloop.total_work
         ~per_shard_ops:res.Sim.Openloop.per_shard_ops
         ~per_shard_span:res.Sim.Openloop.per_shard_span_max
         ~m:res.Sim.Openloop.max_batches_seen
      * unit_ns)
  in
  {
    p;
    shards;
    requests = n;
    makespan_ns;
    goodput = (if makespan_ns > 0.0 then float_of_int n /. (makespan_ns /. 1e9) else 0.0);
    classes = Latency.of_samples named;
    batches = res.Sim.Openloop.batches;
    max_batch = res.Sim.Openloop.max_batch;
    max_batches_seen = res.Sim.Openloop.max_batches_seen;
    max_in_system = res.Sim.Openloop.max_in_system;
    bound;
    bound_budget_ns;
    bound_terms;
    trace = rtr;
  }

let run ?trace sc = List.map (fun p -> run_point ?trace sc ~p) sc.Scenario.sim_p
