type op_class = Get | Put | Delete | Range

let class_name = function
  | Get -> "get"
  | Put -> "put"
  | Delete -> "delete"
  | Range -> "range"

let class_index = function Get -> 0 | Put -> 1 | Delete -> 2 | Range -> 3
let n_classes = 4

type mix = { get : float; put : float; delete : float; range : float }

let default_mix = { get = 0.75; put = 0.20; delete = 0.03; range = 0.02 }

let fold_range_into_get m = { m with get = m.get +. m.range; range = 0.0 }

type burst = { on_s : float; off_s : float; mult : float }

(* ---- Zipf by rejection inversion (Hörmann & Derflinger 1996) ----

   Samples rank k in [1, n] with P(k) ∝ k^(-θ) by inverting the
   integral H of the hat function h(x) = x^(-θ) and rejecting against
   the true mass — O(1) expected draws, no per-key table, so the key
   space can be 100M without a multi-second harmonic precompute. The
   θ = 1 singularity of H(x) = (x^(1-θ) - 1)/(1-θ) switches to ln x. *)

type zipf = {
  z_n : int;
  z_theta : float;
  z_hx1 : float;  (* H(1.5) - 1: top of the inversion interval *)
  z_hn : float;  (* H(n + 0.5): bottom of the inversion interval *)
  z_s : float;  (* acceptance shortcut threshold *)
}

let near_one theta = Float.abs (theta -. 1.0) < 1e-9

let h_integral ~theta x =
  if near_one theta then log x
  else begin
    let p = 1.0 -. theta in
    (exp (p *. log x) -. 1.0) /. p
  end

let h_integral_inverse ~theta x =
  if near_one theta then exp x
  else begin
    let p = 1.0 -. theta in
    let t = Float.max (-1.0) (x *. p) in
    exp (log1p t /. p)
  end

let h ~theta x = exp (-.theta *. log x)

let zipf ~n ~theta =
  if n < 1 then invalid_arg "Gen.zipf: n >= 1";
  if theta < 0.0 then invalid_arg "Gen.zipf: theta >= 0";
  {
    z_n = n;
    z_theta = theta;
    z_hx1 = h_integral ~theta 1.5 -. 1.0;
    z_hn = h_integral ~theta (float_of_int n +. 0.5);
    z_s = 2.0 -. h_integral_inverse ~theta (h_integral ~theta 2.5 -. h ~theta 2.0);
  }

let zipf_sample rng z =
  if z.z_n = 1 then 0
  else begin
    let theta = z.z_theta in
    let rec draw () =
      let u = z.z_hn +. (Util.Rng.float rng 1.0 *. (z.z_hx1 -. z.z_hn)) in
      let x = h_integral_inverse ~theta u in
      let k = int_of_float (x +. 0.5) in
      let k = if k < 1 then 1 else if k > z.z_n then z.z_n else k in
      if
        float_of_int k -. x <= z.z_s
        || u >= h_integral ~theta (float_of_int k +. 0.5) -. h ~theta (float_of_int k)
      then k - 1
      else draw ()
    in
    draw ()
  end

(* Rank-to-key bijection: multiply by an odd constant coprime to
   [n_keys] (plus an offset), so hot ranks land on scattered keys
   instead of a contiguous prefix. Coprimality makes it a permutation
   of [0, n_keys) — every rank is a distinct key. *)
let scramble_candidates =
  [| 2_654_435_761; 2_246_822_519; 3_266_489_917; 668_265_263; 374_761_393 |]

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let scramble_mult n_keys =
  let rec pick i =
    if i >= Array.length scramble_candidates then 1
    else if gcd scramble_candidates.(i) n_keys = 1 then scramble_candidates.(i)
    else pick (i + 1)
  in
  pick 0

let scramble ~n_keys rank =
  if n_keys <= 1 then 0
  else ((rank * scramble_mult n_keys) + 0x5DEECE) mod n_keys

(* ---- generator ---- *)

type t = {
  seed : int;
  n_keys : int;
  rate : float;
  theta : float;
  burst : burst option;
  mix : mix;
  locality : float;
  recent_window : int;
  range_width : int;
  z : zipf;
  mult : int;  (* scramble multiplier, precomputed *)
  cum : float array;  (* cumulative class weights, normalized *)
}

let make ?(theta = 0.99) ?(burst = None) ?(mix = default_mix)
    ?(locality = 0.0) ?(recent_window = 1024) ?(range_width = 16) ~seed
    ~n_keys ~rate () =
  if n_keys < 1 then invalid_arg "Gen.make: n_keys >= 1";
  if rate <= 0.0 then invalid_arg "Gen.make: rate > 0";
  if locality < 0.0 || locality > 1.0 then
    invalid_arg "Gen.make: locality in [0,1]";
  if recent_window < 1 then invalid_arg "Gen.make: recent_window >= 1";
  (match burst with
  | Some b ->
      if b.on_s <= 0.0 || b.off_s <= 0.0 || b.mult < 1.0 then
        invalid_arg "Gen.make: burst needs on_s > 0, off_s > 0, mult >= 1"
  | None -> ());
  let w = [| mix.get; mix.put; mix.delete; mix.range |] in
  Array.iter
    (fun x -> if x < 0.0 then invalid_arg "Gen.make: negative mix weight")
    w;
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Gen.make: mix weights sum to 0";
  let cum = Array.make n_classes 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      acc := !acc +. (x /. total);
      cum.(i) <- !acc)
    w;
  cum.(n_classes - 1) <- 1.0;
  {
    seed;
    n_keys;
    rate;
    theta;
    burst;
    mix;
    locality;
    recent_window;
    range_width;
    z = zipf ~n:n_keys ~theta;
    mult = scramble_mult n_keys;
    cum;
  }

let expected_rate t =
  match t.burst with
  | None -> t.rate
  | Some b -> t.rate *. (b.off_s +. (b.mult *. b.on_s)) /. (b.off_s +. b.on_s)

type request = { arrive_ns : int; cls : op_class; key : int; key2 : int }

(* One Exp(1) draw; [Rng.float] is in [0, 1), so the argument of [log]
   is in (0, 1] and the result is finite and nonnegative. *)
let exp1 rng = -.log (1.0 -. Util.Rng.float rng 1.0)

type stream = {
  g : t;
  rng : Util.Rng.t;
  mutable t_ns : float;
  mutable on : bool;  (* inside a burst episode *)
  mutable phase_end_ns : float;
  ring : int array;  (* recently touched keys *)
  mutable ring_len : int;
  mutable ring_pos : int;
}

let stream_of g =
  let rng = Util.Rng.create ~seed:g.seed in
  let phase_end_ns =
    match g.burst with
    | None -> Float.max_float
    | Some b -> exp1 rng *. b.off_s *. 1e9 (* start quiet *)
  in
  {
    g;
    rng;
    t_ns = 0.0;
    on = false;
    phase_end_ns;
    ring = Array.make g.recent_window 0;
    ring_len = 0;
    ring_pos = 0;
  }

(* Advance to the next arrival: spend an Exp(1) amount of "unit-rate
   work" against the piecewise-constant rate, switching burst phases
   exactly at their boundaries. *)
let next_arrival_ns s =
  let g = s.g in
  let w = ref (exp1 s.rng) in
  (match g.burst with
  | None -> s.t_ns <- s.t_ns +. (!w /. (g.rate /. 1e9))
  | Some b ->
      let finished = ref false in
      while not !finished do
        let rate_ns = g.rate *. (if s.on then b.mult else 1.0) /. 1e9 in
        let capacity = (s.phase_end_ns -. s.t_ns) *. rate_ns in
        if !w <= capacity then begin
          s.t_ns <- s.t_ns +. (!w /. rate_ns);
          finished := true
        end
        else begin
          w := !w -. capacity;
          s.t_ns <- s.phase_end_ns;
          s.on <- not s.on;
          let mean_s = if s.on then b.on_s else b.off_s in
          s.phase_end_ns <- s.t_ns +. (exp1 s.rng *. mean_s *. 1e9)
        end
      done);
  int_of_float s.t_ns

let touch s key =
  s.ring.(s.ring_pos) <- key;
  s.ring_pos <- (s.ring_pos + 1) mod Array.length s.ring;
  if s.ring_len < Array.length s.ring then s.ring_len <- s.ring_len + 1

let draw_key s =
  let g = s.g in
  let key =
    if
      g.locality > 0.0 && s.ring_len > 0
      && Util.Rng.float s.rng 1.0 < g.locality
    then s.ring.(Util.Rng.int s.rng s.ring_len)
    else begin
      let rank = zipf_sample s.rng g.z in
      if g.n_keys <= 1 then 0 else ((rank * g.mult) + 0x5DEECE) mod g.n_keys
    end
  in
  touch s key;
  key

let draw_class s =
  let r = Util.Rng.float s.rng 1.0 in
  if r < s.g.cum.(0) then Get
  else if r < s.g.cum.(1) then Put
  else if r < s.g.cum.(2) then Delete
  else Range

let next_request s =
  let arrive_ns = next_arrival_ns s in
  let cls = draw_class s in
  let key = draw_key s in
  let key2 =
    match cls with
    | Range -> key + s.g.range_width
    | Put -> Util.Rng.int s.rng 1_000_000
    | Get | Delete -> 0
  in
  { arrive_ns; cls; key; key2 }

let generate t ~duration_s =
  if duration_s <= 0.0 then invalid_arg "Gen.generate: duration_s > 0";
  let horizon = duration_s *. 1e9 in
  let s = stream_of t in
  let out = ref [] in
  let count = ref 0 in
  let stop = ref false in
  while not !stop do
    let r = next_request s in
    if float_of_int r.arrive_ns < horizon then begin
      out := r :: !out;
      incr count
    end
    else stop := true
  done;
  let a = Array.make !count { arrive_ns = 0; cls = Get; key = 0; key2 = 0 } in
  List.iteri (fun i r -> a.(!count - 1 - i) <- r) !out;
  a

let generate_n t ~n =
  if n < 0 then invalid_arg "Gen.generate_n: n >= 0";
  let s = stream_of t in
  Array.init n (fun _ -> next_request s)
