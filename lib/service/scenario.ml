type t = {
  name : string;
  descr : string;
  store : Store.t;
  n_keys : int;
  theta : float;
  rate : float;
  rt_rate : float;
  burst : Gen.burst option;
  mix : Gen.mix;
  locality : float;
  recent_window : int;
  range_width : int;
  seed : int;
  duration_s : float;
  rt_shards : int list;
  rt_keys_cap : int;
  sim_requests : int;
  sim_p : int list;
  sim_shards : int;
  sim_ns_per_unit : int;
  bound_factor : float;
}

let effective_mix t =
  let (module S : Store.STORE) = t.store in
  if S.supports_range then t.mix else Gen.fold_range_into_get t.mix

let gen_keys t ~rate ~n_keys =
  Gen.make ~theta:t.theta ~burst:t.burst ~mix:(effective_mix t)
    ~locality:t.locality ~recent_window:t.recent_window
    ~range_width:t.range_width ~seed:t.seed ~n_keys ~rate ()

let gen t ~rate = gen_keys t ~rate ~n_keys:t.n_keys
let gen_rt t = gen_keys t ~rate:t.rt_rate ~n_keys:(min t.n_keys t.rt_keys_cap)
let gen_sim t = gen_keys t ~rate:t.rate ~n_keys:t.n_keys

(* Calibration notes (this 1-CPU box, skiplist, ns_per_unit = 1000):
   the standard sim point P=1/K=4 sees inter-arrivals of ~10 units
   against ~21 units of batch work per request amortized, i.e. a
   deliberately loaded base (ρ ≈ 0.5 with burst excursions past
   saturation) so the tail is real; P=8 rides comfortably; P=64 is the
   headroom end of the sweep. rt_rate is sized under this box's
   measured ~75k req/s open-loop capacity (dispatcher and workers
   share the single CPU): the base keeps up, the 4x bursts transiently
   exceed it, so the runtime tail shows burst queueing rather than
   open-loop divergence. *)
let standard =
  {
    name = "standard";
    descr =
      "read-heavy skiplist KV, 1M keys, Zipf 0.99, 4x bursts, 10% locality";
    store = Store.skiplist;
    n_keys = 1_000_000;
    theta = 0.99;
    rate = 100_000.0;
    rt_rate = 20_000.0;
    burst = Some { Gen.on_s = 0.2; off_s = 0.8; mult = 4.0 };
    mix = Gen.default_mix;
    locality = 0.1;
    recent_window = 4096;
    range_width = 64;
    seed = 42;
    duration_s = 5.0;
    rt_shards = [ 1; 4 ];
    rt_keys_cap = 1_000_000;
    sim_requests = 20_000;
    sim_p = [ 1; 8; 64 ];
    sim_shards = 4;
    sim_ns_per_unit = 1000;
    bound_factor = 4.0;
  }

let smoke =
  {
    standard with
    name = "smoke";
    descr = "tiny skiplist scenario for CI: seconds, both executions";
    n_keys = 16_384;
    theta = 0.9;
    rate = 20_000.0;
    rt_rate = 10_000.0;
    burst = Some { Gen.on_s = 0.05; off_s = 0.15; mult = 3.0 };
    locality = 0.05;
    recent_window = 256;
    range_width = 16;
    duration_s = 1.0;
    rt_shards = [ 1; 2 ];
    rt_keys_cap = 16_384;
    sim_requests = 2_000;
    sim_p = [ 1; 4 ];
    sim_shards = 2;
  }

let hashtable_hot =
  {
    standard with
    name = "hashtable-hot";
    descr = "hashtable under a hotter Zipf 1.1 skew, 4M keys";
    store = Store.hashtable;
    n_keys = 4_000_000;
    theta = 1.1;
    rt_keys_cap = 1_000_000;
    range_width = 0;
  }

let tree_100m =
  {
    standard with
    name = "tree-100m";
    descr = "2-3 tree over a 100M-key space (sim); runtime capped at 200k";
    store = Store.two_three;
    n_keys = 100_000_000;
    rt_rate = 10_000.0;
    rt_keys_cap = 200_000;
    sim_requests = 10_000;
  }

let all = [ smoke; standard; hashtable_hot; tree_100m ]
let find name = List.find_opt (fun s -> s.name = name) all
let names () = List.map (fun s -> s.name) all
