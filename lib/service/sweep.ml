(* Latency vs offered load: re-run the runtime leg at scaled arrival
   rates and find the throughput knee per (mode, K).

   Each grid point is one [Rt_driver.run_point] with the scenario's
   rt_rate multiplied by a sweep factor and request tracing on, so
   every point carries an exact per-phase decomposition of its total
   latency ([Obs.Reqtrace.totals]) — past the knee the interesting
   question is not "p99 doubled" but "p99 is now 86% pending-wait",
   and the shares answer it.

   Knee definition: a point *keeps up* when delivered goodput is at
   least [knee_threshold] of the offered rate; the knee is the highest
   offered rate (in the swept grid) that keeps up. Goodput, measured
   on the driver's wall clock over an open-loop schedule, is the
   honest side of the ratio — offered load is fixed by the generator
   before the run, so a system past saturation shows a widening gap
   rather than the closed-loop illusion of "100% of what we asked". *)

type point = {
  mode : Runtime.Batcher_rt.mode;
  shards : int;
  mult : float;  (* rate multiplier applied to the scenario's rt_rate *)
  offered_req_s : float;  (* rt_rate *. mult *)
  pt : Rt_driver.point;  (* goodput, digests, and the request trace *)
  shares : (string * float) list;  (* Obs.Reqtrace.shares of the point *)
}

type knee = {
  k_mode : Runtime.Batcher_rt.mode;
  k_shards : int;
  knee_req_s : float;  (* 0.0 when no swept point kept up *)
  knee_mult : float;
  k_absent : bool;  (* no swept multiplier kept up at all *)
}

type t = {
  scenario : Scenario.t;
  points : point list;
  knees : knee list;
}

let knee_threshold = 0.9
let default_mults = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let scale (sc : Scenario.t) mult =
  { sc with Scenario.rt_rate = sc.Scenario.rt_rate *. mult }

(* Knee extraction is pure over the measured points so the absent-knee
   contract (a (mode, K) whose every swept multiplier failed to keep
   up yields an explicit [k_absent] knee, never a silent omission) is
   unit-testable without timed runs. *)
let knees_of_points ~modes ~shards points =
  List.concat_map
    (fun mode ->
      List.map
        (fun k ->
          let mine =
            List.filter (fun p -> p.mode = mode && p.shards = k) points
          in
          let keeping =
            List.filter
              (fun p ->
                p.offered_req_s > 0.0
                && p.pt.Rt_driver.goodput /. p.offered_req_s >= knee_threshold)
              mine
          in
          let best =
            List.fold_left
              (fun acc p ->
                match acc with
                | Some b when b.offered_req_s >= p.offered_req_s -> acc
                | _ -> Some p)
              None keeping
          in
          match best with
          | Some p ->
              {
                k_mode = mode;
                k_shards = k;
                knee_req_s = p.offered_req_s;
                knee_mult = p.mult;
                k_absent = false;
              }
          | None ->
              {
                k_mode = mode;
                k_shards = k;
                knee_req_s = 0.0;
                knee_mult = 0.0;
                k_absent = true;
              })
        shards)
    modes

let run ?(mults = default_mults) ?(modes = [ Runtime.Batcher_rt.Faa_array ])
    ?shards ?workers ?duration_s (sc : Scenario.t) =
  if mults = [] then invalid_arg "Sweep.run: mults must be non-empty";
  let shards =
    match shards with
    | Some ks -> ks
    | None -> (
        (* Default: the scenario's largest K — the knee of the most
           scaled configuration is the headline number. *)
        match List.rev sc.Scenario.rt_shards with
        | k :: _ -> [ k ]
        | [] -> [ 1 ])
  in
  (* A sweep multiplies runs; keep each point short unless the caller
     asks otherwise. *)
  let duration_s =
    match duration_s with
    | Some d -> d
    | None -> Float.min sc.Scenario.duration_s 1.0
  in
  let points =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun k ->
            List.map
              (fun mult ->
                let pt =
                  Rt_driver.run_point ?workers ~duration_s ~mode ~trace:true
                    (scale sc mult) ~shards:k
                in
                {
                  mode;
                  shards = k;
                  mult;
                  offered_req_s = sc.Scenario.rt_rate *. mult;
                  pt;
                  shares = Obs.Reqtrace.(shares (totals pt.Rt_driver.trace));
                })
              mults)
          shards)
      modes
  in
  let knees = knees_of_points ~modes ~shards points in
  { scenario = sc; points; knees }

(* SVC_LOAD rows. Identity fields: exec/scenario/store/p/shards/mode/
   mult/cls; the mode is always present (a new experiment, no legacy
   signatures to preserve). Each grid point emits one "all" row with
   goodput, the latency digest and the phase shares; each (mode, K)
   emits one cls="knee" row whose knee_req_s metric is the gate
   handle. *)
let rows t =
  let sc = t.scenario in
  let store =
    let (module S : Store.STORE) = sc.Scenario.store in
    S.name
  in
  let base ~mode ~k ~cls rest =
    Obs.Json.Obj
      ([
         ("exec", Obs.Json.Str "runtime");
         ("scenario", Obs.Json.Str sc.Scenario.name);
         ("store", Obs.Json.Str store);
         ("mode", Obs.Json.Str (Runtime.Batcher_rt.mode_name mode));
         ("shards", Obs.Json.Int k);
         ("cls", Obs.Json.Str cls);
       ]
      @ rest)
  in
  let point_rows =
    List.map
      (fun p ->
        let all = Latency.all_of p.pt.Rt_driver.classes in
        base ~mode:p.mode ~k:p.shards ~cls:"all"
          ([
             ("mult", Obs.Json.Float p.mult);
             ("p", Obs.Json.Int p.pt.Rt_driver.workers);
             ("offered_req_s", Obs.Json.Float p.offered_req_s);
             ("goodput", Obs.Json.Float p.pt.Rt_driver.goodput);
             ("requests", Obs.Json.Int p.pt.Rt_driver.requests);
             ("p50_ns", Obs.Json.Float all.Latency.p50_ns);
             ("p99_ns", Obs.Json.Float all.Latency.p99_ns);
             ("p999_ns", Obs.Json.Float all.Latency.p999_ns);
             ("p999_approx", Obs.Json.Bool all.Latency.p999_approx);
           ]
          @ List.map
              (fun (name, v) -> ("share_" ^ name, Obs.Json.Float v))
              p.shares))
      t.points
  in
  let knee_rows =
    List.map
      (fun kn ->
        base ~mode:kn.k_mode ~k:kn.k_shards ~cls:"knee"
          [
            ("knee_req_s", Obs.Json.Float kn.knee_req_s);
            ("knee_mult", Obs.Json.Float kn.knee_mult);
            ("knee_absent", Obs.Json.Bool kn.k_absent);
          ])
      t.knees
  in
  point_rows @ knee_rows
