(** Named service scenarios: one record bundling the workload model
    with both executions' run shapes, so [bin/service.exe --scenario X]
    is reproducible from the name and a seed alone. *)

type t = {
  name : string;
  descr : string;
  store : Store.t;
  n_keys : int;  (** sim key space; runtime uses [min n_keys rt_keys_cap] *)
  theta : float;
  rate : float;  (** sim base arrivals, requests/second *)
  rt_rate : float;  (** runtime base arrivals — lower, sized to this box *)
  burst : Gen.burst option;
  mix : Gen.mix;
  locality : float;
  recent_window : int;
  range_width : int;
  seed : int;
  duration_s : float;  (** runtime measured-run length *)
  rt_shards : int list;  (** runtime leg: one timed run per K *)
  rt_keys_cap : int;  (** bound on runtime prepopulation cost *)
  sim_requests : int;  (** open-loop sim: requests per (P, K) point *)
  sim_p : int list;  (** honest P-sweep on the virtual clock *)
  sim_shards : int;
  sim_ns_per_unit : int;  (** arrival-ns → sim-timestep conversion *)
  bound_factor : float;  (** Check.Bound.service_check factor, sim leg *)
}

val effective_mix : t -> Gen.mix
(** The scenario's mix, with the range share folded into gets when the
    store has no range operation. *)

val gen : t -> rate:float -> Gen.t
(** The workload model at the given base [rate] (callers pass [t.rate]
    or [t.rt_rate]), over [n_keys] capped for the runtime by the
    caller. *)

val gen_rt : t -> Gen.t
(** Runtime leg: [rt_rate] over [min n_keys rt_keys_cap] keys. *)

val gen_sim : t -> Gen.t
(** Simulator leg: [rate] over the full [n_keys]. *)

val all : t list
val find : string -> t option
val names : unit -> string list
