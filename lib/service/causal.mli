(** The concrete legs of the causal what-if profiler.

    {!Obs.Causal} is the pure engine (deltas, share-based predictions,
    divergence, measured-vs-bound winner, rendering); this module
    produces its inputs on the two executors:

    {b Sim leg} ({!run_sim}) — exact virtual speedups. Every
    (phase × factor) grid cell re-runs the identical pre-generated
    request array through {!Sim.Openloop} with one {!Sim.Costs} knob
    scaled (work/span knobs to [1/f]; the worker-share knob to [f]),
    so deltas are deterministic to the tick and byte-identical across
    runs. Each cell re-evaluates the Theorem-1 service budget
    ({!Check.Bound.service_budget}) on its own measured terms, giving
    the measured-vs-bound sensitivity comparison per cell. The traced
    baseline supplies the phase shares and must pass
    {!Obs.Reqtrace.check}.

    {b Runtime leg} ({!run_rt}) — Coz-style virtual speedup by
    relative slowdown. Speeding phase X up by [f] is produced by
    slowing every {e other} injectable phase by [f]
    ({!Runtime.Batcher_rt.inject}, self-calibrating spins) while
    stretching the open-loop arrival schedule by [f]
    ([Sweep.scale sc (1/f)]). Each cell is diffed against a {e control}
    run at the same factor with all phases slowed (the
    uniformly-dilated system), so delays the injector cannot reach
    bias both sides equally and cancel. {!Obs.Reqtrace} conservation
    is checked on every injected run; the runtime leg carries no
    Theorem-1 budget ([bound_ns = nan]). *)

type result = {
  profile : Obs.Causal.profile;
  rows : Obs.Json.t list;  (** CAUSAL report rows, ident included *)
  errors : string list;
      (** conservation breaches and bound-evaluation failures, in
          occurrence order — the caller's exit-1 handle; empty on a
          healthy run *)
}

val default_sim_factors : float list
(** [[1.25; 2.0; 4.0]] *)

val default_rt_factors : float list
(** [[2.0]] — each runtime factor costs 1 control + 3 cell timed
    runs. *)

val run_sim : ?p:int -> ?factors:float list -> Scenario.t -> result
(** [p] defaults to the {e first} entry of the scenario's [sim_p]
    sweep — the overloaded end on the stock scenarios, where causal
    structure is richest. [factors] (default {!default_sim_factors})
    must all be > 1; phases swept: [bop_work], [bop_span],
    [setup_work], [setup_span], [sched], [share]. *)

val run_rt :
  ?workers:int ->
  ?duration_s:float ->
  ?mode:Runtime.Batcher_rt.mode ->
  ?shards:int ->
  ?factors:float list ->
  Scenario.t ->
  result
(** Phases swept: [bop], [setup], [submit]. [shards] defaults to the
    scenario's largest K, [duration_s] to min(scenario, 1 s) per
    point, [mode] to [Faa_array], [factors] to
    {!default_rt_factors}. *)
