(* The concrete legs of the causal what-if profiler (Obs.Causal holds
   the generic delta/ranking logic; DESIGN.md §15).

   Sim leg: exact virtual speedups. Each (phase × factor) grid cell
   re-runs the *identical* request array through Sim.Openloop with the
   phase's Sim.Costs factor scaled to 1/f (the worker-share knob
   scales to f: "this shard gets f× the workers"), so deltas are
   deterministic and exact, and every cell re-evaluates the Theorem-1
   service budget (Check.Bound.service_budget) on its own measured
   terms — the measured-vs-bound sensitivity comparison.

   Runtime leg: Coz-style virtual speedup by relative slowdown. The
   profiler cannot make real code faster, so speeding phase X up by f
   is produced by slowing every *other* injectable phase by f
   (Batcher_rt.inject, self-calibrating spins) while stretching the
   open-loop arrival schedule by f (rate × 1/f) — the whole batcher
   slows uniformly except X, which is now relatively f× faster. Each
   cell is compared against a *control* run at the same factor with
   every phase slowed (the uniformly-dilated system), so the parts the
   injector cannot reach (pool scheduling, the dispatcher) bias cell
   and control equally and cancel in the delta. Reqtrace span
   conservation is checked on every injected run. *)

type result = {
  profile : Obs.Causal.profile;
  rows : Obs.Json.t list;
  errors : string list;
}

let default_sim_factors = [ 1.25; 2.0; 4.0 ]
let default_rt_factors = [ 2.0 ]

let measure_of_classes ~goodput ~bound_ns classes =
  let all = Latency.all_of classes in
  {
    Obs.Causal.goodput;
    mean_ns = all.Latency.mean_ns;
    p99_ns = all.Latency.p99_ns;
    max_ns = all.Latency.max_ns;
    bound_ns;
    per_class =
      List.filter_map
        (fun (c : Latency.class_stats) ->
          if c.Latency.cls = "all" then None
          else Some (c.Latency.cls, c.Latency.mean_ns))
        classes;
  }

let store_name (sc : Scenario.t) =
  let (module S : Store.STORE) = sc.Scenario.store in
  S.name

(* ---- sim leg ---- *)

(* phase, family, Reqtrace share predicting it, costs for speedup f.
   The share mapping states what the share-based prediction *would*
   be: all four batch-interior knobs live inside the exec phase (the
   sim's batch duration), sched maps to the structurally-zero sched
   phase, and the worker-share knob has no share at all — divergence
   between these predictions and the measured deltas is the point. *)
let sim_phases =
  [
    ( "bop_work",
      "work",
      Some "exec",
      fun f -> { Sim.Costs.identity with Sim.Costs.bop_work = 1.0 /. f } );
    ( "bop_span",
      "span",
      Some "exec",
      fun f -> { Sim.Costs.identity with Sim.Costs.bop_span = 1.0 /. f } );
    ( "setup_work",
      "work",
      Some "exec",
      fun f -> { Sim.Costs.identity with Sim.Costs.setup_work = 1.0 /. f } );
    ( "setup_span",
      "span",
      Some "exec",
      fun f -> { Sim.Costs.identity with Sim.Costs.setup_span = 1.0 /. f } );
    ( "sched",
      "sched",
      Some "sched",
      fun f -> { Sim.Costs.identity with Sim.Costs.sched = 1.0 /. f } );
    ( "share",
      "share",
      None,
      fun f -> { Sim.Costs.identity with Sim.Costs.p_share = f } );
  ]

let measure_of_sim (pt : Sim_driver.point) =
  measure_of_classes ~goodput:pt.Sim_driver.goodput
    ~bound_ns:pt.Sim_driver.bound_budget_ns pt.Sim_driver.classes

let run_sim ?p ?(factors = default_sim_factors) (sc : Scenario.t) =
  if factors = [] then invalid_arg "Causal.run_sim: factors must be non-empty";
  List.iter
    (fun f ->
      if Float.is_nan f || f <= 1.0 then
        invalid_arg "Causal.run_sim: factors must be > 1")
    factors;
  (* Default P: the *first* swept worker count — the scenarios put the
     overloaded end there, where causal structure is richest (under
     overload a phase's share wildly understates its sensitivity). *)
  let p =
    match p with
    | Some p -> p
    | None -> ( match sc.Scenario.sim_p with p :: _ -> p | [] -> 1)
  in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (* Baseline is traced: its shares feed the share-based predictions,
     and its conservation check is the sim leg's self-test. *)
  let base_pt = Sim_driver.run_point ~trace:true sc ~p in
  (match Obs.Reqtrace.check base_pt.Sim_driver.trace with
  | Ok () -> ()
  | Error e -> err "sim baseline conservation: %s" e);
  (match base_pt.Sim_driver.bound with
  | Ok () -> ()
  | Error e -> err "sim baseline bound: %s" e);
  let shares =
    Obs.Reqtrace.(shares (totals base_pt.Sim_driver.trace))
  in
  let baseline = measure_of_sim base_pt in
  let cells =
    List.concat_map
      (fun (phase, family, share_of, costs_of) ->
        List.map
          (fun f ->
            let pt = Sim_driver.run_point ~costs:(costs_of f) sc ~p in
            (match pt.Sim_driver.bound with
            | Ok () -> ()
            | Error e -> err "sim cell %s x%g bound: %s" phase f e);
            Obs.Causal.cell ~baseline ~shares ~phase ~family ~share_of
              ~speedup:f (measure_of_sim pt))
          factors)
      sim_phases
  in
  let profile =
    Obs.Causal.profile ~exec:"sim"
      ~label:
        (Printf.sprintf "%s P=%d K=%d (%d requests, virtual clock)"
           sc.Scenario.name p sc.Scenario.sim_shards
           base_pt.Sim_driver.requests)
      ~baseline ~shares cells
  in
  let ident =
    [
      ("scenario", Obs.Json.Str sc.Scenario.name);
      ("store", Obs.Json.Str (store_name sc));
      ("p", Obs.Json.Int p);
      ("shards", Obs.Json.Int sc.Scenario.sim_shards);
    ]
  in
  {
    profile;
    rows = Obs.Causal.rows ~ident profile;
    errors = List.rev !errors;
  }

(* ---- runtime leg ---- *)

let rt_phases =
  [
    (* speedup of X = slow every *other* phase; share mapping: the BOP
       body is the exec phase; assembly/cleanup and the publication
       path both land in the pending-wait of the requests they delay —
       approximate by construction (which is why the sim leg, where
       shares are exact, is the reference). *)
    ( "bop",
      "work",
      Some "exec",
      fun f ->
        { Runtime.Batcher_rt.slow_submit = f; slow_setup = f; slow_bop = 1.0 }
    );
    ( "setup",
      "work",
      Some "pending",
      fun f ->
        { Runtime.Batcher_rt.slow_submit = f; slow_setup = 1.0; slow_bop = f }
    );
    ( "submit",
      "sched",
      Some "pending",
      fun f ->
        { Runtime.Batcher_rt.slow_submit = 1.0; slow_setup = f; slow_bop = f }
    );
  ]

let measure_of_rt (pt : Rt_driver.point) =
  measure_of_classes ~goodput:pt.Rt_driver.goodput ~bound_ns:nan
    pt.Rt_driver.classes

let run_rt ?workers ?duration_s ?(mode = Runtime.Batcher_rt.Faa_array)
    ?shards ?(factors = default_rt_factors) (sc : Scenario.t) =
  if factors = [] then invalid_arg "Causal.run_rt: factors must be non-empty";
  List.iter
    (fun f ->
      if Float.is_nan f || f <= 1.0 then
        invalid_arg "Causal.run_rt: factors must be > 1")
    factors;
  let shards =
    match shards with
    | Some k -> k
    | None -> (
        match List.rev sc.Scenario.rt_shards with k :: _ -> k | [] -> 1)
  in
  let duration_s =
    match duration_s with
    | Some d -> d
    | None -> Float.min sc.Scenario.duration_s 1.0
  in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let conserve name (pt : Rt_driver.point) =
    match Obs.Reqtrace.check pt.Rt_driver.trace with
    | Ok () -> ()
    | Error e -> err "runtime %s conservation: %s" name e
  in
  let point ?inject msc =
    Rt_driver.run_point ?workers ~duration_s ~mode ~trace:true ?inject msc
      ~shards
  in
  (* Headline baseline: no injection, the scenario's own rate. *)
  let base_pt = point sc in
  conserve "baseline" base_pt;
  let shares = Obs.Reqtrace.(shares (totals base_pt.Rt_driver.trace)) in
  let baseline = measure_of_rt base_pt in
  let cells =
    List.concat_map
      (fun f ->
        (* Control at factor f: the uniformly-dilated system — every
           injectable phase slowed by f, arrivals stretched by f. A
           cell leaves exactly one phase unslowed, making it
           relatively f× faster; diffing cell against control cancels
           the un-injectable parts (pool scheduling, dispatcher). *)
        let slowed = Sweep.scale sc (1.0 /. f) in
        let control_pt =
          point
            ~inject:
              {
                Runtime.Batcher_rt.slow_submit = f;
                slow_setup = f;
                slow_bop = f;
              }
            slowed
        in
        conserve (Printf.sprintf "control x%g" f) control_pt;
        let control = measure_of_rt control_pt in
        List.map
          (fun (phase, family, share_of, inject_of) ->
            let pt = point ~inject:(inject_of f) slowed in
            conserve (Printf.sprintf "cell %s x%g" phase f) pt;
            Obs.Causal.cell ~baseline:control ~shares ~phase ~family
              ~share_of ~speedup:f (measure_of_rt pt))
          rt_phases)
      factors
  in
  let profile =
    Obs.Causal.profile ~exec:"runtime"
      ~label:
        (Printf.sprintf
           "%s K=%d P=%d mode=%s (%.1fs/point, delay injection vs dilated \
            control)"
           sc.Scenario.name shards base_pt.Rt_driver.workers
           (Runtime.Batcher_rt.mode_name mode)
           duration_s)
      ~baseline ~shares cells
  in
  let ident =
    [
      ("scenario", Obs.Json.Str sc.Scenario.name);
      ("store", Obs.Json.Str (store_name sc));
      ("p", Obs.Json.Int base_pt.Rt_driver.workers);
      ("shards", Obs.Json.Int shards);
      ("mode", Obs.Json.Str (Runtime.Batcher_rt.mode_name mode));
    ]
  in
  {
    profile;
    rows = Obs.Causal.rows ~ident profile;
    errors = List.rev !errors;
  }
