(** Seeded service-workload model: what arrives, when, and for which
    key.

    Three independent dimensions, all driven by one {!Util.Rng} stream
    so a fixed seed replays byte-identically:

    - {b Arrivals} — Poisson base process (exponential inter-arrival
      at [rate] requests/second), optionally modulated by an on/off
      burst chain: episode lengths are exponential with means
      [on_s]/[off_s] and the instantaneous rate is [rate·mult] inside
      a burst. Inter-arrival draws integrate the piecewise-constant
      rate exactly, so the effective mean rate is
      [rate·(off_s + mult·on_s)/(off_s + on_s)] ({!expected_rate}).
      Arrival stamps are nanoseconds from time 0 and are fixed at
      generation — the open-loop drivers measure every request from
      this stamp, which is what makes coordinated omission impossible.
    - {b Keys} — Zipf(θ) ranks over [n_keys] via rejection-inversion
      sampling (Hörmann–Derflinger; O(1) per draw, no O(n) harmonic
      precompute, so 100M-key spaces cost nothing), scrambled through
      a bijection on [0, n_keys) so rank locality does not become key
      locality. θ = 0 degenerates to uniform exactly. A temporal
      [locality] knob replays a uniformly-drawn key from the last
      [recent_window] touched keys with the given probability — the
      temporally-local traces the working-set structures item needs.
    - {b Op mix} — weighted get/put/delete/range classes; range
      queries span [range_width] keys from their start key. *)

type op_class = Get | Put | Delete | Range

val class_name : op_class -> string
val class_index : op_class -> int
val n_classes : int

type mix = { get : float; put : float; delete : float; range : float }
(** Nonnegative weights, normalized internally; at least one must be
    positive. *)

val default_mix : mix
(** 75% get / 20% put / 3% delete / 2% range — a read-heavy KV
    service. *)

val fold_range_into_get : mix -> mix
(** For stores without a range operation. *)

type burst = {
  on_s : float;  (** mean burst-episode length, seconds *)
  off_s : float;  (** mean quiet-episode length, seconds *)
  mult : float;  (** rate multiplier inside a burst, >= 1 *)
}

type t

val make :
  ?theta:float ->
  ?burst:burst option ->
  ?mix:mix ->
  ?locality:float ->
  ?recent_window:int ->
  ?range_width:int ->
  seed:int ->
  n_keys:int ->
  rate:float ->
  unit ->
  t
(** Defaults: [theta = 0.99], no bursts, {!default_mix},
    [locality = 0.0], [recent_window = 1024], [range_width = 16].
    [n_keys >= 1], [rate > 0]. *)

val expected_rate : t -> float
(** Long-run mean arrival rate, requests/second, bursts included. *)

type request = {
  arrive_ns : int;  (** scheduled arrival, ns from time 0 — fixed at
                        generation; latency is measured from here *)
  cls : op_class;
  key : int;  (** in [0, n_keys); for [Range], the interval start *)
  key2 : int;  (** [Put]: the value; [Range]: the exclusive end *)
}

val generate : t -> duration_s:float -> request array
(** All requests with [arrive_ns < duration_s · 1e9], in arrival
    order. A fresh internal stream each call: generating twice from
    the same [t] gives identical arrays. *)

val generate_n : t -> n:int -> request array
(** The first [n] requests of the same stream. *)

(* ---- exposed for the statistical tests ---- *)

type zipf

val zipf : n:int -> theta:float -> zipf
(** [n >= 1], [theta >= 0]. *)

val zipf_sample : Util.Rng.t -> zipf -> int
(** A 0-based rank in [0, n); rank 0 is the hottest. *)

val scramble : n_keys:int -> int -> int
(** The rank-to-key bijection on [0, n_keys). *)
