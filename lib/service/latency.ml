type class_stats = {
  cls : string;
  requests : int;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  mean_ns : float;
  max_ns : float;
}

let digest cls samples =
  let n = Array.length samples in
  {
    cls;
    requests = n;
    p50_ns = Util.Stats.percentile samples 0.5;
    p99_ns = Util.Stats.percentile samples 0.99;
    p999_ns = Util.Stats.percentile samples 0.999;
    mean_ns = Util.Stats.mean samples;
    max_ns = Array.fold_left max samples.(0) samples;
  }

let of_samples named =
  let total = List.fold_left (fun a (_, s) -> a + Array.length s) 0 named in
  let all = Array.make (max 1 total) 0.0 in
  let pos = ref 0 in
  List.iter
    (fun (_, s) ->
      Array.blit s 0 all !pos (Array.length s);
      pos := !pos + Array.length s)
    named;
  let classes =
    List.filter_map
      (fun (name, s) ->
        if Array.length s = 0 then None else Some (digest name s))
      named
  in
  if total = 0 then classes
  else digest "all" (Array.sub all 0 total) :: classes

let all_of classes = List.find (fun c -> c.cls = "all") classes
