type class_stats = {
  cls : string;
  requests : int;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  p999_approx : bool;
  mean_ns : float;
  max_ns : float;
}

let digest cls samples =
  let n = Array.length samples in
  if n = 0 then
    (* An empty class yields a well-defined all-zero digest, never nan
       (Util.Stats.percentile/mean raise on empty input). *)
    {
      cls;
      requests = 0;
      p50_ns = 0.0;
      p99_ns = 0.0;
      p999_ns = 0.0;
      p999_approx = true;
      mean_ns = 0.0;
      max_ns = 0.0;
    }
  else begin
    let max_ns = Array.fold_left max samples.(0) samples in
    (* With fewer than 1000 samples the 99.9th percentile would be an
       interpolation between the last two order statistics — a value no
       request actually saw. Report the observed max and flag the
       approximation instead of faking precision. *)
    let p999_ns, p999_approx =
      if n < 1000 then (max_ns, true)
      else (Util.Stats.percentile samples 0.999, false)
    in
    {
      cls;
      requests = n;
      p50_ns = Util.Stats.percentile samples 0.5;
      p99_ns = Util.Stats.percentile samples 0.99;
      p999_ns;
      p999_approx;
      mean_ns = Util.Stats.mean samples;
      max_ns;
    }
  end

let of_samples named =
  let total = List.fold_left (fun a (_, s) -> a + Array.length s) 0 named in
  let all = Array.make (max 1 total) 0.0 in
  let pos = ref 0 in
  List.iter
    (fun (_, s) ->
      Array.blit s 0 all !pos (Array.length s);
      pos := !pos + Array.length s)
    named;
  let classes =
    List.filter_map
      (fun (name, s) ->
        if Array.length s = 0 then None else Some (digest name s))
      named
  in
  (* Always emit the "all" digest, even over zero samples, so callers
     (and all_of) need no empty-run special case. *)
  digest "all" (Array.sub all 0 total) :: classes

let all_of classes = List.find (fun c -> c.cls = "all") classes
