(** The simulator leg: open-loop runs over {!Sim.Openloop} on the
    virtual clock, one per worker count in the scenario's P-sweep.

    P is an integer on the virtual clock, so the sweep is honest to
    hundreds of workers on a 1-CPU box. Each point's per-request waits
    are cross-checked against the composed Theorem-1 bound terms
    ({!Check.Bound.service_check}); a point whose tail escapes the
    budget flags a batching/scheduling regression. *)

type point = {
  p : int;
  shards : int;
  requests : int;
  makespan_ns : float;
  goodput : float;  (** completed requests per second of virtual time *)
  classes : Latency.class_stats list;  (** ["all"] first *)
  batches : int;
  max_batch : int;
  max_batches_seen : int;  (** the open-loop Lemma-2 figure *)
  max_in_system : int;
  bound : (unit, string) result;  (** the Theorem-1 wait cross-check *)
  bound_budget_ns : float;
      (** {!Check.Bound.service_budget} on this run's own measured
          terms, in virtual-clock ns — the analytic per-request wait
          budget the causal profiler diffs cell by cell *)
  bound_terms : Check.Bound.service_terms;
      (** the budget split into work / serialization / slack terms,
          for dominant-term analysis *)
  trace : Obs.Reqtrace.t;
      (** per-request spans on the virtual clock —
          {!Obs.Reqtrace.null} unless run with [~trace:true]. Queue and
          sched phases are structurally zero (the engine admits at
          arrival, resumes at completion); pending/exec carry the
          anatomy, and [batches_seen] is per-request exact. *)
}

val run_point :
  ?trace:bool -> ?costs:Sim.Costs.t -> Scenario.t -> p:int -> point
(** One sweep point: generate the scenario's request stream (fresh and
    identical for every point), route keys to shards, simulate, and
    digest. [trace] (default false) fills the point's [trace] field
    deterministically. [costs] (default identity) applies what-if
    per-phase cost scaling ({!Sim.Costs}) — the causal profiler's sim
    leg; the request array is untouched, so two runs with equal costs
    are byte-identical. *)

val run : ?trace:bool -> Scenario.t -> point list
(** The full sweep, [Scenario.sim_p] in order. *)
