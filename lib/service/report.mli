(** SVC rows for BENCH_results.json.

    Row identity (the fields [bin/bench_diff.exe] signatures on) is
    [exec]/[scenario]/[store]/[p]/[shards]/[cls]; everything
    run-varying — the latency digest, goodput, batch counts — is
    emitted under recognized metric keys so rows keep matching across
    runs and regressions show as metric deltas, not row churn. *)

val rows_of_sim : Scenario.t -> Sim_driver.point -> Obs.Json.t list
(** One ["all"] row (goodput and batch counters included) plus one row
    per op class. [exec = "sim"]; latencies are virtual-clock ns. *)

val rows_of_rt : Scenario.t -> Rt_driver.point -> Obs.Json.t list
(** Same shape with [exec = "runtime"] and wall-clock ns; [p] is the
    worker count. *)

val merge_svc : path:string -> scenario:string -> Obs.Json.t list -> unit
(** Merge rows into the ["SVC"] experiment of the results file at
    [path]: rows of the same scenario are replaced, rows of other
    scenarios and all other experiments are preserved; a skeleton file
    is created when missing. *)

val merge_svc_load : path:string -> scenario:string -> Obs.Json.t list -> unit
(** Same merge discipline for the ["SVC_LOAD"] experiment (the
    offered-load knee sweep, {!Sweep}). *)

val merge_causal : path:string -> scenario:string -> Obs.Json.t list -> unit
(** Same merge discipline for the ["CAUSAL"] experiment (the what-if
    profile, {!Causal}). Rows of both legs for one scenario should be
    merged in a single call — the merge replaces the whole scenario. *)

val merge_experiment :
  path:string ->
  id:string ->
  title:string ->
  scenario:string ->
  Obs.Json.t list ->
  unit
(** The general form both wrappers use: replace [scenario]'s rows of
    experiment [id], preserving everything else in the file. *)
