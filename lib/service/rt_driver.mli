(** The runtime leg: a timed open-loop run over the real
    effects-based pool and {!Runtime.Shard_rt}, one per shard count in
    the scenario's K-sweep.

    The dispatcher (the root task of [Pool.run]) walks the
    pre-generated schedule and releases each request at
    [t0 + arrive_ns] wall-clock; the serving task measures its latency
    from that {e scheduled} stamp when it completes — a request that
    sat behind a backlog is charged the sit, which is what rules out
    coordinated omission. Stores are prepopulated before the clock
    starts. *)

type point = {
  shards : int;
  workers : int;
  mode : Runtime.Batcher_rt.mode;  (** batch-path mode of every shard *)
  requests : int;
  elapsed_ns : float;  (** wall time, first release to last completion *)
  goodput : float;  (** completed requests per wall second *)
  classes : Latency.class_stats list;  (** ["all"] first *)
  batches : int;
  max_batch : int;
  stalls : int;  (** {!Obs.Health} stall-watchdog trips *)
  slo_burns : int;  (** end-to-end phase SLO burns, summed over shards *)
  trace : Obs.Reqtrace.t;
      (** per-request span capture for this point —
          {!Obs.Reqtrace.null} unless the run was started with
          [~trace:true] *)
}

val run_point :
  ?workers:int ->
  ?snapshot_path:string ->
  ?duration_s:float ->
  ?mode:Runtime.Batcher_rt.mode ->
  ?trace:bool ->
  ?inject:Runtime.Batcher_rt.inject ->
  Scenario.t ->
  shards:int ->
  point
(** One timed run. [workers] defaults to
    [Domain.recommended_domain_count ()]; [snapshot_path] attaches an
    {!Obs.Snapshot} JSONL stream (sampled every 100 ms from a separate
    domain) carrying goodput and queue-depth gauges for
    [bin/monitor.exe]; [duration_s] overrides the scenario's; [mode]
    selects the shards' {!Runtime.Batcher_rt} batch path (default
    [Faa_array]).

    [trace] (default false) captures every request's span in an
    {!Obs.Reqtrace} instance (token = schedule index), returned in the
    point's [trace] field: release/start/submit milestones, the
    batcher's publication-or-overflow and wait/exec deltas, and the
    slowest-K reservoir per op class.

    [inject] (default off) applies {!Runtime.Batcher_rt.inject}
    causal-profiling delay factors to every shard's batch path; the
    causal driver ([Svc.Causal]) uses it for the runtime leg's virtual
    speedups. *)

val run :
  ?workers:int -> ?snapshot_path:string -> ?duration_s:float ->
  ?mode:Runtime.Batcher_rt.mode -> ?trace:bool ->
  ?inject:Runtime.Batcher_rt.inject ->
  Scenario.t -> point list
(** The full K-sweep, [Scenario.rt_shards] in order. The snapshot file
    (when given) is truncated per point — last point wins. *)
