(** Per-op-class tail-latency digests from raw samples.

    Percentiles are exact (interpolated over the sorted raw latencies,
    {!Util.Stats.percentile}) rather than read off the pow-2 histogram
    buckets of {!Obs.Summary} — at service latency scales adjacent
    percentiles often land inside one pow-2 bucket, and a digest where
    p50 = p99 is useless as a regression gate. *)

type class_stats = {
  cls : string;  (** a {!Gen.class_name}, or ["all"] *)
  requests : int;
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  p999_approx : bool;
      (** true when [requests < 1000]: the 99.9th percentile of so few
          samples would be interpolation noise, so [p999_ns] reports
          the observed max instead *)
  mean_ns : float;
  max_ns : float;
}

val of_samples : (string * float array) list -> class_stats list
(** One digest per named class with at least one sample, plus an
    ["all"] digest over the concatenation (always present and first in
    the returned list — all-zero with [requests = 0] when there are no
    samples at all, never nan). Sample arrays are latencies in
    nanoseconds. *)

val all_of : class_stats list -> class_stats
(** The ["all"] digest; raises [Not_found] when absent. *)
