module type STORE = sig
  type t
  type op

  val name : string
  val supports_range : bool
  val create : seed:int -> shard:int -> t
  val prepopulate : t -> shards:int -> shard:int -> n_keys:int -> unit
  val op_of : Gen.request -> op
  val plan : shards:int -> op -> op Batched.Shard.plan
  val run_batch : Runtime.Pool.t -> t -> op array -> unit
  val model : n_keys:int -> shards:int -> int -> Batched.Model.t
end

(* Steady-state size of one shard: prepopulation inserts the even half
   of the key space, spread across shards by route. *)
let shard_size ~n_keys ~shards = max 1 (n_keys / 2 / max 1 shards)

let prepop_loop ~shards ~shard ~n_keys insert =
  let k = ref 0 in
  while !k < n_keys do
    if Batched.Shard.route ~shards !k = shard then insert !k;
    k := !k + 2
  done

module Skiplist_store = struct
  type t = Batched.Skiplist.t
  type op = Batched.Skiplist.op

  let name = "skiplist"
  let supports_range = true
  let create ~seed ~shard = Batched.Skiplist.create ~seed:(seed + shard) ()

  let prepopulate t ~shards ~shard ~n_keys =
    prepop_loop ~shards ~shard ~n_keys (fun k ->
        ignore (Batched.Skiplist.insert_seq t k))

  let op_of (r : Gen.request) =
    match r.cls with
    | Gen.Get -> Batched.Skiplist.mem r.key
    | Gen.Put -> Batched.Skiplist.insert r.key
    | Gen.Delete -> Batched.Skiplist.delete r.key
    | Gen.Range -> Batched.Skiplist.range ~lo:r.key ~hi:r.key2

  let plan = Batched.Shard.skiplist.Batched.Shard.plan

  let run_batch pool t ops =
    Batched.Skiplist.run_batch_with
      ~pfor:(fun count body ->
        Runtime.Pool.parallel_for pool ~lo:0 ~hi:count body)
      t ops

  let model ~n_keys ~shards _shard =
    Batched.Skiplist.sim_model ~initial_size:(shard_size ~n_keys ~shards) ()
end

module Hashtable_store = struct
  type t = Batched.Hashtable.t
  type op = Batched.Hashtable.op

  let name = "hashtable"
  let supports_range = false
  let create ~seed:_ ~shard:_ = Batched.Hashtable.create ()

  let prepopulate t ~shards ~shard ~n_keys =
    prepop_loop ~shards ~shard ~n_keys (fun k ->
        ignore (Batched.Hashtable.insert_seq t ~key:k ~value:k))

  let op_of (r : Gen.request) =
    match r.cls with
    | Gen.Get | Gen.Range -> Batched.Hashtable.lookup r.key
    | Gen.Put -> Batched.Hashtable.insert ~key:r.key ~value:r.key2
    | Gen.Delete -> Batched.Hashtable.remove r.key

  let plan = Batched.Shard.hashtable.Batched.Shard.plan
  let run_batch _pool t ops = Batched.Hashtable.run_batch t ops
  let model ~n_keys:_ ~shards:_ _shard = Batched.Hashtable.sim_model ()
end

module Two_three_store = struct
  type t = Batched.Two_three.t ref
  type op = Batched.Two_three.op

  let name = "two_three"
  let supports_range = false
  let create ~seed:_ ~shard:_ = ref Batched.Two_three.empty

  let prepopulate t ~shards ~shard ~n_keys =
    prepop_loop ~shards ~shard ~n_keys (fun k ->
        t := Batched.Two_three.insert !t k)

  let op_of (r : Gen.request) =
    match r.cls with
    | Gen.Get | Gen.Range -> Batched.Two_three.mem_op r.key
    | Gen.Put -> Batched.Two_three.insert_op r.key
    | Gen.Delete -> Batched.Two_three.delete_op r.key

  let op_key = function
    | Batched.Two_three.Insert r -> r.Batched.Two_three.key
    | Batched.Two_three.Mem r -> r.Batched.Two_three.mem_key
    | Batched.Two_three.Delete r -> r.Batched.Two_three.del_key

  let plan ~shards op =
    Batched.Shard.Point (Batched.Shard.route ~shards (op_key op))

  let run_batch _pool t ops = t := Batched.Two_three.run_batch !t ops

  let model ~n_keys ~shards _shard =
    Batched.Two_three.sim_model ~initial_size:(shard_size ~n_keys ~shards) ()
end

type t = (module STORE)

let skiplist : t = (module Skiplist_store)
let hashtable : t = (module Hashtable_store)
let two_three : t = (module Two_three_store)

let all =
  [ ("skiplist", skiplist); ("hashtable", hashtable); ("two_three", two_three) ]

let find name = List.assoc_opt name all
