let class_row ~exec ~scenario ~store ~p ~shards ~extra
    (c : Latency.class_stats) =
  Obs.Json.Obj
    ([
       ("exec", Obs.Json.Str exec);
       ("scenario", Obs.Json.Str scenario);
       ("store", Obs.Json.Str store);
       ("p", Obs.Json.Int p);
       ("shards", Obs.Json.Int shards);
       ("cls", Obs.Json.Str c.Latency.cls);
       ("requests", Obs.Json.Int c.Latency.requests);
       ("p50_ns", Obs.Json.Float c.Latency.p50_ns);
       ("p99_ns", Obs.Json.Float c.Latency.p99_ns);
       ("p999_ns", Obs.Json.Float c.Latency.p999_ns);
       (* Listed in bench_diff's metric keys (so it stays out of the
          row signature) but Bool never diffs as a number — it only
          annotates that p999_ns is the observed max of a small
          class. *)
       ("p999_approx", Obs.Json.Bool c.Latency.p999_approx);
       ("mean_ns", Obs.Json.Float c.Latency.mean_ns);
       ("max_ns", Obs.Json.Float c.Latency.max_ns);
     ]
    @ extra)

let rows ~exec ~scenario ~store ~p ~shards ~all_extra classes =
  List.map
    (fun (c : Latency.class_stats) ->
      let extra = if c.Latency.cls = "all" then all_extra else [] in
      class_row ~exec ~scenario ~store ~p ~shards ~extra c)
    classes

let store_name (sc : Scenario.t) =
  let (module S : Store.STORE) = sc.Scenario.store in
  S.name

let rows_of_sim (sc : Scenario.t) (pt : Sim_driver.point) =
  rows ~exec:"sim" ~scenario:sc.Scenario.name ~store:(store_name sc)
    ~p:pt.Sim_driver.p ~shards:pt.Sim_driver.shards
    ~all_extra:
      [
        ("goodput", Obs.Json.Float pt.Sim_driver.goodput);
        ("total_batches", Obs.Json.Int pt.Sim_driver.batches);
        ("max_batch", Obs.Json.Int pt.Sim_driver.max_batch);
        ("max_batches_seen", Obs.Json.Int pt.Sim_driver.max_batches_seen);
      ]
    pt.Sim_driver.classes

(* Runtime rows carry the batch-path mode. The default Faa_array adds
   no field, so pre-mode baseline rows keep their signature and
   bench_diff keeps matching them across PRs; the alternative modes'
   rows are identified by ("mode", name). *)
let rows_of_rt (sc : Scenario.t) (pt : Rt_driver.point) =
  let mode_field =
    match pt.Rt_driver.mode with
    | Runtime.Batcher_rt.Faa_array -> []
    | m -> [ ("mode", Obs.Json.Str (Runtime.Batcher_rt.mode_name m)) ]
  in
  List.map
    (fun (c : Latency.class_stats) ->
      let extra =
        if c.Latency.cls = "all" then
          [
            ("goodput", Obs.Json.Float pt.Rt_driver.goodput);
            ("total_batches", Obs.Json.Int pt.Rt_driver.batches);
            ("max_batch", Obs.Json.Int pt.Rt_driver.max_batch);
          ]
        else []
      in
      class_row ~exec:"runtime" ~scenario:sc.Scenario.name
        ~store:(store_name sc) ~p:pt.Rt_driver.workers
        ~shards:pt.Rt_driver.shards
        ~extra:(mode_field @ extra)
        c)
    pt.Rt_driver.classes

let read_existing path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.Json.parse s with
    | Ok (Obs.Json.Obj fields) -> Some fields
    | Ok _ | Error _ -> None
  end

let row_scenario row =
  match Obs.Json.member "scenario" row with
  | Some (Obs.Json.Str s) -> Some s
  | _ -> None

let merge_experiment ~path ~id ~title ~scenario new_rows =
  let fields =
    match read_existing path with
    | Some fields -> fields
    | None ->
        [
          ("schema_version", Obs.Json.Int 1);
          ("generated_by", Obs.Json.Str "bin/service.exe");
          ("quick", Obs.Json.Bool false);
          ("only", Obs.Json.Null);
          ("experiments", Obs.Json.List []);
        ]
  in
  let old_exps =
    match List.assoc_opt "experiments" fields with
    | Some (Obs.Json.List l) -> l
    | _ -> []
  in
  let is_mine e =
    match Obs.Json.member "id" e with
    | Some (Obs.Json.Str i) -> i = id
    | _ -> false
  in
  let kept_rows =
    List.concat_map
      (fun e ->
        if not (is_mine e) then []
        else
          match Obs.Json.member "rows" e with
          | Some (Obs.Json.List rows) ->
              List.filter (fun r -> row_scenario r <> Some scenario) rows
          | _ -> [])
      old_exps
  in
  let exp =
    Obs.Json.Obj
      [
        ("id", Obs.Json.Str id);
        ("title", Obs.Json.Str title);
        ("rows", Obs.Json.List (kept_rows @ new_rows));
      ]
  in
  let exps = List.filter (fun e -> not (is_mine e)) old_exps @ [ exp ] in
  let fields =
    if List.mem_assoc "experiments" fields then
      List.map
        (fun (k, v) ->
          if k = "experiments" then (k, Obs.Json.List exps) else (k, v))
        fields
    else fields @ [ ("experiments", Obs.Json.List exps) ]
  in
  Batcher_core.Report_json.write_file ~path (Obs.Json.Obj fields)

let merge_svc ~path ~scenario new_rows =
  merge_experiment ~path ~id:"SVC"
    ~title:
      "SVC — open-loop service: end-to-end tail latency, sim P-sweep + \
       runtime K-sweep"
    ~scenario new_rows

let merge_svc_load ~path ~scenario new_rows =
  merge_experiment ~path ~id:"SVC_LOAD"
    ~title:
      "SVC_LOAD — latency vs offered load: rate-multiplier sweep with \
       per-phase attribution and the throughput knee"
    ~scenario new_rows

let merge_causal ~path ~scenario new_rows =
  merge_experiment ~path ~id:"CAUSAL"
    ~title:
      "CAUSAL — what-if profile: virtual speedups per phase, measured \
       sensitivity vs phase share vs Theorem-1 bound"
    ~scenario new_rows
