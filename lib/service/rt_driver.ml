type point = {
  shards : int;
  workers : int;
  mode : Runtime.Batcher_rt.mode;  (* batch-path mode of every shard *)
  requests : int;
  elapsed_ns : float;
  goodput : float;
  classes : Latency.class_stats list;
  batches : int;
  max_batch : int;
  stalls : int;
  slo_burns : int;
  trace : Obs.Reqtrace.t;  (* per-request spans; null unless ?trace *)
}

let class_of_index = [| Gen.Get; Gen.Put; Gen.Delete; Gen.Range |]

(* The dispatcher releases every due request, then sleeps toward the
   next arrival. Releases can be late by the sleep granularity (~0.1 ms)
   or by a lost OS timeslice — harmless to honesty, because latency is
   measured from the scheduled stamp, so release lag is charged to the
   request, never hidden. *)
let dispatch_loop ~t0 ~schedule ~release =
  let n = Array.length schedule in
  let i = ref 0 in
  while !i < n do
    let now = Obs.Clock.now_ns () in
    while
      !i < n && t0 + (schedule.(!i) : Gen.request).Gen.arrive_ns <= now
    do
      release !i;
      incr i
    done;
    if !i < n then begin
      let gap = t0 + schedule.(!i).Gen.arrive_ns - Obs.Clock.now_ns () in
      if gap > 100_000 then Unix.sleepf (float_of_int (gap - 50_000) /. 1e9)
      else if gap > 0 then Domain.cpu_relax ()
    end
  done

let run_point ?workers ?snapshot_path ?duration_s
    ?(mode = Runtime.Batcher_rt.Faa_array) ?(trace = false) ?inject
    (sc : Scenario.t) ~shards =
  let (module S : Store.STORE) = sc.Scenario.store in
  (* The dispatcher owns worker 0 for the whole run, so serving needs
     at least one more worker. *)
  let workers =
    max 2
      (match workers with
      | Some w -> w
      | None -> Domain.recommended_domain_count ())
  in
  let duration_s =
    match duration_s with Some d -> d | None -> sc.Scenario.duration_s
  in
  let n_keys = min sc.Scenario.n_keys sc.Scenario.rt_keys_cap in
  let schedule = Gen.generate (Scenario.gen_rt sc) ~duration_s in
  let n = Array.length schedule in
  let stream = snapshot_path <> None in
  let rc =
    if stream then
      Obs.Recorder.create ~capacity:1024 ~clock:Obs.Recorder.Nanoseconds
        ~workers ()
    else Obs.Recorder.null
  in
  let hl = Obs.Health.create ~workers ~structures:shards () in
  (* One token per schedule slot: the request's index keys its span in
     the flat capture arrays. *)
  let rtr =
    if trace then
      Obs.Reqtrace.create ~workers ~classes:Gen.n_classes ~capacity:n ()
    else Obs.Reqtrace.null
  in
  let pool = Runtime.Pool.create ~recorder:rc ~health:hl ~num_workers:workers () in
  let stores =
    Array.init shards (fun i -> S.create ~seed:sc.Scenario.seed ~shard:i)
  in
  Array.iteri
    (fun i st -> S.prepopulate st ~shards ~shard:i ~n_keys)
    stores;
  let srt =
    Runtime.Shard_rt.create ~mode ~reqtrace:rtr ?inject ~pool ~shards
      ~state:(fun i -> stores.(i))
      ~run_batch:S.run_batch ()
  in
  let dispatched = Atomic.make 0 and completed = Atomic.make 0 in
  let t0_ref = ref (Obs.Clock.now_ns ()) in
  let samples =
    Array.init workers (fun _ -> Array.make Gen.n_classes ([] : float list))
  in
  let elapsed = ref 0 in
  let stop = Atomic.make false in
  let sampler =
    match snapshot_path with
    | None -> None
    | Some path ->
        let extra () =
          let d = Atomic.get dispatched and c = Atomic.get completed in
          let el = Obs.Clock.now_ns () - !t0_ref in
          [
            ("svc_dispatched", Obs.Json.Int d);
            ("svc_completed", Obs.Json.Int c);
            ("svc_queue_depth", Obs.Json.Int (d - c));
            ( "svc_goodput",
              Obs.Json.Float
                (if el > 0 && c > 0 then
                   float_of_int c /. (float_of_int el /. 1e9)
                 else 0.0) );
          ]
        in
        let snap = Obs.Snapshot.to_file ~health:hl ~extra rc ~path in
        Some
          ( snap,
            Domain.spawn (fun () ->
                Obs.Snapshot.every snap ~interval_s:0.1 ~stop:(fun () ->
                    Atomic.get stop)) )
  in
  let finish () =
    Atomic.set stop true;
    Option.iter
      (fun (snap, d) ->
        Domain.join d;
        Obs.Snapshot.close snap)
      sampler;
    Runtime.Pool.teardown pool
  in
  Fun.protect ~finally:finish (fun () ->
      let promises = Array.make n None in
      let serve token (r : Gen.request) () =
        let c = Gen.class_index r.Gen.cls in
        (match Runtime.Pool.worker_index () with
        | Some w -> Obs.Reqtrace.on_start rtr ~token ~cls:c ~worker:w
        | None -> Obs.Reqtrace.on_start rtr ~token ~cls:c ~worker:0);
        let op = S.op_of r in
        (match S.plan ~shards op with
        | Batched.Shard.Point s ->
            Runtime.Shard_rt.batchify ~token srt ~shard:s op
        | Batched.Shard.Fanout { sub; merge } ->
            (* One consistent chain per request: the token rides the
               start key's shard; the join over the rest is charged to
               the span's sched_post residual. *)
            Runtime.Shard_rt.scatter ~token
              ~token_shard:(Batched.Shard.route ~shards r.Gen.key)
              srt sub;
            merge ());
        let lat = Obs.Clock.now_ns () - (!t0_ref + r.Gen.arrive_ns) in
        (* Worker-exclusive push: one task runs per worker at a time
           and there is no suspension point between the index read and
           the cons. *)
        let w =
          match Runtime.Pool.worker_index () with Some w -> w | None -> 0
        in
        Obs.Reqtrace.on_done rtr ~token ~worker:w;
        let by_class = samples.(w) in
        by_class.(c) <- float_of_int lat :: by_class.(c);
        Atomic.incr completed
      in
      Runtime.Pool.run pool (fun () ->
          let t0 = Obs.Clock.now_ns () in
          t0_ref := t0;
          dispatch_loop ~t0 ~schedule ~release:(fun i ->
              Obs.Reqtrace.on_release rtr ~token:i
                ~arrive_ns:(t0 + schedule.(i).Gen.arrive_ns);
              Atomic.incr dispatched;
              promises.(i) <-
                Some (Runtime.Pool.async pool (serve i schedule.(i))));
          Array.iter
            (function
              | Some p -> Runtime.Pool.await pool p | None -> ())
            promises;
          elapsed := Obs.Clock.now_ns () - t0));
  let named =
    List.init Gen.n_classes (fun c ->
        let total =
          Array.fold_left
            (fun acc by_class -> acc + List.length by_class.(c))
            0 samples
        in
        let a = Array.make (max 1 total) 0.0 in
        let pos = ref 0 in
        Array.iter
          (fun by_class ->
            List.iter
              (fun l ->
                a.(!pos) <- l;
                incr pos)
              by_class.(c))
          samples;
        (Gen.class_name class_of_index.(c), Array.sub a 0 total))
  in
  let st = Runtime.Shard_rt.total_stats srt in
  let slo_burns = ref 0 in
  for sid = 0 to shards - 1 do
    List.iter
      (fun ph -> slo_burns := !slo_burns + Obs.Health.burn_count hl ~sid ph)
      [ Obs.Health.Wait; Obs.Health.Exec; Obs.Health.Ovf ]
  done;
  let elapsed_ns = float_of_int !elapsed in
  {
    shards;
    workers;
    mode;
    requests = n;
    elapsed_ns;
    goodput =
      (if elapsed_ns > 0.0 then float_of_int n /. (elapsed_ns /. 1e9) else 0.0);
    classes = Latency.of_samples named;
    batches = st.Runtime.Batcher_rt.batches;
    max_batch = st.Runtime.Batcher_rt.max_batch;
    stalls = Obs.Health.stall_count hl;
    slo_burns = !slo_burns;
    trace = rtr;
  }

let run ?workers ?snapshot_path ?duration_s ?mode ?trace ?inject sc =
  List.map
    (fun shards ->
      run_point ?workers ?snapshot_path ?duration_s ?mode ?trace ?inject sc
        ~shards)
    sc.Scenario.rt_shards
