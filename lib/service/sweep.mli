(** Latency vs offered load: a recorded rate-multiplier × mode × K
    grid over the runtime leg, with per-point phase attribution and
    the throughput knee.

    Every grid point runs {!Rt_driver.run_point} with request tracing
    on, so alongside goodput and the latency digest it carries the
    exact share of total latency spent in each phase
    ({!Obs.Reqtrace.totals}) — the sweep answers both "where is the
    knee" and "what the tail is made of past it". *)

type point = {
  mode : Runtime.Batcher_rt.mode;
  shards : int;
  mult : float;  (** rate multiplier applied to the scenario's rt_rate *)
  offered_req_s : float;  (** the scenario's rt_rate ×. mult *)
  pt : Rt_driver.point;  (** the traced run: goodput, digests, spans *)
  shares : (string * float) list;
      (** {!Obs.Reqtrace.shares} of the point's trace:
          queue/sched/pending/exec shares of total latency (sum to 1)
          plus the ovf sub-share *)
}

type knee = {
  k_mode : Runtime.Batcher_rt.mode;
  k_shards : int;
  knee_req_s : float;
      (** highest swept offered rate whose delivered goodput is ≥
          {!knee_threshold} of offered; 0.0 when even the lowest point
          fell short *)
  knee_mult : float;  (** the multiplier of that point (0.0 likewise) *)
  k_absent : bool;
      (** true when {e no} swept multiplier kept up — the knee row is
          still emitted (with [knee_absent] true) so a saturated
          configuration shows up as an explicit verdict rather than a
          silently missing row, and [--gate-knee] in
          [bin/bench_diff.exe] treats it as a trip *)
}

type t = {
  scenario : Scenario.t;
  points : point list;  (** modes × shards × mults, in that nesting *)
  knees : knee list;  (** one per (mode, shards) *)
}

val knee_threshold : float
(** 0.9: a point "keeps up" when goodput ≥ 90% of offered. Below the
    knee the ratio sits at ~1 (open-loop, the dispatcher releases on
    schedule); past saturation it falls off sharply, so the exact
    threshold barely moves the knee. *)

val scale : Scenario.t -> float -> Scenario.t
(** [scale sc mult] is [sc] with its open-loop arrival rate multiplied
    by [mult] — the per-point transform of the sweep grid, exported
    for other rate-stretching experiments ([Svc.Causal]'s runtime leg
    dilates arrivals by 1/f). *)

val knees_of_points :
  modes:Runtime.Batcher_rt.mode list ->
  shards:int list ->
  point list ->
  knee list
(** Pure knee extraction over measured points, one knee per
    (mode, K) in the given order — including an explicit [k_absent]
    knee for a pair whose every point failed {!knee_threshold}. *)

val default_mults : float list
(** [0.25; 0.5; 1.0; 2.0; 4.0] — spans comfortable to past-saturation
    on the calibrated scenarios (standard's 4× offered exceeds this
    box's measured capacity). *)

val run :
  ?mults:float list ->
  ?modes:Runtime.Batcher_rt.mode list ->
  ?shards:int list ->
  ?workers:int ->
  ?duration_s:float ->
  Scenario.t ->
  t
(** Run the grid. Defaults: {!default_mults}, modes
    [[Faa_array]], shards = the scenario's largest K, duration
    min(scenario, 1 s) per point (a sweep multiplies runs). *)

val rows : t -> Obs.Json.t list
(** [SVC_LOAD] rows for BENCH_results.json: one ["all"] row per grid
    point (identity: scenario/store/mode/shards/mult; metrics:
    offered_req_s, goodput, latency digest, share_* phase shares) and
    one ["knee"] row per (mode, K) carrying [knee_req_s] and
    [knee_absent] — the [--gate-knee] handles in
    [bin/bench_diff.exe]. Merge with
    {!Report.merge_svc_load}. *)
