(* Weight-balanced BST with the (Δ = 3, Γ = 2) parameters proven correct
   for Haskell's Data.Set (Hirai & Yamamoto, JFP 2011). [sz] caches the
   subtree size, giving O(lg n) rank and select. *)

type t =
  | Leaf
  | Node of { l : t; k : int; r : t; sz : int }

let empty = Leaf

let size = function Leaf -> 0 | Node n -> n.sz

let node l k r = Node { l; k; r; sz = size l + size r + 1 }

let delta = 3
let gamma = 2

(* [r] may be one element too heavy relative to [l]. *)
let balance_left l k r =
  if delta * (size l + 1) >= size r + 1 then node l k r
  else begin
    match r with
    | Node { l = rl; k = rk; r = rr; _ } ->
        if size rl + 1 < gamma * (size rr + 1) then
          (* single left rotation *)
          node (node l k rl) rk rr
        else begin
          match rl with
          | Node { l = rll; k = rlk; r = rlr; _ } ->
              (* double rotation *)
              node (node l k rll) rlk (node rlr rk rr)
          | Leaf -> assert false
        end
    | Leaf -> assert false
  end

(* Mirror image: [l] may be too heavy. *)
let balance_right l k r =
  if delta * (size r + 1) >= size l + 1 then node l k r
  else begin
    match l with
    | Node { l = ll; k = lk; r = lr; _ } ->
        if size lr + 1 < gamma * (size ll + 1) then node ll lk (node lr k r)
        else begin
          match lr with
          | Node { l = lrl; k = lrk; r = lrr; _ } ->
              node (node ll lk lrl) lrk (node lrr k r)
          | Leaf -> assert false
        end
    | Leaf -> assert false
  end

let rec mem t key =
  match t with
  | Leaf -> false
  | Node n -> if key = n.k then true else if key < n.k then mem n.l key else mem n.r key

let rec insert t key =
  match t with
  | Leaf -> node Leaf key Leaf
  | Node n ->
      if key = n.k then t
      else if key < n.k then balance_right (insert n.l key) n.k n.r
      else balance_left n.l n.k (insert n.r key)

let rec delete_min t =
  match t with
  | Leaf -> invalid_arg "Ostree.delete_min: empty"
  | Node { l = Leaf; k; r; _ } -> (k, r)
  | Node n ->
      let m, l' = delete_min n.l in
      (m, balance_left l' n.k n.r)

let rec delete t key =
  match t with
  | Leaf -> Leaf
  | Node n ->
      if key < n.k then balance_left (delete n.l key) n.k n.r
      else if key > n.k then balance_right n.l n.k (delete n.r key)
      else begin
        match n.l, n.r with
        | Leaf, r -> r
        | l, Leaf -> l
        | l, r ->
            let s, r' = delete_min r in
            balance_right l s r'
      end

let rec rank t key =
  match t with
  | Leaf -> 0
  | Node n ->
      if key <= n.k then rank n.l key
      else size n.l + 1 + rank n.r key

let rec select t i =
  match t with
  | Leaf -> None
  | Node n ->
      let sl = size n.l in
      if i < sl then select n.l i
      else if i = sl then Some n.k
      else select n.r (i - sl - 1)

let rec to_sorted_list = function
  | Leaf -> []
  | Node n -> to_sorted_list n.l @ (n.k :: to_sorted_list n.r)

(* Keys in [lo, hi), ascending. Subtrees wholly outside the interval are
   pruned, so the cost is O(lg n + answer). *)
let range_seq t ~lo ~hi =
  let rec go t acc =
    match t with
    | Leaf -> acc
    | Node n ->
        let acc = if n.k < hi then go n.r acc else acc in
        let acc = if lo <= n.k && n.k < hi then n.k :: acc else acc in
        if n.k >= lo then go n.l acc else acc
  in
  go t []

let check_invariants t =
  let rec check = function
    | Leaf -> 0
    | Node n ->
        let sl = check n.l and sr = check n.r in
        if n.sz <> sl + sr + 1 then failwith "Ostree: size cache wrong";
        if not (delta * (sl + 1) >= sr + 1 && delta * (sr + 1) >= sl + 1) then
          failwith "Ostree: weight balance violated";
        n.sz
  in
  ignore (check t);
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        if a >= b then failwith "Ostree: keys out of order";
        ascending rest
    | _ -> ()
  in
  ascending (to_sorted_list t)

type insert_record = { key : int; mutable inserted : bool }
type delete_record = { del_key : int; mutable deleted : bool }
type rank_record = { rank_of : int; mutable rank_result : int }
type select_record = { index : int; mutable selected : int option }
type range_record = { r_lo : int; r_hi : int; mutable r_keys : int list }

type op =
  | Insert of insert_record
  | Delete of delete_record
  | Rank of rank_record
  | Select of select_record
  | Range of range_record

let insert_op key = Insert { key; inserted = false }
let delete_op key = Delete { del_key = key; deleted = false }
let rank_op key = Rank { rank_of = key; rank_result = 0 }
let select_op index = Select { index; selected = None }
let range_op ~lo ~hi = Range { r_lo = lo; r_hi = hi; r_keys = [] }

let run_batch t d =
  (* Median-first inserts (the PVW recursion shape), then deletes, then
     read-only queries over the net result. *)
  let records =
    Array.to_list d
    |> List.filter_map (function Insert r -> Some r | _ -> None)
    |> List.sort_uniq (fun (a : insert_record) b -> compare a.key b.key)
    |> Array.of_list
  in
  let rec insert_range t lo hi =
    if lo >= hi then t
    else begin
      let mid = (lo + hi) / 2 in
      let r = records.(mid) in
      let before = mem t r.key in
      let t = insert t r.key in
      if not before then r.inserted <- true;
      let t = insert_range t lo mid in
      insert_range t (mid + 1) hi
    end
  in
  let t = insert_range t 0 (Array.length records) in
  let t =
    Array.fold_left
      (fun t op ->
        match op with
        | Delete r ->
            if mem t r.del_key then begin
              r.deleted <- true;
              delete t r.del_key
            end
            else t
        | _ -> t)
      t d
  in
  Array.iter
    (function
      | Insert _ | Delete _ -> ()
      | Rank r -> r.rank_result <- rank t r.rank_of
      | Select s -> s.selected <- select t s.index
      | Range r -> r.r_keys <- range_seq t ~lo:r.r_lo ~hi:r.r_hi)
    d;
  t

let sim_model ~initial_size ?(records_per_node = 1) () =
  let sz = ref initial_size in
  let reset () = sz := initial_size in
  let batch_cost nodes =
    let x = max 1 (records_per_node * Array.length nodes) in
    let lg_x = Model.log2_cost x in
    let lg_n = Model.log2_cost !sz in
    let sort = Par.balanced ~leaf_cost:(fun _ -> lg_x) x in
    let work_phase = Par.balanced ~leaf_cost:(fun _ -> lg_n) x in
    sz := !sz + x;
    Par.series [ sort; work_phase ]
  in
  let seq_cost _ =
    let c = Model.log2_cost !sz + 2 in
    sz := !sz + records_per_node;
    max 1 (records_per_node * c)
  in
  { Model.name = "ostree"; reset; batch_cost; seq_cost }
