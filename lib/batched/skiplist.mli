(** Batched skip list — the data structure of the paper's Section 7
    evaluation.

    The batched insert (BOP) follows the paper's three steps: (1) build a
    small list from the batch's records, (2) search for every record's
    position in the main list, (3) splice. In the real implementation the
    records are sorted and spliced with a resuming finger, so a batch of
    [x] keys costs O(x + lg N) expected beyond the per-key splice work;
    the simulator cost model exposes the parallel shape (searches in
    parallel, build/splice sequential), exactly as the prototype in the
    paper did.

    Tower heights come from a deterministic private stream, so runs are
    reproducible. Keys are a set: inserting a present key is a no-op. *)

type t

val create : ?seed:int -> unit -> t

val length : t -> int

type insert_record = { key : int; mutable inserted : bool }
type mem_record = { mem_key : int; mutable found : bool }
type delete_record = { del_key : int; mutable deleted : bool }

type range_record = { r_lo : int; r_hi : int; mutable r_keys : int list }
(** Half-open interval query: the stored keys in [\[r_lo, r_hi)],
    ascending — the cross-shard operation of {!Shard}: each shard
    answers over its own keys and the combinator merges the sorted
    sub-results. *)

type op =
  | Insert of insert_record
  | Mem of mem_record
  | Delete of delete_record
  | Range of range_record

val insert : int -> op
val mem : int -> op
val delete : int -> op
val range : lo:int -> hi:int -> op

val run_batch : t -> op array -> unit
(** Phase order within a batch: inserts, then deletes, then queries
    (membership and ranges, which observe the batch's net effect). *)

val run_batch_with :
  pfor:(int -> (int -> unit) -> unit) -> t -> op array -> unit
(** Like {!run_batch}, but the search phase runs through [pfor count body]
    — the paper's actual BOP: searches into the main list proceed in
    parallel (they are read-only), and the splice phase is sequential,
    revalidating each saved search position past splices of smaller keys
    from the same batch. Pass [Runtime.Pool.parallel_for pool ~lo:0
    ~hi:count] (suitably wrapped) to parallelize for real; behavior is
    identical to {!run_batch} for any correct [pfor]. *)

val insert_seq : t -> int -> bool
(** Single-key insert; [true] if the key was new. The sequential baseline
    of Figure 5. *)

val mem_seq : t -> int -> bool

val delete_seq : t -> int -> bool
(** [true] if the key was present (and is now removed). *)

val range_seq : t -> lo:int -> hi:int -> int list
(** Stored keys in [\[lo, hi)], ascending; O(lg n + answer). *)

val to_list : t -> int list
(** Ascending key order. *)

val check_invariants : t -> unit
(** Validates sortedness and tower consistency; raises [Failure]. *)

val sim_model :
  initial_size:int -> ?records_per_node:int -> ?search_scale:float -> unit -> Model.t
(** Cost model for inserting fresh keys into a list that starts with
    [initial_size] elements. A batch of [x] records costs: build Θ(x)
    sequential; searches [x] parallel leaves of ~[search_scale]·lg(size)
    each; splice Θ(x) sequential. A lone sequential insert costs
    ~[search_scale]·lg(size) + O(1). *)
