(** Keyspace sharding across K independent instances of a batched
    structure.

    The paper's Invariant 1 — one batch in flight per structure — is a
    throughput ceiling: every operation funnels through a single batch
    flag. Splitting the keyspace across K instances makes the invariant
    per-shard; each shard runs its own batches concurrently with the
    others, and the Theorem-1 accounting composes because a shard is
    just another batched structure (the per-shard bound is
    O((T1 + K·n·s(n/K))/P + m·s(n/K) + T∞)).

    This module is substrate-agnostic: it decides {e where} operations
    go — a {!plan} — not how they are submitted. [Runtime.Shard_rt]
    executes plans over K [Batcher_rt] instances (point ops submit to
    one shard; fan-out ops scatter one sub-operation per shard with
    fork-join and then [merge]); the simulator models shards as
    separate structures via [Sim.Workload.sharded_ops] with {!route}
    as the node-to-structure assignment. *)

val route : shards:int -> int -> int
(** [route ~shards key] is the owning shard of [key]: deterministic,
    total over all of [int] (including negatives), and in
    [\[0, shards)]. With [shards <= 1] always 0. Keys are mixed
    (Fibonacci hashing) so clustered ranges still balance. *)

val merge_sorted : int list array -> int list
(** K-way merge of ascending lists into one ascending list — the
    gather half of a cross-shard range query. *)

type 'op plan =
  | Point of int  (** submit to this single shard *)
  | Fanout of {
      sub : 'op array;
          (** one fresh sub-operation per shard; index = shard *)
      merge : unit -> unit;
          (** after every sub-operation completed: fold the shards'
              sub-results into the original operation's record *)
    }

type ('t, 'op) spec = {
  name : string;
  make : int -> 't;  (** fresh instance for the given shard index *)
  apply : 't -> 'op array -> unit;
      (** the structure's BOP; results land in the records *)
  plan : shards:int -> 'op -> 'op plan;
}
(** How one batched structure shards. *)

type ('t, 'op) t
(** K direct (unbatched) instances plus the spec — the sequential form
    of a sharded structure, used by tests and oracles. The runtime
    equivalent lives in [Runtime.Shard_rt]. *)

val create : ('t, 'op) spec -> shards:int -> ('t, 'op) t
val shards : ('t, 'op) t -> int
val instance : ('t, 'op) t -> int -> 't

val plan : ('t, 'op) t -> 'op -> 'op plan

val run_shard_batch : ('t, 'op) t -> shard:int -> 'op array -> unit
(** Apply one batch to one shard's instance. *)

val apply_seq : ('t, 'op) t -> 'op -> unit
(** Execute one operation to completion sequentially: route-and-apply
    for point plans, scatter-all-then-merge for fan-out plans. *)

val models : shards:int -> (int -> Model.t) -> Model.t array
(** One simulator cost model per shard ([model_for i] should model the
    shard at ~1/K of the full structure's size); pair with {!route} as
    the workload's node assignment — see [Sim.Workload.sharded_ops]. *)

val skiplist : (Skiplist.t, Skiplist.op) spec
(** Insert/Mem/Delete route by key; Range fans out and merges the
    shards' sorted answers. *)

val hashtable : (Hashtable.t, Hashtable.op) spec
(** All operations are point operations (routed by key). *)

val ostree : (Ostree.t ref, Ostree.op) spec
(** Insert/Delete route by key; Range fans out with a sorted merge;
    Rank fans out and sums (each key below the pivot lives in exactly
    one shard). Select raises [Invalid_argument] — an exact
    order-statistic needs a multi-round quantile search, which a
    single scatter round cannot express. *)
