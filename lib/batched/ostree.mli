(** Batched order-statistic tree: a weight-balanced binary search tree
    whose nodes carry subtree sizes, supporting rank and select — the
    augmented-dictionary regime of the bulk-update search trees the
    paper's related work cites (weight-balanced B-trees of Erb,
    Kobitzsch and Sanders).

    Rebalancing uses single/double rotations with the classic
    (weight, ratio) = (5/2, 3/2)-ish integer parameters; all operations
    are O(lg n). The batched operation applies inserts (median-first,
    as in the 2-3 tree), then deletes, then answers rank/select/mem
    queries against the net result. *)

type t

val empty : t
val size : t -> int
val mem : t -> int -> bool
val insert : t -> int -> t
val delete : t -> int -> t

val rank : t -> int -> int
(** [rank t k] = number of stored keys strictly less than [k]. *)

val select : t -> int -> int option
(** [select t i] = the i-th smallest key (0-based), if [0 <= i < size]. *)

val to_sorted_list : t -> int list

val range_seq : t -> lo:int -> hi:int -> int list
(** Stored keys in [\[lo, hi)], ascending; O(lg n + answer). *)

val check_invariants : t -> unit
(** Sizes consistent, keys ordered, weight balance respected. *)

type insert_record = { key : int; mutable inserted : bool }
type delete_record = { del_key : int; mutable deleted : bool }
type rank_record = { rank_of : int; mutable rank_result : int }
type select_record = { index : int; mutable selected : int option }

type range_record = { r_lo : int; r_hi : int; mutable r_keys : int list }
(** Half-open interval query answered in the batch's final (read-only)
    phase: stored keys in [\[r_lo, r_hi)], ascending. The cross-shard
    operation of {!Shard}. *)

type op =
  | Insert of insert_record
  | Delete of delete_record
  | Rank of rank_record
  | Select of select_record
  | Range of range_record

val insert_op : int -> op
val delete_op : int -> op
val rank_op : int -> op
val select_op : int -> op
val range_op : lo:int -> hi:int -> op

val run_batch : t -> op array -> t

val sim_model :
  initial_size:int -> ?records_per_node:int -> unit -> Model.t
(** Same cost regime as the 2-3 tree: sort + parallel searches +
    insertion recursion, all O(lg n) per record. *)
