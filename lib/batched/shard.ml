(* Keyspace sharding across K independent batched-structure instances.

   Everything here is substrate-agnostic: the combinator computes WHERE
   an operation goes (a routing plan), not HOW it is submitted. The real
   runtime's K-instance wiring (one [Batcher_rt] per shard, fork-join
   scatter for fan-out plans) lives in [Runtime.Shard_rt]; the simulator
   models each shard as one more structure via [Sim.Workload.sharded_ops]
   with [route] as the assignment function. Invariant 1 (one batch in
   flight) then holds per shard by construction — each shard has its own
   batch flag — which is exactly what makes sharding a throughput lever. *)

let route ~shards key =
  if shards <= 1 then 0
  else begin
    (* Fibonacci mix (same constant as [Hashtable.bucket_of]) so that
       clustered key ranges still spread across shards; [land max_int]
       clears the sign bit, making the result total over all of [int]. *)
    let h = key * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 31)) land max_int mod shards
  end

(* K-way merge of ascending lists into one ascending list. Shard counts
   are small, so a linear scan for the minimum head is fine. *)
let merge_sorted parts =
  let heads = Array.copy parts in
  let k = Array.length heads in
  let rec go acc =
    let best = ref (-1) in
    for i = k - 1 downto 0 do
      match heads.(i) with
      | [] -> ()
      | x :: _ -> (
          match !best with
          | -1 -> best := i
          | b -> (
              match heads.(b) with
              | y :: _ when y <= x -> ()
              | _ -> best := i))
    done;
    match !best with
    | -1 -> List.rev acc
    | i -> (
        match heads.(i) with
        | x :: rest ->
            heads.(i) <- rest;
            go (x :: acc)
        | [] -> assert false)
  in
  go []

type 'op plan =
  | Point of int
  | Fanout of { sub : 'op array; merge : unit -> unit }

type ('t, 'op) spec = {
  name : string;
  make : int -> 't;
  apply : 't -> 'op array -> unit;
  plan : shards:int -> 'op -> 'op plan;
}

type ('t, 'op) t = {
  spec : ('t, 'op) spec;
  instances : 't array;
}

let create spec ~shards =
  if shards < 1 then invalid_arg "Shard.create: shards >= 1";
  { spec; instances = Array.init shards spec.make }

let shards t = Array.length t.instances
let instance t i = t.instances.(i)
let plan t op = t.spec.plan ~shards:(Array.length t.instances) op
let run_shard_batch t ~shard ops = t.spec.apply t.instances.(shard) ops

let apply_seq t op =
  match plan t op with
  | Point s -> t.spec.apply t.instances.(s) [| op |]
  | Fanout { sub; merge } ->
      Array.iteri (fun s o -> t.spec.apply t.instances.(s) [| o |]) sub;
      merge ()

let models ~shards model_for = Array.init shards model_for

(* ---------- specs ---------- *)

let skiplist_key = function
  | Skiplist.Insert r -> Some r.Skiplist.key
  | Skiplist.Mem r -> Some r.Skiplist.mem_key
  | Skiplist.Delete r -> Some r.Skiplist.del_key
  | Skiplist.Range _ -> None

let skiplist : (Skiplist.t, Skiplist.op) spec =
  {
    name = "skiplist";
    (* Distinct tower-height streams per shard keep runs reproducible
       without the shards sharing an RNG. *)
    make = (fun i -> Skiplist.create ~seed:(0xBA7C4 + i) ());
    apply = Skiplist.run_batch;
    plan =
      (fun ~shards op ->
        match skiplist_key op with
        | Some key -> Point (route ~shards key)
        | None -> (
            match op with
            | Skiplist.Range r ->
                let sub =
                  Array.init shards (fun _ ->
                      Skiplist.range ~lo:r.Skiplist.r_lo ~hi:r.Skiplist.r_hi)
                in
                let merge () =
                  r.Skiplist.r_keys <-
                    merge_sorted
                      (Array.map
                         (function
                           | Skiplist.Range s -> s.Skiplist.r_keys
                           | _ -> assert false)
                         sub)
                in
                Fanout { sub; merge }
            | _ -> assert false));
  }

let hashtable : (Hashtable.t, Hashtable.op) spec =
  {
    name = "hashtable";
    make = (fun _ -> Hashtable.create ());
    apply = Hashtable.run_batch;
    plan =
      (fun ~shards op ->
        let key =
          match op with
          | Hashtable.Insert r -> r.Hashtable.i_key
          | Hashtable.Lookup r -> r.Hashtable.l_key
          | Hashtable.Remove r -> r.Hashtable.r_key
        in
        Point (route ~shards key));
  }

let ostree : (Ostree.t ref, Ostree.op) spec =
  {
    name = "ostree";
    make = (fun _ -> ref Ostree.empty);
    apply = (fun t ops -> t := Ostree.run_batch !t ops);
    plan =
      (fun ~shards op ->
        match op with
        | Ostree.Insert r -> Point (route ~shards r.Ostree.key)
        | Ostree.Delete r -> Point (route ~shards r.Ostree.del_key)
        | Ostree.Rank r ->
            (* The global rank is the sum of per-shard ranks: every key
               strictly below [rank_of] lives in exactly one shard. *)
            let sub =
              Array.init shards (fun _ -> Ostree.rank_op r.Ostree.rank_of)
            in
            let merge () =
              r.Ostree.rank_result <-
                Array.fold_left
                  (fun acc o ->
                    match o with
                    | Ostree.Rank s -> acc + s.Ostree.rank_result
                    | _ -> assert false)
                  0 sub
            in
            Fanout { sub; merge }
        | Ostree.Range r ->
            let sub =
              Array.init shards (fun _ ->
                  Ostree.range_op ~lo:r.Ostree.r_lo ~hi:r.Ostree.r_hi)
            in
            let merge () =
              r.Ostree.r_keys <-
                merge_sorted
                  (Array.map
                     (function
                       | Ostree.Range s -> s.Ostree.r_keys
                       | _ -> assert false)
                     sub)
            in
            Fanout { sub; merge }
        | Ostree.Select _ ->
            (* An exact order-statistic select needs a multi-round
               quantile search across shards; a single scatter round
               cannot answer it. Callers must not shard Select. *)
            invalid_arg "Shard.ostree: Select is not shardable");
  }
