let max_level = 32

(* The head sentinel holds no key; [forward.(l)] is the first real node at
   level l. Real nodes have towers of length [height]. *)
type node = {
  key : int;
  forward : node option array;
}

type t = {
  head : node;
  mutable level : int;  (* highest level in use, >= 1 *)
  mutable size : int;
  rng : Util.Rng.t;
}

let create ?(seed = 0xBA7C4) () =
  {
    head = { key = min_int; forward = Array.make max_level None };
    level = 1;
    size = 0;
    rng = Util.Rng.create ~seed;
  }

let length t = t.size

(* Geometric heights with p = 1/2, capped. *)
let random_height t =
  let bits = Util.Rng.next64 t.rng in
  let rec count h =
    if h >= max_level then max_level
    else if Int64.logand (Int64.shift_right_logical bits (h - 1)) 1L = 1L then count (h + 1)
    else h
  in
  count 1

type insert_record = { key : int; mutable inserted : bool }
type mem_record = { mem_key : int; mutable found : bool }
type delete_record = { del_key : int; mutable deleted : bool }
type range_record = { r_lo : int; r_hi : int; mutable r_keys : int list }

type op =
  | Insert of insert_record
  | Mem of mem_record
  | Delete of delete_record
  | Range of range_record

let insert key = Insert { key; inserted = false }
let mem key = Mem { mem_key = key; found = false }
let delete key = Delete { del_key = key; deleted = false }
let range ~lo ~hi = Range { r_lo = lo; r_hi = hi; r_keys = [] }

(* Fill [update] with, per level, the rightmost node whose key is < key,
   starting the search at [start] from level [t.level - 1]. *)
let search_update t (update : node array) key =
  let x = ref t.head in
  for l = t.level - 1 downto 0 do
    let rec advance () =
      match !x.forward.(l) with
      | Some nxt when nxt.key < key ->
          x := nxt;
          advance ()
      | _ -> ()
    in
    advance ();
    update.(l) <- !x
  done

let splice t (update : node array) key =
  let h = random_height t in
  if h > t.level then begin
    for l = t.level to h - 1 do
      update.(l) <- t.head
    done;
    t.level <- h
  end;
  let fresh = { key; forward = Array.make h None } in
  for l = 0 to h - 1 do
    fresh.forward.(l) <- update.(l).forward.(l);
    update.(l).forward.(l) <- Some fresh
  done;
  t.size <- t.size + 1

let insert_seq t key =
  let update = Array.make max_level t.head in
  search_update t update key;
  let duplicate =
    match update.(0).forward.(0) with
    | Some nxt -> nxt.key = key
    | None -> false
  in
  if duplicate then false
  else begin
    splice t update key;
    true
  end

let mem_seq t key =
  let x = ref t.head in
  for l = t.level - 1 downto 0 do
    let rec advance () =
      match !x.forward.(l) with
      | Some nxt when nxt.key < key ->
          x := nxt;
          advance ()
      | _ -> ()
    in
    advance ()
  done;
  match !x.forward.(0) with Some nxt -> nxt.key = key | None -> false

let delete_seq t key =
  let update = Array.make max_level t.head in
  search_update t update key;
  match update.(0).forward.(0) with
  | Some victim when victim.key = key ->
      (* Unlink the victim's tower at every level it participates in. *)
      let h = Array.length victim.forward in
      for l = 0 to h - 1 do
        match update.(l).forward.(l) with
        | Some n when n == victim -> update.(l).forward.(l) <- victim.forward.(l)
        | _ -> ()
      done;
      (* Lower the list level past now-empty levels. *)
      while t.level > 1 && t.head.forward.(t.level - 1) = None do
        t.level <- t.level - 1
      done;
      t.size <- t.size - 1;
      true
  | _ -> false

(* Keys in [lo, hi), ascending: skip down to the predecessor of [lo],
   then walk level 0. O(lg n + answer). *)
let range_seq t ~lo ~hi =
  let update = Array.make max_level t.head in
  search_update t update lo;
  let rec collect acc = function
    | Some (n : node) when n.key < hi -> collect (n.key :: acc) n.forward.(0)
    | _ -> List.rev acc
  in
  collect [] update.(0).forward.(0)

let run_batch t d =
  (* Step 1 (build): collect and sort the batch's insert keys. Step 2
     (search) + step 3 (splice): ascending order lets each search resume
     from the previous splice point, the sequential analogue of the
     paper's parallel search phase. *)
  let inserts =
    Array.to_list d
    |> List.filter_map (function
         | Insert r -> Some r
         | Mem _ | Delete _ | Range _ -> None)
  in
  let sorted =
    List.sort (fun (a : insert_record) b -> compare a.key b.key) inserts
  in
  let update = Array.make max_level t.head in
  List.iter
    (fun (r : insert_record) ->
      search_update t update r.key;
      let duplicate =
        match update.(0).forward.(0) with
        | Some nxt -> nxt.key = r.key
        | None -> false
      in
      if not duplicate then begin
        splice t update r.key;
        r.inserted <- true
      end)
    sorted;
  (* Delete phase. *)
  Array.iter
    (function
      | Delete r -> r.deleted <- delete_seq t r.del_key
      | Insert _ | Mem _ | Range _ -> ())
    d;
  (* Query phase (membership and ranges) observes the batch's net effect. *)
  Array.iter
    (function
      | Insert _ | Delete _ -> ()
      | Mem r -> r.found <- mem_seq t r.mem_key
      | Range r -> r.r_keys <- range_seq t ~lo:r.r_lo ~hi:r.r_hi)
    d

(* The paper's BOP with a caller-supplied parallel-for. Step 1 (build):
   sort the batch's insert keys. Step 2 (search): every key's update
   array is computed concurrently — searches only read the list. Step 3
   (splice): sequential over ascending keys; a saved update entry may be
   stale where an earlier (smaller) key of the same batch spliced in
   front of it, so each level pointer is re-advanced before linking. *)
let run_batch_with ~pfor t d =
  let inserts =
    Array.to_list d
    |> List.filter_map (function
         | Insert r -> Some r
         | Mem _ | Delete _ | Range _ -> None)
    |> List.sort (fun (a : insert_record) b -> compare a.key b.key)
    |> Array.of_list
  in
  let x = Array.length inserts in
  let updates = Array.init x (fun _ -> [||]) in
  (* Parallel search phase. *)
  pfor x (fun i ->
      let u = Array.make max_level t.head in
      search_update t u inserts.(i).key;
      updates.(i) <- u);
  (* Sequential splice phase with revalidation. *)
  Array.iteri
    (fun i (r : insert_record) ->
      let u = updates.(i) in
      (* New levels may have appeared since the search. *)
      let u =
        if Array.length u < max_level then Array.make max_level t.head else u
      in
      for l = t.level - 1 downto 0 do
        let rec advance () =
          match u.(l).forward.(l) with
          | Some nxt when nxt.key < r.key ->
              u.(l) <- nxt;
              advance ()
          | _ -> ()
        in
        advance ()
      done;
      let duplicate =
        match u.(0).forward.(0) with
        | Some nxt -> nxt.key = r.key
        | None -> false
      in
      if not duplicate then begin
        splice t u r.key;
        r.inserted <- true
      end)
    inserts;
  (* Delete and query phases, as in the sequential core. *)
  Array.iter
    (function
      | Delete r -> r.deleted <- delete_seq t r.del_key
      | Insert _ | Mem _ | Range _ -> ())
    d;
  Array.iter
    (function
      | Insert _ | Delete _ -> ()
      | Mem r -> r.found <- mem_seq t r.mem_key
      | Range r -> r.r_keys <- range_seq t ~lo:r.r_lo ~hi:r.r_hi)
    d

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some (n : node) -> go (n.key :: acc) n.forward.(0)
  in
  go [] t.head.forward.(0)

let check_invariants t =
  (* Level-0 keys strictly ascending and size consistent. *)
  let keys = to_list t in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        if a >= b then failwith "Skiplist: keys not strictly ascending";
        sorted rest
    | _ -> ()
  in
  sorted keys;
  if List.length keys <> t.size then failwith "Skiplist: size mismatch";
  (* Every level-l list is a subsequence of the level-0 list. *)
  for l = 1 to t.level - 1 do
    let rec walk = function
      | None -> ()
      | Some (n : node) ->
          if not (List.mem n.key keys) then failwith "Skiplist: orphan tower";
          if Array.length n.forward <= l then failwith "Skiplist: tower too short";
          walk n.forward.(l)
    in
    walk t.head.forward.(l)
  done

let sim_model ~initial_size ?(records_per_node = 1) ?(search_scale = 1.0) () =
  let size = ref initial_size in
  let reset () = size := initial_size in
  let search_cost () = Model.scaled (Model.log2_cost !size) search_scale in
  let batch_cost nodes =
    let x = records_per_node * Array.length nodes in
    let x = max 1 x in
    let per_search = search_cost () in
    let build = Par.leaf x in
    let searches = Par.balanced ~leaf_cost:(fun _ -> per_search) x in
    let splice_phase = Par.leaf x in
    size := !size + x;
    Par.series [ build; searches; splice_phase ]
  in
  let seq_cost _ =
    let c = search_cost () + 2 in
    size := !size + records_per_node;
    max 1 (records_per_node * c)
  in
  { Model.name = "skiplist"; reset; batch_cost; seq_cost }
