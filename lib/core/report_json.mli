(** Machine-readable mirrors of {!Report}'s tables.

    Each converter renders the same row list that the pretty-printer
    receives, so the JSON numbers always match the printed tables. The
    result feeds {!results_file}, the stable [BENCH_results.json]
    schema emitted by [bench/main.exe] (documented in EXPERIMENTS.md):

    {v
    { "schema_version": 1,
      "generated_by": "bench/main.exe",
      "quick": bool,
      "only": string | null,
      "experiments": [
        { "id": "E1", "title": "...", "rows": [ {...}, ... ] },
        ...
      ] }
    v}

    Row fields are experiment-specific but stable per id; numbers are
    raw (throughput in records per timestep, makespans in timesteps,
    micro-benchmark estimates in ns/run). *)

val fig5 : Experiments.fig5_row list -> Obs.Json.t
val flatcomb : Experiments.flatcomb_row list -> Obs.Json.t
val example : Experiments.example_row list -> Obs.Json.t
val theory : Experiments.theory_row list -> Obs.Json.t
val theorem3 : Experiments.tau_row list -> Obs.Json.t
val lemma2 : Experiments.lemma2_row list -> Obs.Json.t
val ablation : Experiments.ablation_row list -> Obs.Json.t
val pthreaded : Experiments.pthread_row list -> Obs.Json.t
val multi : Experiments.multi_row list -> Obs.Json.t
val granularity : Experiments.granularity_row list -> Obs.Json.t

val micro : (string * float) list -> Obs.Json.t
(** Bechamel estimates: [(benchmark name, ns/run)]. *)

val results_file :
  quick:bool -> only:string option -> (string * string * Obs.Json.t) list -> Obs.Json.t
(** [(id, title, rows)] per experiment, in run order. *)

val write_file : path:string -> Obs.Json.t -> unit
