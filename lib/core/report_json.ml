(* JSON mirrors of Report's tables. Field names are part of the stable
   BENCH_results.json schema (EXPERIMENTS.md) — rename with care. *)

open Obs.Json

let obj = fun fields -> Obj fields
let rows conv l = List (List.map conv l)

let fig5 l =
  rows
    (fun (r : Experiments.fig5_row) ->
      obj
        [
          ("initial_size", Int r.initial);
          ("seq_throughput", Float r.seq_throughput);
          ( "batcher",
            List
              (List.map
                 (fun (p, mean, stddev) ->
                   obj
                     [
                       ("p", Int p);
                       ("mean_throughput", Float mean);
                       ("stddev", Float stddev);
                     ])
                 r.batcher) );
        ])
    l

let flatcomb l =
  rows
    (fun (r : Experiments.flatcomb_row) ->
      obj
        [
          ("p", Int r.fc_p);
          ("batcher_throughput", Float r.batcher_tp);
          ("flatcomb_throughput", Float r.flatcomb_tp);
          ("seq_throughput", Float r.seq_tp);
        ])
    l

let example l =
  rows
    (fun (r : Experiments.example_row) ->
      obj
        [
          ("p", Int r.ex_p);
          ("batcher_makespan", Int r.batcher_makespan);
          ("lock_makespan", Int r.lock_makespan);
          ("cas_makespan", Int r.cas_makespan);
          ("seq_makespan", Int r.seq_makespan);
          ("bound_ratio", Float r.bound_ratio);
        ])
    l

let theory l =
  rows
    (fun (r : Experiments.theory_row) ->
      obj
        [
          ("structure", Str r.th_ds);
          ("workload", Str r.th_workload);
          ("p", Int r.th_p);
          ("measured_makespan", Int r.measured);
          ("predicted_makespan", Int r.predicted);
          ("ratio", Float r.ratio);
        ])
    l

let theorem3 l =
  rows
    (fun (r : Experiments.tau_row) ->
      obj
        [
          ("p", Int r.t3_p);
          ("tau", Int r.t3_tau);
          ("long_batches", Int r.t3_long_batches);
          ("trimmed_span", Int r.t3_trimmed_span);
          ("measured_makespan", Int r.t3_measured);
          ("predicted_makespan", Int r.t3_predicted);
          ("ratio", Float r.t3_ratio);
        ])
    l

let lemma2 l =
  rows
    (fun (r : Experiments.lemma2_row) ->
      obj
        [
          ("workload", Str r.l2_workload);
          ("p", Int r.l2_p);
          ("max_trapped_batches", Int r.max_trapped_batches);
        ])
    l

let ablation l =
  rows
    (fun (r : Experiments.ablation_row) ->
      obj
        [
          ("variant", Str r.ab_variant);
          ("p", Int r.ab_p);
          ("makespan", Int r.ab_makespan);
          ("steals", Int r.ab_steals);
          ("batches", Int r.ab_batches);
        ])
    l

let pthreaded l =
  rows
    (fun (r : Experiments.pthread_row) ->
      obj
        [
          ("threads", Int r.pt_threads);
          ("batcher_makespan", Int r.pt_batcher);
          ("lock_makespan", Int r.pt_lock);
          ("seq_makespan", Int r.pt_seq);
        ])
    l

let multi l =
  rows
    (fun (r : Experiments.multi_row) ->
      obj
        [
          ("p", Int r.mu_p);
          ("batcher_makespan", Int r.mu_batcher);
          ("lock_makespan", Int r.mu_lock);
          ("seq_makespan", Int r.mu_seq);
          ("batches", Int r.mu_batches);
        ])
    l

let granularity l =
  rows
    (fun (r : Experiments.granularity_row) ->
      obj
        [
          ("records_per_node", Int r.g_records_per_node);
          ("p", Int r.g_p);
          ("throughput", Float r.g_throughput);
          ("seq_throughput", Float r.g_seq_throughput);
        ])
    l

let micro l =
  rows
    (fun (name, ns) -> obj [ ("benchmark", Str name); ("ns_per_run", Float ns) ])
    l

let results_file ~quick ~only experiments =
  obj
    [
      ("schema_version", Int 1);
      ("generated_by", Str "bench/main.exe");
      ("quick", Bool quick);
      ("only", (match only with None -> Null | Some o -> Str o));
      ( "experiments",
        List
          (List.map
             (fun (id, title, rows) ->
               obj [ ("id", Str id); ("title", Str title); ("rows", rows) ])
             experiments) );
    ]

let write_file ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      write buf json;
      Buffer.add_char buf '\n';
      Buffer.output_buffer oc buf)
