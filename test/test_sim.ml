(* Scheduler simulator tests: work-stealing baseline, BATCHER invariants
   and conservation laws, baselines, and fuzzing over workload shapes. *)

let counter_workload ?(records = 1) ~n () =
  Sim.Workload.parallel_ops
    ~model:(Batched.Counter.sim_model ~records_per_node:records ())
    ~records_per_node:records ~n_nodes:n ()

let skiplist_workload ?(records = 1) ~initial ~n () =
  Sim.Workload.parallel_ops
    ~model:(Batched.Skiplist.sim_model ~initial_size:initial ~records_per_node:records ())
    ~records_per_node:records ~n_nodes:n ()

(* ---------- plain work stealing ---------- *)

let test_ws_single_worker_exact () =
  let w = Sim.Workload.pure_core ~leaf_cost:10 ~leaves:32 in
  let m = Sim.Ws.run (Sim.Ws.default ~p:1) w.Sim.Workload.core in
  Alcotest.(check int) "makespan = T1 on one worker" (Dag.work w.Sim.Workload.core)
    m.Sim.Metrics.makespan

let test_ws_speedup () =
  let w = Sim.Workload.pure_core ~leaf_cost:100 ~leaves:256 in
  let d = w.Sim.Workload.core in
  let m1 = Sim.Ws.run (Sim.Ws.default ~p:1) d in
  let m8 = Sim.Ws.run (Sim.Ws.default ~p:8) d in
  let speedup = Sim.Metrics.speedup ~baseline:m1 m8 in
  Alcotest.(check bool) "near-linear speedup" true (speedup > 5.0)

let test_ws_greedy_bound () =
  (* O(T1/P + T∞): check with a generous constant across shapes. *)
  List.iter
    (fun (leaves, cost, p) ->
      let w = Sim.Workload.pure_core ~leaf_cost:cost ~leaves in
      let d = w.Sim.Workload.core in
      let m = Sim.Ws.run (Sim.Ws.default ~p) d in
      let bound = (Dag.work d / p) + Dag.span d in
      Alcotest.(check bool)
        (Printf.sprintf "leaves=%d cost=%d p=%d: %d <= 8*%d" leaves cost p
           m.Sim.Metrics.makespan bound)
        true
        (m.Sim.Metrics.makespan <= 8 * bound))
    [ (64, 10, 2); (64, 10, 8); (512, 3, 4); (16, 1000, 16); (1, 1, 4) ]

let test_ws_work_conservation () =
  let w = Sim.Workload.pure_core ~leaf_cost:7 ~leaves:100 in
  let d = w.Sim.Workload.core in
  let m = Sim.Ws.run (Sim.Ws.default ~p:4) d in
  Alcotest.(check int) "all work executed once" (Dag.work d) m.Sim.Metrics.core_work

let test_ws_rejects_ds_nodes () =
  let w = counter_workload ~n:4 () in
  (match Sim.Ws.run (Sim.Ws.default ~p:2) w.Sim.Workload.core with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let test_ws_deterministic () =
  let w = Sim.Workload.pure_core ~leaf_cost:5 ~leaves:128 in
  let d = w.Sim.Workload.core in
  let m1 = Sim.Ws.run { (Sim.Ws.default ~p:4) with Sim.Ws.seed = 99 } d in
  let m2 = Sim.Ws.run { (Sim.Ws.default ~p:4) with Sim.Ws.seed = 99 } d in
  Alcotest.(check int) "same makespan" m1.Sim.Metrics.makespan m2.Sim.Metrics.makespan;
  Alcotest.(check int) "same steals" m1.Sim.Metrics.steal_attempts
    m2.Sim.Metrics.steal_attempts

(* ---------- deque ---------- *)

let test_deque_fifo_lifo () =
  let d = Sim.Deque.create () in
  for i = 1 to 5 do
    Sim.Deque.push_bottom d i
  done;
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Sim.Deque.steal_top d);
  Alcotest.(check (option int)) "pop newest" (Some 5) (Sim.Deque.pop_bottom d);
  Alcotest.(check int) "length" 3 (Sim.Deque.length d)

let test_deque_empty () =
  let d = Sim.Deque.create () in
  Alcotest.(check (option int)) "pop empty" None (Sim.Deque.pop_bottom d);
  Alcotest.(check (option int)) "steal empty" None (Sim.Deque.steal_top d);
  Alcotest.(check bool) "is_empty" true (Sim.Deque.is_empty d)

let test_deque_growth () =
  let d = Sim.Deque.create () in
  for i = 0 to 999 do
    Sim.Deque.push_bottom d i
  done;
  let ok = ref true in
  for i = 0 to 999 do
    if Sim.Deque.steal_top d <> Some i then ok := false
  done;
  Alcotest.(check bool) "order preserved across growth" true !ok

let prop_deque_model =
  QCheck.Test.make ~name:"deque matches a list model" ~count:300
    QCheck.(list_of_size Gen.(0 -- 40) (option (option small_nat)))
    (fun cmds ->
      (* Some (Some v) = push v; Some None = pop_bottom; None = steal_top *)
      let d = Sim.Deque.create () in
      let model = ref [] in
      List.for_all
        (fun cmd ->
          match cmd with
          | Some (Some v) ->
              Sim.Deque.push_bottom d v;
              model := !model @ [ v ];
              true
          | Some None ->
              let expect =
                match List.rev !model with
                | [] -> None
                | x :: rest ->
                    model := List.rev rest;
                    Some x
              in
              Sim.Deque.pop_bottom d = expect
          | None ->
              let expect =
                match !model with
                | [] -> None
                | x :: rest ->
                    model := rest;
                    Some x
              in
              Sim.Deque.steal_top d = expect)
        cmds)

(* ---------- BATCHER ---------- *)

let run_batcher ?(p = 4) ?(seed = 1) w =
  Sim.Batcher.run { (Sim.Batcher.default ~p) with Sim.Batcher.seed } w

let test_batcher_completes_counter () =
  let w = counter_workload ~n:100 () in
  let m = run_batcher ~p:4 w in
  Alcotest.(check bool) "finished" true (m.Sim.Metrics.makespan > 0);
  Alcotest.(check int) "every op in exactly one batch" 100
    m.Sim.Metrics.batch_size_total

let test_batcher_core_work_conservation () =
  let w = counter_workload ~n:50 () in
  let m = run_batcher ~p:4 w in
  Alcotest.(check int) "core work executed exactly once"
    (Dag.work w.Sim.Workload.core) m.Sim.Metrics.core_work

let test_batcher_single_worker () =
  let w = counter_workload ~n:20 () in
  let m = run_batcher ~p:1 w in
  Alcotest.(check int) "all ops batched" 20 m.Sim.Metrics.batch_size_total;
  (* With one worker every batch has exactly one operation. *)
  Alcotest.(check int) "n batches" 20 m.Sim.Metrics.batches;
  Alcotest.(check int) "max size 1" 1 m.Sim.Metrics.max_batch_size

let test_batcher_batch_cap_invariant2 () =
  List.iter
    (fun p ->
      let w = counter_workload ~n:64 () in
      let m = run_batcher ~p w in
      Alcotest.(check bool)
        (Printf.sprintf "p=%d: max batch %d <= %d" p m.Sim.Metrics.max_batch_size p)
        true
        (m.Sim.Metrics.max_batch_size <= p))
    [ 1; 2; 4; 8 ]

let test_batcher_lemma2 () =
  List.iter
    (fun (p, n) ->
      let w = skiplist_workload ~initial:1000 ~n () in
      let m = run_batcher ~p w in
      Alcotest.(check bool)
        (Printf.sprintf "p=%d n=%d: trapped %d batches <= 2" p n
           m.Sim.Metrics.max_batches_while_pending)
        true
        (m.Sim.Metrics.max_batches_while_pending <= 2))
    [ (2, 50); (4, 100); (8, 200) ]

let test_batcher_deterministic () =
  let w () = skiplist_workload ~initial:500 ~n:100 () in
  let m1 = run_batcher ~p:4 ~seed:7 (w ()) in
  let m2 = run_batcher ~p:4 ~seed:7 (w ()) in
  Alcotest.(check int) "same makespan" m1.Sim.Metrics.makespan m2.Sim.Metrics.makespan;
  Alcotest.(check int) "same batches" m1.Sim.Metrics.batches m2.Sim.Metrics.batches

let test_batcher_model_reset_between_runs () =
  (* Reusing the same workload value must give identical results because
     run resets the model. *)
  let w = skiplist_workload ~initial:500 ~n:100 () in
  let m1 = run_batcher ~p:4 w in
  let m2 = run_batcher ~p:4 w in
  Alcotest.(check int) "same makespan" m1.Sim.Metrics.makespan m2.Sim.Metrics.makespan

let test_batcher_speedup_on_skiplist () =
  let w = skiplist_workload ~initial:100_000 ~records:10 ~n:100 () in
  let m1 = run_batcher ~p:1 w in
  let m8 = run_batcher ~p:8 w in
  let s = Sim.Metrics.speedup ~baseline:m1 m8 in
  Alcotest.(check bool) (Printf.sprintf "speedup %.2f > 2" s) true (s > 2.0)

let test_batcher_chained_ops_m () =
  let w =
    Sim.Workload.chained_ops
      ~model:(Batched.Counter.sim_model ())
      ~records_per_node:1 ~chain_length:10 ~width:4 ()
  in
  let t1, tinf, n, m = Sim.Workload.core_metrics w in
  Alcotest.(check int) "n" 40 n;
  Alcotest.(check int) "m" 10 m;
  Alcotest.(check bool) "t1 >= tinf" true (t1 >= tinf);
  let metrics = run_batcher ~p:4 w in
  Alcotest.(check int) "all ops batched" 40 metrics.Sim.Metrics.batch_size_total

let test_batcher_trapped_le_batches () =
  (* Every batch must contain at least one operation. *)
  let w = counter_workload ~n:30 () in
  let m = run_batcher ~p:4 w in
  Alcotest.(check bool) "batches <= ops" true (m.Sim.Metrics.batches <= 30);
  Alcotest.(check bool) "batches > 0" true (m.Sim.Metrics.batches > 0)

let test_batcher_multi_structure () =
  (* Two independent implicitly batched structures in one program:
     per-structure Invariants 1-2 and Lemma 2 must hold, and every
     operation lands in exactly one batch. *)
  let w =
    Sim.Workload.interleaved_ops
      ~models:
        [ Batched.Counter.sim_model ();
          Batched.Skiplist.sim_model ~initial_size:4096 () ]
      ~records_per_node:1 ~n_nodes:120 ()
  in
  List.iter
    (fun p ->
      let m = run_batcher ~p w in
      Alcotest.(check int) "ops all batched" 120 m.Sim.Metrics.batch_size_total;
      Alcotest.(check bool) "cap" true (m.Sim.Metrics.max_batch_size <= p);
      Alcotest.(check bool) "lemma2 per structure" true
        (m.Sim.Metrics.max_batches_while_pending <= 2))
    [ 1; 2; 4; 8 ]

let test_batcher_multi_structure_three () =
  let w =
    Sim.Workload.interleaved_ops
      ~models:
        [ Batched.Counter.sim_model ();
          Batched.Stack.sim_model ();
          Batched.Hashtable.sim_model () ]
      ~records_per_node:2 ~n_nodes:90 ()
  in
  let m = run_batcher ~p:6 w in
  Alcotest.(check int) "ops all batched" 90 m.Sim.Metrics.batch_size_total;
  Alcotest.(check int) "records" 180 m.Sim.Metrics.total_records

(* Ablations. *)

let test_batcher_steal_policies_complete () =
  List.iter
    (fun policy ->
      let w = skiplist_workload ~initial:1000 ~n:60 () in
      let cfg = { (Sim.Batcher.default ~p:4) with Sim.Batcher.steal_policy = policy } in
      let m = Sim.Batcher.run cfg w in
      Alcotest.(check int) "ops all batched" 60 m.Sim.Metrics.batch_size_total)
    [ Sim.Batcher.Alternating; Sim.Batcher.Core_only; Sim.Batcher.Batch_only;
      Sim.Batcher.Uniform_random ]

let test_batcher_launch_threshold () =
  let w = counter_workload ~n:40 () in
  let cfg = { (Sim.Batcher.default ~p:4) with Sim.Batcher.launch_threshold = 4 } in
  let m = Sim.Batcher.run cfg w in
  Alcotest.(check int) "ops all batched" 40 m.Sim.Metrics.batch_size_total

let test_batcher_small_cap () =
  let w = counter_workload ~n:40 () in
  let cfg = { (Sim.Batcher.default ~p:8) with Sim.Batcher.batch_cap = 2 } in
  let m = Sim.Batcher.run cfg w in
  Alcotest.(check bool) "cap respected" true (m.Sim.Metrics.max_batch_size <= 2);
  Alcotest.(check int) "ops all batched" 40 m.Sim.Metrics.batch_size_total

(* ---------- causal cost knobs ---------- *)

let test_costs_scale () =
  (* factor 1.0 is an exact identity, not a float round-trip *)
  List.iter
    (fun v -> Alcotest.(check int) "identity exact" v (Sim.Costs.scale 1.0 v))
    [ 0; 1; 7; 123_456; max_int / 4 ];
  Alcotest.(check int) "halving" 3 (Sim.Costs.scale 0.5 6);
  Alcotest.(check int) "rounds to nearest" 3 (Sim.Costs.scale 0.5 5);
  Alcotest.(check int) "doubling" 14 (Sim.Costs.scale 2.0 7);
  Alcotest.(check int) "clamped at zero" 0 (Sim.Costs.scale 0.001 1);
  Alcotest.(check bool) "identity is identity" true
    (Sim.Costs.is_identity Sim.Costs.identity);
  Alcotest.(check bool) "scaled is not" false
    (Sim.Costs.is_identity { Sim.Costs.identity with Sim.Costs.bop_work = 0.5 });
  List.iter
    (fun bad ->
      match Sim.Costs.check bad with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "invalid costs accepted")
    [
      { Sim.Costs.identity with Sim.Costs.bop_work = 0.0 };
      { Sim.Costs.identity with Sim.Costs.setup_span = -1.0 };
      { Sim.Costs.identity with Sim.Costs.sched = nan };
    ]

let test_batcher_costs () =
  let w () = skiplist_workload ~initial:100_000 ~records:10 ~n:100 () in
  let run ?costs () =
    Sim.Batcher.run ?costs (Sim.Batcher.default ~p:4) (w ())
  in
  let base = run () in
  (* Identity costs reproduce the default run exactly. *)
  let ident = run ~costs:Sim.Costs.identity () in
  Alcotest.(check int) "identity makespan" base.Sim.Metrics.makespan
    ident.Sim.Metrics.makespan;
  Alcotest.(check int) "identity batches" base.Sim.Metrics.batches
    ident.Sim.Metrics.batches;
  (* Doubling BOP leaf costs slows the clock; core work is untouched. *)
  let slow =
    run ~costs:{ Sim.Costs.identity with Sim.Costs.bop_work = 2.0 } ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "bop x2 slower (%d > %d)" slow.Sim.Metrics.makespan
       base.Sim.Metrics.makespan)
    true
    (slow.Sim.Metrics.makespan > base.Sim.Metrics.makespan);
  Alcotest.(check int) "core work unchanged" base.Sim.Metrics.core_work
    slow.Sim.Metrics.core_work;
  (* A virtual 2x speedup of the BOP goes the other way. *)
  let fast =
    run ~costs:{ Sim.Costs.identity with Sim.Costs.bop_work = 0.5 } ()
  in
  Alcotest.(check bool) "bop /2 faster" true
    (fast.Sim.Metrics.makespan < base.Sim.Metrics.makespan);
  (* Scaling setup overhead moves the makespan too. *)
  let heavy_setup =
    run ~costs:{ Sim.Costs.identity with Sim.Costs.setup_work = 4.0 } ()
  in
  Alcotest.(check bool) "setup x4 no faster" true
    (heavy_setup.Sim.Metrics.makespan >= base.Sim.Metrics.makespan)

(* ---------- trace validation ---------- *)

let check_valid_trace ~p w =
  let cfg = Sim.Batcher.default ~p in
  let m, events = Sim.Batcher.run_traced cfg w in
  (match Sim.Trace.validate ~p ~batch_cap:cfg.Sim.Batcher.batch_cap events with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("trace validator: " ^ msg));
  (* The trace agrees with the metrics. *)
  let launches =
    List.length
      (List.filter (function Sim.Trace.Launched _ -> true | _ -> false) events)
  in
  Alcotest.(check int) "launch events = batches" m.Sim.Metrics.batches launches;
  let suspensions =
    List.length
      (List.filter (function Sim.Trace.Suspended _ -> true | _ -> false) events)
  in
  Alcotest.(check int) "one suspension per op"
    (Dag.ds_count w.Sim.Workload.core)
    suspensions

let test_trace_counter () = check_valid_trace ~p:4 (counter_workload ~n:60 ())

let test_trace_skiplist_chains () =
  check_valid_trace ~p:8
    (Sim.Workload.chained_ops
       ~model:(Batched.Skiplist.sim_model ~initial_size:1024 ())
       ~records_per_node:1 ~chain_length:10 ~width:6 ())

let test_trace_multi_structure () =
  check_valid_trace ~p:6
    (Sim.Workload.interleaved_ops
       ~models:[ Batched.Counter.sim_model (); Batched.Stack.sim_model () ]
       ~records_per_node:1 ~n_nodes:80 ())

let test_trace_validator_rejects_bad_traces () =
  let open Sim.Trace in
  let reject name events =
    match validate ~p:4 ~batch_cap:4 events with
    | Ok () -> Alcotest.fail (name ^ ": expected rejection")
    | Error _ -> ()
  in
  (* Overlapping batches of one structure (Invariant 1). *)
  reject "overlap"
    [ Suspended { time = 1; worker = 0; node = 10; sid = 0 };
      Suspended { time = 1; worker = 1; node = 11; sid = 0 };
      Launched { time = 2; worker = 0; sid = 0; members = [| 0 |] };
      Launched { time = 3; worker = 1; sid = 0; members = [| 1 |] } ];
  (* Batch bigger than the cap (Invariant 2). *)
  reject "oversized"
    [ Suspended { time = 1; worker = 0; node = 1; sid = 0 };
      Launched { time = 2; worker = 0; sid = 0; members = [| 0; 1; 2; 3; 4 |] } ];
  (* Member that never suspended. *)
  reject "ghost member"
    [ Suspended { time = 1; worker = 0; node = 1; sid = 0 };
      Launched { time = 2; worker = 0; sid = 0; members = [| 0; 3 |] } ];
  (* Resume before completion. *)
  reject "early resume"
    [ Suspended { time = 1; worker = 0; node = 1; sid = 0 };
      Launched { time = 2; worker = 0; sid = 0; members = [| 0 |] };
      Resumed { time = 3; worker = 0; node = 1 } ];
  (* Time going backwards. *)
  reject "time travel"
    [ Suspended { time = 5; worker = 0; node = 1; sid = 0 };
      Launched { time = 4; worker = 0; sid = 0; members = [| 0 |] } ];
  (* Trailing trapped worker. *)
  reject "stuck worker" [ Suspended { time = 1; worker = 2; node = 9; sid = 0 } ]

let prop_traces_validate =
  QCheck.Test.make ~name:"traces of random workloads pass the validator" ~count:40
    QCheck.(triple (1 -- 10) (2 -- 40) (0 -- 10_000))
    (fun (p, size, seed) ->
      let w =
        Sim.Workload.random
          ~model:(Batched.Counter.sim_model ())
          ~records_per_node:1 ~size ~seed ()
      in
      let cfg = { (Sim.Batcher.default ~p) with Sim.Batcher.seed } in
      let _, events = Sim.Batcher.run_traced cfg w in
      match Sim.Trace.validate ~p ~batch_cap:p events with
      | Ok () -> true
      | Error _ -> false)

(* ---------- flat combining ---------- *)

let test_flatcomb_completes () =
  let w = skiplist_workload ~initial:1000 ~n:60 () in
  let m = Sim.Flatcomb.run ~p:4 w in
  Alcotest.(check int) "ops all batched" 60 m.Sim.Metrics.batch_size_total

let test_flatcomb_no_batch_speedup () =
  (* Sequential batches: with most work inside the structure, adding
     workers should not help much, unlike BATCHER. *)
  let mk () = skiplist_workload ~initial:100_000 ~records:10 ~n:100 () in
  let fc1 = Sim.Flatcomb.run ~p:1 (mk ()) in
  let fc8 = Sim.Flatcomb.run ~p:8 (mk ()) in
  let fc_speedup = Sim.Metrics.speedup ~baseline:fc1 fc8 in
  let b1 = run_batcher ~p:1 (mk ()) in
  let b8 = run_batcher ~p:8 (mk ()) in
  let b_speedup = Sim.Metrics.speedup ~baseline:b1 b8 in
  Alcotest.(check bool)
    (Printf.sprintf "batcher %.2f beats flat combining %.2f at p=8" b_speedup fc_speedup)
    true (b_speedup > fc_speedup)

(* ---------- sequential + lock baselines ---------- *)

let test_seqexec_counter_exact () =
  let w = counter_workload ~n:25 () in
  let m = Sim.Seqexec.run w in
  Alcotest.(check int) "makespan = T1 + n"
    (Dag.work w.Sim.Workload.core + 25)
    m.Sim.Metrics.makespan

let test_lockconc_serializes () =
  let w = counter_workload ~n:100 () in
  let m = Sim.Lockconc.run (Sim.Lockconc.default ~p:8) w in
  (* Mutual exclusion: at least one timestep per operation. *)
  Alcotest.(check bool) "Omega(n)" true (m.Sim.Metrics.makespan >= 100);
  Alcotest.(check int) "service work" 100 m.Sim.Metrics.batch_work

let test_lockconc_completes_chains () =
  let w =
    Sim.Workload.chained_ops
      ~model:(Batched.Counter.sim_model ())
      ~records_per_node:1 ~chain_length:5 ~width:6 ()
  in
  let m = Sim.Lockconc.run (Sim.Lockconc.default ~p:4) w in
  Alcotest.(check int) "service work = n" 30 m.Sim.Metrics.batch_work

(* ---------- fuzzing ---------- *)

let prop_batcher_fuzz =
  QCheck.Test.make ~name:"batcher: invariants + conservation on random shapes"
    ~count:60
    QCheck.(quad (1 -- 8) (1 -- 60) (1 -- 4) (0 -- 1000))
    (fun (p, n, records, seed) ->
      let w = counter_workload ~records ~n () in
      let cfg = { (Sim.Batcher.default ~p) with Sim.Batcher.seed } in
      let m = Sim.Batcher.run cfg w in
      m.Sim.Metrics.batch_size_total = n
      && m.Sim.Metrics.max_batch_size <= p
      && m.Sim.Metrics.max_batches_while_pending <= 2
      && m.Sim.Metrics.core_work = Dag.work w.Sim.Workload.core)

let prop_batcher_fuzz_chains =
  QCheck.Test.make ~name:"batcher: random chained workloads complete" ~count:40
    QCheck.(quad (1 -- 8) (1 -- 8) (1 -- 8) (0 -- 1000))
    (fun (p, chain, width, seed) ->
      let w =
        Sim.Workload.chained_ops
          ~model:(Batched.Skiplist.sim_model ~initial_size:256 ())
          ~records_per_node:1 ~chain_length:chain ~width ()
      in
      let cfg = { (Sim.Batcher.default ~p) with Sim.Batcher.seed } in
      let m = Sim.Batcher.run cfg w in
      m.Sim.Metrics.batch_size_total = chain * width
      && m.Sim.Metrics.max_batches_while_pending <= 2)

let prop_batcher_fuzz_ablations =
  QCheck.Test.make ~name:"batcher: ablated configs still complete" ~count:40
    QCheck.(
      quad (2 -- 8) (1 -- 40)
        (oneofl
           [ Sim.Batcher.Alternating; Sim.Batcher.Core_only; Sim.Batcher.Batch_only;
             Sim.Batcher.Uniform_random ])
        (pair (1 -- 8) (1 -- 4)))
    (fun (p, n, policy, (threshold, cap)) ->
      let w = counter_workload ~n () in
      let cfg =
        {
          (Sim.Batcher.default ~p) with
          Sim.Batcher.steal_policy = policy;
          launch_threshold = threshold;
          batch_cap = min cap p;
        }
      in
      let m = Sim.Batcher.run cfg w in
      m.Sim.Metrics.batch_size_total = n)

let prop_batcher_fuzz_random_shapes =
  QCheck.Test.make ~name:"batcher: random series-parallel workloads" ~count:60
    QCheck.(triple (1 -- 12) (2 -- 50) (0 -- 10_000))
    (fun (p, size, seed) ->
      let w =
        Sim.Workload.random
          ~model:(Batched.Skiplist.sim_model ~initial_size:512 ())
          ~records_per_node:1 ~size ~seed ()
      in
      let t1, tinf, n, _m = Sim.Workload.core_metrics w in
      let cfg = { (Sim.Batcher.default ~p) with Sim.Batcher.seed } in
      let m = Sim.Batcher.run cfg w in
      (* Conservation + invariants + elementary lower bounds. *)
      m.Sim.Metrics.batch_size_total = n
      && m.Sim.Metrics.core_work = t1
      && m.Sim.Metrics.max_batch_size <= p
      && m.Sim.Metrics.max_batches_while_pending <= 2
      && m.Sim.Metrics.makespan >= tinf
      && p * m.Sim.Metrics.makespan
         >= m.Sim.Metrics.core_work + m.Sim.Metrics.batch_work + m.Sim.Metrics.setup_work)

let prop_seq_vs_batcher_work =
  QCheck.Test.make ~name:"batcher never beats the greedy work lower bound" ~count:40
    QCheck.(pair (1 -- 8) (1 -- 40))
    (fun (p, n) ->
      let w = counter_workload ~n () in
      let m = run_batcher ~p w in
      (* Total useful work over p workers bounds the makespan below. *)
      m.Sim.Metrics.makespan * p >= Dag.work w.Sim.Workload.core)

let prop_multi_structure_traces_validate =
  QCheck.Test.make ~name:"multi-structure traces pass the validator" ~count:30
    QCheck.(triple (2 -- 8) (10 -- 60) (0 -- 10_000))
    (fun (p, n, seed) ->
      let w =
        Sim.Workload.interleaved_ops
          ~models:
            [ Batched.Counter.sim_model ();
              Batched.Skiplist.sim_model ~initial_size:256 ();
              Batched.Stack.sim_model () ]
          ~records_per_node:1 ~n_nodes:n ()
      in
      let cfg = { (Sim.Batcher.default ~p) with Sim.Batcher.seed } in
      let m, events = Sim.Batcher.run_traced cfg w in
      m.Sim.Metrics.batch_size_total = n
      && (match Sim.Trace.validate ~p ~batch_cap:p events with
         | Ok () -> true
         | Error _ -> false))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_deque_model; prop_batcher_fuzz; prop_batcher_fuzz_chains;
      prop_batcher_fuzz_ablations; prop_batcher_fuzz_random_shapes;
      prop_seq_vs_batcher_work; prop_traces_validate;
      prop_multi_structure_traces_validate ]

let () =
  Alcotest.run "sim"
    [
      ( "ws",
        [
          Alcotest.test_case "single worker exact" `Quick test_ws_single_worker_exact;
          Alcotest.test_case "speedup" `Quick test_ws_speedup;
          Alcotest.test_case "greedy bound" `Quick test_ws_greedy_bound;
          Alcotest.test_case "work conservation" `Quick test_ws_work_conservation;
          Alcotest.test_case "rejects ds nodes" `Quick test_ws_rejects_ds_nodes;
          Alcotest.test_case "deterministic" `Quick test_ws_deterministic;
        ] );
      ( "deque",
        [
          Alcotest.test_case "fifo lifo" `Quick test_deque_fifo_lifo;
          Alcotest.test_case "empty" `Quick test_deque_empty;
          Alcotest.test_case "growth" `Quick test_deque_growth;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "completes counter" `Quick test_batcher_completes_counter;
          Alcotest.test_case "core work conservation" `Quick
            test_batcher_core_work_conservation;
          Alcotest.test_case "single worker" `Quick test_batcher_single_worker;
          Alcotest.test_case "Invariant 2 (batch cap)" `Quick
            test_batcher_batch_cap_invariant2;
          Alcotest.test_case "Lemma 2 (trapped <= 2 batches)" `Quick test_batcher_lemma2;
          Alcotest.test_case "deterministic" `Quick test_batcher_deterministic;
          Alcotest.test_case "model reset between runs" `Quick
            test_batcher_model_reset_between_runs;
          Alcotest.test_case "speedup on skiplist" `Quick test_batcher_speedup_on_skiplist;
          Alcotest.test_case "chained ops m" `Quick test_batcher_chained_ops_m;
          Alcotest.test_case "batch count sanity" `Quick test_batcher_trapped_le_batches;
          Alcotest.test_case "two structures" `Quick test_batcher_multi_structure;
          Alcotest.test_case "three structures" `Quick test_batcher_multi_structure_three;
        ] );
      ( "costs",
        [
          Alcotest.test_case "scale semantics" `Quick test_costs_scale;
          Alcotest.test_case "batcher what-if knobs" `Quick test_batcher_costs;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "steal policies" `Quick test_batcher_steal_policies_complete;
          Alcotest.test_case "launch threshold" `Quick test_batcher_launch_threshold;
          Alcotest.test_case "small cap" `Quick test_batcher_small_cap;
        ] );
      ( "trace",
        [
          Alcotest.test_case "counter trace valid" `Quick test_trace_counter;
          Alcotest.test_case "chained trace valid" `Quick test_trace_skiplist_chains;
          Alcotest.test_case "multi-structure trace valid" `Quick test_trace_multi_structure;
          Alcotest.test_case "validator rejects bad traces" `Quick
            test_trace_validator_rejects_bad_traces;
        ] );
      ( "flatcomb",
        [
          Alcotest.test_case "completes" `Quick test_flatcomb_completes;
          Alcotest.test_case "no batch speedup" `Quick test_flatcomb_no_batch_speedup;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "seqexec exact" `Quick test_seqexec_counter_exact;
          Alcotest.test_case "lockconc serializes" `Quick test_lockconc_serializes;
          Alcotest.test_case "lockconc chains" `Quick test_lockconc_completes_chains;
        ] );
      ("properties", qcheck_cases);
    ]
