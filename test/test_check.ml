(* Tests for the lib/check conformance + fuzzing subsystem, and the
   conformance of every batched structure against its sequential
   oracle. These are the cheap, always-on slices of what bin/fuzz.exe
   runs at scale. *)

let check_ok = function Ok _ -> () | Error e -> Alcotest.fail e

(* ---------- conformance: every structure vs its oracle ---------- *)

let conformance_cases =
  List.map
    (fun s ->
      let name = Check.Conformance.subject_name s in
      Alcotest.test_case name `Quick (fun () ->
          check_ok (Check.Conformance.run ~n_ops:48 s)))
    Check.Conformance.subjects

(* A second seed and pool shape, so the CAS race carves different
   batches than the default run. *)
let test_conformance_reseeded () =
  List.iter
    (fun s ->
      check_ok (Check.Conformance.run ~n_ops:32 ~seed:42 ~workers:2 ~sim_p:3 s))
    Check.Conformance.subjects

let test_order_list_conformance () =
  check_ok (Check.Conformance.order_list_check ())

(* ---------- schedule fuzzing ---------- *)

let test_sweep_small () =
  let cases_run, failures =
    Check.Schedule_fuzz.sweep ~seeds:(List.init 25 (fun i -> 1000 + i)) ()
  in
  Alcotest.(check int) "all cases run" 25 cases_run;
  match failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.fail
        (Printf.sprintf "%s\n%s" f.Check.Schedule_fuzz.f_shrunk_error
           (Check.Schedule_fuzz.to_ocaml f.Check.Schedule_fuzz.f_shrunk))

let test_sweep_rt_conf () =
  (* A small sweep with the real-runtime conformance leg on: each case's
     structure and seed run through a real pool under the case's rotated
     batch-path mode (rt_mode) against the sequential oracle. Seeds are
     chosen so the sample covers all four modes. *)
  let seeds = List.init 8 (fun i -> 4200 + i) in
  let modes = Hashtbl.create 4 in
  List.iter
    (fun seed ->
      let c = Check.Schedule_fuzz.case_of_seed seed in
      Hashtbl.replace modes c.Check.Schedule_fuzz.rt_mode ())
    seeds;
  Alcotest.(check int) "sample covers all modes" 4 (Hashtbl.length modes);
  let cases_run, failures =
    Check.Schedule_fuzz.sweep ~rt_conf:true ~max_p:4 ~max_size:32 ~seeds ()
  in
  Alcotest.(check int) "all cases run" 8 cases_run;
  match failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.fail
        (Printf.sprintf "%s\n%s" f.Check.Schedule_fuzz.f_shrunk_error
           (Check.Schedule_fuzz.to_ocaml f.Check.Schedule_fuzz.f_shrunk))

let test_shrink_is_identity_on_passing () =
  let case = Check.Schedule_fuzz.case_of_seed 5 in
  let shrunk = Check.Schedule_fuzz.shrink case in
  Alcotest.(check bool) "unchanged" true (case = shrunk)

let test_bound_smoke () =
  let model = Batched.Counter.sim_model () in
  let workload =
    Sim.Workload.parallel_ops ~model ~records_per_node:1 ~n_nodes:64 ()
  in
  let metrics = Sim.Batcher.run (Sim.Batcher.default ~p:4) workload in
  check_ok (Check.Bound.check ~workload ~metrics ());
  let r = Check.Bound.ratio ~workload ~metrics in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f positive and sane" r)
    true
    (r > 0.0 && r < 16.0)

(* The attribution cross-check: recorder-derived buckets vs the
   simulator's own counters, on a recorded paper-default run. Also that
   a wrong expectation is actually rejected — the gate must be able to
   fail. *)
let test_cross_check () =
  let model =
    Batched.Skiplist.sim_model ~initial_size:100_000 ~records_per_node:10 ()
  in
  let workload =
    Sim.Workload.parallel_ops ~model ~records_per_node:10 ~n_nodes:80 ()
  in
  let p = 4 in
  let recorder =
    Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:p ()
  in
  let metrics = Sim.Batcher.run ~recorder (Sim.Batcher.default ~p) workload in
  check_ok (Check.Bound.cross_check ~workload ~metrics ~recorder ());
  check_ok
    (Check.Bound.cross_check ~ms_factor:16.0 ~workload ~metrics ~recorder ());
  let a = Obs.Attrib.of_recorder recorder in
  (match
     Obs.Attrib.check
       ~expected:((p * metrics.Sim.Metrics.makespan) + 1)
       a
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "off-by-one expectation accepted");
  match
    Check.Bound.cross_check ~workload ~metrics ~recorder:Obs.Recorder.null ()
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "disabled recorder accepted"

(* ---------- sharding: conformance, fuzz rotation, shrinking ---------- *)

(* Sharded conformance across K instances of the real runtime; K = 1
   regression-tests the combinator's identity case. *)
let shard_conf_cases =
  List.concat_map
    (fun name ->
      List.map
        (fun k ->
          Alcotest.test_case (Printf.sprintf "%s K=%d" name k) `Quick (fun () ->
              check_ok (Check.Shard_conf.run ~n_ops:48 ~name ~shards:k ())))
        [ 1; 2; 4 ])
    Check.Shard_conf.structures

(* Forcing shard_k on generated cases exercises the per-shard composed
   Theorem-1 bound and per-shard conservation on every schedule. *)
let test_sharded_sweep () =
  List.iter
    (fun k ->
      let cases_run, failures =
        Check.Schedule_fuzz.sweep
          ~map_case:(fun c -> { c with Check.Schedule_fuzz.shard_k = k })
          ~seeds:(List.init 12 (fun i -> 2000 + i))
          ()
      in
      Alcotest.(check int) (Printf.sprintf "K=%d all run" k) 12 cases_run;
      match failures with
      | [] -> ()
      | f :: _ ->
          Alcotest.fail
            (Printf.sprintf "K=%d: %s\n%s" k
               f.Check.Schedule_fuzz.f_shrunk_error
               (Check.Schedule_fuzz.to_ocaml f.Check.Schedule_fuzz.f_shrunk)))
    [ 2; 4 ]

(* Greedy shrinking on a seeded failing sharded case: failure must be
   preserved at every step, the result must be no larger, and shard_k
   must participate in the reduction (ending at the unsharded default).
   The failure is induced by an impossibly tight bound factor, so every
   reduction of the cross-shard case keeps failing. *)
let test_sharded_shrink_reproducer () =
  let seeded =
    {
      (Check.Schedule_fuzz.case_of_seed 77) with
      Check.Schedule_fuzz.family = Check.Schedule_fuzz.Parallel_ops;
      model = Check.Schedule_fuzz.Skiplist;
      shard_k = 4;
      size = 24;
      p = 4;
      batch_cap = 4;
      launch_threshold = 1;
      steal_policy = Sim.Batcher.Alternating;
      overhead = Sim.Batcher.Tree_setup;
      sequential_batches = false;
    }
  in
  let bf = 1e-6 in
  (match Check.Schedule_fuzz.run_case ~bound_factor:bf seeded with
  | Ok () -> Alcotest.fail "seeded sharded case unexpectedly passes"
  | Error _ -> ());
  let shrunk = Check.Schedule_fuzz.shrink ~bound_factor:bf seeded in
  (match Check.Schedule_fuzz.run_case ~bound_factor:bf shrunk with
  | Ok () -> Alcotest.fail "shrunk case no longer fails"
  | Error _ -> ());
  Alcotest.(check bool)
    "shrunk no larger" true
    (shrunk.Check.Schedule_fuzz.size <= seeded.Check.Schedule_fuzz.size
    && shrunk.Check.Schedule_fuzz.p <= seeded.Check.Schedule_fuzz.p);
  Alcotest.(check int)
    "shard_k reduced to the unsharded default" 1
    shrunk.Check.Schedule_fuzz.shard_k;
  let snippet = Check.Schedule_fuzz.to_ocaml shrunk in
  Alcotest.(check bool)
    "renders a ready-to-paste reproducer" true
    (String.length snippet > 0)

(* ---------- determinism: byte-identical metrics ---------- *)

let test_metrics_deterministic () =
  List.iter
    (fun seed ->
      let case = Check.Schedule_fuzz.case_of_seed seed in
      let run () =
        let workload = Check.Schedule_fuzz.workload_of case in
        Sim.Batcher.run (Check.Schedule_fuzz.config_of case) workload
      in
      let a = Marshal.to_string (run ()) [] in
      let b = Marshal.to_string (run ()) [] in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d byte-identical" seed)
        true (String.equal a b))
    [ 3; 17; 99; 2024 ]

(* ---------- qcheck properties ---------- *)

(* Any generated case passes every check run_case applies (trace
   validation, conservation, the Theorem-1 bound on default shapes). *)
let prop_random_cases_pass =
  QCheck.Test.make ~name:"fuzz cases pass on the current scheduler" ~count:150
    (Check.Gen.arb_case ~max_p:6 ~max_size:40 ())
    (fun case ->
      match Check.Schedule_fuzz.run_case case with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* Trace.validate never rejects a paper-default run, whatever the
   workload, worker count or scheduler seed. *)
let prop_default_traces_validate =
  QCheck.Test.make ~name:"Trace.validate holds on paper defaults" ~count:100
    QCheck.(0 -- 1_000_000)
    (fun seed ->
      let c = Check.Schedule_fuzz.case_of_seed ~max_p:6 ~max_size:40 seed in
      let c =
        {
          c with
          Check.Schedule_fuzz.steal_policy = Sim.Batcher.Alternating;
          launch_threshold = 1;
          batch_cap = c.Check.Schedule_fuzz.p;
          overhead = Sim.Batcher.Tree_setup;
          sequential_batches = false;
        }
      in
      let workload = Check.Schedule_fuzz.workload_of c in
      let cfg = Check.Schedule_fuzz.config_of c in
      let _, events = Sim.Batcher.run_traced cfg workload in
      match
        Sim.Trace.validate ~p:c.Check.Schedule_fuzz.p
          ~batch_cap:c.Check.Schedule_fuzz.batch_cap events
      with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* With real per-op work to amortize (a big skip list), batching at
   p >= 2 never loses to the same schedule at p = 1. *)
let prop_batched_beats_sequential =
  QCheck.Test.make ~name:"sim makespan <= sequential makespan" ~count:60
    QCheck.(pair (2 -- 6) (8 -- 48))
    (fun (p, size) ->
      let run p =
        let model =
          Batched.Skiplist.sim_model ~initial_size:1_000_000
            ~records_per_node:4 ()
        in
        let workload =
          Sim.Workload.parallel_ops ~model ~records_per_node:4 ~n_nodes:size ()
        in
        (Sim.Batcher.run (Sim.Batcher.default ~p) workload).Sim.Metrics.makespan
      in
      run p <= run 1)

(* Random configs over the whole ablation surface still complete and
   conserve operations. *)
let prop_random_configs_complete =
  QCheck.Test.make ~name:"random configs complete and conserve ops" ~count:100
    QCheck.(pair (Check.Gen.arb_config ~max_p:6 ()) (8 -- 40))
    (fun (cfg, n_nodes) ->
      let model = Batched.Counter.sim_model () in
      let workload =
        Sim.Workload.parallel_ops ~model ~records_per_node:1 ~n_nodes ()
      in
      let metrics = Sim.Batcher.run cfg workload in
      metrics.Sim.Metrics.batch_size_total = n_nodes
      && metrics.Sim.Metrics.max_batch_size <= cfg.Sim.Batcher.batch_cap)

(* Every key routes to exactly one shard: route is a total function
   into [0, K), so existence and uniqueness are determinism + range. *)
let prop_route_total =
  QCheck.Test.make ~name:"route: total, deterministic, in [0,K)" ~count:500
    QCheck.(pair int (1 -- 8))
    (fun (key, shards) ->
      let s = Batched.Shard.route ~shards key in
      0 <= s && s < shards && s = Batched.Shard.route ~shards key)

(* Every keyed point op plans to the shard route picks for its key, for
   all three shardable structures; fan-out queries scatter one
   sub-operation per shard. *)
let prop_point_plans_follow_route =
  QCheck.Test.make ~name:"point plans land on route's shard" ~count:300
    QCheck.(pair small_nat (2 -- 6))
    (fun (key, shards) ->
      let open Batched in
      let expect = Shard.route ~shards key in
      let point spec op =
        match spec.Shard.plan ~shards op with
        | Shard.Point s -> s = expect
        | Shard.Fanout _ -> false
      in
      point Shard.skiplist (Skiplist.insert key)
      && point Shard.skiplist (Skiplist.mem key)
      && point Shard.skiplist (Skiplist.delete key)
      && point Shard.hashtable (Hashtable.insert ~key ~value:0)
      && point Shard.hashtable (Hashtable.lookup key)
      && point Shard.ostree (Ostree.insert_op key)
      && point Shard.ostree (Ostree.delete_op key)
      &&
      match
        Shard.skiplist.Shard.plan ~shards (Skiplist.range ~lo:0 ~hi:10)
      with
      | Shard.Fanout { sub; _ } -> Array.length sub = shards
      | Shard.Point _ -> false)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_cases_pass;
      prop_default_traces_validate;
      prop_batched_beats_sequential;
      prop_random_configs_complete;
      prop_route_total;
      prop_point_plans_follow_route;
    ]

let () =
  Alcotest.run "check"
    [
      ("conformance", conformance_cases);
      ( "conformance-extra",
        [
          Alcotest.test_case "reseeded" `Quick test_conformance_reseeded;
          Alcotest.test_case "order_list" `Quick test_order_list_conformance;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "small sweep" `Quick test_sweep_small;
          Alcotest.test_case "runtime-conformance sweep, mode rotation" `Slow
            test_sweep_rt_conf;
          Alcotest.test_case "shrink keeps passing cases" `Quick
            test_shrink_is_identity_on_passing;
          Alcotest.test_case "bound smoke" `Quick test_bound_smoke;
          Alcotest.test_case "attribution cross-check" `Quick test_cross_check;
        ] );
      ("sharded-conformance", shard_conf_cases);
      ( "sharded-fuzz",
        [
          Alcotest.test_case "forced shard_k sweeps" `Quick test_sharded_sweep;
          Alcotest.test_case "seeded cross-shard case shrinks" `Quick
            test_sharded_shrink_reproducer;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "metrics byte-identical" `Quick
            test_metrics_deterministic;
        ] );
      ("properties", qcheck_cases);
    ]
