(* Tests for the service workload subsystem: statistical sanity of the
   generator (Zipf skew, Poisson/burst arrival rates), byte-identical
   replay from a fixed seed, the open-loop virtual-clock engine, and
   the driver/report plumbing. The generator's RNG is the repo's own
   deterministic Xoshiro, so the statistical assertions are exact
   reruns — tolerances guard against algorithmic drift, not against
   sampling luck. *)

module Gen = Svc.Gen

let fi = float_of_int

(* ---------- Zipf sampler ---------- *)

(* Rank-frequency must be monotone (up to noise): bucket the ranks
   logarithmically and require each bucket's *per-rank* mass to exceed
   the next bucket's. 200k draws over 1000 ranks at theta = 0.99 puts
   thousands of samples in every bucket, so a violation means the
   sampler is wrong, not unlucky. *)
let test_zipf_rank_frequency_monotone () =
  let n = 1000 and draws = 200_000 in
  let z = Gen.zipf ~n ~theta:0.99 in
  let rng = Util.Rng.create ~seed:7 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Gen.zipf_sample rng z in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < n);
    counts.(r) <- counts.(r) + 1
  done;
  let bucket lo hi =
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + counts.(i)
    done;
    fi !s /. fi (hi - lo)
  in
  let buckets =
    [ bucket 0 1; bucket 1 10; bucket 10 100; bucket 100 1000 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "per-rank mass decreasing (%.1f > %.1f)" a b)
          true (a > b);
        monotone rest
    | _ -> ()
  in
  monotone buckets;
  (* The head must dominate: rank 0 carries orders of magnitude more
     than a mid-tail rank at theta ~ 1. *)
  Alcotest.(check bool) "rank 0 dominates rank 500" true
    (counts.(0) > 20 * max 1 counts.(500))

(* theta = 0 must degenerate to uniform: every rank within 25% of the
   uniform expectation (80k draws over 100 ranks = 800 expected per
   rank, sd ~ 28, so 25% = 7 sd). *)
let test_zipf_theta0_uniform () =
  let n = 100 and draws = 80_000 in
  let z = Gen.zipf ~n ~theta:0.0 in
  let rng = Util.Rng.create ~seed:11 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = Gen.zipf_sample rng z in
    counts.(r) <- counts.(r) + 1
  done;
  let expect = fi draws /. fi n in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d count %d ~ uniform %.0f" i c expect)
        true
        (fi c > 0.75 *. expect && fi c < 1.25 *. expect))
    counts

(* The theta ~ 1 harmonic special case must not crash or leave the
   range (it switches H to ln x internally). *)
let test_zipf_theta_one () =
  let z = Gen.zipf ~n:5000 ~theta:1.0 in
  let rng = Util.Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let r = Gen.zipf_sample rng z in
    Alcotest.(check bool) "in range at theta=1" true (r >= 0 && r < 5000)
  done

(* scramble is a bijection on [0, n): mapping every rank must hit
   every key exactly once — for n both a power of two and odd. *)
let test_scramble_bijection () =
  List.iter
    (fun n ->
      let seen = Array.make n false in
      for r = 0 to n - 1 do
        let k = Gen.scramble ~n_keys:n r in
        Alcotest.(check bool) "key in range" true (k >= 0 && k < n);
        Alcotest.(check bool)
          (Printf.sprintf "n=%d key %d hit once" n k)
          false seen.(k);
        seen.(k) <- true
      done)
    [ 16_384; 99_991; 1000 ]

(* ---------- arrival process ---------- *)

(* Plain Poisson: the realized count over a long horizon must sit
   within 3% of rate x duration (sd/mean ~ 0.3% here). *)
let test_poisson_mean_rate () =
  let g = Gen.make ~theta:0.5 ~seed:123 ~n_keys:1000 ~rate:50_000.0 () in
  let reqs = Gen.generate g ~duration_s:2.0 in
  let n = fi (Array.length reqs) in
  let expect = 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "poisson count %.0f ~ %.0f" n expect)
    true
    (n > 0.97 *. expect && n < 1.03 *. expect);
  (* arrival order, in-horizon stamps *)
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "stamp in horizon" true
        (r.Gen.arrive_ns >= 0 && r.Gen.arrive_ns < 2_000_000_000);
      if i > 0 then
        Alcotest.(check bool) "arrival order" true
          (reqs.(i - 1).Gen.arrive_ns <= r.Gen.arrive_ns))
    reqs

(* On/off bursts: over a horizon covering many episodes, the realized
   rate must approach expected_rate (within 15% — ~100 exponential
   episodes of variance). *)
let test_burst_mean_rate () =
  let burst = Some { Gen.on_s = 0.05; off_s = 0.15; mult = 3.0 } in
  let g = Gen.make ~theta:0.5 ~burst ~seed:17 ~n_keys:1000 ~rate:20_000.0 () in
  let dur = 20.0 in
  let expect = Gen.expected_rate g *. dur in
  Alcotest.(check (float 0.001)) "expected_rate formula" 30_000.0
    (Gen.expected_rate g);
  let n = fi (Array.length (Gen.generate g ~duration_s:dur)) in
  Alcotest.(check bool)
    (Printf.sprintf "burst count %.0f ~ %.0f" n expect)
    true
    (n > 0.85 *. expect && n < 1.15 *. expect)

(* ---------- replay determinism ---------- *)

let test_replay_identical () =
  let mk seed =
    Gen.make ~theta:0.99
      ~burst:(Some { Gen.on_s = 0.1; off_s = 0.3; mult = 4.0 })
      ~locality:0.2 ~recent_window:64 ~seed ~n_keys:100_000 ~rate:30_000.0 ()
  in
  let g = mk 42 in
  let a = Gen.generate_n g ~n:5_000 in
  let b = Gen.generate_n g ~n:5_000 in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  let c = Gen.generate g ~duration_s:0.05 in
  let d = Gen.generate g ~duration_s:0.05 in
  Alcotest.(check bool) "generate replays too" true (c = d);
  (* generate and generate_n walk one stream: the horizon run is a
     prefix of the counted run *)
  let e = Gen.generate_n g ~n:(Array.length c) in
  Alcotest.(check bool) "same stream prefix" true (c = e);
  let other = Gen.generate_n (mk 43) ~n:5_000 in
  Alcotest.(check bool) "different seed differs" true (a <> other)

let test_locality_replays_recent () =
  (* With locality = 1 every draw past the first replays the ring, so a
     tiny window forces repeats. *)
  let g =
    Gen.make ~theta:0.5 ~locality:1.0 ~recent_window:4 ~seed:5
      ~n_keys:1_000_000 ~rate:10_000.0 ()
  in
  let reqs = Gen.generate_n g ~n:200 in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun r -> Hashtbl.replace distinct r.Gen.key ()) reqs;
  Alcotest.(check bool)
    (Printf.sprintf "only %d distinct keys" (Hashtbl.length distinct))
    true
    (Hashtbl.length distinct <= 8)

(* ---------- open-loop virtual-clock engine ---------- *)

let openloop_fixture () =
  let g = Gen.make ~theta:0.9 ~seed:9 ~n_keys:10_000 ~rate:40_000.0 () in
  let reqs = Gen.generate_n g ~n:400 in
  let shards = 2 in
  let olreqs =
    Array.map
      (fun r ->
        {
          Sim.Openloop.at = r.Gen.arrive_ns / 1000;
          shard = Batched.Shard.route ~shards r.Gen.key;
          cls = Gen.class_index r.Gen.cls;
        })
      reqs
  in
  let models =
    Array.init shards (fun _ ->
        Batched.Skiplist.sim_model ~initial_size:4096 ())
  in
  (olreqs, models)

let test_openloop_deterministic () =
  let olreqs, models = openloop_fixture () in
  let cfg = Sim.Openloop.config ~p:4 ~shards:2 () in
  let r1 = Sim.Openloop.run cfg ~models olreqs in
  let r2 = Sim.Openloop.run cfg ~models olreqs in
  Alcotest.(check bool) "waits identical" true
    (r1.Sim.Openloop.waits = r2.Sim.Openloop.waits);
  Alcotest.(check int) "makespan identical" r1.Sim.Openloop.makespan
    r2.Sim.Openloop.makespan;
  Alcotest.(check int) "batches identical" r1.Sim.Openloop.batches
    r2.Sim.Openloop.batches

let test_openloop_sanity () =
  let olreqs, models = openloop_fixture () in
  let cfg = Sim.Openloop.config ~p:4 ~shards:2 () in
  let r = Sim.Openloop.run cfg ~models olreqs in
  let n = Array.length olreqs in
  Alcotest.(check int) "every request served" n
    (Array.length r.Sim.Openloop.waits);
  Array.iter
    (fun w -> Alcotest.(check bool) "wait positive" true (w > 0))
    r.Sim.Openloop.waits;
  Alcotest.(check int) "per-shard ops conserve" n
    (Array.fold_left ( + ) 0 r.Sim.Openloop.per_shard_ops);
  Alcotest.(check bool) "cap respected" true
    (r.Sim.Openloop.max_batch <= cfg.Sim.Openloop.batch_cap);
  Alcotest.(check bool) "makespan past last arrival" true
    (r.Sim.Openloop.makespan
    >= Array.fold_left (fun a q -> max a q.Sim.Openloop.at) 0 olreqs);
  (* The wait tail must stay within the composed Theorem-1 budget. *)
  let wait_max = Array.fold_left max 0 r.Sim.Openloop.waits in
  (match
     Check.Bound.service_check ~p:4 ~wait_max
       ~total_work:r.Sim.Openloop.total_work
       ~per_shard_ops:r.Sim.Openloop.per_shard_ops
       ~per_shard_span:r.Sim.Openloop.per_shard_span_max
       ~m:r.Sim.Openloop.max_batches_seen ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* More workers never slow the virtual clock down. *)
  let r64 =
    Sim.Openloop.run (Sim.Openloop.config ~p:64 ~shards:2 ()) ~models olreqs
  in
  Alcotest.(check bool) "P=64 makespan <= P=4" true
    (r64.Sim.Openloop.makespan <= r.Sim.Openloop.makespan)

(* The what-if cost knobs that only Openloop honors: sched delay and
   its multiplier, and the per-shard worker share. Every assertion is
   exact — same request array, virtual clock. *)
let test_openloop_costs () =
  let olreqs, models = openloop_fixture () in
  let run ?costs ?sched_delay ~p () =
    Sim.Openloop.run ?costs
      (Sim.Openloop.config ?sched_delay ~p ~shards:2 ())
      ~models olreqs
  in
  let total r = Array.fold_left ( + ) 0 r.Sim.Openloop.waits in
  let base = run ~p:8 () in
  (* A virtual BOP speedup strictly helps a loaded system... *)
  let fast =
    run ~costs:{ Sim.Costs.identity with Sim.Costs.bop_work = 0.5 } ~p:8 ()
  in
  Alcotest.(check bool) "bop /2 cuts total wait" true (total fast < total base);
  (* ...and a span-only speedup never hurts. *)
  let fast_span =
    run ~costs:{ Sim.Costs.identity with Sim.Costs.bop_span = 0.5 } ~p:8 ()
  in
  Alcotest.(check bool) "span /2 never hurts" true
    (total fast_span <= total base);
  (* Dispatch delay charges every batch; the sched knob multiplies it. *)
  let delayed = run ~sched_delay:50 ~p:8 () in
  Alcotest.(check bool) "sched_delay adds wait" true
    (total delayed > total base);
  let delayed2 =
    run ~sched_delay:50
      ~costs:{ Sim.Costs.identity with Sim.Costs.sched = 2.0 }
      ~p:8 ()
  in
  Alcotest.(check bool) "sched x2 adds more" true
    (total delayed2 > total delayed);
  (* The share knob is expressible even at P = 1, where the pre-scale
     clamp already sits at its floor: granting a shard 4x the worker
     share must strictly cut waits on this loaded fixture. *)
  let p1 = run ~p:1 () in
  let p1_boost =
    run ~costs:{ Sim.Costs.identity with Sim.Costs.p_share = 4.0 } ~p:1 ()
  in
  Alcotest.(check bool) "share x4 at P=1 cuts wait" true
    (total p1_boost < total p1)

(* An idle system (arrivals far apart) must show the paper's Lemma-2
   figure: at most own batch + one in flight. *)
let test_openloop_lemma2_when_underloaded () =
  let olreqs =
    Array.init 50 (fun i -> { Sim.Openloop.at = i * 100_000; shard = 0; cls = 0 })
  in
  let models = [| Batched.Counter.sim_model () |] in
  let r =
    Sim.Openloop.run (Sim.Openloop.config ~p:4 ~shards:1 ()) ~models olreqs
  in
  Alcotest.(check bool)
    (Printf.sprintf "m = %d <= 2" r.Sim.Openloop.max_batches_seen)
    true
    (r.Sim.Openloop.max_batches_seen <= 2)

(* ---------- sim driver end-to-end ---------- *)

let smoke () =
  match Svc.Scenario.find "smoke" with
  | Some sc -> sc
  | None -> Alcotest.fail "smoke scenario missing"

let test_sim_driver_smoke () =
  let sc = smoke () in
  let pt = Svc.Sim_driver.run_point sc ~p:4 in
  Alcotest.(check int) "all requests" sc.Svc.Scenario.sim_requests
    pt.Svc.Sim_driver.requests;
  (match pt.Svc.Sim_driver.bound with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let all = Svc.Latency.all_of pt.Svc.Sim_driver.classes in
  Alcotest.(check bool) "p50 <= p99" true
    (all.Svc.Latency.p50_ns <= all.Svc.Latency.p99_ns);
  Alcotest.(check bool) "p99 <= p999" true
    (all.Svc.Latency.p99_ns <= all.Svc.Latency.p999_ns);
  Alcotest.(check bool) "p999 <= max" true
    (all.Svc.Latency.p999_ns <= all.Svc.Latency.max_ns);
  Alcotest.(check bool) "non-degenerate tail" true
    (all.Svc.Latency.p50_ns < all.Svc.Latency.p999_ns);
  Alcotest.(check bool) "goodput positive" true
    (pt.Svc.Sim_driver.goodput > 0.0);
  (* Determinism across driver invocations. *)
  let pt2 = Svc.Sim_driver.run_point sc ~p:4 in
  Alcotest.(check (float 0.0)) "deterministic p999"
    all.Svc.Latency.p999_ns
    (Svc.Latency.all_of pt2.Svc.Sim_driver.classes).Svc.Latency.p999_ns

(* ---------- runtime driver, tiny ---------- *)

let test_rt_driver_tiny () =
  let sc = smoke () in
  let pt = Svc.Rt_driver.run_point ~workers:2 ~duration_s:0.3 sc ~shards:1 in
  Alcotest.(check bool) "served some requests" true
    (pt.Svc.Rt_driver.requests > 100);
  Alcotest.(check bool) "goodput positive" true (pt.Svc.Rt_driver.goodput > 0.0);
  Alcotest.(check bool) "batches ran" true (pt.Svc.Rt_driver.batches > 0);
  let all = Svc.Latency.all_of pt.Svc.Rt_driver.classes in
  Alcotest.(check int) "every request measured" pt.Svc.Rt_driver.requests
    all.Svc.Latency.requests;
  Alcotest.(check bool) "latencies positive" true (all.Svc.Latency.p50_ns > 0.0);
  Alcotest.(check bool) "ordered digests" true
    (all.Svc.Latency.p50_ns <= all.Svc.Latency.p99_ns
    && all.Svc.Latency.p99_ns <= all.Svc.Latency.p999_ns
    && all.Svc.Latency.p999_ns <= all.Svc.Latency.max_ns)

(* ---------- per-request span traces through the drivers ---------- *)

(* The acceptance property of the anatomy subsystem: on a real traced
   run, every completed span's phases sum exactly to its measured
   latency with every term nonnegative — under every batch-path mode,
   since each publishes/overflows differently. *)
let test_rt_driver_trace_conservation () =
  let sc = smoke () in
  List.iter
    (fun mode ->
      let name = Runtime.Batcher_rt.mode_name mode in
      let pt =
        Svc.Rt_driver.run_point ~workers:2 ~duration_s:0.2 ~mode ~trace:true sc
          ~shards:2
      in
      let rt = pt.Svc.Rt_driver.trace in
      Alcotest.(check bool) (name ^ ": trace enabled") true
        (Obs.Reqtrace.enabled rt);
      (match Obs.Reqtrace.check rt with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: span conservation: %s" name e);
      Alcotest.(check int)
        (name ^ ": every request completed a span")
        pt.Svc.Rt_driver.requests (Obs.Reqtrace.completed rt);
      (* Aggregates inherit the per-span identity. *)
      let tt = Obs.Reqtrace.totals rt in
      Alcotest.(check int) (name ^ ": totals cover the run")
        pt.Svc.Rt_driver.requests tt.Obs.Reqtrace.n;
      Alcotest.(check int)
        (name ^ ": phase totals sum to latency total")
        tt.Obs.Reqtrace.t_latency
        (tt.Obs.Reqtrace.t_queue + tt.Obs.Reqtrace.t_sched
        + tt.Obs.Reqtrace.t_pending + tt.Obs.Reqtrace.t_exec);
      (* The reservoir's worst latency brackets the digest's max: the
         trace stamps completion just after the driver measures the
         request, so it reads >= the digest figure, and by no more
         than scheduling skew between two adjacent stamps. *)
      let all = Svc.Latency.all_of pt.Svc.Rt_driver.classes in
      match Obs.Reqtrace.slowest rt with
      | worst :: _ ->
          let w = fi worst.Obs.Reqtrace.latency_ns in
          Alcotest.(check bool)
            (Printf.sprintf "%s: reservoir worst %.0f ~ digest max %.0f" name w
               all.Svc.Latency.max_ns)
            true
            (w >= all.Svc.Latency.max_ns
            && w <= all.Svc.Latency.max_ns +. 100_000_000.0)
      | [] -> Alcotest.fail (name ^ ": empty reservoir"))
    Runtime.Batcher_rt.all_modes

let test_sim_driver_trace_conservation () =
  let sc = smoke () in
  let pt = Svc.Sim_driver.run_point ~trace:true sc ~p:4 in
  let rt = pt.Svc.Sim_driver.trace in
  Alcotest.(check bool) "trace enabled" true (Obs.Reqtrace.enabled rt);
  (match Obs.Reqtrace.check rt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sim span conservation: %s" e);
  Alcotest.(check int) "every sim request has a span"
    pt.Svc.Sim_driver.requests (Obs.Reqtrace.completed rt);
  (* Virtual clock: no queue/sched phases, everything is pending+exec,
     and batches_seen stays within the open-loop engine's recorded max. *)
  let tt = Obs.Reqtrace.totals rt in
  Alcotest.(check int) "no queue phase on the virtual clock" 0
    tt.Obs.Reqtrace.t_queue;
  Alcotest.(check int) "no sched phase on the virtual clock" 0
    tt.Obs.Reqtrace.t_sched;
  Alcotest.(check int) "pending + exec = latency" tt.Obs.Reqtrace.t_latency
    (tt.Obs.Reqtrace.t_pending + tt.Obs.Reqtrace.t_exec);
  (* Determinism: the traced rerun reproduces the same totals. *)
  let pt2 = Svc.Sim_driver.run_point ~trace:true sc ~p:4 in
  let tt2 = Obs.Reqtrace.totals pt2.Svc.Sim_driver.trace in
  Alcotest.(check int) "deterministic trace totals" tt.Obs.Reqtrace.t_latency
    tt2.Obs.Reqtrace.t_latency

(* ---------- latency digests ---------- *)

let test_latency_digest () =
  let samples = Array.init 1000 (fun i -> fi (i + 1)) in
  let classes = Svc.Latency.of_samples [ ("get", samples); ("put", [||]) ] in
  Alcotest.(check int) "empty class dropped, all added" 2
    (List.length classes);
  let all = Svc.Latency.all_of classes in
  Alcotest.(check (float 0.5)) "p50 exact" 500.5 all.Svc.Latency.p50_ns;
  Alcotest.(check (float 0.5)) "p99 exact" 990.01 all.Svc.Latency.p99_ns;
  Alcotest.(check (float 0.0)) "max exact" 1000.0 all.Svc.Latency.max_ns;
  Alcotest.(check bool) "1000 samples: p999 interpolated" false
    all.Svc.Latency.p999_approx

let test_latency_p999_small_sample () =
  (* Below 1000 samples the 99.9th percentile is interpolation noise;
     the digest must report the observed max and flag it approximate. *)
  let samples = Array.init 500 (fun i -> fi (i + 1)) in
  let classes = Svc.Latency.of_samples [ ("get", samples) ] in
  let all = Svc.Latency.all_of classes in
  Alcotest.(check bool) "small sample flagged" true all.Svc.Latency.p999_approx;
  Alcotest.(check (float 0.0)) "p999 = max" all.Svc.Latency.max_ns
    all.Svc.Latency.p999_ns;
  let get =
    List.find (fun c -> c.Svc.Latency.cls = "get") classes
  in
  Alcotest.(check bool) "per-class flagged too" true
    get.Svc.Latency.p999_approx;
  (* At exactly 1000 the interpolated path takes over. *)
  let big = Array.init 1000 (fun i -> fi (i + 1)) in
  let all2 = Svc.Latency.all_of (Svc.Latency.of_samples [ ("get", big) ]) in
  Alcotest.(check bool) "1000 samples exact" false all2.Svc.Latency.p999_approx;
  Alcotest.(check bool) "interpolated p999 below max" true
    (all2.Svc.Latency.p999_ns < all2.Svc.Latency.max_ns)

let test_latency_empty_run () =
  (* Zero samples anywhere must yield a well-formed all-zero "all"
     digest — no nan, no Not_found — so empty-run reporting works. *)
  let classes = Svc.Latency.of_samples [] in
  Alcotest.(check int) "all digest present" 1 (List.length classes);
  let all = Svc.Latency.all_of classes in
  Alcotest.(check int) "zero requests" 0 all.Svc.Latency.requests;
  Alcotest.(check bool) "approx on empty" true all.Svc.Latency.p999_approx;
  List.iter
    (fun v ->
      Alcotest.(check bool) "finite zero" true (v = 0.0 && not (Float.is_nan v)))
    [
      all.Svc.Latency.p50_ns; all.Svc.Latency.p99_ns; all.Svc.Latency.p999_ns;
      all.Svc.Latency.mean_ns; all.Svc.Latency.max_ns;
    ]

(* ---------- snapshot extra fields ---------- *)

let test_snapshot_extra_fields () =
  let path = Filename.temp_file "svc_snap" ".jsonl" in
  let rc = Obs.Recorder.create ~capacity:64 ~clock:Obs.Recorder.Nanoseconds ~workers:1 () in
  let snap =
    Obs.Snapshot.to_file
      ~extra:(fun () -> [ ("svc_queue_depth", Obs.Json.Int 17) ])
      rc ~path
  in
  Obs.Snapshot.sample snap;
  Obs.Snapshot.close snap;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  (match Obs.Json.parse line with
  | Ok j -> (
      match Obs.Json.member "svc_queue_depth" j with
      | Some (Obs.Json.Int 17) -> ()
      | _ -> Alcotest.fail "extra field missing or wrong")
  | Error e -> Alcotest.fail ("unparseable snapshot line: " ^ e))

(* ---------- report merge ---------- *)

let row ~scenario v =
  Obs.Json.Obj
    [
      ("exec", Obs.Json.Str "sim");
      ("scenario", Obs.Json.Str scenario);
      ("cls", Obs.Json.Str "all");
      ("p99_ns", Obs.Json.Float v);
    ]

let svc_rows j =
  match Obs.Json.member "experiments" j with
  | Some (Obs.Json.List exps) -> (
      match
        List.find_opt
          (fun e -> Obs.Json.member "id" e = Some (Obs.Json.Str "SVC"))
          exps
      with
      | Some e -> (
          match Obs.Json.member "rows" e with
          | Some (Obs.Json.List rows) -> rows
          | _ -> [])
      | None -> [])
  | _ -> []

let test_report_merge_preserves () =
  let path = Filename.temp_file "svc_bench" ".json" in
  (* Seed the file with a foreign experiment that must survive. *)
  Batcher_core.Report_json.write_file ~path
    (Obs.Json.Obj
       [
         ("schema_version", Obs.Json.Int 1);
         ( "experiments",
           Obs.Json.List
             [
               Obs.Json.Obj
                 [ ("id", Obs.Json.Str "E1"); ("rows", Obs.Json.List []) ];
             ] );
       ]);
  Svc.Report.merge_svc ~path ~scenario:"a" [ row ~scenario:"a" 1.0 ];
  Svc.Report.merge_svc ~path ~scenario:"b" [ row ~scenario:"b" 2.0 ];
  (* Re-running scenario a replaces its rows, keeps b's. *)
  Svc.Report.merge_svc ~path ~scenario:"a" [ row ~scenario:"a" 3.0 ];
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Obs.Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok j ->
      let rows = svc_rows j in
      Alcotest.(check int) "one row per scenario" 2 (List.length rows);
      let p99_of scen =
        List.find_map
          (fun r ->
            if Obs.Json.member "scenario" r = Some (Obs.Json.Str scen) then
              Option.bind (Obs.Json.member "p99_ns" r) Obs.Json.to_float_opt
            else None)
          rows
      in
      Alcotest.(check (option (float 0.0))) "a replaced" (Some 3.0) (p99_of "a");
      Alcotest.(check (option (float 0.0))) "b kept" (Some 2.0) (p99_of "b");
      (match Obs.Json.member "experiments" j with
      | Some (Obs.Json.List exps) ->
          Alcotest.(check int) "foreign experiment preserved" 2
            (List.length exps)
      | _ -> Alcotest.fail "experiments missing")

(* ---------- identity costs reproduce the pre-causal engine ---------- *)

(* Golden digests captured on the standard scenario BEFORE Sim.Costs
   was threaded through Sim.Openloop (commit 36b5f90, bin of the
   then-current tree): the causal-profiling cost knobs at their
   identity values must reproduce the old engine to the byte —
   Costs.scale with factor 1.0 returns its input unchanged, so not
   one wait, launch-wait or batches-seen figure may move. *)
let golden_standard =
  [
    (1, (241060, 20000, 1, 420000, 1038, 1874, 3101757911089112640));
    (8, (197787, 8945, 8, 795690, 3, 38, 535926878363528104));
    (64, (197758, 9628, 10, 4059384, 2, 28, 512954716549816802));
  ]

let openloop_digest (r : Sim.Openloop.result) =
  let h = ref 17 in
  let mix v = h := (!h * 1000003) lxor v land 0x3FFFFFFFFFFFFFFF in
  Array.iter mix r.Sim.Openloop.waits;
  Array.iter mix r.Sim.Openloop.launch_waits;
  Array.iter mix r.Sim.Openloop.batches_seen;
  !h

let test_identity_costs_golden () =
  let sc =
    match Svc.Scenario.find "standard" with
    | Some sc -> sc
    | None -> Alcotest.fail "standard scenario missing"
  in
  let (module S : Svc.Store.STORE) = sc.Svc.Scenario.store in
  let shards = sc.Svc.Scenario.sim_shards in
  let unit_ns = sc.Svc.Scenario.sim_ns_per_unit in
  let reqs =
    Gen.generate_n (Svc.Scenario.gen_sim sc) ~n:sc.Svc.Scenario.sim_requests
  in
  let olreqs =
    Array.map
      (fun (r : Gen.request) ->
        {
          Sim.Openloop.at = r.Gen.arrive_ns / unit_ns;
          shard = Batched.Shard.route ~shards r.Gen.key;
          cls = Gen.class_index r.Gen.cls;
        })
      reqs
  in
  List.iter
    (fun (p, (makespan, batches, max_batch, total_work, m, in_sys, dg)) ->
      let run costs =
        let models =
          Array.init shards (fun i ->
              S.model ~n_keys:sc.Svc.Scenario.n_keys ~shards i)
        in
        Sim.Openloop.run ?costs (Sim.Openloop.config ~p ~shards ()) ~models
          olreqs
      in
      (* Both the default path and an explicit identity Costs.t. *)
      List.iter
        (fun (label, costs) ->
          let r = run costs in
          Alcotest.(check int) (label ^ ": makespan") makespan
            r.Sim.Openloop.makespan;
          Alcotest.(check int) (label ^ ": batches") batches
            r.Sim.Openloop.batches;
          Alcotest.(check int) (label ^ ": max_batch") max_batch
            r.Sim.Openloop.max_batch;
          Alcotest.(check int) (label ^ ": total_work") total_work
            r.Sim.Openloop.total_work;
          Alcotest.(check int) (label ^ ": m") m
            r.Sim.Openloop.max_batches_seen;
          Alcotest.(check int) (label ^ ": max_in_system") in_sys
            r.Sim.Openloop.max_in_system;
          Alcotest.(check int) (label ^ ": per-request digest") dg
            (openloop_digest r))
        [
          (Printf.sprintf "P=%d default" p, None);
          (Printf.sprintf "P=%d identity" p, Some Sim.Costs.identity);
        ])
    golden_standard

(* ---------- causal what-if profile, sim leg ---------- *)

let test_causal_sim_profile () =
  let sc = smoke () in
  let r = Svc.Causal.run_sim ~factors:[ 2.0; 4.0 ] sc in
  Alcotest.(check (list string)) "no conservation/bound errors" []
    r.Svc.Causal.errors;
  let p = r.Svc.Causal.profile in
  Alcotest.(check int) "full grid" (6 * 2)
    (List.length p.Obs.Causal.cells);
  (* Every sim cell carries the Theorem-1 comparison... *)
  List.iter
    (fun (c : Obs.Causal.cell) ->
      Alcotest.(check bool)
        (c.Obs.Causal.phase ^ ": cell bound evaluated")
        true
        (not (Float.is_nan c.Obs.Causal.m.Obs.Causal.bound_ns));
      Alcotest.(check bool)
        (c.Obs.Causal.phase ^ ": d_bound evaluated")
        true
        (not (Float.is_nan c.Obs.Causal.d_bound)))
    p.Obs.Causal.cells;
  (* ...and both winner verdicts resolve. *)
  Alcotest.(check bool) "measured winner" true
    (p.Obs.Causal.winner_measured <> None);
  Alcotest.(check bool) "bound winner" true
    (p.Obs.Causal.winner_bound <> None);
  Alcotest.(check bool) "agreement verdict present" true
    (p.Obs.Causal.agree <> None);
  (* The smoke scenario at its overloaded P demonstrates the point of
     causal profiling: at least one phase's measured sensitivity
     diverges from its Reqtrace latency share. *)
  Alcotest.(check bool) "shares != sensitivity somewhere" true
    (p.Obs.Causal.divergent <> []);
  (* Exact determinism: the whole profile, rows included, replays. *)
  let r2 = Svc.Causal.run_sim ~factors:[ 2.0; 4.0 ] sc in
  (* Structural compare, not (=): the share knob's share_predicted/
     divergence are NaN by design, and NaN = NaN is false while
     compare treats them equal. *)
  Alcotest.(check int) "profile deterministic" 0
    (compare r.Svc.Causal.profile r2.Svc.Causal.profile);
  Alcotest.(check int) "rows deterministic" 0
    (compare r.Svc.Causal.rows r2.Svc.Causal.rows)

(* The runtime leg's delay injection must keep every Reqtrace stamp a
   real clock reading: span conservation holds on an injected run. *)
let test_rt_inject_conservation () =
  let sc = smoke () in
  let pt =
    Svc.Rt_driver.run_point ~workers:2 ~duration_s:0.2 ~trace:true
      ~inject:
        {
          Runtime.Batcher_rt.slow_submit = 2.0;
          slow_setup = 1.5;
          slow_bop = 2.0;
        }
      sc ~shards:2
  in
  Alcotest.(check bool) "served some requests" true
    (pt.Svc.Rt_driver.requests > 100);
  match Obs.Reqtrace.check pt.Svc.Rt_driver.trace with
  | Ok () -> ()
  | Error e -> Alcotest.failf "injected span conservation: %s" e

(* ---------- stores ---------- *)

let test_store_registry () =
  List.iter
    (fun name ->
      match Svc.Store.find name with
      | Some (module S : Svc.Store.STORE) ->
          Alcotest.(check string) "name matches" name S.name
      | None -> Alcotest.fail ("missing store " ^ name))
    [ "skiplist"; "hashtable"; "two_three" ];
  Alcotest.(check bool) "unknown store rejected" true
    (Svc.Store.find "btree" = None)

let test_mix_folding () =
  let m = Gen.fold_range_into_get Gen.default_mix in
  Alcotest.(check (float 1e-9)) "range zero" 0.0 m.Gen.range;
  Alcotest.(check (float 1e-9)) "share conserved"
    (Gen.default_mix.Gen.get +. Gen.default_mix.Gen.range)
    m.Gen.get

(* ---------- qcheck properties ---------- *)

let qcheck_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample always lands in [0,n)" ~count:200
    QCheck.(pair (1 -- 5_000) (0 -- 300))
    (fun (n, theta_pct) ->
      let z = Gen.zipf ~n ~theta:(fi theta_pct /. 100.0) in
      let rng = Util.Rng.create ~seed:(n + theta_pct) in
      let ok = ref true in
      for _ = 1 to 50 do
        let r = Gen.zipf_sample rng z in
        if r < 0 || r >= n then ok := false
      done;
      !ok)

let qcheck_replay =
  QCheck.Test.make ~name:"generate_n replays byte-identically per seed"
    ~count:60
    QCheck.(0 -- 1_000_000)
    (fun seed ->
      let g = Gen.make ~seed ~n_keys:10_000 ~rate:25_000.0 () in
      Gen.generate_n g ~n:200 = Gen.generate_n g ~n:200)

(* merge_experiment is the report files' only writer, so its two
   contracts get property coverage: re-merging the same rows is
   idempotent (CI re-runs must not churn the file), and merging
   scenario A neither drops nor reorders scenario B's rows (nor any
   foreign experiment). Rows are synthesized with varying counts and
   metric values; the file is round-tripped through disk each time,
   like the real thing. *)

let synth_rows ~scenario ~salt n =
  List.init n (fun i ->
      Obs.Json.Obj
        [
          ("exec", Obs.Json.Str "sim");
          ("scenario", Obs.Json.Str scenario);
          ("cls", Obs.Json.Str (Printf.sprintf "c%d" i));
          (* +0.5 keeps the float non-integral: an integral Float
             serializes as "17", which parses back as Int — a
             representation change the properties' structural
             comparisons would false-positive on. *)
          ("p99_ns", Obs.Json.Float (fi ((salt * 31) + i) +. 0.5));
        ])

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_report f =
  let path = Filename.temp_file "svc_merge" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let qcheck_merge_idempotent =
  QCheck.Test.make ~name:"merge_experiment re-merge is idempotent" ~count:30
    QCheck.(pair (0 -- 6) (0 -- 10_000))
    (fun (n, salt) ->
      with_temp_report (fun path ->
          let rows = synth_rows ~scenario:"a" ~salt n in
          Svc.Report.merge_svc ~path ~scenario:"a" rows;
          let once = slurp path in
          Svc.Report.merge_svc ~path ~scenario:"a" rows;
          once = slurp path))

let qcheck_merge_preserves_others =
  QCheck.Test.make
    ~name:"merging A never drops or reorders B's rows" ~count:30
    QCheck.(triple (1 -- 6) (0 -- 6) (0 -- 10_000))
    (fun (nb, na, salt) ->
      with_temp_report (fun path ->
          let b_rows = synth_rows ~scenario:"b" ~salt nb in
          (* A foreign experiment must survive the SVC merges too. *)
          Batcher_core.Report_json.write_file ~path
            (Obs.Json.Obj
               [
                 ("schema_version", Obs.Json.Int 1);
                 ( "experiments",
                   Obs.Json.List
                     [
                       Obs.Json.Obj
                         [
                           ("id", Obs.Json.Str "E1");
                           ( "rows",
                             Obs.Json.List
                               (synth_rows ~scenario:"x" ~salt 2) );
                         ];
                     ] );
               ]);
          Svc.Report.merge_svc ~path ~scenario:"b" b_rows;
          Svc.Report.merge_svc ~path ~scenario:"a"
            (synth_rows ~scenario:"a" ~salt:(salt + 1) na);
          match Obs.Json.parse (slurp path) with
          | Error _ -> false
          | Ok j ->
              let b_after =
                List.filter
                  (fun r ->
                    Obs.Json.member "scenario" r = Some (Obs.Json.Str "b"))
                  (svc_rows j)
              in
              let e1_intact =
                match Obs.Json.member "experiments" j with
                | Some (Obs.Json.List exps) ->
                    List.exists
                      (fun e ->
                        Obs.Json.member "id" e = Some (Obs.Json.Str "E1")
                        && Obs.Json.member "rows" e
                           = Some
                               (Obs.Json.List (synth_rows ~scenario:"x" ~salt 2)))
                      exps
                | _ -> false
              in
              b_after = b_rows && e1_intact))

let () =
  Alcotest.run "service"
    [
      ( "zipf",
        [
          Alcotest.test_case "rank-frequency monotone" `Quick
            test_zipf_rank_frequency_monotone;
          Alcotest.test_case "theta=0 is uniform" `Quick
            test_zipf_theta0_uniform;
          Alcotest.test_case "theta=1 special case" `Quick test_zipf_theta_one;
          Alcotest.test_case "scramble bijection" `Quick
            test_scramble_bijection;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson mean rate" `Quick test_poisson_mean_rate;
          Alcotest.test_case "burst mean rate" `Quick test_burst_mean_rate;
        ] );
      ( "replay",
        [
          Alcotest.test_case "fixed seed is byte-identical" `Quick
            test_replay_identical;
          Alcotest.test_case "locality replays recent keys" `Quick
            test_locality_replays_recent;
        ] );
      ( "openloop",
        [
          Alcotest.test_case "deterministic" `Quick test_openloop_deterministic;
          Alcotest.test_case "sanity + wait bound" `Quick test_openloop_sanity;
          Alcotest.test_case "lemma-2 when underloaded" `Quick
            test_openloop_lemma2_when_underloaded;
          Alcotest.test_case "what-if cost knobs" `Quick test_openloop_costs;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "sim smoke point" `Quick test_sim_driver_smoke;
          Alcotest.test_case "runtime tiny point" `Quick test_rt_driver_tiny;
        ] );
      ( "reqtrace",
        [
          Alcotest.test_case "runtime span conservation, all modes" `Quick
            test_rt_driver_trace_conservation;
          Alcotest.test_case "sim span conservation, deterministic" `Quick
            test_sim_driver_trace_conservation;
          Alcotest.test_case "injected run conserves spans" `Quick
            test_rt_inject_conservation;
        ] );
      ( "causal",
        [
          Alcotest.test_case "identity costs reproduce pre-causal goldens"
            `Quick test_identity_costs_golden;
          Alcotest.test_case "sim what-if profile" `Quick
            test_causal_sim_profile;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "latency digests exact" `Quick test_latency_digest;
          Alcotest.test_case "p999 small-sample semantics" `Quick
            test_latency_p999_small_sample;
          Alcotest.test_case "empty run digest" `Quick test_latency_empty_run;
          Alcotest.test_case "snapshot extra fields" `Quick
            test_snapshot_extra_fields;
          Alcotest.test_case "report merge preserves" `Quick
            test_report_merge_preserves;
          Alcotest.test_case "store registry" `Quick test_store_registry;
          Alcotest.test_case "mix folding" `Quick test_mix_folding;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_zipf_in_range;
            qcheck_replay;
            qcheck_merge_idempotent;
            qcheck_merge_preserves_others;
          ] );
    ]
