(* Observability subsystem: ring recorder semantics, Chrome trace-event
   output, JSON round-trips, and summary-vs-metrics cross-checks. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- JSON writer / parser ---- *)

let roundtrip j =
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "JSON did not round-trip: %s" e

let test_json_roundtrip () =
  let open Obs.Json in
  let j =
    Obj
      [
        ("i", Int 42);
        ("neg", Int (-7));
        ("f", Float 1.5);
        ("s", Str "a \"quote\" and \\ and \n control \x01");
        ("unicode", Str "µs — naïve");
        ("l", List [ Null; Bool true; Bool false; Int 0 ]);
        ("empty_l", List []);
        ("empty_o", Obj []);
      ]
  in
  Alcotest.(check bool) "round-trip equal" true (roundtrip j = j);
  (* Non-finite floats must degrade to null, not emit invalid JSON. *)
  (match roundtrip (List [ Float nan; Float infinity ]) with
  | List [ Null; Null ] -> ()
  | _ -> Alcotest.fail "non-finite floats should serialize as null");
  (* The parser must reject trailing garbage and bare words. *)
  (match Obs.Json.parse "{\"a\":1} x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Obs.Json.parse "nul" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare word accepted"

(* ---- ring recorder ---- *)

let test_ring_wraparound () =
  (* Capacity rounds up to a power of two; overflow drops the oldest. *)
  let rc = Obs.Recorder.create ~capacity:10 ~clock:Obs.Recorder.Timesteps ~workers:1 () in
  let n = 100 in
  for t = 0 to n - 1 do
    Obs.Recorder.emit_op_issue rc ~worker:0 ~time:t ~sid:0
  done;
  let cap = 16 in
  check "length is capacity" cap (Obs.Recorder.length rc ~worker:0);
  check "dropped counts overflow" (n - cap) (Obs.Recorder.dropped rc ~worker:0);
  check "total_dropped" (n - cap) (Obs.Recorder.total_dropped rc);
  (* Survivors are exactly the most recent [cap] events, in order. *)
  let evs = Obs.Recorder.events_of_worker rc 0 in
  check "survivor count" cap (List.length evs);
  List.iteri
    (fun i (e : Obs.Recorder.event) ->
      check "survivor time" (n - cap + i) e.Obs.Recorder.time)
    evs

let test_disabled_recorder_no_op () =
  let rc = Obs.Recorder.null in
  check_bool "null is disabled" false (Obs.Recorder.enabled rc);
  (* Emitting into the disabled recorder must not allocate: the hot
     path in the sim and runtime stays free when tracing is off. All
     emitter arguments here are immediate ints/bools, so any minor-heap
     growth would come from the recorder itself. *)
  let words_before = Gc.minor_words () in
  for i = 0 to 9_999 do
    Obs.Recorder.emit_status rc ~worker:0 ~time:i Obs.Recorder.Executing;
    Obs.Recorder.emit_steal rc ~worker:0 ~time:i ~victim:1 ~success:true
      ~batch_deque:false;
    Obs.Recorder.emit_batch_start rc ~worker:0 ~time:i ~sid:0 ~size:4 ~setup:8;
    Obs.Recorder.emit_batch_end rc ~worker:0 ~time:i ~sid:0 ~size:4;
    Obs.Recorder.emit_op_issue rc ~worker:0 ~time:i ~sid:0;
    Obs.Recorder.emit_op_done rc ~worker:0 ~time:i ~sid:0 ~batches_seen:1
      ~latency:5
  done;
  let words_after = Gc.minor_words () in
  let delta = words_after -. words_before in
  (* Gc.minor_words itself boxes a float per call; allow that slack but
     nothing proportional to the 60k emits. *)
  if delta > 256. then
    Alcotest.failf "disabled recorder allocated %.0f minor words" delta;
  check "null length" 0 (Obs.Recorder.length rc ~worker:0)

let test_enabled_recorder_no_alloc () =
  (* The ENABLED hot path must also be allocation-free: [Clock.now_ns]
     is a [@@noalloc] external with an unboxed int64 result (the boxed
     wrapper it replaced cost one minor allocation per timestamp), and
     each emitter is five int-array stores. Native-code only guarantee,
     which is how the tests are built. *)
  let rc = Obs.Recorder.create ~capacity:64 ~clock:Obs.Recorder.Nanoseconds ~workers:1 () in
  Alcotest.(check bool) "enabled" true (Obs.Recorder.enabled rc);
  (* Warm up so any one-time allocation is out of the way. *)
  for _ = 1 to 3 do
    Obs.Recorder.emit_steal rc ~worker:0 ~time:(Obs.Recorder.now rc) ~victim:0
      ~success:false ~batch_deque:false
  done;
  let words_before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let t = Obs.Recorder.now rc in
    Obs.Recorder.emit_status rc ~worker:0 ~time:t Obs.Recorder.Executing;
    Obs.Recorder.emit_steal rc ~worker:0 ~time:t ~victim:1 ~success:true
      ~batch_deque:false;
    Obs.Recorder.emit_steals_suppressed rc ~worker:0 ~time:t ~count:17;
    Obs.Recorder.emit_batch_start rc ~worker:0 ~time:t ~sid:0 ~size:4 ~setup:8;
    Obs.Recorder.emit_batch_end rc ~worker:0 ~time:t ~sid:0 ~size:4;
    Obs.Recorder.emit_op_issue rc ~worker:0 ~time:t ~sid:0;
    Obs.Recorder.emit_op_done rc ~worker:0 ~time:t ~sid:0 ~batches_seen:1
      ~latency:5
  done;
  let delta = Gc.minor_words () -. words_before in
  if delta > 256. then
    Alcotest.failf "enabled recorder hot path allocated %.0f minor words" delta

let test_steals_suppressed_summary () =
  (* A Steals_suppressed event stands for [count] failed attempts that
     were not individually recorded; the summary must fold them back
     into the attempt total (and nothing else). *)
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:2 () in
  Obs.Recorder.emit_steal rc ~worker:0 ~time:1 ~victim:1 ~success:false
    ~batch_deque:false;
  Obs.Recorder.emit_steals_suppressed rc ~worker:0 ~time:5 ~count:40;
  Obs.Recorder.emit_steal rc ~worker:0 ~time:6 ~victim:1 ~success:true
    ~batch_deque:false;
  Obs.Recorder.emit_steal rc ~worker:1 ~time:7 ~victim:0 ~success:true
    ~batch_deque:false;
  (match Obs.Recorder.events_of_worker rc 0 with
  | [ _; { kind = Obs.Recorder.Steals_suppressed { count = 40 }; _ }; _ ] -> ()
  | _ -> Alcotest.fail "suppressed event readback");
  let s = Obs.Summary.of_recorder rc in
  check "attempts include suppressed" 43 s.Obs.Summary.steal_attempts;
  check "successes unchanged" 2 s.Obs.Summary.steal_successes;
  (* And the event renders in the Chrome sink without breaking JSON. *)
  let trace =
    Obs.Chrome.to_string [ { Obs.Chrome.pid = 1; name = "t"; recording = rc } ]
  in
  match Obs.Json.parse trace with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trace with suppressed event invalid: %s" e

let test_recorder_event_readback () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:2 () in
  Obs.Recorder.emit_status rc ~worker:0 ~time:1 Obs.Recorder.Pending;
  Obs.Recorder.emit_steal rc ~worker:1 ~time:2 ~victim:0 ~success:false ~batch_deque:true;
  Obs.Recorder.emit_batch_start rc ~worker:0 ~time:3 ~sid:7 ~size:5 ~setup:16;
  Obs.Recorder.emit_op_done rc ~worker:1 ~time:4 ~sid:7 ~batches_seen:2 ~latency:3;
  (match Obs.Recorder.all_events rc with
  | [ e1; e2; e3; e4 ] ->
      (match e1.Obs.Recorder.kind with
      | Obs.Recorder.Status Obs.Recorder.Pending -> ()
      | _ -> Alcotest.fail "event 1 kind");
      (match e2.Obs.Recorder.kind with
      | Obs.Recorder.Steal { victim = 0; success = false; batch_deque = true } -> ()
      | _ -> Alcotest.fail "event 2 kind");
      (match e3.Obs.Recorder.kind with
      | Obs.Recorder.Batch_start { sid = 7; size = 5; setup = 16 } -> ()
      | _ -> Alcotest.fail "event 3 kind");
      (match e4.Obs.Recorder.kind with
      | Obs.Recorder.Op_done { sid = 7; batches_seen = 2; latency = 3 } -> ()
      | _ -> Alcotest.fail "event 4 kind");
      check "merged order" 1 e1.Obs.Recorder.time;
      check "merged order last" 4 e4.Obs.Recorder.time
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs))

(* ---- instrumented simulator runs ---- *)

let sim_workload ?(n = 200) () =
  Sim.Workload.parallel_ops
    ~model:(Batched.Skiplist.sim_model ~initial_size:100_000 ~records_per_node:10 ())
    ~records_per_node:10 ~n_nodes:n ()

let run_recorded ?(p = 4) () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:p () in
  let m = Sim.Batcher.run ~recorder:rc (Sim.Batcher.default ~p) (sim_workload ()) in
  (rc, m)

let test_sim_recording_matches_metrics () =
  let rc, m = run_recorded () in
  let s = Obs.Summary.of_recorder rc in
  check "batches" m.Sim.Metrics.batches s.Obs.Summary.batches;
  check "batch size total" m.Sim.Metrics.batch_size_total
    (Obs.Summary.Histo.total s.Obs.Summary.batch_size);
  check "max batch size" m.Sim.Metrics.max_batch_size
    (Obs.Summary.Histo.max_v s.Obs.Summary.batch_size);
  check "ops" 200 s.Obs.Summary.ops;
  check "steal attempts" m.Sim.Metrics.steal_attempts s.Obs.Summary.steal_attempts;
  check "steal successes" m.Sim.Metrics.steal_successes s.Obs.Summary.steal_successes;
  check "setup work" m.Sim.Metrics.setup_work s.Obs.Summary.setup_total;
  check "lemma2 max" m.Sim.Metrics.max_batches_while_pending
    s.Obs.Summary.max_batches_seen;
  (* The empirical Lemma-2 statement under the paper's scheduler. *)
  check_bool "lemma2 bound" true (s.Obs.Summary.max_batches_seen <= 2);
  check "no drops at default capacity" 0 s.Obs.Summary.dropped

let test_sim_unrecorded_run_unchanged () =
  (* The recorder must be purely observational: metrics with and
     without it are identical. *)
  let _, m_rec = run_recorded () in
  let m_plain = Sim.Batcher.run (Sim.Batcher.default ~p:4) (sim_workload ()) in
  check "makespan" m_plain.Sim.Metrics.makespan m_rec.Sim.Metrics.makespan;
  check "batches" m_plain.Sim.Metrics.batches m_rec.Sim.Metrics.batches;
  check "steals" m_plain.Sim.Metrics.steal_attempts m_rec.Sim.Metrics.steal_attempts

let test_sim_trace_deterministic () =
  let chrome () =
    let rc, _ = run_recorded () in
    Obs.Chrome.to_string [ { Obs.Chrome.pid = 1; name = "sim"; recording = rc } ]
  in
  let a = chrome () and b = chrome () in
  check_bool "same seed, byte-identical trace" true (String.equal a b)

(* ---- Chrome trace-event output ---- *)

let field name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "trace event missing %S: %s" name (Obs.Json.to_string j)

let as_int name j =
  match field name j with
  | Obs.Json.Int i -> i
  | Obs.Json.Float f -> int_of_float f
  | _ -> Alcotest.failf "field %S not a number" name

let test_chrome_json_valid () =
  let rc, _ = run_recorded () in
  let s = Obs.Chrome.to_string [ { Obs.Chrome.pid = 1; name = "sim"; recording = rc } ] in
  let j =
    match Obs.Json.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome output is not valid JSON: %s" e
  in
  let events =
    match Obs.Json.member "traceEvents" j with
    | Some l -> (
        match Obs.Json.to_list_opt l with
        | Some evs -> evs
        | None -> Alcotest.fail "traceEvents is not a list")
    | None -> Alcotest.fail "no traceEvents key"
  in
  check_bool "has events" true (List.length events > 100);
  (* Every event has the required trace-event fields; durations are
     non-negative; per-(pid,tid) timestamps are monotone. *)
  let last : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let phases = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let ph =
        match field "ph" ev with
        | Obs.Json.Str s -> s
        | _ -> Alcotest.fail "ph not a string"
      in
      Hashtbl.replace phases ph ();
      let pid = as_int "pid" ev and tid = as_int "tid" ev in
      check "pid" 1 pid;
      if ph <> "M" then begin
        let ts = as_int "ts" ev in
        check_bool "ts >= 0" true (ts >= 0);
        if ph = "X" then
          check_bool "dur >= 0" true (as_int "dur" ev >= 0);
        let key = (pid, tid) in
        (match Hashtbl.find_opt last key with
        | Some prev -> check_bool "monotone ts per track" true (ts >= prev)
        | None -> ());
        Hashtbl.replace last key ts
      end)
    events;
  check_bool "has complete spans" true (Hashtbl.mem phases "X");
  check_bool "has instants" true (Hashtbl.mem phases "i");
  check_bool "has metadata" true (Hashtbl.mem phases "M");
  (* Batch spans live on their synthetic per-structure track. *)
  check_bool "batch track present" true
    (Hashtbl.fold (fun (_, tid) _ acc -> acc || tid = Obs.Chrome.batch_tid_base) last false)

(* ---- summary JSON ---- *)

let test_summary_json () =
  let rc, m = run_recorded () in
  let s = Obs.Summary.of_recorder rc in
  let j = roundtrip (Obs.Summary.to_json s) in
  (match Obs.Json.member "batches" j with
  | Some (Obs.Json.Int b) -> check "json batches" m.Sim.Metrics.batches b
  | _ -> Alcotest.fail "summary json missing batches");
  match Obs.Json.member "max_batches_while_pending" j with
  | Some (Obs.Json.Int v) ->
      check "json lemma2" m.Sim.Metrics.max_batches_while_pending v
  | _ -> Alcotest.fail "summary json missing max_batches_while_pending"

(* ---- real runtime ---- *)

let test_runtime_recording_smoke () =
  let p = 3 in
  let n = 200 in
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers:p () in
  let pool = Runtime.Pool.create ~recorder:rc ~num_workers:p () in
  let counter = Batched.Counter.create () in
  let b =
    Runtime.Batcher_rt.create ~pool ~state:counter
      ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
      ()
  in
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun _ ->
          Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)));
  Runtime.Pool.teardown pool;
  check "counter value" n (Batched.Counter.value counter);
  let s = Obs.Summary.of_recorder rc in
  check "every op completed" n s.Obs.Summary.ops;
  check "batch sizes sum to ops" n (Obs.Summary.Histo.total s.Obs.Summary.batch_size);
  let st = Runtime.Batcher_rt.stats b in
  check "batch events match stats" st.Runtime.Batcher_rt.batches s.Obs.Summary.batches;
  check_bool "latencies positive" true
    (Obs.Summary.Histo.min_v s.Obs.Summary.op_latency > 0);
  (* And the combined two-process trace is valid JSON. *)
  let trace =
    Obs.Chrome.to_string [ { Obs.Chrome.pid = 2; name = "runtime"; recording = rc } ]
  in
  match Obs.Json.parse trace with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "runtime chrome trace invalid: %s" e

let test_recorder_clock_mismatch_rejected () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:4 () in
  (match Runtime.Pool.create ~recorder:rc ~num_workers:4 () with
  | exception Invalid_argument _ -> ()
  | pool ->
      Runtime.Pool.teardown pool;
      Alcotest.fail "pool accepted a Timesteps recorder");
  let rc_ns = Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers:2 () in
  match Sim.Batcher.run ~recorder:rc_ns (Sim.Batcher.default ~p:2) (sim_workload ~n:4 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sim accepted a Nanoseconds recorder"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "round-trip and edge cases" `Quick test_json_roundtrip ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "disabled is a free no-op" `Quick
            test_disabled_recorder_no_op;
          Alcotest.test_case "enabled hot path allocation-free" `Quick
            test_enabled_recorder_no_alloc;
          Alcotest.test_case "steals-suppressed stays truthful" `Quick
            test_steals_suppressed_summary;
          Alcotest.test_case "event readback" `Quick test_recorder_event_readback;
          Alcotest.test_case "clock mismatch rejected" `Quick
            test_recorder_clock_mismatch_rejected;
        ] );
      ( "sim",
        [
          Alcotest.test_case "summary matches metrics" `Quick
            test_sim_recording_matches_metrics;
          Alcotest.test_case "recording is observational" `Quick
            test_sim_unrecorded_run_unchanged;
          Alcotest.test_case "deterministic trace" `Quick test_sim_trace_deterministic;
        ] );
      ( "chrome",
        [ Alcotest.test_case "valid trace-event JSON" `Quick test_chrome_json_valid ] );
      ( "summary",
        [ Alcotest.test_case "summary to_json" `Quick test_summary_json ] );
      ( "runtime",
        [ Alcotest.test_case "recording smoke" `Quick test_runtime_recording_smoke ] );
    ]
