(* Observability subsystem: ring recorder semantics, Chrome trace-event
   output, JSON round-trips, and summary-vs-metrics cross-checks. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- JSON writer / parser ---- *)

let roundtrip j =
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "JSON did not round-trip: %s" e

let test_json_roundtrip () =
  let open Obs.Json in
  let j =
    Obj
      [
        ("i", Int 42);
        ("neg", Int (-7));
        ("f", Float 1.5);
        ("s", Str "a \"quote\" and \\ and \n control \x01");
        ("unicode", Str "µs — naïve");
        ("l", List [ Null; Bool true; Bool false; Int 0 ]);
        ("empty_l", List []);
        ("empty_o", Obj []);
      ]
  in
  Alcotest.(check bool) "round-trip equal" true (roundtrip j = j);
  (* Non-finite floats must degrade to null, not emit invalid JSON. *)
  (match roundtrip (List [ Float nan; Float infinity ]) with
  | List [ Null; Null ] -> ()
  | _ -> Alcotest.fail "non-finite floats should serialize as null");
  (* The parser must reject trailing garbage and bare words. *)
  (match Obs.Json.parse "{\"a\":1} x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Obs.Json.parse "nul" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare word accepted"

let test_json_float_edges () =
  let open Obs.Json in
  (* Non-finite floats degrade to null on output... *)
  List.iter
    (fun f ->
      Alcotest.(check string)
        "non-finite writes null" "null"
        (to_string (Float f)))
    [ nan; infinity; neg_infinity ];
  (* ...and strict parsing refuses to manufacture them: "nan"/"inf" are
     bare words, and a literal that overflows ("1e999") is rejected
     rather than silently becoming infinity. *)
  List.iter
    (fun s ->
      match parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %S" s)
    [ "nan"; "inf"; "infinity"; "1e999"; "-1e999"; "-" ];
  (* Negative zero: the integral fast path prints "-0", which reads
     back as Int 0 — the sign is intentionally dropped on round-trip
     (JSON has no distinct -0 integer, and no consumer cares). *)
  Alcotest.(check string) "-0.0 writes -0" "-0" (to_string (Float (-0.0)));
  (match parse "-0" with
  | Ok (Int 0) -> ()
  | _ -> Alcotest.fail "-0 should parse as Int 0");
  (* Very large finite floats round-trip exactly: %.17g carries full
     double precision. *)
  (match parse (to_string (Float max_float)) with
  | Ok (Float f) when f = max_float -> ()
  | Ok j -> Alcotest.failf "max_float became %s" (to_string j)
  | Error e -> Alcotest.failf "max_float did not parse: %s" e);
  (match parse (to_string (Float 1.2345678901234567)) with
  | Ok (Float f) when f = 1.2345678901234567 -> ()
  | _ -> Alcotest.fail "precise float should round-trip exactly");
  (* Integral floats below 1e15 print as digit strings and reparse as
     Int — the snapshot stream leans on this for counter fields. *)
  (match parse (to_string (Float 12345.0)) with
  | Ok (Int 12345) -> ()
  | _ -> Alcotest.fail "integral float should reparse as Int");
  match parse (to_string (Float 0.5)) with
  | Ok (Float 0.5) -> ()
  | _ -> Alcotest.fail "0.5 should round-trip"

(* ---- Histo.merge: property test ---- *)

let histo_of_list xs =
  let h = Obs.Summary.Histo.create () in
  List.iter (Obs.Summary.Histo.add h) xs;
  h

let qcheck_histo_merge =
  (* merge x y must equal a histogram fed the union of both sample
     lists — exact, because buckets are fixed power-of-two ranges. *)
  QCheck.Test.make ~name:"Histo.merge equals union" ~count:300
    (let sample =
       (* mostly small values, occasionally a huge one to cross buckets *)
       QCheck.(
         frequency
           [ (4, int_bound 4096); (1, map (fun i -> i land max_int) int) ])
     in
     QCheck.(pair (small_list sample) (small_list sample)))
    (fun (xs, ys) ->
      let open Obs.Summary.Histo in
      let h1 = histo_of_list xs and h2 = histo_of_list ys in
      let m = merge h1 h2 in
      let u = histo_of_list (xs @ ys) in
      count m = count u
      && total m = total u
      && min_v m = min_v u
      && max_v m = max_v u
      && buckets m = buckets u
      (* and neither input may be mutated *)
      && count h1 = List.length xs
      && count h2 = List.length ys)

(* ---- ring recorder ---- *)

let test_ring_wraparound () =
  (* Capacity rounds up to a power of two; overflow drops the oldest. *)
  let rc = Obs.Recorder.create ~capacity:10 ~clock:Obs.Recorder.Timesteps ~workers:1 () in
  let n = 100 in
  for t = 0 to n - 1 do
    Obs.Recorder.emit_op_issue rc ~worker:0 ~time:t ~sid:0
  done;
  let cap = 16 in
  check "length is capacity" cap (Obs.Recorder.length rc ~worker:0);
  check "dropped counts overflow" (n - cap) (Obs.Recorder.dropped rc ~worker:0);
  check "total_dropped" (n - cap) (Obs.Recorder.total_dropped rc);
  (* Survivors are exactly the most recent [cap] events, in order. *)
  let evs = Obs.Recorder.events_of_worker rc 0 in
  check "survivor count" cap (List.length evs);
  List.iteri
    (fun i (e : Obs.Recorder.event) ->
      check "survivor time" (n - cap + i) e.Obs.Recorder.time)
    evs

let test_disabled_recorder_no_op () =
  let rc = Obs.Recorder.null in
  check_bool "null is disabled" false (Obs.Recorder.enabled rc);
  (* Emitting into the disabled recorder must not allocate: the hot
     path in the sim and runtime stays free when tracing is off. All
     emitter arguments here are immediate ints/bools, so any minor-heap
     growth would come from the recorder itself. *)
  let words_before = Gc.minor_words () in
  for i = 0 to 9_999 do
    Obs.Recorder.emit_status rc ~worker:0 ~time:i Obs.Recorder.Executing;
    Obs.Recorder.emit_steal rc ~worker:0 ~time:i ~victim:1 ~success:true
      ~batch_deque:false;
    Obs.Recorder.emit_batch_start rc ~worker:0 ~time:i ~sid:0 ~size:4 ~setup:8 ~mode:0;
    Obs.Recorder.emit_batch_end rc ~worker:0 ~time:i ~sid:0 ~size:4;
    Obs.Recorder.emit_op_issue rc ~worker:0 ~time:i ~sid:0;
    Obs.Recorder.emit_op_done rc ~worker:0 ~time:i ~sid:0 ~batches_seen:1
      ~latency:5
  done;
  let words_after = Gc.minor_words () in
  let delta = words_after -. words_before in
  (* Gc.minor_words itself boxes a float per call; allow that slack but
     nothing proportional to the 60k emits. *)
  if delta > 256. then
    Alcotest.failf "disabled recorder allocated %.0f minor words" delta;
  check "null length" 0 (Obs.Recorder.length rc ~worker:0)

let test_enabled_recorder_no_alloc () =
  (* The ENABLED hot path must also be allocation-free: [Clock.now_ns]
     is a [@@noalloc] external with an unboxed int64 result (the boxed
     wrapper it replaced cost one minor allocation per timestamp), and
     each emitter is five int-array stores. Native-code only guarantee,
     which is how the tests are built. *)
  let rc = Obs.Recorder.create ~capacity:64 ~clock:Obs.Recorder.Nanoseconds ~workers:1 () in
  Alcotest.(check bool) "enabled" true (Obs.Recorder.enabled rc);
  (* Warm up so any one-time allocation is out of the way. *)
  for _ = 1 to 3 do
    Obs.Recorder.emit_steal rc ~worker:0 ~time:(Obs.Recorder.now rc) ~victim:0
      ~success:false ~batch_deque:false
  done;
  let words_before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let t = Obs.Recorder.now rc in
    Obs.Recorder.emit_status rc ~worker:0 ~time:t Obs.Recorder.Executing;
    Obs.Recorder.emit_steal rc ~worker:0 ~time:t ~victim:1 ~success:true
      ~batch_deque:false;
    Obs.Recorder.emit_steals_suppressed rc ~worker:0 ~time:t ~count:17;
    Obs.Recorder.emit_batch_start rc ~worker:0 ~time:t ~sid:0 ~size:4 ~setup:8 ~mode:0;
    Obs.Recorder.emit_batch_end rc ~worker:0 ~time:t ~sid:0 ~size:4;
    Obs.Recorder.emit_op_issue rc ~worker:0 ~time:t ~sid:0;
    Obs.Recorder.emit_op_done rc ~worker:0 ~time:t ~sid:0 ~batches_seen:1
      ~latency:5
  done;
  let delta = Gc.minor_words () -. words_before in
  if delta > 256. then
    Alcotest.failf "enabled recorder hot path allocated %.0f minor words" delta

let test_steals_suppressed_summary () =
  (* A Steals_suppressed event stands for [count] failed attempts that
     were not individually recorded; the summary must fold them back
     into the attempt total (and nothing else). *)
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:2 () in
  Obs.Recorder.emit_steal rc ~worker:0 ~time:1 ~victim:1 ~success:false
    ~batch_deque:false;
  Obs.Recorder.emit_steals_suppressed rc ~worker:0 ~time:5 ~count:40;
  Obs.Recorder.emit_steal rc ~worker:0 ~time:6 ~victim:1 ~success:true
    ~batch_deque:false;
  Obs.Recorder.emit_steal rc ~worker:1 ~time:7 ~victim:0 ~success:true
    ~batch_deque:false;
  (match Obs.Recorder.events_of_worker rc 0 with
  | [ _; { kind = Obs.Recorder.Steals_suppressed { count = 40 }; _ }; _ ] -> ()
  | _ -> Alcotest.fail "suppressed event readback");
  let s = Obs.Summary.of_recorder rc in
  check "attempts include suppressed" 43 s.Obs.Summary.steal_attempts;
  check "successes unchanged" 2 s.Obs.Summary.steal_successes;
  (* And the event renders in the Chrome sink without breaking JSON. *)
  let trace =
    Obs.Chrome.to_string [ { Obs.Chrome.pid = 1; name = "t"; recording = rc } ]
  in
  match Obs.Json.parse trace with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trace with suppressed event invalid: %s" e

let test_recorder_event_readback () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:2 () in
  Obs.Recorder.emit_status rc ~worker:0 ~time:1 Obs.Recorder.Pending;
  Obs.Recorder.emit_steal rc ~worker:1 ~time:2 ~victim:0 ~success:false ~batch_deque:true;
  Obs.Recorder.emit_batch_start rc ~worker:0 ~time:3 ~sid:7 ~size:5 ~setup:16 ~mode:2;
  Obs.Recorder.emit_op_done rc ~worker:1 ~time:4 ~sid:7 ~batches_seen:2 ~latency:3;
  (match Obs.Recorder.all_events rc with
  | [ e1; e2; e3; e4 ] ->
      (match e1.Obs.Recorder.kind with
      | Obs.Recorder.Status Obs.Recorder.Pending -> ()
      | _ -> Alcotest.fail "event 1 kind");
      (match e2.Obs.Recorder.kind with
      | Obs.Recorder.Steal { victim = 0; success = false; batch_deque = true } -> ()
      | _ -> Alcotest.fail "event 2 kind");
      (match e3.Obs.Recorder.kind with
      | Obs.Recorder.Batch_start { sid = 7; size = 5; setup = 16; mode = 2 } -> ()
      | _ -> Alcotest.fail "event 3 kind");
      (match e4.Obs.Recorder.kind with
      | Obs.Recorder.Op_done { sid = 7; batches_seen = 2; latency = 3 } -> ()
      | _ -> Alcotest.fail "event 4 kind");
      check "merged order" 1 e1.Obs.Recorder.time;
      check "merged order last" 4 e4.Obs.Recorder.time
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs))

(* ---- instrumented simulator runs ---- *)

let sim_workload ?(n = 200) () =
  Sim.Workload.parallel_ops
    ~model:(Batched.Skiplist.sim_model ~initial_size:100_000 ~records_per_node:10 ())
    ~records_per_node:10 ~n_nodes:n ()

let run_recorded ?(p = 4) () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:p () in
  let m = Sim.Batcher.run ~recorder:rc (Sim.Batcher.default ~p) (sim_workload ()) in
  (rc, m)

let test_sim_recording_matches_metrics () =
  let rc, m = run_recorded () in
  let s = Obs.Summary.of_recorder rc in
  check "batches" m.Sim.Metrics.batches s.Obs.Summary.batches;
  check "batch size total" m.Sim.Metrics.batch_size_total
    (Obs.Summary.Histo.total s.Obs.Summary.batch_size);
  check "max batch size" m.Sim.Metrics.max_batch_size
    (Obs.Summary.Histo.max_v s.Obs.Summary.batch_size);
  check "ops" 200 s.Obs.Summary.ops;
  check "steal attempts" m.Sim.Metrics.steal_attempts s.Obs.Summary.steal_attempts;
  check "steal successes" m.Sim.Metrics.steal_successes s.Obs.Summary.steal_successes;
  check "setup work" m.Sim.Metrics.setup_work s.Obs.Summary.setup_total;
  check "lemma2 max" m.Sim.Metrics.max_batches_while_pending
    s.Obs.Summary.max_batches_seen;
  (* The empirical Lemma-2 statement under the paper's scheduler. *)
  check_bool "lemma2 bound" true (s.Obs.Summary.max_batches_seen <= 2);
  check "no drops at default capacity" 0 s.Obs.Summary.dropped

let test_sim_unrecorded_run_unchanged () =
  (* The recorder must be purely observational: metrics with and
     without it are identical. *)
  let _, m_rec = run_recorded () in
  let m_plain = Sim.Batcher.run (Sim.Batcher.default ~p:4) (sim_workload ()) in
  check "makespan" m_plain.Sim.Metrics.makespan m_rec.Sim.Metrics.makespan;
  check "batches" m_plain.Sim.Metrics.batches m_rec.Sim.Metrics.batches;
  check "steals" m_plain.Sim.Metrics.steal_attempts m_rec.Sim.Metrics.steal_attempts

let test_sim_trace_deterministic () =
  let chrome () =
    let rc, _ = run_recorded () in
    Obs.Chrome.to_string [ { Obs.Chrome.pid = 1; name = "sim"; recording = rc } ]
  in
  let a = chrome () and b = chrome () in
  check_bool "same seed, byte-identical trace" true (String.equal a b)

(* ---- Chrome trace-event output ---- *)

let field name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "trace event missing %S: %s" name (Obs.Json.to_string j)

let as_int name j =
  match field name j with
  | Obs.Json.Int i -> i
  | Obs.Json.Float f -> int_of_float f
  | _ -> Alcotest.failf "field %S not a number" name

let test_chrome_json_valid () =
  let rc, _ = run_recorded () in
  let s = Obs.Chrome.to_string [ { Obs.Chrome.pid = 1; name = "sim"; recording = rc } ] in
  let j =
    match Obs.Json.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome output is not valid JSON: %s" e
  in
  let events =
    match Obs.Json.member "traceEvents" j with
    | Some l -> (
        match Obs.Json.to_list_opt l with
        | Some evs -> evs
        | None -> Alcotest.fail "traceEvents is not a list")
    | None -> Alcotest.fail "no traceEvents key"
  in
  check_bool "has events" true (List.length events > 100);
  (* Every event has the required trace-event fields; durations are
     non-negative; per-(pid,tid) timestamps are monotone. *)
  let last : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let phases = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let ph =
        match field "ph" ev with
        | Obs.Json.Str s -> s
        | _ -> Alcotest.fail "ph not a string"
      in
      Hashtbl.replace phases ph ();
      let pid = as_int "pid" ev and tid = as_int "tid" ev in
      check "pid" 1 pid;
      if ph <> "M" then begin
        let ts = as_int "ts" ev in
        check_bool "ts >= 0" true (ts >= 0);
        if ph = "X" then
          check_bool "dur >= 0" true (as_int "dur" ev >= 0);
        let key = (pid, tid) in
        (match Hashtbl.find_opt last key with
        | Some prev -> check_bool "monotone ts per track" true (ts >= prev)
        | None -> ());
        Hashtbl.replace last key ts
      end)
    events;
  check_bool "has complete spans" true (Hashtbl.mem phases "X");
  check_bool "has instants" true (Hashtbl.mem phases "i");
  check_bool "has metadata" true (Hashtbl.mem phases "M");
  (* Batch spans live on their synthetic per-structure track. *)
  check_bool "batch track present" true
    (Hashtbl.fold (fun (_, tid) _ acc -> acc || tid = Obs.Chrome.batch_tid_base) last false)

(* ---- summary JSON ---- *)

let test_summary_json () =
  let rc, m = run_recorded () in
  let s = Obs.Summary.of_recorder rc in
  let j = roundtrip (Obs.Summary.to_json s) in
  (match Obs.Json.member "batches" j with
  | Some (Obs.Json.Int b) -> check "json batches" m.Sim.Metrics.batches b
  | _ -> Alcotest.fail "summary json missing batches");
  match Obs.Json.member "max_batches_while_pending" j with
  | Some (Obs.Json.Int v) ->
      check "json lemma2" m.Sim.Metrics.max_batches_while_pending v
  | _ -> Alcotest.fail "summary json missing max_batches_while_pending"

(* ---- real runtime ---- *)

let test_runtime_recording_smoke () =
  let p = 3 in
  let n = 200 in
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers:p () in
  let pool = Runtime.Pool.create ~recorder:rc ~num_workers:p () in
  let counter = Batched.Counter.create () in
  let b =
    Runtime.Batcher_rt.create ~pool ~state:counter
      ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
      ()
  in
  Runtime.Pool.run pool (fun () ->
      Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun _ ->
          Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)));
  Runtime.Pool.teardown pool;
  check "counter value" n (Batched.Counter.value counter);
  let s = Obs.Summary.of_recorder rc in
  check "every op completed" n s.Obs.Summary.ops;
  check "batch sizes sum to ops" n (Obs.Summary.Histo.total s.Obs.Summary.batch_size);
  let st = Runtime.Batcher_rt.stats b in
  check "batch events match stats" st.Runtime.Batcher_rt.batches s.Obs.Summary.batches;
  check_bool "latencies positive" true
    (Obs.Summary.Histo.min_v s.Obs.Summary.op_latency > 0);
  (* And the combined two-process trace is valid JSON. *)
  let trace =
    Obs.Chrome.to_string [ { Obs.Chrome.pid = 2; name = "runtime"; recording = rc } ]
  in
  match Obs.Json.parse trace with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "runtime chrome trace invalid: %s" e

let test_recorder_clock_mismatch_rejected () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:4 () in
  (match Runtime.Pool.create ~recorder:rc ~num_workers:4 () with
  | exception Invalid_argument _ -> ()
  | pool ->
      Runtime.Pool.teardown pool;
      Alcotest.fail "pool accepted a Timesteps recorder");
  let rc_ns = Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers:2 () in
  match Sim.Batcher.run ~recorder:rc_ns (Sim.Batcher.default ~p:2) (sim_workload ~n:4 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sim accepted a Nanoseconds recorder"

(* ---- Histo.percentile edges ---- *)

let test_histo_percentile_edges () =
  let module H = Obs.Summary.Histo in
  (* Empty histogram: every percentile is 0 by convention. *)
  let h = H.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (H.percentile h 0.5);
  (* Single bucket, single value: the bucket range is clamped to the
     observed min/max, so every q collapses to that value. *)
  let h1 = H.create () in
  for _ = 1 to 7 do
    H.add h1 42
  done;
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single-value p%g" (100.0 *. q))
        42.0 (H.percentile h1 q))
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ];
  (* p0 and p100 are the exact observed extremes, not bucket edges
     (the values 3 and 1000 sit strictly inside their power-of-two
     buckets [2,3] and [1024,2047]... 1000 is in [512,1023]). *)
  let h2 = H.create () in
  List.iter (H.add h2) [ 3; 10; 10; 17; 1000 ];
  Alcotest.(check (float 0.0)) "p0 = min" 3.0 (H.percentile h2 0.0);
  Alcotest.(check (float 0.0)) "p100 = max" 1000.0 (H.percentile h2 1.0);
  (* Out-of-range q clamps rather than raising. *)
  Alcotest.(check (float 0.0)) "q<0 clamps" 3.0 (H.percentile h2 (-1.0));
  Alcotest.(check (float 0.0)) "q>1 clamps" 1000.0 (H.percentile h2 2.0);
  (* Monotone in q. *)
  let last = ref neg_infinity in
  List.iter
    (fun q ->
      let v = H.percentile h2 q in
      check_bool "monotone" true (v >= !last);
      last := v)
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

let test_histo_percentile_truncated_ring () =
  (* A wrapped ring keeps only the most recent events; the summary's
     histograms — and their percentiles — must describe the survivors
     exactly, not the dropped prefix. *)
  let rc =
    Obs.Recorder.create ~capacity:16 ~clock:Obs.Recorder.Timesteps ~workers:1 ()
  in
  let n = 100 in
  for t = 0 to n - 1 do
    Obs.Recorder.emit_op_done rc ~worker:0 ~time:t ~sid:0 ~batches_seen:1
      ~latency:(t + 1)
  done;
  let s = Obs.Summary.of_recorder rc in
  check "drops recorded" (n - 16) s.Obs.Summary.dropped;
  let h = s.Obs.Summary.op_latency in
  (* Survivors are latencies 85..100. *)
  Alcotest.(check (float 0.0))
    "p0 = oldest surviving latency" 85.0
    (Obs.Summary.Histo.percentile h 0.0);
  Alcotest.(check (float 0.0))
    "p100 = newest latency" 100.0
    (Obs.Summary.Histo.percentile h 1.0);
  let p50 = Obs.Summary.Histo.percentile h 0.5 in
  check_bool "p50 within survivor range" true (p50 >= 85.0 && p50 <= 100.0)

(* ---- Work events ---- *)

let test_work_event_readback () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:1 () in
  Obs.Recorder.emit_work rc ~worker:0 ~time:10 ~cls:Obs.Recorder.Wbatch
    ~units:7;
  Obs.Recorder.emit_work rc ~worker:0 ~time:11 ~cls:Obs.Recorder.Wsched
    ~units:1;
  (match Obs.Recorder.all_events rc with
  | [ e1; e2 ] ->
      (match e1.Obs.Recorder.kind with
      | Obs.Recorder.Work { cls = Obs.Recorder.Wbatch; units = 7 } -> ()
      | _ -> Alcotest.fail "work event 1 kind");
      (match e2.Obs.Recorder.kind with
      | Obs.Recorder.Work { cls = Obs.Recorder.Wsched; units = 1 } -> ()
      | _ -> Alcotest.fail "work event 2 kind")
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  let s = Obs.Summary.of_recorder rc in
  check "work units batch" 7 s.Obs.Summary.work_units.(1);
  check "work units sched" 1 s.Obs.Summary.work_units.(3)

(* ---- attribution ---- *)

let run_recorded_cfg ?(n = 200) cfg =
  let rc =
    Obs.Recorder.create ~clock:Obs.Recorder.Timesteps
      ~workers:cfg.Sim.Batcher.p ()
  in
  let m = Sim.Batcher.run ~recorder:rc cfg (sim_workload ~n ()) in
  (rc, m)

let check_sim_attrib cfg =
  let rc, m = run_recorded_cfg cfg in
  let a = Obs.Attrib.of_recorder rc in
  (match Obs.Attrib.check ~expected:(m.Sim.Metrics.p * m.Sim.Metrics.makespan) a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "conservation (p=%d): %s" m.Sim.Metrics.p e);
  check "core = sim core_work" m.Sim.Metrics.core_work a.Obs.Attrib.total.Obs.Attrib.core;
  check "batch = sim batch_work" m.Sim.Metrics.batch_work a.Obs.Attrib.total.Obs.Attrib.batch;
  check "setup = sim setup_work" m.Sim.Metrics.setup_work a.Obs.Attrib.total.Obs.Attrib.setup;
  check_bool "span_realized positive" true (m.Sim.Metrics.span_realized > 0);
  check_bool "span_realized <= makespan" true
    (m.Sim.Metrics.span_realized <= m.Sim.Metrics.makespan)

let test_attrib_sim_conservation () =
  (* Exact bucket conservation must hold across scheduler shapes, not
     just the paper default: every (worker, timestep) does exactly one
     classifiable thing. *)
  List.iter check_sim_attrib
    [
      Sim.Batcher.default ~p:1;
      Sim.Batcher.default ~p:4;
      { (Sim.Batcher.default ~p:3) with Sim.Batcher.overhead = Sim.Batcher.No_setup };
      { (Sim.Batcher.default ~p:5) with
        Sim.Batcher.steal_policy = Sim.Batcher.Core_only;
        seed = 9 };
      { (Sim.Batcher.default ~p:4) with Sim.Batcher.launch_threshold = 4 };
    ]

let test_attrib_runtime_tiling () =
  (* Runtime buckets must tile each worker's observed span exactly:
     class segments are emitted back to back in integer nanoseconds.
     Conservation must hold under every batch-path mode — Par_combine
     in particular reclassifies recruited submitters' time as Wbatch —
     and every Batch_start event must carry the launching mode's tag. *)
  List.iter
    (fun mode ->
      let name = Runtime.Batcher_rt.mode_name mode in
      let p = 3 in
      let rc =
        Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers:p ()
      in
      let pool = Runtime.Pool.create ~recorder:rc ~num_workers:p () in
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~mode ~pool ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:300 (fun _ ->
              Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)));
      Runtime.Pool.teardown pool;
      let a = Obs.Attrib.of_recorder rc in
      (match Obs.Attrib.check a with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s runtime tiling: %s" name e);
      check (name ^ ": all workers accounted") p
        (Array.length a.Obs.Attrib.per_worker);
      check_bool (name ^ ": some core time") true
        (a.Obs.Attrib.total.Obs.Attrib.core > 0);
      check_bool (name ^ ": some batch time") true
        (a.Obs.Attrib.total.Obs.Attrib.batch > 0);
      check_bool (name ^ ": covered > 0") true (Obs.Attrib.total_covered a > 0);
      (* Runtime recordings have no trapped-worker wait or sim-style idle. *)
      check (name ^ ": no wait bucket") 0 a.Obs.Attrib.total.Obs.Attrib.wait;
      check (name ^ ": no idle bucket") 0 a.Obs.Attrib.total.Obs.Attrib.idle;
      let starts = ref 0 in
      List.iter
        (fun e ->
          match e.Obs.Recorder.kind with
          | Obs.Recorder.Batch_start { mode = m; _ } ->
              incr starts;
              check (name ^ ": batch_start mode tag")
                (Runtime.Batcher_rt.mode_code mode)
                m
          | _ -> ())
        (Obs.Recorder.all_events rc);
      check_bool (name ^ ": batches recorded") true (!starts > 0))
    Runtime.Batcher_rt.all_modes

let test_attrib_json () =
  let rc, m = run_recorded () in
  let a = Obs.Attrib.of_recorder rc in
  let j = roundtrip (Obs.Attrib.to_json a) in
  (match Obs.Json.member "total" j with
  | Some tot -> (
      match Obs.Json.member "batch" tot with
      | Some (Obs.Json.Int b) ->
          check "json batch bucket" m.Sim.Metrics.batch_work b
      | _ -> Alcotest.fail "attrib json missing total.batch")
  | None -> Alcotest.fail "attrib json missing total");
  match Obs.Json.member "per_worker" j with
  | Some (Obs.Json.List l) -> check "per-worker rows" 4 (List.length l)
  | _ -> Alcotest.fail "attrib json missing per_worker"

(* ---- critical path ---- *)

let test_critpath_sim () =
  let rc, m = run_recorded () in
  let cp = Obs.Critpath.of_recorder rc in
  check_bool "witness positive" true (cp.Obs.Critpath.t_inf_witness > 0);
  check_bool "witness <= makespan" true
    (cp.Obs.Critpath.t_inf_witness <= m.Sim.Metrics.makespan);
  let total_batches =
    Array.fold_left
      (fun acc c -> acc + c.Obs.Critpath.ch_batches)
      0 cp.Obs.Critpath.chains
  in
  check "chains see every batch" m.Sim.Metrics.batches total_batches;
  Array.iter
    (fun (c : Obs.Critpath.chain) ->
      check_bool "serial chain <= makespan" true
        (c.Obs.Critpath.ch_serial <= m.Sim.Metrics.makespan);
      check_bool "longest <= serial" true
        (c.Obs.Critpath.ch_longest <= c.Obs.Critpath.ch_serial))
    cp.Obs.Critpath.chains;
  (* top-k is sorted by decreasing length. *)
  let rec sorted = function
    | (a : Obs.Critpath.segment) :: (b :: _ as rest) ->
        a.Obs.Critpath.sg_len >= b.Obs.Critpath.sg_len && sorted rest
    | _ -> true
  in
  check_bool "top sorted" true (sorted cp.Obs.Critpath.top);
  check_bool "top bounded" true (List.length cp.Obs.Critpath.top <= 10)

(* ---- snapshots ---- *)

let test_snapshot_jsonl () =
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Timesteps ~workers:2 () in
  let path = Filename.temp_file "snap" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let s = Obs.Snapshot.to_file rc ~path in
      Obs.Recorder.emit_steal rc ~worker:0 ~time:1 ~victim:1 ~success:false
        ~batch_deque:false;
      Obs.Snapshot.sample ~time:1 s;
      Obs.Recorder.emit_steal rc ~worker:1 ~time:2 ~victim:0 ~success:true
        ~batch_deque:false;
      Obs.Recorder.emit_work rc ~worker:1 ~time:3 ~cls:Obs.Recorder.Wcore
        ~units:2;
      Obs.Snapshot.sample ~time:3 s;
      Obs.Snapshot.close s;
      (* Sampling after close must be a no-op, not a crash. *)
      Obs.Snapshot.sample ~time:4 s;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check "two lines" 2 (List.length lines);
      let parse l =
        match Obs.Json.parse l with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad snapshot line %S: %s" l e
      in
      let geti key j =
        match Option.bind (Obs.Json.member key j) Obs.Json.to_float_opt with
        | Some f -> int_of_float f
        | None -> Alcotest.failf "snapshot line missing %s" key
      in
      let l1 = parse (List.nth lines 0) and l2 = parse (List.nth lines 1) in
      check "seq 0" 0 (geti "seq" l1);
      check "seq 1" 1 (geti "seq" l2);
      check "t of sample 2" 3 (geti "t" l2);
      let steal j part =
        match Obs.Json.member part j with
        | Some p -> geti "steal" p
        | None -> Alcotest.failf "missing %s" part
      in
      check "totals after 1 steal" 1 (steal l1 "totals");
      check "totals after 2 steals" 2 (steal l2 "totals");
      check "delta is 1 new steal" 1 (steal l2 "deltas");
      let work j part =
        match Obs.Json.member part j with
        | Some p -> geti "work" p
        | None -> Alcotest.failf "missing %s" part
      in
      check "work delta" 1 (work l2 "deltas"))

(* ---- request-scoped span tracing (Reqtrace) ---- *)

let qcheck_reqtrace_reservoir =
  (* The slowest-K reservoir is exact, not probabilistic: after any
     offer stream, the merged readout is the true top-K of the stream.
     Latencies are compared as sorted multisets (ties may resolve to
     either token), and every returned token must map back to the
     latency it was offered with. *)
  QCheck.Test.make ~name:"Reqtrace reservoir equals exact top-K" ~count:300
    QCheck.(pair (1 -- 12) (small_list (0 -- 1000)))
    (fun (k, lats) ->
      let n = List.length lats in
      let rt =
        Obs.Reqtrace.create ~k ~workers:1 ~classes:1 ~capacity:(max 1 n) ()
      in
      List.iteri
        (fun i lat -> Obs.Reqtrace.offer rt ~worker:0 ~cls:0 ~token:i ~lat)
        lats;
      let got = Obs.Reqtrace.reservoir rt in
      let expect =
        List.filteri
          (fun i _ -> i < k)
          (List.sort (fun a b -> compare (b : int) a) lats)
      in
      List.map fst got = expect
      && List.for_all (fun (lat, tok) -> List.nth lats tok = lat) got)

let test_reqtrace_reservoir_concurrent () =
  (* Per-(worker, class) segments are single-writer, so concurrent
     offers from distinct domains need no synchronization — and must
     lose nothing: the merged readout is still the exact top-K of the
     union of all streams. *)
  let workers = 4 and n_per = 5_000 and k = 16 in
  let rt =
    Obs.Reqtrace.create ~k ~workers ~classes:1 ~capacity:(workers * n_per) ()
  in
  (* Deterministic well-mixed latencies; tokens partition by domain. *)
  let lat_of tok = tok * 2654435761 land 0x3FFFFFFF in
  let doms =
    List.init workers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to n_per - 1 do
              let tok = (w * n_per) + i in
              Obs.Reqtrace.offer rt ~worker:w ~cls:0 ~token:tok
                ~lat:(lat_of tok)
            done))
  in
  List.iter Domain.join doms;
  let all = Array.init (workers * n_per) lat_of in
  Array.sort (fun a b -> compare (b : int) a) all;
  let expect = Array.to_list (Array.sub all 0 k) in
  let got = Obs.Reqtrace.reservoir rt in
  Alcotest.(check (list int)) "concurrent top-K exact" expect (List.map fst got);
  List.iter
    (fun (lat, tok) ->
      check "reservoir token maps to its latency" (lat_of tok) lat)
    got

let test_reqtrace_hooks_no_alloc () =
  (* The enabled-but-unsampled capture path must be allocation-free:
     every hook is a handful of int-array stores plus the [@@noalloc]
     clock read, and on_done's reservoir insert shifts plain ints.
     sample_every is huge so no token is export-sampled — sampling
     must not change the capture cost (it only tags the readout). *)
  let n = 10_000 in
  let rt =
    Obs.Reqtrace.create ~sample_every:1_000_000 ~workers:1 ~classes:1
      ~capacity:n ()
  in
  Obs.Reqtrace.on_release rt ~token:0 ~arrive_ns:1 (* warm-up *);
  let before = Gc.minor_words () in
  for tok = 0 to n - 1 do
    Obs.Reqtrace.on_release rt ~token:tok ~arrive_ns:(tok + 1);
    Obs.Reqtrace.on_start rt ~token:tok ~cls:0 ~worker:0;
    Obs.Reqtrace.on_submit rt ~token:tok ~sid:0;
    Obs.Reqtrace.on_publish rt ~token:tok;
    Obs.Reqtrace.on_batch rt ~token:tok ~wait:0 ~exec:0 ~ovf:0 ~seen:1
      ~worker:0 ~mode:0;
    Obs.Reqtrace.on_done rt ~token:tok ~worker:0
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256. then
    Alcotest.failf "reqtrace hooks allocated %.0f minor words" delta;
  check "all completed" n (Obs.Reqtrace.completed rt);
  (match Obs.Reqtrace.check rt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The disabled instance and out-of-range tokens are free no-ops. *)
  let before = Gc.minor_words () in
  for tok = 0 to n - 1 do
    Obs.Reqtrace.on_start Obs.Reqtrace.null ~token:tok ~cls:0 ~worker:0;
    Obs.Reqtrace.on_done Obs.Reqtrace.null ~token:tok ~worker:0;
    Obs.Reqtrace.on_start rt ~token:(-1) ~cls:0 ~worker:0;
    Obs.Reqtrace.on_done rt ~token:(n + tok) ~worker:0
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256. then
    Alcotest.failf "null/untracked hooks allocated %.0f minor words" delta;
  check "null completed none" 0 (Obs.Reqtrace.completed Obs.Reqtrace.null);
  check "untracked tokens not counted" n (Obs.Reqtrace.completed rt)

let test_reqtrace_sim_spans () =
  (* record_sim is fully deterministic: phases are given, milestones
     derived, so spans, totals and shares are exact by hand. *)
  let rt = Obs.Reqtrace.create ~sample_every:2 ~workers:1 ~classes:3 ~capacity:4 () in
  Obs.Reqtrace.record_sim rt ~token:0 ~cls:1 ~sid:2 ~arrive_ns:100
    ~pending_ns:30 ~exec_ns:70 ~seen:3;
  Obs.Reqtrace.record_sim rt ~token:1 ~cls:0 ~sid:0 ~arrive_ns:150
    ~pending_ns:50 ~exec_ns:100 ~seen:1;
  (* token 3 never completes; span must be None and check unaffected *)
  (match Obs.Reqtrace.span rt 3 with
  | None -> ()
  | Some _ -> Alcotest.fail "incomplete token produced a span");
  (match Obs.Reqtrace.span rt 0 with
  | None -> Alcotest.fail "sim span missing"
  | Some s ->
      check "latency" 100 s.Obs.Reqtrace.latency_ns;
      check "queue zero on virtual clock" 0 s.Obs.Reqtrace.queue_ns;
      check "sched_pre zero" 0 s.Obs.Reqtrace.sched_pre_ns;
      check "pending" 30 s.Obs.Reqtrace.pending_ns;
      check "exec" 70 s.Obs.Reqtrace.exec_ns;
      check "sched_post residual zero" 0 s.Obs.Reqtrace.sched_post_ns;
      check "class" 1 s.Obs.Reqtrace.cls;
      check "sid" 2 s.Obs.Reqtrace.sid;
      check "lemma-2 figure" 3 s.Obs.Reqtrace.batches_seen;
      check_bool "token 0 sampled (mod 2)" true s.Obs.Reqtrace.sampled);
  (match Obs.Reqtrace.span rt 1 with
  | Some s -> check_bool "token 1 unsampled" false s.Obs.Reqtrace.sampled
  | None -> Alcotest.fail "span 1 missing");
  (match Obs.Reqtrace.check rt with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let tt = Obs.Reqtrace.totals rt in
  check "totals n" 2 tt.Obs.Reqtrace.n;
  check "totals latency" 250 tt.Obs.Reqtrace.t_latency;
  check "totals pending" 80 tt.Obs.Reqtrace.t_pending;
  check "totals exec" 170 tt.Obs.Reqtrace.t_exec;
  let sh = Obs.Reqtrace.shares tt in
  Alcotest.(check (float 1e-9)) "pending share" 0.32 (List.assoc "pending" sh);
  Alcotest.(check (float 1e-9)) "exec share" 0.68 (List.assoc "exec" sh);
  Alcotest.(check (float 1e-9))
    "disjoint shares sum to 1" 1.0
    (List.fold_left
       (fun acc name -> acc +. List.assoc name sh)
       0.0 Obs.Reqtrace.phase_names);
  (* per-class filtering *)
  let t1 = Obs.Reqtrace.totals ~cls:1 rt in
  check "class filter n" 1 t1.Obs.Reqtrace.n;
  check "class filter latency" 100 t1.Obs.Reqtrace.t_latency;
  match Obs.Reqtrace.slowest rt with
  | [ a; b ] ->
      check "slowest first is worse" 150 a.Obs.Reqtrace.latency_ns;
      check "slowest second" 100 b.Obs.Reqtrace.latency_ns
  | l -> Alcotest.failf "expected 2 slowest spans, got %d" (List.length l)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip and edge cases" `Quick test_json_roundtrip;
          Alcotest.test_case "float edge cases" `Quick test_json_float_edges;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "disabled is a free no-op" `Quick
            test_disabled_recorder_no_op;
          Alcotest.test_case "enabled hot path allocation-free" `Quick
            test_enabled_recorder_no_alloc;
          Alcotest.test_case "steals-suppressed stays truthful" `Quick
            test_steals_suppressed_summary;
          Alcotest.test_case "event readback" `Quick test_recorder_event_readback;
          Alcotest.test_case "clock mismatch rejected" `Quick
            test_recorder_clock_mismatch_rejected;
        ] );
      ( "sim",
        [
          Alcotest.test_case "summary matches metrics" `Quick
            test_sim_recording_matches_metrics;
          Alcotest.test_case "recording is observational" `Quick
            test_sim_unrecorded_run_unchanged;
          Alcotest.test_case "deterministic trace" `Quick test_sim_trace_deterministic;
        ] );
      ( "chrome",
        [ Alcotest.test_case "valid trace-event JSON" `Quick test_chrome_json_valid ] );
      ( "summary",
        [
          Alcotest.test_case "summary to_json" `Quick test_summary_json;
          Alcotest.test_case "percentile edges" `Quick
            test_histo_percentile_edges;
          Alcotest.test_case "percentile on truncated ring" `Quick
            test_histo_percentile_truncated_ring;
          QCheck_alcotest.to_alcotest qcheck_histo_merge;
        ] );
      ( "attrib",
        [
          Alcotest.test_case "work event readback" `Quick
            test_work_event_readback;
          Alcotest.test_case "sim conservation across configs" `Quick
            test_attrib_sim_conservation;
          Alcotest.test_case "runtime buckets tile spans" `Quick
            test_attrib_runtime_tiling;
          Alcotest.test_case "attrib to_json" `Quick test_attrib_json;
        ] );
      ( "critpath",
        [ Alcotest.test_case "witness and chains" `Quick test_critpath_sim ] );
      ( "snapshot",
        [ Alcotest.test_case "JSONL lines and deltas" `Quick test_snapshot_jsonl ] );
      ( "runtime",
        [ Alcotest.test_case "recording smoke" `Quick test_runtime_recording_smoke ] );
      ( "reqtrace",
        [
          QCheck_alcotest.to_alcotest qcheck_reqtrace_reservoir;
          Alcotest.test_case "concurrent reservoir loses nothing" `Quick
            test_reqtrace_reservoir_concurrent;
          Alcotest.test_case "hooks allocation-free" `Quick
            test_reqtrace_hooks_no_alloc;
          Alcotest.test_case "sim spans, totals, shares" `Quick
            test_reqtrace_sim_spans;
        ] );
    ]
