(* Tests for the real multicore runtime: Chase-Lev deque, the fork-join
   pool, and the BATCHER runtime. Worker counts are kept small: the test
   machine may have a single core, and correctness — not speedup — is
   what these tests establish. *)

let with_pool n f =
  let pool = Runtime.Pool.create ~num_workers:n () in
  Fun.protect ~finally:(fun () -> Runtime.Pool.teardown pool) (fun () -> f pool)

(* ---------- Wsdeque ---------- *)

let test_wsdeque_owner_lifo () =
  let d = Runtime.Wsdeque.create () in
  Runtime.Wsdeque.push d 1;
  Runtime.Wsdeque.push d 2;
  Runtime.Wsdeque.push d 3;
  Alcotest.(check (option int)) "pop" (Some 3) (Runtime.Wsdeque.pop d);
  Alcotest.(check (option int)) "steal" (Some 1) (Runtime.Wsdeque.steal d);
  Alcotest.(check (option int)) "pop" (Some 2) (Runtime.Wsdeque.pop d);
  Alcotest.(check (option int)) "empty pop" None (Runtime.Wsdeque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Runtime.Wsdeque.steal d)

let test_wsdeque_growth () =
  let d = Runtime.Wsdeque.create () in
  for i = 0 to 9999 do
    Runtime.Wsdeque.push d i
  done;
  Alcotest.(check int) "size" 10000 (Runtime.Wsdeque.size d);
  let ok = ref true in
  for i = 0 to 9999 do
    if Runtime.Wsdeque.steal d <> Some i then ok := false
  done;
  Alcotest.(check bool) "fifo across growth" true !ok

let test_wsdeque_concurrent_steals () =
  (* One owner pushes/pops, two thieves steal; every element must be
     taken exactly once. *)
  let d = Runtime.Wsdeque.create () in
  let n = 20_000 in
  let taken = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    taken.(i) <- Atomic.make 0
  done;
  let mark = function
    | Some i -> ignore (Atomic.fetch_and_add taken.(i) 1)
    | None -> Domain.cpu_relax ()
  in
  let stop = Atomic.make false in
  let thief () =
    while not (Atomic.get stop) do
      mark (Runtime.Wsdeque.steal d)
    done;
    (* Final drain. *)
    let rec go () =
      match Runtime.Wsdeque.steal d with
      | Some i ->
          mark (Some i);
          go ()
      | None -> ()
    in
    go ()
  in
  let t1 = Domain.spawn thief in
  let t2 = Domain.spawn thief in
  for i = 0 to n - 1 do
    Runtime.Wsdeque.push d i;
    if i mod 3 = 0 then mark (Runtime.Wsdeque.pop d)
  done;
  let rec drain () =
    match Runtime.Wsdeque.pop d with
    | Some i ->
        mark (Some i);
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Domain.join t1;
  Domain.join t2;
  let bad = ref 0 in
  Array.iter (fun a -> if Atomic.get a <> 1 then incr bad) taken;
  Alcotest.(check int) "each element taken exactly once" 0 !bad

let test_wsdeque_bursty_stress () =
  (* Bursty push/pop cycles force buffer growth AND index wraparound
     while two thieves steal continuously; every element must be taken
     exactly once across pop and steal. *)
  let d = Runtime.Wsdeque.create () in
  let rounds = 100 and burst = 300 in
  let n = rounds * burst in
  let taken = Array.init n (fun _ -> Atomic.make 0) in
  let mark = function
    | Some i -> ignore (Atomic.fetch_and_add taken.(i) 1)
    | None -> Domain.cpu_relax ()
  in
  let stop = Atomic.make false in
  let thief () =
    while not (Atomic.get stop) do
      mark (Runtime.Wsdeque.steal d)
    done;
    let rec go () =
      match Runtime.Wsdeque.steal d with
      | Some i ->
          mark (Some i);
          go ()
      | None -> ()
    in
    go ()
  in
  let t1 = Domain.spawn thief in
  let t2 = Domain.spawn thief in
  let next = ref 0 in
  for _ = 1 to rounds do
    for _ = 1 to burst do
      Runtime.Wsdeque.push d !next;
      incr next
    done;
    (* Drain about half back so the bottom index keeps wrapping. *)
    for _ = 1 to burst / 2 do
      mark (Runtime.Wsdeque.pop d)
    done
  done;
  (* Owner drains to empty: a pop returning [None] means either empty
     or the last element lost to a thief — in both cases nothing is
     left for the owner. *)
  let rec drain () =
    match Runtime.Wsdeque.pop d with
    | Some i ->
        mark (Some i);
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Domain.join t1;
  Domain.join t2;
  let bad = ref 0 in
  Array.iter (fun a -> if Atomic.get a <> 1 then incr bad) taken;
  Alcotest.(check int) "each element taken exactly once" 0 !bad;
  Alcotest.(check int) "deque empty" 0 (Runtime.Wsdeque.size d)

(* ---------- Pool ---------- *)

let test_pool_run_returns () =
  with_pool 2 (fun pool ->
      let r = Runtime.Pool.run pool (fun () -> 21 * 2) in
      Alcotest.(check int) "result" 42 r)

let test_pool_exceptions_propagate () =
  with_pool 2 (fun pool ->
      Alcotest.check_raises "raises" Exit (fun () ->
          Runtime.Pool.run pool (fun () -> raise Exit)))

let test_pool_fork_join () =
  with_pool 3 (fun pool ->
      let a, b =
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.fork_join pool (fun () -> 1 + 1) (fun () -> "x" ^ "y"))
      in
      Alcotest.(check int) "left" 2 a;
      Alcotest.(check string) "right" "xy" b)

let test_pool_fib () =
  with_pool 3 (fun pool ->
      let rec fib n =
        if n < 2 then n
        else begin
          let a, b = Runtime.Pool.fork_join pool (fun () -> fib (n - 1)) (fun () -> fib (n - 2)) in
          a + b
        end
      in
      let r = Runtime.Pool.run pool (fun () -> fib 15) in
      Alcotest.(check int) "fib 15" 610 r)

let test_pool_parallel_for () =
  with_pool 4 (fun pool ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1));
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_pool_parallel_for_empty () =
  with_pool 2 (fun pool ->
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "no body")))

let test_pool_nested_async () =
  with_pool 3 (fun pool ->
      let r =
        Runtime.Pool.run pool (fun () ->
            let ps =
              List.init 10 (fun i ->
                  Runtime.Pool.async pool (fun () ->
                      let q = Runtime.Pool.async pool (fun () -> i * i) in
                      Runtime.Pool.await pool q + 1))
            in
            List.fold_left (fun acc p -> acc + Runtime.Pool.await pool p) 0 ps)
      in
      Alcotest.(check int) "sum of i^2+1" (285 + 10) r)

let test_pool_await_exception () =
  with_pool 2 (fun pool ->
      Alcotest.check_raises "await re-raises" Exit (fun () ->
          Runtime.Pool.run pool (fun () ->
              let p = Runtime.Pool.async pool (fun () -> raise Exit) in
              Runtime.Pool.await pool p)))

let test_pool_prefix_sums () =
  with_pool 4 (fun pool ->
      let a = Array.init 1000 (fun i -> (i mod 7) - 3) in
      let expected = Util.Prefix_sum.inclusive a in
      let got = Runtime.Pool.run pool (fun () -> Runtime.Pool.parallel_prefix_sums pool a) in
      Alcotest.(check (array int)) "matches sequential" expected got)

let test_pool_parallel_map () =
  with_pool 3 (fun pool ->
      let a = Array.init 1000 Fun.id in
      let got = Runtime.Pool.run pool (fun () -> Runtime.Pool.parallel_map pool (fun x -> x * x) a) in
      Alcotest.(check (array int)) "squares" (Array.map (fun x -> x * x) a) got;
      let empty =
        Runtime.Pool.run pool (fun () -> Runtime.Pool.parallel_map pool (fun x -> x * x) [||])
      in
      Alcotest.(check (array int)) "empty" [||] empty)

let test_pool_map_reduce () =
  with_pool 3 (fun pool ->
      let a = Array.init 10_000 (fun i -> i + 1) in
      let total =
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.map_reduce pool ~map:Fun.id ~combine:( + ) ~init:0 a)
      in
      Alcotest.(check int) "sum 1..n" (10_000 * 10_001 / 2) total;
      let max_sq =
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.map_reduce pool ~grain:7 ~map:(fun x -> x * x) ~combine:max
              ~init:min_int a)
      in
      Alcotest.(check int) "max of squares" (10_000 * 10_000) max_sq;
      let empty =
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.map_reduce pool ~map:Fun.id ~combine:( + ) ~init:42 [||])
      in
      Alcotest.(check int) "empty gives init" 42 empty)

let test_pool_single_worker () =
  with_pool 1 (fun pool ->
      let r =
        Runtime.Pool.run pool (fun () ->
            let acc = ref 0 in
            Runtime.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> acc := !acc + i);
            !acc)
      in
      Alcotest.(check int) "sum" 4950 r)

let test_pool_reuse () =
  with_pool 2 (fun pool ->
      for i = 1 to 5 do
        let r = Runtime.Pool.run pool (fun () -> i * 10) in
        Alcotest.(check int) "reused run" (i * 10) r
      done)

(* ---------- Batcher_rt ---------- *)

let test_batcher_rt_counter () =
  with_pool 4 (fun pool ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~pool ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      let n = 500 in
      let results = Array.make n 0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              let op = Batched.Counter.op 1 in
              Runtime.Batcher_rt.batchify b op;
              results.(i) <- op.Batched.Counter.result));
      Alcotest.(check int) "final value" n (Batched.Counter.value counter);
      (* Linearizable counter: the returned values are a permutation of 1..n. *)
      let sorted = Array.copy results in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "results are 1..n" (Array.init n (fun i -> i + 1)) sorted;
      let st = Runtime.Batcher_rt.stats b in
      Alcotest.(check int) "all ops batched" n st.Runtime.Batcher_rt.ops;
      Alcotest.(check bool) "batch cap respected" true
        (st.Runtime.Batcher_rt.max_batch <= Runtime.Pool.num_workers pool))

let test_batcher_rt_skiplist () =
  with_pool 3 (fun pool ->
      let sl = Batched.Skiplist.create () in
      (* The BOP's search phase really runs on the pool. *)
      let pfor pool n body =
        Runtime.Pool.parallel_for pool ~grain:4 ~lo:0 ~hi:n body
      in
      let b =
        Runtime.Batcher_rt.create ~pool ~state:sl
          ~run_batch:(fun pool st ops ->
            Batched.Skiplist.run_batch_with ~pfor:(pfor pool) st ops)
          ()
      in
      let n = 300 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              Runtime.Batcher_rt.batchify b (Batched.Skiplist.insert i)));
      Alcotest.(check int) "all inserted" n (Batched.Skiplist.length sl);
      Batched.Skiplist.check_invariants sl;
      Alcotest.(check (list int)) "sorted 0..n-1" (List.init n Fun.id)
        (Batched.Skiplist.to_list sl))

let test_batcher_rt_batch_cap_option () =
  with_pool 4 (fun pool ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~batch_cap:2 ~pool ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:100 (fun _ ->
              Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)));
      let st = Runtime.Batcher_rt.stats b in
      Alcotest.(check bool) "cap 2 respected" true (st.Runtime.Batcher_rt.max_batch <= 2);
      Alcotest.(check int) "value" 100 (Batched.Counter.value counter))

let test_batcher_rt_parallel_bop () =
  (* A BOP that itself uses the pool's parallelism. *)
  with_pool 4 (fun pool ->
      let counter = Batched.Counter.create () in
      let run_batch pool (st : Batched.Counter.t) (ops : Batched.Counter.op array) =
        let amounts = Array.map (fun (o : Batched.Counter.op) -> o.Batched.Counter.amount) ops in
        let sums = Runtime.Pool.parallel_prefix_sums pool amounts in
        let base = Batched.Counter.value st in
        Runtime.Pool.parallel_for pool ~lo:0 ~hi:(Array.length ops) (fun i ->
            ops.(i).Batched.Counter.result <- base + sums.(i));
        ignore (Batched.Counter.increment_seq st (if Array.length sums = 0 then 0 else sums.(Array.length sums - 1)))
      in
      let b = Runtime.Batcher_rt.create ~pool ~state:counter ~run_batch () in
      let n = 200 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun _ ->
              Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)));
      Alcotest.(check int) "final value" n (Batched.Counter.value counter))

let test_batcher_rt_multiple_structures () =
  (* Three implicitly batched structures driven from one parallel
     program, with nested parallelism — the composition Theorem 1 prices
     per structure, exercised end to end on real domains. *)
  with_pool 4 (fun pool ->
      let counter = Batched.Counter.create () in
      let counter_b =
        Runtime.Batcher_rt.create ~pool ~state:counter
          ~run_batch:(fun _p st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      let sl = Batched.Skiplist.create () in
      let sl_b =
        Runtime.Batcher_rt.create ~pool ~state:sl
          ~run_batch:(fun _p st ops -> Batched.Skiplist.run_batch st ops)
          ()
      in
      let ht = Batched.Hashtable.create () in
      let ht_b =
        Runtime.Batcher_rt.create ~pool ~state:ht
          ~run_batch:(fun _p st ops -> Batched.Hashtable.run_batch st ops)
          ()
      in
      let n = 300 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              Runtime.Batcher_rt.batchify counter_b (Batched.Counter.op 1);
              Runtime.Batcher_rt.batchify sl_b (Batched.Skiplist.insert i);
              Runtime.Batcher_rt.batchify ht_b
                (Batched.Hashtable.insert ~key:i ~value:(i * 2))));
      Alcotest.(check int) "counter" n (Batched.Counter.value counter);
      Alcotest.(check int) "skiplist" n (Batched.Skiplist.length sl);
      Batched.Skiplist.check_invariants sl;
      Alcotest.(check int) "hashtable" n (Batched.Hashtable.length ht);
      Batched.Hashtable.check_invariants ht;
      Alcotest.(check (option int)) "hashtable value" (Some 42)
        (Batched.Hashtable.lookup_seq ht 21))

let test_batcher_rt_sp_order () =
  (* The SP-order structure behind the batcher, as in the race-detection
     example, checked for fork-relation correctness after parallel use. *)
  with_pool 3 (fun pool ->
      let sp, root = Batched.Sp_order.create () in
      let b =
        Runtime.Batcher_rt.create ~pool ~state:sp
          ~run_batch:(fun _p sp ops -> Batched.Sp_order.run_batch sp ops)
          ()
      in
      let forks = 64 in
      let results = Array.make forks None in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:forks (fun i ->
              let op = Batched.Sp_order.fork_op root in
              Runtime.Batcher_rt.batchify b op;
              match op with
              | Batched.Sp_order.Fork r -> results.(i) <- Some r
              | Batched.Sp_order.Precedes _ -> assert false));
      Batched.Sp_order.check_invariants sp;
      Array.iter
        (function
          | None -> Alcotest.fail "missing fork result"
          | Some r -> begin
              match r.Batched.Sp_order.left, r.Batched.Sp_order.right with
              | Some l, Some rr ->
                  Alcotest.(check bool) "siblings parallel" true
                    (Batched.Sp_order.parallel_seq sp l rr)
              | _ -> Alcotest.fail "fork record not filled"
            end)
        results)

let test_batcher_rt_randomized_stress () =
  (* Randomized mix of stack pushes/pops through the batcher from a
     parallel loop, checked against the multiset of surviving values. *)
  let rng = Util.Rng.create ~seed:2024 in
  for _round = 1 to 3 do
    with_pool 3 (fun pool ->
        let st = Batched.Stack.create () in
        let b =
          Runtime.Batcher_rt.create ~pool ~state:st
            ~run_batch:(fun _p s ops -> Batched.Stack.run_batch s ops)
            ()
        in
        let n = 200 + Util.Rng.int rng 200 in
        let pushes = Atomic.make 0 in
        let pops_hit = Atomic.make 0 in
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
                if i land 3 <> 0 then begin
                  Runtime.Batcher_rt.batchify b (Batched.Stack.push i);
                  ignore (Atomic.fetch_and_add pushes 1)
                end
                else begin
                  let op = Batched.Stack.pop () in
                  Runtime.Batcher_rt.batchify b op;
                  match op with
                  | Batched.Stack.Pop { popped = Some _ } ->
                      ignore (Atomic.fetch_and_add pops_hit 1)
                  | _ -> ()
                end));
        (* Conservation: size = pushes - successful pops. *)
        Alcotest.(check int) "stack size conserved"
          (Atomic.get pushes - Atomic.get pops_hit)
          (Batched.Stack.size st))
  done

let test_batcher_rt_atomic_list_legacy () =
  (* The seed's CAS-list submission path stays behind the [mode] flag
     for before/after benchmarking; it must remain correct. *)
  with_pool 3 (fun pool ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~mode:Runtime.Batcher_rt.Atomic_list ~pool
          ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      let n = 300 in
      let results = Array.make n 0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              let op = Batched.Counter.op 1 in
              Runtime.Batcher_rt.batchify b op;
              results.(i) <- op.Batched.Counter.result));
      Alcotest.(check int) "final value" n (Batched.Counter.value counter);
      let sorted = Array.copy results in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "results are 1..n"
        (Array.init n (fun i -> i + 1))
        sorted;
      let st = Runtime.Batcher_rt.stats b in
      Alcotest.(check int) "all ops batched" n st.Runtime.Batcher_rt.ops)

let test_batcher_rt_fifo_fairness () =
  (* Regression for the ROADMAP starvation finding: under sustained
     over-cap load the seed's LIFO list admitted newest-first and a
     parked op sat through up to 41 launches. The pending-array path
     admits oldest-first, so with [tasks] concurrent submitters and cap
     2, no op can be overtaken by more than the ops already pending —
     batches-while-pending stays bounded by a small constant. *)
  let workers = 3 in
  let rc = Obs.Recorder.create ~clock:Obs.Recorder.Nanoseconds ~workers () in
  let pool = Runtime.Pool.create ~recorder:rc ~num_workers:workers () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~batch_cap:2 ~pool ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      let tasks = 12 and rounds = 25 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:tasks (fun _ ->
              for _ = 1 to rounds do
                Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)
              done));
      Alcotest.(check int) "value" (tasks * rounds)
        (Batched.Counter.value counter));
  let s = Obs.Summary.of_recorder rc in
  Alcotest.(check int) "ops recorded" 300 s.Obs.Summary.ops;
  (* At most [tasks = 12] ops are ever pending (each task submits
     sequentially); FIFO admission at cap 2 clears all of them within
     ceil(12/2) = 6 launches, so with slack for stragglers displaced
     across a drain epoch the bound stays far below the LIFO figure. *)
  Alcotest.(check bool)
    (Printf.sprintf "max batches-while-pending O(1), got %d"
       s.Obs.Summary.max_batches_seen)
    true
    (s.Obs.Summary.max_batches_seen <= 10)

(* ---------- batch-path modes ---------- *)

(* A batched "structure" whose batch log records admission order: the
   BOP appends each record's payload in ops-array order. Invariant 1
   (one batch in flight) is what makes the unsynchronized ref sound —
   exactly the guarantee the modes must preserve. *)
let with_log_batcher ?(on_batch = fun () -> ()) ~workers ~batch_cap ~mode f =
  with_pool workers (fun pool ->
      let log = ref [] in
      let b =
        Runtime.Batcher_rt.create ~batch_cap ~mode ~pool ~state:()
          ~run_batch:(fun _p () ops ->
            on_batch ();
            Array.iter (fun id -> log := id :: !log) ops)
          ()
      in
      f pool b (fun () -> List.rev !log))

let check_exactly_once ~n admitted =
  Alcotest.(check (list int))
    "every record admitted exactly once (none lost, none duplicated)"
    (List.init n Fun.id)
    (List.sort compare admitted)

let rec ascending = function
  | a :: (b :: _ as tl) -> a < b && ascending tl
  | _ -> true

let test_batcher_rt_overflow_fifo_single_worker () =
  (* Overflow-queue FIFO, deterministically: one worker, cap 2, 100
     grain-1 submitters. Every submission beyond the slots goes through
     the overflow queue while a batch is in flight, and with a single
     worker the publication order equals our issue counter. The three
     array modes must admit in exactly issue order across consecutive
     launches (slots drain before the reversed back stack, and a
     displaced record keeps its queue position); Atomic_list is LIFO by
     construction, so it only owes exactly-once. *)
  List.iter
    (fun mode ->
      with_log_batcher ~workers:1 ~batch_cap:2 ~mode
        (fun pool b admitted ->
          let n = 100 in
          let issue = Atomic.make 0 in
          let order = Array.make n (-1) in
          Runtime.Pool.run pool (fun () ->
              Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
                  order.(i) <- Atomic.fetch_and_add issue 1;
                  Runtime.Batcher_rt.batchify b i));
          let admitted = admitted () in
          check_exactly_once ~n admitted;
          let st = Runtime.Batcher_rt.stats b in
          if mode <> Runtime.Batcher_rt.Atomic_list then
            Alcotest.(check bool)
              (Printf.sprintf "%s: admission follows issue order"
                 (Runtime.Batcher_rt.mode_name mode))
              true
              (ascending (List.map (fun id -> order.(id)) admitted));
          Alcotest.(check int) "all ops counted" n st.Runtime.Batcher_rt.ops))
    Runtime.Batcher_rt.all_modes

let test_batcher_rt_overflow_displacement_race () =
  (* The racy half of the overflow story: 3 workers hammering a cap-2
     batcher, so slot displacement (Worker_id/Par_combine: occupied
     worker slot; Faa_array: over-cap tickets) and the overflow queue
     race with concurrent launches. Exactly-once admission is the
     safety property every interleaving must preserve. *)
  List.iter
    (fun mode ->
      let n = 300 in
      (* Throttle each batch until three submitters past the batch's
         entry point have arrived (or the workload is exhausted):
         against cap 2 — and three per-worker slots fed by the two
         non-launching workers — three concurrent pending records
         guarantee a displacement into the overflow queue by
         pigeonhole, making the racy path deterministic to reach
         without fixing any particular interleaving. *)
      let entered = Atomic.make 0 in
      let on_batch () =
        let want = min n (Atomic.get entered + 3) in
        while Atomic.get entered < want do
          Domain.cpu_relax ()
        done
      in
      with_log_batcher ~on_batch ~workers:3 ~batch_cap:2 ~mode
        (fun pool b admitted ->
          Runtime.Pool.run pool (fun () ->
              Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
                  Atomic.incr entered;
                  Runtime.Batcher_rt.batchify b i));
          check_exactly_once ~n (admitted ());
          let st = Runtime.Batcher_rt.stats b in
          Alcotest.(check int)
            (Runtime.Batcher_rt.mode_name mode ^ ": ops")
            n st.Runtime.Batcher_rt.ops;
          (* Atomic_list has no overflow queue; for the array modes,
             300 grain-1 submitters against cap 2 make the queue's
             displacement path essentially certain to fire. *)
          if mode <> Runtime.Batcher_rt.Atomic_list then
            Alcotest.(check bool)
              (Printf.sprintf "%s: overflow exercised (ovf=%d)"
                 (Runtime.Batcher_rt.mode_name mode)
                 st.Runtime.Batcher_rt.ovf)
              true
              (st.Runtime.Batcher_rt.ovf > 0)))
    Runtime.Batcher_rt.all_modes

let test_batcher_rt_worker_id_migration () =
  (* Worker_id re-reads the worker index at each publication, so a task
     resumed on a different worker after its previous op publishes into
     the new worker's slot. Repeated submit rounds from more tasks than
     workers force exactly that suspension/resume churn; linearizable
     results across all rounds are the witness that no slot write went
     to a stale index (the submit-path assert guards the bound). *)
  with_pool 3 (fun pool ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~batch_cap:2 ~mode:Runtime.Batcher_rt.Worker_id
          ~pool ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      let tasks = 12 and rounds = 25 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:tasks (fun _ ->
              for _ = 1 to rounds do
                Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)
              done));
      Alcotest.(check int) "value" (tasks * rounds)
        (Batched.Counter.value counter);
      let st = Runtime.Batcher_rt.stats b in
      Alcotest.(check int) "ops" (tasks * rounds) st.Runtime.Batcher_rt.ops)

let test_batcher_rt_par_combine_recruitment () =
  (* Par_combine with a cap far above the combining grain: batches
     larger than [combine_grain] split into sub-ranges executed by
     recruited blocked submitters, and the last finisher runs the
     epilogue (stamp, flag release, relaunch trampoline). Distinct
     results 1..n prove each record was stamped and resumed exactly
     once across the recruited sub-ranges. *)
  with_pool 3 (fun pool ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~batch_cap:64
          ~mode:Runtime.Batcher_rt.Par_combine ~pool ~state:counter
          ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      let n = 512 in
      let results = Array.make n 0 in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
              let op = Batched.Counter.op 1 in
              Runtime.Batcher_rt.batchify b op;
              results.(i) <- op.Batched.Counter.result));
      Alcotest.(check int) "final value" n (Batched.Counter.value counter);
      let sorted = Array.copy results in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "results are 1..n"
        (Array.init n (fun i -> i + 1))
        sorted)

let test_batcher_rt_modes_parallel_bop () =
  (* Every mode must keep Invariant 1 strongly enough that a BOP using
     the pool's own parallel_for stays safe — Par_combine in particular
     runs the BOP inside a submitter's suspension context, where an
     unhandled-effect bug would surface immediately. *)
  List.iter
    (fun mode ->
      with_pool 3 (fun pool ->
          let sl = Batched.Skiplist.create () in
          let pfor pool n body =
            Runtime.Pool.parallel_for pool ~grain:4 ~lo:0 ~hi:n body
          in
          let b =
            Runtime.Batcher_rt.create ~mode ~pool ~state:sl
              ~run_batch:(fun pool st ops ->
                Batched.Skiplist.run_batch_with ~pfor:(pfor pool) st ops)
              ()
          in
          let n = 128 in
          Runtime.Pool.run pool (fun () ->
              Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
                  Runtime.Batcher_rt.batchify b (Batched.Skiplist.insert i)));
          let name = Runtime.Batcher_rt.mode_name mode in
          Alcotest.(check int) (name ^ ": all inserted") n
            (Batched.Skiplist.length sl);
          Batched.Skiplist.check_invariants sl;
          Alcotest.(check (list int))
            (name ^ ": sorted 0..n-1")
            (List.init n Fun.id)
            (Batched.Skiplist.to_list sl)))
    Runtime.Batcher_rt.all_modes

let test_pool_backoff_config () =
  (* Extreme idle policies — pure spin and sleep-almost-immediately
     with one steal probe per round — must not affect results. *)
  let open Runtime.Pool in
  let configs =
    [
      { default_backoff with spin_limit = 1_000_000; burst_limit = 1_000_000 };
      {
        default_backoff with
        spin_limit = 1;
        burst_limit = 2;
        sleep_min = 0.000_01;
        steal_tries = 1;
      };
    ]
  in
  List.iter
    (fun backoff ->
      let pool = create ~backoff ~num_workers:3 () in
      Fun.protect
        ~finally:(fun () -> teardown pool)
        (fun () ->
          let counter = Batched.Counter.create () in
          let b =
            Runtime.Batcher_rt.create ~pool ~state:counter
              ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
              ()
          in
          let n = 120 in
          let acc = Atomic.make 0 in
          run pool (fun () ->
              parallel_for pool ~grain:1 ~lo:0 ~hi:n (fun i ->
                  ignore (Atomic.fetch_and_add acc i);
                  Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)));
          Alcotest.(check int) "parallel_for sum" (n * (n - 1) / 2)
            (Atomic.get acc);
          Alcotest.(check int) "batched value" n (Batched.Counter.value counter)))
    configs

(* [with_pool] guards every test above with Fun.protect; this pins down
   that the guard actually works — teardown runs when the computation
   raises, the exception still propagates, and the runtime stays healthy
   enough to spin up and use a fresh pool afterwards (the domains of the
   failed pool were joined, not leaked). *)
let test_pool_teardown_under_exception () =
  (match
     with_pool 3 (fun pool ->
         Runtime.Pool.run pool (fun () ->
             ignore (Runtime.Pool.num_workers pool);
             failwith "boom"))
   with
  | () -> Alcotest.fail "expected the exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "reraised" "boom" msg);
  let total =
    with_pool 2 (fun pool ->
        Runtime.Pool.run pool (fun () ->
            let acc = Atomic.make 0 in
            Runtime.Pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
                ignore (Atomic.fetch_and_add acc i));
            Atomic.get acc))
  in
  Alcotest.(check int) "fresh pool still works" 4950 total

(* Sharded extension of the teardown-under-exception regression: the
   computation blows up while shard 0 has a batch in flight (its BOP is
   mid-sleep on a worker) and shard 1 holds parked overflow ops (cap 1:
   one op launched, the rest queued behind the flag). Teardown must
   still join every domain, the exception must win the race, and the
   runtime must stay healthy enough to run fresh sharded work. *)
let test_shard_rt_teardown_in_flight () =
  (match
     with_pool 3 (fun pool ->
         let rt =
           Runtime.Shard_rt.create ~batch_cap:1 ~pool ~shards:2
             ~state:(fun _ -> Batched.Counter.create ())
             ~run_batch:(fun _pool st ops ->
               Unix.sleepf 0.02;
               Batched.Counter.run_batch st ops)
             ()
         in
         Runtime.Pool.run pool (fun () ->
             Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:6 (fun i ->
                 if i = 5 then begin
                   (* Let the submitters park and the BOPs start their
                      service sleeps before blowing up underneath them. *)
                   Unix.sleepf 0.005;
                   failwith "shard-boom"
                 end
                 else
                   Runtime.Shard_rt.batchify rt ~shard:(i land 1)
                     (Batched.Counter.op 1))))
   with
  | () -> Alcotest.fail "expected the exception to propagate"
  | exception Failure msg ->
      Alcotest.(check string) "reraised" "shard-boom" msg);
  let total =
    with_pool 2 (fun pool ->
        let rt =
          Runtime.Shard_rt.create ~pool ~shards:2
            ~state:(fun _ -> Batched.Counter.create ())
            ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
            ()
        in
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:40 (fun i ->
                Runtime.Shard_rt.batchify rt
                  ~shard:(Batched.Shard.route ~shards:2 i)
                  (Batched.Counter.op 1)));
        Batched.Counter.value (Runtime.Shard_rt.state rt 0)
        + Batched.Counter.value (Runtime.Shard_rt.state rt 1))
  in
  Alcotest.(check int) "fresh pool runs sharded work" 40 total

let () =
  Alcotest.run "runtime"
    [
      ( "wsdeque",
        [
          Alcotest.test_case "owner lifo" `Quick test_wsdeque_owner_lifo;
          Alcotest.test_case "growth" `Quick test_wsdeque_growth;
          Alcotest.test_case "concurrent steals" `Slow test_wsdeque_concurrent_steals;
          Alcotest.test_case "bursty stress" `Slow test_wsdeque_bursty_stress;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run returns" `Quick test_pool_run_returns;
          Alcotest.test_case "exceptions" `Quick test_pool_exceptions_propagate;
          Alcotest.test_case "fork_join" `Quick test_pool_fork_join;
          Alcotest.test_case "fib" `Quick test_pool_fib;
          Alcotest.test_case "parallel_for" `Quick test_pool_parallel_for;
          Alcotest.test_case "parallel_for empty" `Quick test_pool_parallel_for_empty;
          Alcotest.test_case "nested async" `Quick test_pool_nested_async;
          Alcotest.test_case "await exception" `Quick test_pool_await_exception;
          Alcotest.test_case "prefix sums" `Quick test_pool_prefix_sums;
          Alcotest.test_case "parallel_map" `Quick test_pool_parallel_map;
          Alcotest.test_case "map_reduce" `Quick test_pool_map_reduce;
          Alcotest.test_case "single worker" `Quick test_pool_single_worker;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "backoff config" `Quick test_pool_backoff_config;
          Alcotest.test_case "teardown under exception" `Quick
            test_pool_teardown_under_exception;
        ] );
      ( "batcher_rt",
        [
          Alcotest.test_case "counter linearizable" `Quick test_batcher_rt_counter;
          Alcotest.test_case "legacy atomic-list path" `Quick
            test_batcher_rt_atomic_list_legacy;
          Alcotest.test_case "fifo fairness under over-cap load" `Quick
            test_batcher_rt_fifo_fairness;
          Alcotest.test_case "skiplist" `Quick test_batcher_rt_skiplist;
          Alcotest.test_case "batch cap" `Quick test_batcher_rt_batch_cap_option;
          Alcotest.test_case "parallel BOP" `Quick test_batcher_rt_parallel_bop;
          Alcotest.test_case "three structures at once" `Quick
            test_batcher_rt_multiple_structures;
          Alcotest.test_case "sp-order under parallelism" `Quick test_batcher_rt_sp_order;
          Alcotest.test_case "randomized stress" `Slow test_batcher_rt_randomized_stress;
          Alcotest.test_case "overflow fifo, single worker, all modes" `Quick
            test_batcher_rt_overflow_fifo_single_worker;
          Alcotest.test_case "overflow displacement race, all modes" `Slow
            test_batcher_rt_overflow_displacement_race;
          Alcotest.test_case "worker-id slot under task migration" `Quick
            test_batcher_rt_worker_id_migration;
          Alcotest.test_case "par-combine recruitment" `Quick
            test_batcher_rt_par_combine_recruitment;
          Alcotest.test_case "parallel BOP under all modes" `Slow
            test_batcher_rt_modes_parallel_bop;
          Alcotest.test_case "sharded teardown with batch in flight" `Quick
            test_shard_rt_teardown_in_flight;
        ] );
    ]
