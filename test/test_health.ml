(* Health-monitoring layer: online invariant checkers, heartbeat/stall
   watchdog, phase-latency SLOs, and the flight recorder.

   The mutation tests are the teeth: each checker is fed a seeded
   violation (a double launch, an oversized batch, a fabricated
   collection, a starving op, a frozen structure) and must fire —
   a checker that cannot catch its own bug class is decoration. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let viol inv c =
  (Obs.Invariants.violations inv).(Obs.Recorder.check_code c)

let exact ?recorder ?(lemma2_bound = 2) ?(structures = 2) () =
  Obs.Invariants.create ?recorder ~lemma2_bound ~structures ()

(* ---- mutation tests: every checker fires on its seeded bug ---- *)

let test_inv1_fires () =
  let inv = exact () in
  (* Two batches of structure 0 in flight at once. *)
  Obs.Invariants.op_submitted inv ~sid:0;
  Obs.Invariants.op_submitted inv ~sid:0;
  Obs.Invariants.batch_started inv ~worker:0 ~time:1 ~sid:0 ~size:1 ~cap:4;
  Obs.Invariants.batch_started inv ~worker:1 ~time:2 ~sid:0 ~size:1 ~cap:4;
  check "inv1 fired" 1 (viol inv Obs.Recorder.Inv1);
  (* Ends audit too: with 2 in flight the first end sees an impossible
     count (fire), the second is the 1 -> 0 step (clean), and a third,
     unmatched end fires again. *)
  Obs.Invariants.batch_ended inv ~worker:0 ~time:3 ~sid:0;
  Obs.Invariants.batch_ended inv ~worker:1 ~time:4 ~sid:0;
  Obs.Invariants.batch_ended inv ~worker:1 ~time:5 ~sid:0;
  check "ends audited" 3 (viol inv Obs.Recorder.Inv1);
  check "only inv1" 3 (Obs.Invariants.total_violations inv)

let test_inv2_fires () =
  let inv = exact () in
  for _ = 1 to 5 do
    Obs.Invariants.op_submitted inv ~sid:1
  done;
  (* Size over the declared cap. *)
  Obs.Invariants.batch_started inv ~worker:0 ~time:1 ~sid:1 ~size:5 ~cap:4;
  check "inv2 fired" 1 (viol inv Obs.Recorder.Inv2);
  check "inv1 clean" 0 (viol inv Obs.Recorder.Inv1);
  Obs.Invariants.batch_ended inv ~worker:0 ~time:2 ~sid:1;
  check "no extra" 1 (Obs.Invariants.total_violations inv)

let test_inv3_fires () =
  let inv = exact () in
  (* Collect 3 ops when only 1 was ever submitted: the pending balance
     would go negative — an op was fabricated or collected twice. *)
  Obs.Invariants.op_submitted inv ~sid:0;
  Obs.Invariants.batch_started inv ~worker:0 ~time:1 ~sid:0 ~size:3 ~cap:4;
  check "inv3 fired" 1 (viol inv Obs.Recorder.Inv3);
  Obs.Invariants.batch_ended inv ~worker:0 ~time:2 ~sid:0;
  (* The balance carries the deficit (now -2); once enough genuine
     submissions restore it, collection is clean again. *)
  for _ = 1 to 5 do
    Obs.Invariants.op_submitted inv ~sid:0
  done;
  Obs.Invariants.batch_started inv ~worker:0 ~time:3 ~sid:0 ~size:3 ~cap:4;
  Obs.Invariants.batch_ended inv ~worker:0 ~time:4 ~sid:0;
  check "no new fire once balanced" 1 (viol inv Obs.Recorder.Inv3)

let test_lemma2_fires () =
  let inv = exact ~lemma2_bound:2 () in
  Obs.Invariants.op_completed inv ~worker:0 ~time:1 ~sid:0 ~batches_seen:2;
  check "at bound: clean" 0 (viol inv Obs.Recorder.Lemma2);
  Obs.Invariants.op_completed inv ~worker:0 ~time:2 ~sid:0 ~batches_seen:3;
  check "over bound: fired" 1 (viol inv Obs.Recorder.Lemma2)

let test_stall_counter_fires () =
  let inv = exact () in
  let hl =
    Obs.Health.create ~invariants:inv ~stall_ns:1_000_000_000 ~workers:1
      ~structures:2 ()
  in
  Obs.Health.op_issued hl ~sid:1;
  (* Well within the threshold: no episode. *)
  Obs.Health.check_stalls ~now:(Obs.Clock.now_ns ()) hl;
  check "no premature stall" 0 (Obs.Health.stall_count hl);
  (* Far past it: one episode, folded into the invariant counters. *)
  let later = Obs.Clock.now_ns () + 10_000_000_000 in
  Obs.Health.check_stalls ~now:later hl;
  check "stall episode" 1 (Obs.Health.stall_count hl);
  check "stall counter" 1 (viol inv Obs.Recorder.Stall);
  (* The episode is open: re-checking does not double-count. *)
  Obs.Health.check_stalls ~now:(later + 1_000_000) hl;
  check "episode not re-counted" 1 (Obs.Health.stall_count hl);
  (* A launch closes the episode; a fresh freeze opens a new one. *)
  Obs.Health.batch_collected hl ~sid:1 ~size:0;
  Obs.Health.op_issued hl ~sid:1;
  Obs.Health.check_stalls ~now:(later + 20_000_000_000) hl;
  check "new episode after launch" 2 (Obs.Health.stall_count hl)

(* The dedicated watchdog tick: before it, a stall was only noticed at
   the next snapshot sample, so detection latency was stall_ns + the
   sampler interval (50-100 ms in the soak configs). The tick domain
   bounds it by stall_ns + tick_s independent of any sampler. Seed a
   frozen structure and pin the new bound end to end, with slack for
   scheduling noise on a loaded CI box — the ceiling asserted here is
   still well under what any sampler-coupled path could promise. *)
let test_watchdog_detection_latency () =
  let inv = exact () in
  let stall_ns = 30_000_000 in
  let hl =
    Obs.Health.create ~invariants:inv ~stall_ns ~workers:1 ~structures:1 ()
  in
  let wd = Obs.Health.watchdog_start ~tick_s:0.005 hl in
  Fun.protect
    ~finally:(fun () -> Obs.Health.watchdog_stop wd)
    (fun () ->
      (* A pending op that never launches: a stall episode opens once
         stall_ns elapses, and only the watchdog is looking. *)
      Obs.Health.op_issued hl ~sid:0;
      let t0 = Obs.Clock.now_ns () in
      let deadline = t0 + 2_000_000_000 in
      while
        Obs.Health.stall_count hl = 0 && Obs.Clock.now_ns () < deadline
      do
        Unix.sleepf 0.001
      done;
      let detected_ns = Obs.Clock.now_ns () - t0 in
      check "stall detected" 1 (Obs.Health.stall_count hl);
      check "folded into invariant counters" 1 (viol inv Obs.Recorder.Stall);
      check_bool
        (Printf.sprintf "detected in %.1f ms < stall + 70 ms"
           (float_of_int detected_ns /. 1e6))
        true
        (detected_ns < stall_ns + 70_000_000));
  (* Stop is idempotent and the disabled instance yields an inert
     watchdog (no domain to leak). *)
  Obs.Health.watchdog_stop wd;
  let inert = Obs.Health.watchdog_start Obs.Health.null in
  Obs.Health.watchdog_stop inert

(* ---- checker mechanics ---- *)

let test_sampled_mode () =
  let inv =
    Obs.Invariants.create ~mode:(Obs.Invariants.Sampled 4) ~lemma2_bound:2
      ~structures:1 ()
  in
  (* Every 4th completion is checked; 8 bad completions = 2 fires. *)
  for _ = 1 to 8 do
    Obs.Invariants.op_completed inv ~worker:0 ~time:1 ~sid:0 ~batches_seen:9
  done;
  check "sampled lemma2" 2 (viol inv Obs.Recorder.Lemma2);
  (* The balances are exact regardless of sampling. *)
  Obs.Invariants.op_submitted inv ~sid:0;
  Obs.Invariants.batch_started inv ~worker:0 ~time:2 ~sid:0 ~size:2 ~cap:4;
  check "inv3 still exact" 1 (viol inv Obs.Recorder.Inv3)

let test_off_and_out_of_range () =
  let off = Obs.Invariants.create ~mode:Obs.Invariants.Off ~structures:1 () in
  check_bool "off is inactive" false (Obs.Invariants.active off);
  Obs.Invariants.batch_started off ~worker:0 ~time:1 ~sid:0 ~size:99 ~cap:1;
  check "off never fires" 0 (Obs.Invariants.total_violations off);
  let inv = exact ~structures:1 () in
  (* Hooks with sids outside [0..structures-1] are ignored, not trusted. *)
  Obs.Invariants.op_submitted inv ~sid:7;
  Obs.Invariants.batch_started inv ~worker:0 ~time:1 ~sid:7 ~size:99 ~cap:1;
  Obs.Invariants.batch_started inv ~worker:0 ~time:1 ~sid:(-1) ~size:99 ~cap:1;
  check "out-of-range ignored" 0 (Obs.Invariants.total_violations inv)

let test_violation_events_on_recorder () =
  let rc =
    Obs.Recorder.create ~capacity:64 ~clock:Obs.Recorder.Timesteps ~workers:2 ()
  in
  let inv = exact ~recorder:rc () in
  Obs.Invariants.batch_started inv ~worker:1 ~time:42 ~sid:0 ~size:9 ~cap:4;
  (* Inv2 (size > cap) and Inv3 (collected 9, submitted 0) both fire,
     each as an event on the calling worker's ring. *)
  let evs = Obs.Recorder.events_of_worker rc 1 in
  let viols =
    List.filter_map
      (fun (e : Obs.Recorder.event) ->
        match e.Obs.Recorder.kind with
        | Obs.Recorder.Violation { check; sid; arg } ->
            Some (check, sid, arg, e.Obs.Recorder.time)
        | _ -> None)
      evs
  in
  check "two events" 2 (List.length viols);
  List.iter
    (fun (_, sid, _, time) ->
      check "sid" 0 sid;
      check "time" 42 time)
    viols;
  check_bool "inv2 event present" true
    (List.exists (fun (c, _, _, _) -> c = Obs.Recorder.Inv2) viols);
  check_bool "inv3 event present" true
    (List.exists (fun (c, _, _, _) -> c = Obs.Recorder.Inv3) viols)

(* ---- health gauges, phases, SLO burn ---- *)

let test_phase_histo_and_burn () =
  let hl =
    Obs.Health.create
      ~slo:{ Obs.Health.wait_ns = 100; exec_ns = 1_000; ovf_ns = 100 }
      ~workers:2 ~structures:1 ()
  in
  (* Two workers record phases for the same structure; reads merge. *)
  Obs.Health.op_phases hl ~worker:0 ~sid:0 ~wait:50 ~exec:500 ~ovf:0;
  Obs.Health.op_phases hl ~worker:1 ~sid:0 ~wait:150 ~exec:2_000 ~ovf:0;
  let h = Obs.Health.phase_histo hl ~sid:0 Obs.Health.Wait in
  check "merged count" 2 (Obs.Summary.Histo.count h);
  check "merged total" 200 (Obs.Summary.Histo.total h);
  check "merged max" 150 (Obs.Summary.Histo.max_v h);
  (* Exactly the over-SLO samples burn. *)
  check "wait burn" 1 (Obs.Health.burn_count hl ~sid:0 Obs.Health.Wait);
  check "exec burn" 1 (Obs.Health.burn_count hl ~sid:0 Obs.Health.Exec);
  check "ovf burn" 0 (Obs.Health.burn_count hl ~sid:0 Obs.Health.Ovf)

let test_heartbeat_age () =
  let hl = Obs.Health.create ~workers:2 ~structures:1 () in
  let now = Obs.Clock.now_ns () in
  check "never-beaten is -1" (-1)
    (Obs.Health.heartbeat_age_ns hl ~worker:1 ~now);
  Obs.Health.beat hl ~worker:0;
  let age =
    Obs.Health.heartbeat_age_ns hl ~worker:0 ~now:(Obs.Clock.now_ns ())
  in
  check_bool "age is small and non-negative" true
    (age >= 0 && age < 1_000_000_000)

let test_health_json_shape () =
  let inv = exact ~structures:1 () in
  let hl = Obs.Health.create ~invariants:inv ~workers:1 ~structures:1 () in
  Obs.Health.beat hl ~worker:0;
  Obs.Health.op_issued hl ~sid:0;
  Obs.Health.batch_collected hl ~sid:0 ~size:1;
  Obs.Health.op_phases hl ~worker:0 ~sid:0 ~wait:10 ~exec:20 ~ovf:0;
  let j = Obs.Health.to_json hl in
  (* Must be valid JSON carrying the fields the monitor digests. (No
     structural round-trip check: the strict parser reads integral
     floats like a 0.0 mean back as ints, which is fine for readers.) *)
  let s = Obs.Json.to_string j in
  (match Obs.Json.parse s with
  | Error e -> Alcotest.failf "health json does not parse: %s" e
  | Ok _ -> ());
  let member k =
    match Obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "missing %s" k
  in
  (match member "stalls" with
  | Obs.Json.Int 0 -> ()
  | _ -> Alcotest.fail "stalls not 0");
  (match member "structures" with
  | Obs.Json.List [ s0 ] -> (
      match Obs.Json.member "ops" s0 with
      | Some (Obs.Json.Int 1) -> ()
      | _ -> Alcotest.fail "ops gauge wrong")
  | _ -> Alcotest.fail "structures shape");
  (match member "invariants" with
  | Obs.Json.Obj _ -> ()
  | _ -> Alcotest.fail "invariants not attached");
  check_bool "null health is Null" true
    (Obs.Health.to_json Obs.Health.null = Obs.Json.Null)

(* ---- the quiet path allocates nothing ---- *)

let test_quiet_path_no_alloc () =
  let inv = exact ~lemma2_bound:1024 ~structures:2 () in
  let hl = Obs.Health.create ~invariants:inv ~workers:2 ~structures:2 () in
  (* Warm up one-time paths. *)
  Obs.Health.beat hl ~worker:0;
  Obs.Health.op_issued hl ~sid:0;
  Obs.Health.batch_collected hl ~sid:0 ~size:1;
  let words_before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Obs.Health.beat hl ~worker:0;
    Obs.Health.op_issued hl ~sid:0;
    Obs.Invariants.op_submitted inv ~sid:0;
    Obs.Invariants.batch_started inv ~worker:0 ~time:i ~sid:0 ~size:1 ~cap:2;
    Obs.Health.batch_collected hl ~sid:0 ~size:1;
    Obs.Health.op_phases hl ~worker:0 ~sid:0 ~wait:i ~exec:i ~ovf:0;
    Obs.Invariants.batch_ended inv ~worker:0 ~time:i ~sid:0;
    Obs.Invariants.op_completed inv ~worker:0 ~time:i ~sid:0 ~batches_seen:1;
    (* No [~now]: passing it would box a [Some] at every call site —
       the sampler's own call reads the clock instead. *)
    Obs.Health.check_stalls hl
  done;
  let delta = Gc.minor_words () -. words_before in
  (* Gc.minor_words boxes a float per call; allow that slack but nothing
     proportional to the 90k hook calls. *)
  if delta > 256. then
    Alcotest.failf "quiet monitoring path allocated %.0f minor words" delta;
  check "and stayed quiet" 0 (Obs.Invariants.total_violations inv)

(* ---- flight recorder ---- *)

let test_flight_dump () =
  let rc =
    Obs.Recorder.create ~capacity:32 ~clock:Obs.Recorder.Nanoseconds ~workers:2
      ()
  in
  for i = 1 to 100 do
    Obs.Recorder.emit_op_issue rc ~worker:0 ~time:i ~sid:0;
    Obs.Recorder.emit_op_done rc ~worker:1 ~time:(i + 1) ~sid:0 ~batches_seen:1
      ~latency:1
  done;
  Obs.Recorder.emit_violation rc ~worker:0 ~time:200 ~check:Obs.Recorder.Inv1
    ~sid:0 ~arg:2;
  let path = Filename.temp_file "flight" ".json" in
  let fl =
    Obs.Flight.create ~path ~limit_per_worker:8
      ~extra:(fun () -> Obs.Json.Str "ctx")
      rc
  in
  Obs.Flight.arm fl;
  check_bool "no dump yet" true (Obs.Flight.last_dump fl = None);
  let written = Obs.Flight.dump ~reason:"test-trigger" fl in
  Alcotest.(check string) "dump path" path written;
  check_bool "last_dump" true (Obs.Flight.last_dump fl = Some path);
  Obs.Flight.disarm fl;
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  let j =
    match Obs.Json.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "flight dump does not parse: %s" e
  in
  let member k =
    match Obs.Json.member k j with
    | Some v -> v
    | None -> Alcotest.failf "dump missing %s" k
  in
  (match member "reason" with
  | Obs.Json.Str "test-trigger" -> ()
  | _ -> Alcotest.fail "reason");
  (match member "clock" with
  | Obs.Json.Str "ns" -> ()
  | _ -> Alcotest.fail "clock");
  (match member "extra" with
  | Obs.Json.Str "ctx" -> ()
  | _ -> Alcotest.fail "extra");
  (match Obs.Json.member "violation" (member "tag_totals") with
  | Some (Obs.Json.Int 1) -> ()
  | _ -> Alcotest.fail "violation total");
  match member "events" with
  | Obs.Json.List evs ->
      (* 2 workers x min(limit 8, ring) events, sorted by time. *)
      check_bool "event cap respected" true (List.length evs <= 16);
      check_bool "has events" true (List.length evs > 0);
      let times =
        List.map
          (fun e ->
            match Obs.Json.member "t" e with
            | Some (Obs.Json.Int t) -> t
            | _ -> Alcotest.fail "event time")
          evs
      in
      check_bool "sorted by time" true (List.sort compare times = times)
  | _ -> Alcotest.fail "events"

(* ---- end to end on the real runtime ---- *)

let test_runtime_integration_clean () =
  (* A healthy run under Exact checking: every hook fires through
     Pool/Batcher_rt wiring and nothing trips. The Lemma-2 bound is
     sized to the backlog this workload creates (ops >> batch_cap, so
     an op legitimately waits through ~n_ops/cap launches). *)
  let n_ops = 256 in
  let inv =
    Obs.Invariants.create ~lemma2_bound:(4 * n_ops) ~structures:2 ()
  in
  let hl = Obs.Health.create ~invariants:inv ~workers:2 ~structures:2 () in
  let pool = Runtime.Pool.create ~health:hl ~num_workers:2 () in
  Fun.protect
    ~finally:(fun () -> Runtime.Pool.teardown pool)
    (fun () ->
      let counter = Batched.Counter.create () in
      let b =
        Runtime.Batcher_rt.create ~sid:0 ~pool ~state:counter
          ~run_batch:(fun _ st ops -> Batched.Counter.run_batch st ops)
          ()
      in
      Runtime.Pool.run pool (fun () ->
          Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:n_ops (fun _ ->
              Runtime.Batcher_rt.batchify b (Batched.Counter.op 1)));
      check "counter saw all ops" n_ops (Batched.Counter.value counter);
      check "no violations" 0 (Obs.Invariants.total_violations inv);
      check "no stalls" 0 (Obs.Health.stall_count hl);
      check "pending balance drained" 0 (Obs.Invariants.pending inv ~sid:0);
      check_bool "checkers ran" true (Obs.Invariants.checks_run inv > 0);
      check_bool "phases recorded" true
        (Obs.Summary.Histo.count
           (Obs.Health.phase_histo hl ~sid:0 Obs.Health.Wait)
        = n_ops);
      (* Heartbeats flowed on the workers that participated. *)
      let now = Obs.Clock.now_ns () in
      check_bool "worker 0 beat" true
        (Obs.Health.heartbeat_age_ns hl ~worker:0 ~now >= 0))

let () =
  Alcotest.run "health"
    [
      ( "invariants",
        [
          Alcotest.test_case "Inv1 double launch fires" `Quick test_inv1_fires;
          Alcotest.test_case "Inv2 oversized batch fires" `Quick
            test_inv2_fires;
          Alcotest.test_case "Inv3 fabricated collection fires" `Quick
            test_inv3_fires;
          Alcotest.test_case "Lemma-2 bound fires" `Quick test_lemma2_fires;
          Alcotest.test_case "sampled mode" `Quick test_sampled_mode;
          Alcotest.test_case "off and out-of-range" `Quick
            test_off_and_out_of_range;
          Alcotest.test_case "violation events on recorder" `Quick
            test_violation_events_on_recorder;
        ] );
      ( "health",
        [
          Alcotest.test_case "stall watchdog fires and re-arms" `Quick
            test_stall_counter_fires;
          Alcotest.test_case "watchdog tick detection latency" `Quick
            test_watchdog_detection_latency;
          Alcotest.test_case "phase histos merge; SLO burn" `Quick
            test_phase_histo_and_burn;
          Alcotest.test_case "heartbeat ages" `Quick test_heartbeat_age;
          Alcotest.test_case "health json shape" `Quick test_health_json_shape;
          Alcotest.test_case "quiet path allocation-free" `Quick
            test_quiet_path_no_alloc;
        ] );
      ( "flight",
        [ Alcotest.test_case "dump write and parse" `Quick test_flight_dump ] );
      ( "runtime",
        [
          Alcotest.test_case "clean run under exact checking" `Quick
            test_runtime_integration_clean;
        ] );
    ]
