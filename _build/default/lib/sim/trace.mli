(** Scheduler event traces and an independent protocol validator.

    When tracing is on, {!Batcher.run_traced} emits one event per
    scheduler-level transition (suspension, launch, batch completion,
    resumption). {!validate} then replays the paper's protocol rules
    against the event stream {e independently of the simulator's own
    state machine} — a redundant implementation acting as an oracle:

    - timestamps are nondecreasing;
    - per structure, launches and batch completions strictly alternate
      (Invariant 1), and batches hold between 1 and [batch_cap]
      operations (Invariant 2);
    - a batch's members were all suspended (and not yet resumed) when it
      launched, and belong to the launched structure;
    - every suspension is followed by exactly one enclosing batch
      completion and then one resumption by the same worker, in order;
    - between an operation's suspension and its resumption, at most two
      batches of its structure start executing (Lemma 2). *)

type event =
  | Suspended of { time : int; worker : int; node : int; sid : int }
      (** a data-structure node parked its record; worker now trapped *)
  | Launched of { time : int; worker : int; sid : int; members : int array }
  | Batch_completed of { time : int; sid : int; members : int array }
  | Resumed of { time : int; worker : int; node : int }

val pp_event : Format.formatter -> event -> unit

val validate : p:int -> batch_cap:int -> event list -> (unit, string) result
(** [validate ~p ~batch_cap events] with events in chronological order.
    Returns [Error description] on the first protocol violation. *)
