lib/sim/workload.mli: Batched Dag
