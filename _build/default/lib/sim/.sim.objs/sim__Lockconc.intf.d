lib/sim/lockconc.mli: Metrics Workload
