lib/sim/seqexec.ml: Array Batched Dag Metrics Workload
