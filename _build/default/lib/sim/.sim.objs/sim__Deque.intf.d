lib/sim/deque.mli:
