lib/sim/flatcomb.ml: Batcher
