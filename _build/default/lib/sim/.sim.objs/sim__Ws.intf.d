lib/sim/ws.mli: Dag Metrics
