lib/sim/ws.ml: Array Dag Deque List Metrics Util
