lib/sim/batcher.ml: Array Batched Dag Deque List Metrics Par Trace Util Workload
