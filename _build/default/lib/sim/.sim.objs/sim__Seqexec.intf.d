lib/sim/seqexec.mli: Metrics Workload
