lib/sim/flatcomb.mli: Metrics Workload
