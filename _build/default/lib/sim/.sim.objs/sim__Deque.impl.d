lib/sim/deque.ml: Array
