lib/sim/batcher.mli: Metrics Trace Workload
