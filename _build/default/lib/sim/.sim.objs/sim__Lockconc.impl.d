lib/sim/lockconc.ml: Array Batched Dag Deque List Metrics Queue Util Workload
