lib/sim/workload.ml: Array Batched Dag Fun List Util
