(** Lock-serialized concurrent data structure model.

    Work stealing executes the core DAG, but each data-structure node
    acquires a global mutual-exclusion lock (FIFO) and holds it for the
    operation's sequential cost while its worker is blocked — the model
    of a concurrent structure built on mutually exclusive primitives
    (fetch-and-add counters, CAS-retry hot spots), for which the paper
    argues an Ω(n) aggregate bound. *)

type config = {
  p : int;
  seed : int;
  max_steps : int;
  contention : bool;
      (** When set, an operation's lock-held time is multiplied by the
          number of processors contending for the structure when its
          service starts — the cache-line-bouncing / CAS-retry-loop model
          behind the paper's Ω(P)-per-access worst case (cf. its
          discussion of lock-free B+-trees). Off: an idealized mutex
          whose critical section costs only the op's sequential time. *)
}

val default : p:int -> config
(** Idealized mutex ([contention = false]). *)

val run : config -> Workload.t -> Metrics.t
(** [batch_work] reports lock-held service units;
    [trapped_steal_attempts] reports blocked (lock-wait) worker steps. *)
