(** Flat combining (Hendler, Incze, Shavit, Tzafrir) viewed — as the
    paper does — as implicit batching with sequential batch execution:
    one combiner executes every gathered operation record one after
    another, and the gathering scan itself is sequential. A thin
    configuration of {!Batcher}. *)

val run : ?seed:int -> p:int -> Workload.t -> Metrics.t
