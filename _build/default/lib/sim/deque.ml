type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;  (* index of the oldest element *)
  mutable len : int;
}

let create () = { buf = Array.make 8 None; top = 0; len = 0 }

let is_empty t = t.len = 0
let length t = t.len

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.top + i) mod cap)
  done;
  t.buf <- buf;
  t.top <- 0

let push_bottom t x =
  if t.len = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.buf.((t.top + t.len) mod cap) <- Some x;
  t.len <- t.len + 1

let pop_bottom t =
  if t.len = 0 then None
  else begin
    let cap = Array.length t.buf in
    let idx = (t.top + t.len - 1) mod cap in
    let x = t.buf.(idx) in
    t.buf.(idx) <- None;
    t.len <- t.len - 1;
    x
  end

let steal_top t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.top) in
    t.buf.(t.top) <- None;
    t.top <- (t.top + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    x
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.top <- 0;
  t.len <- 0
