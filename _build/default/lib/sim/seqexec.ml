let run (w : Workload.t) =
  Workload.reset_models w;
  let dag = w.core in
  (* One worker executes nodes in topological order; elapsed time is the
     plain sum of costs, with ds nodes costing their direct sequential
     cost in addition to the issue cost counted in the core dag. *)
  let core = Dag.work dag in
  let ds_total = ref 0 in
  let order = Dag.topological_order dag in
  Array.iter
    (fun v ->
      match dag.Dag.kinds.(v) with
      | Dag.Ds idx ->
          let m = w.models.(w.assign idx) in
          ds_total := !ds_total + m.Batched.Model.seq_cost idx
      | Dag.Core -> ())
    order;
  {
    (Metrics.zero ~p:1) with
    Metrics.makespan = core + !ds_total;
    core_work = core;
    batch_work = !ds_total;
    total_records = Workload.total_records w;
  }
