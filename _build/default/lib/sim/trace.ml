type event =
  | Suspended of { time : int; worker : int; node : int; sid : int }
  | Launched of { time : int; worker : int; sid : int; members : int array }
  | Batch_completed of { time : int; sid : int; members : int array }
  | Resumed of { time : int; worker : int; node : int }

let pp_event fmt = function
  | Suspended e ->
      Format.fprintf fmt "[%d] w%d suspended on node %d (struct %d)" e.time e.worker
        e.node e.sid
  | Launched e ->
      Format.fprintf fmt "[%d] w%d launched struct-%d batch {%s}" e.time e.worker e.sid
        (String.concat "," (Array.to_list (Array.map string_of_int e.members)))
  | Batch_completed e ->
      Format.fprintf fmt "[%d] struct-%d batch {%s} completed" e.time e.sid
        (String.concat "," (Array.to_list (Array.map string_of_int e.members)))
  | Resumed e -> Format.fprintf fmt "[%d] w%d resumed after node %d" e.time e.worker e.node

let time_of = function
  | Suspended e -> e.time
  | Launched e -> e.time
  | Batch_completed e -> e.time
  | Resumed e -> e.time

(* Per-worker replay state. *)
type wstate =
  | Free
  | Trapped of { sid : int; mutable launches_seen : int; mutable in_batch : bool;
                 mutable batch_done : bool }

let validate ~p ~batch_cap events =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let workers = Array.make p Free in
  (* Per-structure in-flight batch (members), or None. *)
  let in_flight = Hashtbl.create 8 in
  let rec go last = function
    | [] ->
        (* Nothing may remain suspended or in flight at the end. *)
        if Hashtbl.length in_flight > 0 then err "batch still in flight at end of trace"
        else begin
          let stuck = ref None in
          Array.iteri
            (fun w st -> match st with Trapped _ -> stuck := Some w | Free -> ())
            workers;
          match !stuck with
          | Some w -> err "worker %d still trapped at end of trace" w
          | None -> Ok ()
        end
    | ev :: rest ->
        let t = time_of ev in
        if t < last then err "time went backwards at %a" pp_event ev
        else begin
          match ev with
          | Suspended e ->
              if e.worker < 0 || e.worker >= p then err "bad worker in %a" pp_event ev
              else begin
                match workers.(e.worker) with
                | Trapped _ -> err "double suspension: %a" pp_event ev
                | Free ->
                    workers.(e.worker) <-
                      Trapped
                        { sid = e.sid; launches_seen = 0; in_batch = false;
                          batch_done = false };
                    go t rest
              end
          | Launched e ->
              if Hashtbl.mem in_flight e.sid then
                err "Invariant 1 violated: overlapping launch %a" pp_event ev
              else if Array.length e.members < 1 || Array.length e.members > batch_cap
              then err "Invariant 2 violated (size %d): %a" (Array.length e.members)
                     pp_event ev
              else begin
                let distinct =
                  List.length (List.sort_uniq compare (Array.to_list e.members))
                  = Array.length e.members
                in
                if not distinct then err "duplicate members: %a" pp_event ev
                else begin
                  (* Each member must be trapped on this structure, not
                     already in a batch. *)
                  let bad = ref None in
                  Array.iter
                    (fun m ->
                      match workers.(m) with
                      | Trapped st when st.sid = e.sid && not st.in_batch -> ()
                      | _ -> bad := Some m)
                    e.members;
                  match !bad with
                  | Some m -> err "member %d not eligible: %a" m pp_event ev
                  | None ->
                      Array.iter
                        (fun m ->
                          match workers.(m) with
                          | Trapped st -> st.in_batch <- true
                          | Free -> assert false)
                        e.members;
                      (* Lemma 2 accounting: every trapped-and-unfinished
                         op of this structure sees one more batch. *)
                      Array.iter
                        (fun st ->
                          match st with
                          | Trapped s when s.sid = e.sid && not s.batch_done ->
                              s.launches_seen <- s.launches_seen + 1
                          | _ -> ())
                        workers;
                      Hashtbl.add in_flight e.sid e.members;
                      go t rest
                end
              end
          | Batch_completed e -> begin
              match Hashtbl.find_opt in_flight e.sid with
              | None -> err "completion without launch: %a" pp_event ev
              | Some members ->
                  if members <> e.members then err "member set mismatch: %a" pp_event ev
                  else begin
                    Hashtbl.remove in_flight e.sid;
                    let bad = ref None in
                    Array.iter
                      (fun m ->
                        match workers.(m) with
                        | Trapped st when st.in_batch ->
                            st.in_batch <- false;
                            st.batch_done <- true;
                            (* Lemma 2: suspension observed at most two
                               batch executions of its structure (its own
                               plus at most one predecessor). The
                               predecessor was already running at
                               suspension time, so it was not counted by
                               the launch rule; hence the count here is
                               at most 2 and usually 1 or 2. *)
                            if st.launches_seen > 2 then bad := Some m
                        | _ -> bad := Some m)
                      members;
                    match !bad with
                    | Some m -> err "Lemma 2 or state violation for worker %d: %a" m
                                  pp_event ev
                    | None -> go t rest
                  end
            end
          | Resumed e -> begin
              match workers.(e.worker) with
              | Trapped st when st.batch_done ->
                  workers.(e.worker) <- Free;
                  go t rest
              | Trapped _ -> err "resumed before batch completion: %a" pp_event ev
              | Free -> err "resumed while free: %a" pp_event ev
            end
        end
  in
  go 0 events
