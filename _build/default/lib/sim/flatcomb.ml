let run ?(seed = 1) ~p workload =
  let cfg = { (Batcher.default ~p) with Batcher.seed; sequential_batches = true } in
  Batcher.run cfg workload
