type config = {
  p : int;
  seed : int;
  max_steps : int;
  contention : bool;
}

let default ~p = { p; seed = 1; max_steps = 2_000_000_000; contention = false }

type entry = {
  owner : int;
  mutable remaining : int;
  mutable scaled : bool;  (* contention multiplier applied *)
}

type worker = {
  id : int;
  dq : int Deque.t;
  mutable assigned : int option;
  mutable remaining : int;
  mutable blocked_on : int option;  (* ds node waiting for / holding lock *)
  rng : Util.Rng.t;
}

type state = {
  cfg : config;
  w : Workload.t;
  preds_left : int array;
  workers : worker array;
  lock_queue : entry Queue.t;
  mutable lock_served_this_step : bool;
      (* at most one service unit per timestep: the lock is held for the
         operation's full duration in wall-clock (timestep) terms *)
  mutable finished : bool;
  mutable time : int;
  mutable core_work : int;
  mutable service_work : int;
  mutable wait_steps : int;
  mutable steal_attempts : int;
  mutable steal_successes : int;
}

let dag st = st.w.Workload.core

let assign st w node =
  w.assigned <- Some node;
  w.remaining <- (dag st).Dag.costs.(node)

let enable st w node =
  let newly = ref [] in
  Array.iter
    (fun s ->
      st.preds_left.(s) <- st.preds_left.(s) - 1;
      if st.preds_left.(s) = 0 then newly := s :: !newly)
    (dag st).Dag.succs.(node);
  (match List.rev !newly with
  | [] -> ()
  | first :: rest ->
      assign st w first;
      List.iter (fun s -> Deque.push_bottom w.dq s) rest);
  if node = (dag st).Dag.sink then st.finished <- true

let complete st w node =
  w.assigned <- None;
  match (dag st).Dag.kinds.(node) with
  | Dag.Ds idx ->
      (* Join the lock queue for the op's sequential service time. *)
      let m = st.w.Workload.models.(st.w.Workload.assign idx) in
      let service = m.Batched.Model.seq_cost idx in
      Queue.add { owner = w.id; remaining = max 1 service; scaled = false } st.lock_queue;
      w.blocked_on <- Some node
  | Dag.Core -> enable st w node

let exec_unit st w =
  match w.assigned with
  | None -> assert false
  | Some node ->
      st.core_work <- st.core_work + 1;
      w.remaining <- w.remaining - 1;
      if w.remaining = 0 then complete st w node

let step st w =
  match w.blocked_on with
  | Some node -> begin
      (* Only the lock holder (queue head) makes progress. *)
      match Queue.peek_opt st.lock_queue with
      | Some e when e.owner = w.id && not st.lock_served_this_step ->
          if st.cfg.contention && not e.scaled then begin
            (* Every contending processor slows the holder down: CAS
               retries / cache-line bouncing. *)
            e.remaining <- e.remaining * Queue.length st.lock_queue;
            e.scaled <- true
          end;
          st.lock_served_this_step <- true;
          st.service_work <- st.service_work + 1;
          e.remaining <- e.remaining - 1;
          if e.remaining = 0 then begin
            ignore (Queue.pop st.lock_queue);
            w.blocked_on <- None;
            enable st w node
          end
      | _ -> st.wait_steps <- st.wait_steps + 1
    end
  | None -> begin
      match w.assigned with
      | Some _ -> exec_unit st w
      | None -> begin
          match Deque.pop_bottom w.dq with
          | Some node ->
              assign st w node;
              exec_unit st w
          | None ->
              st.steal_attempts <- st.steal_attempts + 1;
              if st.cfg.p > 1 then begin
                let offset = 1 + Util.Rng.int w.rng (st.cfg.p - 1) in
                let v = st.workers.((w.id + offset) mod st.cfg.p) in
                match Deque.steal_top v.dq with
                | None -> ()
                | Some node ->
                    st.steal_successes <- st.steal_successes + 1;
                    assign st w node;
                    exec_unit st w
              end
        end
    end

let run cfg (w : Workload.t) =
  Workload.reset_models w;
  let workers =
    Array.init cfg.p (fun id ->
        {
          id;
          dq = Deque.create ();
          assigned = None;
          remaining = 0;
          blocked_on = None;
          rng = Util.Rng.stream ~seed:cfg.seed ~index:id;
        })
  in
  let st =
    {
      cfg;
      w;
      preds_left = Array.copy w.Workload.core.Dag.pred_count;
      workers;
      lock_queue = Queue.create ();
      lock_served_this_step = false;
      finished = false;
      time = 0;
      core_work = 0;
      service_work = 0;
      wait_steps = 0;
      steal_attempts = 0;
      steal_successes = 0;
    }
  in
  assign st workers.(0) w.Workload.core.Dag.source;
  while not st.finished do
    st.time <- st.time + 1;
    if st.time > cfg.max_steps then failwith "Lockconc sim: max_steps exceeded";
    st.lock_served_this_step <- false;
    Array.iter (fun wk -> step st wk) workers
  done;
  {
    (Metrics.zero ~p:cfg.p) with
    Metrics.makespan = st.time;
    core_work = st.core_work;
    batch_work = st.service_work;
    steal_attempts = st.steal_attempts;
    steal_successes = st.steal_successes;
    trapped_steal_attempts = st.wait_steps;
    total_records = Workload.total_records w;
  }
