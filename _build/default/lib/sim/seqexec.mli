(** Sequential baseline: one processor executes the whole computation,
    with each data-structure operation performed directly (no batching,
    no concurrency control) at the model's single-operation cost — the
    "SEQ" series of Figure 5. *)

val run : Workload.t -> Metrics.t
(** Makespan = core work + Σ seq_cost over all operation nodes, in index
    order. The model is [reset] first. *)
