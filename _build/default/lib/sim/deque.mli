(** Work-stealing deque for the simulator.

    The owner pushes and pops at the bottom; thieves steal from the top.
    The simulator is single-threaded, so this is a plain growable ring
    buffer — the lock-free version for the real runtime lives in
    [Runtime.Wsdeque]. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push_bottom : 'a t -> 'a -> unit
val pop_bottom : 'a t -> 'a option
val steal_top : 'a t -> 'a option
val clear : 'a t -> unit
