type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into Xoshiro state, as
   recommended by Blackman & Vigna. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix_next st in
  let s1 = splitmix_next st in
  let s2 = splitmix_next st in
  let s3 = splitmix_next st in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (next64 t) in
  create ~seed

let stream ~seed ~index =
  (* Mix the index into the seed through one splitmix step so streams for
     nearby indices are uncorrelated. *)
  let st = ref (Int64.of_int seed) in
  let base = splitmix_next st in
  create ~seed:(Int64.to_int base + (index * 0x5DEECE66D) + index)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays nonnegative in OCaml's 63-bit int;
     modulo bias is negligible for the small bounds simulations use. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (v /. 9007199254740992.0) (* 2^53 *)

let bool t = Int64.logand (next64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
