lib/util/rng.mli:
