lib/util/prefix_sum.ml: Array
