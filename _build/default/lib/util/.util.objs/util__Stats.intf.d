lib/util/stats.mli:
