lib/util/prefix_sum.mli:
