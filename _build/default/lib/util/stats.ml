type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    median = percentile xs 0.5;
  }

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty";
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive sample";
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))
