(** Sequential prefix sums — the core primitive of the batched counter
    (Figure 2 of the paper) and of the LAUNCHBATCH compaction step.

    These are the sequential kernels; the parallel versions are expressed
    as cost DAGs in [Dag.Par] for the simulator and as fork-join code in
    [Runtime.Pool] for the real runtime. *)

val inclusive : int array -> int array
(** [inclusive a] returns [b] with [b.(i) = a.(0) + ... + a.(i)]. *)

val exclusive : int array -> int array
(** [exclusive a] returns [b] with [b.(i) = a.(0) + ... + a.(i-1)]
    ([b.(0) = 0]). *)

val inclusive_inplace : int array -> unit
val total : int array -> int

val compact : 'a option array -> 'a array
(** [compact a] packs the [Some] entries of [a] densely, preserving order —
    the working-set compaction of LAUNCHBATCH. *)
