(** Deterministic pseudo-random number generation.

    Simulations must be reproducible across runs and platforms, so we use
    our own SplitMix64 (for seeding) and Xoshiro256++ (for streams) rather
    than [Stdlib.Random]. Each worker in a simulation owns an independent
    stream derived from the run seed and the worker index. *)

type t
(** Mutable generator state (one Xoshiro256++ stream). *)

val create : seed:int -> t
(** [create ~seed] builds a stream; equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new independent stream from [t], advancing [t]. *)

val stream : seed:int -> index:int -> t
(** [stream ~seed ~index] is the [index]-th derived stream of [seed];
    convenience for per-worker streams. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** Fisher-Yates shuffle in place. *)
