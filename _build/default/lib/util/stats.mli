(** Summary statistics over float samples, used by experiment reports. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val stddev : float array -> float
val percentile : float array -> float -> float
(** [percentile xs q] for [q] in [0,1], linear interpolation. *)

val geomean : float array -> float
(** Geometric mean; requires all samples positive. *)
