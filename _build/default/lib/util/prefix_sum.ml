let inclusive a =
  let n = Array.length a in
  let b = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + a.(i);
    b.(i) <- !acc
  done;
  b

let exclusive a =
  let n = Array.length a in
  let b = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    b.(i) <- !acc;
    acc := !acc + a.(i)
  done;
  b

let inclusive_inplace a =
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc + a.(i);
    a.(i) <- !acc
  done

let total a = Array.fold_left ( + ) 0 a

let compact a =
  let n = Array.length a in
  let flags = Array.make n 0 in
  for i = 0 to n - 1 do
    match a.(i) with Some _ -> flags.(i) <- 1 | None -> ()
  done;
  let offsets = exclusive flags in
  let count = (if n = 0 then 0 else offsets.(n - 1) + flags.(n - 1)) in
  if count = 0 then [||]
  else begin
    (* Find a witness to seed the output array. *)
    let witness =
      let rec find i =
        match a.(i) with Some x -> x | None -> find (i + 1)
      in
      find 0
    in
    let out = Array.make count witness in
    for i = 0 to n - 1 do
      match a.(i) with
      | Some x -> out.(offsets.(i)) <- x
      | None -> ()
    done;
    out
  end
