(** Execution DAGs for dynamically multithreaded computations.

    A DAG node is a sequential subcomputation with an integer cost
    [c >= 1] — semantically a chain of [c] unit-time nodes of the paper's
    model, which keeps large simulated computations compact without
    changing work/span accounting. Core DAGs contain two node kinds:
    ordinary {!const:Core} nodes and {!const:Ds} nodes, the implicitly
    batched data-structure operations (each carries an index into the
    workload's operation table). Batch DAGs (lowered from {!Par.t}) contain
    only [Core] nodes; they are distinguished by which DAG object they
    belong to, mirroring Invariant 3 of the paper.

    A DAG is frozen after construction: all mutable scheduling state
    (remaining predecessor counts, remaining node cost) lives in the
    simulator so one DAG can be executed many times. *)

type kind =
  | Core
  | Ds of int  (** data-structure node; payload is an operation-table index *)

type t = private {
  costs : int array;
  kinds : kind array;
  succs : int array array;
  pred_count : int array;
  source : int;
  sink : int;
}

val size : t -> int
(** Number of nodes. *)

val work : t -> int
(** Sum of node costs. *)

val span : t -> int
(** Cost-weighted longest source-to-sink path. *)

val ds_count : t -> int
(** [n] of the paper: number of [Ds] nodes. *)

val ds_depth : t -> int
(** [m] of the paper: maximum number of [Ds] nodes on any directed path. *)

val topological_order : t -> int array

val to_dot : ?name:string -> Format.formatter -> t -> unit
(** Graphviz rendering: core nodes as boxes labeled with their cost,
    data-structure nodes as red ellipses labeled with the op index. *)

val validate : t -> unit
(** Checks: acyclicity, unique source (no preds) and sink (no succs), all
    nodes reachable from the source, predecessor counts consistent with
    successor lists. Raises [Failure] with a description otherwise. *)

(** Imperative DAG construction from composable fragments. *)
module Build : sig
  type builder

  type frag = { entry : int; exit_ : int }
  (** A sub-DAG with a single entry and a single exit node. *)

  val create : unit -> builder

  val node_count : builder -> int
  (** Nodes created so far; node ids are assigned sequentially, so this
      lets callers record id ranges of sub-DAGs as they are built. *)

  val single : builder -> ?cost:int -> kind -> frag
  (** One node; [cost] defaults to 1. *)

  val link : builder -> int -> int -> unit
  (** [link b u v] adds edge [u -> v]. *)

  val in_series : builder -> frag list -> frag
  (** Sequential composition (nonempty list). *)

  val in_parallel : builder -> frag list -> frag
  (** Parallel composition via balanced binary fork and join trees of
      unit-cost [Core] nodes — the binary-forking assumption. A singleton
      list is returned unchanged. *)

  val of_par : builder -> Par.t -> frag
  (** Lower a cost expression. The result's work and span equal
      [Par.work]/[Par.span] exactly. *)

  val parallel_for : builder -> int -> (int -> frag) -> frag
  (** [parallel_for b k body] composes [body 0 .. body (k-1)] in parallel. *)

  val finish : builder -> frag -> t
  (** Freeze, using the fragment's entry/exit as source/sink, and
      [validate] the result. *)
end
