type kind = Core | Ds of int

type t = {
  costs : int array;
  kinds : kind array;
  succs : int array array;
  pred_count : int array;
  source : int;
  sink : int;
}

let size t = Array.length t.costs

let topological_order t =
  let n = size t in
  let remaining = Array.copy t.pred_count in
  let order = Array.make n 0 in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if remaining.(v) = 0 then Queue.add v queue
  done;
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    Array.iter
      (fun w ->
        remaining.(w) <- remaining.(w) - 1;
        if remaining.(w) = 0 then Queue.add w queue)
      t.succs.(v)
  done;
  if !filled <> n then failwith "Dag.topological_order: graph has a cycle";
  order

let work t = Array.fold_left ( + ) 0 t.costs

let span t =
  let order = topological_order t in
  let dist = Array.make (size t) 0 in
  Array.iter
    (fun v ->
      let here = dist.(v) + t.costs.(v) in
      Array.iter (fun w -> if here > dist.(w) then dist.(w) <- here) t.succs.(v))
    order;
  dist.(t.sink) + t.costs.(t.sink)

let ds_count t =
  Array.fold_left
    (fun acc k -> match k with Ds _ -> acc + 1 | Core -> acc)
    0 t.kinds

let ds_depth t =
  let order = topological_order t in
  let depth = Array.make (size t) 0 in
  let node_ds v = match t.kinds.(v) with Ds _ -> 1 | Core -> 0 in
  Array.iter
    (fun v ->
      let here = depth.(v) + node_ds v in
      Array.iter (fun w -> if here > depth.(w) then depth.(w) <- here) t.succs.(v))
    order;
  depth.(t.sink) + node_ds t.sink

let to_dot ?(name = "dag") fmt t =
  Format.fprintf fmt "digraph %s {@." name;
  Format.fprintf fmt "  rankdir=TB;@.";
  for v = 0 to size t - 1 do
    match t.kinds.(v) with
    | Core ->
        Format.fprintf fmt "  n%d [shape=box,label=\"%d:%d\"];@." v v t.costs.(v)
    | Ds idx ->
        Format.fprintf fmt
          "  n%d [shape=ellipse,color=red,label=\"op%d\"];@." v idx
  done;
  for v = 0 to size t - 1 do
    Array.iter (fun w -> Format.fprintf fmt "  n%d -> n%d;@." v w) t.succs.(v)
  done;
  Format.fprintf fmt "}@."

let validate t =
  let n = size t in
  if n = 0 then failwith "Dag.validate: empty dag";
  (* Predecessor counts consistent with successor lists. *)
  let computed = Array.make n 0 in
  Array.iter
    (fun ss ->
      Array.iter
        (fun w ->
          if w < 0 || w >= n then failwith "Dag.validate: edge out of range";
          computed.(w) <- computed.(w) + 1)
        ss)
    t.succs;
  for v = 0 to n - 1 do
    if computed.(v) <> t.pred_count.(v) then
      failwith "Dag.validate: inconsistent predecessor counts"
  done;
  (* Unique source and sink. *)
  for v = 0 to n - 1 do
    if t.pred_count.(v) = 0 && v <> t.source then
      failwith "Dag.validate: node without predecessors is not the source";
    if Array.length t.succs.(v) = 0 && v <> t.sink then
      failwith "Dag.validate: node without successors is not the sink"
  done;
  if t.pred_count.(t.source) <> 0 then failwith "Dag.validate: source has predecessors";
  if Array.length t.succs.(t.sink) <> 0 then failwith "Dag.validate: sink has successors";
  (* Acyclicity (and, with the source check above, full reachability). *)
  ignore (topological_order t)

module Build = struct
  type builder = {
    mutable costs : int array;
    mutable kinds : kind array;
    mutable succs : int list array;
    mutable preds : int array;
    mutable len : int;
  }

  type frag = { entry : int; exit_ : int }

  let create () =
    { costs = Array.make 16 0;
      kinds = Array.make 16 Core;
      succs = Array.make 16 [];
      preds = Array.make 16 0;
      len = 0 }

  let node_count b = b.len

  let grow b =
    let cap = Array.length b.costs in
    let cap' = cap * 2 in
    let extend a fill = Array.append a (Array.make cap fill) in
    ignore cap';
    b.costs <- extend b.costs 0;
    b.kinds <- extend b.kinds Core;
    b.succs <- extend b.succs [];
    b.preds <- extend b.preds 0

  let add_node b cost kind =
    if b.len = Array.length b.costs then grow b;
    let id = b.len in
    b.costs.(id) <- max 1 cost;
    b.kinds.(id) <- kind;
    b.len <- b.len + 1;
    id

  let single b ?(cost = 1) kind =
    let id = add_node b cost kind in
    { entry = id; exit_ = id }

  let link b u v =
    b.succs.(u) <- v :: b.succs.(u);
    b.preds.(v) <- b.preds.(v) + 1

  let in_series b = function
    | [] -> invalid_arg "Dag.Build.in_series: empty"
    | first :: rest ->
        let exit_ =
          List.fold_left
            (fun prev f ->
              link b prev f.entry;
              f.exit_)
            first.exit_ rest
        in
        { entry = first.entry; exit_ }

  (* Balanced binary fork/join trees over the fragment array slice
     [lo, hi), mirroring Par.branch_work/branch_span exactly. *)
  let rec fork_join b frags lo hi =
    if hi - lo = 1 then frags.(lo)
    else begin
      let mid = (lo + hi) / 2 in
      let left = fork_join b frags lo mid in
      let right = fork_join b frags mid hi in
      let fork = add_node b 1 Core in
      let join = add_node b 1 Core in
      link b fork left.entry;
      link b fork right.entry;
      link b left.exit_ join;
      link b right.exit_ join;
      { entry = fork; exit_ = join }
    end

  let in_parallel b = function
    | [] -> invalid_arg "Dag.Build.in_parallel: empty"
    | frags ->
        let arr = Array.of_list frags in
        fork_join b arr 0 (Array.length arr)

  let rec of_par b (p : Par.t) =
    match p with
    | Par.Leaf c -> single b ~cost:c Core
    | Par.Series l -> in_series b (List.map (of_par b) l)
    | Par.Branch l -> in_parallel b (List.map (of_par b) l)

  let parallel_for b k body =
    if k < 1 then invalid_arg "Dag.Build.parallel_for: k must be >= 1";
    in_parallel b (List.init k body)

  let finish b frag =
    let n = b.len in
    let t =
      { costs = Array.sub b.costs 0 n;
        kinds = Array.sub b.kinds 0 n;
        succs = Array.init n (fun v -> Array.of_list (List.rev b.succs.(v)));
        pred_count = Array.sub b.preds 0 n;
        source = frag.entry;
        sink = frag.exit_ }
    in
    validate t;
    t
end
