lib/dag/dag.ml: Array Format List Par Queue
