lib/dag/par.mli: Format
