lib/dag/dag.mli: Format Par
