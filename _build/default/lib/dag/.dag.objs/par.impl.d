lib/dag/par.ml: Array Format List
