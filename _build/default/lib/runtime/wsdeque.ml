(* Chase & Lev, "Dynamic circular work-stealing deque" (SPAA 2005),
   adapted to OCaml 5 Atomics. [top] only increases; [bottom] is owned by
   the single owner. Buffers are indexed by absolute position masked to
   the (power-of-two) capacity. *)

type 'a buffer = {
  mask : int;
  data : 'a option array;
}

let make_buffer log_size = { mask = (1 lsl log_size) - 1; data = Array.make (1 lsl log_size) None }

let buf_get b i = b.data.(i land b.mask)
let buf_put b i x = b.data.(i land b.mask) <- x

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let create () =
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (make_buffer 8) }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let grow t b top_ =
  let old = Atomic.get t.buf in
  let nb = { mask = (old.mask * 2) + 1; data = Array.make ((old.mask + 1) * 2) None } in
  for i = top_ to b - 1 do
    buf_put nb i (buf_get old i)
  done;
  Atomic.set t.buf nb

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  if b - tp > buf.mask then grow t b tp;
  buf_put (Atomic.get t.buf) b (Some x);
  (* Publish the element before advancing bottom (Atomic.set is SC). *)
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Empty: restore. *)
    Atomic.set t.bottom (b + 1);
    None
  end
  else begin
    let x = buf_get (Atomic.get t.buf) b in
    if b > tp then x
    else begin
      (* Last element: race with thieves via CAS on top. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (b + 1);
      if won then x else None
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let x = buf_get (Atomic.get t.buf) tp in
    if Atomic.compare_and_set t.top tp (tp + 1) then x else None
  end
