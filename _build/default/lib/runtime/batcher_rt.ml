type ('s, 'op) t = {
  pool : Pool.t;
  st : 's;
  run_batch : Pool.t -> 's -> 'op array -> unit;
  batch_cap : int;
  pending : ('op * (unit -> unit)) list Atomic.t;
  flag : bool Atomic.t;
  n_batches : int Atomic.t;
  n_ops : int Atomic.t;
  max_batch : int Atomic.t;
}

type stats = {
  batches : int;
  ops : int;
  max_batch : int;
}

let create ?batch_cap ~pool ~state ~run_batch () =
  let cap =
    match batch_cap with
    | Some c ->
        if c < 1 then invalid_arg "Batcher_rt.create: batch_cap >= 1";
        c
    | None -> Pool.num_workers pool
  in
  {
    pool;
    st = state;
    run_batch;
    batch_cap = cap;
    pending = Atomic.make [];
    flag = Atomic.make false;
    n_batches = Atomic.make 0;
    n_ops = Atomic.make 0;
    max_batch = Atomic.make 0;
  }

let state t = t.st

let stats t =
  {
    batches = Atomic.get t.n_batches;
    ops = Atomic.get t.n_ops;
    max_batch = Atomic.get t.max_batch;
  }

let rec atomic_push t record =
  let old = Atomic.get t.pending in
  if not (Atomic.compare_and_set t.pending old (record :: old)) then
    atomic_push t record

let rec atomic_take_all t =
  let old = Atomic.get t.pending in
  if old = [] then []
  else if Atomic.compare_and_set t.pending old [] then old
  else atomic_take_all t

let rec atomic_put_back t records =
  match records with
  | [] -> ()
  | _ ->
      let old = Atomic.get t.pending in
      if not (Atomic.compare_and_set t.pending old (records @ old)) then
        atomic_put_back t records

let rec atomic_max a v =
  let old = Atomic.get a in
  if v > old && not (Atomic.compare_and_set a old v) then atomic_max a v

let rec try_launch t =
  if Atomic.get t.pending <> [] && Atomic.compare_and_set t.flag false true
  then begin
    let all = atomic_take_all t in
    if all = [] then begin
      (* Lost a race with a concurrent launch drain; retry. *)
      Atomic.set t.flag false;
      try_launch t
    end
    else begin
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | r :: rest -> split (k - 1) (r :: acc) rest
      in
      let batch, overflow = split t.batch_cap [] all in
      atomic_put_back t overflow;
      (* LAUNCHBATCH, as a pool task: compact records into the working
         set, run the BOP, mark records done (resume their tasks), clear
         the flag, and relaunch if operations accrued meanwhile. *)
      Pool.async t.pool (fun () ->
          let arr = Array.of_list (List.map fst batch) in
          t.run_batch t.pool t.st arr;
          Atomic.incr t.n_batches;
          ignore (Atomic.fetch_and_add t.n_ops (Array.length arr));
          atomic_max t.max_batch (Array.length arr);
          List.iter (fun (_, resume) -> resume ()) batch;
          Atomic.set t.flag false;
          try_launch t)
      |> ignore
    end
  end

let batchify t op =
  Pool.suspend t.pool (fun resume ->
      atomic_push t (op, resume);
      try_launch t)
