lib/runtime/batcher_rt.ml: Array Atomic List Pool
