lib/runtime/batcher_rt.mli: Pool
