lib/runtime/pool.ml: Array Atomic Domain Effect Fun List Unix Util Wsdeque
