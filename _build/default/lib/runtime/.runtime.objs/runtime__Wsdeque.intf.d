lib/runtime/wsdeque.mli:
