lib/runtime/pool.mli:
