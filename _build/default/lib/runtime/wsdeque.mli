(** Lock-free Chase-Lev work-stealing deque.

    The owner pushes and pops at the bottom without contention; thieves
    [steal] from the top with a CAS. The circular buffer grows on demand
    (owner-side only); elements are never overwritten in a retired
    buffer, so a thief racing a grow still reads a valid element iff its
    CAS on [top] succeeds.

    Single-owner: [push] and [pop] must only be called from one domain at
    a time; [steal] may be called from any domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only. *)

val steal : 'a t -> 'a option
(** Any domain. Returns [None] if the deque looked empty or the race was
    lost. *)

val size : 'a t -> int
(** Snapshot; racy, only a hint. *)
