(** Batched FIFO queue on a growable ring buffer.

    The batch semantics mirror the paper's stack: an ENQUEUE phase (batch
    order) followed by a DEQUEUE phase (batch order, oldest first), with
    the ring rebuilt — Θ(size) work, Θ(lg size) span in the cost model —
    when it over- or under-fills. Amortized Θ(1) per operation, so
    W(n) = Θ(n) and s(n) = Θ(lg P), same regime as the stack but FIFO,
    which is what breadth-first frontier processing wants. *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val capacity : t -> int

type dequeue_record = { mutable dequeued : int option }

type op =
  | Enqueue of int
  | Dequeue of dequeue_record

val enqueue : int -> op
val dequeue : unit -> op

val run_batch : t -> op array -> unit

val enqueue_seq : t -> int -> unit
val dequeue_seq : t -> int option

val to_list : t -> int list
(** Front (oldest) first. *)

val check_invariants : t -> unit

val sim_model :
  ?records_per_node:int -> ?dequeue_fraction:float -> ?seed:int -> unit -> Model.t
