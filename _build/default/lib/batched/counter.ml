type t = { mutable count : int }

let create ?(init = 0) () = { count = init }
let value t = t.count

type op = { amount : int; mutable result : int }

let op amount = { amount; result = 0 }

let run_batch t d =
  (* Prefix sums over the amounts, seeded with the current value; the
     parallel version has the same semantics, computed by Runtime.Pool. *)
  let acc = ref t.count in
  Array.iter
    (fun o ->
      acc := !acc + o.amount;
      o.result <- !acc)
    d;
  t.count <- !acc

let increment_seq t amount =
  t.count <- t.count + amount;
  t.count

let sim_model ?(records_per_node = 1) () =
  let reset () = () in
  let batch_cost nodes =
    let x = records_per_node * Array.length nodes in
    (* Ladner-Fischer prefix sums: an up-sweep and a down-sweep over a
       balanced tree of x unit-cost leaves. *)
    let sweep = Par.balanced ~leaf_cost:(fun _ -> 1) (max 1 x) in
    Par.series [ sweep; sweep ]
  in
  let seq_cost _ = max 1 records_per_node in
  { Model.name = "counter"; reset; batch_cost; seq_cost }
