(** Batched min-priority queue, after the batched parallel priority
    queues the paper cites for shortest-path algorithms (Brodal et al.,
    Sanders). Implemented as a leftist heap: a batch of inserts is built
    into a private heap and melded in one O(lg n) step; extract-mins are
    served in priority order within the batch. Used by the Dijkstra
    example. *)

type t

val empty : t
val size : t -> int
val is_empty : t -> bool

val insert : t -> prio:int -> value:int -> t
val find_min : t -> (int * int) option
(** [(prio, value)] with least prio, or [None]. *)

val delete_min : t -> ((int * int) * t) option

type extract_record = { mutable extracted : (int * int) option }

type op =
  | Insert of int * int  (** prio, value *)
  | Extract_min of extract_record

val insert_op : prio:int -> value:int -> op
val extract_op : unit -> op

val run_batch : t -> op array -> t
(** All inserts of the batch take effect first; then extract-mins are
    served in batch order (each sees the previous extractions). *)

val to_sorted_list : t -> (int * int) list
(** Ascending priority; ties in arbitrary but deterministic order. *)

val check_invariants : t -> unit

val sim_model : ?records_per_node:int -> unit -> Model.t
(** Cost model: a batch of x records costs a parallel combine of x leaves
    of lg(size) each — heap construction + meld for inserts, tournament
    extraction for deletes. *)
