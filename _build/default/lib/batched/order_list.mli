(** Order-maintenance list: a total order supporting O(1) comparison and
    (amortized) O(1) insertion after an existing element.

    Substrate for the series-parallel (SP) order structure used by the
    on-the-fly race-detection example — the application the paper's
    introduction gives as the case where data-structure calls cannot be
    batched by program restructuring (Bender et al., SPAA 2004;
    Mellor-Crummey 1991).

    Implementation: integer labels with geometric gaps; when a gap is
    exhausted the whole list is relabeled (O(n), amortized away by the
    gap factor). Elements are never removed. *)

type t
(** The order; holds all its elements. *)

type elt
(** An element of some order. *)

val create : unit -> t * elt
(** A fresh order containing exactly its base element. *)

val insert_after : t -> elt -> elt
(** [insert_after t e] inserts a new element immediately after [e]
    (before any element that previously followed [e]). *)

val compare : elt -> elt -> int
(** Order comparison; both elements must belong to the same order. *)

val precedes : elt -> elt -> bool
(** [precedes a b] iff [a] is strictly before [b]. *)

val size : t -> int
val relabels : t -> int
(** Number of full relabelings performed (for tests/diagnostics). *)

val check_invariants : t -> unit
(** Labels strictly increase along the list; raises [Failure]. *)
