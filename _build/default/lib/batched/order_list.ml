(* Elements form a doubly-linked list; [label] gives O(1) comparison.
   Insertion takes the midpoint of the neighbouring labels; when the gap
   closes, all labels are redistributed with geometric spacing. *)

type elt = {
  mutable label : int;
  mutable prev : elt option;
  mutable next : elt option;
  order : t;
}

and t = {
  mutable head : elt option;
  mutable count : int;
  mutable relabel_count : int;
}

let gap = 1 lsl 16

let create () =
  let rec t = { head = None; count = 1; relabel_count = 0 }
  and base = { label = 0; prev = None; next = None; order = t } in
  t.head <- Some base;
  (t, base)

let size t = t.count
let relabels t = t.relabel_count

let relabel t =
  t.relabel_count <- t.relabel_count + 1;
  let rec go label = function
    | None -> ()
    | Some e ->
        e.label <- label;
        go (label + gap) e.next
  in
  go 0 t.head

let insert_after t e =
  let label =
    match e.next with
    | None -> e.label + gap
    | Some succ ->
        if succ.label - e.label >= 2 then e.label + ((succ.label - e.label) / 2)
        else begin
          relabel t;
          match e.next with
          | None -> e.label + gap
          | Some succ -> e.label + ((succ.label - e.label) / 2)
        end
  in
  let fresh = { label; prev = Some e; next = e.next; order = t } in
  (match e.next with Some succ -> succ.prev <- Some fresh | None -> ());
  e.next <- Some fresh;
  t.count <- t.count + 1;
  fresh

let compare a b =
  if a.order != b.order then invalid_arg "Order_list.compare: different orders";
  Stdlib.compare a.label b.label

let precedes a b = compare a b < 0

let check_invariants t =
  let rec go = function
    | Some e -> begin
        match e.next with
        | Some succ ->
            if succ.label <= e.label then failwith "Order_list: labels not increasing";
            (match succ.prev with
            | Some p when p == e -> ()
            | _ -> failwith "Order_list: broken back link");
            go e.next
        | None -> ()
      end
    | None -> ()
  in
  go t.head;
  let rec count acc = function
    | None -> acc
    | Some e -> count (acc + 1) e.next
  in
  if count 0 t.head <> t.count then failwith "Order_list: count mismatch"
