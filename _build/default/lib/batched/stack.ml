type t = {
  mutable data : int array;
  mutable size : int;
}

let initial_capacity = 8

let create ?(capacity = initial_capacity) () =
  { data = Array.make (max 1 capacity) 0; size = 0 }

let size t = t.size
let capacity t = Array.length t.data

type pop_record = { mutable popped : int option }

type op =
  | Push of int
  | Pop of pop_record

let push v = Push v
let pop () = Pop { popped = None }

let resize t new_capacity =
  let new_capacity = max initial_capacity new_capacity in
  if new_capacity <> Array.length t.data then begin
    let data = Array.make new_capacity 0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let ensure t needed =
  let cap = Array.length t.data in
  if needed > cap then begin
    let rec grow c = if c >= needed then c else grow (2 * c) in
    resize t (grow cap)
  end
  else if needed < cap / 4 && cap > initial_capacity then
    resize t (max initial_capacity (cap / 2))

let run_batch t d =
  let pushes = Array.fold_left (fun acc o -> match o with Push _ -> acc + 1 | Pop _ -> acc) 0 d in
  ensure t (t.size + pushes);
  (* PUSH phase: batch order = slot order, as in the paper. *)
  Array.iter (function Push v -> t.data.(t.size) <- v; t.size <- t.size + 1 | Pop _ -> ()) d;
  (* POP phase. *)
  Array.iter
    (function
      | Push _ -> ()
      | Pop r ->
          if t.size = 0 then r.popped <- None
          else begin
            t.size <- t.size - 1;
            r.popped <- Some t.data.(t.size)
          end)
    d;
  ensure t t.size

let push_seq t v = run_batch t [| Push v |]

let pop_seq t =
  match pop () with
  | Pop r as o ->
      run_batch t [| o |];
      r.popped
  | Push _ -> assert false

let to_list t = Array.to_list (Array.sub t.data 0 t.size)

let sim_model ?(records_per_node = 1) ?(pop_fraction = 0.0) ?(seed = 42) () =
  (* The model tracks only size and capacity; the push/pop mix per record
     is drawn from a private deterministic stream. *)
  let size = ref 0 in
  let cap = ref initial_capacity in
  let rng = ref (Util.Rng.create ~seed) in
  let reset () =
    size := 0;
    cap := initial_capacity;
    rng := Util.Rng.create ~seed
  in
  let draw_ops x =
    let pops = ref 0 in
    for _ = 1 to x do
      if Util.Rng.float !rng 1.0 < pop_fraction then incr pops
    done;
    (x - !pops, !pops)
  in
  let rebuild_cost () =
    (* Copy the whole table in parallel: Θ(size) work, Θ(lg size) span. *)
    Par.balanced ~leaf_cost:(fun _ -> 1) (max 1 !size)
  in
  let apply pushes pops =
    let rebuilds = ref [] in
    size := !size + pushes;
    if !size > !cap then begin
      rebuilds := rebuild_cost () :: !rebuilds;
      while !size > !cap do
        cap := !cap * 2
      done
    end;
    size := max 0 (!size - pops);
    if !size < !cap / 4 && !cap > initial_capacity then begin
      rebuilds := rebuild_cost () :: !rebuilds;
      while !size < !cap / 4 && !cap > initial_capacity do
        cap := max initial_capacity (!cap / 2)
      done
    end;
    !rebuilds
  in
  let batch_cost nodes =
    let x = records_per_node * Array.length nodes in
    let pushes, pops = draw_ops x in
    let rebuilds = apply pushes pops in
    let phase = Par.balanced ~leaf_cost:(fun _ -> 1) (max 1 x) in
    Par.series (rebuilds @ [ phase; phase ])
  in
  let seq_cost _ =
    let pushes, pops = draw_ops records_per_node in
    let rebuilds = apply pushes pops in
    let rebuild_work =
      List.fold_left (fun acc p -> acc + Par.work p) 0 rebuilds
    in
    max 1 records_per_node + rebuild_work
  in
  { Model.name = "stack"; reset; batch_cost; seq_cost }
