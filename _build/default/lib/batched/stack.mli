(** Batched LIFO stack with amortized bounds — the table-doubling example
    of Section 3.

    The underlying store is a growable/shrinkable array. A batch is split
    into a PUSH phase followed by a POP phase (as in the paper); when the
    combined result does not fit (or leaves the table too empty) the table
    is rebuilt, which the cost model charges as a high-work, low-span
    (highly parallel) batch — exercising the amortized form of the
    performance theorem. *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val capacity : t -> int

type pop_record = { mutable popped : int option }

type op =
  | Push of int
  | Pop of pop_record

val push : int -> op
val pop : unit -> op

val run_batch : t -> op array -> unit
(** PUSH phase in batch order, then POP phase in batch order (LIFO:
    later pops receive deeper elements). *)

val push_seq : t -> int -> unit
val pop_seq : t -> int option

val to_list : t -> int list
(** Bottom to top. *)

val sim_model :
  ?records_per_node:int -> ?pop_fraction:float -> ?seed:int -> unit -> Model.t
(** Cost model: a batch of [x] records costs Θ(x) work / Θ(lg x) span,
    plus Θ(current size) work / Θ(lg size) span whenever the batch
    triggers a table rebuild. Which records are pops is drawn
    deterministically from [seed] with probability [pop_fraction]
    (default 0: all pushes). *)
