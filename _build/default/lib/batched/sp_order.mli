(** On-the-fly series-parallel (SP) order maintenance — the race-detector
    substrate from the paper's introduction (after Bender, Fineman,
    Gilbert, Leiserson, SPAA 2004).

    The executing fork-join program is carved into {e strands}; every
    fork of a strand [s] produces a [left] strand, a [right] strand and
    the [continuation] strand that runs after both join. The structure
    maintains two total orders — the {e English} order (left subtree
    first) and the {e Hebrew} order (right subtree first) — such that
    strand [a] serially precedes strand [b] iff [a] is before [b] in
    {e both} orders; if the orders disagree, the strands are logically
    parallel, and an unordered pair of conflicting memory accesses is a
    determinacy race.

    Fork and query operations are exposed as operation records so the
    whole structure can sit behind [Runtime.Batcher_rt] / [Sim.Batcher]:
    this is the paper's canonical example of a structure whose accesses
    {e cannot} be batched by restructuring the program, because control
    flow blocks on each update. The implementation is entirely free of
    concurrency control, as implicit batching permits. *)

type t
type strand

val create : unit -> t * strand
(** The structure and the root strand of the computation. *)

val fork_seq : t -> strand -> strand * strand * strand
(** [fork_seq t s] splits strand [s]: returns [(left, right,
    continuation)]. Direct (non-batched) interface. *)

val precedes_seq : t -> strand -> strand -> bool
(** [precedes_seq t a b] iff [a] serially precedes [b]. Reflexively
    false: a strand does not precede itself. *)

val parallel_seq : t -> strand -> strand -> bool
(** Logically parallel: neither precedes the other and not equal. *)

type fork_record = {
  fork_of : strand;
  mutable left : strand option;
  mutable right : strand option;
  mutable continuation : strand option;
}

type query_record = {
  q_a : strand;
  q_b : strand;
  mutable q_precedes : bool;
}

type op =
  | Fork of fork_record
  | Precedes of query_record

val fork_op : strand -> op
val precedes_op : strand -> strand -> op

val run_batch : t -> op array -> unit
(** Forks are performed first (in batch order), then queries — so a
    query in a batch observes the batch's forks, matching the blocking
    semantics a program sees through BATCHIFY. *)

val strands : t -> int

val check_invariants : t -> unit

val sim_model : unit -> Model.t
(** Cost model: forks are O(1) amortized label insertions; queries are
    O(1) label comparisons; a batch of x records costs Θ(x) work with
    Θ(lg x) span (the per-record work parallelizes). *)
