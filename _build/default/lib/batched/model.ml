type t = {
  name : string;
  reset : unit -> unit;
  batch_cost : int array -> Par.t;
  seq_cost : int -> int;
}

let scaled base factor = max 1 (int_of_float (Float.round (float_of_int base *. factor)))

let log2_cost n =
  let n = max 2 n in
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 n
