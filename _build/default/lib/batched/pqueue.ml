(* Leftist heap keyed on [prio]; [rank] is the null-path length. *)
type t =
  | E
  | N of { rank : int; prio : int; value : int; left : t; right : t }

let empty = E

let rank = function E -> 0 | N n -> n.rank

let rec size = function E -> 0 | N n -> 1 + size n.left + size n.right

let is_empty t = t = E

let node prio value a b =
  if rank a >= rank b then N { rank = rank b + 1; prio; value; left = a; right = b }
  else N { rank = rank a + 1; prio; value; left = b; right = a }

let rec meld a b =
  match a, b with
  | E, t | t, E -> t
  | N na, N nb ->
      if na.prio <= nb.prio then node na.prio na.value na.left (meld na.right b)
      else node nb.prio nb.value nb.left (meld a nb.right)

let insert t ~prio ~value = meld t (N { rank = 1; prio; value; left = E; right = E })

let find_min = function
  | E -> None
  | N n -> Some (n.prio, n.value)

let delete_min = function
  | E -> None
  | N n -> Some ((n.prio, n.value), meld n.left n.right)

type extract_record = { mutable extracted : (int * int) option }

type op =
  | Insert of int * int
  | Extract_min of extract_record

let insert_op ~prio ~value = Insert (prio, value)
let extract_op () = Extract_min { extracted = None }

let run_batch t d =
  (* Build the batch's private heap, meld once, then serve extractions. *)
  let batch_heap =
    Array.fold_left
      (fun h op ->
        match op with
        | Insert (prio, value) -> insert h ~prio ~value
        | Extract_min _ -> h)
      E d
  in
  let t = ref (meld t batch_heap) in
  Array.iter
    (function
      | Insert _ -> ()
      | Extract_min r -> begin
          match delete_min !t with
          | None -> r.extracted <- None
          | Some (kv, t') ->
              r.extracted <- Some kv;
              t := t'
        end)
    d;
  !t

let rec to_sorted_list t =
  match delete_min t with
  | None -> []
  | Some (kv, t') -> kv :: to_sorted_list t'

let check_invariants t =
  let rec check = function
    | E -> ()
    | N n ->
        (* Heap order. *)
        (match n.left with N l when l.prio < n.prio -> failwith "Pqueue: heap order" | _ -> ());
        (match n.right with N r when r.prio < n.prio -> failwith "Pqueue: heap order" | _ -> ());
        (* Leftist property and rank correctness. *)
        if rank n.left < rank n.right then failwith "Pqueue: leftist property";
        if n.rank <> rank n.right + 1 then failwith "Pqueue: rank";
        check n.left;
        check n.right
  in
  check t

let sim_model ?(records_per_node = 1) () =
  let sz = ref 0 in
  let reset () = sz := 0 in
  let batch_cost nodes =
    let x = max 1 (records_per_node * Array.length nodes) in
    let lg_n = Model.log2_cost (max 2 (!sz + x)) in
    sz := !sz + x;
    Par.balanced ~leaf_cost:(fun _ -> lg_n) x
  in
  let seq_cost _ =
    let c = Model.log2_cost (max 2 !sz) + 1 in
    sz := !sz + records_per_node;
    max 1 (records_per_node * c)
  in
  { Model.name = "pqueue"; reset; batch_cost; seq_cost }
