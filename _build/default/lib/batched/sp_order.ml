type strand = {
  id : int;
  eng : Order_list.elt;
  heb : Order_list.elt;
}

type t = {
  english : Order_list.t;
  hebrew : Order_list.t;
  mutable next_id : int;
}

let create () =
  let english, eng0 = Order_list.create () in
  let hebrew, heb0 = Order_list.create () in
  let t = { english; hebrew; next_id = 1 } in
  (t, { id = 0; eng = eng0; heb = heb0 })

let fresh t ~eng ~heb =
  let s = { id = t.next_id; eng; heb } in
  t.next_id <- t.next_id + 1;
  s

(* Fork of strand s: English gets s < left < right < continuation,
   Hebrew gets s < right < left < continuation. Descendants of a child
   are always inserted right after that child, so they stay inside its
   window in both orders — which is exactly what makes "before in both
   orders" coincide with serial precedence. *)
let fork_seq t s =
  let eng_l = Order_list.insert_after t.english s.eng in
  let eng_r = Order_list.insert_after t.english eng_l in
  let eng_c = Order_list.insert_after t.english eng_r in
  let heb_r = Order_list.insert_after t.hebrew s.heb in
  let heb_l = Order_list.insert_after t.hebrew heb_r in
  let heb_c = Order_list.insert_after t.hebrew heb_l in
  let left = fresh t ~eng:eng_l ~heb:heb_l in
  let right = fresh t ~eng:eng_r ~heb:heb_r in
  let continuation = fresh t ~eng:eng_c ~heb:heb_c in
  (left, right, continuation)

let precedes_seq _t a b =
  a.id <> b.id
  && Order_list.precedes a.eng b.eng
  && Order_list.precedes a.heb b.heb

let parallel_seq t a b =
  a.id <> b.id && (not (precedes_seq t a b)) && not (precedes_seq t b a)

type fork_record = {
  fork_of : strand;
  mutable left : strand option;
  mutable right : strand option;
  mutable continuation : strand option;
}

type query_record = {
  q_a : strand;
  q_b : strand;
  mutable q_precedes : bool;
}

type op =
  | Fork of fork_record
  | Precedes of query_record

let fork_op s = Fork { fork_of = s; left = None; right = None; continuation = None }
let precedes_op a b = Precedes { q_a = a; q_b = b; q_precedes = false }

let run_batch t ops =
  (* Fork phase, then query phase: a query issued concurrently with a
     fork observes it, as the suspended caller would after resuming. *)
  Array.iter
    (function
      | Fork r ->
          let left, right, continuation = fork_seq t r.fork_of in
          r.left <- Some left;
          r.right <- Some right;
          r.continuation <- Some continuation
      | Precedes _ -> ())
    ops;
  Array.iter
    (function
      | Fork _ -> ()
      | Precedes q -> q.q_precedes <- precedes_seq t q.q_a q.q_b)
    ops

let strands t = t.next_id

let check_invariants t =
  Order_list.check_invariants t.english;
  Order_list.check_invariants t.hebrew;
  if Order_list.size t.english <> Order_list.size t.hebrew then
    failwith "Sp_order: order sizes diverged"

let sim_model () =
  let n = ref 1 in
  let reset () = n := 1 in
  let batch_cost nodes =
    let x = max 1 (Array.length nodes) in
    n := !n + x;
    (* Per-record constant label work, parallel combine over the batch. *)
    Par.balanced ~leaf_cost:(fun _ -> 2) x
  in
  let seq_cost _ =
    incr n;
    2
  in
  { Model.name = "sp_order"; reset; batch_cost; seq_cost }
