(** Batched 2-3 tree — the search-tree example of Section 3, after Paul,
    Vishkin and Wagener's batched parallel dictionary.

    The batched insert sorts the batch's keys, inserts the median, and
    recurses on the two halves; every new key is thereby separated from
    the others by existing keys, which is what lets the parallel version
    proceed without concurrency control. The real implementation executes
    the same recursion sequentially (the recursion tree is the parallel
    structure); correctness is oracle-checked against [Stdlib.Set] in the
    tests.

    A size-x batch against n stored keys costs O(x·lg x) sort work plus
    O(x·lg n) search/insert work, with span O(lg x + lg n) — giving the
    paper's W(n) = O(n lg n), s(n) = O(lg n + sort(P)). *)

type t

val empty : t
val size : t -> int
val height : t -> int
val mem : t -> int -> bool
val insert : t -> int -> t
(** Single-key functional insert (the sequential baseline). *)

val delete : t -> int -> t
(** Single-key functional delete (no-op when absent), with standard 2-3
    rebalancing (rotate from a 3-node sibling, else merge and shrink). *)

type insert_record = { key : int; mutable inserted : bool }
type mem_record = { mem_key : int; mutable found : bool }
type delete_record = { del_key : int; mutable deleted : bool }

type op =
  | Insert of insert_record
  | Mem of mem_record
  | Delete of delete_record

val insert_op : int -> op
val mem_op : int -> op
val delete_op : int -> op

val run_batch : t -> op array -> t
(** Phase order within a batch: median-first recursive inserts, then
    deletes, then membership tests (which observe the net effect). *)

val to_sorted_list : t -> int list

val check_invariants : t -> unit
(** All leaves at equal depth, keys in order; raises [Failure]. *)

val sim_model :
  initial_size:int -> ?records_per_node:int -> ?search_scale:float -> unit -> Model.t
(** Cost model: sort (x parallel leaves of lg x each), search (x parallel
    leaves of ~lg n each), then the insertion recursion (balanced over x
    with lg n per leaf). *)
