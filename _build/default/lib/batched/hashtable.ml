type t = {
  mutable table : (int * int) list array;
  mutable count : int;
}

let min_buckets = 16

let create ?(initial_buckets = min_buckets) () =
  { table = Array.make (max 1 initial_buckets) []; count = 0 }

let length t = t.count
let buckets t = Array.length t.table

(* Fibonacci hashing on the key, reduced modulo the current table. *)
let bucket_of t key =
  let h = key * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 31)) land max_int mod Array.length t.table

type insert_record = { i_key : int; i_value : int; mutable replaced : bool }
type lookup_record = { l_key : int; mutable l_value : int option }
type remove_record = { r_key : int; mutable removed : bool }

type op =
  | Insert of insert_record
  | Lookup of lookup_record
  | Remove of remove_record

let insert ~key ~value = Insert { i_key = key; i_value = value; replaced = false }
let lookup key = Lookup { l_key = key; l_value = None }
let remove key = Remove { r_key = key; removed = false }

let resize t new_size =
  let old = t.table in
  t.table <- Array.make (max min_buckets new_size) [];
  Array.iter
    (fun chain ->
      List.iter
        (fun (k, v) ->
          let b = bucket_of t k in
          t.table.(b) <- (k, v) :: t.table.(b))
        chain)
    old

let maybe_resize t =
  (* A whole batch lands before the check, so the table may need to grow
     or shrink by several factors at once. *)
  let n_buckets = Array.length t.table in
  if t.count > 2 * n_buckets then begin
    let rec grow s = if t.count > 2 * s then grow (2 * s) else s in
    resize t (grow n_buckets)
  end
  else if t.count < n_buckets / 4 && n_buckets > min_buckets then begin
    let rec shrink s =
      if t.count < s / 4 && s > min_buckets then shrink (s / 2) else s
    in
    resize t (shrink n_buckets)
  end

let apply_one t op =
  match op with
  | Insert r ->
      let b = bucket_of t r.i_key in
      let chain = t.table.(b) in
      if List.mem_assoc r.i_key chain then begin
        r.replaced <- true;
        t.table.(b) <- (r.i_key, r.i_value) :: List.remove_assoc r.i_key chain
      end
      else begin
        t.table.(b) <- (r.i_key, r.i_value) :: chain;
        t.count <- t.count + 1
      end
  | Lookup r -> r.l_value <- List.assoc_opt r.l_key t.table.(bucket_of t r.l_key)
  | Remove r ->
      let b = bucket_of t r.r_key in
      let chain = t.table.(b) in
      if List.mem_assoc r.r_key chain then begin
        r.removed <- true;
        t.table.(b) <- List.remove_assoc r.r_key chain;
        t.count <- t.count - 1
      end

let run_batch t ops =
  (* The parallel version groups records by bucket and walks buckets
     concurrently; applying records in batch order per bucket gives the
     same results, which is what this sequential core does. *)
  Array.iter (apply_one t) ops;
  maybe_resize t

let insert_seq t ~key ~value =
  match insert ~key ~value with
  | Insert r as op ->
      run_batch t [| op |];
      r.replaced
  | _ -> assert false

let lookup_seq t key =
  match lookup key with
  | Lookup r as op ->
      run_batch t [| op |];
      r.l_value
  | _ -> assert false

let remove_seq t key =
  match remove key with
  | Remove r as op ->
      run_batch t [| op |];
      r.removed
  | _ -> assert false

let to_sorted_bindings t =
  Array.to_list t.table |> List.concat |> List.sort compare

let check_invariants t =
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun b chain ->
      List.iter
        (fun (k, _) ->
          if bucket_of t k <> b then failwith "Hashtable: entry in wrong bucket";
          if Hashtbl.mem seen k then failwith "Hashtable: duplicate key";
          Hashtbl.add seen k ())
        chain)
    t.table;
  if Hashtbl.length seen <> t.count then failwith "Hashtable: count mismatch";
  let n_buckets = Array.length t.table in
  if t.count > 2 * n_buckets then failwith "Hashtable: overfull";
  if n_buckets > min_buckets && t.count < n_buckets / 4 then
    failwith "Hashtable: underfull"

let sim_model ?(records_per_node = 1) () =
  let count = ref 0 in
  let n_buckets = ref min_buckets in
  let reset () =
    count := 0;
    n_buckets := min_buckets
  in
  (* Inserts only (the model's worst case for growth). *)
  let apply x =
    count := !count + x;
    if !count > 2 * !n_buckets then begin
      let copy = Par.balanced ~leaf_cost:(fun _ -> 1) (max 1 !count) in
      while !count > 2 * !n_buckets do
        n_buckets := 2 * !n_buckets
      done;
      Some copy
    end
    else None
  in
  let batch_cost nodes =
    let x = max 1 (records_per_node * Array.length nodes) in
    let resize = apply x in
    let partition = Par.leaf x in
    let walk = Par.balanced ~leaf_cost:(fun _ -> 2) x in
    match resize with
    | Some copy -> Par.series [ partition; walk; copy ]
    | None -> Par.series [ partition; walk ]
  in
  let seq_cost _ =
    match apply records_per_node with
    | Some copy -> (records_per_node * 3) + Par.work copy
    | None -> records_per_node * 3
  in
  { Model.name = "hashtable"; reset; batch_cost; seq_cost }
