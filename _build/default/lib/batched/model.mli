(** Simulator-facing cost models of batched data structures.

    The simulator schedules a core DAG whose [Ds] nodes carry operation
    indices. When BATCHER launches a batch, it asks the data structure's
    model for the batch DAG shape: [batch_cost] receives the indices of
    the data-structure nodes in the batch, applies the batch's effect on
    the structure's (abstract, mutable) state — e.g. growing a skip list —
    and returns the {!Dag.Par.t} cost expression of the BOP, from which
    the paper's batch work [w_A] and batch span [s_A] follow.

    [seq_cost] supports the sequential and lock-serialized baselines: the
    cost of executing one operation node alone against the current state
    (also applying its state effect).

    A model instance is mutable; call [reset] before every simulation run
    so repeated runs are identical. *)

type t = {
  name : string;
  reset : unit -> unit;
  batch_cost : int array -> Par.t;
  seq_cost : int -> int;
}

val scaled : int -> float -> int
(** [scaled base factor] = [max 1 (round (base * factor))] — helper for
    cost-model constants. *)

val log2_cost : int -> int
(** [log2_cost n] = ceil(log2 (max 2 n)) — the canonical "height of a
    search structure of n elements" cost. *)
