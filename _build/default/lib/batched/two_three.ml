(* Functional 2-3 tree. Internal nodes store routing keys equal to actual
   stored keys (classic BST-style 2-3 tree on values). *)

type t =
  | Leaf
  | Two of t * int * t
  | Three of t * int * t * int * t

let empty = Leaf

let rec size = function
  | Leaf -> 0
  | Two (l, _, r) -> 1 + size l + size r
  | Three (l, _, m, _, r) -> 2 + size l + size m + size r

let rec height = function
  | Leaf -> 0
  | Two (l, _, _) -> 1 + height l
  | Three (l, _, _, _, _) -> 1 + height l

let rec mem t k =
  match t with
  | Leaf -> false
  | Two (l, a, r) -> if k = a then true else if k < a then mem l k else mem r k
  | Three (l, a, m, b, r) ->
      if k = a || k = b then true
      else if k < a then mem l k
      else if k < b then mem m k
      else mem r k

(* Insertion: either the subtree absorbs the key at the same height, or it
   splits into (left, middle-key, right), each of the original height. *)
type grow =
  | Same of t
  | Split of t * int * t

let rec ins t k =
  match t with
  | Leaf -> Split (Leaf, k, Leaf)
  | Two (l, a, r) ->
      if k = a then Same t
      else if k < a then begin
        match ins l k with
        | Same l' -> Same (Two (l', a, r))
        | Split (x, b, y) -> Same (Three (x, b, y, a, r))
      end
      else begin
        match ins r k with
        | Same r' -> Same (Two (l, a, r'))
        | Split (x, b, y) -> Same (Three (l, a, x, b, y))
      end
  | Three (l, a, m, b, r) ->
      if k = a || k = b then Same t
      else if k < a then begin
        match ins l k with
        | Same l' -> Same (Three (l', a, m, b, r))
        | Split (x, c, y) -> Split (Two (x, c, y), a, Two (m, b, r))
      end
      else if k < b then begin
        match ins m k with
        | Same m' -> Same (Three (l, a, m', b, r))
        | Split (x, c, y) -> Split (Two (l, a, x), c, Two (y, b, r))
      end
      else begin
        match ins r k with
        | Same r' -> Same (Three (l, a, m, b, r'))
        | Split (x, c, y) -> Split (Two (l, a, m), b, Two (x, c, y))
      end

let insert t k =
  match ins t k with
  | Same t' -> t'
  | Split (l, a, r) -> Two (l, a, r)

(* Deletion: [del] returns the subtree plus whether its height shrank by
   one; a shrunken child is repaired at its parent by borrowing from a
   3-node sibling (rotation) or merging with a 2-node sibling
   (propagating the shrink). *)
type shrink =
  | Full of t  (* same height *)
  | Shrunk of t  (* height reduced by one *)

(* Repair [Shrunk] children of a Two node. *)
let fix_two_left l' a r =
  match r with
  | Two (rl, b, rr) -> Shrunk (Three (l', a, rl, b, rr))
  | Three (rl, b, rm, c, rr) -> Full (Two (Two (l', a, rl), b, Two (rm, c, rr)))
  | Leaf -> assert false

let fix_two_right l a r' =
  match l with
  | Two (ll, b, lr) -> Shrunk (Three (ll, b, lr, a, r'))
  | Three (ll, b, lm, c, lr) -> Full (Two (Two (ll, b, lm), c, Two (lr, a, r')))
  | Leaf -> assert false

(* Repair [Shrunk] children of a Three node (always yields Full). *)
let fix_three_left l' a m b r =
  match m with
  | Two (ml, c, mr) -> Full (Two (Three (l', a, ml, c, mr), b, r))
  | Three (ml, c, mm, d, mr) ->
      Full (Three (Two (l', a, ml), c, Two (mm, d, mr), b, r))
  | Leaf -> assert false

let fix_three_mid l a m' b r =
  match l, r with
  | Three (ll, c, lm, d, lr), _ ->
      Full (Three (Two (ll, c, lm), d, Two (lr, a, m'), b, r))
  | _, Three (rl, c, rm, d, rr) ->
      Full (Three (l, a, Two (m', b, rl), c, Two (rm, d, rr)))
  | Two (ll, c, lr), _ -> Full (Two (Three (ll, c, lr, a, m'), b, r))
  | Leaf, _ -> assert false

let fix_three_right l a m b r' =
  match m with
  | Two (ml, c, mr) -> Full (Two (l, a, Three (ml, c, mr, b, r')))
  | Three (ml, c, mm, d, mr) ->
      Full (Three (l, a, Two (ml, c, mm), d, Two (mr, b, r')))
  | Leaf -> assert false

(* Remove and return the minimum key of a nonempty subtree. *)
let rec del_min t =
  match t with
  | Leaf -> invalid_arg "Two_three.del_min: empty"
  | Two (Leaf, a, Leaf) -> (a, Shrunk Leaf)
  | Three (Leaf, a, Leaf, b, Leaf) -> (a, Full (Two (Leaf, b, Leaf)))
  | Two (l, a, r) -> begin
      match del_min l with
      | k, Full l' -> (k, Full (Two (l', a, r)))
      | k, Shrunk l' -> (k, fix_two_left l' a r)
    end
  | Three (l, a, m, b, r) -> begin
      match del_min l with
      | k, Full l' -> (k, Full (Three (l', a, m, b, r)))
      | k, Shrunk l' -> (k, fix_three_left l' a m b r)
    end

let rec del t k =
  match t with
  | Leaf -> Full Leaf
  | Two (Leaf, a, Leaf) -> if k = a then Shrunk Leaf else Full t
  | Three (Leaf, a, Leaf, b, Leaf) ->
      if k = a then Full (Two (Leaf, b, Leaf))
      else if k = b then Full (Two (Leaf, a, Leaf))
      else Full t
  | Two (l, a, r) ->
      if k < a then begin
        match del l k with
        | Full l' -> Full (Two (l', a, r))
        | Shrunk l' -> fix_two_left l' a r
      end
      else if k > a then begin
        match del r k with
        | Full r' -> Full (Two (l, a, r'))
        | Shrunk r' -> fix_two_right l a r'
      end
      else begin
        (* Replace a by its successor, then repair. *)
        match del_min r with
        | s, Full r' -> Full (Two (l, s, r'))
        | s, Shrunk r' -> fix_two_right l s r'
      end
  | Three (l, a, m, b, r) ->
      if k < a then begin
        match del l k with
        | Full l' -> Full (Three (l', a, m, b, r))
        | Shrunk l' -> fix_three_left l' a m b r
      end
      else if k = a then begin
        match del_min m with
        | s, Full m' -> Full (Three (l, s, m', b, r))
        | s, Shrunk m' -> fix_three_mid l s m' b r
      end
      else if k < b then begin
        match del m k with
        | Full m' -> Full (Three (l, a, m', b, r))
        | Shrunk m' -> fix_three_mid l a m' b r
      end
      else if k = b then begin
        match del_min r with
        | s, Full r' -> Full (Three (l, a, m, s, r'))
        | s, Shrunk r' -> fix_three_right l a m s r'
      end
      else begin
        match del r k with
        | Full r' -> Full (Three (l, a, m, b, r'))
        | Shrunk r' -> fix_three_right l a m b r'
      end

let delete t k =
  match del t k with
  | Full t' -> t'
  | Shrunk t' -> t'

type insert_record = { key : int; mutable inserted : bool }
type mem_record = { mem_key : int; mutable found : bool }
type delete_record = { del_key : int; mutable deleted : bool }

type op =
  | Insert of insert_record
  | Mem of mem_record
  | Delete of delete_record

let insert_op key = Insert { key; inserted = false }
let mem_op key = Mem { mem_key = key; found = false }
let delete_op key = Delete { del_key = key; deleted = false }

let run_batch t d =
  let records =
    Array.to_list d
    |> List.filter_map (function
         | Insert r -> Some r
         | Mem _ | Delete _ -> None)
  in
  let sorted =
    List.sort_uniq (fun (a : insert_record) b -> compare a.key b.key) records
  in
  let arr = Array.of_list sorted in
  (* Median-first recursion over the sorted batch (Paul-Vishkin-Wagener):
     after inserting the median, the halves target disjoint tree regions,
     which is what the parallel version exploits. *)
  let rec insert_range t lo hi =
    if lo >= hi then t
    else begin
      let mid = (lo + hi) / 2 in
      let r = arr.(mid) in
      let before = mem t r.key in
      let t = insert t r.key in
      if not before then r.inserted <- true;
      let t = insert_range t lo mid in
      insert_range t (mid + 1) hi
    end
  in
  let t = insert_range t 0 (Array.length arr) in
  (* Duplicate records in the same batch: mark inserted on the first
     occurrence only (sort_uniq already keeps one record per key; other
     records with the same key keep [inserted = false]). *)
  (* Delete phase. *)
  let t =
    Array.fold_left
      (fun t op ->
        match op with
        | Delete r ->
            if mem t r.del_key then begin
              r.deleted <- true;
              delete t r.del_key
            end
            else t
        | Insert _ | Mem _ -> t)
      t d
  in
  (* Membership phase observes the batch's net effect. *)
  Array.iter
    (function
      | Insert _ | Delete _ -> ()
      | Mem r -> r.found <- mem t r.mem_key)
    d;
  t

let rec to_sorted_list = function
  | Leaf -> []
  | Two (l, a, r) -> to_sorted_list l @ (a :: to_sorted_list r)
  | Three (l, a, m, b, r) ->
      to_sorted_list l @ (a :: to_sorted_list m) @ (b :: to_sorted_list r)

let check_invariants t =
  (* Uniform leaf depth. *)
  let rec depth = function
    | Leaf -> 0
    | Two (l, _, r) ->
        let dl = depth l and dr = depth r in
        if dl <> dr then failwith "Two_three: unbalanced Two node";
        dl + 1
    | Three (l, _, m, _, r) ->
        let dl = depth l and dm = depth m and dr = depth r in
        if dl <> dm || dm <> dr then failwith "Two_three: unbalanced Three node";
        dl + 1
  in
  ignore (depth t);
  (* Strictly ascending in-order keys. *)
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        if a >= b then failwith "Two_three: keys out of order";
        ascending rest
    | _ -> ()
  in
  ascending (to_sorted_list t)

let sim_model ~initial_size ?(records_per_node = 1) ?(search_scale = 1.0) () =
  let size = ref initial_size in
  let reset () = size := initial_size in
  let batch_cost nodes =
    let x = max 1 (records_per_node * Array.length nodes) in
    let lg_x = Model.log2_cost x in
    let lg_n = Model.scaled (Model.log2_cost !size) search_scale in
    let sort = Par.balanced ~leaf_cost:(fun _ -> lg_x) x in
    let searches = Par.balanced ~leaf_cost:(fun _ -> lg_n) x in
    let insert_rec = Par.balanced ~leaf_cost:(fun _ -> lg_n) x in
    size := !size + x;
    Par.series [ sort; searches; insert_rec ]
  in
  let seq_cost _ =
    let c = Model.scaled (Model.log2_cost !size) search_scale + 2 in
    size := !size + records_per_node;
    max 1 (records_per_node * c)
  in
  { Model.name = "two_three"; reset; batch_cost; seq_cost }
