type t = {
  mutable data : int array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
}

let initial_capacity = 8

let create ?(capacity = initial_capacity) () =
  { data = Array.make (max 1 capacity) 0; head = 0; len = 0 }

let size t = t.len
let capacity t = Array.length t.data

type dequeue_record = { mutable dequeued : int option }

type op =
  | Enqueue of int
  | Dequeue of dequeue_record

let enqueue v = Enqueue v
let dequeue () = Dequeue { dequeued = None }

let rebuild t new_capacity =
  let new_capacity = max initial_capacity new_capacity in
  if new_capacity <> Array.length t.data || t.head <> 0 then begin
    let cap = Array.length t.data in
    let data = Array.make new_capacity 0 in
    for i = 0 to t.len - 1 do
      data.(i) <- t.data.((t.head + i) mod cap)
    done;
    t.data <- data;
    t.head <- 0
  end

let ensure t needed =
  let cap = Array.length t.data in
  if needed > cap then begin
    let rec grow c = if c >= needed then c else grow (2 * c) in
    rebuild t (grow cap)
  end
  else if needed < cap / 4 && cap > initial_capacity then begin
    let rec shrink c = if needed < c / 4 && c > initial_capacity then shrink (c / 2) else c in
    rebuild t (shrink cap)
  end

let run_batch t d =
  let enqueues =
    Array.fold_left (fun acc o -> match o with Enqueue _ -> acc + 1 | Dequeue _ -> acc) 0 d
  in
  ensure t (t.len + enqueues);
  (* ENQUEUE phase: batch order, at the tail. *)
  Array.iter
    (function
      | Enqueue v ->
          let cap = Array.length t.data in
          t.data.((t.head + t.len) mod cap) <- v;
          t.len <- t.len + 1
      | Dequeue _ -> ())
    d;
  (* DEQUEUE phase: batch order, oldest first. *)
  Array.iter
    (function
      | Enqueue _ -> ()
      | Dequeue r ->
          if t.len = 0 then r.dequeued <- None
          else begin
            r.dequeued <- Some t.data.(t.head);
            t.head <- (t.head + 1) mod Array.length t.data;
            t.len <- t.len - 1
          end)
    d;
  ensure t t.len

let enqueue_seq t v = run_batch t [| Enqueue v |]

let dequeue_seq t =
  match dequeue () with
  | Dequeue r as op ->
      run_batch t [| op |];
      r.dequeued
  | Enqueue _ -> assert false

let to_list t =
  List.init t.len (fun i -> t.data.((t.head + i) mod Array.length t.data))

let check_invariants t =
  if t.len < 0 || t.len > Array.length t.data then failwith "Fifo: bad length";
  if t.head < 0 || t.head >= Array.length t.data then failwith "Fifo: bad head";
  let cap = Array.length t.data in
  if cap > initial_capacity && t.len < cap / 4 then failwith "Fifo: underfull"

let sim_model ?(records_per_node = 1) ?(dequeue_fraction = 0.0) ?(seed = 47) () =
  (* Same shape as the stack's model: linear phases with parallel-combine
     span, plus occasional rebuild cost. *)
  let len = ref 0 in
  let cap = ref initial_capacity in
  let rng = ref (Util.Rng.create ~seed) in
  let reset () =
    len := 0;
    cap := initial_capacity;
    rng := Util.Rng.create ~seed
  in
  let draw x =
    let deqs = ref 0 in
    for _ = 1 to x do
      if Util.Rng.float !rng 1.0 < dequeue_fraction then incr deqs
    done;
    (x - !deqs, !deqs)
  in
  let apply enq deq =
    let rebuilds = ref [] in
    len := !len + enq;
    if !len > !cap then begin
      rebuilds := Par.balanced ~leaf_cost:(fun _ -> 1) (max 1 !len) :: !rebuilds;
      while !len > !cap do
        cap := !cap * 2
      done
    end;
    len := max 0 (!len - deq);
    if !len < !cap / 4 && !cap > initial_capacity then begin
      rebuilds := Par.balanced ~leaf_cost:(fun _ -> 1) (max 1 !len) :: !rebuilds;
      while !len < !cap / 4 && !cap > initial_capacity do
        cap := max initial_capacity (!cap / 2)
      done
    end;
    !rebuilds
  in
  let batch_cost nodes =
    let x = max 1 (records_per_node * Array.length nodes) in
    let enq, deq = draw x in
    let rebuilds = apply enq deq in
    let phase = Par.balanced ~leaf_cost:(fun _ -> 1) x in
    Par.series (rebuilds @ [ phase; phase ])
  in
  let seq_cost _ =
    let enq, deq = draw records_per_node in
    let rebuilds = apply enq deq in
    max 1 records_per_node
    + List.fold_left (fun acc pr -> acc + Par.work pr) 0 rebuilds
  in
  { Model.name = "fifo"; reset; batch_cost; seq_cost }
