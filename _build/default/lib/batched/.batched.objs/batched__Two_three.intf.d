lib/batched/two_three.mli: Model
