lib/batched/order_list.mli:
