lib/batched/pqueue.mli: Model
