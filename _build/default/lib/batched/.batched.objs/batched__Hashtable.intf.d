lib/batched/hashtable.mli: Model
