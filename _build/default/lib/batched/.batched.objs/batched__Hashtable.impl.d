lib/batched/hashtable.ml: Array Hashtbl List Model Par
