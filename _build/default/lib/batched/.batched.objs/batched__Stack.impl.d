lib/batched/stack.ml: Array List Model Par Util
