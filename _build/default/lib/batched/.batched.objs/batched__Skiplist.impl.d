lib/batched/skiplist.ml: Array Int64 List Model Par Util
