lib/batched/stack.mli: Model
