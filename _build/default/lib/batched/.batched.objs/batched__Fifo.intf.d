lib/batched/fifo.mli: Model
