lib/batched/ostree.mli: Model
