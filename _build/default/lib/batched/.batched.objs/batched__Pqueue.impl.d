lib/batched/pqueue.ml: Array Model Par
