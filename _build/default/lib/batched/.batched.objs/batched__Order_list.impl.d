lib/batched/order_list.ml: Stdlib
