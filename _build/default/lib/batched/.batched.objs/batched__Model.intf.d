lib/batched/model.mli: Par
