lib/batched/sp_order.mli: Model
