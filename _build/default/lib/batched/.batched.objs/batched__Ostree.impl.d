lib/batched/ostree.ml: Array List Model Par
