lib/batched/skiplist.mli: Model
