lib/batched/two_three.ml: Array List Model Par
