lib/batched/sp_order.ml: Array Model Order_list Par
