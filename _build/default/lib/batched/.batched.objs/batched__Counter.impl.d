lib/batched/counter.ml: Array Model Par
