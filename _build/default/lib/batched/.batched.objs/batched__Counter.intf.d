lib/batched/counter.mli: Model
