lib/batched/model.ml: Float Par
