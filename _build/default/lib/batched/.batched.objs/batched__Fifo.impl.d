lib/batched/fifo.ml: Array List Model Par Util
