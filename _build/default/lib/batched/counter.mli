(** Batched shared counter — Figure 2 of the paper.

    INCREMENT atomically adds an amount (possibly negative) and returns
    the counter's value after the addition. The batched operation runs
    prefix sums over the batch, so every operation in the batch receives
    the value it would have seen in the linearization order given by batch
    position — a linearizable counter without any atomics. *)

type t

val create : ?init:int -> unit -> t
val value : t -> int

type op = { amount : int; mutable result : int }

val op : int -> op
(** [op amount] makes an operation record with unset result. *)

val run_batch : t -> op array -> unit
(** Execute a batch: afterwards [(run_batch t d); d.(i).result] equals
    the counter value after the first [i+1] amounts were applied, and
    [value t] equals the old value plus the batch total. *)

val increment_seq : t -> int -> int
(** Sequential single-op baseline. *)

val sim_model : ?records_per_node:int -> unit -> Model.t
(** Simulator cost model: a batch of [x] records costs Θ(x) work and
    Θ(lg x) span (two-pass parallel prefix sums); a lone sequential
    increment costs 1. Each data-structure node carries
    [records_per_node] increments (default 1). *)
