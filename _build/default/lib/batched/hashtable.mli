(** Batched hash table (separate chaining, table doubling).

    The batched operation partitions the batch's records by bucket and
    then processes buckets independently — disjoint buckets are the
    parallelism a batched BOP exploits, with no per-bucket locks needed
    since only one batch runs at a time. Within a batch, records are
    applied in batch order per bucket, and lookups observe earlier
    updates of the same batch. *)

type t

val create : ?initial_buckets:int -> unit -> t
val length : t -> int
val buckets : t -> int

type insert_record = { i_key : int; i_value : int; mutable replaced : bool }
type lookup_record = { l_key : int; mutable l_value : int option }
type remove_record = { r_key : int; mutable removed : bool }

type op =
  | Insert of insert_record
  | Lookup of lookup_record
  | Remove of remove_record

val insert : key:int -> value:int -> op
val lookup : int -> op
val remove : int -> op

val run_batch : t -> op array -> unit

val insert_seq : t -> key:int -> value:int -> bool
(** [true] if an existing binding was replaced. *)

val lookup_seq : t -> int -> int option
val remove_seq : t -> int -> bool

val to_sorted_bindings : t -> (int * int) list

val check_invariants : t -> unit
(** Every entry hashes to its bucket; no duplicate keys; load factor
    within the resize window. *)

val sim_model : ?records_per_node:int -> unit -> Model.t
(** Cost model: a batch of x records costs a Θ(x) partition plus x
    parallel constant-cost bucket operations; resizes add Θ(size) work
    at Θ(lg size) span. *)
