(** Drivers that regenerate every figure and table of the paper's
    evaluation (and this repo's extension experiments). Each returns
    structured rows; {!Report} renders them. The experiment ids match
    DESIGN.md's per-experiment index. *)

(** E1 — Figure 5: BATCHER vs sequential skip-list insertion throughput,
    one row per initial list size. Throughput is records per simulated
    timestep; [seq_throughput] is worker-count independent. *)
type fig5_row = {
  initial : int;
  seq_throughput : float;
  batcher : (int * float * float) list;
      (** (P, mean throughput, sample stddev) over the seed set *)
}

val fig5 :
  ?n_records:int ->
  ?records_per_node:int ->
  ?ps:int list ->
  ?sizes:int list ->
  ?seed:int ->
  ?seeds:int list ->
  unit ->
  fig5_row list
(** Defaults are the paper's parameters: 100,000 insertions, 100 records
    per BATCHIFY, initial sizes 20K/100K/1M/10M/100M, P = 1..8. Each
    BATCHER point averages over [seeds] (default: three seeds derived
    from [seed]); the sequential baseline is deterministic. *)

(** E2 — flat-combining comparison on the skip-list workload. *)
type flatcomb_row = {
  fc_p : int;
  batcher_tp : float;
  flatcomb_tp : float;
  seq_tp : float;
}

val flatcomb :
  ?initial:int ->
  ?n_records:int ->
  ?records_per_node:int ->
  ?ps:int list ->
  ?seed:int ->
  unit ->
  flatcomb_row list

(** E3/E4/E5 — the Section 3 example structures: BATCHER vs the
    lock-serialized concurrent model vs sequential, plus the Theorem-1
    prediction ratio. *)
type example_row = {
  ex_p : int;
  batcher_makespan : int;
  lock_makespan : int;  (** idealized mutex: Ω(n) floor, no contention cost *)
  cas_makespan : int;  (** contended primitive: Ω(P) per access worst case *)
  seq_makespan : int;
  bound_ratio : float;  (** measured / Theorem-1 prediction *)
}

val counter_example : ?n:int -> ?ps:int list -> ?seed:int -> unit -> example_row list
val tree_example :
  ?initial:int -> ?n:int -> ?ps:int list -> ?seed:int -> unit -> example_row list
val stack_example : ?n:int -> ?ps:int list -> ?seed:int -> unit -> example_row list

(** E6 — Theorem 1 validation sweep. *)
type theory_row = {
  th_ds : string;
  th_workload : string;
  th_p : int;
  measured : int;
  predicted : int;
  ratio : float;
}

val theory_table : ?seed:int -> unit -> theory_row list

(** E8 — Theorem 3 validation: for a τ sweep, compare the measured
    makespan against (T1 + W + n·τ)/P + T∞ + S_τ(n) + m·τ, where W and
    the τ-trimmed span S_τ are {e measured} from the run's batch log. *)
type tau_row = {
  t3_p : int;
  t3_tau : int;
  t3_long_batches : int;  (** batches with s_A > τ *)
  t3_trimmed_span : int;  (** measured S_τ(n) *)
  t3_measured : int;
  t3_predicted : int;
  t3_ratio : float;
}

val theorem3 : ?seed:int -> unit -> tau_row list

(** E7 — Lemma 2: maximum number of batches any operation waits for. *)
type lemma2_row = {
  l2_workload : string;
  l2_p : int;
  max_trapped_batches : int;
}

val lemma2 : ?seed:int -> unit -> lemma2_row list

(** A1/A2/A3 — scheduler ablations on the skip-list workload. *)
type ablation_row = {
  ab_variant : string;
  ab_p : int;
  ab_makespan : int;
  ab_steals : int;
  ab_batches : int;
}

val ablate_steal : ?seed:int -> unit -> ablation_row list
val ablate_launch : ?seed:int -> unit -> ablation_row list
val ablate_cap : ?seed:int -> unit -> ablation_row list

val ablate_overhead : ?seed:int -> unit -> ablation_row list
(** A4 — LAUNCHBATCH overhead model: the paper's tree-shaped
    setup+cleanup vs a fused single stage vs a zero-overhead oracle,
    quantifying the conclusion's "can the O(lg P) overhead be reduced?"
    question. *)

(** E9 — the conclusion's pthreaded scenario: statically threaded
    programs whose only dynamic parallelism is the batched structure. *)
type pthread_row = {
  pt_threads : int;
  pt_batcher : int;
  pt_lock : int;
  pt_seq : int;
}

val pthreaded : ?ops_per_thread:int -> ?seed:int -> unit -> pthread_row list

(** E10 — several implicitly batched structures used from one program
    (counter + skip list + hash table, interleaved). The simulator keeps
    one batch in flight per structure, so batches of different
    structures overlap — the composition the modular theorem prices by
    summing per-structure terms. *)
type multi_row = {
  mu_p : int;
  mu_batcher : int;
  mu_lock : int;
  mu_seq : int;
  mu_batches : int;
}

val multi_structure : ?n:int -> ?seed:int -> unit -> multi_row list

(** A5 — batching granularity: the paper's "100 insertion records per
    BATCHIFY" knob, swept. Few records per call = launch overhead per
    record dominates; many = overhead amortizes. *)
type granularity_row = {
  g_records_per_node : int;
  g_p : int;
  g_throughput : float;
  g_seq_throughput : float;
}

val ablate_granularity :
  ?initial:int -> ?n_records:int -> ?seed:int -> unit -> granularity_row list
