let default_ps = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let skiplist_workload ~initial ~records_per_node ~n_nodes () =
  Sim.Workload.parallel_ops
    ~model:(Batched.Skiplist.sim_model ~initial_size:initial ~records_per_node ())
    ~records_per_node ~n_nodes ()

let run_batcher ~p ~seed w =
  Sim.Batcher.run { (Sim.Batcher.default ~p) with Sim.Batcher.seed } w

(* ---------- E1: Figure 5 ---------- *)

type fig5_row = {
  initial : int;
  seq_throughput : float;
  batcher : (int * float * float) list;  (* worker count, mean, stddev *)
}

let fig5 ?(n_records = 100_000) ?(records_per_node = 100) ?(ps = default_ps)
    ?(sizes = [ 20_000; 100_000; 1_000_000; 10_000_000; 100_000_000 ]) ?(seed = 1)
    ?seeds () =
  let n_nodes = max 1 (n_records / records_per_node) in
  let seeds =
    match seeds with Some l when l <> [] -> l | _ -> [ seed; seed + 1; seed + 2 ]
  in
  List.map
    (fun initial ->
      let mk () = skiplist_workload ~initial ~records_per_node ~n_nodes () in
      let seq = Sim.Seqexec.run (mk ()) in
      let batcher =
        List.map
          (fun p ->
            let tps =
              Array.of_list
                (List.map
                   (fun seed -> Sim.Metrics.throughput (run_batcher ~p ~seed (mk ())))
                   seeds)
            in
            (p, Util.Stats.mean tps, Util.Stats.stddev tps))
          ps
      in
      { initial; seq_throughput = Sim.Metrics.throughput seq; batcher })
    sizes

(* ---------- E2: flat combining ---------- *)

type flatcomb_row = {
  fc_p : int;
  batcher_tp : float;
  flatcomb_tp : float;
  seq_tp : float;
}

let flatcomb ?(initial = 1_000_000) ?(n_records = 100_000) ?(records_per_node = 100)
    ?(ps = default_ps) ?(seed = 1) () =
  let n_nodes = max 1 (n_records / records_per_node) in
  let mk () = skiplist_workload ~initial ~records_per_node ~n_nodes () in
  let seq_tp = Sim.Metrics.throughput (Sim.Seqexec.run (mk ())) in
  List.map
    (fun p ->
      let b = run_batcher ~p ~seed (mk ()) in
      let fc = Sim.Flatcomb.run ~seed ~p (mk ()) in
      {
        fc_p = p;
        batcher_tp = Sim.Metrics.throughput b;
        flatcomb_tp = Sim.Metrics.throughput fc;
        seq_tp;
      })
    ps

(* ---------- E3/E4/E5: the Section 3 examples ---------- *)

type example_row = {
  ex_p : int;
  batcher_makespan : int;
  lock_makespan : int;
  cas_makespan : int;
  seq_makespan : int;
  bound_ratio : float;
}

let example_ps = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

let example_rows ~mk ~bounds ~ps ~seed () =
  List.map
    (fun p ->
      let w = mk () in
      let t1, t_inf, n_ops, m = Sim.Workload.core_metrics w in
      let n_records = Sim.Workload.total_records w in
      let b = run_batcher ~p ~seed w in
      let lock = Sim.Lockconc.run { (Sim.Lockconc.default ~p) with Sim.Lockconc.seed } w in
      let cas =
        Sim.Lockconc.run
          { (Sim.Lockconc.default ~p) with Sim.Lockconc.seed; contention = true }
          w
      in
      let seq = Sim.Seqexec.run w in
      let predicted = Theory.predict bounds ~p ~t1 ~t_inf ~n_ops ~m ~n_records in
      {
        ex_p = p;
        batcher_makespan = b.Sim.Metrics.makespan;
        lock_makespan = lock.Sim.Metrics.makespan;
        cas_makespan = cas.Sim.Metrics.makespan;
        seq_makespan = seq.Sim.Metrics.makespan;
        bound_ratio = float_of_int b.Sim.Metrics.makespan /. float_of_int predicted;
      })
    ps

let counter_example ?(n = 20_000) ?(ps = example_ps) ?(seed = 1) () =
  let mk () =
    Sim.Workload.parallel_ops
      ~model:(Batched.Counter.sim_model ())
      ~records_per_node:1 ~n_nodes:n ()
  in
  example_rows ~mk ~bounds:(Theory.counter_example ~records_per_node:1) ~ps ~seed ()

let tree_example ?(initial = 65_536) ?(n = 5_000) ?(ps = example_ps) ?(seed = 1) () =
  let mk () =
    Sim.Workload.parallel_ops
      ~model:(Batched.Two_three.sim_model ~initial_size:initial ())
      ~records_per_node:1 ~n_nodes:n ()
  in
  example_rows ~mk
    ~bounds:(Theory.search_tree_example ~initial ~records_per_node:1)
    ~ps ~seed ()

let stack_example ?(n = 20_000) ?(ps = example_ps) ?(seed = 1) () =
  let mk () =
    Sim.Workload.parallel_ops
      ~model:(Batched.Stack.sim_model ())
      ~records_per_node:1 ~n_nodes:n ()
  in
  example_rows ~mk ~bounds:(Theory.stack_example ~records_per_node:1) ~ps ~seed ()

(* ---------- E6: Theorem 1 validation sweep ---------- *)

type theory_row = {
  th_ds : string;
  th_workload : string;
  th_p : int;
  measured : int;
  predicted : int;
  ratio : float;
}

let theory_table ?(seed = 1) () =
  let structures =
    [
      ( "counter",
        (fun () -> Batched.Counter.sim_model ()),
        Theory.counter_example ~records_per_node:1 );
      ( "skiplist",
        (fun () -> Batched.Skiplist.sim_model ~initial_size:65_536 ()),
        Theory.skiplist_example ~initial:65_536 ~records_per_node:1 );
      ( "two_three",
        (fun () -> Batched.Two_three.sim_model ~initial_size:65_536 ()),
        Theory.search_tree_example ~initial:65_536 ~records_per_node:1 );
      ( "stack",
        (fun () -> Batched.Stack.sim_model ()),
        Theory.stack_example ~records_per_node:1 );
      ( "ostree",
        (fun () -> Batched.Ostree.sim_model ~initial_size:65_536 ()),
        Theory.ostree_example ~initial:65_536 ~records_per_node:1 );
      ( "sp_order",
        (fun () -> Batched.Sp_order.sim_model ()),
        Theory.sp_order_example ~records_per_node:1 );
      ( "hashtable",
        (fun () -> Batched.Hashtable.sim_model ()),
        Theory.hashtable_example ~records_per_node:1 );
    ]
  in
  let workloads =
    [
      ( "parallel(n=2000)",
        fun model ->
          Sim.Workload.parallel_ops ~model ~records_per_node:1 ~n_nodes:2000 () );
      ( "chains(m=50,w=8)",
        fun model ->
          Sim.Workload.chained_ops ~model ~records_per_node:1 ~chain_length:50 ~width:8 () );
    ]
  in
  List.concat_map
    (fun (ds, mk_model, bounds) ->
      List.concat_map
        (fun (wname, mk_w) ->
          List.map
            (fun p ->
              let w = mk_w (mk_model ()) in
              let t1, t_inf, n_ops, m = Sim.Workload.core_metrics w in
              let n_records = Sim.Workload.total_records w in
              let metrics = run_batcher ~p ~seed w in
              let predicted =
                Theory.predict bounds ~p ~t1 ~t_inf ~n_ops ~m ~n_records
              in
              {
                th_ds = ds;
                th_workload = wname;
                th_p = p;
                measured = metrics.Sim.Metrics.makespan;
                predicted;
                ratio = float_of_int metrics.Sim.Metrics.makespan /. float_of_int predicted;
              })
            [ 1; 2; 4; 8; 16 ])
        workloads)
    structures

(* ---------- E8: Theorem 3 (tau-trimmed span) ---------- *)

type tau_row = {
  t3_p : int;
  t3_tau : int;
  t3_long_batches : int;
  t3_trimmed_span : int;
  t3_measured : int;
  t3_predicted : int;
  t3_ratio : float;
}

let theorem3 ?(seed = 1) () =
  (* Skip-list workload with multi-record nodes so batch spans vary
     enough for tau to bite. W(n) and S_tau(n) are taken from the
     measured batch log rather than a model formula -- the purest
     reading of Theorem 3. *)
  List.concat_map
    (fun p ->
      let w = skiplist_workload ~initial:100_000 ~records_per_node:20 ~n_nodes:1000 () in
      let t1, t_inf, n_ops, m = Sim.Workload.core_metrics w in
      let metrics = run_batcher ~p ~seed w in
      let measured_w = metrics.Sim.Metrics.batch_work in
      let lg_p = Theory.log2i p in
      let max_span =
        List.fold_left
          (fun acc (d : Sim.Metrics.batch_detail) -> max acc d.Sim.Metrics.bd_span)
          1 metrics.Sim.Metrics.batch_details
      in
      let taus =
        List.sort_uniq compare
          [ max 1 lg_p; 2 * lg_p; 4 * lg_p; max_span / 2; max_span; 2 * max_span ]
        |> List.filter (fun t -> t >= 1)
      in
      List.map
        (fun tau ->
          let s_tau = Sim.Metrics.trimmed_span ~tau metrics in
          let predicted =
            Theory.batcher_bound_tau ~p ~t1 ~t_inf ~n:n_ops ~m ~w:measured_w ~s_tau ~tau
          in
          {
            t3_p = p;
            t3_tau = tau;
            t3_long_batches = Sim.Metrics.count_long ~tau metrics;
            t3_trimmed_span = s_tau;
            t3_measured = metrics.Sim.Metrics.makespan;
            t3_predicted = predicted;
            t3_ratio = float_of_int metrics.Sim.Metrics.makespan /. float_of_int predicted;
          })
        taus)
    [ 2; 4; 8; 16 ]

(* ---------- E7: Lemma 2 ---------- *)

type lemma2_row = {
  l2_workload : string;
  l2_p : int;
  max_trapped_batches : int;
}

let lemma2 ?(seed = 1) () =
  let workloads =
    [
      ( "counter parallel",
        fun () ->
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:2000 () );
      ( "skiplist parallel",
        fun () -> skiplist_workload ~initial:100_000 ~records_per_node:10 ~n_nodes:500 () );
      ( "skiplist chains",
        fun () ->
          Sim.Workload.chained_ops
            ~model:(Batched.Skiplist.sim_model ~initial_size:100_000 ())
            ~records_per_node:1 ~chain_length:40 ~width:8 () );
    ]
  in
  List.concat_map
    (fun (name, mk) ->
      List.map
        (fun p ->
          let m = run_batcher ~p ~seed (mk ()) in
          {
            l2_workload = name;
            l2_p = p;
            max_trapped_batches = m.Sim.Metrics.max_batches_while_pending;
          })
        [ 1; 2; 4; 8; 16 ])
    workloads

(* ---------- A1/A2/A3: ablations ---------- *)

type ablation_row = {
  ab_variant : string;
  ab_p : int;
  ab_makespan : int;
  ab_steals : int;
  ab_batches : int;
}

let ablation_workload () = skiplist_workload ~initial:1_000_000 ~records_per_node:10 ~n_nodes:1000 ()

let run_ablation ~variant ~seed cfg =
  let m = Sim.Batcher.run cfg (ablation_workload ()) in
  ignore seed;
  {
    ab_variant = variant;
    ab_p = cfg.Sim.Batcher.p;
    ab_makespan = m.Sim.Metrics.makespan;
    ab_steals = m.Sim.Metrics.steal_attempts;
    ab_batches = m.Sim.Metrics.batches;
  }

let ablate_steal ?(seed = 1) () =
  List.concat_map
    (fun p ->
      List.map
        (fun (variant, policy) ->
          run_ablation ~variant ~seed
            { (Sim.Batcher.default ~p) with Sim.Batcher.seed; steal_policy = policy })
        [
          ("alternating", Sim.Batcher.Alternating);
          ("core-only", Sim.Batcher.Core_only);
          ("batch-only", Sim.Batcher.Batch_only);
          ("uniform", Sim.Batcher.Uniform_random);
        ])
    [ 2; 4; 8 ]

let ablate_launch ?(seed = 1) () =
  List.concat_map
    (fun p ->
      List.map
        (fun threshold ->
          run_ablation
            ~variant:(Printf.sprintf "threshold=%d" threshold)
            ~seed
            { (Sim.Batcher.default ~p) with Sim.Batcher.seed; launch_threshold = threshold })
        (List.sort_uniq compare [ 1; max 1 (p / 4); max 1 (p / 2); p ]))
    [ 4; 8 ]

let ablate_cap ?(seed = 1) () =
  List.concat_map
    (fun p ->
      List.map
        (fun cap ->
          run_ablation
            ~variant:(Printf.sprintf "cap=%d" cap)
            ~seed
            { (Sim.Batcher.default ~p) with Sim.Batcher.seed; batch_cap = cap })
        (List.sort_uniq compare [ 1; max 1 (p / 4); max 1 (p / 2); p ]))
    [ 4; 8 ]

let ablate_overhead ?(seed = 1) () =
  List.concat_map
    (fun p ->
      List.map
        (fun (variant, overhead) ->
          run_ablation ~variant ~seed
            { (Sim.Batcher.default ~p) with Sim.Batcher.seed; overhead })
        [
          ("tree-setup", Sim.Batcher.Tree_setup);
          ("fused-setup", Sim.Batcher.Fused_setup);
          ("no-setup", Sim.Batcher.No_setup);
        ])
    [ 2; 4; 8; 16 ]

(* ---------- E9: pthreaded programs (paper conclusion) ---------- *)

type pthread_row = {
  pt_threads : int;
  pt_batcher : int;
  pt_lock : int;
  pt_seq : int;
}

let pthreaded ?(ops_per_thread = 500) ?(seed = 1) () =
  (* threads = workers: static threads over a batched skip list. *)
  List.map
    (fun threads ->
      let mk () =
        Sim.Workload.pthreaded
          ~model:(Batched.Skiplist.sim_model ~initial_size:1_000_000 ~records_per_node:10 ())
          ~records_per_node:10 ~threads ~ops_per_thread ()
      in
      let b = run_batcher ~p:threads ~seed (mk ()) in
      let lock =
        Sim.Lockconc.run { (Sim.Lockconc.default ~p:threads) with Sim.Lockconc.seed } (mk ())
      in
      let seq = Sim.Seqexec.run (mk ()) in
      {
        pt_threads = threads;
        pt_batcher = b.Sim.Metrics.makespan;
        pt_lock = lock.Sim.Metrics.makespan;
        pt_seq = seq.Sim.Metrics.makespan;
      })
    [ 1; 2; 4; 8; 16 ]

(* ---------- E10: several implicitly batched structures at once ---------- *)

type multi_row = {
  mu_p : int;
  mu_batcher : int;
  mu_lock : int;
  mu_seq : int;
  mu_batches : int;
}

let multi_structure ?(n = 2_000) ?(seed = 1) () =
  let mk () =
    Sim.Workload.interleaved_ops
      ~models:
        [ Batched.Counter.sim_model ();
          Batched.Skiplist.sim_model ~initial_size:1_000_000 ();
          Batched.Hashtable.sim_model () ]
      ~records_per_node:1 ~n_nodes:n ()
  in
  List.map
    (fun p ->
      let b = run_batcher ~p ~seed (mk ()) in
      let lock =
        Sim.Lockconc.run { (Sim.Lockconc.default ~p) with Sim.Lockconc.seed } (mk ())
      in
      let seq = Sim.Seqexec.run (mk ()) in
      {
        mu_p = p;
        mu_batcher = b.Sim.Metrics.makespan;
        mu_lock = lock.Sim.Metrics.makespan;
        mu_seq = seq.Sim.Metrics.makespan;
        mu_batches = b.Sim.Metrics.batches;
      })
    [ 1; 2; 4; 8; 16; 32 ]

(* ---------- A5: batching granularity (records per BATCHIFY) ---------- *)

type granularity_row = {
  g_records_per_node : int;
  g_p : int;
  g_throughput : float;
  g_seq_throughput : float;
}

let ablate_granularity ?(initial = 1_000_000) ?(n_records = 100_000) ?(seed = 1) () =
  (* The paper issues 100 records per BATCHIFY "to simulate bigger
     batches"; this sweep shows what that granularity buys: per-record
     scheduler overhead amortizes as records-per-call grow. *)
  List.concat_map
    (fun records_per_node ->
      let n_nodes = max 1 (n_records / records_per_node) in
      let mk () = skiplist_workload ~initial ~records_per_node ~n_nodes () in
      let seq_tp = Sim.Metrics.throughput (Sim.Seqexec.run (mk ())) in
      List.map
        (fun p ->
          let m = run_batcher ~p ~seed (mk ()) in
          {
            g_records_per_node = records_per_node;
            g_p = p;
            g_throughput = Sim.Metrics.throughput m;
            g_seq_throughput = seq_tp;
          })
        [ 1; 4; 8 ])
    [ 1; 10; 100; 1000 ]
