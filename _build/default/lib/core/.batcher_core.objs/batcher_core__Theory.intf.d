lib/core/theory.mli:
