lib/core/theory.ml: Batched
