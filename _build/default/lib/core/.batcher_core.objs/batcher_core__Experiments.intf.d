lib/core/experiments.mli:
