lib/core/report.ml: Array Experiments Format List Printf String Util
