lib/core/experiments.ml: Array Batched List Printf Sim Theory Util
