(** Plain-text rendering of experiment results, one printer per
    experiment; the bench harness and CLI print through these so the
    output matches the rows/series the paper reports. *)

val fig5 : Format.formatter -> Experiments.fig5_row list -> unit
val flatcomb : Format.formatter -> Experiments.flatcomb_row list -> unit
val example : name:string -> Format.formatter -> Experiments.example_row list -> unit
val theory : Format.formatter -> Experiments.theory_row list -> unit
val theorem3 : Format.formatter -> Experiments.tau_row list -> unit
val lemma2 : Format.formatter -> Experiments.lemma2_row list -> unit
val ablation : name:string -> Format.formatter -> Experiments.ablation_row list -> unit
val pthreaded : Format.formatter -> Experiments.pthread_row list -> unit
val multi : Format.formatter -> Experiments.multi_row list -> unit
val granularity : Format.formatter -> Experiments.granularity_row list -> unit
