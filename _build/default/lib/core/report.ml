let hr fmt = Format.fprintf fmt "%s@." (String.make 78 '-')

let size_label n =
  if n >= 1_000_000 && n mod 1_000_000 = 0 then Printf.sprintf "%dM" (n / 1_000_000)
  else if n >= 1_000 && n mod 1_000 = 0 then Printf.sprintf "%dK" (n / 1_000)
  else string_of_int n

let fig5 fmt (rows : Experiments.fig5_row list) =
  Format.fprintf fmt "E1 / Figure 5: skip-list insertion throughput (records per timestep)@.";
  Format.fprintf fmt "               BATCHER at P workers vs sequential list (SEQ)@.";
  hr fmt;
  (match rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf fmt "%10s %10s" "initial" "SEQ";
      List.iter (fun (p, _, _) -> Format.fprintf fmt " %9s" (Printf.sprintf "BAT p=%d" p)) first.Experiments.batcher;
      Format.fprintf fmt "@.");
  List.iter
    (fun (r : Experiments.fig5_row) ->
      Format.fprintf fmt "%10s %10.4f" (size_label r.Experiments.initial) r.Experiments.seq_throughput;
      List.iter (fun (_, tp, _) -> Format.fprintf fmt " %9.4f" tp) r.Experiments.batcher;
      Format.fprintf fmt "@.")
    rows;
  (* Speedup summary as the paper quotes it (BATCHER p / BATCHER 1). *)
  Format.fprintf fmt "@.self-speedup of BATCHER (vs its own P=1):@.";
  List.iter
    (fun (r : Experiments.fig5_row) ->
      match r.Experiments.batcher with
      | (1, base, _) :: _ when base > 0.0 ->
          Format.fprintf fmt "%10s" (size_label r.Experiments.initial);
          List.iter
            (fun (p, tp, _) -> Format.fprintf fmt "  p=%d:%5.2fx" p (tp /. base))
            r.Experiments.batcher;
          Format.fprintf fmt "@."
      | _ -> ())
    rows;
  (* Seed sensitivity: the largest coefficient of variation over all
     points (typically well under 1%). *)
  let max_cv =
    List.fold_left
      (fun acc (r : Experiments.fig5_row) ->
        List.fold_left
          (fun acc (_, mean, std) -> if mean > 0.0 then max acc (std /. mean) else acc)
          acc r.Experiments.batcher)
      0.0 rows
  in
  Format.fprintf fmt "@.max stddev/mean across seeds: %.3f%%@." (100.0 *. max_cv)

let flatcomb fmt rows =
  Format.fprintf fmt "E2: BATCHER vs flat combining vs SEQ (skip-list, throughput)@.";
  hr fmt;
  Format.fprintf fmt "%4s %12s %12s %12s@." "P" "BATCHER" "FLATCOMB" "SEQ";
  List.iter
    (fun (r : Experiments.flatcomb_row) ->
      Format.fprintf fmt "%4d %12.4f %12.4f %12.4f@." r.Experiments.fc_p
        r.Experiments.batcher_tp r.Experiments.flatcomb_tp r.Experiments.seq_tp)
    rows

let example ~name fmt rows =
  Format.fprintf fmt "%s: BATCHER vs lock-serialized concurrent vs SEQ (makespan, lower is better)@." name;
  hr fmt;
  Format.fprintf fmt "%4s %12s %12s %12s %12s %12s@." "P" "BATCHER" "MUTEX"
    "CAS-CONT" "SEQ" "meas/bound";
  List.iter
    (fun (r : Experiments.example_row) ->
      Format.fprintf fmt "%4d %12d %12d %12d %12d %12.3f@." r.Experiments.ex_p
        r.Experiments.batcher_makespan r.Experiments.lock_makespan
        r.Experiments.cas_makespan r.Experiments.seq_makespan
        r.Experiments.bound_ratio)
    rows

let theory fmt rows =
  Format.fprintf fmt "E6: Theorem 1 validation (measured makespan / predicted bound)@.";
  hr fmt;
  Format.fprintf fmt "%-10s %-18s %4s %12s %12s %8s@." "structure" "workload" "P"
    "measured" "predicted" "ratio";
  List.iter
    (fun (r : Experiments.theory_row) ->
      Format.fprintf fmt "%-10s %-18s %4d %12d %12d %8.3f@." r.Experiments.th_ds
        r.Experiments.th_workload r.Experiments.th_p r.Experiments.measured
        r.Experiments.predicted r.Experiments.ratio)
    rows;
  let ratios = List.map (fun (r : Experiments.theory_row) -> r.Experiments.ratio) rows in
  match ratios with
  | [] -> ()
  | _ ->
      let arr = Array.of_list ratios in
      let s = Util.Stats.summarize arr in
      Format.fprintf fmt "@.ratio: mean %.3f, min %.3f, max %.3f (Theorem 1 holds iff bounded by O(1))@."
        s.Util.Stats.mean s.Util.Stats.min s.Util.Stats.max

let theorem3 fmt rows =
  Format.fprintf fmt
    "E8: Theorem 3 validation — measured makespan vs (T1+W+n·τ)/P + T∞ + S_τ + m·τ@.";
  Format.fprintf fmt "     (W and the τ-trimmed span S_τ are measured from the batch log)@.";
  hr fmt;
  Format.fprintf fmt "%4s %8s %10s %12s %12s %12s %8s@." "P" "tau" "long" "S_tau"
    "measured" "predicted" "ratio";
  List.iter
    (fun (r : Experiments.tau_row) ->
      Format.fprintf fmt "%4d %8d %10d %12d %12d %12d %8.3f@." r.Experiments.t3_p
        r.Experiments.t3_tau r.Experiments.t3_long_batches
        r.Experiments.t3_trimmed_span r.Experiments.t3_measured
        r.Experiments.t3_predicted r.Experiments.t3_ratio)
    rows;
  let ratios = List.map (fun (r : Experiments.tau_row) -> r.Experiments.t3_ratio) rows in
  match ratios with
  | [] -> ()
  | _ ->
      let s = Util.Stats.summarize (Array.of_list ratios) in
      Format.fprintf fmt "@.ratio: mean %.3f, min %.3f, max %.3f — bounded for every τ ≥ lg P@."
        s.Util.Stats.mean s.Util.Stats.min s.Util.Stats.max

let lemma2 fmt rows =
  Format.fprintf fmt "E7: Lemma 2 — max batches executing while any op is pending (bound: 2)@.";
  hr fmt;
  Format.fprintf fmt "%-20s %4s %8s@." "workload" "P" "max";
  List.iter
    (fun (r : Experiments.lemma2_row) ->
      Format.fprintf fmt "%-20s %4d %8d@." r.Experiments.l2_workload r.Experiments.l2_p
        r.Experiments.max_trapped_batches)
    rows

let ablation ~name fmt rows =
  Format.fprintf fmt "%s (skip-list workload; lower makespan is better)@." name;
  hr fmt;
  Format.fprintf fmt "%-14s %4s %12s %12s %10s@." "variant" "P" "makespan" "steals" "batches";
  List.iter
    (fun (r : Experiments.ablation_row) ->
      Format.fprintf fmt "%-14s %4d %12d %12d %10d@." r.Experiments.ab_variant
        r.Experiments.ab_p r.Experiments.ab_makespan r.Experiments.ab_steals
        r.Experiments.ab_batches)
    rows

let pthreaded fmt rows =
  Format.fprintf fmt
    "E9: statically threaded programs over a batched skip list (makespan)@.";
  hr fmt;
  Format.fprintf fmt "%8s %12s %12s %12s@." "threads" "BATCHER" "MUTEX" "SEQ";
  List.iter
    (fun (r : Experiments.pthread_row) ->
      Format.fprintf fmt "%8d %12d %12d %12d@." r.Experiments.pt_threads
        r.Experiments.pt_batcher r.Experiments.pt_lock r.Experiments.pt_seq)
    rows

let multi fmt rows =
  Format.fprintf fmt
    "E10: three implicitly batched structures in one program (makespan)@.";
  hr fmt;
  Format.fprintf fmt "%4s %12s %12s %12s %10s@." "P" "BATCHER" "MUTEX" "SEQ" "batches";
  List.iter
    (fun (r : Experiments.multi_row) ->
      Format.fprintf fmt "%4d %12d %12d %12d %10d@." r.Experiments.mu_p
        r.Experiments.mu_batcher r.Experiments.mu_lock r.Experiments.mu_seq
        r.Experiments.mu_batches)
    rows

let granularity fmt rows =
  Format.fprintf fmt
    "A5: records per BATCHIFY call (skip-list; throughput, higher is better)@.";
  hr fmt;
  Format.fprintf fmt "%12s %4s %12s %12s@." "records/call" "P" "BATCHER" "SEQ";
  List.iter
    (fun (r : Experiments.granularity_row) ->
      Format.fprintf fmt "%12d %4d %12.4f %12.4f@." r.Experiments.g_records_per_node
        r.Experiments.g_p r.Experiments.g_throughput r.Experiments.g_seq_throughput)
    rows
