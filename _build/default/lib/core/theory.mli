(** The paper's performance bounds, as computable predictions.

    Used by the Theorem-1 validation experiment (E6): simulated makespans
    are divided by these predictions; the theorem holds iff the ratio is
    bounded by a constant across workloads, structures and worker counts. *)

val log2i : int -> int
(** ceil(log2 (max 2 n)). *)

val ws_bound : p:int -> t1:int -> t_inf:int -> int
(** The classic work-stealing bound T1/P + T∞ (Blumofe-Leiserson). *)

val batcher_bound : p:int -> t1:int -> t_inf:int -> n:int -> m:int -> w:int -> s:int -> int
(** Theorem 1: (T1 + W(n) + n·s(n))/P + m·s(n) + T∞. *)

val batcher_bound_tau :
  p:int -> t1:int -> t_inf:int -> n:int -> m:int -> w:int -> s_tau:int -> tau:int -> int
(** Theorem 3, the τ-parameterized form underlying Theorem 1:
    (T1 + W(n) + n·τ)/P + T∞ + S_τ(n) + m·τ, for any τ ≥ lg P, where
    S_τ(n) is the τ-trimmed span (Definition 1). *)

(** Data-structure bound parameters (W(n) and s(n)) for the structures
    analyzed in Section 3, with constants calibrated to this repo's cost
    models. *)
type example = {
  name : string;
  w : n:int -> int;  (** data-structure work for n operations *)
  s : p:int -> n:int -> int;  (** span of a size-P batch *)
}

val counter_example : records_per_node:int -> example
(** W = Θ(n), s = Θ(lg P): two prefix-sum sweeps. *)

val skiplist_example : initial:int -> records_per_node:int -> example
(** W = Θ(n lg N), s = Θ(lg N + lg P). *)

val search_tree_example : initial:int -> records_per_node:int -> example
(** W = Θ(n (lg n + lg N)), s = Θ(lg N + lg P · lg P). *)

val stack_example : records_per_node:int -> example
(** Amortized: W = Θ(n), s = Θ(lg P). *)

val ostree_example : initial:int -> records_per_node:int -> example
(** Order-statistic (weight-balanced) tree: same regime as the 2-3 tree,
    W = Θ(n (lg n + lg N)), s = Θ(lg N + lg P). *)

val sp_order_example : records_per_node:int -> example
(** SP-order maintenance: O(1) amortized label work per fork/query, so
    W = Θ(n), s = Θ(lg P). *)

val hashtable_example : records_per_node:int -> example
(** Amortized (table doubling): W = Θ(n), s = Θ(lg P + lg n) — the lg n
    span shows up only on resize batches. *)

val predict : example -> p:int -> t1:int -> t_inf:int -> n_ops:int -> m:int -> n_records:int -> int
(** Instantiate Theorem 1 for a workload: n/m count operation nodes, the
    structure terms use total records. *)
