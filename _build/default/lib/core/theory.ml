let log2i n = Batched.Model.log2_cost n

let ws_bound ~p ~t1 ~t_inf = (t1 / p) + t_inf

let batcher_bound ~p ~t1 ~t_inf ~n ~m ~w ~s =
  ((t1 + w + (n * s)) / p) + (m * s) + t_inf

let batcher_bound_tau ~p ~t1 ~t_inf ~n ~m ~w ~s_tau ~tau =
  ((t1 + w + (n * tau)) / p) + t_inf + s_tau + (m * tau)

type example = {
  name : string;
  w : n:int -> int;
  s : p:int -> n:int -> int;
}

(* Constants below mirror the cost models in lib/batched: e.g. the
   counter's BOP is two balanced sweeps over x leaves (work ~4x, span
   ~2(2 lg x)), the skip list searches cost lg N per record around
   sequential build/splice phases of x each. *)

let counter_example ~records_per_node =
  {
    name = "counter";
    w = (fun ~n -> 4 * n);
    s = (fun ~p ~n:_ -> (4 * log2i (p * records_per_node)) + 2);
  }

let skiplist_example ~initial ~records_per_node =
  let lg_final ~n = log2i (initial + n) in
  {
    name = "skiplist";
    w = (fun ~n -> n * (lg_final ~n + 6));
    s =
      (fun ~p ~n ->
        let x = p * records_per_node in
        lg_final ~n + (2 * x) + (2 * log2i x) + 2);
  }

let search_tree_example ~initial ~records_per_node =
  let lg_final ~n = log2i (initial + n) in
  {
    name = "two_three";
    w = (fun ~n -> n * ((2 * lg_final ~n) + log2i n + 6));
    s =
      (fun ~p ~n ->
        let x = p * records_per_node in
        (3 * (lg_final ~n + log2i x)) + (6 * log2i x) + 6);
  }

let stack_example ~records_per_node =
  {
    name = "stack";
    w = (fun ~n -> 6 * n);
    s = (fun ~p ~n:_ -> (4 * log2i (p * records_per_node)) + 2);
  }

let ostree_example ~initial ~records_per_node =
  let lg_final ~n = log2i (initial + n) in
  {
    name = "ostree";
    w = (fun ~n -> n * (lg_final ~n + log2i n + 4));
    s =
      (fun ~p ~n ->
        let x = p * records_per_node in
        (2 * (lg_final ~n + log2i x)) + (4 * log2i x) + 4);
  }

let sp_order_example ~records_per_node =
  {
    name = "sp_order";
    w = (fun ~n -> 6 * n);
    s = (fun ~p ~n:_ -> (2 * log2i (p * records_per_node)) + 4);
  }

let hashtable_example ~records_per_node =
  {
    name = "hashtable";
    w = (fun ~n -> 8 * n);
    s =
      (fun ~p ~n ->
        let x = p * records_per_node in
        x + (2 * log2i x) + (2 * log2i (max 2 n)) + 4);
  }

let predict ex ~p ~t1 ~t_inf ~n_ops ~m ~n_records =
  let w = ex.w ~n:n_records in
  let s = ex.s ~p ~n:n_records in
  batcher_bound ~p ~t1 ~t_inf ~n:n_ops ~m ~w ~s
