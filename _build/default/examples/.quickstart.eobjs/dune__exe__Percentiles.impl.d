examples/percentiles.ml: Array Batched Printf Runtime Sys Util
