examples/quickstart.ml: Array Batched Batcher_core Printf Runtime Sys
