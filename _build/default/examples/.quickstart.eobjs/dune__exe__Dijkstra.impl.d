examples/dijkstra.ml: Array Batched List Mutex Printf Runtime Sys Util
