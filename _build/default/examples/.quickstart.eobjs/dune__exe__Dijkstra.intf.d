examples/dijkstra.mli:
