examples/histogram.ml: Array Batched Printf Runtime Sys Util
