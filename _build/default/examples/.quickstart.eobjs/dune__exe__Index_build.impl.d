examples/index_build.ml: Array Atomic Batched Batcher_core Int Printf Runtime Set Sys Util
