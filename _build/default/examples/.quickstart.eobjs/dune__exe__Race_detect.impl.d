examples/race_detect.ml: Array Atomic Batched List Printf Runtime Sys
