examples/index_build.mli:
