examples/histogram.mli:
