examples/bfs.ml: Array Atomic Batched List Printf Queue Runtime Sys Util
