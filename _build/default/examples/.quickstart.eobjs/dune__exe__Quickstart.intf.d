examples/quickstart.mli:
