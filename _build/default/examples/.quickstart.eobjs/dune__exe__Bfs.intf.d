examples/bfs.mli:
