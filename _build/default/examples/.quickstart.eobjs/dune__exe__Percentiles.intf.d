examples/percentiles.mli:
