examples/skiplist_insert.ml: Array Batched Batcher_core Format Printf Runtime Sys Unix Util
