examples/skiplist_insert.mli:
