(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (per DESIGN.md's experiment index) and runs Bechamel
   micro-benchmarks of the underlying kernels — one Test.make per
   experiment id.

   Environment:
     QUICK=1   reduce simulation scales (CI-friendly)
     ONLY=E1   run a single experiment id (E1 E2 E3 E4 E5 E6 E7 A1 A2 A3 MICRO)
*)

let quick = Sys.getenv_opt "QUICK" <> None
let only = Sys.getenv_opt "ONLY"

let want id = match only with None -> true | Some o -> String.uppercase_ascii o = id

let fmt = Format.std_formatter

let section title =
  Format.fprintf fmt "@.==============================================================================@.";
  Format.fprintf fmt "%s@." title;
  Format.fprintf fmt "==============================================================================@."

(* ---------- the tables ---------- *)

let fig5_params () =
  if quick then
    Batcher_core.Experiments.fig5 ~n_records:10_000 ~records_per_node:100
      ~sizes:[ 20_000; 1_000_000; 100_000_000 ] ()
  else Batcher_core.Experiments.fig5 ()

let run_tables () =
  if want "E1" then begin
    section "E1 — Figure 5: BATCHER vs sequential skip list";
    Batcher_core.Report.fig5 fmt (fig5_params ())
  end;
  if want "E2" then begin
    section "E2 — Flat combining comparison (Section 7 discussion)";
    let rows =
      if quick then Batcher_core.Experiments.flatcomb ~n_records:10_000 ()
      else Batcher_core.Experiments.flatcomb ()
    in
    Batcher_core.Report.flatcomb fmt rows
  end;
  if want "E3" then begin
    section "E3 — Batched counter vs lock-serialized counter (Section 3)";
    let rows =
      if quick then Batcher_core.Experiments.counter_example ~n:4_000 ()
      else Batcher_core.Experiments.counter_example ()
    in
    Batcher_core.Report.example ~name:"E3 counter" fmt rows
  end;
  if want "E4" then begin
    section "E4 — Batched 2-3 tree (Section 3 search-tree example)";
    let rows =
      if quick then Batcher_core.Experiments.tree_example ~n:1_000 ()
      else Batcher_core.Experiments.tree_example ()
    in
    Batcher_core.Report.example ~name:"E4 search tree" fmt rows
  end;
  if want "E5" then begin
    section "E5 — Amortized LIFO stack (Section 3 table-doubling example)";
    let rows =
      if quick then Batcher_core.Experiments.stack_example ~n:4_000 ()
      else Batcher_core.Experiments.stack_example ()
    in
    Batcher_core.Report.example ~name:"E5 stack" fmt rows
  end;
  if want "E6" then begin
    section "E6 — Theorem 1 validation sweep";
    Batcher_core.Report.theory fmt (Batcher_core.Experiments.theory_table ())
  end;
  if want "E8" then begin
    section "E8 — Theorem 3 validation (τ-trimmed span)";
    Batcher_core.Report.theorem3 fmt (Batcher_core.Experiments.theorem3 ())
  end;
  if want "E7" then begin
    section "E7 — Lemma 2: batches executing while an op is pending";
    Batcher_core.Report.lemma2 fmt (Batcher_core.Experiments.lemma2 ())
  end;
  if want "A1" then begin
    section "A1 — Ablation: steal policy";
    Batcher_core.Report.ablation ~name:"A1 steal policy" fmt
      (Batcher_core.Experiments.ablate_steal ())
  end;
  if want "A2" then begin
    section "A2 — Ablation: launch threshold (immediate vs accumulate-k)";
    Batcher_core.Report.ablation ~name:"A2 launch threshold" fmt
      (Batcher_core.Experiments.ablate_launch ())
  end;
  if want "A4" then begin
    section "A4 — Ablation: LAUNCHBATCH overhead model (paper's open question)";
    Batcher_core.Report.ablation ~name:"A4 overhead model" fmt
      (Batcher_core.Experiments.ablate_overhead ())
  end;
  if want "E9" then begin
    section "E9 — Pthreaded programs (paper's conclusion)";
    Batcher_core.Report.pthreaded fmt (Batcher_core.Experiments.pthreaded ())
  end;
  if want "E10" then begin
    section "E10 — Multiple implicitly batched structures in one program";
    Batcher_core.Report.multi fmt (Batcher_core.Experiments.multi_structure ())
  end;
  if want "A5" then begin
    section "A5 — Ablation: batching granularity (records per BATCHIFY)";
    Batcher_core.Report.granularity fmt (Batcher_core.Experiments.ablate_granularity ())
  end;
  if want "A3" then begin
    section "A3 — Ablation: batch-size cap";
    Batcher_core.Report.ablation ~name:"A3 batch cap" fmt
      (Batcher_core.Experiments.ablate_cap ())
  end

(* ---------- Bechamel micro-benchmarks ---------- *)

(* One Test.make per experiment id: the kernel whose wall-clock cost
   dominates regenerating that table. *)

let sim_kernel ~initial ~p () =
  let w =
    Sim.Workload.parallel_ops
      ~model:(Batched.Skiplist.sim_model ~initial_size:initial ~records_per_node:10 ())
      ~records_per_node:10 ~n_nodes:100 ()
  in
  ignore (Sim.Batcher.run (Sim.Batcher.default ~p) w)

let bechamel_tests () =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "E1:sim-batcher-skiplist-p8" (sim_kernel ~initial:1_000_000 ~p:8);
    t "E2:sim-flatcomb-skiplist-p8" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Skiplist.sim_model ~initial_size:1_000_000 ~records_per_node:10 ())
            ~records_per_node:10 ~n_nodes:100 ()
        in
        ignore (Sim.Flatcomb.run ~p:8 w));
    t "E3:sim-counter-p8" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:1000 ()
        in
        ignore (Sim.Batcher.run (Sim.Batcher.default ~p:8) w));
    t "E4:two-three-batch-insert-1k" (fun () ->
        let ops = Array.init 1000 (fun i -> Batched.Two_three.insert_op ((i * 37) mod 4096)) in
        ignore (Batched.Two_three.run_batch Batched.Two_three.empty ops));
    t "E5:stack-batch-64k-pushes" (fun () ->
        let s = Batched.Stack.create () in
        Batched.Stack.run_batch s (Array.init 65_536 (fun i -> Batched.Stack.push i)));
    t "E6:dag-lower-balanced-4096" (fun () ->
        let b = Dag.Build.create () in
        let f = Dag.Build.of_par b (Par.balanced ~leaf_cost:(fun _ -> 1) 4096) in
        ignore (Dag.Build.finish b f));
    t "E7:skiplist-seq-insert-1k" (fun () ->
        let s = Batched.Skiplist.create () in
        for i = 0 to 999 do
          ignore (Batched.Skiplist.insert_seq s i)
        done);
    t "A1:sim-batcher-core-only-steals" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:500 ()
        in
        ignore
          (Sim.Batcher.run
             { (Sim.Batcher.default ~p:8) with Sim.Batcher.steal_policy = Sim.Batcher.Core_only }
             w));
    t "A2:sim-batcher-threshold-p" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:500 ()
        in
        ignore
          (Sim.Batcher.run
             { (Sim.Batcher.default ~p:8) with Sim.Batcher.launch_threshold = 8 }
             w));
    t "A3:sim-batcher-cap-1" (fun () ->
        let w =
          Sim.Workload.parallel_ops
            ~model:(Batched.Counter.sim_model ())
            ~records_per_node:1 ~n_nodes:500 ()
        in
        ignore
          (Sim.Batcher.run { (Sim.Batcher.default ~p:8) with Sim.Batcher.batch_cap = 1 } w));
  ]

(* Real-runtime wall-clock micro-benchmarks (R1). The pool is reused
   across iterations; worker count stays small for few-core machines. *)
let real_runtime_tests pool =
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "R1:real-batcher-counter-1k-increments" (fun () ->
        let counter = Batched.Counter.create () in
        let b =
          Runtime.Batcher_rt.create ~pool ~state:counter
            ~run_batch:(fun _pool st ops -> Batched.Counter.run_batch st ops)
            ()
        in
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~grain:1 ~lo:0 ~hi:1000 (fun _ ->
                Runtime.Batcher_rt.batchify b (Batched.Counter.op 1))));
    t "R1:real-pool-parallel-for-100k" (fun () ->
        let acc = Array.make 256 0 in
        Runtime.Pool.run pool (fun () ->
            Runtime.Pool.parallel_for pool ~lo:0 ~hi:100_000 (fun i ->
                let s = i land 255 in
                acc.(s) <- acc.(s) + 1)));
    t "R1:real-prefix-sums-100k" (fun () ->
        let a = Array.init 100_000 (fun i -> i land 7) in
        Runtime.Pool.run pool (fun () ->
            ignore (Runtime.Pool.parallel_prefix_sums pool a)));
  ]

let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"bench" ~fmt:"%s %s" tests)
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Format.fprintf fmt "@.%-45s %16s@." "benchmark" "ns/run";
  Format.fprintf fmt "%s@." (String.make 62 '-');
  (match Hashtbl.find_opt merged (Measure.label Instance.monotonic_clock) with
  | None -> Format.fprintf fmt "(no results)@."
  | Some tbl ->
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> e
              | _ -> nan
            in
            (name, est) :: acc)
          tbl []
        |> List.sort compare
      in
      List.iter
        (fun (name, est) -> Format.fprintf fmt "%-45s %16.1f@." name est)
        rows)

let () =
  run_tables ();
  if want "MICRO" then begin
    section "MICRO — Bechamel kernels (one per experiment id) + real runtime (R1)";
    let workers = if quick then 2 else 4 in
    let pool = Runtime.Pool.create ~num_workers:workers in
    run_bechamel (bechamel_tests () @ real_runtime_tests pool);
    Runtime.Pool.teardown pool
  end;
  Format.pp_print_flush fmt ()
