bin/dagviz.ml: Array Batched Dag Format Printf Sim Sys
