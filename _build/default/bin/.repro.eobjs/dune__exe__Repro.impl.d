bin/repro.ml: Arg Batcher_core Cmd Cmdliner Format List Term
