bin/dagviz.mli:
