bin/repro.mli:
