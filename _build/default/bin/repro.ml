(* Command-line driver for the reproduction experiments: one subcommand
   per experiment id in DESIGN.md, plus `all`. The benchmark harness
   (bench/main.exe) runs the same tables non-interactively; this CLI
   exposes the knobs. *)

open Cmdliner

let fmt = Format.std_formatter

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let ps_arg default =
  let doc = "Comma-separated worker counts to simulate." in
  Arg.(value & opt (list int) default & info [ "workers" ] ~docv:"P,P,..." ~doc)

(* E1 *)
let fig5_cmd =
  let records =
    Arg.(
      value
      & opt int 100_000
      & info [ "records" ] ~docv:"N" ~doc:"Total insertions (paper: 100000).")
  in
  let per_node =
    Arg.(
      value
      & opt int 100
      & info [ "per-node" ] ~docv:"K" ~doc:"Records per BATCHIFY call (paper: 100).")
  in
  let sizes =
    Arg.(
      value
      & opt (list int) [ 20_000; 100_000; 1_000_000; 10_000_000; 100_000_000 ]
      & info [ "sizes" ] ~docv:"S,S,..." ~doc:"Initial skip-list sizes.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated rows for plotting.")
  in
  let run n_records records_per_node sizes ps seed csv =
    let rows =
      Batcher_core.Experiments.fig5 ~n_records ~records_per_node ~sizes ~ps ~seed ()
    in
    if csv then begin
      Format.fprintf fmt "initial,seq";
      List.iter (fun p -> Format.fprintf fmt ",bat_p%d" p) ps;
      Format.fprintf fmt "@.";
      List.iter
        (fun (r : Batcher_core.Experiments.fig5_row) ->
          Format.fprintf fmt "%d,%.6f" r.Batcher_core.Experiments.initial
            r.Batcher_core.Experiments.seq_throughput;
          List.iter (fun (_, tp, _) -> Format.fprintf fmt ",%.6f" tp)
            r.Batcher_core.Experiments.batcher;
          Format.fprintf fmt "@.")
        rows
    end
    else Batcher_core.Report.fig5 fmt rows
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"E1: Figure 5 — BATCHER vs sequential skip list")
    Term.(
      const run $ records $ per_node $ sizes
      $ ps_arg [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      $ seed_arg $ csv)

(* E2 *)
let flatcomb_cmd =
  let initial =
    Arg.(value & opt int 1_000_000 & info [ "initial" ] ~docv:"N" ~doc:"Initial size.")
  in
  let run initial ps seed =
    Batcher_core.Report.flatcomb fmt
      (Batcher_core.Experiments.flatcomb ~initial ~ps ~seed ())
  in
  Cmd.v
    (Cmd.info "flatcomb" ~doc:"E2: flat-combining comparison")
    Term.(const run $ initial $ ps_arg [ 1; 2; 3; 4; 5; 6; 7; 8 ] $ seed_arg)

(* E3/E4/E5 *)
let example_cmd ~name ~doc ~driver =
  let n =
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc:"Operation count.")
  in
  let run n ps seed =
    let rows =
      match n with
      | None -> driver ?n:None ~ps ~seed ()
      | Some _ -> driver ?n ~ps ~seed ()
    in
    Batcher_core.Report.example ~name fmt rows
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ n $ ps_arg [ 1; 2; 4; 8; 16; 32; 64; 128 ] $ seed_arg)

let counter_cmd =
  example_cmd ~name:"counter" ~doc:"E3: batched counter example"
    ~driver:(fun ?n ~ps ~seed () -> Batcher_core.Experiments.counter_example ?n ~ps ~seed ())

let tree_cmd =
  example_cmd ~name:"tree" ~doc:"E4: batched 2-3 tree example"
    ~driver:(fun ?n ~ps ~seed () -> Batcher_core.Experiments.tree_example ?n ~ps ~seed ())

let stack_cmd =
  example_cmd ~name:"stack" ~doc:"E5: amortized LIFO stack example"
    ~driver:(fun ?n ~ps ~seed () -> Batcher_core.Experiments.stack_example ?n ~ps ~seed ())

(* E6 *)
let theory_cmd =
  let run seed = Batcher_core.Report.theory fmt (Batcher_core.Experiments.theory_table ~seed ()) in
  Cmd.v (Cmd.info "theory" ~doc:"E6: Theorem 1 validation sweep") Term.(const run $ seed_arg)

(* E8 *)
let theorem3_cmd =
  let run seed =
    Batcher_core.Report.theorem3 fmt (Batcher_core.Experiments.theorem3 ~seed ())
  in
  Cmd.v
    (Cmd.info "theorem3" ~doc:"E8: Theorem 3 (τ-trimmed span) validation")
    Term.(const run $ seed_arg)

(* E7 *)
let lemma2_cmd =
  let run seed = Batcher_core.Report.lemma2 fmt (Batcher_core.Experiments.lemma2 ~seed ()) in
  Cmd.v (Cmd.info "lemma2" ~doc:"E7: Lemma 2 empirical check") Term.(const run $ seed_arg)

(* E10 *)
let multi_cmd =
  let run seed =
    Batcher_core.Report.multi fmt (Batcher_core.Experiments.multi_structure ~seed ());
    Batcher_core.Report.granularity fmt
      (Batcher_core.Experiments.ablate_granularity ~seed ())
  in
  Cmd.v (Cmd.info "multi" ~doc:"E10: several batched structures at once")
    Term.(const run $ seed_arg)

(* A1/A2/A3 *)
let ablation_cmd ~name ~doc ~driver =
  let run seed = Batcher_core.Report.ablation ~name fmt (driver ~seed ()) in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ seed_arg)

let ablate_steal_cmd =
  ablation_cmd ~name:"ablate-steal" ~doc:"A1: steal-policy ablation"
    ~driver:(fun ~seed () -> Batcher_core.Experiments.ablate_steal ~seed ())

let ablate_launch_cmd =
  ablation_cmd ~name:"ablate-launch" ~doc:"A2: launch-threshold ablation"
    ~driver:(fun ~seed () -> Batcher_core.Experiments.ablate_launch ~seed ())

let ablate_overhead_cmd =
  ablation_cmd ~name:"ablate-overhead" ~doc:"A4: LAUNCHBATCH overhead-model ablation"
    ~driver:(fun ~seed () -> Batcher_core.Experiments.ablate_overhead ~seed ())

let pthreaded_cmd =
  let run seed =
    Batcher_core.Report.pthreaded fmt (Batcher_core.Experiments.pthreaded ~seed ());
    Batcher_core.Report.multi fmt (Batcher_core.Experiments.multi_structure ~seed ());
    Batcher_core.Report.granularity fmt
      (Batcher_core.Experiments.ablate_granularity ~seed ())
  in
  Cmd.v (Cmd.info "pthreaded" ~doc:"E9: statically threaded programs")
    Term.(const run $ seed_arg)

let ablate_granularity_cmd =
  let run seed =
    Batcher_core.Report.granularity fmt
      (Batcher_core.Experiments.ablate_granularity ~seed ())
  in
  Cmd.v (Cmd.info "ablate-granularity" ~doc:"A5: records-per-BATCHIFY ablation")
    Term.(const run $ seed_arg)

let ablate_cap_cmd =
  ablation_cmd ~name:"ablate-cap" ~doc:"A3: batch-cap ablation"
    ~driver:(fun ~seed () -> Batcher_core.Experiments.ablate_cap ~seed ())

(* all *)
let all_cmd =
  let run seed =
    Batcher_core.Report.fig5 fmt (Batcher_core.Experiments.fig5 ~seed ());
    Batcher_core.Report.flatcomb fmt (Batcher_core.Experiments.flatcomb ~seed ());
    Batcher_core.Report.example ~name:"E3 counter" fmt
      (Batcher_core.Experiments.counter_example ~seed ());
    Batcher_core.Report.example ~name:"E4 search tree" fmt
      (Batcher_core.Experiments.tree_example ~seed ());
    Batcher_core.Report.example ~name:"E5 stack" fmt
      (Batcher_core.Experiments.stack_example ~seed ());
    Batcher_core.Report.theory fmt (Batcher_core.Experiments.theory_table ~seed ());
    Batcher_core.Report.theorem3 fmt (Batcher_core.Experiments.theorem3 ~seed ());
    Batcher_core.Report.lemma2 fmt (Batcher_core.Experiments.lemma2 ~seed ());
    Batcher_core.Report.ablation ~name:"A1 steal policy" fmt
      (Batcher_core.Experiments.ablate_steal ~seed ());
    Batcher_core.Report.ablation ~name:"A2 launch threshold" fmt
      (Batcher_core.Experiments.ablate_launch ~seed ());
    Batcher_core.Report.ablation ~name:"A3 batch cap" fmt
      (Batcher_core.Experiments.ablate_cap ~seed ());
    Batcher_core.Report.ablation ~name:"A4 overhead model" fmt
      (Batcher_core.Experiments.ablate_overhead ~seed ());
    Batcher_core.Report.pthreaded fmt (Batcher_core.Experiments.pthreaded ~seed ());
    Batcher_core.Report.multi fmt (Batcher_core.Experiments.multi_structure ~seed ());
    Batcher_core.Report.granularity fmt
      (Batcher_core.Experiments.ablate_granularity ~seed ())
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment at paper scale") Term.(const run $ seed_arg)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0.0"
      ~doc:"Reproduction of BATCHER (SPAA 2014): implicit batching experiments"
  in
  let group =
    Cmd.group info
      [
        fig5_cmd; flatcomb_cmd; counter_cmd; tree_cmd; stack_cmd; theory_cmd;
        theorem3_cmd; lemma2_cmd; pthreaded_cmd; multi_cmd; ablate_steal_cmd; ablate_launch_cmd;
        ablate_cap_cmd; ablate_overhead_cmd; ablate_granularity_cmd; all_cmd;
      ]
  in
  exit (Cmd.eval group)
