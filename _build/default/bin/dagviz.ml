(* Dump workload core DAGs (and a sample batch DAG shape) as Graphviz
   DOT, for inspecting what the scheduler actually executes.

   Usage: dune exec bin/dagviz.exe -- [parallel|chains|random] [n] > out.dot *)

let () =
  let shape = if Array.length Sys.argv > 1 then Sys.argv.(1) else "parallel" in
  let n = try int_of_string Sys.argv.(2) with _ -> 8 in
  let model = Batched.Skiplist.sim_model ~initial_size:1024 () in
  let workload =
    match shape with
    | "parallel" ->
        Sim.Workload.parallel_ops ~model ~records_per_node:1 ~n_nodes:n ()
    | "chains" ->
        Sim.Workload.chained_ops ~model ~records_per_node:1 ~chain_length:n ~width:2 ()
    | "random" ->
        Sim.Workload.random ~model ~records_per_node:1 ~size:n ~seed:7 ()
    | other ->
        Printf.eprintf "unknown shape %S (parallel|chains|random)\n" other;
        exit 2
  in
  let d = workload.Sim.Workload.core in
  Format.eprintf "core dag: %d nodes, work %d, span %d, n=%d, m=%d@." (Dag.size d)
    (Dag.work d) (Dag.span d) (Dag.ds_count d) (Dag.ds_depth d);
  Dag.to_dot ~name:"core" Format.std_formatter d
