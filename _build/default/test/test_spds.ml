(* Tests for the order-maintenance list, the SP-order structure, and the
   batched hash table. *)

module OL = Batched.Order_list
module Sp = Batched.Sp_order
module H = Batched.Hashtable

(* ---------- order list ---------- *)

let test_order_list_basic () =
  let t, a = OL.create () in
  let b = OL.insert_after t a in
  let c = OL.insert_after t a in
  (* a < c < b : c was inserted after a, before b. *)
  Alcotest.(check bool) "a<b" true (OL.precedes a b);
  Alcotest.(check bool) "a<c" true (OL.precedes a c);
  Alcotest.(check bool) "c<b" true (OL.precedes c b);
  Alcotest.(check bool) "not b<c" false (OL.precedes b c);
  Alcotest.(check bool) "irreflexive" false (OL.precedes a a);
  Alcotest.(check int) "size" 3 (OL.size t);
  OL.check_invariants t

let test_order_list_dense_inserts () =
  (* Hammer one gap to force relabeling. *)
  let t, a = OL.create () in
  let _last =
    List.fold_left
      (fun prev _ ->
        let e = OL.insert_after t a in
        Alcotest.(check bool) "new elt before previous" true (OL.precedes e prev);
        e)
      (OL.insert_after t a)
      (List.init 5000 Fun.id)
  in
  Alcotest.(check bool) "relabeled at least once" true (OL.relabels t > 0);
  OL.check_invariants t

let test_order_list_different_orders_rejected () =
  let _, a = OL.create () in
  let _, b = OL.create () in
  (match OL.compare a b with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

let prop_order_list_total_order =
  QCheck.Test.make ~name:"order list is a strict total order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (int_bound 1000))
    (fun picks ->
      (* Build by inserting after random existing elements. *)
      let t, base = OL.create () in
      let elts = ref [| base |] in
      List.iter
        (fun r ->
          let anchor = !elts.(r mod Array.length !elts) in
          let e = OL.insert_after t anchor in
          elts := Array.append !elts [| e |])
        picks;
      OL.check_invariants t;
      let arr = !elts in
      let n = Array.length arr in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let ij = OL.precedes arr.(i) arr.(j) in
          let ji = OL.precedes arr.(j) arr.(i) in
          if i = j then begin
            if ij || ji then ok := false
          end
          else if ij = ji then ok := false (* exactly one direction *)
        done
      done;
      !ok)

(* ---------- SP order ---------- *)

let test_sp_fork_relations () =
  let t, root = Sp.create () in
  let l, r, c = Sp.fork_seq t root in
  Alcotest.(check bool) "root<l" true (Sp.precedes_seq t root l);
  Alcotest.(check bool) "root<r" true (Sp.precedes_seq t root r);
  Alcotest.(check bool) "root<c" true (Sp.precedes_seq t root c);
  Alcotest.(check bool) "l || r" true (Sp.parallel_seq t l r);
  Alcotest.(check bool) "l<c" true (Sp.precedes_seq t l c);
  Alcotest.(check bool) "r<c" true (Sp.precedes_seq t r c);
  Alcotest.(check bool) "irreflexive" false (Sp.precedes_seq t l l);
  Sp.check_invariants t

let test_sp_nested_forks () =
  let t, root = Sp.create () in
  let l, r, c = Sp.fork_seq t root in
  let ll, lr, lc = Sp.fork_seq t l in
  (* Descendants of l are parallel to r but precede c. *)
  Alcotest.(check bool) "ll || r" true (Sp.parallel_seq t ll r);
  Alcotest.(check bool) "lr || r" true (Sp.parallel_seq t lr r);
  Alcotest.(check bool) "lc || r" true (Sp.parallel_seq t lc r);
  Alcotest.(check bool) "ll<c" true (Sp.precedes_seq t ll c);
  Alcotest.(check bool) "lc<c" true (Sp.precedes_seq t lc c);
  Alcotest.(check bool) "ll || lr" true (Sp.parallel_seq t ll lr);
  Alcotest.(check bool) "ll<lc" true (Sp.precedes_seq t ll lc);
  (* And the right branch's descendants are parallel to all of l's. *)
  let rl, rr_, rc = Sp.fork_seq t r in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Alcotest.(check bool) "cross-branch parallel" true (Sp.parallel_seq t x y))
        [ rl; rr_; rc ])
    [ ll; lr; lc ];
  Sp.check_invariants t

let test_sp_batch () =
  let t, root = Sp.create () in
  let f1 = Sp.fork_op root in
  Sp.run_batch t [| f1 |];
  match f1 with
  | Sp.Fork { left = Some l; right = Some r; continuation = Some c; _ } ->
      (* A batch mixing a fork and queries: queries see the fork. *)
      let f2 = Sp.fork_op l in
      let q1 = Sp.precedes_op root c in
      let q2 = Sp.precedes_op l r in
      Sp.run_batch t [| q1; f2; q2 |];
      (match q1, q2 with
      | Sp.Precedes a, Sp.Precedes b ->
          Alcotest.(check bool) "root<c" true a.Sp.q_precedes;
          Alcotest.(check bool) "l not< r" false b.Sp.q_precedes
      | _ -> Alcotest.fail "bad records");
      (match f2 with
      | Sp.Fork { left = Some _; right = Some _; continuation = Some _; _ } -> ()
      | _ -> Alcotest.fail "fork not filled");
      Sp.check_invariants t
  | _ -> Alcotest.fail "fork not filled"

(* Oracle: compare SP relations against interval nesting computed from a
   random fork tree. Each strand gets the DFS interval of its subtree;
   a precedes b iff a is an ancestor-continuation relation... simpler:
   build the relation by construction rules and check transitivity and
   consistency properties instead. *)
let prop_sp_order_consistency =
  QCheck.Test.make ~name:"sp-order: precedence is a strict partial order" ~count:60
    QCheck.(list_of_size Gen.(1 -- 25) (int_bound 1000))
    (fun picks ->
      let t, root = Sp.create () in
      let strands = ref [| root |] in
      List.iter
        (fun r ->
          let s = !strands.(r mod Array.length !strands) in
          let l, rr, c = Sp.fork_seq t s in
          strands := Array.append !strands [| l; rr; c |])
        picks;
      Sp.check_invariants t;
      let arr = !strands in
      let n = Array.length arr in
      let prec i j = Sp.precedes_seq t arr.(i) arr.(j) in
      let ok = ref true in
      (* Antisymmetry + irreflexivity. *)
      for i = 0 to n - 1 do
        if prec i i then ok := false;
        for j = 0 to n - 1 do
          if i <> j && prec i j && prec j i then ok := false
        done
      done;
      (* Transitivity on a sample (full triple loop is n^3; n <= 76). *)
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if prec i j then
            for k = 0 to n - 1 do
              if prec j k && not (prec i k) then ok := false
            done
        done
      done;
      !ok)

(* ---------- hash table ---------- *)

let test_hashtable_basic () =
  let h = H.create () in
  Alcotest.(check bool) "fresh insert" false (H.insert_seq h ~key:1 ~value:10);
  Alcotest.(check bool) "replace" true (H.insert_seq h ~key:1 ~value:11);
  Alcotest.(check (option int)) "lookup" (Some 11) (H.lookup_seq h 1);
  Alcotest.(check (option int)) "missing" None (H.lookup_seq h 2);
  Alcotest.(check bool) "remove" true (H.remove_seq h 1);
  Alcotest.(check bool) "remove missing" false (H.remove_seq h 1);
  Alcotest.(check int) "empty" 0 (H.length h);
  H.check_invariants h

let test_hashtable_batch_order () =
  let h = H.create () in
  let l1 = H.lookup 5 in
  let l2 = H.lookup 5 in
  H.run_batch h [| l1; H.insert ~key:5 ~value:50; l2 |];
  (match l1, l2 with
  | H.Lookup a, H.Lookup b ->
      Alcotest.(check (option int)) "lookup before insert" None a.H.l_value;
      Alcotest.(check (option int)) "lookup after insert" (Some 50) b.H.l_value
  | _ -> assert false);
  H.check_invariants h

let test_hashtable_growth () =
  let h = H.create () in
  let b0 = H.buckets h in
  H.run_batch h (Array.init 500 (fun i -> H.insert ~key:i ~value:i));
  Alcotest.(check bool) "grew" true (H.buckets h > b0);
  Alcotest.(check int) "length" 500 (H.length h);
  H.check_invariants h;
  (* Shrink path: removals happen over several batches so the resize
     check runs as the table empties. *)
  let big = H.buckets h in
  for chunk = 0 to 4 do
    H.run_batch h (Array.init 100 (fun i -> H.remove ((chunk * 100) + i)))
  done;
  Alcotest.(check int) "emptied" 0 (H.length h);
  Alcotest.(check bool) "shrank" true (H.buckets h < big);
  H.check_invariants h

let prop_hashtable_matches_map =
  QCheck.Test.make ~name:"hashtable batches match Map" ~count:150
    QCheck.(
      list_of_size Gen.(0 -- 8)
        (list_of_size Gen.(0 -- 20) (pair (int_bound 100) (option (int_bound 50)))))
    (fun batches ->
      (* (k, Some v) = insert; (k, None) = remove. *)
      let module IM = Map.Make (Int) in
      let h = H.create () in
      let model = ref IM.empty in
      List.iter
        (fun batch ->
          let ops =
            List.map
              (function
                | k, Some v -> H.insert ~key:k ~value:v
                | k, None -> H.remove k)
              batch
          in
          H.run_batch h (Array.of_list ops);
          List.iter
            (function
              | k, Some v -> model := IM.add k v !model
              | k, None -> model := IM.remove k !model)
            batch)
        batches;
      H.check_invariants h;
      H.to_sorted_bindings h = IM.bindings !model)

(* ---------- order-statistic tree ---------- *)

module Os = Batched.Ostree

let test_ostree_basic () =
  let t = List.fold_left Os.insert Os.empty [ 50; 20; 80; 10; 30 ] in
  Os.check_invariants t;
  Alcotest.(check int) "size" 5 (Os.size t);
  Alcotest.(check bool) "mem" true (Os.mem t 30);
  Alcotest.(check int) "rank 30" 2 (Os.rank t 30);
  Alcotest.(check int) "rank 31" 3 (Os.rank t 31);
  Alcotest.(check int) "rank beyond" 5 (Os.rank t 999);
  Alcotest.(check (option int)) "select 0" (Some 10) (Os.select t 0);
  Alcotest.(check (option int)) "select 4" (Some 80) (Os.select t 4);
  Alcotest.(check (option int)) "select out" None (Os.select t 5)

let test_ostree_delete () =
  let t = List.fold_left Os.insert Os.empty (List.init 100 Fun.id) in
  let t = List.fold_left Os.delete t [ 0; 50; 99; 42 ] in
  Os.check_invariants t;
  Alcotest.(check int) "size" 96 (Os.size t);
  Alcotest.(check bool) "gone" false (Os.mem t 50);
  Alcotest.(check (option int)) "select shifts" (Some 2) (Os.select t 1)

let test_ostree_balance_adversarial () =
  (* Sorted and reverse-sorted insertions must stay balanced (shallow). *)
  List.iter
    (fun keys ->
      let t = List.fold_left Os.insert Os.empty keys in
      Os.check_invariants t;
      Alcotest.(check int) "size" 2048 (Os.size t))
    [ List.init 2048 Fun.id; List.rev (List.init 2048 Fun.id) ]

let test_ostree_batch () =
  let r = Os.rank_op 15 and s = Os.select_op 1 in
  let t =
    Os.run_batch Os.empty
      [| Os.insert_op 10; Os.insert_op 20; Os.insert_op 30; Os.delete_op 20; r; s |]
  in
  Os.check_invariants t;
  Alcotest.(check (list int)) "net" [ 10; 30 ] (Os.to_sorted_list t);
  (match r, s with
  | Os.Rank rr, Os.Select ss ->
      Alcotest.(check int) "rank sees net effect" 1 rr.Os.rank_result;
      Alcotest.(check (option int)) "select sees net effect" (Some 30) ss.Os.selected
  | _ -> assert false)

let prop_ostree_matches_set =
  QCheck.Test.make ~name:"ostree insert/delete matches Set; rank/select vs oracle"
    ~count:200
    QCheck.(list (pair bool (int_bound 120)))
    (fun cmds ->
      let module IS = Set.Make (Int) in
      let t, model =
        List.fold_left
          (fun (t, m) (ins, k) ->
            if ins then (Os.insert t k, IS.add k m) else (Os.delete t k, IS.remove k m))
          (Os.empty, IS.empty) cmds
      in
      Os.check_invariants t;
      let sorted = IS.elements model in
      Os.to_sorted_list t = sorted
      && List.for_all
           (fun k -> Os.rank t k = List.length (List.filter (fun x -> x < k) sorted))
           (List.map snd cmds)
      && List.mapi (fun i _ -> Os.select t i) sorted
         = List.map (fun k -> Some k) sorted)

(* ---------- sim models of the new structures ---------- *)

let test_new_models_run_in_sim () =
  List.iter
    (fun model ->
      let w = Sim.Workload.parallel_ops ~model ~records_per_node:1 ~n_nodes:200 () in
      let m = Sim.Batcher.run (Sim.Batcher.default ~p:4) w in
      Alcotest.(check int)
        (model.Batched.Model.name ^ ": all ops batched")
        200 m.Sim.Metrics.batch_size_total)
    [ Sp.sim_model (); H.sim_model (); Os.sim_model ~initial_size:1024 () ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_order_list_total_order; prop_sp_order_consistency; prop_hashtable_matches_map;
      prop_ostree_matches_set ]

let () =
  Alcotest.run "spds"
    [
      ( "order_list",
        [
          Alcotest.test_case "basic" `Quick test_order_list_basic;
          Alcotest.test_case "dense inserts relabel" `Quick test_order_list_dense_inserts;
          Alcotest.test_case "different orders" `Quick test_order_list_different_orders_rejected;
        ] );
      ( "sp_order",
        [
          Alcotest.test_case "fork relations" `Quick test_sp_fork_relations;
          Alcotest.test_case "nested forks" `Quick test_sp_nested_forks;
          Alcotest.test_case "batched ops" `Quick test_sp_batch;
        ] );
      ( "hashtable",
        [
          Alcotest.test_case "basic" `Quick test_hashtable_basic;
          Alcotest.test_case "batch order" `Quick test_hashtable_batch_order;
          Alcotest.test_case "growth and shrink" `Quick test_hashtable_growth;
        ] );
      ( "ostree",
        [
          Alcotest.test_case "basic" `Quick test_ostree_basic;
          Alcotest.test_case "delete" `Quick test_ostree_delete;
          Alcotest.test_case "adversarial balance" `Quick test_ostree_balance_adversarial;
          Alcotest.test_case "batch" `Quick test_ostree_batch;
        ] );
      ( "sim models",
        [ Alcotest.test_case "run in batcher sim" `Quick test_new_models_run_in_sim ] );
      ("properties", qcheck_cases);
    ]
