(* Tests for the core library: theory bounds and experiment drivers
   (run at reduced scale — the full-scale runs live in bench/). *)

let test_log2i () =
  Alcotest.(check int) "log2 8" 3 (Batcher_core.Theory.log2i 8);
  Alcotest.(check int) "log2 9" 4 (Batcher_core.Theory.log2i 9);
  Alcotest.(check int) "log2 1" 1 (Batcher_core.Theory.log2i 1)

let test_ws_bound () =
  Alcotest.(check int) "bound" 125 (Batcher_core.Theory.ws_bound ~p:4 ~t1:400 ~t_inf:25)

let test_batcher_bound_formula () =
  (* (T1 + W + n s)/P + m s + T_inf *)
  let b =
    Batcher_core.Theory.batcher_bound ~p:4 ~t1:1000 ~t_inf:10 ~n:100 ~m:5 ~w:600 ~s:4
  in
  Alcotest.(check int) "formula" (((1000 + 600 + 400) / 4) + 20 + 10) b

let test_bound_monotone_in_p () =
  let bound p =
    Batcher_core.Theory.batcher_bound ~p ~t1:100_000 ~t_inf:10 ~n:1000 ~m:1 ~w:50_000 ~s:6
  in
  Alcotest.(check bool) "p=8 <= p=1" true (bound 8 <= bound 1);
  Alcotest.(check bool) "p=4 <= p=2" true (bound 4 <= bound 2)

let test_examples_scale () =
  let c = Batcher_core.Theory.counter_example ~records_per_node:1 in
  Alcotest.(check bool) "counter W linear" true (c.Batcher_core.Theory.w ~n:1000 < 10_000);
  let t = Batcher_core.Theory.search_tree_example ~initial:1024 ~records_per_node:1 in
  Alcotest.(check bool) "tree W superlinear" true
    (t.Batcher_core.Theory.w ~n:1000 > c.Batcher_core.Theory.w ~n:1000)

(* Experiment drivers at small scale: structural checks on the rows. *)

let small_ps = [ 1; 2; 4 ]

let test_fig5_small () =
  let rows =
    Batcher_core.Experiments.fig5 ~n_records:2000 ~records_per_node:20 ~ps:small_ps
      ~sizes:[ 1000; 100_000 ] ()
  in
  Alcotest.(check int) "two sizes" 2 (List.length rows);
  List.iter
    (fun (r : Batcher_core.Experiments.fig5_row) ->
      Alcotest.(check int) "three P points" 3 (List.length r.Batcher_core.Experiments.batcher);
      Alcotest.(check bool) "positive seq throughput" true
        (r.Batcher_core.Experiments.seq_throughput > 0.0);
      List.iter
        (fun (_, tp, std) ->
          Alcotest.(check bool) "positive throughput" true (tp > 0.0);
          Alcotest.(check bool) "stddev small" true (std < tp))
        r.Batcher_core.Experiments.batcher)
    rows

let test_fig5_speedup_shape () =
  (* The paper's headline shape: for a large list, BATCHER at p=8 beats
     BATCHER at p=1 clearly. *)
  let rows =
    Batcher_core.Experiments.fig5 ~n_records:5000 ~records_per_node:50 ~ps:[ 1; 8 ]
      ~sizes:[ 10_000_000 ] ()
  in
  match rows with
  | [ r ] -> begin
      match r.Batcher_core.Experiments.batcher with
      | [ (1, tp1, _); (8, tp8, _) ] ->
          Alcotest.(check bool)
            (Printf.sprintf "tp8 %.4f > 2 * tp1 %.4f" tp8 tp1)
            true (tp8 > 2.0 *. tp1)
      | _ -> Alcotest.fail "unexpected shape"
    end
  | _ -> Alcotest.fail "expected one row"

let test_flatcomb_small () =
  let rows =
    Batcher_core.Experiments.flatcomb ~initial:100_000 ~n_records:2000
      ~records_per_node:20 ~ps:small_ps ()
  in
  Alcotest.(check int) "rows" 3 (List.length rows);
  List.iter
    (fun (r : Batcher_core.Experiments.flatcomb_row) ->
      Alcotest.(check bool) "throughputs positive" true
        (r.Batcher_core.Experiments.batcher_tp > 0.0
        && r.Batcher_core.Experiments.flatcomb_tp > 0.0))
    rows

let test_counter_example_rows () =
  let rows = Batcher_core.Experiments.counter_example ~n:2000 ~ps:small_ps () in
  List.iter
    (fun (r : Batcher_core.Experiments.example_row) ->
      Alcotest.(check bool) "lock at least Omega(n)" true
        (r.Batcher_core.Experiments.lock_makespan >= 2000);
      Alcotest.(check bool) "bound ratio sane" true
        (r.Batcher_core.Experiments.bound_ratio > 0.0
        && r.Batcher_core.Experiments.bound_ratio < 16.0))
    rows

let test_tree_example_rows () =
  let rows = Batcher_core.Experiments.tree_example ~initial:4096 ~n:800 ~ps:small_ps () in
  List.iter
    (fun (r : Batcher_core.Experiments.example_row) ->
      Alcotest.(check bool) "bound ratio sane" true
        (r.Batcher_core.Experiments.bound_ratio > 0.0
        && r.Batcher_core.Experiments.bound_ratio < 16.0))
    rows

let test_stack_example_rows () =
  let rows = Batcher_core.Experiments.stack_example ~n:2000 ~ps:small_ps () in
  List.iter
    (fun (r : Batcher_core.Experiments.example_row) ->
      Alcotest.(check bool) "bound ratio sane" true
        (r.Batcher_core.Experiments.bound_ratio > 0.0
        && r.Batcher_core.Experiments.bound_ratio < 16.0))
    rows

let test_theorem3_rows () =
  let rows = Batcher_core.Experiments.theorem3 () in
  Alcotest.(check bool) "nonempty" true (rows <> []);
  List.iter
    (fun (r : Batcher_core.Experiments.tau_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "p=%d tau=%d ratio %.3f bounded" r.Batcher_core.Experiments.t3_p
           r.Batcher_core.Experiments.t3_tau r.Batcher_core.Experiments.t3_ratio)
        true
        (r.Batcher_core.Experiments.t3_ratio > 0.0
        && r.Batcher_core.Experiments.t3_ratio < 8.0);
      (* Trimmed span only counts long batches, so it shrinks as tau grows. *)
      Alcotest.(check bool) "trimmed span nonnegative" true
        (r.Batcher_core.Experiments.t3_trimmed_span >= 0))
    rows;
  (* Monotonicity of S_tau in tau, per P. *)
  let by_p = Hashtbl.create 8 in
  List.iter
    (fun (r : Batcher_core.Experiments.tau_row) ->
      let prev = Hashtbl.find_opt by_p r.Batcher_core.Experiments.t3_p in
      (match prev with
      | Some (last_tau, last_s) ->
          if r.Batcher_core.Experiments.t3_tau >= last_tau then
            Alcotest.(check bool) "S_tau monotone nonincreasing" true
              (r.Batcher_core.Experiments.t3_trimmed_span <= last_s)
      | None -> ());
      Hashtbl.replace by_p r.Batcher_core.Experiments.t3_p
        (r.Batcher_core.Experiments.t3_tau, r.Batcher_core.Experiments.t3_trimmed_span))
    rows

let test_lemma2_rows () =
  let rows = Batcher_core.Experiments.lemma2 () in
  List.iter
    (fun (r : Batcher_core.Experiments.lemma2_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s p=%d: %d <= 2" r.Batcher_core.Experiments.l2_workload
           r.Batcher_core.Experiments.l2_p
           r.Batcher_core.Experiments.max_trapped_batches)
        true
        (r.Batcher_core.Experiments.max_trapped_batches <= 2))
    rows

let test_granularity_rows () =
  let rows =
    Batcher_core.Experiments.ablate_granularity ~initial:100_000 ~n_records:4000 ()
  in
  Alcotest.(check bool) "rows" true (List.length rows = 12);
  (* At p=8, more records per call must not hurt throughput much:
     the 100-records point beats the 1-record point clearly. *)
  let tp records p =
    List.find_map
      (fun (r : Batcher_core.Experiments.granularity_row) ->
        if r.Batcher_core.Experiments.g_records_per_node = records
           && r.Batcher_core.Experiments.g_p = p
        then Some r.Batcher_core.Experiments.g_throughput
        else None)
      rows
  in
  match tp 100 8, tp 1 8 with
  | Some coarse, Some fine ->
      Alcotest.(check bool)
        (Printf.sprintf "coarse %.4f > fine %.4f" coarse fine)
        true (coarse > fine)
  | _ -> Alcotest.fail "missing rows"

let test_ablation_rows () =
  let steal = Batcher_core.Experiments.ablate_steal () in
  Alcotest.(check int) "steal variants x ps" 12 (List.length steal);
  let launch = Batcher_core.Experiments.ablate_launch () in
  Alcotest.(check bool) "launch rows" true (List.length launch > 0);
  let cap = Batcher_core.Experiments.ablate_cap () in
  List.iter
    (fun (r : Batcher_core.Experiments.ablation_row) ->
      Alcotest.(check bool) "completed" true (r.Batcher_core.Experiments.ab_makespan > 0))
    (steal @ launch @ cap)

let test_report_renders () =
  (* Smoke: every printer produces nonempty output without raising. *)
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let rows =
    Batcher_core.Experiments.fig5 ~n_records:500 ~records_per_node:10 ~ps:[ 1; 2 ]
      ~sizes:[ 1000 ] ()
  in
  Batcher_core.Report.fig5 fmt rows;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "fig5 nonempty" true (Buffer.length buf > 0)

let () =
  Alcotest.run "core"
    [
      ( "theory",
        [
          Alcotest.test_case "log2i" `Quick test_log2i;
          Alcotest.test_case "ws bound" `Quick test_ws_bound;
          Alcotest.test_case "batcher bound formula" `Quick test_batcher_bound_formula;
          Alcotest.test_case "monotone in p" `Quick test_bound_monotone_in_p;
          Alcotest.test_case "example scales" `Quick test_examples_scale;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig5 small" `Quick test_fig5_small;
          Alcotest.test_case "fig5 speedup shape" `Slow test_fig5_speedup_shape;
          Alcotest.test_case "flatcomb small" `Quick test_flatcomb_small;
          Alcotest.test_case "counter rows" `Quick test_counter_example_rows;
          Alcotest.test_case "tree rows" `Quick test_tree_example_rows;
          Alcotest.test_case "stack rows" `Quick test_stack_example_rows;
          Alcotest.test_case "theorem3 rows" `Slow test_theorem3_rows;
          Alcotest.test_case "lemma2 rows" `Slow test_lemma2_rows;
          Alcotest.test_case "ablation rows" `Slow test_ablation_rows;
          Alcotest.test_case "granularity rows" `Slow test_granularity_rows;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
    ]
